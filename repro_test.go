package repro

import (
	"os"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/osu"
)

func TestPublicAPISurface(t *testing.T) {
	progs := Programs()
	want := map[string]bool{
		"osu.alltoall": false, "osu.bcast": false, "osu.allreduce": false,
		"osu.alltoall.ckptwindow": false, "app.comd": false, "app.wave": false,
	}
	for _, p := range progs {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("built-in program %q not registered", name)
		}
	}
	if ClusterConfig().Size() != 48 {
		t.Errorf("default cluster is not the paper's 48 ranks")
	}
}

// The README quickstart, verbatim: checkpoint under Open MPI, restart
// under MPICH.
func TestReadmeQuickstartFlow(t *testing.T) {
	dir, err := os.MkdirTemp("", "readme-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	stack := DefaultStack(ImplOpenMPI, ABIMukautuva, CkptMANA)
	stack.Net.Nodes = 2
	stack.Net.RanksPerNode = 2
	job, err := Launch(stack, "osu.alltoall.ckptwindow", WithConfigure(func(rank int, p Program) {
		b := p.(*osu.LatencyBench)
		b.Sizes = []int{1, 64}
		b.Iters = 3
		b.Warmup = 1
		b.SleepReal = 100 * time.Millisecond
	}))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := job.Checkpoint(dir, false); err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}

	mpich := DefaultStack(ImplMPICH, ABIMukautuva, CkptMANA)
	mpich.Net.Nodes = 2
	mpich.Net.RanksPerNode = 2
	restarted, err := Restart(dir, mpich)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Wait(); err != nil {
		t.Fatal(err)
	}
	sizes, means := restarted.Program(0).(*osu.LatencyBench).Results()
	if len(sizes) != 2 || means[0] <= 0 {
		t.Fatalf("restarted sweep incomplete: %v %v", sizes, means)
	}
}

func TestCustomProgramRegistration(t *testing.T) {
	RegisterProgram("test.custom", func() Program { return &customProg{} })
	stack := DefaultStack(ImplMPICH, ABINative, CkptNone)
	stack.Net.Nodes = 1
	stack.Net.RanksPerNode = 4
	job, err := Launch(stack, "test.custom")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := job.Program(0).(*customProg).Sum; got != 6 {
		t.Fatalf("custom program sum = %d, want 6", got)
	}
}

type customProg struct{ Sum int64 }

func (c *customProg) Setup(env *Env) error { return nil }

func (c *customProg) Step(env *Env) (bool, error) {
	out := make([]byte, 8)
	if err := env.T.Allreduce(abi.Int64Bytes([]int64{int64(env.Rank())}), out, 1,
		env.TypeInt64, env.OpSum, env.CommWorld); err != nil {
		return false, err
	}
	c.Sum = abi.Int64sOf(out)[0]
	return true, nil
}

// TestPublicShrinkRecovery drives the re-exported ULFM surface: a
// non-fatal rank crash survived in place through the public API.
func TestPublicShrinkRecovery(t *testing.T) {
	stack := DefaultStack(ImplOpenMPI, ABIMukautuva, CkptNone)
	stack.Net.Nodes = 1
	stack.Net.RanksPerNode = 4
	inj, err := NewFaultInjector(FaultPlan{Faults: []FaultSpec{
		{Kind: FaultRankCrash, Rank: 1, Step: 3, NonFatal: true},
	}}, 7, stack.Net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithShrinkRecovery(stack, "test.bench.ring", inj,
		ShrinkPolicy{LegTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Shrinks != 1 {
		t.Fatalf("completed=%v shrinks=%d", res.Completed, res.Shrinks)
	}
	if len(res.Events) != 1 || res.Events[0].Survivors != 3 {
		t.Fatalf("events = %+v", res.Events)
	}
}
