// Wave example: run the wave_mpi analog under all four paper stacks and
// print the Figure 5 comparison for it.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/apps/wavempi"
	"repro/internal/core"
)

func main() {
	var (
		steps  = flag.Int("steps", 80, "time steps")
		points = flag.Int("points", 1<<14, "global grid points")
		nodes  = flag.Int("nodes", 2, "compute nodes")
		rpn    = flag.Int("rpn", 4, "ranks per node")
	)
	flag.Parse()

	stacks := []repro.Stack{
		repro.DefaultStack(repro.ImplMPICH, repro.ABINative, repro.CkptNone),
		repro.DefaultStack(repro.ImplMPICH, repro.ABIMukautuva, repro.CkptMANA),
		repro.DefaultStack(repro.ImplOpenMPI, repro.ABINative, repro.CkptNone),
		repro.DefaultStack(repro.ImplOpenMPI, repro.ABIMukautuva, repro.CkptMANA),
	}
	fmt.Printf("wave_mpi: %d points, %d steps, %d ranks\n", *points, *steps, *nodes**rpn)
	var baseline float64
	for i, stack := range stacks {
		stack.Net.Nodes = *nodes
		stack.Net.RanksPerNode = *rpn
		job, err := repro.Launch(stack, "app.wave", repro.WithConfigure(func(rank int, p core.Program) {
			w := p.(*wavempi.Wave)
			w.Steps = *steps
			w.GlobalPoints = *points
		}))
		if err != nil {
			log.Fatal(err)
		}
		if err := job.Wait(); err != nil {
			log.Fatal(err)
		}
		var maxT float64
		for r := 0; r < stack.Net.Size(); r++ {
			if t := job.Clock(r).Duration().Seconds(); t > maxT {
				maxT = t
			}
		}
		w := job.Program(0).(*wavempi.Wave)
		note := ""
		if i%2 == 0 {
			baseline = maxT
		} else if baseline > 0 {
			note = fmt.Sprintf("  (%+.1f%% vs native)", 100*(maxT-baseline)/baseline)
		}
		fmt.Printf("  %-30s %.4f s  checksum=%.4f%s\n", stack.Label(), maxT, w.Checked, note)
	}
}
