// Quickstart: write an SPMD program against the standard ABI, register it,
// and run the SAME program over both simulated MPI implementations —
// compiled once, run everywhere.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/abi"
)

// hello is a minimal SPMD program: a ring exchange plus an allreduce.
// Exported fields would be checkpointed; this example runs without a
// checkpointer.
type hello struct {
	Done    bool
	RingVal int64
	SumVal  int64
}

func (h *hello) Setup(env *abi.Env) error { return nil }

func (h *hello) Step(env *abi.Env) (bool, error) {
	n, me := env.Size(), env.Rank()
	right, left := (me+1)%n, (me-1+n)%n

	// Nonblocking ring exchange with standard wildcards.
	rb := make([]byte, 8)
	req, err := env.T.Irecv(rb, 1, env.TypeInt64, left, 0, env.CommWorld)
	if err != nil {
		return false, err
	}
	if err := env.T.Send(abi.Int64Bytes([]int64{int64(me * me)}), 1,
		env.TypeInt64, right, 0, env.CommWorld); err != nil {
		return false, err
	}
	var st abi.Status
	if err := env.T.Wait(req, &st); err != nil {
		return false, err
	}
	h.RingVal = abi.Int64sOf(rb)[0]

	// Global sum.
	out := make([]byte, 8)
	if err := env.T.Allreduce(abi.Int64Bytes([]int64{int64(me)}), out, 1,
		env.TypeInt64, env.OpSum, env.CommWorld); err != nil {
		return false, err
	}
	h.SumVal = abi.Int64sOf(out)[0]
	h.Done = true
	return true, nil
}

func main() {
	repro.RegisterProgram("example.hello", func() repro.Program { return &hello{} })

	for _, impl := range []repro.Impl{repro.ImplMPICH, repro.ImplOpenMPI, repro.ImplStdABI} {
		stack := repro.DefaultStack(impl, repro.ABIMukautuva, repro.CkptNone)
		stack.Net.Nodes = 2
		stack.Net.RanksPerNode = 4
		job, err := repro.Launch(stack, "example.hello")
		if err != nil {
			log.Fatal(err)
		}
		if err := job.Wait(); err != nil {
			log.Fatal(err)
		}
		n := stack.Net.Size()
		h0 := job.Program(0).(*hello)
		fmt.Printf("%-28s ranks=%d  rank0 ring value=%d (from rank %d)  global sum=%d\n",
			stack.Label(), n, h0.RingVal, n-1, h0.SumVal)
	}
	fmt.Println("same binary state, three MPI implementations — the standard ABI at work")
}
