// CoMD example: run the molecular-dynamics proxy app under any stack and
// report energies plus the virtual completion time — one bar of Figure 5.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/apps/comd"
	"repro/internal/core"
)

func main() {
	var (
		impl   = flag.String("impl", "mpich", "mpich, openmpi or stdabi")
		abiMod = flag.String("abi", "native", "native or mukautuva")
		ckpt   = flag.String("ckpt", "none", "none or mana")
		steps  = flag.Int("steps", 60, "MD steps")
		atoms  = flag.Int("atoms", 256, "atoms per rank")
		nodes  = flag.Int("nodes", 2, "compute nodes")
		rpn    = flag.Int("rpn", 4, "ranks per node")
	)
	flag.Parse()

	stack := repro.DefaultStack(repro.Impl(*impl), repro.ABIMode(*abiMod), repro.CkptMode(*ckpt))
	stack.Net.Nodes = *nodes
	stack.Net.RanksPerNode = *rpn
	job, err := repro.Launch(stack, "app.comd", repro.WithConfigure(func(rank int, p core.Program) {
		c := p.(*comd.CoMD)
		c.Steps = *steps
		c.ParticlesPerRank = *atoms
	}))
	if err != nil {
		log.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		log.Fatal(err)
	}
	c := job.Program(0).(*comd.CoMD)
	var maxT float64
	for r := 0; r < stack.Net.Size(); r++ {
		if t := job.Clock(r).Duration().Seconds(); t > maxT {
			maxT = t
		}
	}
	fmt.Printf("CoMD under %s: %d ranks, %d steps\n", stack.Label(), stack.Net.Size(), c.Steps)
	fmt.Printf("  kinetic energy:   %.4f\n", c.KineticE)
	fmt.Printf("  potential energy: %.4f\n", c.PotentialE)
	fmt.Printf("  completion time:  %.3f s (virtual)\n", maxT)
}
