// Crossrestart: the paper's headline capability as a minimal program.
// A counter application is launched under Open MPI through the standard
// ABI with MANA, checkpointed mid-run, and restarted under MPICH; the
// counters continue exactly where they stopped.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/abi"
)

// counter accumulates a global sum once per step, with a little real time
// per step so the demo can checkpoint mid-run.
type counter struct {
	Total int
	Iter  int
	Acc   int64
}

func (c *counter) Setup(env *abi.Env) error { return nil }

func (c *counter) Step(env *abi.Env) (bool, error) {
	out := make([]byte, 8)
	if err := env.T.Allreduce(abi.Int64Bytes([]int64{1}), out, 1,
		env.TypeInt64, env.OpSum, env.CommWorld); err != nil {
		return false, err
	}
	c.Acc += abi.Int64sOf(out)[0]
	c.Iter++
	time.Sleep(time.Millisecond) //mpivet:allow parksafe -- simulated compute between steps; a sleeping fiber stalls briefly, it cannot deadlock
	return c.Iter >= c.Total, nil
}

func main() {
	repro.RegisterProgram("example.counter", func() repro.Program { return &counter{Total: 200} })

	dir, err := os.MkdirTemp("", "crossrestart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	small := func(s repro.Stack) repro.Stack {
		s.Net.Nodes = 2
		s.Net.RanksPerNode = 4
		return s
	}

	launch := small(repro.DefaultStack(repro.ImplOpenMPI, repro.ABIMukautuva, repro.CkptMANA))
	fmt.Printf("launching under %s ...\n", launch.Label())
	job, err := repro.Launch(launch, "example.counter")
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	fmt.Println("checkpointing mid-run (job exits after images are written) ...")
	if err := job.Checkpoint(dir, true); err != nil {
		log.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		log.Fatal(err)
	}
	stopped := job.Program(0).(*counter)
	fmt.Printf("checkpointed at iteration %d/%d (acc=%d)\n", stopped.Iter, stopped.Total, stopped.Acc)

	restart := small(repro.DefaultStack(repro.ImplMPICH, repro.ABIMukautuva, repro.CkptMANA))
	fmt.Printf("restarting under %s — a different MPI implementation ...\n", restart.Label())
	restarted, err := repro.Restart(dir, restart)
	if err != nil {
		log.Fatal(err)
	}
	if err := restarted.Wait(); err != nil {
		log.Fatal(err)
	}
	final := restarted.Program(0).(*counter)
	n := int64(restart.Net.Size())
	fmt.Printf("finished: iteration %d/%d, acc=%d (want %d)\n",
		final.Iter, final.Total, final.Acc, int64(final.Total)*n)
	if final.Acc == int64(final.Total)*n {
		fmt.Println("OK: no iterations lost, no recompilation — ABI interoperability in action")
	} else {
		fmt.Println("MISMATCH: state was corrupted across the restart")
		os.Exit(1)
	}
}
