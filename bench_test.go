package repro

import (
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/mpich"
	"repro/internal/mpicore"
	"repro/internal/openmpi"
	"repro/internal/ops"
	"repro/internal/osu"
	"repro/internal/scenario"
	"repro/internal/scenario/remote"
	"repro/internal/simnet"
	"repro/internal/stdabi"
	"repro/internal/trace"
	"repro/internal/types"
)

// benchStack builds a small-cluster stack (2x4 ranks) so benchmarks finish
// quickly while still crossing node boundaries.
func benchStack(impl Impl, abiMode ABIMode, ckpt CkptMode) Stack {
	s := DefaultStack(impl, abiMode, ckpt)
	s.Net.Nodes = 2
	s.Net.RanksPerNode = 4
	s.Net.JitterFrac = 0
	return s
}

// benchLatency runs b.N iterations of one collective at one size through a
// full stack and reports both wall-clock ns/op (the real interposition
// cost) and virtual-time us/op (the simulated cluster latency the paper
// plots).
func benchLatency(b *testing.B, stack Stack, op osu.Collective, size int) {
	b.Helper()
	job, err := Launch(stack, "osu."+string(op), WithConfigure(func(rank int, p Program) {
		lb := p.(*osu.LatencyBench)
		lb.Sizes = []int{size}
		lb.Warmup = 2
		lb.Iters = b.N
	}))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := job.Wait(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	_, means := job.Program(0).(*osu.LatencyBench).Results()
	if len(means) == 1 {
		b.ReportMetric(means[0], "virt-us/op")
	}
}

// fourBenchStacks mirrors the paper's comparison matrix.
func fourBenchStacks() []struct {
	name  string
	stack Stack
} {
	return []struct {
		name  string
		stack Stack
	}{
		{"MPICH", benchStack(ImplMPICH, ABINative, CkptNone)},
		{"MPICH_Muk_MANA", benchStack(ImplMPICH, ABIMukautuva, CkptMANA)},
		{"OpenMPI", benchStack(ImplOpenMPI, ABINative, CkptNone)},
		{"OpenMPI_Muk_MANA", benchStack(ImplOpenMPI, ABIMukautuva, CkptMANA)},
	}
}

// BenchmarkFig2Alltoall regenerates Figure 2's comparison at a small and a
// large message size for each stack.
func BenchmarkFig2Alltoall(b *testing.B) {
	for _, sz := range []int{1, 4096} {
		for _, sc := range fourBenchStacks() {
			b.Run(fmt.Sprintf("%s/size=%d", sc.name, sz), func(b *testing.B) {
				benchLatency(b, sc.stack, osu.Alltoall, sz)
			})
		}
	}
}

// BenchmarkFig3Bcast regenerates Figure 3's comparison.
func BenchmarkFig3Bcast(b *testing.B) {
	for _, sz := range []int{1, 4096} {
		for _, sc := range fourBenchStacks() {
			b.Run(fmt.Sprintf("%s/size=%d", sc.name, sz), func(b *testing.B) {
				benchLatency(b, sc.stack, osu.Bcast, sz)
			})
		}
	}
}

// BenchmarkFig4Allreduce regenerates Figure 4's comparison.
func BenchmarkFig4Allreduce(b *testing.B) {
	for _, sz := range []int{1, 4096} {
		for _, sc := range fourBenchStacks() {
			b.Run(fmt.Sprintf("%s/size=%d", sc.name, sz), func(b *testing.B) {
				benchLatency(b, sc.stack, osu.Allreduce, sz)
			})
		}
	}
}

// benchApp runs one Figure 5 application with b.N steps and reports
// virtual seconds per full run.
func benchApp(b *testing.B, stack Stack, prog string) {
	b.Helper()
	job, err := Launch(stack, prog, WithConfigure(func(rank int, p Program) {
		type scalable interface{ ScaleSteps(f float64) }
		if s, ok := p.(scalable); ok {
			s.ScaleSteps(0.02) // small fixed problem
		}
		type seedable interface{ SetSeed(s int64) }
		if s, ok := p.(seedable); ok {
			s.SetSeed(1)
		}
	}))
	if err != nil {
		b.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		b.Fatal(err)
	}
	var maxT float64
	for r := 0; r < stack.Net.Size(); r++ {
		if t := job.Clock(r).Duration().Seconds(); t > maxT {
			maxT = t
		}
	}
	b.ReportMetric(maxT*1000, "virt-ms/run")
}

// BenchmarkFig5CoMD regenerates Figure 5's CoMD bars.
func BenchmarkFig5CoMD(b *testing.B) {
	for _, sc := range fourBenchStacks() {
		b.Run(sc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchApp(b, sc.stack, "app.comd")
			}
		})
	}
}

// BenchmarkFig5Wave regenerates Figure 5's wave_mpi bars.
func BenchmarkFig5Wave(b *testing.B) {
	for _, sc := range fourBenchStacks() {
		b.Run(sc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchApp(b, sc.stack, "app.wave")
			}
		})
	}
}

// BenchmarkFig6CrossRestart measures the full Section 5.3 cycle: launch
// under Open MPI, checkpoint, restart under MPICH.
func BenchmarkFig6CrossRestart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "bench-fig6-*")
		if err != nil {
			b.Fatal(err)
		}
		launch := benchStack(ImplOpenMPI, ABIMukautuva, CkptMANA)
		job, err := Launch(launch, "osu.alltoall.ckptwindow", WithConfigure(func(rank int, p Program) {
			lb := p.(*osu.LatencyBench)
			lb.Sizes = []int{1, 1024}
			lb.Warmup = 2
			lb.Iters = 4
			lb.SleepReal = 80 * time.Millisecond
		}))
		if err != nil {
			b.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
		if err := job.Checkpoint(dir, true); err != nil {
			b.Fatal(err)
		}
		if err := job.Wait(); err != nil {
			b.Fatal(err)
		}
		restarted, err := Restart(dir, benchStack(ImplMPICH, ABIMukautuva, CkptMANA))
		if err != nil {
			b.Fatal(err)
		}
		if err := restarted.Wait(); err != nil {
			b.Fatal(err)
		}
		os.RemoveAll(dir)
	}
}

// BenchmarkAblationFSGSBase contrasts the paper's old-kernel syscall cost
// with the 5.9+ userspace FSGSBASE path through the full MANA stack.
func BenchmarkAblationFSGSBase(b *testing.B) {
	for _, k := range []struct {
		name string
		kv   int
	}{{"pre5.9", 0}, {"5.9plus", 1}} {
		b.Run(k.name, func(b *testing.B) {
			stack := benchStack(ImplMPICH, ABIMukautuva, CkptMANA)
			if k.kv == 1 {
				stack.Kernel = Kernel5_9Plus
			} else {
				stack.Kernel = KernelPre5_9
			}
			benchLatency(b, stack, osu.Allreduce, 8)
		})
	}
}

// BenchmarkAblationManaOverNative measures the paper's older "virtual id"
// configuration (MANA directly over a native binding, no Mukautuva).
func BenchmarkAblationManaOverNative(b *testing.B) {
	for _, sc := range []struct {
		name  string
		stack Stack
	}{
		{"MPICH_native_MANA", benchStack(ImplMPICH, ABINative, CkptMANA)},
		{"MPICH_Muk_MANA", benchStack(ImplMPICH, ABIMukautuva, CkptMANA)},
	} {
		b.Run(sc.name, func(b *testing.B) {
			benchLatency(b, sc.stack, osu.Alltoall, 64)
		})
	}
}

// BenchmarkFaultRecovery measures the full fault-tolerance cycle the
// paper's title promises: launch under Open MPI with periodic
// checkpointing, crash a node mid-run, detect the failure, restart from
// the latest complete image under MPICH, run to completion. Reported
// wall time is the whole cycle; recovered-us isolates detection +
// restart + recomputation.
func BenchmarkFaultRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "bench-recovery-*")
		if err != nil {
			b.Fatal(err)
		}
		stack := benchStack(ImplOpenMPI, ABIMukautuva, CkptMANA)
		rstack := benchStack(ImplMPICH, ABIMukautuva, CkptMANA)
		inj, err := NewFaultInjector(FaultPlan{Faults: []FaultSpec{
			{Kind: FaultNodeCrash, Rank: FaultAnywhere, Node: 0, Step: 6},
		}}, 1, stack.Net)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		res, err := RunWithRecovery(stack, "test.bench.ring", inj, RecoveryPolicy{
			ImageRoot: dir, Interval: 2, MaxRestarts: 2, RestartStack: &rstack,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed || res.Restarts != 1 {
			b.Fatalf("completed=%v restarts=%d", res.Completed, res.Restarts)
		}
		b.ReportMetric(float64(time.Since(start).Microseconds()), "cycle-us")
		os.RemoveAll(dir)
	}
}

// BenchmarkShrinkRecovery measures the OTHER fault-tolerance cycle —
// ULFM in-place recovery, the checkpoint-free path: launch, crash a
// rank non-fatally mid-run, survivors' pending collectives complete
// with the proc-failed code, revoke/shrink/agree, recompute on the
// survivors-only world to completion. cycle-us is the whole cycle;
// contrast BenchmarkFaultRecovery's image-restart cycle on the same
// workload shape.
func BenchmarkShrinkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stack := benchStack(ImplOpenMPI, ABIMukautuva, CkptNone)
		inj, err := NewFaultInjector(FaultPlan{Faults: []FaultSpec{
			{Kind: FaultRankCrash, Rank: 3, Step: 6, NonFatal: true},
		}}, 1, stack.Net)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		res, err := RunWithShrinkRecovery(stack, "test.bench.ring", inj, ShrinkPolicy{MaxShrinks: 2})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed || res.Shrinks != 1 {
			b.Fatalf("completed=%v shrinks=%d", res.Completed, res.Shrinks)
		}
		b.ReportMetric(float64(time.Since(start).Microseconds()), "cycle-us")
		var virt float64
		for r := 0; r < stack.Net.Size(); r++ {
			if t := res.Job.Clock(r).Duration().Seconds(); t > virt {
				virt = t
			}
		}
		b.ReportMetric(virt*1e3, "virt-ms/run")
	}
}

// BenchmarkReplicatedFailover measures the THIRD fault-tolerance cycle
// — replication, the pay-up-front path: launch with a warm shadow
// behind every logical rank, crash a primary non-fatally mid-run, and
// finish on the promoted shadow with no rollback and no recomputation.
// cycle-us is the whole cycle; virt-ms/run is the virtual
// time-to-solution over logical clocks, which carries the steady-state
// duplicate-message overhead instead of a recovery window — contrast
// BenchmarkShrinkRecovery and BenchmarkFaultRecovery on the same
// workload shape.
func BenchmarkReplicatedFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stack := benchStack(ImplOpenMPI, ABIMukautuva, CkptNone)
		inj, err := NewFaultInjector(FaultPlan{Faults: []FaultSpec{
			{Kind: FaultRankCrash, Rank: 3, Step: 6, NonFatal: true},
		}}, 1, stack.Net)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		res, err := RunWithReplication(stack, "test.bench.ring", inj, ReplicaPolicy{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed || res.Promotions != 1 {
			b.Fatalf("completed=%v promotions=%d", res.Completed, res.Promotions)
		}
		b.ReportMetric(float64(time.Since(start).Microseconds()), "cycle-us")
		var virt float64
		for r := 0; r < stack.Net.Size(); r++ {
			if t := res.Job.LogicalClock(r).Duration().Seconds(); t > virt {
				virt = t
			}
		}
		b.ReportMetric(virt*1e3, "virt-ms/run")
	}
}

// benchRing is a small lockstep workload for the recovery benchmark:
// one allreduce per step, quiescent at every safe point.
type benchRing struct {
	Total int
	Iter  int
}

func (p *benchRing) Setup(env *Env) error { return nil }

func (p *benchRing) Step(env *Env) (bool, error) {
	out := make([]byte, 8)
	if err := env.T.Allreduce(make([]byte, 8), out, 1, env.TypeInt64, env.OpSum, env.CommWorld); err != nil {
		return false, err
	}
	p.Iter++
	return p.Iter >= p.Total, nil
}

func init() {
	RegisterProgram("test.bench.ring", func() Program { return &benchRing{Total: 20} })
}

// BenchmarkCheckpointWrite isolates the checkpoint path: quiesce, drain,
// image write.
func BenchmarkCheckpointWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "bench-ckpt-*")
		if err != nil {
			b.Fatal(err)
		}
		stack := benchStack(ImplMPICH, ABIMukautuva, CkptMANA)
		job, err := Launch(stack, "osu.alltoall.ckptwindow", WithConfigure(func(rank int, p Program) {
			lb := p.(*osu.LatencyBench)
			lb.Sizes = []int{64}
			lb.Warmup = 2
			lb.Iters = 4
			lb.SleepReal = 100 * time.Millisecond
		}))
		if err != nil {
			b.Fatal(err)
		}
		time.Sleep(15 * time.Millisecond)
		start := time.Now()
		if err := job.Checkpoint(dir, true); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(time.Since(start).Microseconds()), "ckpt-us")
		if err := job.Wait(); err != nil {
			b.Fatal(err)
		}
		os.RemoveAll(dir)
	}
}

// corePolicies names each implementation's algorithm personality — the
// per-policy axis of the mpicore collective microbenchmarks.
func corePolicies() []struct {
	name string
	pol  mpicore.Policy
} {
	return []struct {
		name string
		pol  mpicore.Policy
	}{
		{"MPICH", mpich.Policy()},
		{"OpenMPI", openmpi.Policy()},
		{"StdABI", stdabi.Policy()},
	}
}

// benchCoreConsts/CoreCodes: the vocabulary never affects the hot path,
// so the benchmarks use the standard one.
var benchCoreConsts = mpicore.Consts{
	AnySource: abi.AnySource, AnyTag: abi.AnyTag, ProcNull: abi.ProcNull,
	TagUB: abi.TagUB, Undefined: abi.Undefined,
}

var benchCoreCodes = mpicore.Codes{
	ErrBuffer: 1, ErrCount: 2, ErrType: 3, ErrTag: 4, ErrComm: 5,
	ErrRank: 6, ErrRequest: 7, ErrRoot: 8, ErrGroup: 9, ErrOp: 10,
	ErrArg: 11, ErrTruncate: 12, ErrIntern: 15, ErrOther: 16,
}

// benchCoreCollective drives one collective b.N times on an 8-rank world
// directly over the shared runtime — no binding, no shim, no launcher —
// isolating the refactored hot path the PR-3 regression gate watches.
// Reported virt-us/op is rank 0's virtual clock advance per operation.
func benchCoreCollective(b *testing.B, pol mpicore.Policy, coll string, count int) {
	b.Helper()
	const ranks = 8
	w, err := fabric.NewWorld(simnet.SingleNode(ranks))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	fail := make(chan int, ranks)
	b.ResetTimer()
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := mpicore.NewProc(w, r, benchCoreConsts, benchCoreCodes, pol)
			c := p.CommWorld
			it := p.Predef(types.KindInt64)
			sum := p.PredefOp(ops.OpSum)
			sb := make([]byte, count*8)
			rb := make([]byte, count*8)
			a2aIn := make([]byte, ranks*count*8)
			a2aOut := make([]byte, ranks*count*8)
			for i := 0; i < b.N; i++ {
				var code int
				switch coll {
				case "bcast":
					code = p.Bcast(sb, count, it, 0, c)
				case "allreduce":
					code = p.Allreduce(sb, rb, count, it, sum, c)
				case "alltoall":
					code = p.Alltoall(a2aIn, count, it, a2aOut, count, it, c)
				}
				if code != 0 {
					fail <- code
					w.Close()
					return
				}
			}
		}(r)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case code := <-fail:
		b.Fatalf("collective failed with code %d", code)
	default:
	}
	virtUS := float64(w.Endpoint(0).Clock().Now()) / 1e3
	b.ReportMetric(virtUS/float64(b.N), "virt-us/op")
}

// BenchmarkMpicoreBcast sweeps the broadcast hot path per policy, at a
// size below and above every policy's tree/pipeline switchover.
func BenchmarkMpicoreBcast(b *testing.B) {
	for _, pc := range corePolicies() {
		for _, count := range []int{8, 8192} { // 64 B and 64 KiB
			b.Run(fmt.Sprintf("%s/bytes=%d", pc.name, count*8), func(b *testing.B) {
				benchCoreCollective(b, pc.pol, "bcast", count)
			})
		}
	}
}

// BenchmarkMpicoreAllreduce sweeps the allreduce hot path per policy
// (recursive doubling vs Rabenseifner vs ring, per each policy's cutoffs).
func BenchmarkMpicoreAllreduce(b *testing.B) {
	for _, pc := range corePolicies() {
		for _, count := range []int{8, 8192} {
			b.Run(fmt.Sprintf("%s/bytes=%d", pc.name, count*8), func(b *testing.B) {
				benchCoreCollective(b, pc.pol, "allreduce", count)
			})
		}
	}
}

// BenchmarkMpicoreAlltoall sweeps the alltoall hot path per policy
// (Bruck vs overlap vs pairwise, per each policy's cutoffs).
func BenchmarkMpicoreAlltoall(b *testing.B) {
	for _, pc := range corePolicies() {
		for _, count := range []int{8, 1024} { // 64 B and 8 KiB blocks
			b.Run(fmt.Sprintf("%s/bytes=%d", pc.name, count*8), func(b *testing.B) {
				benchCoreCollective(b, pc.pol, "alltoall", count)
			})
		}
	}
}

// BenchmarkNativeVsShimCallPath contrasts one two-rank round trip through
// the native binding and through the full Mukautuva+MANA stack — the
// wall-clock cost of interposition itself.
func BenchmarkNativeVsShimCallPath(b *testing.B) {
	for _, sc := range []struct {
		name  string
		stack Stack
	}{
		{"native", benchStack(ImplMPICH, ABINative, CkptNone)},
		{"muk", benchStack(ImplMPICH, ABIMukautuva, CkptNone)},
		{"wi4mpi", benchStack(ImplMPICH, ABIWi4MPI, CkptNone)},
		{"muk_mana", benchStack(ImplMPICH, ABIMukautuva, CkptMANA)},
	} {
		sc.stack.Net = simnet.SingleNode(2)
		b.Run(sc.name, func(b *testing.B) {
			benchLatency(b, sc.stack, osu.Allreduce, 8)
		})
	}
}

// benchLargeWorld drives one collective on an n-rank world under the
// given progress engine — the scale axis the event scheduler exists for.
// At 4096 ranks the goroutine engine drowns in wakeups and allocation;
// the event engine multiplexes all ranks over one token with batched
// delivery and pooled envelopes, which is what makes these rank counts
// benchable on a laptop. Reported virt-us/op is rank 0's virtual clock
// advance per operation, as in the 8-rank gate benches.
func benchLargeWorld(b *testing.B, mode fabric.ProgressMode, coll string, ranks, count int) {
	b.Helper()
	w, err := fabric.NewWorldMode(simnet.SingleNode(ranks), mode)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	pol := mpich.Policy()
	var wg sync.WaitGroup
	fail := make(chan int, ranks)
	b.ResetTimer()
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		w.Spawn(r, func() {
			defer wg.Done()
			p := mpicore.NewProc(w, r, benchCoreConsts, benchCoreCodes, pol)
			c := p.CommWorld
			it := p.Predef(types.KindInt64)
			sum := p.PredefOp(ops.OpSum)
			sb := make([]byte, count*8)
			rb := make([]byte, count*8)
			for i := 0; i < b.N; i++ {
				var code int
				switch coll {
				case "allreduce":
					code = p.Allreduce(sb, rb, count, it, sum, c)
				case "bcast":
					code = p.Bcast(sb, count, it, 0, c)
				case "barrier":
					code = p.Barrier(c)
				}
				if code != 0 {
					fail <- code //mpivet:allow parksafe -- buffered to ranks and each rank sends at most once, so the send never blocks
					w.Close()
					return
				}
			}
		})
	}
	wg.Wait()
	b.StopTimer()
	select {
	case code := <-fail:
		b.Fatalf("collective failed with code %d", code)
	default:
	}
	virtUS := float64(w.Endpoint(0).Clock().Now()) / 1e3
	b.ReportMetric(virtUS/float64(b.N), "virt-us/op")
}

// BenchmarkLargeWorldAllreduce is the tentpole scale bench: a 64-byte
// allreduce at 1K and 4K ranks in event mode. These start their own
// baselines — no goroutine-mode twin exists at these rank counts.
func BenchmarkLargeWorldAllreduce(b *testing.B) {
	for _, ranks := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("event/ranks=%d", ranks), func(b *testing.B) {
			benchLargeWorld(b, fabric.ProgressEvent, "allreduce", ranks, 8)
		})
	}
}

// BenchmarkLargeWorldBcast: binomial broadcast at 1K ranks, event mode.
func BenchmarkLargeWorldBcast(b *testing.B) {
	b.Run("event/ranks=1024", func(b *testing.B) {
		benchLargeWorld(b, fabric.ProgressEvent, "bcast", 1024, 8)
	})
}

// BenchmarkLargeWorldBarrier: dissemination barrier at 1K ranks — the
// pure wakeup/handoff cost of the event scheduler, no payload at all.
func BenchmarkLargeWorldBarrier(b *testing.B) {
	b.Run("event/ranks=1024", func(b *testing.B) {
		benchLargeWorld(b, fabric.ProgressEvent, "barrier", 1024, 0)
	})
}

// BenchmarkEngineComparison pits the two engines against each other at a
// rank count both can handle — the apples-to-apples cost of the token
// scheduler vs true parallelism on an 8-rank allreduce.
func BenchmarkEngineComparison(b *testing.B) {
	for _, mode := range []fabric.ProgressMode{fabric.ProgressGoroutine, fabric.ProgressEvent} {
		b.Run(fmt.Sprintf("%s/ranks=8", mode), func(b *testing.B) {
			benchLargeWorld(b, mode, "allreduce", 8, 8)
		})
	}
}

// BenchmarkTraceOverhead measures what the tracing instrumentation
// costs on the 8-rank gate workload. "disabled" is the shipping
// default — every emission site pays one nil pointer compare — and
// must stay within noise of the pre-instrumentation wall numbers;
// "enabled" buys the full per-rank event record. The virtual-time
// metric is identical in both (and to the committed baseline):
// tracing reads rank clocks, never advances them, so the 25% virt
// gate sees bit-exact values with the sink on or off.
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, opts ...LaunchOption) {
		b.Helper()
		stack := benchStack(ImplMPICH, ABINative, CkptNone)
		all := append([]LaunchOption{WithConfigure(func(rank int, p Program) {
			lb := p.(*osu.LatencyBench)
			lb.Sizes = []int{1024}
			lb.Warmup = 2
			lb.Iters = b.N
		})}, opts...)
		job, err := Launch(stack, "osu.allreduce", all...)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		if err := job.Wait(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_, means := job.Program(0).(*osu.LatencyBench).Results()
		if len(means) == 1 {
			b.ReportMetric(means[0], "virt-us/op")
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b) })
	b.Run("enabled", func(b *testing.B) {
		sink := trace.NewSink()
		run(b, WithTrace(sink))
	})
}

// matrixBenchWorkload builds the straggler-heavy subset the scheduling
// benchmark runs: a handful of crash cells whose synthetic costs vary
// (real fault cells do — detect latency and restart legs differ by
// shape), plus a tail of cheap plain cells. Six heavies over four
// workers is the shape where static round-robin sharding loses: two
// shards draw two stragglers each while two draw one, so the makespan
// is gated by the unluckiest pairing, not by total work.
func matrixBenchWorkload() ([]scenario.Spec, map[string]time.Duration) {
	var heavy, light []scenario.Spec
	for _, s := range scenario.DefaultMatrix().Enumerate() {
		switch {
		case (s.Fault == "rank-crash" && s.Recovery == "") || s.Fault == "node-crash":
			heavy = append(heavy, s)
		case s.Fault == "" && s.Ckpt == "none" && !s.HasRestart():
			light = append(light, s)
		}
	}
	heavy, light = heavy[:6], light[:30]
	costs := make(map[string]time.Duration, len(heavy)+len(light))
	specs := make([]scenario.Spec, 0, len(heavy)+len(light))
	for i, s := range heavy {
		// 32ms down to 22ms: varied stragglers, so packing order matters.
		costs[s.ID()] = time.Duration(32-2*i) * time.Millisecond
		specs = append(specs, s)
	}
	for _, s := range light {
		costs[s.ID()] = time.Millisecond
		specs = append(specs, s)
	}
	return specs, costs
}

// BenchmarkMatrixScheduling pits the two ways paperfigs spreads a matrix
// across four workers against each other on the straggler-heavy subset:
// static -shard i/4 round-robin partitioning (each worker sequentially
// runs its fixed slice; the run ends when the slowest shard does) versus
// the matrixd lease queue (workers steal the next longest-expected cell
// until the queue is dry, paying real HTTP+store overhead per cell).
// Cell execution is a sleep of the cell's synthetic cost on both sides,
// so the measured difference is pure scheduling. Metrics are wall-clock
// only — the virtual-time regression gate does not apply here.
func BenchmarkMatrixScheduling(b *testing.B) {
	specs, costs := matrixBenchWorkload()
	opts := scenario.Quick()
	opts.Reps = 1
	execute := func(s scenario.Spec, _ scenario.Options) scenario.Result {
		c := costs[s.ID()]
		time.Sleep(c)
		return scenario.Result{ID: s.ID(), Spec: s, Status: scenario.StatusPass, Reps: 1, WallMS: c.Milliseconds()}
	}
	const workers = 4

	b.Run("static-4shard", func(b *testing.B) {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for _, s := range (scenario.Shard{Index: w, Count: workers}).Select(specs) {
						execute(s, opts)
					}
				}(w)
			}
			wg.Wait()
			total += time.Since(start)
		}
		b.ReportMetric(float64(total.Microseconds())/1e3/float64(b.N), "wall-ms/run")
	})

	b.Run("worksteal-4workers", func(b *testing.B) {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			store, err := scenario.OpenCache(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			srv, err := remote.NewServer(remote.ServerConfig{Specs: specs, Options: opts, Store: store})
			if err != nil {
				b.Fatal(err)
			}
			hs := httptest.NewServer(srv)
			clients := make([]*remote.Client, workers)
			for w := range clients {
				if clients[w], err = remote.Dial(hs.URL); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()

			start := time.Now()
			var wg sync.WaitGroup
			errs := make([]error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					_, errs[w] = clients[w].Drain(remote.WorkerConfig{
						Name:    fmt.Sprintf("bench-%d", w),
						Execute: execute,
					})
				}(w)
			}
			wg.Wait()
			total += time.Since(start)

			b.StopTimer()
			hs.Close()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(total.Microseconds())/1e3/float64(b.N), "wall-ms/run")
	})
}
