// Command manactl inspects MANA/DMTCP checkpoint image directories:
// the image-set metadata, per-rank image sizes, and the MANA blob
// contents (virtual-id event log, drained in-flight messages, counters).
//
//	manactl info images/
//	manactl ranks images/
//	manactl blob images/ 0
package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"strconv"

	"repro/internal/dmtcp"
	"repro/internal/mana"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, dir := os.Args[1], os.Args[2]
	switch cmd {
	case "info":
		info(dir)
	case "ranks":
		ranks(dir)
	case "blob":
		if len(os.Args) < 4 {
			usage()
		}
		rank, err := strconv.Atoi(os.Args[3])
		if err != nil {
			fatal(err)
		}
		blob(dir, rank)
	default:
		usage()
	}
}

func info(dir string) {
	meta, err := dmtcp.ReadMeta(dir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("image set:      %s\n", dir)
	fmt.Printf("ranks:          %d\n", meta.NumRanks)
	fmt.Printf("implementation: %s\n", meta.Impl)
	fmt.Printf("standard ABI:   %v\n", meta.StandardABI)
	fmt.Printf("program:        %s\n", meta.Program)
	fmt.Printf("step:           %d\n", meta.Step)
	if meta.StandardABI {
		fmt.Println("restartable:    under any standard-ABI implementation")
	} else {
		fmt.Printf("restartable:    only under %s (native ABI image)\n", meta.Impl)
	}
}

func ranks(dir string) {
	meta, err := dmtcp.ReadMeta(dir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-6s %-10s %-14s %-12s %-12s\n", "rank", "step", "virtual-time", "state(B)", "blob(B)")
	for r := 0; r < meta.NumRanks; r++ {
		img, err := dmtcp.ReadRankImage(dir, r)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-6d %-10d %-14s %-12d %-12d\n",
			img.Rank, img.Step, fmt.Sprintf("%.3fms", float64(img.Clock)/1e6),
			len(img.ProgState), len(img.PluginBlob))
	}
}

func blob(dir string, rank int) {
	img, err := dmtcp.ReadRankImage(dir, rank)
	if err != nil {
		fatal(err)
	}
	var b mana.Blob
	if err := gob.NewDecoder(bytes.NewReader(img.PluginBlob)).Decode(&b); err != nil {
		fatal(fmt.Errorf("decoding MANA blob: %w", err))
	}
	fmt.Printf("rank %d MANA state:\n", rank)
	fmt.Printf("  next virtual id: %#x\n", b.NextVid)
	fmt.Printf("  event log:       %d entries\n", len(b.Log))
	for i, ev := range b.Log {
		fmt.Printf("    %3d: %-18s vid=%v parent=%v\n", i, ev.Op, ev.Vid, ev.Parent)
	}
	var sent, recvd uint64
	for _, peers := range b.Sent {
		for _, n := range peers {
			sent += n
		}
	}
	for _, peers := range b.Recvd {
		for _, n := range peers {
			recvd += n
		}
	}
	fmt.Printf("  p2p sent:        %d messages\n", sent)
	fmt.Printf("  p2p received:    %d messages\n", recvd)
	drained := 0
	bytesDrained := 0
	for _, q := range b.Buffered {
		drained += len(q)
		for _, d := range q {
			bytesDrained += len(d.Data)
		}
	}
	fmt.Printf("  drained in-flight messages: %d (%d bytes)\n", drained, bytesDrained)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  manactl info  <image-dir>        show image-set metadata
  manactl ranks <image-dir>        list per-rank images
  manactl blob  <image-dir> <rank> dump one rank's MANA state`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "manactl:", err)
	os.Exit(1)
}
