// Command benchreport converts `go test -bench` text output into a
// stable JSON baseline, so the repository's performance trajectory
// accumulates machine-readable points instead of scrollback. CI runs the
// benchmark suite once per build (-benchtime 1x as a smoke stage) and
// persists the parsed result as a BENCH_*.json artifact; committing one
// such file pins the baseline the next optimization PR measures against.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | go run ./cmd/benchreport -out BENCH_baseline.json
//	go test -run '^$' -bench . -benchtime 1x ./... | \
//	  go run ./cmd/benchreport -out BENCH_ci.json -compare BENCH_baseline.json -tolerance 25
//
// The parser keeps every benchmark line's iteration count, ns/op and
// custom metrics (virt-us/op, ckpt-us, cycle-us, ...), plus the goos /
// goarch / cpu header lines, in input order.
//
// -compare turns the run into a regression gate: after writing -out,
// the parsed report is checked against the named baseline and the
// process exits nonzero when any gated metric regressed beyond
// -tolerance percent. The gate defaults to the virtual-time units
// (virt-us/op, virt-ms/run) because they are machine-independent —
// the simulated cluster's clock, not the runner's; wall-clock units
// can be added with -units at the cost of host-noise sensitivity.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Schema is bumped when the JSON shape changes.
const Schema = 1

// Metric is one reported value of a benchmark line.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Bench is one parsed benchmark result line.
type Bench struct {
	Name    string   `json:"name"`
	Iters   int64    `json:"iters"`
	Metrics []Metric `json:"metrics"`
}

// Report is the persisted baseline.
type Report struct {
	Schema  int     `json:"schema"`
	Goos    string  `json:"goos,omitempty"`
	Goarch  string  `json:"goarch,omitempty"`
	CPU     string  `json:"cpu,omitempty"`
	Benches []Bench `json:"benchmarks"`
}

// benchLine matches "BenchmarkName[/sub]-P   N   123 ns/op [v unit]...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// procSuffix is the "-N" GOMAXPROCS suffix go test appends to benchmark
// names on multi-core machines. It is stripped so a baseline generated
// on one machine matches reports from runners with a different core
// count — the whole point of keeping baselines comparable.
var procSuffix = regexp.MustCompile(`-\d+$`)

// metricPair matches "value unit" fragments of a benchmark line.
var metricPair = regexp.MustCompile(`([0-9.eE+-]+)\s+(\S+)`)

func parse(lines *bufio.Scanner) (*Report, error) {
	rep := &Report{Schema: Schema}
	for lines.Scan() {
		line := strings.TrimSpace(lines.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchreport: bad iteration count in %q: %w", line, err)
		}
		b := Bench{Name: procSuffix.ReplaceAllString(m[1], ""), Iters: iters}
		for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue // not a metric fragment (e.g. a stray word)
			}
			b.Metrics = append(b.Metrics, Metric{Value: v, Unit: pair[2]})
		}
		rep.Benches = append(rep.Benches, b)
	}
	if err := lines.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benches) == 0 {
		return nil, fmt.Errorf("benchreport: no benchmark lines on stdin (pipe `go test -bench` output in)")
	}
	return rep, nil
}

func main() {
	out := flag.String("out", "", "output path (default: stdout)")
	compare := flag.String("compare", "", "baseline benchreport JSON to gate this run against")
	tolerance := flag.Float64("tolerance", 25, "percent slowdown beyond which a gated metric fails the -compare gate")
	units := flag.String("units", defaultUnits, "comma-separated metric units the -compare gate checks")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
	} else {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benches))
	}
	if *compare != "" {
		// With no -out, stdout is the JSON report; keep the gate's text
		// verdicts off it so the stream stays parseable.
		gateOut := io.Writer(os.Stdout)
		if *out == "" {
			gateOut = os.Stderr
		}
		os.Exit(runGate(gateOut, rep, *compare, *units, *tolerance))
	}
}
