package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// The regression gate: -compare checks the freshly parsed report
// against a committed baseline and fails the build when a benchmark
// slowed beyond tolerance.
//
// By default only the *virtual-time* metrics (virt-us/op, virt-ms/run)
// are gated. They are the simulated cluster's own clock — deterministic
// up to sub-percent scheduler wiggle and identical across host
// machines — so a 25% tolerance catches real regressions without
// tripping on runner noise. Wall-clock units (ns/op, cycle-us, ckpt-us)
// vary with the host CPU and with -benchtime 1x sampling, and are only
// compared when explicitly listed via -units.

// defaultUnits is the comma-separated gate default.
const defaultUnits = "virt-us/op,virt-ms/run"

// regression is one gated metric's verdict.
type regression struct {
	Name     string
	Unit     string
	Base     float64
	Current  float64
	DeltaPct float64
}

// metricsByUnit indexes one benchmark's metrics.
func metricsByUnit(b Bench) map[string]float64 {
	m := make(map[string]float64, len(b.Metrics))
	for _, metric := range b.Metrics {
		m[metric.Unit] = metric.Value
	}
	return m
}

// compareReports gates cur against base: every baseline benchmark's
// gated units are checked in cur, and a unit counts as regressed when
// cur > base * (1 + tolerancePct/100). Benchmarks present in only one
// report are reported (renames and removals should be visible) but do
// not fail the gate. Zero-valued baselines are skipped: there is no
// meaningful relative delta against 0.
func compareReports(cur, base *Report, units []string, tolerancePct float64) (regs []regression, lines []string) {
	gated := make(map[string]bool, len(units))
	for _, u := range units {
		if u = strings.TrimSpace(u); u != "" {
			gated[u] = true
		}
	}
	curByName := make(map[string]Bench, len(cur.Benches))
	for _, b := range cur.Benches {
		curByName[b.Name] = b
	}
	baseNames := make(map[string]bool, len(base.Benches))

	compared, improved := 0, 0
	for _, bb := range base.Benches {
		baseNames[bb.Name] = true
		cb, ok := curByName[bb.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("missing: %s (in baseline, not in this run)", bb.Name))
			continue
		}
		cm := metricsByUnit(cb)
		for _, metric := range bb.Metrics {
			if !gated[metric.Unit] || metric.Value == 0 {
				continue
			}
			curVal, ok := cm[metric.Unit]
			if !ok {
				lines = append(lines, fmt.Sprintf("missing metric: %s %s", bb.Name, metric.Unit))
				continue
			}
			compared++
			deltaPct := (curVal - metric.Value) / metric.Value * 100
			if deltaPct > tolerancePct {
				regs = append(regs, regression{
					Name: bb.Name, Unit: metric.Unit,
					Base: metric.Value, Current: curVal, DeltaPct: deltaPct,
				})
			} else if deltaPct < -tolerancePct {
				improved++
			}
		}
	}
	for _, cb := range cur.Benches {
		if !baseNames[cb.Name] {
			lines = append(lines, fmt.Sprintf("new: %s (not in baseline; ungated)", cb.Name))
		}
	}
	lines = append(lines, fmt.Sprintf(
		"gate: %d metrics compared against baseline (units %s, tolerance %g%%): %d regressed, %d improved beyond tolerance",
		compared, strings.Join(units, ","), tolerancePct, len(regs), improved))
	return regs, lines
}

// readBaseline loads a benchreport JSON written by -out.
func readBaseline(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchreport: reading baseline: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("benchreport: decoding baseline %s: %w", path, err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("benchreport: baseline %s is schema v%d, this build reads v%d",
			path, rep.Schema, Schema)
	}
	if len(rep.Benches) == 0 {
		return nil, fmt.Errorf("benchreport: baseline %s has no benchmarks", path)
	}
	return &rep, nil
}

// runGate executes the -compare flow: print the verdicts to w, return
// the process exit code (1 when any gated metric regressed). Callers
// pass stderr when stdout carries the JSON report itself.
func runGate(w io.Writer, cur *Report, baselinePath, unitsCSV string, tolerancePct float64) int {
	base, err := readBaseline(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	regs, lines := compareReports(cur, base, strings.Split(unitsCSV, ","), tolerancePct)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	if len(regs) == 0 {
		fmt.Fprintf(w, "bench gate PASS against %s\n", baselinePath)
		return 0
	}
	for _, r := range regs {
		fmt.Fprintf(w, "REGRESSION %s: %g %s -> %g %s (+%.1f%%, tolerance %g%%)\n",
			r.Name, r.Base, r.Unit, r.Current, r.Unit, r.DeltaPct, tolerancePct)
	}
	fmt.Fprintf(w, "bench gate FAIL against %s: %d regressed metrics\n", baselinePath, len(regs))
	return 1
}
