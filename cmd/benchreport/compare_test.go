package main

import (
	"bufio"
	"strings"
	"testing"
)

func bench(name string, metrics ...Metric) Bench {
	return Bench{Name: name, Iters: 1, Metrics: metrics}
}

func report(benches ...Bench) *Report {
	return &Report{Schema: Schema, Benches: benches}
}

func TestCompareGatesVirtualMetrics(t *testing.T) {
	base := report(
		bench("BenchmarkA", Metric{100, "ns/op"}, Metric{10, "virt-us/op"}),
		bench("BenchmarkB", Metric{100, "ns/op"}, Metric{50, "virt-ms/run"}),
	)
	// A regresses 50% on virt-us/op; B improves; ns/op noise (4x!) must
	// not trip the default gate.
	cur := report(
		bench("BenchmarkA", Metric{400, "ns/op"}, Metric{15, "virt-us/op"}),
		bench("BenchmarkB", Metric{400, "ns/op"}, Metric{40, "virt-ms/run"}),
	)
	regs, _ := compareReports(cur, base, strings.Split(defaultUnits, ","), 25)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly BenchmarkA", regs)
	}
	r := regs[0]
	if r.Name != "BenchmarkA" || r.Unit != "virt-us/op" || r.DeltaPct < 49 || r.DeltaPct > 51 {
		t.Fatalf("regression = %+v", r)
	}
}

func TestCompareWithinToleranceAndImprovementsPass(t *testing.T) {
	base := report(bench("BenchmarkA", Metric{10, "virt-us/op"}))
	for _, v := range []float64{10, 12.4, 5} { // +0%, +24%, -50%
		cur := report(bench("BenchmarkA", Metric{v, "virt-us/op"}))
		if regs, _ := compareReports(cur, base, []string{"virt-us/op"}, 25); len(regs) != 0 {
			t.Fatalf("value %v tripped the 25%% gate: %+v", v, regs)
		}
	}
}

func TestCompareExplicitWallClockUnits(t *testing.T) {
	base := report(bench("BenchmarkA", Metric{100, "ns/op"}))
	cur := report(bench("BenchmarkA", Metric{200, "ns/op"}))
	if regs, _ := compareReports(cur, base, []string{"ns/op"}, 25); len(regs) != 1 {
		t.Fatalf("explicit ns/op gating missed a 2x regression: %+v", regs)
	}
}

func TestCompareSurvivesRenamesAndZeroBaselines(t *testing.T) {
	base := report(
		bench("BenchmarkGone", Metric{10, "virt-us/op"}),
		bench("BenchmarkZero", Metric{0, "virt-us/op"}),
	)
	cur := report(
		bench("BenchmarkNew", Metric{999, "virt-us/op"}),
		bench("BenchmarkZero", Metric{5, "virt-us/op"}),
	)
	regs, lines := compareReports(cur, base, []string{"virt-us/op"}, 25)
	if len(regs) != 0 {
		t.Fatalf("renames/zero baselines failed the gate: %+v", regs)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "missing: BenchmarkGone") || !strings.Contains(joined, "new: BenchmarkNew") {
		t.Fatalf("rename visibility lost:\n%s", joined)
	}
}

// End-to-end over real `go test -bench` text: parse both sides, then
// gate — the exact CI flow.
func TestParseAndGateEndToEnd(t *testing.T) {
	baseText := `
goos: linux
goarch: amd64
cpu: Intel(R) Xeon(R)
BenchmarkFigX/size=1-8          1        367018 ns/op               86.29 virt-us/op
BenchmarkFigY-8                 1        588214 ns/op               12.00 virt-ms/run
PASS
`
	curText := `
goos: linux
BenchmarkFigX/size=1-16         1        212345 ns/op              200.00 virt-us/op
BenchmarkFigY-16                1        999999 ns/op               12.01 virt-ms/run
PASS
`
	base, err := parse(bufio.NewScanner(strings.NewReader(baseText)))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := parse(bufio.NewScanner(strings.NewReader(curText)))
	if err != nil {
		t.Fatal(err)
	}
	// The -N proc suffix differs (8 vs 16 cores) and must not break the
	// name join.
	regs, _ := compareReports(cur, base, strings.Split(defaultUnits, ","), 25)
	if len(regs) != 1 || regs[0].Name != "BenchmarkFigX/size=1" {
		t.Fatalf("regressions = %+v", regs)
	}
}
