// Command osu-micro runs one OSU-style micro-benchmark under a chosen
// stack, the reproduction's analog of running osu_alltoall under mpirun
// with optional Mukautuva/MANA interposition:
//
//	osu-micro -bench alltoall -impl openmpi -abi mukautuva -ckpt mana
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/osu"
)

func main() {
	var (
		bench  = flag.String("bench", "alltoall", "benchmark: alltoall, bcast, allreduce")
		impl   = flag.String("impl", "mpich", "MPI implementation: mpich, openmpi, stdabi")
		abiMod = flag.String("abi", "native", "binding: native, mukautuva")
		ckpt   = flag.String("ckpt", "none", "checkpoint package: none, mana")
		nodes  = flag.Int("nodes", 4, "compute nodes")
		rpn    = flag.Int("rpn", 12, "ranks per node")
		iters  = flag.Int("iters", 20, "measured iterations per size")
		warmup = flag.Int("warmup", 4, "warm-up iterations")
		maxSz  = flag.Int("max-size", 1<<18, "largest message size in bytes")
	)
	flag.Parse()

	stack := repro.DefaultStack(repro.Impl(*impl), repro.ABIMode(*abiMod), repro.CkptMode(*ckpt))
	stack.Net.Nodes = *nodes
	stack.Net.RanksPerNode = *rpn
	if err := stack.Validate(); err != nil {
		fatal(err)
	}
	prog := "osu." + *bench
	job, err := repro.Launch(stack, prog, repro.WithConfigure(func(rank int, p core.Program) {
		b := p.(*osu.LatencyBench)
		b.Iters = *iters
		b.Warmup = *warmup
		var sizes []int
		for sz := 1; sz <= *maxSz; sz <<= 1 {
			sizes = append(sizes, sz)
		}
		b.Sizes = sizes
	}))
	if err != nil {
		fatal(err)
	}
	if err := job.Wait(); err != nil {
		fatal(err)
	}
	b := job.Program(0).(*osu.LatencyBench)
	sizes, means := b.Results()
	fmt.Printf("# OSU Micro-Benchmark (simulated): MPI_%s\n", titleOf(*bench))
	fmt.Printf("# Stack: %s, %d ranks (%dx%d)\n", stack.Label(), stack.Net.Size(), *nodes, *rpn)
	fmt.Printf("%-12s %s\n", "# Size", "Avg Latency(us)")
	for i, sz := range sizes {
		fmt.Printf("%-12d %.2f\n", sz, means[i])
	}
}

func titleOf(bench string) string {
	switch bench {
	case "alltoall":
		return "Alltoall"
	case "bcast":
		return "Bcast"
	case "allreduce":
		return "Allreduce"
	}
	return bench
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "osu-micro:", err)
	os.Exit(1)
}
