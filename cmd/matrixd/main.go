// Command matrixd serves one scenario-matrix run as a service: a
// content-addressed store of completed cell results plus a lease-based
// work-stealing scheduler, over plain HTTP. Workers are paperfigs
// processes pointed at it (paperfigs -matrix -remote URL); they need no
// shard assignment and no shared filesystem — the lease queue replaces
// static -shard i/n partitioning, so a straggler-heavy slice can no
// longer gate the whole run behind one unlucky shard.
//
// Usage:
//
//	matrixd -store .scenario-cache [-addr :8341] [-full] [-faults=false]
//	        [-apps app.comd,app.wave] [-reps N] [-seed N]
//	        [-lease-ttl 10m] [-once -out results.json]
//	        [-metrics-out metrics.prom]
//
// While serving, GET /metrics exposes the scheduler's operational
// counters in Prometheus text format and GET /status a human summary;
// with -once, -metrics-out writes the final /metrics snapshot to a
// file on exit so CI artifacts never race the shutdown.
//
// The store directory is the same content-addressed cache paperfigs
// -cache uses, holding the same bytes: a warm local cache seeds the
// service, and the service's store warms later local runs. Cells the
// store already holds are complete before the first lease; recorded
// per-cell wall times order the live queue longest-expected-first.
//
// With -once, matrixd serves until every cell is complete, writes the
// assembled report to -out, and exits — nonzero if any cell failed —
// which is the CI shape: start matrixd, start N workers, wait.
// Without -once it serves forever; the report is available at /report
// once the run drains (and the whole process can be re-pointed at a
// new engine version just by restarting the binary — the store
// re-scan does the invalidation).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/scenario/remote"
)

func main() {
	var (
		addr     = flag.String("addr", ":8341", "listen address")
		storeDir = flag.String("store", "", "content-addressed result store directory (required; same format as paperfigs -cache)")
		full     = flag.Bool("full", false, "serve the matrix at paper scale (default: quick smoke scale)")
		withFlt  = flag.Bool("faults", true, "include the fault-injection axis in the matrix")
		apps     = flag.String("apps", "", "override the matrix program axis (comma-separated registered programs)")
		reps     = flag.Int("reps", 0, "override repetition count")
		nodes    = flag.Int("nodes", 0, "override node count")
		rpn      = flag.Int("rpn", 0, "override ranks per node")
		seed     = flag.Int64("seed", 0, "base seed perturbing every scenario's deterministic jitter seeds")
		progress = flag.String("progress", "", "rank execution engine workers must use: goroutine (default) or event")
		ttl      = flag.Duration("lease-ttl", remote.DefaultLeaseTTL, "lease duration; an expired lease requeues its cell")
		once     = flag.Bool("once", false, "serve until the run completes, write the report, then exit")
		out      = flag.String("out", "results.json", "report path (-once only)")
		metrics  = flag.String("metrics-out", "", "write a final /metrics snapshot to this file before exiting (-once only); avoids racing a scrape against shutdown")
	)
	flag.Parse()

	if *storeDir == "" {
		fatal(fmt.Errorf("-store is required"))
	}
	progressMode := core.ProgressMode(*progress)
	if err := progressMode.Validate(); err != nil {
		fatal(err)
	}

	o := scenario.Quick()
	if *full {
		o = scenario.Full()
	}
	o.Progress = progressMode
	if *reps > 0 {
		o.Reps = *reps
	}
	if *nodes > 0 {
		o.Nodes = *nodes
	}
	if *rpn > 0 {
		o.RanksPerNode = *rpn
	}
	o.BaseSeed = *seed

	m := scenario.DefaultMatrix()
	if !*withFlt {
		m.Faults = nil
	}
	if *apps != "" {
		m.Programs = strings.Split(*apps, ",")
		for i := range m.Programs {
			m.Programs[i] = strings.TrimSpace(m.Programs[i])
		}
	}

	store, err := scenario.OpenCache(*storeDir)
	if err != nil {
		fatal(err)
	}
	srv, err := remote.NewServer(remote.ServerConfig{
		Specs:    m.Enumerate(),
		Options:  o,
		Store:    store,
		LeaseTTL: *ttl,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	p := srv.Progress()
	fmt.Printf("matrixd: serving %d cells on %s (%d already complete from %s, lease TTL %v)\n",
		p.Total, ln.Addr(), p.Done, *storeDir, *ttl)

	if !*once {
		fatal(http.Serve(ln, srv))
	}

	httpSrv := &http.Server{Handler: srv}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()
	<-srv.Done()
	rep := srv.Report()
	// Give in-flight idempotent re-uploads a moment, then stop listening.
	time.Sleep(100 * time.Millisecond)
	httpSrv.Close()

	fmt.Println(rep.Render())
	if p := rep.Provenance; p != nil {
		fmt.Printf("provenance: %d live, %d cached\n", p.Live, p.Cached)
		for _, w := range p.Shards {
			fmt.Printf("  worker %s: %d cells, %.1fs wall\n", w.Label, w.Scenarios, float64(w.WallMS)/1000)
		}
	}
	if err := rep.WriteJSON(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (schema v%d)\n", *out, scenario.SchemaVersion)
	if *metrics != "" {
		if err := os.WriteFile(*metrics, []byte(srv.Metrics()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *metrics)
	}
	if rep.Failed > 0 {
		fatal(fmt.Errorf("%d of %d scenarios failed", rep.Failed, rep.Scenarios))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "matrixd:", err)
	os.Exit(1)
}
