// Command crossckpt runs the paper's Section 5.3 scenario across the
// whole matrix of restart pairings: for every checkpointed stack of the
// chosen program, launch it, checkpoint at the first safe point, let the
// original complete, restart the images under every implementation the
// image is valid for, and report each pairing's outcome. The pairings
// come from the scenario matrix — cross-implementation restarts (the
// paper's headline) exist exactly where MANA checkpoints through the
// standard ABI; plain DMTCP pairings restart only under their own stack.
//
// Usage:
//
//	crossckpt [-program osu.alltoall] [-from openmpi] [-to mpich] [-cross-only]
//	          [-faults] [-nodes 4] [-rpn 12] [-max-size 16384] [-parallel N]
//	          [-dir images/] [-out report.json]
//	crossckpt -shrink [-program app.wave] [-from impl] [-nodes 2] [-rpn 2] [-out report.json]
//	crossckpt -replicate [-program app.wave] [-from impl] [-nodes 2] [-rpn 2] [-out report.json]
//
// With -shrink the tool runs the OTHER half of fault-tolerant MPI
// instead: ULFM in-place recovery legs, one per implementation in both
// native and Mukautuva-shimmed bindings — a non-fatal rank crash fires
// mid-run, survivors' pending operations complete with the
// implementation's own MPIX proc-failed code, and the application
// revokes, shrinks and recomputes on the survivors-only communicator.
// No checkpoints are written and nothing restarts.
//
// With -replicate the tool runs the THIRD recovery mode: replication
// failover legs, again one per implementation in both bindings. Every
// logical rank runs as a primary + warm-shadow pair, a non-fatal rank
// crash kills one primary mid-run, and its shadow is promoted in place
// — no checkpoints, no restart, no shrink, and the job completes at
// full size with the same results as a fault-free run.
//
// Images live in a throwaway temp directory unless -dir is given; pass
// -dir to keep them for inspection with manactl (the report's lineage
// paths are relative to it).
//
// With -from/-to the pairing list is filtered to matching launch/restart
// implementations: `crossckpt -from openmpi -to mpich` runs the paper's
// Section 5.3 direction over both standard-ABI bindings (one MANA
// pairing through Mukautuva, one through Wi4MPI).
//
// With -faults every pairing runs under an injected failure instead of
// the clean compare protocol: the launch leg checkpoints periodically, a
// crash fires mid-run (a whole node for cross-implementation pairings —
// the paper's headline demonstration: checkpoint under Open MPI, lose a
// node, automatically restart and complete under MPICH; one rank for
// same-implementation pairings), and the recovery driver restarts from
// the latest complete image. The JSON report records each cell's fault
// spec, detection/lost-work virtual times and image lineage.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/scenario"
)

func main() {
	var (
		program   = flag.String("program", "osu.alltoall", "registered program to run under every pairing")
		from      = flag.String("from", "", "only pairings launched under this implementation")
		to        = flag.String("to", "", "only pairings restarted under this implementation")
		crossOnly = flag.Bool("cross-only", false, "only cross-implementation pairings")
		withFlt   = flag.Bool("faults", false, "inject a crash into every pairing and drive automated recovery (node crash on cross-implementation pairings, rank crash otherwise)")
		shrink    = flag.Bool("shrink", false, "run ULFM shrink-recovery legs instead of restart pairings: one non-fatal rank crash per implementation (native and Mukautuva-shimmed), survived in place by revoke/shrink/recompute")
		replicate = flag.Bool("replicate", false, "run replication-failover legs instead of restart pairings: one non-fatal primary crash per implementation (native and Mukautuva-shimmed), absorbed by promoting the warm shadow in place")
		nodes     = flag.Int("nodes", 4, "compute nodes")
		rpn       = flag.Int("rpn", 12, "ranks per node")
		maxSz     = flag.Int("max-size", 1<<14, "largest message size in bytes")
		reps      = flag.Int("reps", 1, "repetitions per pairing")
		parallel  = flag.Int("parallel", 0, "bound on concurrently running pairings (0 = one per CPU)")
		dir       = flag.String("dir", "", "keep checkpoint images under this directory (default: deleted temp dir; report lineage paths are relative to it)")
		out       = flag.String("out", "", "optional path for the JSON report")
	)
	flag.Parse()

	m := scenario.DefaultMatrix()
	m.Programs = []string{*program}
	m.Faults = nil // pristine pairings; -faults arms its own crash per pairing
	var specs []scenario.Spec
	if *shrink || *replicate {
		// In-place recovery legs have no restart side, no pairing filter
		// beyond the launch implementation, and arm their own non-fatal
		// fault: refuse the restart-mode flags instead of silently
		// ignoring them.
		if *to != "" || *crossOnly || *withFlt {
			fatal(fmt.Errorf("-shrink/-replicate run in-place recovery legs; they conflict with -to, -cross-only and -faults"))
		}
		if *shrink && *replicate {
			fatal(fmt.Errorf("-shrink and -replicate are separate demo modes; pick one"))
		}
		recovery := scenario.RecoveryShrink
		if *replicate {
			recovery = scenario.RecoveryReplicate
		}
		// The in-place demo legs: every implementation survives the same
		// seeded rank crash in place — natively and through the shim, so
		// the MPIX error classes (shrink) and the promotion machinery
		// (replicate) cross the translation layer both ways.
		for _, impl := range []core.Impl{core.ImplMPICH, core.ImplOpenMPI, core.ImplStdABI} {
			for _, mode := range []core.ABIMode{core.ABINative, core.ABIMukautuva} {
				if *from != "" && impl != core.Impl(*from) {
					continue
				}
				specs = append(specs, scenario.Spec{
					Program: *program, Impl: impl, ABI: mode, Ckpt: core.CkptNone,
					Fault: faults.KindRankCrash, Recovery: recovery,
				})
			}
		}
		runSpecs(specs, *program, *nodes, *rpn, *maxSz, *reps, *parallel, *dir, *out)
		return
	}
	for _, s := range m.Enumerate() {
		if !s.HasRestart() {
			continue
		}
		if *from != "" && s.Impl != core.Impl(*from) {
			continue
		}
		if *to != "" && s.RestartImpl != core.Impl(*to) {
			continue
		}
		if *crossOnly && s.RestartImpl == s.Impl {
			continue
		}
		if *withFlt {
			if s.RestartImpl != s.Impl {
				s.Fault = faults.KindNodeCrash
			} else {
				s.Fault = faults.KindRankCrash
			}
		}
		specs = append(specs, s)
	}
	if len(specs) == 0 {
		fatal(fmt.Errorf("no valid restart pairings for program=%s from=%q to=%q", *program, *from, *to))
	}

	o := scenario.Quick()
	o.Nodes = *nodes
	o.RanksPerNode = *rpn
	o.MaxSize = *maxSz
	o.Reps = *reps
	o.Parallel = *parallel
	o.Timeout = 10 * time.Minute
	o.Scratch = *dir

	fmt.Printf("running %d restart pairings of %s over %dx%d ranks ...\n\n",
		len(specs), *program, *nodes, *rpn)
	rep := scenario.Run(specs, o)

	for _, res := range rep.Results {
		kind := "same-impl"
		if res.Cross() {
			kind = "CROSS-IMPL"
		}
		switch {
		case res.Status != scenario.StatusPass:
			fmt.Printf("FAIL %-10s %-70s %s\n", kind, res.ID, res.Error)
		case len(res.Faults) > 0:
			f := res.Faults[0]
			fmt.Printf("OK   %-10s %-70s %s ranks %v at step %d; recovered from image step %d (%d restarts, %.3f ms lost)\n",
				kind, res.ID, f.Kind, f.Ranks, f.Step, f.ImageStep, f.Restarts, f.LostVirtMS)
		case len(res.Lineage) > 0:
			fmt.Printf("OK   %-10s %-70s ckpt step %d\n", kind, res.ID, res.Lineage[0].Step)
		default:
			fmt.Printf("OK   %-10s %-70s\n", kind, res.ID)
		}
	}
	var cross int
	for _, res := range rep.Results {
		if res.Cross() && res.Status == scenario.StatusPass {
			cross++
		}
	}
	fmt.Printf("\n%d/%d pairings passed (%d cross-implementation restarts, no recompilation).\n",
		rep.Passed, rep.Scenarios, cross)

	if *out != "" {
		if err := rep.WriteJSON(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (schema v%d)\n", *out, scenario.SchemaVersion)
	}
	if rep.Failed > 0 {
		fatal(fmt.Errorf("%d pairings failed", rep.Failed))
	}
}

// runSpecs executes the in-place recovery demo legs (shrink or
// replicate) and reports each in its mode's own terms: victims,
// survivors and in-place recoveries for shrink; killed primaries and
// promoted shadows for replicate.
func runSpecs(specs []scenario.Spec, program string, nodes, rpn, maxSz, reps, parallel int, dir, out string) {
	if len(specs) == 0 {
		fatal(fmt.Errorf("no in-place recovery legs selected for program=%s", program))
	}
	o := scenario.Quick()
	o.Nodes = nodes
	o.RanksPerNode = rpn
	o.MaxSize = maxSz
	o.Reps = reps
	o.Parallel = parallel
	o.Timeout = 10 * time.Minute
	o.Scratch = dir

	label := "ULFM shrink-recovery"
	if specs[0].Recovery == scenario.RecoveryReplicate {
		label = "replication-failover"
	}
	fmt.Printf("running %d %s legs of %s over %dx%d ranks ...\n\n",
		len(specs), label, program, nodes, rpn)
	rep := scenario.Run(specs, o)
	for _, res := range rep.Results {
		switch {
		case res.Status != scenario.StatusPass:
			fmt.Printf("FAIL %-70s %s\n", res.ID, res.Error)
		case len(res.Faults) > 0 && res.Faults[0].Promotions > 0:
			f := res.Faults[0]
			fmt.Printf("OK   %-70s primary %v died at step %d; shadow %v promoted in place, job completed at full size\n",
				res.ID, f.Ranks, f.Step, f.Promoted)
		case len(res.Faults) > 0:
			f := res.Faults[0]
			fmt.Printf("OK   %-70s rank %v died at step %d; %d survivors shrank and completed in place (%d shrink(s))\n",
				res.ID, f.Ranks, f.Step, f.Survivors, f.Shrinks)
		default:
			fmt.Printf("OK   %-70s\n", res.ID)
		}
	}
	fmt.Printf("\n%d/%d %s legs passed (no checkpoints written, no restarts).\n",
		rep.Passed, rep.Scenarios, label)
	if out != "" {
		if err := rep.WriteJSON(out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (schema v%d)\n", out, scenario.SchemaVersion)
	}
	if rep.Failed > 0 {
		fatal(fmt.Errorf("%d shrink legs failed", rep.Failed))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crossckpt:", err)
	os.Exit(1)
}
