// Command crossckpt runs the paper's Section 5.3 scenario end to end:
// launch the modified OSU alltoall under one MPI implementation through
// the standard ABI, checkpoint it in the post-warm-up sleep window,
// restart the images under a different implementation, and report that
// the sweep completed with the stack swapped mid-run.
//
//	crossckpt -from openmpi -to mpich -dir images/
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/osu"
)

func main() {
	var (
		from  = flag.String("from", "openmpi", "implementation to launch under")
		to    = flag.String("to", "mpich", "implementation to restart under")
		dir   = flag.String("dir", "crossckpt-images", "checkpoint image directory")
		nodes = flag.Int("nodes", 4, "compute nodes")
		rpn   = flag.Int("rpn", 12, "ranks per node")
		maxSz = flag.Int("max-size", 1<<14, "largest message size in bytes")
	)
	flag.Parse()

	launchStack := repro.DefaultStack(repro.Impl(*from), repro.ABIMukautuva, repro.CkptMANA)
	launchStack.Net.Nodes = *nodes
	launchStack.Net.RanksPerNode = *rpn

	configure := repro.WithConfigure(func(rank int, p core.Program) {
		b := p.(*osu.LatencyBench)
		var sizes []int
		for sz := 1; sz <= *maxSz; sz <<= 1 {
			sizes = append(sizes, sz)
		}
		b.Sizes = sizes
		b.Iters = 10
		b.Warmup = 3
	})

	fmt.Printf("launching osu.alltoall.ckptwindow under %s ...\n", launchStack.Label())
	job, err := repro.Launch(launchStack, "osu.alltoall.ckptwindow", configure)
	if err != nil {
		fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // reach the sleep window
	fmt.Printf("checkpointing into %s ...\n", *dir)
	if err := job.Checkpoint(*dir, true); err != nil {
		fatal(err)
	}
	if err := job.Wait(); err != nil {
		fatal(err)
	}
	fmt.Println("checkpoint complete; original job stopped.")

	restartStack := repro.DefaultStack(repro.Impl(*to), repro.ABIMukautuva, repro.CkptMANA)
	restartStack.Net.Nodes = *nodes
	restartStack.Net.RanksPerNode = *rpn
	fmt.Printf("restarting under %s ...\n", restartStack.Label())
	restarted, err := repro.Restart(*dir, restartStack)
	if err != nil {
		fatal(err)
	}
	if err := restarted.Wait(); err != nil {
		fatal(err)
	}
	b := restarted.Program(0).(*osu.LatencyBench)
	sizes, means := b.Results()
	fmt.Printf("sweep completed after restart under %s:\n", restartStack.Label())
	fmt.Printf("%-12s %s\n", "# Size", "Avg Latency(us)")
	for i, sz := range sizes {
		fmt.Printf("%-12d %.2f\n", sz, means[i])
	}
	fmt.Printf("\nOK: launched under %s, checkpointed, restarted under %s — no recompilation.\n",
		*from, *to)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crossckpt:", err)
	os.Exit(1)
}
