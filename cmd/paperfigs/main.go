// Command paperfigs regenerates the paper's evaluation figures: the OSU
// latency sweeps (Figures 2-4), the real-application completion times
// (Figure 5), the cross-implementation checkpoint/restart experiment
// (Figure 6), and the FSGSBASE ablation.
//
// Usage:
//
//	paperfigs [-fig 2,3,4,5,6|all|fsgsbase] [-quick] [-out results/] [-reps N]
//
// Full scale reproduces the paper's 4x12-rank setup with 5 repetitions and
// takes some minutes; -quick runs a small smoke configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	var (
		figs  = flag.String("fig", "all", "comma-separated figure list: 2,3,4,5,6,fsgsbase or 'all'")
		quick = flag.Bool("quick", false, "run the small smoke configuration instead of paper scale")
		out   = flag.String("out", "results", "output directory for CSV files")
		reps  = flag.Int("reps", 0, "override repetition count")
		nodes = flag.Int("nodes", 0, "override node count")
		rpn   = flag.Int("rpn", 0, "override ranks per node")
	)
	flag.Parse()

	opts := harness.Full()
	if *quick {
		opts = harness.Quick()
	}
	if *reps > 0 {
		opts.Reps = *reps
	}
	if *nodes > 0 {
		opts.Nodes = *nodes
	}
	if *rpn > 0 {
		opts.RanksPerNode = *rpn
	}

	names := strings.Split(*figs, ",")
	if *figs == "all" {
		names = []string{"2", "3", "4", "5", "6"}
	}
	scratch, err := os.MkdirTemp("", "paperfigs-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(scratch)

	for _, name := range names {
		name = strings.TrimSpace(name)
		fig, err := harness.ByName(name, opts, scratch)
		if err != nil {
			fatal(fmt.Errorf("figure %s: %w", name, err))
		}
		fmt.Println(fig.Render())
		if err := fig.WriteCSV(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s/%s.csv\n\n", *out, fig.ID)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfigs:", err)
	os.Exit(1)
}
