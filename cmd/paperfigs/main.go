// Command paperfigs regenerates the paper's evaluation figures — the OSU
// latency sweeps (Figures 2-4), the real-application completion times
// (Figure 5), the cross-implementation checkpoint/restart experiment
// (Figure 6), the FSGSBASE ablation, the recovery-overhead table
// ("recovery": time-to-recover vs checkpoint interval under an injected
// crash) — and, with -matrix, runs the full scenario matrix: every valid
// app x MPI implementation x checkpointer combination, cross-restart
// pairings and the fault axis included, concurrently over a bounded
// worker pool, persisted as versioned JSON.
//
// Usage:
//
//	paperfigs [-fig 2,3,4,5,6|all|fsgsbase|recovery|shrinkrecovery|recoveryfrontier] [-quick] [-out results/] [-reps N] [-parallel N]
//	paperfigs -matrix [-full] [-faults=false] [-parallel N] [-out results.json] [-apps app.comd,app.wave]
//	paperfigs -matrix -shard 0/4 -cache .scenario-cache -out shard-0.json
//	paperfigs -matrix -remote http://host:8341 [-worker NAME] [-cache DIR]
//	paperfigs -fetch-report -remote http://host:8341 -out results.json
//	paperfigs -merge shard-0.json,shard-1.json,shard-2.json,shard-3.json -out results.json
//	paperfigs -matrix -trace traces/              # one Perfetto trace JSON per executed cell
//	paperfigs -trace-cell ID [-trace traces/]     # run one cell traced, print the trace path
//	paperfigs -list [-faults=false] [-apps ...]   # print the cell set, run nothing
//	paperfigs -cache-prune -cache .scenario-cache # delete stale-engine cache entries, run nothing
//
// The "shrinkrecovery" figure compares the two recovery halves of
// fault-tolerant MPI on the same seeded rank crash: ULFM in-place
// recovery (revoke/shrink/recompute, no checkpointer) versus automated
// checkpoint/restart, per implementation. "recoveryfrontier" widens the
// comparison to all three recovery modes: replication failover (warm
// shadow replicas, ~2x steady-state message overhead, free recovery),
// ULFM shrink, and checkpoint/restart, against a fault-free anchor.
//
// Figure mode writes one CSV per figure into -out (a directory). Matrix
// mode writes one JSON report to -out (a file; ".json" is appended to the
// default). Figures run at paper scale (4x12 ranks, 5 repetitions) unless
// -quick; the matrix runs at the quick smoke scale unless -full, because
// it covers the whole combination space rather than one figure. The
// fault axis (rank-crash recovery over every restart pairing, node-crash
// over every cross-implementation pairing, NIC degradation over every
// plain cell) is on by default in matrix mode; -faults=false drops it.
//
// The incremental layer: -shard i/n runs only the i-th of n disjoint,
// deterministic slices of the matrix (independent processes cover the
// whole matrix with no coordination), -cache serves cells whose inputs
// are unchanged from a persistent content-addressed result cache (both
// modes), and -merge recombines shard/partial reports into one report —
// with provenance recording live-vs-cached cells and per-shard wall
// times — without running any scenarios.
// -cache-prune deletes entries stamped with a stale EngineVersion (each
// engine bump otherwise leaves its predecessors' whole generation of
// results dead on disk forever) plus undecodable ones, and exits.
//
// The service layer: -matrix -remote URL turns this process into a
// work-stealing worker against a matrixd server (cmd/matrixd) — it
// leases cells one at a time, executes them, and uploads the results to
// the server's content-addressed store; the server decides the cell
// set, scale and seeds, so the worker takes no matrix knobs. A -cache
// directory composes as a local read-through tier: locally warm cells
// are published without re-executing. -fetch-report -remote URL polls
// the server for the assembled report and writes it to -out, exiting
// nonzero on failed cells exactly like a local matrix run. CI runs the
// matrix as one matrixd plus a worker fleet; -shard/-merge keep working
// for offline, serverless runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/scenario/remote"
)

func main() {
	var (
		figs      = flag.String("fig", "all", "comma-separated figure list: 2,3,4,5,6,fsgsbase,recovery,shrinkrecovery,recoveryfrontier or 'all'")
		quick     = flag.Bool("quick", false, "run figures at the small smoke configuration instead of paper scale")
		out       = flag.String("out", "results", "output directory for CSV files; JSON file path in -matrix mode")
		reps      = flag.Int("reps", 0, "override repetition count")
		nodes     = flag.Int("nodes", 0, "override node count")
		rpn       = flag.Int("rpn", 0, "override ranks per node")
		parallel  = flag.Int("parallel", 0, "bound on concurrently running scenarios (0 = one per CPU)")
		matrix    = flag.Bool("matrix", false, "run the full scenario matrix instead of figures")
		full      = flag.Bool("full", false, "run the matrix at paper scale (default: quick smoke scale)")
		apps      = flag.String("apps", "", "override the matrix program axis (comma-separated registered programs; -matrix only)")
		seed      = flag.Int64("seed", 0, "base seed perturbing every scenario's deterministic jitter seeds")
		scratch   = flag.String("scratch", "", "keep checkpoint images under this directory instead of a deleted temp dir (-matrix only)")
		withFlt   = flag.Bool("faults", true, "include the fault-injection axis in the matrix (-matrix only)")
		shardSel  = flag.String("shard", "", "run only one deterministic slice of the matrix, format i/n with 0 <= i < n (-matrix only)")
		cacheDir  = flag.String("cache", "", "content-addressed result cache directory; unchanged cells are served from it instead of re-executing")
		mergeIn   = flag.String("merge", "", "comma-separated shard/partial report JSONs to merge into one report at -out (runs nothing)")
		list      = flag.Bool("list", false, "print the enumerated matrix cells (id, program, impl, ABI path, ckpt, restart pairing, fault) without executing anything")
		prune     = flag.Bool("cache-prune", false, "delete cached cell results whose stamped engine version is stale (requires -cache), then exit without running anything")
		progress  = flag.String("progress", "", "rank execution engine for every scenario world: goroutine (default) or event (the large-rank scheduler; results are mode-invariant)")
		remoteURL = flag.String("remote", "", "matrixd server URL; with -matrix this process becomes a work-stealing worker, with -fetch-report it downloads the assembled report")
		workerNm  = flag.String("worker", "", "worker name for matrixd provenance (-remote only; default host.pid)")
		fetchRep  = flag.Bool("fetch-report", false, "poll the -remote server for the assembled matrix report, write it to -out and exit")
		traceDir  = flag.String("trace", "", "write one Chrome trace-event JSON (Perfetto-loadable, virtual-time) per executed cell into this directory (-matrix, -remote worker and -trace-cell modes)")
		traceCell = flag.String("trace-cell", "", "run exactly one matrix cell by ID with tracing on, write its trace under -trace (default traces/), and exit")
	)
	flag.Parse()

	progressMode := core.ProgressMode(*progress)
	if err := progressMode.Validate(); err != nil {
		fatal(err)
	}

	if *prune {
		if *cacheDir == "" {
			fatal(fmt.Errorf("-cache-prune requires -cache"))
		}
		if *matrix || *list || *mergeIn != "" || *shardSel != "" {
			fatal(fmt.Errorf("-cache-prune runs nothing; it conflicts with -matrix, -list, -merge and -shard"))
		}
		cache, err := scenario.OpenCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		removed, err := cache.Prune()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pruned %d stale cache entries under %s (engine version %d retained)\n",
			removed, *cacheDir, scenario.EngineVersion)
		return
	}

	if *list {
		var shard scenario.Shard
		if *shardSel != "" {
			var err error
			if shard, err = scenario.ParseShard(*shardSel); err != nil {
				fatal(err)
			}
		}
		runList(*apps, *withFlt, shard)
		return
	}

	if *full && *quick {
		fatal(fmt.Errorf("-full and -quick conflict; pick one"))
	}
	if *traceCell != "" {
		if *matrix || *mergeIn != "" || *shardSel != "" || *remoteURL != "" || *fetchRep {
			fatal(fmt.Errorf("-trace-cell runs one cell; it conflicts with -matrix, -merge, -shard, -remote and -fetch-report"))
		}
		runTraceCell(*traceCell, *traceDir, *full, *withFlt, *apps, *reps, *nodes, *rpn, *seed, *scratch, progressMode)
		return
	}
	if *fetchRep {
		if *remoteURL == "" {
			fatal(fmt.Errorf("-fetch-report requires -remote"))
		}
		if *matrix || *mergeIn != "" || *shardSel != "" {
			fatal(fmt.Errorf("-fetch-report runs nothing; it conflicts with -matrix, -merge and -shard"))
		}
		runFetchReport(*remoteURL, *out)
		return
	}
	if *remoteURL != "" {
		if !*matrix {
			fatal(fmt.Errorf("-remote requires -matrix (worker mode) or -fetch-report"))
		}
		if *shardSel != "" || *mergeIn != "" {
			fatal(fmt.Errorf("-remote workers steal work from the server's lease queue; -shard and -merge do not apply"))
		}
		if *full || *apps != "" || *reps > 0 || *nodes > 0 || *rpn > 0 || *seed != 0 || !*withFlt || *progress != "" {
			fatal(fmt.Errorf("the matrixd server owns the cell set, scale, seeds and progress mode; -full, -apps, -faults, -reps, -nodes, -rpn, -seed and -progress do not apply to -remote workers"))
		}
		runWorker(*remoteURL, *workerNm, *parallel, *scratch, *cacheDir, *traceDir)
		return
	}
	if *mergeIn != "" {
		if *matrix || *shardSel != "" || *cacheDir != "" {
			fatal(fmt.Errorf("-merge runs nothing; it conflicts with -matrix, -shard and -cache"))
		}
		runMerge(strings.Split(*mergeIn, ","), *out)
		return
	}
	var shard scenario.Shard
	if *shardSel != "" {
		var err error
		if shard, err = scenario.ParseShard(*shardSel); err != nil {
			fatal(err)
		}
	}
	if *matrix {
		runMatrix(*full, *withFlt, *parallel, *reps, *nodes, *rpn, *seed, *apps, *scratch, *cacheDir, *traceDir, shard, progressMode, *out)
		return
	}
	if *full || *apps != "" || *scratch != "" || *shardSel != "" || *traceDir != "" {
		fatal(fmt.Errorf("-full, -apps, -scratch, -shard and -trace require -matrix"))
	}

	opts := harness.Full()
	if *quick {
		opts = harness.Quick()
	}
	opts.Cache = *cacheDir
	if *reps > 0 {
		opts.Reps = *reps
	}
	if *nodes > 0 {
		opts.Nodes = *nodes
	}
	if *rpn > 0 {
		opts.RanksPerNode = *rpn
	}
	opts.Parallel = *parallel
	opts.Seed = *seed
	opts.Progress = progressMode

	names := strings.Split(*figs, ",")
	if *figs == "all" {
		names = []string{"2", "3", "4", "5", "6"}
	}
	figScratch, err := os.MkdirTemp("", "paperfigs-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(figScratch)

	for _, name := range names {
		name = strings.TrimSpace(name)
		fig, err := harness.ByName(name, opts, figScratch)
		if err != nil {
			fatal(fmt.Errorf("figure %s: %w", name, err))
		}
		fmt.Println(fig.Render())
		if err := fig.WriteCSV(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s/%s.csv\n\n", *out, fig.ID)
	}
}

// runList prints the enumerated matrix without executing anything — the
// cheap way to eyeball what a cell set covers (e.g. the stdabi cells and
// their cross-restart pairings) before paying for a run.
func runList(apps string, withFaults bool, shard scenario.Shard) {
	specs := shard.Select(buildMatrix(apps, withFaults).Enumerate())
	if shard.Count > 0 {
		fmt.Printf("shard %d/%d:\n", shard.Index, shard.Count)
	}
	fmt.Printf("%-78s %-10s %-8s %-10s %-6s %-18s %s\n",
		"ID", "PROGRAM", "IMPL", "ABI", "CKPT", "RESTART", "FAULT")
	for _, s := range specs {
		restart := "-"
		if s.HasRestart() {
			restart = fmt.Sprintf("%s+%s", s.RestartImpl, s.RestartABI)
		}
		fault := "-"
		if s.Fault != "" {
			fault = string(s.Fault)
			if s.Recovery != "" {
				fault += "~" + s.Recovery
			}
		}
		fmt.Printf("%-78s %-10s %-8s %-10s %-6s %-18s %s\n",
			s.ID(), s.Program, s.Impl, s.ABI, s.Ckpt, restart, fault)
	}
	fmt.Printf("%d cells\n", len(specs))
}

// buildMatrix applies the shared -apps/-faults knobs to the default
// matrix — one definition, so -list always prints exactly the cell set
// -matrix would run.
func buildMatrix(apps string, withFaults bool) scenario.MatrixSpec {
	m := scenario.DefaultMatrix()
	if !withFaults {
		m.Faults = nil
	}
	if apps != "" {
		m.Programs = strings.Split(apps, ",")
		for i := range m.Programs {
			m.Programs[i] = strings.TrimSpace(m.Programs[i])
		}
	}
	return m
}

// runMerge recombines shard/partial reports into one and writes it.
func runMerge(paths []string, out string) {
	var parts []*scenario.Report
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		rep, err := scenario.ReadReport(p)
		if err != nil {
			fatal(err)
		}
		parts = append(parts, rep)
	}
	merged, err := scenario.MergeReports(parts...)
	if err != nil {
		fatal(err)
	}
	writeReport(merged, out, fmt.Sprintf("merged from %d reports", len(parts)))
}

// writeReport renders, persists and pass/fail-gates a matrix report:
// the shared epilogue of -matrix and -merge modes.
func writeReport(rep *scenario.Report, out, detail string) {
	fmt.Println(rep.Render())
	printProvenance(rep)
	path := out
	if path == "results" { // the figure-mode default is a directory name
		path = "results.json"
	}
	if err := rep.WriteJSON(path); err != nil {
		fatal(err)
	}
	if detail != "" {
		detail = ", " + detail
	}
	fmt.Printf("wrote %s (schema v%d%s)\n", path, scenario.SchemaVersion, detail)
	if rep.Failed > 0 {
		fatal(fmt.Errorf("%d of %d scenarios failed", rep.Failed, rep.Scenarios))
	}
}

// printProvenance summarizes the live/cached split and per-shard costs.
func printProvenance(rep *scenario.Report) {
	p := rep.Provenance
	if p == nil {
		return
	}
	fmt.Printf("provenance: %d live, %d cached\n", p.Live, p.Cached)
	for _, sh := range p.Shards {
		if sh.Count > 0 {
			fmt.Printf("  shard %d/%d: %d cells (%d live, %d cached), %.1fs wall\n",
				sh.Index, sh.Count, sh.Scenarios, sh.Live, sh.Cached, float64(sh.WallMS)/1000)
		} else {
			fmt.Printf("  partial %d: %d cells (%d live, %d cached), %.1fs wall\n",
				sh.Index, sh.Scenarios, sh.Live, sh.Cached, float64(sh.WallMS)/1000)
		}
	}
}

// runWorker drains a matrixd server's lease queue: the work-stealing
// replacement for a -shard slice. The server owns the cell set and
// every result-determining option; this process contributes hands (and,
// via -cache, a warm local tier whose hits are published instead of
// re-executed).
func runWorker(url, name string, parallel int, scratch, cacheDir, traceDir string) {
	if name == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s.%d", host, os.Getpid())
	}
	client, err := remote.Dial(url)
	if err != nil {
		fatal(err)
	}
	var local scenario.Store
	if cacheDir != "" {
		cache, err := scenario.OpenCache(cacheDir)
		if err != nil {
			fatal(err)
		}
		local = cache
	}
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	man := client.Manifest()
	fmt.Printf("worker %s: draining %d-cell matrix from %s (%d procs, engine v%d) ...\n",
		name, man.Cells, url, parallel, man.EngineVersion)
	stats, err := client.Drain(remote.WorkerConfig{
		Name: name, Procs: parallel, Local: local, Scratch: scratch, TraceDir: traceDir,
	})
	fmt.Printf("worker %s: %d executed (%d failed, %.1fs wall), %d local cache hits published\n",
		name, stats.Executed, stats.Failed, float64(stats.WallMS)/1000, stats.LocalHits)
	if err != nil {
		fatal(err)
	}
}

// runFetchReport polls the server until every cell is complete and
// writes the assembled report through the same epilogue as a local
// matrix run — same rendering, same nonzero exit on failed cells.
func runFetchReport(url, out string) {
	client, err := remote.Dial(url)
	if err != nil {
		fatal(err)
	}
	rep, err := client.Report(2 * time.Second)
	if err != nil {
		fatal(err)
	}
	writeReport(rep, out, fmt.Sprintf("assembled by %s", url))
}

// runMatrix executes the scenario matrix and writes the JSON report.
func runMatrix(full, withFaults bool, parallel, reps, nodes, rpn int, seed int64, apps, scratch, cache, traceDir string, shard scenario.Shard, progress core.ProgressMode, out string) {
	o := scenario.Quick()
	if full {
		o = scenario.Full()
	}
	o.Scratch = scratch
	o.CacheDir = cache
	o.Shard = shard
	o.Progress = progress
	o.TraceDir = traceDir
	if parallel > 0 {
		o.Parallel = parallel
	}
	if reps > 0 {
		o.Reps = reps
	}
	if nodes > 0 {
		o.Nodes = nodes
	}
	if rpn > 0 {
		o.RanksPerNode = rpn
	}
	o.BaseSeed = seed

	specs := buildMatrix(apps, withFaults).Enumerate()
	owned := len(shard.Select(specs))
	if owned != len(specs) {
		fmt.Printf("running shard %d/%d: %d of %d scenarios (%d workers, %d reps each) ...\n",
			shard.Index, shard.Count, owned, len(specs), o.Parallel, o.Reps)
	} else {
		fmt.Printf("running %d scenarios (%d workers, %d reps each) ...\n", len(specs), o.Parallel, o.Reps)
	}
	o.OnCell = matrixProgress(shard.Select(specs), o)

	rep := scenario.Run(specs, o)
	writeReport(rep, out, "")
}

// matrixProgress builds the Options.OnCell hook that keeps a cold
// matrix run from sitting silent for half a minute: a rate-limited
// one-line status to stderr with done/live/cached counts and an ETA.
// The ETA charges each remaining cell its recorded wall time from the
// cache's hints when one exists, and the running live average
// otherwise, divided by the worker pool width — a schedule estimate,
// not a promise, so it rounds to the second.
func matrixProgress(specs []scenario.Spec, o scenario.Options) func(scenario.CellEvent) {
	hints := map[string]int64{}
	if o.CacheDir != "" {
		if cache, err := scenario.OpenCache(o.CacheDir); err == nil {
			hints = cache.WallHints()
		}
	}
	pool := o.Parallel
	if pool <= 0 {
		pool = runtime.NumCPU()
	}
	remaining := make(map[string]bool, len(specs))
	for _, s := range specs {
		remaining[s.ID()] = true
	}
	var (
		mu                 sync.Mutex
		done, live, cached int
		liveWall           int64
		lastLine           time.Time
	)
	return func(ev scenario.CellEvent) {
		mu.Lock()
		defer mu.Unlock()
		delete(remaining, ev.ID)
		done++
		if ev.Cached {
			cached++
		} else {
			live++
			liveWall += ev.WallMS
		}
		now := time.Now()
		if done < ev.Total && now.Sub(lastLine) < 2*time.Second {
			return
		}
		lastLine = now
		var avg int64
		if live > 0 {
			avg = liveWall / int64(live)
		}
		var leftMS int64
		for id := range remaining {
			if h := hints[id]; h > 0 {
				leftMS += h
			} else {
				leftMS += avg
			}
		}
		eta := (time.Duration(leftMS/int64(pool)) * time.Millisecond).Round(time.Second)
		fmt.Fprintf(os.Stderr, "matrix: %d/%d done (%d live, %d cached), ~%s left\n",
			done, ev.Total, live, cached, eta)
	}
}

// runTraceCell executes one named matrix cell with tracing on and
// reports where the Perfetto-loadable trace landed — the one-command
// way to look at a specific cell's virtual-time execution (e.g. a
// rank-crash shrink-recovery cell's revoke/agree rounds).
func runTraceCell(id, traceDir string, full, withFaults bool, apps string, reps, nodes, rpn int, seed int64, scratch string, progress core.ProgressMode) {
	if traceDir == "" {
		traceDir = "traces"
	}
	o := scenario.Quick()
	if full {
		o = scenario.Full()
	}
	o.Scratch = scratch
	o.Progress = progress
	o.TraceDir = traceDir
	if reps > 0 {
		o.Reps = reps
	}
	if nodes > 0 {
		o.Nodes = nodes
	}
	if rpn > 0 {
		o.RanksPerNode = rpn
	}
	o.BaseSeed = seed
	for _, s := range buildMatrix(apps, withFaults).Enumerate() {
		if s.ID() != id {
			continue
		}
		res := scenario.RunCell(s, o)
		fmt.Printf("cell %s: %s (%.1fs wall)\n", id, res.Status, float64(res.WallMS)/1000)
		fmt.Printf("trace: %s (load in https://ui.perfetto.dev)\n",
			filepath.Join(traceDir, scenario.TraceFileName(id)))
		if res.Status != scenario.StatusPass {
			fatal(fmt.Errorf("cell failed: %s", res.Error))
		}
		return
	}
	fatal(fmt.Errorf("no matrix cell with ID %q (use -list to enumerate the cell set)", id))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfigs:", err)
	os.Exit(1)
}
