// Command paperfigs regenerates the paper's evaluation figures — the OSU
// latency sweeps (Figures 2-4), the real-application completion times
// (Figure 5), the cross-implementation checkpoint/restart experiment
// (Figure 6), the FSGSBASE ablation, the recovery-overhead table
// ("recovery": time-to-recover vs checkpoint interval under an injected
// crash) — and, with -matrix, runs the full scenario matrix: every valid
// app x MPI implementation x checkpointer combination, cross-restart
// pairings and the fault axis included, concurrently over a bounded
// worker pool, persisted as versioned JSON.
//
// Usage:
//
//	paperfigs [-fig 2,3,4,5,6|all|fsgsbase|recovery] [-quick] [-out results/] [-reps N] [-parallel N]
//	paperfigs -matrix [-full] [-faults=false] [-parallel N] [-out results.json] [-apps app.comd,app.wave]
//
// Figure mode writes one CSV per figure into -out (a directory). Matrix
// mode writes one JSON report to -out (a file; ".json" is appended to the
// default). Figures run at paper scale (4x12 ranks, 5 repetitions) unless
// -quick; the matrix runs at the quick smoke scale unless -full, because
// it covers the whole combination space rather than one figure. The
// fault axis (rank-crash recovery over every restart pairing, node-crash
// over every cross-implementation pairing, NIC degradation over every
// plain cell) is on by default in matrix mode; -faults=false drops it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/scenario"
)

func main() {
	var (
		figs     = flag.String("fig", "all", "comma-separated figure list: 2,3,4,5,6,fsgsbase or 'all'")
		quick    = flag.Bool("quick", false, "run figures at the small smoke configuration instead of paper scale")
		out      = flag.String("out", "results", "output directory for CSV files; JSON file path in -matrix mode")
		reps     = flag.Int("reps", 0, "override repetition count")
		nodes    = flag.Int("nodes", 0, "override node count")
		rpn      = flag.Int("rpn", 0, "override ranks per node")
		parallel = flag.Int("parallel", 0, "bound on concurrently running scenarios (0 = one per CPU)")
		matrix   = flag.Bool("matrix", false, "run the full scenario matrix instead of figures")
		full     = flag.Bool("full", false, "run the matrix at paper scale (default: quick smoke scale)")
		apps     = flag.String("apps", "", "override the matrix program axis (comma-separated registered programs; -matrix only)")
		seed     = flag.Int64("seed", 0, "base seed perturbing every scenario's deterministic jitter seeds")
		scratch  = flag.String("scratch", "", "keep checkpoint images under this directory instead of a deleted temp dir (-matrix only)")
		withFlt  = flag.Bool("faults", true, "include the fault-injection axis in the matrix (-matrix only)")
	)
	flag.Parse()

	if *full && *quick {
		fatal(fmt.Errorf("-full and -quick conflict; pick one"))
	}
	if *matrix {
		runMatrix(*full, *withFlt, *parallel, *reps, *nodes, *rpn, *seed, *apps, *scratch, *out)
		return
	}
	if *full || *apps != "" || *scratch != "" {
		fatal(fmt.Errorf("-full, -apps and -scratch require -matrix"))
	}

	opts := harness.Full()
	if *quick {
		opts = harness.Quick()
	}
	if *reps > 0 {
		opts.Reps = *reps
	}
	if *nodes > 0 {
		opts.Nodes = *nodes
	}
	if *rpn > 0 {
		opts.RanksPerNode = *rpn
	}
	opts.Parallel = *parallel
	opts.Seed = *seed

	names := strings.Split(*figs, ",")
	if *figs == "all" {
		names = []string{"2", "3", "4", "5", "6"}
	}
	figScratch, err := os.MkdirTemp("", "paperfigs-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(figScratch)

	for _, name := range names {
		name = strings.TrimSpace(name)
		fig, err := harness.ByName(name, opts, figScratch)
		if err != nil {
			fatal(fmt.Errorf("figure %s: %w", name, err))
		}
		fmt.Println(fig.Render())
		if err := fig.WriteCSV(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s/%s.csv\n\n", *out, fig.ID)
	}
}

// runMatrix executes the scenario matrix and writes the JSON report.
func runMatrix(full, withFaults bool, parallel, reps, nodes, rpn int, seed int64, apps, scratch, out string) {
	o := scenario.Quick()
	if full {
		o = scenario.Full()
	}
	o.Scratch = scratch
	if parallel > 0 {
		o.Parallel = parallel
	}
	if reps > 0 {
		o.Reps = reps
	}
	if nodes > 0 {
		o.Nodes = nodes
	}
	if rpn > 0 {
		o.RanksPerNode = rpn
	}
	o.BaseSeed = seed

	m := scenario.DefaultMatrix()
	if !withFaults {
		m.Faults = nil
	}
	if apps != "" {
		m.Programs = strings.Split(apps, ",")
		for i := range m.Programs {
			m.Programs[i] = strings.TrimSpace(m.Programs[i])
		}
	}
	specs := m.Enumerate()
	fmt.Printf("running %d scenarios (%d workers, %d reps each) ...\n", len(specs), o.Parallel, o.Reps)

	rep := scenario.Run(specs, o)
	fmt.Println(rep.Render())

	path := out
	if path == "results" { // the figure-mode default is a directory name
		path = "results.json"
	}
	if err := rep.WriteJSON(path); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (schema v%d)\n", path, scenario.SchemaVersion)
	if rep.Failed > 0 {
		fatal(fmt.Errorf("%d of %d scenarios failed", rep.Failed, rep.Scenarios))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfigs:", err)
	os.Exit(1)
}
