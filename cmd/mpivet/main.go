// Command mpivet is the runtime's invariant checker: a multichecker in
// the go/analysis mold (self-contained — no x/tools dependency) that
// machine-enforces the contracts the compiler cannot see:
//
//	envlifetime  pooled fabric.Envelope ownership (use-after-Put,
//	             double-Put, Put-after-send, leaked envelopes)
//	sendowned    no touching an envelope or payload alias after
//	             SendOwned transfers ownership
//	parksafe     fiber-reachable code blocks only via the scheduler
//	             and never parks holding a mutex
//	nativecodes  ABI-surface error codes come from Codes tables or
//	             abi.ErrClass, never integer literals
//	walltime     no wall clock, global rand, or order-sensitive map
//	             iteration in the deterministic core
//
// Usage:
//
//	go run ./cmd/mpivet ./...
//
// Findings are suppressed, one at a time and with a mandatory written
// justification, by
//
//	//mpivet:allow <analyzer>[,<analyzer>] -- <justification>
//
// trailing a line (suppresses that line), alone on a line (suppresses
// the next), or in a function's doc comment (suppresses the function).
// A directive with no justification, or naming an unknown analyzer, is
// itself a finding. Exit status is 1 when any finding survives.
package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/envlifetime"
	"repro/internal/analysis/load"
	"repro/internal/analysis/nativecodes"
	"repro/internal/analysis/parksafe"
	"repro/internal/analysis/sendowned"
	"repro/internal/analysis/walltime"
)

var analyzers = []*analysis.Analyzer{
	envlifetime.Analyzer,
	sendowned.Analyzer,
	parksafe.Analyzer,
	nativecodes.Analyzer,
	walltime.Analyzer,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	_, fset, pkgs, err := load.Program(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpivet:", err)
		os.Exit(2)
	}

	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var diags []analysis.Diagnostic
	var allows []*analysis.Allow
	pkgAllows := map[*load.Package][]*analysis.Allow{}
	for _, pkg := range pkgs {
		pa, problems := analysis.ParseAllows(fset, pkg.Files, pkg.Src, known)
		pkgAllows[pkg] = pa
		allows = append(allows, pa...)
		diags = append(diags, problems...)
	}

	for _, a := range analyzers {
		var passes []*analysis.Pass
		for _, pkg := range pkgs {
			passes = append(passes, &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Allows:    pkgAllows[pkg],
			})
		}
		switch {
		case a.Run != nil:
			for _, pass := range passes {
				if err := a.Run(pass); err != nil {
					fmt.Fprintf(os.Stderr, "mpivet: %s: %v\n", a.Name, err)
					os.Exit(2)
				}
				diags = append(diags, pass.Diagnostics()...)
			}
		case a.RunProgram != nil:
			if err := a.RunProgram(passes); err != nil {
				fmt.Fprintf(os.Stderr, "mpivet: %s: %v\n", a.Name, err)
				os.Exit(2)
			}
			for _, pass := range passes {
				diags = append(diags, pass.Diagnostics()...)
			}
		}
	}

	findings := analysis.Filter(fset, diags, allows, nil)
	for _, d := range findings {
		pos := fset.Position(d.Pos)
		fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mpivet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
