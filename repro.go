// Package repro is a Go reproduction of "The Case for ABI Interoperability
// in a Fault Tolerant MPI" (Xu, Nansamba, Skjellum, Cooperman; IPPS 2025):
// a standard-ABI MPI ecosystem with two simulated MPI implementations
// (MPICH-flavored and Open-MPI-flavored, each with its own native ABI), the
// Mukautuva compatibility shim, and the MANA transparent checkpointing
// package — the paper's "three-legged stool".
//
// The public API re-exports the composition layer: pick a Stack (one MPI
// implementation, one ABI binding mode, one checkpointing package), Launch
// a registered Program over it, Checkpoint it mid-run, and Restart the
// image — under a different MPI implementation when the stack went through
// the standard ABI:
//
//	stack := repro.DefaultStack(repro.ImplOpenMPI, repro.ABIMukautuva, repro.CkptMANA)
//	job, _ := repro.Launch(stack, "osu.alltoall.ckptwindow")
//	job.Checkpoint("images/", false)
//	job.Wait()
//	restarted, _ := repro.Restart("images/", repro.DefaultStack(
//		repro.ImplMPICH, repro.ABIMukautuva, repro.CkptMANA))
//	restarted.Wait()
//
// Applications are SPMD Programs written against the standard ABI
// function table (see the abi types re-exported here); registered
// workloads include the OSU micro-benchmark kernels ("osu.alltoall",
// "osu.bcast", "osu.allreduce", "osu.alltoall.ckptwindow") and the
// Figure 5 applications ("app.comd", "app.wave").
package repro

import (
	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/mana"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/trace"

	// Register the built-in workloads.
	_ "repro/internal/apps/comd"
	_ "repro/internal/apps/wavempi"
	_ "repro/internal/osu"
)

// Stack composition (see internal/core).
type (
	// Stack names one choice for each leg of the three-legged stool.
	Stack = core.Stack
	// Impl selects the MPI implementation.
	Impl = core.Impl
	// ABIMode selects the binding: native or standard-ABI via Mukautuva.
	ABIMode = core.ABIMode
	// CkptMode selects the checkpointing package.
	CkptMode = core.CkptMode
	// Job is a running or finished launch.
	Job = core.Job
	// Program is an SPMD application; see core.Program for the contract.
	Program = core.Program
	// LaunchOption tweaks a launch.
	LaunchOption = core.LaunchOption
)

// Stack building blocks.
const (
	ImplMPICH    = core.ImplMPICH
	ImplOpenMPI  = core.ImplOpenMPI
	ImplStdABI   = core.ImplStdABI
	ABINative    = core.ABINative
	ABIMukautuva = core.ABIMukautuva
	ABIWi4MPI    = core.ABIWi4MPI
	CkptNone     = core.CkptNone
	CkptMANA     = core.CkptMANA
	CkptDMTCP    = core.CkptDMTCP
)

// Application-facing MPI types (the standard ABI).
type (
	// Env is a rank's bound MPI environment.
	Env = abi.Env
	// Handle is an opaque MPI object handle.
	Handle = abi.Handle
	// Status is the standard receive status record.
	Status = abi.Status
)

// Kernel feature levels for the MANA FSGSBASE cost model.
const (
	KernelPre5_9  = mana.KernelPre5_9
	Kernel5_9Plus = mana.Kernel5_9Plus
)

// DefaultStack returns the paper's testbed configuration (4 nodes x 12
// ranks over 10 GbE, pre-5.9 kernel) for the given legs.
func DefaultStack(impl Impl, abiMode ABIMode, ckpt CkptMode) Stack {
	return core.DefaultStack(impl, abiMode, ckpt)
}

// ClusterConfig returns the simulated cluster configuration used by
// DefaultStack, for callers who want to tweak shape or cost model.
func ClusterConfig() simnet.Config { return simnet.Discovery10GbE() }

// Launch runs a registered program under a stack. See core.Launch.
func Launch(stack Stack, program string, opts ...LaunchOption) (*Job, error) {
	return core.Launch(stack, program, opts...)
}

// WithConfigure sets launch parameters on each rank's program instance.
func WithConfigure(fn func(rank int, p Program)) LaunchOption {
	return core.WithConfigure(fn)
}

// WithHold builds the job without starting its ranks; release with
// Job.Start. Register a checkpoint with Job.CheckpointAsync before Start
// to pin it deterministically to the first safe point.
func WithHold() LaunchOption {
	return core.WithHold()
}

// WithTrace records per-rank virtual-time event traces into sink,
// exportable as Perfetto-loadable Chrome trace-event JSON via
// sink.WriteChromeFile. A nil sink is the disabled state and costs one
// pointer compare per emission site. See docs/observability.md.
func WithTrace(sink *trace.Sink) LaunchOption {
	return core.WithTrace(sink)
}

// Restart resumes a checkpoint image set under a new stack. Images taken
// through the standard ABI may restart under a different MPI
// implementation; native-ABI images may not. An unset stack.Net.Seed
// resumes the image's recorded jitter stream. See core.Restart.
func Restart(dir string, stack Stack, opts ...LaunchOption) (*Job, error) {
	return core.Restart(dir, stack, opts...)
}

// Fault injection and automated recovery (see internal/faults and
// core.RunWithRecovery): declare the failures a run must survive, arm
// them deterministically from a seed, and drive the paper's
// crash-detect-restart loop, cross-implementation where the stack's
// ABI and checkpointer legs allow it.
type (
	// FaultKind names a fault class (rank crash, node crash, NIC
	// degradation).
	FaultKind = faults.Kind
	// FaultSpec declares one fault; FaultPlan is the list a run must
	// survive.
	FaultSpec = faults.Spec
	// FaultPlan is the declarative fault list for one run.
	FaultPlan = faults.Plan
	// FaultInjector arms a plan against a cluster shape.
	FaultInjector = faults.Injector
	// RankFailure is the typed failure Job.Wait returns when an
	// injected fault kills ranks.
	RankFailure = core.RankFailure
	// RecoveryPolicy configures RunWithRecovery.
	RecoveryPolicy = core.RecoveryPolicy
	// RecoveryResult summarizes a recovered run.
	RecoveryResult = core.RecoveryResult
	// ShrinkPolicy configures RunWithShrinkRecovery (ULFM in-place
	// recovery: revoke/shrink/recompute, no checkpoints, no restarts).
	ShrinkPolicy = core.ShrinkPolicy
	// ShrinkResult summarizes a shrink-recovered run.
	ShrinkResult = core.ShrinkResult
	// ReplicaPolicy configures RunWithReplication (warm shadow replicas
	// behind every logical rank; failover by in-place promotion).
	ReplicaPolicy = core.ReplicaPolicy
	// ReplicaResult summarizes a replicated run.
	ReplicaResult = core.ReplicaResult
	// PromotionEvent records one replica failover inside a ReplicaResult.
	PromotionEvent = core.PromotionEvent
)

// Fault classes and the seeded-target sentinel.
const (
	FaultRankCrash  = faults.KindRankCrash
	FaultNodeCrash  = faults.KindNodeCrash
	FaultNICDegrade = faults.KindNICDegrade
	FaultAnywhere   = faults.Anywhere
)

// ErrCancelled is the stable error Wait returns for a cancelled job.
var ErrCancelled = core.ErrCancelled

// NewFaultInjector resolves a fault plan's seeded draws against a
// cluster shape; the same (plan, seed, config) always arms the same
// faults.
func NewFaultInjector(plan FaultPlan, seed int64, cfg simnet.Config) (*FaultInjector, error) {
	return faults.NewInjector(plan, seed, cfg)
}

// WithFaults arms a fault injector on a launch or restart leg.
func WithFaults(inj *FaultInjector) LaunchOption { return core.WithFaults(inj) }

// WithPeriodicCheckpoint checkpoints every `every` steps into
// step-numbered subdirectories of root, building the image lineage
// automated recovery restarts from.
func WithPeriodicCheckpoint(root string, every uint64) LaunchOption {
	return core.WithPeriodicCheckpoint(root, every)
}

// RunWithRecovery launches a program under fault injection with periodic
// checkpointing and drives automated recovery: detect the RankFailure,
// restart from the latest complete image (under RecoveryPolicy's restart
// stack when set — a different MPI implementation where the legs allow),
// bounded by the retry budget.
func RunWithRecovery(stack Stack, program string, inj *FaultInjector, pol RecoveryPolicy, opts ...LaunchOption) (*RecoveryResult, error) {
	return core.RunWithRecovery(stack, program, inj, pol, opts...)
}

// RunWithShrinkRecovery is the ULFM counterpart: launch with non-fatal
// crash faults armed and survive them in place — pending operations
// complete with the implementation's MPIX proc-failed code, the world
// communicator is revoked and shrunk, and the survivors rebind and
// recompute on the smaller world. Checkpoint-free stacks only.
func RunWithShrinkRecovery(stack Stack, program string, inj *FaultInjector, pol ShrinkPolicy, opts ...LaunchOption) (*ShrinkResult, error) {
	return core.RunWithShrinkRecovery(stack, program, inj, pol, opts...)
}

// RunWithReplication is the third leg of the recovery axis: every
// logical rank runs as a primary + warm-shadow pair, every message is
// duplicated to both replicas, and a non-fatal crash of a primary is
// absorbed by promoting its shadow in place — no checkpoints, no
// restart, no shrink, and no survivor ever observes an error. A nil
// injector runs fault-free, measuring the steady-state duplication
// overhead. Checkpoint-free stacks only.
func RunWithReplication(stack Stack, program string, inj *FaultInjector, pol ReplicaPolicy, opts ...LaunchOption) (*ReplicaResult, error) {
	return core.RunWithReplication(stack, program, inj, pol, opts...)
}

// RegisterProgram installs an application under a stable name so it can be
// launched and its checkpoints decoded.
func RegisterProgram(name string, factory func() Program) {
	core.RegisterProgram(name, factory)
}

// Programs lists the registered application names.
func Programs() []string { return core.Programs() }

// Experiment harness re-exports: regenerate the paper's figures.
type (
	// Figure is one reproduced figure's data.
	Figure = harness.Figure
	// ExperimentOptions scales a figure run.
	ExperimentOptions = harness.Options
)

// PaperScale returns the full 4x12-rank, 5-repetition configuration.
func PaperScale() ExperimentOptions { return harness.Full() }

// QuickScale returns a small smoke configuration.
func QuickScale() ExperimentOptions { return harness.Quick() }

// ReproduceFigure regenerates one of the paper's figures ("2".."6", or
// "fsgsbase" for the ablation); scratch is used for checkpoint images.
func ReproduceFigure(name string, o ExperimentOptions, scratch string) (*Figure, error) {
	return harness.ByName(name, o, scratch)
}

// Scenario-matrix re-exports (see internal/scenario): enumerate every
// valid stack combination and execute it concurrently.
type (
	// Scenario identifies one cell of the matrix: program, stack legs,
	// optional restart pairing.
	Scenario = scenario.Spec
	// ScenarioMatrix enumerates a matrix of scenarios.
	ScenarioMatrix = scenario.MatrixSpec
	// ScenarioOptions scales and paces a matrix run.
	ScenarioOptions = scenario.Options
	// ScenarioReport is a versioned, diffable matrix result set.
	ScenarioReport = scenario.Report
)

// DefaultScenarioMatrix is the paper's full claim surface: both Figure 5
// applications over every implementation, binding mode, checkpointing
// package, and valid restart pairing.
func DefaultScenarioMatrix() ScenarioMatrix { return scenario.DefaultMatrix() }

// RunScenarios executes scenarios concurrently over a bounded worker pool
// with per-scenario seeds, timeouts and failure isolation.
func RunScenarios(specs []Scenario, o ScenarioOptions) *ScenarioReport {
	return scenario.Run(specs, o)
}
