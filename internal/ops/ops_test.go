package ops

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func encI32(vs ...int32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

func decI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func encF64(vs ...float64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func decF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func TestOpString(t *testing.T) {
	if OpSum.String() != "SUM" || OpMaxLoc.String() != "MAXLOC" {
		t.Fatalf("names wrong: %v %v", OpSum, OpMaxLoc)
	}
	if !OpSum.Valid() || OpNull.Valid() || Op(200).Valid() {
		t.Fatal("validity wrong")
	}
	if len(Ops()) != 12 {
		t.Fatalf("Ops() = %d entries, want 12", len(Ops()))
	}
}

func TestApplySumInt32(t *testing.T) {
	acc := encI32(1, -2, 3)
	in := encI32(10, 20, -30)
	if err := Apply(OpSum, types.KindInt32, acc, in, 3); err != nil {
		t.Fatal(err)
	}
	got := decI32(acc)
	want := []int32{11, 18, -27}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestApplyAllIntOps(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int32
		want int32
	}{
		{OpSum, 5, 7, 12},
		{OpProd, 5, 7, 35},
		{OpMax, 5, 7, 7},
		{OpMin, 5, 7, 5},
		{OpLAnd, 5, 0, 0},
		{OpLAnd, 5, 2, 1},
		{OpLOr, 0, 0, 0},
		{OpLOr, 0, 9, 1},
		{OpLXor, 3, 4, 0},
		{OpLXor, 3, 0, 1},
		{OpBAnd, 0b1100, 0b1010, 0b1000},
		{OpBOr, 0b1100, 0b1010, 0b1110},
		{OpBXor, 0b1100, 0b1010, 0b0110},
	}
	for _, c := range cases {
		acc := encI32(c.a)
		if err := Apply(c.op, types.KindInt32, acc, encI32(c.b), 1); err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if got := decI32(acc)[0]; got != c.want {
			t.Errorf("%d %v %d = %d, want %d", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestApplyFloat64(t *testing.T) {
	acc := encF64(1.5, -2.0)
	if err := Apply(OpProd, types.KindFloat64, acc, encF64(2.0, 3.0), 2); err != nil {
		t.Fatal(err)
	}
	got := decF64(acc)
	if got[0] != 3.0 || got[1] != -6.0 {
		t.Fatalf("prod = %v", got)
	}
	acc = encF64(1.5)
	if err := Apply(OpMax, types.KindFloat64, acc, encF64(-3.0), 1); err != nil {
		t.Fatal(err)
	}
	if decF64(acc)[0] != 1.5 {
		t.Fatalf("max = %v", decF64(acc))
	}
}

func TestApplyAllKindsAllOpsCompatibility(t *testing.T) {
	// Every (op, kind) pair must either Apply cleanly or be rejected by
	// Compatible — never panic.
	for _, op := range Ops() {
		for _, k := range types.Kinds() {
			acc := make([]byte, 2*k.Size())
			in := make([]byte, 2*k.Size())
			err := Apply(op, k, acc, in, 2)
			if Compatible(op, k) && err != nil {
				t.Errorf("Apply(%v,%v) failed despite Compatible: %v", op, k, err)
			}
			if !Compatible(op, k) && err == nil {
				t.Errorf("Apply(%v,%v) succeeded despite !Compatible", op, k)
			}
		}
	}
}

func TestCompatibleTable(t *testing.T) {
	yes := []struct {
		op Op
		k  types.Kind
	}{
		{OpSum, types.KindInt8}, {OpSum, types.KindComplex128}, {OpBAnd, types.KindUint64},
		{OpMaxLoc, types.KindFloat64Int32}, {OpLAnd, types.KindBool}, {OpMin, types.KindByte},
	}
	no := []struct {
		op Op
		k  types.Kind
	}{
		{OpBAnd, types.KindFloat32}, {OpMax, types.KindComplex64}, {OpMaxLoc, types.KindInt32},
		{OpSum, types.KindFloat64Int32}, {OpSum, types.KindBool}, {OpNull, types.KindInt32},
	}
	for _, c := range yes {
		if !Compatible(c.op, c.k) {
			t.Errorf("Compatible(%v,%v) = false, want true", c.op, c.k)
		}
	}
	for _, c := range no {
		if Compatible(c.op, c.k) {
			t.Errorf("Compatible(%v,%v) = true, want false", c.op, c.k)
		}
	}
}

func TestApplyShortBuffer(t *testing.T) {
	if err := Apply(OpSum, types.KindInt64, make([]byte, 8), make([]byte, 8), 2); err == nil {
		t.Fatal("short buffers accepted")
	}
}

func TestMaxLocMinLoc(t *testing.T) {
	enc := func(v float64, idx int32) []byte {
		b := make([]byte, 12)
		binary.LittleEndian.PutUint64(b, math.Float64bits(v))
		binary.LittleEndian.PutUint32(b[8:], uint32(idx))
		return b
	}
	dec := func(b []byte) (float64, int32) {
		return math.Float64frombits(binary.LittleEndian.Uint64(b)),
			int32(binary.LittleEndian.Uint32(b[8:]))
	}
	acc := enc(3.5, 4)
	if err := Apply(OpMaxLoc, types.KindFloat64Int32, acc, enc(7.25, 2), 1); err != nil {
		t.Fatal(err)
	}
	if v, i := dec(acc); v != 7.25 || i != 2 {
		t.Fatalf("maxloc = (%v,%d), want (7.25,2)", v, i)
	}
	// Tie broken by lower index.
	acc = enc(7.25, 9)
	if err := Apply(OpMaxLoc, types.KindFloat64Int32, acc, enc(7.25, 2), 1); err != nil {
		t.Fatal(err)
	}
	if v, i := dec(acc); v != 7.25 || i != 2 {
		t.Fatalf("maxloc tie = (%v,%d), want (7.25,2)", v, i)
	}
	acc = enc(7.25, 2)
	if err := Apply(OpMinLoc, types.KindFloat64Int32, acc, enc(7.25, 9), 1); err != nil {
		t.Fatal(err)
	}
	if v, i := dec(acc); v != 7.25 || i != 2 {
		t.Fatalf("minloc tie = (%v,%d), want (7.25,2)", v, i)
	}
}

func TestBoolLogical(t *testing.T) {
	acc := []byte{1, 0, 1, 0}
	in := []byte{1, 1, 0, 0}
	if err := Apply(OpLXor, types.KindBool, acc, in, 4); err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 1, 1, 0}
	for i := range want {
		if acc[i] != want[i] {
			t.Fatalf("lxor[%d] = %d, want %d", i, acc[i], want[i])
		}
	}
}

// Property: SUM on int32 is commutative and associative (mod 2^32 wrap).
func TestSumCommutativeAssociative(t *testing.T) {
	f := func(a, b, c int32) bool {
		x := encI32(a)
		Apply(OpSum, types.KindInt32, x, encI32(b), 1)
		y := encI32(b)
		Apply(OpSum, types.KindInt32, y, encI32(a), 1)
		if decI32(x)[0] != decI32(y)[0] {
			return false
		}
		// (a+b)+c == a+(b+c)
		l := encI32(a)
		Apply(OpSum, types.KindInt32, l, encI32(b), 1)
		Apply(OpSum, types.KindInt32, l, encI32(c), 1)
		r1 := encI32(b)
		Apply(OpSum, types.KindInt32, r1, encI32(c), 1)
		r := encI32(a)
		Apply(OpSum, types.KindInt32, r, r1, 1)
		return decI32(l)[0] == decI32(r)[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MAX is idempotent and selects one of its operands.
func TestMaxProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x := encI32(a)
		Apply(OpMax, types.KindInt32, x, encI32(b), 1)
		got := decI32(x)[0]
		if got != a && got != b {
			return false
		}
		return got >= a && got >= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUserOpRegistry(t *testing.T) {
	if _, _, err := LookupUser("nope"); err == nil {
		t.Fatal("lookup of unregistered op succeeded")
	}
	if err := RegisterUser("", true, nil); err == nil {
		t.Fatal("empty registration accepted")
	}
	called := false
	err := RegisterUser("test.first", true, func(acc, in []byte, k types.Kind, count int) {
		called = true
	})
	if err != nil {
		t.Fatal(err)
	}
	fn, comm, err := LookupUser("test.first")
	if err != nil || !comm {
		t.Fatalf("lookup: %v comm=%v", err, comm)
	}
	fn(nil, nil, types.KindInt32, 0)
	if !called {
		t.Fatal("function identity lost")
	}
}

func BenchmarkApplySumFloat64(b *testing.B) {
	const n = 1024
	acc := make([]byte, n*8)
	in := make([]byte, n*8)
	b.SetBytes(n * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Apply(OpSum, types.KindFloat64, acc, in, n); err != nil {
			b.Fatal(err)
		}
	}
}
