// Package ops implements MPI reduction operators over raw buffers. Both
// simulated MPI implementations delegate the arithmetic here while keeping
// their own operator handle representations, exactly as both MPICH and
// Open MPI implement the same MPI_SUM semantics behind different handles
// — the handle-vs-semantics split that the paper's standard ABI (Section
// 4.1) formalizes. The MPI_Allreduce sweeps of Figure 4 and the Figure 5
// applications' energy reductions execute through these operators.
//
// In the README's layer diagram ops is part of the shared-runtime row:
// "the math" mpicore's reduction collectives call into.
package ops

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/types"
)

// Op identifies a predefined reduction operator.
type Op uint8

// Predefined operators.
const (
	OpNull Op = iota
	OpSum
	OpProd
	OpMax
	OpMin
	OpLAnd
	OpLOr
	OpLXor
	OpBAnd
	OpBOr
	OpBXor
	OpMaxLoc
	OpMinLoc
	opMax // sentinel
)

var opNames = [...]string{
	OpNull: "NULL", OpSum: "SUM", OpProd: "PROD", OpMax: "MAX", OpMin: "MIN",
	OpLAnd: "LAND", OpLOr: "LOR", OpLXor: "LXOR", OpBAnd: "BAND", OpBOr: "BOR",
	OpBXor: "BXOR", OpMaxLoc: "MAXLOC", OpMinLoc: "MINLOC",
}

// Valid reports whether op names a real predefined operator.
func (op Op) Valid() bool { return op > OpNull && op < opMax }

// String returns the operator's MPI-style name.
func (op Op) String() string {
	if op >= opMax {
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
	return opNames[op]
}

// Commutative reports whether the operator is commutative. All predefined
// MPI operators are; user-defined operators declare it at registration.
func (op Op) Commutative() bool { return op.Valid() }

// Ops returns every valid predefined operator, for exhaustive tests.
func Ops() []Op {
	out := make([]Op, 0, int(opMax)-1)
	for op := OpNull + 1; op < opMax; op++ {
		out = append(out, op)
	}
	return out
}

type kindClass uint8

const (
	classInt kindClass = iota
	classUint
	classFloat
	classComplex
	classPair
	classBool
)

func classOf(k types.Kind) kindClass {
	switch k {
	case types.KindInt8, types.KindInt16, types.KindInt32, types.KindInt64:
		return classInt
	case types.KindByte, types.KindUint8, types.KindUint16, types.KindUint32, types.KindUint64:
		return classUint
	case types.KindFloat32, types.KindFloat64:
		return classFloat
	case types.KindComplex64, types.KindComplex128:
		return classComplex
	case types.KindFloat32Int32, types.KindFloat64Int32, types.KindInt32Int32:
		return classPair
	case types.KindBool:
		return classBool
	}
	return classBool
}

// Compatible reports whether op is defined on primitive kind k, mirroring
// the MPI standard's operator/type compatibility table.
func Compatible(op Op, k types.Kind) bool {
	if !op.Valid() || !k.Valid() {
		return false
	}
	switch classOf(k) {
	case classInt, classUint:
		switch op {
		case OpSum, OpProd, OpMax, OpMin, OpLAnd, OpLOr, OpLXor, OpBAnd, OpBOr, OpBXor:
			return true
		}
	case classFloat:
		switch op {
		case OpSum, OpProd, OpMax, OpMin:
			return true
		}
	case classComplex:
		switch op {
		case OpSum, OpProd:
			return true
		}
	case classPair:
		return op == OpMaxLoc || op == OpMinLoc
	case classBool:
		switch op {
		case OpLAnd, OpLOr, OpLXor, OpBAnd, OpBOr, OpBXor, OpMax, OpMin, OpSum, OpProd:
			return k == types.KindBool && (op == OpLAnd || op == OpLOr || op == OpLXor)
		}
	}
	return false
}

// Apply folds in into acc elementwise: acc[i] = acc[i] OP in[i]. Both
// buffers must hold count elements of kind k, packed contiguously.
func Apply(op Op, k types.Kind, acc, in []byte, count int) error {
	if !Compatible(op, k) {
		return fmt.Errorf("ops: operator %v undefined on %v", op, k)
	}
	sz := k.Size()
	if len(acc) < count*sz || len(in) < count*sz {
		return fmt.Errorf("ops: buffers too short for %d x %v (acc=%d in=%d)",
			count, k, len(acc), len(in))
	}
	for i := 0; i < count; i++ {
		a := acc[i*sz : (i+1)*sz]
		b := in[i*sz : (i+1)*sz]
		applyOne(op, k, a, b)
	}
	return nil
}

func applyOne(op Op, k types.Kind, a, b []byte) {
	switch k {
	case types.KindInt8:
		put8i(a, foldInt(op, int64(int8(a[0])), int64(int8(b[0]))))
	case types.KindInt16:
		v := foldInt(op, int64(int16(le.Uint16(a))), int64(int16(le.Uint16(b))))
		le.PutUint16(a, uint16(v))
	case types.KindInt32:
		v := foldInt(op, int64(int32(le.Uint32(a))), int64(int32(le.Uint32(b))))
		le.PutUint32(a, uint32(v))
	case types.KindInt64:
		v := foldInt(op, int64(le.Uint64(a)), int64(le.Uint64(b)))
		le.PutUint64(a, uint64(v))
	case types.KindByte, types.KindUint8:
		a[0] = byte(foldUint(op, uint64(a[0]), uint64(b[0])))
	case types.KindUint16:
		le.PutUint16(a, uint16(foldUint(op, uint64(le.Uint16(a)), uint64(le.Uint16(b)))))
	case types.KindUint32:
		le.PutUint32(a, uint32(foldUint(op, uint64(le.Uint32(a)), uint64(le.Uint32(b)))))
	case types.KindUint64:
		le.PutUint64(a, foldUint(op, le.Uint64(a), le.Uint64(b)))
	case types.KindFloat32:
		le.PutUint32(a, math.Float32bits(float32(foldFloat(op,
			float64(math.Float32frombits(le.Uint32(a))), float64(math.Float32frombits(le.Uint32(b)))))))
	case types.KindFloat64:
		le.PutUint64(a, math.Float64bits(foldFloat(op,
			math.Float64frombits(le.Uint64(a)), math.Float64frombits(le.Uint64(b)))))
	case types.KindComplex64:
		ar, ai := math.Float32frombits(le.Uint32(a)), math.Float32frombits(le.Uint32(a[4:]))
		br, bi := math.Float32frombits(le.Uint32(b)), math.Float32frombits(le.Uint32(b[4:]))
		cr, ci := foldComplex(op, complex(float64(ar), float64(ai)), complex(float64(br), float64(bi)))
		le.PutUint32(a, math.Float32bits(float32(cr)))
		le.PutUint32(a[4:], math.Float32bits(float32(ci)))
	case types.KindComplex128:
		ar, ai := math.Float64frombits(le.Uint64(a)), math.Float64frombits(le.Uint64(a[8:]))
		br, bi := math.Float64frombits(le.Uint64(b)), math.Float64frombits(le.Uint64(b[8:]))
		cr, ci := foldComplex(op, complex(ar, ai), complex(br, bi))
		le.PutUint64(a, math.Float64bits(cr))
		le.PutUint64(a[8:], math.Float64bits(ci))
	case types.KindBool:
		av, bv := a[0] != 0, b[0] != 0
		var r bool
		switch op {
		case OpLAnd:
			r = av && bv
		case OpLOr:
			r = av || bv
		case OpLXor:
			r = av != bv
		}
		a[0] = 0
		if r {
			a[0] = 1
		}
	case types.KindFloat32Int32:
		av := float64(math.Float32frombits(le.Uint32(a)))
		bv := float64(math.Float32frombits(le.Uint32(b)))
		if pairTakeB(op, av, bv, int32(le.Uint32(a[4:])), int32(le.Uint32(b[4:]))) {
			copy(a, b)
		}
	case types.KindFloat64Int32:
		av := math.Float64frombits(le.Uint64(a))
		bv := math.Float64frombits(le.Uint64(b))
		if pairTakeB(op, av, bv, int32(le.Uint32(a[8:])), int32(le.Uint32(b[8:]))) {
			copy(a, b)
		}
	case types.KindInt32Int32:
		av := float64(int32(le.Uint32(a)))
		bv := float64(int32(le.Uint32(b)))
		if pairTakeB(op, av, bv, int32(le.Uint32(a[4:])), int32(le.Uint32(b[4:]))) {
			copy(a, b)
		}
	}
}

var le = binary.LittleEndian

func put8i(a []byte, v int64) { a[0] = byte(int8(v)) }

func foldInt(op Op, a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMax:
		return max(a, b)
	case OpMin:
		return min(a, b)
	case OpLAnd:
		return b2i(a != 0 && b != 0)
	case OpLOr:
		return b2i(a != 0 || b != 0)
	case OpLXor:
		return b2i((a != 0) != (b != 0))
	case OpBAnd:
		return a & b
	case OpBOr:
		return a | b
	case OpBXor:
		return a ^ b
	}
	return a
}

func foldUint(op Op, a, b uint64) uint64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMax:
		return max(a, b)
	case OpMin:
		return min(a, b)
	case OpLAnd:
		return uint64(b2i(a != 0 && b != 0))
	case OpLOr:
		return uint64(b2i(a != 0 || b != 0))
	case OpLXor:
		return uint64(b2i((a != 0) != (b != 0)))
	case OpBAnd:
		return a & b
	case OpBOr:
		return a | b
	case OpBXor:
		return a ^ b
	}
	return a
}

func foldFloat(op Op, a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	}
	return a
}

func foldComplex(op Op, a, b complex128) (float64, float64) {
	var c complex128
	switch op {
	case OpSum:
		c = a + b
	case OpProd:
		c = a * b
	default:
		c = a
	}
	return real(c), imag(c)
}

// pairTakeB decides whether the (value, index) pair b replaces a under
// MAXLOC/MINLOC: ties are broken by the smaller index, per the standard.
func pairTakeB(op Op, av, bv float64, ai, bi int32) bool {
	switch op {
	case OpMaxLoc:
		if bv > av {
			return true
		}
		return bv == av && bi < ai
	case OpMinLoc:
		if bv < av {
			return true
		}
		return bv == av && bi < ai
	}
	return false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// UserFn is a user-defined reduction function: fold in into acc, both
// holding count contiguous elements of kind k.
type UserFn func(acc, in []byte, k types.Kind, count int)

// userReg is the global registry of user-defined operators. Registration by
// name makes user ops survive checkpoint/restart: the image records the
// name, restart looks the function up again (function values themselves
// cannot be serialized).
var userReg = struct {
	sync.RWMutex
	m map[string]userOp
}{m: make(map[string]userOp)}

type userOp struct {
	fn      UserFn
	commute bool
}

// RegisterUser registers (or replaces) a named user-defined operator.
func RegisterUser(name string, commute bool, fn UserFn) error {
	if name == "" || fn == nil {
		return fmt.Errorf("ops: user op needs a name and a function")
	}
	userReg.Lock()
	defer userReg.Unlock()
	userReg.m[name] = userOp{fn: fn, commute: commute}
	return nil
}

// LookupUser returns the registered user operator.
func LookupUser(name string) (UserFn, bool, error) {
	userReg.RLock()
	defer userReg.RUnlock()
	u, ok := userReg.m[name]
	if !ok {
		return nil, false, fmt.Errorf("ops: user op %q not registered", name)
	}
	return u.fn, u.commute, nil
}
