package core

import (
	"fmt"
	"time"

	"repro/internal/abi"
	"repro/internal/faults"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// ShrinkPolicy configures ULFM-style in-place recovery: the other half
// of fault-tolerant MPI next to RunWithRecovery's checkpoint/restart.
// Where restart recovery resumes an image under a possibly different
// implementation, shrink recovery never leaves the job: the survivors
// revoke the damaged communicator, shrink it, rebind, and recompute.
// There is no image I/O and no relaunch — the cost is the recomputation
// of everything since the last application-level milestone (here: the
// whole run, since the programs are checkpoint-oblivious), which is
// exactly the trade the harness can now measure against the checkpoint
// interval sweep.
type ShrinkPolicy struct {
	// MaxShrinks bounds how many consecutive failures one job absorbs
	// in place before giving up (default 3, like MaxRestarts).
	MaxShrinks int
	// LegTimeout cancels the whole job when it exceeds it (0 = none).
	LegTimeout time.Duration
}

func (p *ShrinkPolicy) maxShrinks() int {
	if p == nil || p.MaxShrinks <= 0 {
		return 3
	}
	return p.MaxShrinks
}

// ShrinkEvent records one in-place recovery. Times are virtual; unlike
// restart recovery, the survivors' clocks never rewind, so the job's
// final completion time already IS the time-to-solution including all
// recomputation.
type ShrinkEvent struct {
	// Failure is the non-fatal failure that triggered the recovery
	// (paired with the shrink by order; nil if the pairing is ragged).
	Failure *RankFailure
	// Detected is the trigger rank's virtual clock at the death.
	Detected simnet.Time
	// Survivors is the shrunken communicator's size.
	Survivors int
	// Recovered is rank 0-of-the-shrunken-communicator's virtual clock
	// when the survivors finished rebinding and re-setup.
	Recovered simnet.Time
}

// ShrinkResult summarizes a run driven by RunWithShrinkRecovery.
type ShrinkResult struct {
	// Job is the one and only leg (in-place recovery never relaunches).
	Job *Job
	// Completed reports whether the survivors ran to completion.
	Completed bool
	// Shrinks is the number of in-place recoveries performed.
	Shrinks int
	// Events records each failure/recovery pair, in order.
	Events []ShrinkEvent
}

// WithShrinkRecovery arms ULFM in-place recovery on a launch: non-fatal
// crash faults kill ranks without aborting the job, and survivors whose
// steps trip over the failure revoke the world communicator, shrink it,
// re-run Setup on the survivors-only world, and continue. It requires a
// checkpointer-free stack (CkptNone) — in-place recovery is the
// alternative to checkpoint/restart, not a layer over it — and is
// normally applied through RunWithShrinkRecovery.
func WithShrinkRecovery(pol ShrinkPolicy) LaunchOption {
	return func(o *launchOpts) { o.shrink = &pol }
}

// ulfmRecoverable reports whether a step error is the kind ULFM
// recovery absorbs: the failure itself (proc-failed) or its propagated
// aftermath (revoked). Anything else — a program bug, a cancelled
// world — fails the job as before.
func ulfmRecoverable(err error) bool {
	switch abi.ClassOf(err) {
	case abi.ErrProcFailed, abi.ErrRevoked:
		return true
	}
	return false
}

// recordShrinkFailure registers a non-fatal fault's kill set: victims'
// endpoints die and the fabric broadcasts the failure notice, but —
// unlike recordFailure — the world stays open and the job keeps
// running; the survivors recover in place.
func (j *Job) recordShrinkFailure(f *faults.Fault, step uint64, now simnet.Time) {
	j.mu.Lock()
	rf := newRankFailure(f, step, now)
	j.shrinkFailures = append(j.shrinkFailures, rf)
	j.traceFailure("failure", rf)
	j.mu.Unlock()
	j.w.Kill(f.Ranks...)
	j.w.NotifyFailure(f.Ranks...)
}

// shrinkRecover performs one survivor's in-place recovery: revoke the
// (old) world so every straggler's traffic errors out instead of
// hanging, shrink it to the survivors, agree on the shrunken
// communicator (synchronizing the survivors and acknowledging the
// failure), rebind the environment, and rebuild the program from
// scratch on the smaller world. Returns the fresh program instance.
func (j *Job) shrinkRecover(rank int, env *abi.Env) (Program, error) {
	tr := j.w.Endpoint(rank).Trace()
	if tr != nil {
		tr.Begin(trace.CatCkpt, "shrink-recover", j.w.Endpoint(rank).Clock().Now())
		defer func() {
			tr.End(trace.CatCkpt, "shrink-recover", j.w.Endpoint(rank).Clock().Now())
		}()
	}
	// Unilateral and idempotent: whichever survivor arrives first
	// poisons the communicator for all of them, which is what unblocks
	// survivors whose own operations were still succeeding.
	_ = env.T.CommRevoke(env.CommWorld)
	nc, err := env.T.CommShrink(env.CommWorld)
	if err != nil {
		return nil, fmt.Errorf("core: shrink: %w", err)
	}
	if _, err := env.T.CommAgree(nc, 1); err != nil {
		return nil, fmt.Errorf("core: post-shrink agreement: %w", err)
	}
	if err := env.Rebind(nc); err != nil {
		return nil, fmt.Errorf("core: rebinding survivors' world: %w", err)
	}
	prog := j.factory()
	if j.configure != nil {
		j.configure(rank, prog)
	}
	if err := prog.Setup(env); err != nil {
		return nil, fmt.Errorf("core: survivor setup: %w", err)
	}
	j.progs[rank] = prog
	if env.Rank() == 0 {
		j.mu.Lock()
		j.shrinkEvents = append(j.shrinkEvents, ShrinkEvent{
			Survivors: env.Size(),
			Recovered: env.Now(),
		})
		j.mu.Unlock()
	}
	return prog, nil
}

// ShrinkOutcome returns the job's recorded non-fatal failures and
// in-place recoveries (stable after Wait).
func (j *Job) ShrinkOutcome() ([]*RankFailure, []ShrinkEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]*RankFailure(nil), j.shrinkFailures...),
		append([]ShrinkEvent(nil), j.shrinkEvents...)
}

// RunWithShrinkRecovery is the ULFM counterpart of RunWithRecovery: it
// launches prog under stack with non-fatal crash faults armed, and when
// a fault kills ranks the survivors recover *in place* — pending
// operations complete with the implementation's proc-failed code
// instead of hanging, the world communicator is revoked and shrunk, and
// the survivors rebind and recompute on the smaller world. The job
// never restarts and no checkpoint is ever written; stack must
// therefore be checkpointer-free (CkptNone — any implementation, any
// binding: native, Mukautuva or Wi4MPI, since the five MPIX calls
// thread through every translation layer).
//
// Every crash fault in the injector must be marked NonFatal; fatal
// faults are refused up front, exactly as RunWithRecovery refuses
// invalid restart pairings. The programs are lockstep SPMD (every rank
// executes the same step sequence), which is what guarantees every
// survivor eventually joins the shrink.
func RunWithShrinkRecovery(stack Stack, prog string, inj *faults.Injector, pol ShrinkPolicy, opts ...LaunchOption) (*ShrinkResult, error) {
	if stack.Ckpt != CkptNone {
		return nil, fmt.Errorf("core: shrink recovery is the checkpoint-free path; stack %s loads %s (use RunWithRecovery for restart-based recovery)",
			stack.Label(), stack.Ckpt)
	}
	legOpts := append(append([]LaunchOption(nil), opts...),
		WithFaults(inj), WithShrinkRecovery(pol))
	job, err := Launch(stack, prog, legOpts...)
	if err != nil {
		return nil, err
	}
	res := &ShrinkResult{Job: job}
	werr := WaitTimeout(job, pol.LegTimeout)
	failures, events := job.ShrinkOutcome()
	res.Shrinks = len(events)
	for i, ev := range events {
		if i < len(failures) {
			ev.Failure = failures[i]
			ev.Detected = failures[i].Detected
		}
		res.Events = append(res.Events, ev)
	}
	// A failure that killed ranks but never produced a shrink (e.g. the
	// job finished first, or the timeout hit mid-recovery) is still part
	// of the record.
	for i := len(events); i < len(failures); i++ {
		res.Events = append(res.Events, ShrinkEvent{
			Failure: failures[i], Detected: failures[i].Detected,
		})
	}
	if werr != nil {
		return res, werr
	}
	res.Completed = true
	return res, nil
}
