package core

import (
	"errors"
	"math"
	"testing"
	"time"
)

// Core-level event-mode coverage: the ProgressMode knob must behave
// identically through the whole Launch/Wait/recovery surface, not just
// at the mpicore API (internal/mpicore's differential suite owns that
// layer).

func TestStackValidatesProgressMode(t *testing.T) {
	s := testStack(ImplMPICH, ABINative, CkptNone, 2)
	for _, m := range []ProgressMode{"", ProgressGoroutine, ProgressEvent} {
		s.Progress = m
		if err := s.Validate(); err != nil {
			t.Errorf("Validate with Progress=%q: %v", m, err)
		}
	}
	s.Progress = "fibers"
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted Progress=\"fibers\"")
	}
}

// TestEventModeLaunchAllImpls: every implementation personality runs its
// full app workload under the event scheduler with the same result as
// always — ProgressMode is a schedule, not a semantic.
func TestEventModeLaunchAllImpls(t *testing.T) {
	for _, impl := range []Impl{ImplMPICH, ImplOpenMPI, ImplStdABI} {
		t.Run(string(impl), func(t *testing.T) {
			stack := testStack(impl, ABINative, CkptNone, 5)
			stack.Progress = ProgressEvent
			job, err := Launch(stack, "test.ring")
			if err != nil {
				t.Fatal(err)
			}
			if err := job.Wait(); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < 5; r++ {
				p := job.Program(r).(*ringProg)
				if want := p.expectedSum(5); p.Sum != want {
					t.Fatalf("rank %d sum = %d, want %d", r, p.Sum, want)
				}
			}
		})
	}
}

// TestEventModeAppDigestMatchesGoroutine runs the same deterministic app
// under both engines and compares final program state per rank.
func TestEventModeAppDigestMatchesGoroutine(t *testing.T) {
	run := func(mode ProgressMode) []float64 {
		t.Helper()
		stack := testStack(ImplMPICH, ABINative, CkptNone, 4)
		stack.Progress = mode
		job, err := Launch(stack, "test.shrink.ring")
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 4)
		for r := range out {
			out[r] = job.Program(r).(*shrinkRing).Digest
		}
		return out
	}
	gor := run(ProgressGoroutine)
	ev := run(ProgressEvent)
	for r := range gor {
		if gor[r] != ev[r] {
			t.Errorf("rank %d digest: goroutine %v vs event %v", r, gor[r], ev[r])
		}
	}
}

// TestEventModeCancelDeterministicError is the event-loop companion of
// TestCancelReturnsErrCancelled: cancelling a job whose fibers sit
// parked in the scheduler must collapse to the ErrCancelled sentinel
// every time — never a raw closed-mailbox error from whichever fiber the
// token reached first. Repeated because the original bug class is a
// race between teardown and rank errors.
func TestEventModeCancelDeterministicError(t *testing.T) {
	for i := 0; i < 5; i++ {
		stack := testStack(ImplMPICH, ABINative, CkptNone, 4)
		stack.Progress = ProgressEvent
		job, err := Launch(stack, "test.ring.slow")
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(1+3*i) * time.Millisecond)
		job.Cancel()
		if err := job.Wait(); !errors.Is(err, ErrCancelled) {
			t.Fatalf("iteration %d: Wait after Cancel = %v, want ErrCancelled", i, err)
		}
	}
}

// TestShrinkRecoveryDigestEventMode is the fault-path acceptance test:
// the full kill → revoke → shrink → agree → continue cycle under the
// event scheduler, with survivor digests equal to (a) a survivors-only
// reference run and (b) the same recovery under the goroutine engine.
func TestShrinkRecoveryDigestEventMode(t *testing.T) {
	const n, victim = 4, 2
	recoverDigests := func(mode ProgressMode) []float64 {
		t.Helper()
		stack := shrinkStack(ImplMPICH, ABINative, n)
		stack.Progress = mode
		inj := nonFatalRankCrash(t, victim, 3, stack.Net)
		res, err := RunWithShrinkRecovery(stack, "test.shrink.ring", inj,
			ShrinkPolicy{LegTimeout: 60 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed || res.Shrinks != 1 {
			t.Fatalf("%s mode: completed=%v shrinks=%d", mode, res.Completed, res.Shrinks)
		}
		var out []float64
		for r := 0; r < n; r++ {
			if r == victim {
				continue
			}
			out = append(out, res.Job.Program(r).(*shrinkRing).Digest)
		}
		return out
	}
	want := refDigest(t, ImplMPICH, ABINative, n-1)
	gor := recoverDigests(ProgressGoroutine)
	ev := recoverDigests(ProgressEvent)
	for i := range gor {
		if math.Abs(ev[i]-want) > 0 {
			t.Errorf("event-mode survivor %d digest %v != %d-rank reference %v", i, ev[i], n-1, want)
		}
		if gor[i] != ev[i] {
			t.Errorf("survivor %d digest: goroutine %v vs event %v", i, gor[i], ev[i])
		}
	}
}

// TestEventModeCheckpointRestart: the full MANA checkpoint path — safe-
// point vote, quiesce barriers, counter-exchange drain of the in-flight
// ring messages, image write, fresh-world restart — composes with the
// event scheduler on both legs. (Plain DMTCP cannot capture mid-flight
// messages in any mode; the drain is MANA's job, which is exactly why it
// is the interesting layer to run over the event loop.)
func TestEventModeCheckpointRestart(t *testing.T) {
	stack := testStack(ImplMPICH, ABIMukautuva, CkptMANA, 3)
	stack.Progress = ProgressEvent
	dir := checkpointMidRun(t, stack, true)
	restarted, err := Restart(dir, stack)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Wait(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		p := restarted.Program(r).(*ringProg)
		if want := p.expectedSum(3); p.Sum != want {
			t.Fatalf("rank %d sum after restart = %d, want %d", r, p.Sum, want)
		}
	}
}
