package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/dmtcp"
	"repro/internal/faults"
	"repro/internal/simnet"
)

// pingpongProg is a strictly alternating two-rank round trip: exactly one
// message is ever on the wire, so the jitter stream is consumed in a
// deterministic order and the completion time is a pure function of the
// network seed — the workload for the seed-provenance regression test.
type pingpongProg struct {
	Total int
	Iter  int
}

func (p *pingpongProg) Setup(env *abi.Env) error { return nil }

func (p *pingpongProg) Step(env *abi.Env) (bool, error) {
	buf := make([]byte, 8)
	var st abi.Status
	if env.Rank() == 0 {
		if err := env.T.Send(buf, 1, env.TypeInt64, 1, 9, env.CommWorld); err != nil {
			return false, err
		}
		if err := env.T.Recv(buf, 1, env.TypeInt64, 1, 9, env.CommWorld, &st); err != nil {
			return false, err
		}
	} else {
		if err := env.T.Recv(buf, 1, env.TypeInt64, 0, 9, env.CommWorld, &st); err != nil {
			return false, err
		}
		if err := env.T.Send(buf, 1, env.TypeInt64, 0, 9, env.CommWorld); err != nil {
			return false, err
		}
	}
	p.Iter++
	return p.Iter >= p.Total, nil
}

func init() {
	RegisterProgram("test.pingpong", func() Program { return &pingpongProg{Total: 40} })
	RegisterProgram("test.lockstep.short", func() Program { return &lockstepProg{Total: 10} })
}

// twoNodeStack is a 2x2 cluster (crossing node boundaries, jitter on).
func twoNodeStack(impl Impl, abiMode ABIMode, ckpt CkptMode, seed int64) Stack {
	s := DefaultStack(impl, abiMode, ckpt)
	s.Net.Nodes = 2
	s.Net.RanksPerNode = 2
	s.Net.Seed = seed
	return s
}

func rankCrashInjector(t *testing.T, stack Stack, rank int, step uint64) *faults.Injector {
	t.Helper()
	inj, err := faults.NewInjector(faults.Plan{Faults: []faults.Spec{
		{Kind: faults.KindRankCrash, Rank: rank, Node: faults.Anywhere, Step: step},
	}}, 1, stack.Net)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestWaitReturnsTypedRankFailure(t *testing.T) {
	stack := twoNodeStack(ImplMPICH, ABIMukautuva, CkptMANA, 1)
	inj := rankCrashInjector(t, stack, 2, 5)
	job, err := Launch(stack, "test.ring", WithFaults(inj))
	if err != nil {
		t.Fatal(err)
	}
	err = job.Wait()
	var rf *RankFailure
	if !errors.As(err, &rf) {
		t.Fatalf("Wait() = %v, want *RankFailure", err)
	}
	if len(rf.Ranks) != 1 || rf.Ranks[0] != 2 || rf.Step != 5 || rf.Node != -1 {
		t.Fatalf("failure = %+v", rf)
	}
	if rf.Detected <= 0 {
		t.Fatal("failure carries no virtual detection time")
	}
	// The message is stable: no clocks, no rank-order noise.
	if want := "core: rank(s) [2] crashed before step 5"; rf.Error() != want {
		t.Fatalf("Error() = %q, want %q", rf.Error(), want)
	}
}

func TestRecoverySameImplementation(t *testing.T) {
	stack := twoNodeStack(ImplMPICH, ABIMukautuva, CkptMANA, 1)
	inj := rankCrashInjector(t, stack, 1, 6)
	res, err := RunWithRecovery(stack, "test.ring", inj, RecoveryPolicy{
		ImageRoot: t.TempDir(), Interval: 2, MaxRestarts: 2, LegTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Restarts != 1 || len(res.Events) != 1 {
		t.Fatalf("result = completed=%v restarts=%d events=%d", res.Completed, res.Restarts, len(res.Events))
	}
	ev := res.Events[0]
	if ev.ImageDir == "" || ev.ImageStep == 0 || ev.ImageStep >= 6 {
		t.Fatalf("event = %+v, want an image behind the fault", ev)
	}
	if ev.LostVirt <= 0 || ev.Detected <= ev.ImageVirt {
		t.Fatalf("recomputation window not measured: %+v", ev)
	}
	want := (&ringProg{Total: 40}).expectedSum(4)
	for r := 0; r < 4; r++ {
		if got := res.Job.Program(r).(*ringProg).Sum; got != want {
			t.Fatalf("rank %d sum after recovery = %d, want %d", r, got, want)
		}
	}
}

// The paper's headline, now under failure: every valid cross-restart
// pairing recovers under the other implementation.
func TestRecoveryCrossImplementationPairings(t *testing.T) {
	for _, abiMode := range []ABIMode{ABIMukautuva, ABIWi4MPI} {
		for _, pair := range []struct{ from, to Impl }{
			{ImplOpenMPI, ImplMPICH},
			{ImplMPICH, ImplOpenMPI},
		} {
			t.Run(fmt.Sprintf("%s/%s_to_%s", abiMode, pair.from, pair.to), func(t *testing.T) {
				stack := twoNodeStack(pair.from, abiMode, CkptMANA, 1)
				rstack := twoNodeStack(pair.to, abiMode, CkptMANA, 1)
				inj := rankCrashInjector(t, stack, 3, 7)
				res, err := RunWithRecovery(stack, "test.ring", inj, RecoveryPolicy{
					ImageRoot: t.TempDir(), Interval: 2, MaxRestarts: 2,
					RestartStack: &rstack, LegTimeout: time.Minute,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Completed || res.Restarts != 1 {
					t.Fatalf("completed=%v restarts=%d", res.Completed, res.Restarts)
				}
				if got := res.Job.Stack().Impl; got != pair.to {
					t.Fatalf("recovered under %s, want %s", got, pair.to)
				}
				want := (&ringProg{Total: 40}).expectedSum(4)
				for r := 0; r < 4; r++ {
					if got := res.Job.Program(r).(*ringProg).Sum; got != want {
						t.Fatalf("rank %d sum = %d, want %d", r, got, want)
					}
				}
			})
		}
	}
}

func TestRecoveryNodeCrash(t *testing.T) {
	stack := twoNodeStack(ImplOpenMPI, ABIMukautuva, CkptMANA, 1)
	rstack := twoNodeStack(ImplMPICH, ABIMukautuva, CkptMANA, 1)
	inj, err := faults.NewInjector(faults.Plan{Faults: []faults.Spec{
		{Kind: faults.KindNodeCrash, Rank: faults.Anywhere, Node: 0, Step: 6},
	}}, 1, stack.Net)
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := RunWithRecovery(stack, "test.ring", inj, RecoveryPolicy{
		ImageRoot: t.TempDir(), Interval: 2, MaxRestarts: 2,
		RestartStack: &rstack, LegTimeout: time.Minute,
	})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !res.Completed {
		t.Fatal("node crash not recovered")
	}
	rf := res.Events[0].Failure
	if rf.Node != 0 || len(rf.Ranks) != 2 || rf.Ranks[0] != 0 || rf.Ranks[1] != 1 {
		t.Fatalf("node-crash failure = %+v", rf)
	}
}

// Refusal: pairings the three-legged stool cannot support are rejected
// before any fault fires, not discovered mid-recovery.
func TestRecoveryRefusesInvalidPairings(t *testing.T) {
	cases := []struct {
		name          string
		stack, rstack Stack
		want          string
	}{
		{
			name:   "dmtcp_cross_impl",
			stack:  twoNodeStack(ImplMPICH, ABIMukautuva, CkptDMTCP, 1),
			rstack: twoNodeStack(ImplOpenMPI, ABIMukautuva, CkptDMTCP, 1),
			want:   "DMTCP",
		},
		{
			name:   "native_cross_impl",
			stack:  twoNodeStack(ImplMPICH, ABINative, CkptMANA, 1),
			rstack: twoNodeStack(ImplOpenMPI, ABINative, CkptMANA, 1),
			want:   "native",
		},
		{
			name:   "checkpointer_mismatch",
			stack:  twoNodeStack(ImplMPICH, ABIMukautuva, CkptDMTCP, 1),
			rstack: twoNodeStack(ImplMPICH, ABIMukautuva, CkptMANA, 1),
			want:   "written by",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := rankCrashInjector(t, tc.stack, 0, 5)
			_, err := RunWithRecovery(tc.stack, "test.lockstep", inj, RecoveryPolicy{
				ImageRoot: t.TempDir(), RestartStack: &tc.rstack,
			})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want refusal mentioning %q", err, tc.want)
			}
		})
	}
	// No checkpointing package at all: nothing to recover from.
	stack := twoNodeStack(ImplMPICH, ABINative, CkptNone, 1)
	inj := rankCrashInjector(t, stack, 0, 5)
	if _, err := RunWithRecovery(stack, "test.lockstep", inj, RecoveryPolicy{ImageRoot: t.TempDir()}); err == nil {
		t.Fatal("recovery without a checkpointer accepted")
	}
}

// Plain DMTCP recovers under the identical stack: the baseline the paper
// grants the incumbent.
func TestRecoveryDMTCPSameStack(t *testing.T) {
	stack := twoNodeStack(ImplMPICH, ABIMukautuva, CkptDMTCP, 1)
	inj := rankCrashInjector(t, stack, 2, 5)
	res, err := RunWithRecovery(stack, "test.lockstep", inj, RecoveryPolicy{
		ImageRoot: t.TempDir(), Interval: 2, MaxRestarts: 2, LegTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Restarts != 1 {
		t.Fatalf("completed=%v restarts=%d", res.Completed, res.Restarts)
	}
}

// A failure that beats the first complete image relaunches from scratch
// and still completes.
func TestRecoveryScratchRelaunch(t *testing.T) {
	stack := twoNodeStack(ImplMPICH, ABIMukautuva, CkptMANA, 1)
	inj := rankCrashInjector(t, stack, 1, 2)
	res, err := RunWithRecovery(stack, "test.lockstep.short", inj, RecoveryPolicy{
		ImageRoot: t.TempDir(), Interval: 5, MaxRestarts: 2, LegTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Restarts != 1 {
		t.Fatalf("completed=%v restarts=%d", res.Completed, res.Restarts)
	}
	if ev := res.Events[0]; ev.ImageDir != "" || ev.ImageStep != 0 {
		t.Fatalf("scratch relaunch recorded an image: %+v", ev)
	}
}

func TestRecoveryBudgetExhausted(t *testing.T) {
	stack := twoNodeStack(ImplMPICH, ABIMukautuva, CkptMANA, 1)
	inj, err := faults.NewInjector(faults.Plan{Faults: []faults.Spec{
		{Kind: faults.KindRankCrash, Rank: 0, Node: faults.Anywhere, Step: 4},
		{Kind: faults.KindRankCrash, Rank: 3, Node: faults.Anywhere, Step: 8},
	}}, 1, stack.Net)
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := RunWithRecovery(stack, "test.ring", inj, RecoveryPolicy{
		ImageRoot: t.TempDir(), Interval: 2, MaxRestarts: 1, LegTimeout: time.Minute,
	})
	if rerr == nil {
		t.Fatal("exhausted budget reported success")
	}
	var rf *RankFailure
	if !errors.As(rerr, &rf) || rf.Ranks[0] != 3 {
		t.Fatalf("budget error = %v, want wrapped RankFailure for rank 3", rerr)
	}
	if res.Completed || res.Restarts != 1 || len(res.Events) != 2 {
		t.Fatalf("result = %+v", res)
	}
}

// Periodic checkpointing builds a scannable image lineage even without
// faults, and the scan picks the newest complete set.
func TestPeriodicCheckpointLineage(t *testing.T) {
	root := t.TempDir()
	stack := twoNodeStack(ImplMPICH, ABIMukautuva, CkptMANA, 1)
	job, err := Launch(stack, "test.lockstep.short", WithPeriodicCheckpoint(root, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, step := range []uint64{3, 6, 9} {
		if _, err := os.Stat(dmtcp.PeriodicDir(root, step)); err != nil {
			t.Fatalf("missing periodic image at step %d: %v", step, err)
		}
	}
	dir, meta, ok := dmtcp.LatestComplete(root, 4)
	if !ok || meta.Step != 9 || dir != dmtcp.PeriodicDir(root, 9) {
		t.Fatalf("LatestComplete = %q step %d ok=%v", dir, meta.Step, ok)
	}
	// An incomplete (partial) newer set is skipped, not resumed.
	partial := dmtcp.PeriodicDir(root, 12)
	if err := os.MkdirAll(partial, 0o755); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(filepath.Join(dmtcp.PeriodicDir(root, 9), "meta.gob")); err == nil {
		if err := os.WriteFile(filepath.Join(partial, "meta.gob"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if dir, meta, ok = dmtcp.LatestComplete(root, 4); !ok || meta.Step != 9 {
		t.Fatalf("partial image set not skipped: %q step %d ok=%v", dir, meta.Step, ok)
	}
	// And the images are restartable.
	restarted, err := Restart(dmtcp.PeriodicDir(root, 6), stack)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodicCheckpointRequiresCheckpointer(t *testing.T) {
	stack := twoNodeStack(ImplMPICH, ABINative, CkptNone, 1)
	if _, err := Launch(stack, "test.lockstep", WithPeriodicCheckpoint(t.TempDir(), 2)); err == nil {
		t.Fatal("periodic checkpointing without a checkpointer accepted")
	}
}

// Regression for the seed-provenance bug: Restart used to build the new
// world from whatever stack.Net.Seed the caller passed — an unset seed
// silently ran a different jitter stream than the image's environment,
// and the new meta recorded the wrong provenance.
func TestRestartDefaultsToImageSeed(t *testing.T) {
	const seed = 424242
	stack := DefaultStack(ImplMPICH, ABIMukautuva, CkptMANA)
	stack.Net.Nodes = 2
	stack.Net.RanksPerNode = 1
	stack.Net.JitterFrac = 0.5 // amplify the seed's effect
	stack.Net.Seed = seed

	dir := filepath.Join(t.TempDir(), "ckpt")
	job, err := Launch(stack, "test.pingpong", WithHold())
	if err != nil {
		t.Fatal(err)
	}
	ckpt := job.CheckpointAsync(dir, false)
	job.Start()
	if err := <-ckpt; err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}

	// Restart legs under the same effective seed must replay the same
	// jitter stream and land on identical virtual completion times.
	restartTime := func(t *testing.T, s Stack) (simnet.Time, *Job) {
		t.Helper()
		r, err := Restart(dir, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Wait(); err != nil {
			t.Fatal(err)
		}
		return r.Clock(0), r
	}
	unset := stack
	unset.Net.Seed = 0 // the buggy path: must now default to the image's seed
	tUnset, rUnset := restartTime(t, unset)
	explicit := stack
	explicit.Net.Seed = seed
	tExplicit, _ := restartTime(t, explicit)
	if tUnset != tExplicit {
		t.Fatalf("unset-seed restart diverged from image-seed restart: %v vs %v", tUnset, tExplicit)
	}
	if got := rUnset.Stack().Net.Seed; got != seed {
		t.Fatalf("restart recorded seed %d, want the image's %d", got, seed)
	}
	other := stack
	other.Net.Seed = seed + 1
	if tOther, _ := restartTime(t, other); tOther == tUnset {
		t.Fatal("a different seed produced an identical jitter stream; the seed is not reaching the network")
	}
}

// Cancellation collapses to the stable sentinel, whatever rank noticed
// the closing fabric first.
func TestCancelReturnsErrCancelled(t *testing.T) {
	job, err := Launch(testStack(ImplMPICH, ABINative, CkptNone, 4), "test.ring.slow")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	job.Cancel()
	if err := job.Wait(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Wait after Cancel = %v, want ErrCancelled", err)
	}
}

// Cancel landing on an already-completed job is not a cancellation: the
// run finished, and Wait must say so (the completed-at-the-bound case of
// WaitTimeout).
func TestCancelAfterCompletionIsNotATimeout(t *testing.T) {
	job, err := Launch(testStack(ImplMPICH, ABINative, CkptNone, 2), "test.lockstep")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	job.Cancel()
	if err := job.Wait(); err != nil {
		t.Fatalf("Wait after post-completion Cancel = %v, want nil", err)
	}
}

// A genuine failure that precedes Cancel is not masked by it.
func TestCancelKeepsEarlierGenuineFailure(t *testing.T) {
	job, err := Launch(testStack(ImplMPICH, ABINative, CkptNone, 2), "test.panic")
	if err != nil {
		t.Fatal(err)
	}
	// Let the panic land, then cancel the corpse.
	for i := 0; i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
		job.mu.Lock()
		n := len(job.errs)
		job.mu.Unlock()
		if n > 0 {
			break
		}
	}
	job.Cancel()
	err = job.Wait()
	if errors.Is(err, ErrCancelled) || err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Wait = %v, want the original panic error", err)
	}
}
