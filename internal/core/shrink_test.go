package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/faults"
	"repro/internal/simnet"
)

// shrinkRing is a lockstep collective-per-step workload for the ULFM
// tests: every step allreduces the world's rank sum and accumulates it
// into Digest, so the final digest is a strict function of (membership,
// step count) — a 3-survivor recovered run must produce exactly a
// 3-rank reference run's digest, which is the acceptance bar for
// in-place recovery. The per-step collective also guarantees the rank
// kill lands mid-collective for the survivors: they are inside the
// allreduce when the victim's death is announced.
type shrinkRing struct {
	Total  int
	Iter   int
	Digest float64
}

func (p *shrinkRing) Setup(env *abi.Env) error {
	p.Iter = 0
	p.Digest = 0
	return nil
}

func (p *shrinkRing) Step(env *abi.Env) (bool, error) {
	in := abi.Int64Bytes([]int64{int64(env.Rank() + 1)})
	out := make([]byte, 8)
	if err := env.T.Allreduce(in, out, 1, env.TypeInt64, env.OpSum, env.CommWorld); err != nil {
		return false, err
	}
	p.Digest = p.Digest*31 + float64(abi.Int64sOf(out)[0])
	p.Iter++
	return p.Iter >= p.Total, nil
}

func init() {
	RegisterProgram("test.shrink.ring", func() Program { return &shrinkRing{Total: 8} })
}

// shrinkStack builds a checkpointer-free n-rank stack.
func shrinkStack(impl Impl, abiMode ABIMode, n int) Stack {
	s := DefaultStack(impl, abiMode, CkptNone)
	s.Net = simnet.SingleNode(n)
	return s
}

// refDigest runs the ring on a fresh fault-free world of n ranks and
// returns its digest — the survivors-only reference.
func refDigest(t *testing.T, impl Impl, abiMode ABIMode, n int) float64 {
	t.Helper()
	job, err := Launch(shrinkStack(impl, abiMode, n), "test.shrink.ring")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	return job.Program(0).(*shrinkRing).Digest
}

// nonFatalRankCrash arms one non-fatal rank crash at the given step.
func nonFatalRankCrash(t *testing.T, rank int, step uint64, cfg simnet.Config) *faults.Injector {
	t.Helper()
	inj, err := faults.NewInjector(faults.Plan{Faults: []faults.Spec{
		{Kind: faults.KindRankCrash, Rank: rank, Step: step, NonFatal: true},
	}}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestShrinkRecoveryDigestAllImpls is the subsystem's acceptance bar:
// kill a rank mid-collective under every implementation (native and
// Mukautuva-shimmed), recover in place via revoke/shrink/agree, and
// require the survivors' digest to be bit-identical to a survivors-only
// reference run — proof the shrunken world is a real communicator, not
// a limping one.
func TestShrinkRecoveryDigestAllImpls(t *testing.T) {
	const n, victim = 4, 2
	for _, tc := range []struct {
		impl Impl
		abi  ABIMode
	}{
		{ImplMPICH, ABINative},
		{ImplOpenMPI, ABINative},
		{ImplStdABI, ABINative},
		{ImplMPICH, ABIMukautuva},
		{ImplOpenMPI, ABIMukautuva},
		{ImplStdABI, ABIMukautuva},
		{ImplOpenMPI, ABIWi4MPI},
	} {
		t.Run(fmt.Sprintf("%s_%s", tc.impl, tc.abi), func(t *testing.T) {
			stack := shrinkStack(tc.impl, tc.abi, n)
			inj := nonFatalRankCrash(t, victim, 3, stack.Net)
			res, err := RunWithShrinkRecovery(stack, "test.shrink.ring", inj,
				ShrinkPolicy{LegTimeout: 60 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed || res.Shrinks != 1 {
				t.Fatalf("completed=%v shrinks=%d", res.Completed, res.Shrinks)
			}
			if len(res.Events) != 1 {
				t.Fatalf("events = %+v", res.Events)
			}
			ev := res.Events[0]
			if ev.Failure == nil || len(ev.Failure.Ranks) != 1 || ev.Failure.Ranks[0] != victim {
				t.Fatalf("failure = %+v", ev.Failure)
			}
			if ev.Survivors != n-1 {
				t.Fatalf("survivors = %d, want %d", ev.Survivors, n-1)
			}
			want := refDigest(t, tc.impl, tc.abi, n-1)
			for r := 0; r < n; r++ {
				if r == victim {
					continue
				}
				got := res.Job.Program(r).(*shrinkRing).Digest
				if math.Abs(got-want) > 0 {
					t.Fatalf("survivor rank %d digest %v != %d-rank reference %v", r, got, n-1, want)
				}
			}
		})
	}
}

// TestShrinkValidation pins the guard rails: checkpointed stacks are
// refused, fatal faults are refused under shrink mode, and non-fatal
// faults are refused outside it.
func TestShrinkValidation(t *testing.T) {
	stack := shrinkStack(ImplMPICH, ABINative, 2)

	ck := DefaultStack(ImplMPICH, ABIMukautuva, CkptMANA)
	ck.Net = simnet.SingleNode(2)
	inj := nonFatalRankCrash(t, 1, 2, ck.Net)
	if _, err := RunWithShrinkRecovery(ck, "test.shrink.ring", inj, ShrinkPolicy{}); err == nil {
		t.Fatal("checkpointed stack accepted for shrink recovery")
	}

	fatal, err := faults.NewInjector(faults.Plan{Faults: []faults.Spec{
		{Kind: faults.KindRankCrash, Rank: 1, Step: 2},
	}}, 1, stack.Net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWithShrinkRecovery(stack, "test.shrink.ring", fatal, ShrinkPolicy{}); err == nil {
		t.Fatal("fatal fault accepted under shrink mode")
	}

	nf := nonFatalRankCrash(t, 1, 2, stack.Net)
	if _, err := Launch(stack, "test.shrink.ring", WithFaults(nf)); err == nil {
		t.Fatal("non-fatal fault accepted without shrink mode")
	}
}

// TestShrinkSurvivesConsecutiveFailures drives two separate non-fatal
// crashes through one job: shrink from 5 to 4, then from 4 to 3, with
// the final digest matching a 3-rank reference.
func TestShrinkSurvivesConsecutiveFailures(t *testing.T) {
	const n = 5
	stack := shrinkStack(ImplMPICH, ABINative, n)
	inj, err := faults.NewInjector(faults.Plan{Faults: []faults.Spec{
		{Kind: faults.KindRankCrash, Rank: 1, Step: 2, NonFatal: true},
		{Kind: faults.KindRankCrash, Rank: 4, Step: 5, NonFatal: true},
	}}, 1, stack.Net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithShrinkRecovery(stack, "test.shrink.ring", inj,
		ShrinkPolicy{LegTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Shrinks != 2 {
		t.Fatalf("completed=%v shrinks=%d", res.Completed, res.Shrinks)
	}
	want := refDigest(t, ImplMPICH, ABINative, n-2)
	got := res.Job.Program(0).(*shrinkRing).Digest
	if got != want {
		t.Fatalf("digest %v != 3-rank reference %v", got, want)
	}
}
