package core

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/dmtcp"
	"repro/internal/simnet"
)

// ringProg is the integration-test workload: every step it receives the
// message its left neighbor sent in the PREVIOUS step (so one message per
// pair is in flight at every safe point — the drain protocol must capture
// it), performs an allreduce, and sends the next message right. Exported
// fields are the checkpointed state.
type ringProg struct {
	Total     int
	Iter      int
	Sum       int64
	StepDelay time.Duration // real-time pacing so tests can checkpoint mid-run
}

func (p *ringProg) Setup(env *abi.Env) error { return nil }

func (p *ringProg) value(iter, rank int) int64 { return int64(iter*1000 + rank) }

func (p *ringProg) Step(env *abi.Env) (bool, error) {
	n, me := env.Size(), env.Rank()
	left, right := (me-1+n)%n, (me+1)%n
	if p.Iter > 0 {
		buf := make([]byte, 8)
		var st abi.Status
		if err := env.T.Recv(buf, 1, env.TypeInt64, left, 77, env.CommWorld, &st); err != nil {
			return false, fmt.Errorf("ring recv: %w", err)
		}
		got := abi.Int64sOf(buf)[0]
		want := p.value(p.Iter-1, left)
		if got != want {
			return false, fmt.Errorf("iter %d: ring got %d, want %d", p.Iter, got, want)
		}
	}
	if p.Iter < p.Total {
		if err := env.T.Send(abi.Int64Bytes([]int64{p.value(p.Iter, me)}), 1,
			env.TypeInt64, right, 77, env.CommWorld); err != nil {
			return false, fmt.Errorf("ring send: %w", err)
		}
	}
	// Allreduce accumulates a deterministic checksum of progress.
	out := make([]byte, 8)
	if err := env.T.Allreduce(abi.Int64Bytes([]int64{int64(p.Iter)}), out, 1,
		env.TypeInt64, env.OpSum, env.CommWorld); err != nil {
		return false, fmt.Errorf("allreduce: %w", err)
	}
	p.Sum += abi.Int64sOf(out)[0]
	if p.StepDelay > 0 {
		time.Sleep(p.StepDelay) //mpivet:allow parksafe -- deliberate slow-rank simulation, opt-in via StepDelay (default 0)
	}
	p.Iter++
	return p.Iter > p.Total, nil
}

// expectedSum is the checksum after a full run on n ranks.
func (p *ringProg) expectedSum(n int) int64 {
	var sum int64
	for i := 0; i <= p.Total; i++ {
		sum += int64(i * n)
	}
	return sum
}

// splitProg exercises dynamic objects across checkpoints: it creates a
// communicator split and a derived datatype up front and uses both every
// step. Restart must rebind the vids for both.
type splitProg struct {
	Total int
	Iter  int
	Acc   int64

	sub abi.Handle // NOT exported: rebuilt via vids — see Setup/ensure
	vec abi.Handle

	Sub abi.Handle // exported copies: vids survive gob, handles stay valid
	Vec abi.Handle
}

func (p *splitProg) Setup(env *abi.Env) error {
	var err error
	p.Sub, err = env.T.CommSplit(env.CommWorld, env.Rank()%2, env.Rank())
	if err != nil {
		return err
	}
	p.Vec, err = env.T.TypeVector(2, 1, 2, env.TypeInt64)
	if err != nil {
		return err
	}
	return env.T.TypeCommit(p.Vec)
}

func (p *splitProg) Step(env *abi.Env) (bool, error) {
	out := make([]byte, 8)
	if err := env.T.Allreduce(abi.Int64Bytes([]int64{int64(env.Rank())}), out, 1,
		env.TypeInt64, env.OpSum, p.Sub); err != nil {
		return false, fmt.Errorf("allreduce on split comm: %w", err)
	}
	p.Acc += abi.Int64sOf(out)[0]
	// Use the derived type in a self-contained send/recv pair.
	n, me := env.Size(), env.Rank()
	right, left := (me+1)%n, (me-1+n)%n
	rreq, err := env.T.Irecv(make([]byte, 24), 1, p.Vec, left, 5, env.CommWorld)
	if err != nil {
		return false, err
	}
	if err := env.T.Send(make([]byte, 24), 1, p.Vec, right, 5, env.CommWorld); err != nil {
		return false, err
	}
	if err := env.T.Wait(rreq, nil); err != nil {
		return false, err
	}
	time.Sleep(500 * time.Microsecond) //mpivet:allow parksafe -- deliberate pacing so the overlap window under test stays open
	p.Iter++
	return p.Iter >= p.Total, nil
}

func init() {
	RegisterProgram("test.ring", func() Program { return &ringProg{Total: 40} })
	RegisterProgram("test.ring.slow", func() Program { return &ringProg{Total: 300, StepDelay: time.Millisecond} })
	RegisterProgram("test.split", func() Program { return &splitProg{Total: 200} })
	RegisterProgram("test.lockstep", func() Program { return &lockstepProg{Total: 40} })
	RegisterProgram("test.panic", func() Program { return &panicProg{} })
}

func testStack(impl Impl, abiMode ABIMode, ckpt CkptMode, n int) Stack {
	s := DefaultStack(impl, abiMode, ckpt)
	s.Net = simnet.SingleNode(n)
	return s
}

func TestLaunchAllStacks(t *testing.T) {
	for _, impl := range []Impl{ImplMPICH, ImplOpenMPI} {
		for _, mode := range []ABIMode{ABINative, ABIMukautuva} {
			for _, ckpt := range []CkptMode{CkptNone, CkptMANA} {
				name := fmt.Sprintf("%s/%s/%s", impl, mode, ckpt)
				t.Run(name, func(t *testing.T) {
					job, err := Launch(testStack(impl, mode, ckpt, 4), "test.ring")
					if err != nil {
						t.Fatal(err)
					}
					if err := job.Wait(); err != nil {
						t.Fatal(err)
					}
					want := (&ringProg{Total: 40}).expectedSum(4)
					for r := 0; r < 4; r++ {
						got := job.Program(r).(*ringProg).Sum
						if got != want {
							t.Fatalf("rank %d sum = %d, want %d", r, got, want)
						}
					}
				})
			}
		}
	}
}

func TestStackValidation(t *testing.T) {
	if _, err := Launch(Stack{Impl: "lam", ABI: ABINative, Ckpt: CkptNone, Net: simnet.SingleNode(2)}, "test.ring"); err == nil {
		t.Fatal("bad impl accepted")
	}
	if _, err := Launch(testStack(ImplMPICH, ABINative, CkptNone, 2), "no.such.program"); err == nil {
		t.Fatal("unknown program accepted")
	}
	if err := (Stack{Impl: ImplMPICH, ABI: "static", Ckpt: CkptNone, Net: simnet.SingleNode(1)}).Validate(); err == nil {
		t.Fatal("bad ABI mode accepted")
	}
	if err := (Stack{Impl: ImplMPICH, ABI: ABINative, Ckpt: "dmtcp2", Net: simnet.SingleNode(1)}).Validate(); err == nil {
		t.Fatal("bad ckpt mode accepted")
	}
}

func TestStackLabels(t *testing.T) {
	cases := map[string]Stack{
		"MPICH":                       testStack(ImplMPICH, ABINative, CkptNone, 1),
		"Open MPI + Mukautuva + MANA": testStack(ImplOpenMPI, ABIMukautuva, CkptMANA, 1),
		"MPICH + Mukautuva":           testStack(ImplMPICH, ABIMukautuva, CkptNone, 1),
		"Open MPI + MANA(vid)":        testStack(ImplOpenMPI, ABINative, CkptMANA, 1),
	}
	for want, s := range cases {
		if got := s.Label(); got != want {
			t.Errorf("Label() = %q, want %q", got, want)
		}
	}
}

// checkpointMidRun launches the slow ring, checkpoints once it is running,
// and returns the image directory and the launch error after completion.
func checkpointMidRun(t *testing.T, stack Stack, exit bool) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ckpt")
	job, err := Launch(stack, "test.ring.slow")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let it reach mid-run
	if err := job.Checkpoint(dir, exit); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := job.Wait(); err != nil {
		t.Fatalf("original job: %v", err)
	}
	return dir
}

func TestCheckpointRestartSameImpl(t *testing.T) {
	stack := testStack(ImplMPICH, ABIMukautuva, CkptMANA, 4)
	dir := checkpointMidRun(t, stack, true)
	restarted, err := Restart(dir, stack)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Wait(); err != nil {
		t.Fatal(err)
	}
	want := (&ringProg{Total: 300}).expectedSum(4)
	for r := 0; r < 4; r++ {
		prog := restarted.Program(r).(*ringProg)
		if prog.Sum != want {
			t.Fatalf("rank %d sum after restart = %d, want %d (state or drained messages lost)",
				r, prog.Sum, want)
		}
		if prog.Iter != prog.Total+1 {
			t.Fatalf("rank %d iter = %d, want %d", r, prog.Iter, prog.Total+1)
		}
	}
}

// The paper's headline experiment: checkpoint under Open MPI, restart
// under MPICH (and the reverse).
func TestCrossImplementationRestart(t *testing.T) {
	for _, dir := range []struct {
		from, to Impl
	}{
		{ImplOpenMPI, ImplMPICH},
		{ImplMPICH, ImplOpenMPI},
	} {
		t.Run(fmt.Sprintf("%s_to_%s", dir.from, dir.to), func(t *testing.T) {
			images := checkpointMidRun(t, testStack(dir.from, ABIMukautuva, CkptMANA, 4), true)
			restarted, err := Restart(images, testStack(dir.to, ABIMukautuva, CkptMANA, 4))
			if err != nil {
				t.Fatal(err)
			}
			if err := restarted.Wait(); err != nil {
				t.Fatal(err)
			}
			want := (&ringProg{Total: 300}).expectedSum(4)
			for r := 0; r < 4; r++ {
				if got := restarted.Program(r).(*ringProg).Sum; got != want {
					t.Fatalf("rank %d sum = %d, want %d", r, got, want)
				}
			}
		})
	}
}

// A native-ABI image must refuse to restart under a different
// implementation — the incompatibility the standard ABI exists to remove.
func TestNativeImageRejectsCrossRestart(t *testing.T) {
	images := checkpointMidRun(t, testStack(ImplMPICH, ABINative, CkptMANA, 4), true)
	_, err := Restart(images, testStack(ImplOpenMPI, ABIMukautuva, CkptMANA, 4))
	if err == nil {
		t.Fatal("cross-implementation restart of a native image succeeded")
	}
	if !strings.Contains(err.Error(), "native") {
		t.Fatalf("unhelpful rejection: %v", err)
	}
	// Same implementation is fine.
	restarted, err := Restart(images, testStack(ImplMPICH, ABINative, CkptMANA, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartRequiresCheckpointLayer(t *testing.T) {
	images := checkpointMidRun(t, testStack(ImplMPICH, ABIMukautuva, CkptMANA, 2), true)
	if _, err := Restart(images, testStack(ImplMPICH, ABIMukautuva, CkptNone, 2)); err == nil {
		t.Fatal("restart without MANA accepted")
	}
	if _, err := Restart(images, testStack(ImplMPICH, ABIMukautuva, CkptMANA, 3)); err == nil {
		t.Fatal("restart with wrong world size accepted")
	}
	if _, err := Restart(filepath.Join(t.TempDir(), "nope"), testStack(ImplMPICH, ABIMukautuva, CkptMANA, 2)); err == nil {
		t.Fatal("restart from missing directory accepted")
	}
}

func TestCheckpointContinueKeepsRunning(t *testing.T) {
	stack := testStack(ImplOpenMPI, ABIMukautuva, CkptMANA, 3)
	job, err := Launch(stack, "test.ring.slow")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	dir := filepath.Join(t.TempDir(), "ck")
	if err := job.Checkpoint(dir, false); err != nil {
		t.Fatal(err)
	}
	// The job continues to completion after a continue-mode checkpoint.
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	want := (&ringProg{Total: 300}).expectedSum(3)
	for r := 0; r < 3; r++ {
		if got := job.Program(r).(*ringProg).Sum; got != want {
			t.Fatalf("rank %d sum = %d, want %d", r, got, want)
		}
	}
	// And the image is restartable too.
	restarted, err := Restart(dir, stack)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointAfterCompletionFails(t *testing.T) {
	job, err := Launch(testStack(ImplMPICH, ABINative, CkptNone, 2), "test.ring")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := job.Checkpoint(t.TempDir(), false); err == nil {
		t.Fatal("checkpoint after completion succeeded")
	}
}

// Dynamic objects (split communicators, derived datatypes) must survive
// restart via recipe replay — under a different implementation.
func TestDynamicObjectsAcrossCrossRestart(t *testing.T) {
	stack := testStack(ImplOpenMPI, ABIMukautuva, CkptMANA, 4)
	dir := filepath.Join(t.TempDir(), "ckpt")
	job, err := Launch(stack, "test.split")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	if err := job.Checkpoint(dir, true); err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	restarted, err := Restart(dir, testStack(ImplMPICH, ABIMukautuva, CkptMANA, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Wait(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		prog := restarted.Program(r).(*splitProg)
		// Each step adds the sum of the two ranks sharing r's parity.
		var stepSum int64
		if r%2 == 0 {
			stepSum = 0 + 2
		} else {
			stepSum = 1 + 3
		}
		want := stepSum * int64(prog.Total)
		if prog.Acc != want {
			t.Fatalf("rank %d acc = %d, want %d", r, prog.Acc, want)
		}
	}
}

func TestVirtualClockRestored(t *testing.T) {
	stack := testStack(ImplMPICH, ABIMukautuva, CkptMANA, 2)
	dir := checkpointMidRun(t, stack, true)
	restarted, err := Restart(dir, stack)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Wait(); err != nil {
		t.Fatal(err)
	}
	// The restarted clocks must have continued from the checkpointed time,
	// not from zero: a full run's worth of virtual time has passed.
	if restarted.Clock(0) <= 0 {
		t.Fatal("virtual clock not restored")
	}
}

// Wi4MPI preload stacks: an MPICH-dialect binding over either
// implementation, composable with MANA, checkpoint/restart included.
func TestWi4MPIStacks(t *testing.T) {
	for _, impl := range []Impl{ImplMPICH, ImplOpenMPI} {
		t.Run(string(impl), func(t *testing.T) {
			job, err := Launch(testStack(impl, ABIWi4MPI, CkptNone, 4), "test.ring")
			if err != nil {
				t.Fatal(err)
			}
			if err := job.Wait(); err != nil {
				t.Fatal(err)
			}
			want := (&ringProg{Total: 40}).expectedSum(4)
			for r := 0; r < 4; r++ {
				if got := job.Program(r).(*ringProg).Sum; got != want {
					t.Fatalf("rank %d sum = %d, want %d", r, got, want)
				}
			}
		})
	}
}

func TestWi4MPICrossRestart(t *testing.T) {
	// Checkpoint over Wi4MPI->openmpi, restart over Wi4MPI->mpich: the MANA
	// blob is standard-ABI either way, so the image is portable.
	images := checkpointMidRun(t, testStack(ImplOpenMPI, ABIWi4MPI, CkptMANA, 4), true)
	restarted, err := Restart(images, testStack(ImplMPICH, ABIWi4MPI, CkptMANA, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Wait(); err != nil {
		t.Fatal(err)
	}
	want := (&ringProg{Total: 300}).expectedSum(4)
	for r := 0; r < 4; r++ {
		if got := restarted.Program(r).(*ringProg).Sum; got != want {
			t.Fatalf("rank %d sum = %d, want %d", r, got, want)
		}
	}
	// And a Mukautuva restart of the same image also works.
	restarted2, err := Restart(images, testStack(ImplMPICH, ABIMukautuva, CkptMANA, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted2.Wait(); err != nil {
		t.Fatal(err)
	}
}

// lockstepProg completes all communication within each step (one
// allreduce), so it is quiescent at every safe point — the workload shape
// plain DMTCP can checkpoint without MANA's drain protocol.
type lockstepProg struct {
	Total int
	Iter  int
	Sum   int64
}

func (p *lockstepProg) Setup(env *abi.Env) error { return nil }

func (p *lockstepProg) Step(env *abi.Env) (bool, error) {
	out := make([]byte, 8)
	if err := env.T.Allreduce(abi.Int64Bytes([]int64{int64(p.Iter)}), out, 1,
		env.TypeInt64, env.OpSum, env.CommWorld); err != nil {
		return false, err
	}
	p.Sum += abi.Int64sOf(out)[0]
	p.Iter++
	return p.Iter >= p.Total, nil
}

// Plain DMTCP (no MANA plugin): checkpoints work for step-quiescent
// programs, but the image restores the whole process — MPI library
// included — so only the identical stack can resume it, and
// cross-implementation restart is rejected.
func TestDMTCPCheckpointRestartRules(t *testing.T) {
	stack := testStack(ImplMPICH, ABIMukautuva, CkptDMTCP, 4)
	dir := filepath.Join(t.TempDir(), "ckpt")
	job, err := Launch(stack, "test.lockstep", WithHold())
	if err != nil {
		t.Fatal(err)
	}
	ckpt := job.CheckpointAsync(dir, true)
	job.Start()
	if err := <-ckpt; err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := job.Wait(); err != nil {
		t.Fatalf("original job: %v", err)
	}

	// Wrong checkpointer on the restart side.
	if _, err := Restart(dir, testStack(ImplMPICH, ABIMukautuva, CkptMANA, 4)); err == nil {
		t.Fatal("MANA restart of a DMTCP image accepted")
	}
	// Different implementation.
	if _, err := Restart(dir, testStack(ImplOpenMPI, ABIMukautuva, CkptDMTCP, 4)); err == nil {
		t.Fatal("cross-implementation restart of a DMTCP image accepted")
	}
	// Different binding mode.
	if _, err := Restart(dir, testStack(ImplMPICH, ABIWi4MPI, CkptDMTCP, 4)); err == nil {
		t.Fatal("cross-ABI restart of a DMTCP image accepted")
	}

	// The identical stack resumes and completes correctly.
	restarted, err := Restart(dir, stack)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Wait(); err != nil {
		t.Fatal(err)
	}
	// Sum of 4*i over i=0..39: each step's allreduce contributes 4*Iter.
	var want int64
	for i := 0; i < 40; i++ {
		want += int64(4 * i)
	}
	for r := 0; r < 4; r++ {
		if got := restarted.Program(r).(*lockstepProg).Sum; got != want {
			t.Fatalf("rank %d sum after DMTCP restart = %d, want %d", r, got, want)
		}
	}
}

// A checkpoint on a stack without a checkpointing package fails fast.
func TestCheckpointRequiresCheckpointer(t *testing.T) {
	job, err := Launch(testStack(ImplMPICH, ABINative, CkptNone, 2), "test.ring.slow")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Checkpoint(t.TempDir(), false); err == nil {
		t.Fatal("checkpoint without a checkpointer accepted")
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
}

// A held launch pins the checkpoint to the first safe point, and a
// checkpoint requested after completion errors instead of hanging.
func TestHeldLaunchDeterministicCheckpoint(t *testing.T) {
	stack := testStack(ImplOpenMPI, ABIMukautuva, CkptMANA, 3)
	dir := filepath.Join(t.TempDir(), "ck")
	job, err := Launch(stack, "test.ring", WithHold())
	if err != nil {
		t.Fatal(err)
	}
	ckpt := job.CheckpointAsync(dir, false)
	job.Start()
	if err := <-ckpt; err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	meta, err := dmtcp.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 1 {
		t.Fatalf("checkpoint step = %d, want 1 (first safe point)", meta.Step)
	}
	if meta.Ckpt != string(CkptMANA) || meta.ABI != string(ABIMukautuva) {
		t.Fatalf("image lineage meta = %+v", meta)
	}

	// The job has finished: a late checkpoint request must error, not hang.
	done := make(chan error, 1)
	go func() { done <- job.Checkpoint(t.TempDir(), false) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("post-completion checkpoint succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("post-completion checkpoint hung")
	}
}

// Cancel aborts a running job and unblocks Wait.
func TestCancelAbortsJob(t *testing.T) {
	job, err := Launch(testStack(ImplMPICH, ABINative, CkptNone, 4), "test.ring.slow")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	job.Cancel()
	done := make(chan error, 1)
	go func() { done <- job.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled job reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait hung after Cancel")
	}
}

// panicProg blows up mid-step; the job must fail, not the process.
type panicProg struct{ Iter int }

func (p *panicProg) Setup(env *abi.Env) error { return nil }
func (p *panicProg) Step(env *abi.Env) (bool, error) {
	p.Iter++
	if p.Iter == 3 {
		panic("boom")
	}
	return p.Iter >= 10, nil
}

func TestProgramPanicFailsJobNotProcess(t *testing.T) {
	job, err := Launch(testStack(ImplMPICH, ABINative, CkptNone, 2), "test.panic")
	if err != nil {
		t.Fatal(err)
	}
	err = job.Wait()
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Wait() = %v, want a panic-carrying error", err)
	}
}

// Synchronous Checkpoint and Wait on a held job must error, not deadlock
// or silently succeed.
func TestHeldJobGuards(t *testing.T) {
	job, err := Launch(testStack(ImplMPICH, ABIMukautuva, CkptMANA, 2), "test.ring", WithHold())
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Checkpoint(t.TempDir(), false); err == nil {
		t.Fatal("blocking Checkpoint on a held job accepted")
	}
	if err := job.Wait(); err == nil {
		t.Fatal("Wait on a never-started job reported success")
	}
	job.Start()
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
}
