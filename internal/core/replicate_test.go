package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
)

// TestReplicationDigestAllImpls is the replication subsystem's
// acceptance bar — stricter than shrink's: kill a PRIMARY mid-run under
// every implementation (native and Mukautuva-shimmed), fail over to its
// warm shadow, and require every logical rank's digest to be
// bit-identical to an UNREPLICATED FAULT-FREE reference run at the same
// world size. Shrink gets to compare against a survivors-only
// reference; replication promises full transparency — same membership,
// same results, fault or no fault.
func TestReplicationDigestAllImpls(t *testing.T) {
	const n, victim = 4, 2
	for _, tc := range []struct {
		impl Impl
		abi  ABIMode
	}{
		{ImplMPICH, ABINative},
		{ImplOpenMPI, ABINative},
		{ImplStdABI, ABINative},
		{ImplMPICH, ABIMukautuva},
		{ImplOpenMPI, ABIMukautuva},
		{ImplStdABI, ABIMukautuva},
		{ImplOpenMPI, ABIWi4MPI},
	} {
		t.Run(fmt.Sprintf("%s_%s", tc.impl, tc.abi), func(t *testing.T) {
			want := refDigest(t, tc.impl, tc.abi, n)
			stack := shrinkStack(tc.impl, tc.abi, n)
			inj := nonFatalRankCrash(t, victim, 3, stack.Net)
			res, err := RunWithReplication(stack, "test.shrink.ring", inj,
				ReplicaPolicy{LegTimeout: 60 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed || res.Promotions != 1 {
				t.Fatalf("completed=%v promotions=%d", res.Completed, res.Promotions)
			}
			if len(res.Events) != 1 {
				t.Fatalf("events = %+v", res.Events)
			}
			ev := res.Events[0]
			if ev.Failure == nil || len(ev.Failure.Ranks) != 1 || ev.Failure.Ranks[0] != victim {
				t.Fatalf("failure = %+v", ev.Failure)
			}
			if len(ev.Logical) != 1 || ev.Logical[0] != victim {
				t.Fatalf("promoted = %v, want [%d]", ev.Logical, victim)
			}
			for r := 0; r < n; r++ {
				got := res.Job.LogicalProgram(r).(*shrinkRing).Digest
				if got != want {
					t.Fatalf("logical rank %d digest %v != fault-free reference %v", r, got, want)
				}
			}
		})
	}
}

// TestReplicationFaultFree runs a replicated job with no injector at
// all: the steady-state (overhead-measuring) configuration. Both
// replicas of every logical rank must complete with the reference
// digest, and the replicated run's virtual completion time must exceed
// the unreplicated reference's — the duplicate traffic costs virtual
// time, which is exactly what the recoveryfrontier figure measures.
func TestReplicationFaultFree(t *testing.T) {
	const n = 4
	want := refDigest(t, ImplMPICH, ABINative, n)

	ref, err := Launch(shrinkStack(ImplMPICH, ABINative, n), "test.shrink.ring")
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Wait(); err != nil {
		t.Fatal(err)
	}

	stack := shrinkStack(ImplMPICH, ABINative, n)
	res, err := RunWithReplication(stack, "test.shrink.ring", nil,
		ReplicaPolicy{LegTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Promotions != 0 {
		t.Fatalf("completed=%v promotions=%d", res.Completed, res.Promotions)
	}
	for phys := 0; phys < 2*n; phys++ {
		got := res.Job.Program(phys).(*shrinkRing).Digest
		if got != want {
			t.Fatalf("physical rank %d digest %v != reference %v", phys, got, want)
		}
	}
	var refMax, repMax time.Duration
	for r := 0; r < n; r++ {
		if c := time.Duration(ref.Clock(r)); c > refMax {
			refMax = c
		}
		if c := time.Duration(res.Job.LogicalClock(r)); c > repMax {
			repMax = c
		}
	}
	if repMax <= refMax {
		t.Fatalf("replicated completion %v not slower than unreplicated %v", repMax, refMax)
	}
}

// TestReplicationValidation pins the guard rails: checkpointed stacks
// are refused, fatal faults are refused under replica mode, replica and
// shrink modes are mutually exclusive, and a replicated job cannot be
// restarted.
func TestReplicationValidation(t *testing.T) {
	stack := shrinkStack(ImplMPICH, ABINative, 2)

	ck := DefaultStack(ImplMPICH, ABIMukautuva, CkptMANA)
	ck.Net = stack.Net
	inj := nonFatalRankCrash(t, 1, 2, ck.Net)
	if _, err := RunWithReplication(ck, "test.shrink.ring", inj, ReplicaPolicy{}); err == nil {
		t.Fatal("checkpointed stack accepted for replication")
	}

	fatal, err := faults.NewInjector(faults.Plan{Faults: []faults.Spec{
		{Kind: faults.KindRankCrash, Rank: 1, Step: 2},
	}}, 1, stack.Net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWithReplication(stack, "test.shrink.ring", fatal, ReplicaPolicy{}); err == nil {
		t.Fatal("fatal fault accepted under replica mode")
	}

	if _, err := Launch(stack, "test.shrink.ring",
		WithReplication(ReplicaPolicy{}), WithShrinkRecovery(ShrinkPolicy{})); err == nil {
		t.Fatal("replica+shrink accepted on one job")
	}
}

// TestReplicationEventMode reruns the failover digest check on the
// event-driven progress engine: the replica layer's duplicate routing
// and dedup must behave identically under both rank execution models.
func TestReplicationEventMode(t *testing.T) {
	const n, victim = 4, 1
	want := refDigest(t, ImplOpenMPI, ABIMukautuva, n)
	stack := shrinkStack(ImplOpenMPI, ABIMukautuva, n)
	stack.Progress = ProgressEvent
	inj := nonFatalRankCrash(t, victim, 3, stack.Net)
	res, err := RunWithReplication(stack, "test.shrink.ring", inj,
		ReplicaPolicy{LegTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Promotions != 1 {
		t.Fatalf("completed=%v promotions=%d", res.Completed, res.Promotions)
	}
	for r := 0; r < n; r++ {
		got := res.Job.LogicalProgram(r).(*shrinkRing).Digest
		if got != want {
			t.Fatalf("logical rank %d digest %v != fault-free reference %v", r, got, want)
		}
	}
}
