package core

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/simnet"
)

// ReplicaPolicy configures replication-based recovery — the third leg of
// the recovery axis, next to RunWithRecovery's checkpoint/restart and
// RunWithShrinkRecovery's ULFM shrink. Where restart pays a lost-work
// window and shrink pays recomputation, replication pays up front: every
// logical rank runs as a primary + warm-shadow pair (FTHP-MPI style,
// arXiv:2504.09989), every message is shipped and received twice, and a
// primary's death costs nothing beyond what was already being paid —
// the shadow is promoted in place with no rollback, no image I/O, no
// shrink, no recomputation. The job's communicators never change shape.
type ReplicaPolicy struct {
	// LegTimeout cancels the whole job when it exceeds it (0 = none).
	LegTimeout time.Duration
}

// PromotionEvent records one failover: a fault killed primaries whose
// shadows took over in place. Times are virtual; clocks never rewind,
// so the job's completion time already includes the (steady-state)
// replication overhead — there is no separate recovery window to add.
type PromotionEvent struct {
	// Failure is the fault that killed the primaries.
	Failure *RankFailure
	// Logical lists the logical ranks now running on their shadows.
	Logical []int
	// Detected is the trigger rank's virtual clock at the death.
	Detected simnet.Time
}

// ReplicaResult summarizes a run driven by RunWithReplication.
type ReplicaResult struct {
	// Job is the one and only leg (failover never relaunches).
	Job *Job
	// Completed reports whether the job ran to completion.
	Completed bool
	// Promotions counts logical ranks that failed over to their shadow.
	Promotions int
	// Events records each failure/promotion, in order.
	Events []PromotionEvent
}

// WithReplication arms replica-pair execution on a launch: the world is
// built with a shadow endpoint behind every logical rank (on a disjoint
// set of nodes), both replicas execute the full program, and non-fatal
// crash faults kill primaries without aborting the job — the runtime's
// replica layer (internal/mpicore) keeps the survivors oblivious. It
// requires a checkpointer-free stack (CkptNone): replication is an
// alternative to checkpoint/restart, not a layer over it. Normally
// applied through RunWithReplication.
func WithReplication(pol ReplicaPolicy) LaunchOption {
	return func(o *launchOpts) { o.replica = &pol }
}

// recordReplicaFailure registers a non-fatal fault's kill set on a
// replicated job: the victims' endpoints die and the fabric broadcasts
// the failure notice — which the replica layer translates into shadow
// promotions — but the world stays open and every surviving replica
// keeps running, typically without ever observing an error.
func (j *Job) recordReplicaFailure(f *faults.Fault, step uint64, now simnet.Time) {
	j.mu.Lock()
	rf := newRankFailure(f, step, now)
	j.replicaFailures = append(j.replicaFailures, rf)
	j.traceFailure("failure", rf)
	j.mu.Unlock()
	j.w.Kill(f.Ranks...)
	j.w.NotifyFailure(f.Ranks...)
}

// ReplicaOutcome returns the job's recorded replica failures (stable
// after Wait).
func (j *Job) ReplicaOutcome() []*RankFailure {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]*RankFailure(nil), j.replicaFailures...)
}

// LogicalClock returns logical rank r's completion clock on a
// replicated job: the primary's when it survived, the promoted shadow's
// otherwise (a dead primary's clock froze at its death and would
// under-report the run).
func (j *Job) LogicalClock(r int) simnet.Time {
	if j.w.Replicated() && !j.w.Alive(r) {
		_, shadow := j.w.Replicas(r)
		return j.Clock(shadow)
	}
	return j.Clock(r)
}

// LogicalProgram returns logical rank r's completed program instance on
// a replicated job: the primary's, or the promoted shadow's when the
// primary died (stable after Wait).
func (j *Job) LogicalProgram(r int) Program {
	if j.w.Replicated() && !j.w.Alive(r) {
		_, shadow := j.w.Replicas(r)
		return j.progs[shadow]
	}
	return j.progs[r]
}

// RunWithReplication is the replication counterpart of RunWithRecovery
// and RunWithShrinkRecovery: it launches prog under stack with every
// logical rank backed by a primary + shadow replica pair, optionally
// with non-fatal crash faults armed against the LOGICAL cluster shape
// (stack.Net — resolved targets are always primaries). When a fault
// kills a primary, its warm shadow is promoted in place: no rollback,
// no shrink, no restart, and — because the shadow was already executing
// and already receiving every (duplicated) message — no survivor
// observes an error at all. The job completes with the same program
// results as an unreplicated fault-free run; what replication costs is
// the ~2x steady-state message overhead the recoveryfrontier figure
// measures.
//
// stack must be checkpointer-free (CkptNone — any implementation, any
// binding: native, Mukautuva or Wi4MPI, since the replica layer lives
// in the shared runtime below every ABI surface). Every crash fault in
// the injector must be marked NonFatal; fatal faults are refused up
// front. A nil injector runs fault-free, measuring the steady-state
// overhead alone.
func RunWithReplication(stack Stack, prog string, inj *faults.Injector, pol ReplicaPolicy, opts ...LaunchOption) (*ReplicaResult, error) {
	if stack.Ckpt != CkptNone {
		return nil, fmt.Errorf("core: replication is the checkpoint-free path; stack %s loads %s (use RunWithRecovery for restart-based recovery)",
			stack.Label(), stack.Ckpt)
	}
	legOpts := append(append([]LaunchOption(nil), opts...), WithReplication(pol))
	if inj != nil {
		legOpts = append(legOpts, WithFaults(inj))
	}
	job, err := Launch(stack, prog, legOpts...)
	if err != nil {
		return nil, err
	}
	res := &ReplicaResult{Job: job}
	werr := WaitTimeout(job, pol.LegTimeout)
	n := job.w.LogicalSize()
	for _, f := range job.ReplicaOutcome() {
		ev := PromotionEvent{Failure: f, Detected: f.Detected}
		for _, r := range f.Ranks {
			if r >= n {
				continue // a shadow died: its primary covers, no promotion
			}
			if _, shadow := job.w.Replicas(r); job.w.Alive(shadow) {
				ev.Logical = append(ev.Logical, r)
			}
		}
		res.Promotions += len(ev.Logical)
		res.Events = append(res.Events, ev)
	}
	if werr != nil {
		return res, werr
	}
	res.Completed = true
	return res, nil
}
