// Package core composes the paper's three-legged stool: an application
// compiled once against the standard ABI (leg 1), an MPI implementation
// selected at launch (leg 2), and a transparent checkpointing package
// selected independently (leg 3). A Stack names one choice for each leg;
// Launch runs an SPMD Program over it; Restart resumes a checkpoint image
// under a possibly different Stack — different MPI implementation included,
// provided the image was taken through the standard ABI.
//
// In the README's layer diagram core sits above the applications row,
// composing the whole column: it validates the stack legs (Sections
// 4-5), owns Launch/Checkpoint/Restart, and drives all three recovery
// modes — RunWithRecovery (checkpoint/restart), RunWithShrinkRecovery
// (ULFM shrink) and RunWithReplication (warm-shadow failover); see
// docs/recovery.md for the side-by-side comparison.
package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/abi"
	"repro/internal/dmtcp"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/mana"
	"repro/internal/mpich"
	"repro/internal/mukautuva"
	"repro/internal/openmpi"
	"repro/internal/simnet"
	"repro/internal/stdabi"
	"repro/internal/trace"
	"repro/internal/wi4mpi"
)

// ErrCancelled is the stable error Wait returns for a job torn down by
// Cancel. Cancellation races every rank against the closing fabric, and
// which rank observes the close first is scheduling noise — surfacing
// that rank's error text would make timed-out scenario cells
// nondeterministic, so Wait collapses all of it to this sentinel.
var ErrCancelled = errors.New("core: job cancelled")

// RankFailure is the typed failure Wait returns when an injected fault
// kills ranks: the failure-detection analog of an MPI runtime noticing a
// dead process and aborting the job. It satisfies error with a stable,
// time-free message so reports stay diffable; drivers unpack it with
// errors.As to decide on recovery.
type RankFailure struct {
	// Kind is the fault class that fired.
	Kind faults.Kind
	// Ranks are the dead ranks, ascending.
	Ranks []int
	// Node is the dead node for node-scoped faults, -1 otherwise.
	Node int
	// Step is the program step the victims died before executing.
	Step uint64
	// Detected is the trigger rank's virtual clock at its fatal step
	// boundary — a function of the run alone, so it is as deterministic
	// as every other virtual-time metric (scanning other ranks' live
	// clocks instead would read mid-step values that depend on goroutine
	// interleaving). Per-rank clock skew can put it slightly before a
	// peer's checkpoint clock; consumers clamp windows at zero.
	Detected simnet.Time
}

// Error renders the failure without timestamps, so two runs at the same
// seed produce byte-identical failure text.
func (f *RankFailure) Error() string {
	if f.Node >= 0 {
		return fmt.Sprintf("core: node %d crashed (ranks %v) before step %d", f.Node, f.Ranks, f.Step)
	}
	return fmt.Sprintf("core: rank(s) %v crashed before step %d", f.Ranks, f.Step)
}

// Impl selects the MPI implementation (leg 2).
type Impl string

// Available implementations.
const (
	ImplMPICH   Impl = "mpich"
	ImplOpenMPI Impl = "openmpi"
	// ImplStdABI is the standard-ABI-native implementation: its native
	// handle model, constants and error codes ARE the standard ABI's
	// (internal/stdabi), so even its "native" binding is portable.
	ImplStdABI Impl = "stdabi"
)

// ABIMode selects how the application binds to the implementation.
type ABIMode string

// Binding modes.
const (
	// ABINative binds the application directly to the implementation's own
	// ABI ("compiled with its mpi.h") — fast, but welded to it.
	ABINative ABIMode = "native"
	// ABIMukautuva binds through the standard-ABI shim — portable.
	ABIMukautuva ABIMode = "mukautuva"
	// ABIWi4MPI binds as if compiled against MPICH's mpi.h, with Wi4MPI's
	// preload-mode translator converting calls to the stack's actual
	// implementation on the fly (Section 4.2.2 of the paper).
	ABIWi4MPI ABIMode = "wi4mpi"
)

// CkptMode selects the checkpointing package (leg 3).
type CkptMode string

// Checkpointing packages.
const (
	// CkptNone runs without a checkpointing package; Checkpoint is rejected.
	CkptNone CkptMode = "none"
	// CkptMANA loads the MANA wrapper (MPI-agnostic): images taken through
	// the standard ABI may restart under a different MPI implementation.
	CkptMANA CkptMode = "mana"
	// CkptDMTCP checkpoints with plain DMTCP, no MPI-aware plugin. The
	// image captures the whole process — the MPI library included — so it
	// can only restart under the identical implementation and binding,
	// which is the baseline limitation the paper's Section 3 motivates
	// MANA-over-the-standard-ABI against. Without MANA's drain protocol,
	// messages in flight across a safe point are NOT captured: plain DMTCP
	// is only safe for programs that complete all communication within
	// each step (both Figure 5 applications and the OSU benchmarks do).
	CkptDMTCP CkptMode = "dmtcp"
)

// Stack is one full configuration of the three-legged stool.
type Stack struct {
	Impl   Impl
	ABI    ABIMode
	Ckpt   CkptMode
	Kernel mana.KernelVersion // FSGSBASE model for the MANA layer
	Net    simnet.Config      // cluster shape and cost model

	// Progress selects the world's rank execution engine: the default
	// goroutine-per-rank, or the event-driven scheduler that makes
	// thousand-rank worlds feasible (see fabric.ProgressMode). It is an
	// execution strategy, not a stack leg: results are bit-identical
	// across modes, which the differential suites enforce.
	Progress ProgressMode

	// Muk and Mana override layer tunables; zero values take defaults.
	Muk  mukautuva.Config
	Mana mana.Config
}

// ProgressMode re-exports fabric.ProgressMode for configuration surfaces
// that speak core (scenario, harness, cmd flags).
type ProgressMode = fabric.ProgressMode

// Progress modes (see fabric.ProgressGoroutine/ProgressEvent).
const (
	ProgressGoroutine = fabric.ProgressGoroutine
	ProgressEvent     = fabric.ProgressEvent
)

// Validate reports configuration errors.
func (s Stack) Validate() error {
	switch s.Impl {
	case ImplMPICH, ImplOpenMPI, ImplStdABI:
	default:
		return fmt.Errorf("core: unknown implementation %q", s.Impl)
	}
	switch s.ABI {
	case ABINative, ABIMukautuva, ABIWi4MPI:
	default:
		return fmt.Errorf("core: unknown ABI mode %q", s.ABI)
	}
	switch s.Ckpt {
	case CkptNone, CkptMANA, CkptDMTCP:
	default:
		return fmt.Errorf("core: unknown checkpoint mode %q", s.Ckpt)
	}
	if err := s.Progress.Validate(); err != nil {
		return err
	}
	return s.Net.Validate()
}

// Label renders the stack the way the paper's figure legends do.
func (s Stack) Label() string {
	name := map[Impl]string{ImplMPICH: "MPICH", ImplOpenMPI: "Open MPI", ImplStdABI: "StdABI"}[s.Impl]
	switch s.ABI {
	case ABIMukautuva:
		name += " + Mukautuva"
	case ABIWi4MPI:
		name += " + Wi4MPI"
	}
	switch s.Ckpt {
	case CkptMANA:
		if s.ABI == ABINative {
			return name + " + MANA(vid)"
		}
		return name + " + MANA"
	case CkptDMTCP:
		return name + " + DMTCP"
	}
	return name
}

// DefaultStack is the paper's testbed shape for the given configuration.
func DefaultStack(impl Impl, abiMode ABIMode, ckpt CkptMode) Stack {
	return Stack{
		Impl:   impl,
		ABI:    abiMode,
		Ckpt:   ckpt,
		Kernel: mana.KernelPre5_9,
		Net:    simnet.Discovery10GbE(),
		Muk:    mukautuva.DefaultConfig(),
		Mana:   mana.DefaultConfig(),
	}
}

// Program is an SPMD application: one instance runs per rank. Programs are
// oblivious to checkpointing — they never call checkpoint APIs — which is
// the "transparent" in transparent checkpointing. The contract:
//
//   - Setup initializes rank-local state on a fresh launch (not on
//     restart);
//   - Step performs one unit of work; the runtime may checkpoint between
//     steps. All ranks execute the same number of steps, and every
//     nonblocking request is completed before Step returns;
//   - the concrete type's exported fields are the rank's "upper-half
//     memory": they are gob-serialized into checkpoint images and restored
//     on restart (Go cannot snapshot goroutine stacks; see DESIGN.md).
type Program interface {
	Setup(env *abi.Env) error
	Step(env *abi.Env) (done bool, err error)
}

// programReg maps program names to factories so images can be decoded.
var programReg = struct {
	sync.RWMutex
	m map[string]func() Program
}{m: make(map[string]func() Program)}

// RegisterProgram installs a program factory under a stable name, the gob
// analog of registering a concrete type. Call from package init.
func RegisterProgram(name string, factory func() Program) {
	programReg.Lock()
	defer programReg.Unlock()
	if _, dup := programReg.m[name]; dup {
		panic(fmt.Sprintf("core: duplicate program %q", name))
	}
	programReg.m[name] = factory
}

// Programs lists registered program names.
func Programs() []string {
	programReg.RLock()
	defer programReg.RUnlock()
	out := make([]string, 0, len(programReg.m))
	for name := range programReg.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func programFactory(name string) (func() Program, error) {
	programReg.RLock()
	defer programReg.RUnlock()
	f, ok := programReg.m[name]
	if !ok {
		return nil, fmt.Errorf("core: program %q not registered (have %v)", name, Programs())
	}
	return f, nil
}

// Job is a running (or finished) launch.
type Job struct {
	w     *fabric.World
	coord *dmtcp.Coordinator
	stack Stack
	name  string
	rdir  string // image directory for restarted jobs

	progs []Program
	envs  []*abi.Env
	inj   *faults.Injector // nil unless launched WithFaults

	// factory and configure rebuild a rank's program instance for ULFM
	// in-place recovery (survivors re-Setup on the shrunken world).
	factory   func() Program
	configure func(rank int, p Program)
	// shrink is non-nil for shrink-mode jobs (see RunWithShrinkRecovery):
	// survivors recover in place instead of failing the job.
	shrink *ShrinkPolicy
	// replica is non-nil for replica-mode jobs (see RunWithReplication):
	// the world carries a shadow behind every logical rank, and a
	// primary's death promotes its shadow instead of failing the job.
	replica *ReplicaPolicy

	wg        sync.WaitGroup
	live      atomic.Int32 // ranks still running; 0 resolves stray checkpoints
	cancelled atomic.Bool
	mu        sync.Mutex
	started   bool
	failure   *RankFailure
	errs      []error
	// failedBeforeCancel distinguishes a genuine failure Cancel merely
	// followed from the error noise Cancel itself provokes.
	failedBeforeCancel bool
	// shrinkFailures/shrinkEvents record non-fatal failures and the
	// in-place recoveries they triggered (shrink-mode jobs only).
	shrinkFailures []*RankFailure
	shrinkEvents   []ShrinkEvent
	// replicaFailures records non-fatal failures absorbed by shadow
	// promotion (replica-mode jobs only).
	replicaFailures []*RankFailure
}

// buildTable assembles one rank's binding stack, returning the table the
// application binds to and the checkpoint plugin (the MANA wrapper, or the
// no-op plugin).
func buildTable(stack Stack, w *fabric.World, rank int) (abi.FuncTable, dmtcp.Plugin, *mana.Wrapper, error) {
	var table abi.FuncTable
	switch stack.ABI {
	case ABINative:
		switch stack.Impl {
		case ImplMPICH:
			table = mpich.Bind(mpich.Init(w, rank))
		case ImplOpenMPI:
			table = openmpi.Bind(openmpi.Init(w, rank))
		case ImplStdABI:
			table = stdabi.Bind(stdabi.Init(w, rank))
		}
	case ABIMukautuva:
		shim, err := mukautuva.Load(string(stack.Impl), w, rank, stack.Muk)
		if err != nil {
			return nil, nil, nil, err
		}
		table = shim
	case ABIWi4MPI:
		pre, err := wi4mpi.Load(string(stack.Impl), w, rank, wi4mpi.DefaultConfig())
		if err != nil {
			return nil, nil, nil, err
		}
		table = pre
	}
	if stack.Ckpt != CkptMANA {
		return table, dmtcp.NopPlugin{}, nil, nil
	}
	mcfg := stack.Mana
	mcfg.Kernel = stack.Kernel
	switch stack.ABI {
	case ABINative:
		// Over a native binding, in-status error codes are in the
		// implementation's own space; give MANA the class table.
		switch stack.Impl {
		case ImplMPICH:
			mcfg.ErrClass = mpich.ClassOfCode
		case ImplOpenMPI:
			mcfg.ErrClass = openmpi.ClassOfCode
		case ImplStdABI:
			mcfg.ErrClass = stdabi.ClassOfCode
		}
	case ABIWi4MPI:
		// Wi4MPI presents MPICH's code space upward regardless of the
		// implementation underneath.
		mcfg.ErrClass = mpich.ClassOfCode
	}
	wrapper := mana.NewWrapper(table, w, rank, mcfg)
	return wrapper, wrapper, wrapper, nil
}

// LaunchOption tweaks a launch.
type LaunchOption func(*launchOpts)

type launchOpts struct {
	configure func(rank int, p Program)
	hold      bool
	inj       *faults.Injector
	periodic  dmtcp.Periodic
	shrink    *ShrinkPolicy
	replica   *ReplicaPolicy
	sink      *trace.Sink
}

// WithConfigure runs fn on each rank's fresh program instance before the
// job starts, the launch-parameter analog of command-line flags. Restart
// does not re-run it: parameters live in the serialized state.
func WithConfigure(fn func(rank int, p Program)) LaunchOption {
	return func(o *launchOpts) { o.configure = fn }
}

// WithHold builds the job without starting the rank goroutines; the caller
// releases them with Job.Start. Holding a job lets a driver register a
// checkpoint request before any rank has taken a step, pinning the
// checkpoint to the first safe point — the scenario engine uses this to
// make checkpoint/restart runs deterministic instead of racing a wall-clock
// sleep window.
func WithHold() LaunchOption {
	return func(o *launchOpts) { o.hold = true }
}

// WithFaults arms a fault injector on the job: NIC degradations are
// installed into the network cost model at launch, and crash faults are
// consulted at every rank's step boundaries. When a crash fires, the
// victims die, the job tears down, and Wait returns a *RankFailure. The
// same injector may be passed to Restart legs; fired faults do not
// refire, so a recovered job replays the trigger step unharmed. The
// injector must have been armed against the stack's cluster shape.
func WithFaults(inj *faults.Injector) LaunchOption {
	return func(o *launchOpts) { o.inj = inj }
}

// WithPeriodicCheckpoint checkpoints the job every `every` steps into
// step-numbered subdirectories of root (dmtcp.PeriodicDir), building the
// image lineage automated recovery restarts from. It requires a
// checkpointing package in the stack and composes with Restart, so
// recovery legs keep extending the lineage.
func WithPeriodicCheckpoint(root string, every uint64) LaunchOption {
	return func(o *launchOpts) { o.periodic = dmtcp.Periodic{Dir: root, Every: every} }
}

// WithTrace attaches a virtual-time trace sink to the launch: the leg
// gets one per-rank track set in the sink and the whole stack's
// instrumentation lights up (see internal/trace). A nil sink is the
// disabled state and costs a pointer compare per emission site. Pass
// the same sink to Restart legs so one recovery cycle exports as one
// multi-process trace.
func WithTrace(sink *trace.Sink) LaunchOption {
	return func(o *launchOpts) { o.sink = sink }
}

// Launch starts progName (a registered Program) on a fresh world under the
// given stack. It returns immediately; use Wait, or Checkpoint while
// running.
func Launch(stack Stack, progName string, opts ...LaunchOption) (*Job, error) {
	var lo launchOpts
	for _, o := range opts {
		o(&lo)
	}
	if err := stack.Validate(); err != nil {
		return nil, err
	}
	factory, err := programFactory(progName)
	if err != nil {
		return nil, err
	}
	var w *fabric.World
	if lo.replica != nil {
		// stack.Net names the LOGICAL cluster; the replicated world adds
		// a disjoint set of nodes carrying one shadow per logical rank.
		w, err = fabric.NewReplicatedWorld(stack.Net, stack.Progress)
	} else {
		w, err = fabric.NewWorldMode(stack.Net, stack.Progress)
	}
	if err != nil {
		return nil, err
	}
	n := w.Size()
	job := &Job{
		w:     w,
		stack: stack,
		name:  progName,
		progs: make([]Program, n),
		envs:  make([]*abi.Env, n),
		coord: dmtcp.NewCoordinator(w, dmtcp.Meta{
			Impl:        string(stack.Impl),
			ABI:         string(stack.ABI),
			Ckpt:        string(stack.Ckpt),
			StandardABI: stack.ABI != ABINative,
			Program:     progName,
			NetSeed:     stack.Net.Seed,
		}),
	}
	// The leg must exist before Start spawns the rank goroutines:
	// SetTrace writes the per-endpoint track pointers unsynchronized.
	w.SetTrace(lo.sink.NewLeg("launch "+progName, n))
	job.factory = factory
	job.configure = lo.configure
	for r := 0; r < n; r++ {
		job.progs[r] = factory()
		if lo.configure != nil {
			// On a replicated world both replicas of a logical rank get
			// the identical configuration — the replicas must execute the
			// same deterministic program (r%LogicalSize == r otherwise).
			lo.configure(r%w.LogicalSize(), job.progs[r])
		}
	}
	if err := applyRunOpts(job, lo); err != nil {
		return nil, err
	}
	if lo.hold {
		return job, nil
	}
	job.Start()
	return job, nil
}

// applyRunOpts installs the options shared by launch and restart legs
// (fault injection, periodic checkpointing, shrink-mode recovery).
func applyRunOpts(job *Job, lo launchOpts) error {
	if lo.periodic.Every > 0 {
		if job.stack.Ckpt == CkptNone {
			return fmt.Errorf("core: periodic checkpointing requires a checkpointing package in the stack")
		}
		job.coord.SetPeriodic(lo.periodic)
	}
	job.shrink = lo.shrink
	job.replica = lo.replica
	if lo.shrink != nil && lo.replica != nil {
		return fmt.Errorf("core: shrink-mode and replica-mode recovery are mutually exclusive")
	}
	inPlace := lo.shrink != nil || lo.replica != nil
	if inPlace {
		if job.stack.Ckpt != CkptNone {
			return fmt.Errorf("core: in-place (shrink/replica) recovery is the checkpoint-free path; stack %s loads %s",
				job.stack.Label(), job.stack.Ckpt)
		}
		if lo.periodic.Every > 0 {
			return fmt.Errorf("core: in-place (shrink/replica) recovery does not compose with periodic checkpointing")
		}
	}
	if lo.inj != nil {
		job.inj = lo.inj
		lo.inj.BeginLeg()
		lo.inj.ArmNetwork(job.w.Network())
		// A fatal crash under an in-place-recovery job would close the
		// world out from under the survivors; a non-fatal crash under a
		// restart-mode job would strand survivors at the next checkpoint
		// barrier waiting for deposits the dead will never make.
		fatal, nonFatal := lo.inj.CrashModes()
		if inPlace && fatal {
			return fmt.Errorf("core: in-place-recovery job armed with fatal crash faults; mark them NonFatal")
		}
		if !inPlace && nonFatal {
			return fmt.Errorf("core: non-fatal crash faults require in-place recovery (RunWithShrinkRecovery or RunWithReplication)")
		}
	}
	return nil
}

// Start releases a job built with WithHold. It is a no-op on jobs that are
// already running.
func (j *Job) Start() {
	j.mu.Lock()
	if j.started {
		j.mu.Unlock()
		return
	}
	j.started = true
	j.mu.Unlock()
	j.live.Store(int32(len(j.progs)))
	for r := range j.progs {
		j.wg.Add(1)
		r := r
		// Spawn, not `go`: on an event-mode world the rank must run as a
		// scheduler fiber so the fabric's blocking primitives can park it.
		j.w.Spawn(r, func() { j.runRank(r, j.rdir != "", 0) })
	}
}

// runRank executes one rank's lifecycle: bind, setup (or resume), step
// loop with safe points.
func (j *Job) runRank(rank int, resumed bool, startStep uint64) {
	defer j.wg.Done()
	// When the last rank exits, fail any still-pending checkpoint request:
	// a caller blocked in Checkpoint must not hang on a job that finished
	// before the request reached a safe point (and no new safe points are
	// coming). The abort also closes the coordinator, so requests arriving
	// after this point are rejected immediately.
	defer func() {
		if j.live.Add(-1) == 0 {
			j.coord.AbortPending(fmt.Errorf("core: job finished before the checkpoint request reached a safe point"))
		}
	}()
	fail := func(err error) {
		// A dead rank's errors are noise, not signal: a non-fatal crash
		// closes the victim's mailbox, so a co-victim blocked mid-step
		// trips over it and "fails" — but it is a corpse, and fail-stop
		// semantics say corpses don't get to fail the job.
		if !j.w.Alive(rank) && !j.cancelled.Load() {
			return
		}
		j.mu.Lock()
		j.errs = append(j.errs, fmt.Errorf("rank %d: %w", rank, err))
		j.mu.Unlock()
		j.w.Close() // release peers blocked in the fabric
	}
	// A panicking program (or binding layer) fails its own job, not the
	// process: the scenario engine runs many stacks concurrently and one
	// broken stack must not sink its siblings.
	defer func() {
		if r := recover(); r != nil {
			fail(fmt.Errorf("panic: %v", r))
		}
	}()
	table, plugin, wrapper, err := buildTable(j.stack, j.w, rank)
	if err != nil {
		fail(err)
		return
	}
	agent := j.coord.NewAgent(rank)
	prog := j.progs[rank]
	if resumed {
		img, err := dmtcp.ReadRankImage(j.restartDir(), rank)
		if err != nil {
			fail(err)
			return
		}
		switch {
		case wrapper != nil:
			if err := wrapper.Restore(img.PluginBlob); err != nil {
				fail(err)
				return
			}
		case j.stack.Ckpt == CkptDMTCP:
			// Plain DMTCP restores the whole process image wholesale; in
			// the reproduction that is the program-state decode below, and
			// there is no MPI-aware plugin state to rebuild. Restart has
			// already verified the stack is identical to the image's.
		default:
			fail(fmt.Errorf("core: restart requires the MANA layer in the stack"))
			return
		}
		if err := gob.NewDecoder(bytes.NewReader(img.ProgState)).Decode(prog); err != nil {
			fail(fmt.Errorf("core: decoding program state: %w", err))
			return
		}
		j.w.Endpoint(rank).Clock().Set(simnet.Time(img.Clock))
		agent.SetStep(img.Step)
		startStep = img.Step
		if tr := j.w.Endpoint(rank).Trace(); tr != nil {
			tr.Instant(trace.CatCkpt, "restore", simnet.Time(img.Clock),
				trace.Arg{Key: "step", Val: trace.Itoa(int(img.Step))})
		}
	}
	env, err := abi.NewEnv(table, j.w.Endpoint(rank).Clock())
	if err != nil {
		fail(err)
		return
	}
	j.envs[rank] = env
	if !resumed {
		var t0 simnet.Time
		tr := j.w.Endpoint(rank).Trace()
		if tr != nil {
			t0 = j.w.Endpoint(rank).Clock().Now()
		}
		if err := prog.Setup(env); err != nil {
			fail(fmt.Errorf("setup: %w", err))
			return
		}
		if tr != nil {
			tr.Span(trace.CatCkpt, "setup", t0, j.w.Endpoint(rank).Clock().Now())
		}
	}
	shrinks := 0
	for {
		if j.inj != nil {
			// The rank is about to execute step agent.Step()+1; a crash
			// fault triggered here models fail-stop death between safe
			// points. In the fatal (restart-recovery) mode the trigger
			// rank records the failure and tears the world down; in the
			// non-fatal (ULFM) mode it records the failure, kills the
			// victims' endpoints and broadcasts the failure notice, and
			// the survivors keep running. Co-victims of an already-fired
			// fault just die.
			// On a replicated job the injector was armed against the
			// LOGICAL cluster shape, so resolved victims are always
			// primaries — a shadow's physical rank is past the logical
			// range and never matches.
			if f, dead, first := j.inj.CrashAt(rank, agent.Step()+1, j.w.Endpoint(rank).Clock().Now()); dead {
				if first {
					switch {
					case j.replica != nil:
						j.recordReplicaFailure(f, agent.Step()+1, j.w.Endpoint(rank).Clock().Now())
					case f.NonFatal:
						j.recordShrinkFailure(f, agent.Step()+1, j.w.Endpoint(rank).Clock().Now())
					default:
						j.recordFailure(f, agent.Step()+1, j.w.Endpoint(rank).Clock().Now())
					}
				}
				return
			}
		}
		done, err := prog.Step(env)
		if err != nil {
			// ULFM in-place recovery: a survivor whose step tripped over
			// the failure (proc-failed) or its aftermath (revoked) does
			// not fail the job — it revokes, shrinks, and continues on
			// the survivors-only communicator.
			if j.shrink != nil && j.w.Alive(rank) && ulfmRecoverable(err) {
				if shrinks >= j.shrink.maxShrinks() {
					fail(fmt.Errorf("shrink budget exhausted after %d recoveries: %w", shrinks, err))
					return
				}
				prog, err = j.shrinkRecover(rank, env)
				if err != nil {
					fail(err)
					return
				}
				shrinks++
				continue
			}
			fail(fmt.Errorf("step %d: %w", agent.Step(), err))
			return
		}
		if j.shrink != nil || j.replica != nil {
			// In-place-recovery jobs are checkpoint-free by construction,
			// and the safe-point vote is a barrier over ALL ranks — the
			// dead included, who will never vote again. Keep the step
			// count (the injector's trigger clock) without the barrier.
			agent.SetStep(agent.Step() + 1)
			if done {
				return
			}
			continue
		}
		decision, err := agent.SafePoint(func() ([]byte, error) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(prog); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		}, plugin)
		if err != nil {
			fail(fmt.Errorf("safe point: %w", err))
			return
		}
		if decision != dmtcp.DecisionContinue {
			if tr := j.w.Endpoint(rank).Trace(); tr != nil {
				tr.Instant(trace.CatCkpt, "checkpoint", j.w.Endpoint(rank).Clock().Now(),
					trace.Arg{Key: "step", Val: trace.Itoa(int(agent.Step()))})
			}
		}
		if decision == dmtcp.DecisionExit || done {
			return
		}
	}
}

// restartDir is set on restart jobs (see Restart).
func (j *Job) restartDir() string { return j.rdir }

// newRankFailure renders an armed fault into the typed failure record —
// shared by the fatal (restart-mode) and non-fatal (shrink-mode) paths
// so the two recovery halves can never disagree on what a failure is.
func newRankFailure(f *faults.Fault, step uint64, now simnet.Time) *RankFailure {
	node := -1
	if f.Kind == faults.KindNodeCrash {
		node = f.Node
	}
	ranks := append([]int(nil), f.Ranks...)
	sort.Ints(ranks)
	return &RankFailure{Kind: f.Kind, Ranks: ranks, Node: node, Step: step, Detected: now}
}

// recordFailure registers an injected fault's kill set and propagates it:
// victims' endpoints die, then the world closes so surviving ranks
// unblock (and fail) instead of waiting forever on the dead ranks'
// traffic. A job that already failed for a genuine reason keeps that
// error: the fault arrived on a corpse.
func (j *Job) recordFailure(f *faults.Fault, step uint64, now simnet.Time) {
	j.mu.Lock()
	if j.failure == nil && len(j.errs) == 0 {
		j.failure = newRankFailure(f, step, now)
		j.traceFailure("failure", j.failure)
	}
	j.mu.Unlock()
	j.w.Kill(f.Ranks...)
	j.w.Close()
}

// Checkpoint requests a coordinated checkpoint into dir at the job's next
// safe point and blocks until it completes. With exit=true the job stops
// after the images are written. A held job has no safe points yet, so
// blocking on it would deadlock; use CheckpointAsync before Start instead.
func (j *Job) Checkpoint(dir string, exit bool) error {
	if !j.isStarted() {
		return fmt.Errorf("core: job is held; register with CheckpointAsync before Start")
	}
	return <-j.CheckpointAsync(dir, exit)
}

func (j *Job) isStarted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.started
}

// CheckpointAsync registers the checkpoint request and returns a channel
// that yields one error (nil on success) when it completes. Combined with
// WithHold it pins the checkpoint to the job's first safe point.
func (j *Job) CheckpointAsync(dir string, exit bool) <-chan error {
	if j.stack.Ckpt == CkptNone {
		errs := make(chan error, 1)
		errs <- fmt.Errorf("core: stack %s has no checkpointing package", j.stack.Label())
		return errs
	}
	return j.coord.RequestCheckpoint(dir, exit)
}

// Cancel aborts a running job: the fabric closes, every rank unblocks and
// fails, and Wait returns ErrCancelled. It is safe to call concurrently
// with Wait and is idempotent; the scenario engine uses it to enforce
// per-scenario timeouts without leaking rank goroutines.
func (j *Job) Cancel() {
	j.mu.Lock()
	if len(j.errs) > 0 && !j.cancelled.Load() {
		j.failedBeforeCancel = true
	}
	j.mu.Unlock()
	j.cancelled.Store(true)
	j.w.Close()
}

// Wait joins all ranks and returns the job's outcome: nil on success, a
// *RankFailure when an injected fault killed ranks, ErrCancelled after
// Cancel, otherwise the first rank error. Failure detection outranks the
// rank errors because every error a closing world provokes is downstream
// noise of the one event that closed it; which rank tripped over the
// closed fabric first is scheduling order, not signal. Waiting on a held
// job that was never started is an error, not a silent success.
func (j *Job) Wait() error {
	if !j.isStarted() {
		return fmt.Errorf("core: held job was never started")
	}
	j.wg.Wait()
	// The last exiting rank has already aborted any pending checkpoint
	// request and closed the coordinator (see runRank); only the fabric
	// teardown is left.
	j.w.Close()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failure != nil {
		return j.failure
	}
	if j.failedBeforeCancel {
		return j.errs[0] // the genuine failure Cancel merely followed
	}
	// Cancellation only counts if it actually interrupted a rank: a job
	// whose ranks all returned cleanly (no errors) completed right at
	// the bound, and a finished run is not a timeout.
	if j.cancelled.Load() && len(j.errs) > 0 {
		return ErrCancelled
	}
	if len(j.errs) > 0 {
		return j.errs[0]
	}
	return nil
}

// Program returns rank r's program instance (stable after Wait).
func (j *Job) Program(r int) Program { return j.progs[r] }

// Env returns rank r's bound environment (available once the rank is
// running; used by harnesses for clock access).
func (j *Job) Env(r int) *abi.Env { return j.envs[r] }

// Clock returns rank r's virtual clock reading.
func (j *Job) Clock(r int) simnet.Time { return j.w.Endpoint(r).Clock().Now() }

// Stack returns the job's stack.
func (j *Job) Stack() Stack { return j.stack }

// TraceLeg returns the job's trace leg (nil when launched without
// WithTrace); recovery drivers use its driver track for out-of-rank
// events.
func (j *Job) TraceLeg() *trace.Leg { return j.w.TraceLeg() }

// traceFailure records an injected failure on the leg's driver track —
// shared by all three recovery modes so a traced cell always shows the
// kill as an instant at the detection clock.
func (j *Job) traceFailure(name string, f *RankFailure) {
	j.w.TraceLeg().Driver(trace.CatCkpt, name, f.Detected,
		trace.Arg{Key: "ranks", Val: fmt.Sprint(f.Ranks)},
		trace.Arg{Key: "step", Val: trace.Itoa(int(f.Step))})
}

// restartCompatErr reports why an image with the given lineage — the MPI
// implementation, binding mode and checkpointer it was taken under, and
// whether that binding went through the standard ABI — cannot be resumed
// under stack. Shared by Restart (lineage read from the image meta) and
// the recovery driver (lineage known up front from the launch stack, so
// an invalid pairing is refused before any fault fires).
func restartCompatErr(imgImpl, imgABI, imgCkpt string, standardABI bool, stack Stack) error {
	if stack.Ckpt == CkptNone {
		return fmt.Errorf("core: restart requires a checkpointing package in the stack")
	}
	if imgCkpt == "" {
		imgCkpt = string(CkptMANA) // images from before Meta.Ckpt existed
	}
	if string(stack.Ckpt) != imgCkpt {
		return fmt.Errorf("core: image was written by %s; the restart stack loads %s",
			imgCkpt, stack.Ckpt)
	}
	if stack.Ckpt == CkptDMTCP {
		// A plain DMTCP image embeds the MPI library it ran over; only the
		// identical stack can resume it (Section 3's baseline limitation).
		if string(stack.Impl) != imgImpl || (imgABI != "" && string(stack.ABI) != imgABI) {
			return fmt.Errorf(
				"core: plain DMTCP image taken under %s/%s restores the whole process, "+
					"MPI library included; it cannot restart under %s/%s — "+
					"use the MANA stack over the standard ABI for cross-implementation restart",
				imgImpl, imgABI, stack.Impl, stack.ABI)
		}
		return nil
	}
	if !standardABI {
		if stack.ABI != ABINative || string(stack.Impl) != imgImpl {
			return fmt.Errorf(
				"core: image was taken under %s with a native (non-standard) ABI; "+
					"it can only restart under the same implementation "+
					"(requested %s/%s) — use the Mukautuva stack for cross-implementation restart",
				imgImpl, stack.Impl, stack.ABI)
		}
		return nil
	}
	if stack.ABI == ABINative {
		return fmt.Errorf("core: standard-ABI image requires a translation stack (Mukautuva or Wi4MPI) to restart")
	}
	return nil
}

// Restart resumes a checkpoint image set under a new stack. The stack may
// name a different MPI implementation than the one the image was taken
// under only when the image was taken by MANA through the standard ABI
// (ABIMukautuva or ABIWi4MPI) — restarting a native-ABI or plain-DMTCP
// image under another implementation is exactly the incompatibility the
// paper's three-legged stool removes, and is rejected here.
//
// A zero stack.Net.Seed resumes the image's recorded jitter stream
// (meta.NetSeed), so an unset seed reproduces the checkpointed
// environment instead of silently running a different one; the new
// job's meta records the seed actually used. Options apply as on Launch,
// except WithConfigure and WithHold: launch parameters live in the
// serialized program state, and restart jobs start immediately.
func Restart(dir string, stack Stack, opts ...LaunchOption) (*Job, error) {
	var lo launchOpts
	for _, o := range opts {
		o(&lo)
	}
	if err := stack.Validate(); err != nil {
		return nil, err
	}
	meta, err := dmtcp.ReadMeta(dir)
	if err != nil {
		return nil, err
	}
	if err := restartCompatErr(meta.Impl, meta.ABI, meta.Ckpt, meta.StandardABI, stack); err != nil {
		return nil, err
	}
	if lo.shrink != nil {
		return nil, fmt.Errorf("core: shrink-mode recovery applies to launches, not restarts")
	}
	if lo.replica != nil {
		return nil, fmt.Errorf("core: replica-mode recovery applies to launches, not restarts")
	}
	if stack.Net.Size() != meta.NumRanks {
		return nil, fmt.Errorf("core: stack has %d ranks, image has %d", stack.Net.Size(), meta.NumRanks)
	}
	if stack.Net.Seed == 0 {
		stack.Net.Seed = meta.NetSeed
	}
	factory, err := programFactory(meta.Program)
	if err != nil {
		return nil, err
	}
	w, err := fabric.NewWorldMode(stack.Net, stack.Progress)
	if err != nil {
		return nil, err
	}
	n := w.Size()
	job := &Job{
		w:     w,
		stack: stack,
		name:  meta.Program,
		rdir:  dir,
		progs: make([]Program, n),
		envs:  make([]*abi.Env, n),
		coord: dmtcp.NewCoordinator(w, dmtcp.Meta{
			Impl:        string(stack.Impl),
			ABI:         string(stack.ABI),
			Ckpt:        string(stack.Ckpt),
			StandardABI: stack.ABI != ABINative,
			Program:     meta.Program,
			NetSeed:     stack.Net.Seed,
		}),
	}
	w.SetTrace(lo.sink.NewLeg("restart "+meta.Program, n))
	job.factory = factory
	for r := 0; r < n; r++ {
		job.progs[r] = factory()
	}
	if err := applyRunOpts(job, lo); err != nil {
		return nil, err
	}
	job.Start()
	return job, nil
}
