package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dmtcp"
	"repro/internal/faults"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// RecoveryPolicy configures the automated fault-recovery driver.
type RecoveryPolicy struct {
	// ImageRoot is the directory the job's periodic checkpoints land in
	// and recovery restarts read from (required).
	ImageRoot string
	// Interval is the periodic checkpoint interval in program steps
	// (default 1: an image behind every safe point).
	Interval uint64
	// MaxRestarts bounds the retry budget; a failure past the budget is
	// returned instead of recovered (default 3).
	MaxRestarts int
	// RestartStack, when non-nil, is the stack recovery legs run under —
	// a different MPI implementation when the image's ABI/checkpointer
	// legs allow it (the paper's headline, now under real failure). Its
	// cluster shape must match the launch stack's. Nil restarts under
	// the launch stack.
	RestartStack *Stack
	// LegTimeout cancels any single leg (launch or restart) exceeding
	// it; the resulting ErrCancelled is not recoverable (0 = no bound).
	LegTimeout time.Duration
}

// RecoveryEvent records one detect-and-restart cycle. All times are
// virtual, so recovery metrics are as deterministic as the run itself.
type RecoveryEvent struct {
	// Failure is the detected rank failure that triggered the cycle.
	Failure *RankFailure
	// Detected is the virtual detection time (Failure.Detected).
	Detected simnet.Time
	// ImageDir/ImageStep/ImageVirt identify the complete image the leg
	// resumed from; ImageDir is empty when no complete image existed yet
	// and the leg relaunched from scratch.
	ImageDir  string
	ImageStep uint64
	ImageVirt simnet.Time
	// LostVirt is the recomputation window: virtual time between the
	// resumed image and the detection point — the work the failure threw
	// away, the quantity the recovery-overhead table sweeps against the
	// checkpoint interval. Clamped at zero: per-rank clock skew can put
	// the trigger rank's detection clock a hair before the image
	// writer's checkpoint clock.
	LostVirt time.Duration
}

// RecoveryResult summarizes a run driven by RunWithRecovery.
type RecoveryResult struct {
	// Job is the final leg (completed, or failed when an error is
	// returned alongside); its programs and clocks carry the run's
	// measurements.
	Job *Job
	// Completed reports whether the program ran to completion.
	Completed bool
	// Restarts is the number of recovery legs actually launched.
	Restarts int
	// Events records each detected failure, in order.
	Events []RecoveryEvent
}

// RunWithRecovery is the fault-tolerance driver the paper's title
// promises: it launches prog under stack with the fault injector armed
// and periodic checkpointing on, waits for completion or a detected
// RankFailure, and on failure restarts from the latest complete image —
// under pol.RestartStack when set, which may name a different MPI
// implementation wherever the stack's ABI and checkpointer legs permit
// (MANA through the standard ABI). Invalid pairings — plain DMTCP or a
// native binding across implementations — are refused up front, before
// any fault fires. A failure arriving before the first complete image
// relaunches from scratch; every leg counts against the retry budget.
//
// The injector is shared across legs, so a fault consumed on one leg
// does not refire when the recovered job replays its trigger step.
func RunWithRecovery(stack Stack, prog string, inj *faults.Injector, pol RecoveryPolicy, opts ...LaunchOption) (*RecoveryResult, error) {
	if pol.ImageRoot == "" {
		return nil, fmt.Errorf("core: recovery requires an image root for periodic checkpoints")
	}
	if pol.Interval == 0 {
		pol.Interval = 1
	}
	if pol.MaxRestarts == 0 {
		pol.MaxRestarts = 3
	}
	rstack := stack
	if pol.RestartStack != nil {
		rstack = *pol.RestartStack
		if err := rstack.Validate(); err != nil {
			return nil, err
		}
		if rstack.Net.Size() != stack.Net.Size() {
			return nil, fmt.Errorf("core: recovery stack has %d ranks, launch stack %d",
				rstack.Net.Size(), stack.Net.Size())
		}
	}
	if stack.Ckpt == CkptNone {
		return nil, fmt.Errorf("core: recovery requires a checkpointing package in the stack")
	}
	if err := restartCompatErr(string(stack.Impl), string(stack.ABI), string(stack.Ckpt),
		stack.ABI != ABINative, rstack); err != nil {
		return nil, fmt.Errorf("core: invalid recovery pairing: %w", err)
	}

	common := []LaunchOption{WithFaults(inj), WithPeriodicCheckpoint(pol.ImageRoot, pol.Interval)}
	legOpts := append(append([]LaunchOption(nil), opts...), common...)
	job, err := Launch(stack, prog, legOpts...)
	if err != nil {
		return nil, err
	}
	res := &RecoveryResult{Job: job}
	for {
		err := WaitTimeout(job, pol.LegTimeout)
		res.Job = job
		if err == nil {
			res.Completed = true
			return res, nil
		}
		var rf *RankFailure
		if !errors.As(err, &rf) {
			// Not a detected rank failure (program bug, cancellation):
			// recovery cannot help.
			return res, err
		}
		ev := RecoveryEvent{Failure: rf, Detected: rf.Detected}
		if res.Restarts >= pol.MaxRestarts {
			res.Events = append(res.Events, ev)
			return res, fmt.Errorf("core: recovery budget exhausted after %d restarts: %w", res.Restarts, rf)
		}
		dir, meta, ok := dmtcp.LatestComplete(pol.ImageRoot, stack.Net.Size())
		if ok {
			ev.ImageDir = dir
			ev.ImageStep = meta.Step
			if img, ierr := dmtcp.ReadRankImage(dir, 0); ierr == nil {
				ev.ImageVirt = simnet.Time(img.Clock)
			}
			if ev.LostVirt = ev.Detected.Sub(ev.ImageVirt); ev.LostVirt < 0 {
				ev.LostVirt = 0
			}
			// legOpts, not common: caller options like WithTrace must
			// follow the job onto every leg (Restart ignores the
			// launch-only ones).
			job, err = Restart(dir, rstack, legOpts...)
		} else {
			// The failure beat the first complete checkpoint: all work is
			// lost, but the job is not — relaunch from scratch under the
			// recovery stack (the application binds to either leg; launch
			// parameters reapply via opts).
			ev.LostVirt = ev.Detected.Sub(0)
			job, err = Launch(rstack, prog, legOpts...)
		}
		// The recovery decision belongs to the FAILED leg's timeline: the
		// new leg's clocks rewind to the image.
		res.Job.TraceLeg().Driver(trace.CatCkpt, "recovery-restart", ev.Detected,
			trace.Arg{Key: "imageStep", Val: trace.Itoa(int(ev.ImageStep))},
			trace.Arg{Key: "lostVirtNs", Val: trace.Itoa(int(ev.LostVirt))})
		res.Events = append(res.Events, ev)
		if err != nil {
			return res, fmt.Errorf("core: recovery restart: %w", err)
		}
		res.Restarts++
	}
}

// WaitTimeout joins the job, cancelling it (and reaping its rank
// goroutines) when it exceeds d; d <= 0 waits unboundedly. A timed-out
// job reports a stable error wrapping ErrCancelled, so every driver's
// timeout cell carries identical text whichever rank tripped over the
// closing fabric first. An error that is NOT the cancellation resolved
// right at the bound and is surfaced as itself (a completed run is not a
// timeout). Shared by the recovery driver and the scenario engine.
func WaitTimeout(job *Job, d time.Duration) error {
	if d <= 0 {
		return job.Wait()
	}
	done := make(chan error, 1)
	go func() { done <- job.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		job.Cancel()
		if err := <-done; !errors.Is(err, ErrCancelled) {
			return err
		}
		return fmt.Errorf("core: job timed out after %v: %w", d, ErrCancelled)
	}
}
