package fabric

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
)

func TestProgressModeValidate(t *testing.T) {
	for _, m := range []ProgressMode{"", ProgressGoroutine, ProgressEvent} {
		if err := m.Validate(); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", m, err)
		}
	}
	if err := ProgressMode("threads").Validate(); err == nil {
		t.Error("Validate(\"threads\") = nil, want error")
	}
}

// eventWorld builds an event-mode single-node world (a scheduler bug in
// event mode shows up as a silent hang, never a crash — pair with join).
func eventWorld(t *testing.T, n int) *World {
	t.Helper()
	w, err := NewWorldMode(simnet.SingleNode(n), ProgressEvent)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

// join waits for wg with a timeout so scheduler deadlocks fail fast.
func join(t *testing.T, wg *sync.WaitGroup) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("event-mode test timed out (scheduler deadlock)")
	}
}

// TestEventModePingPong bounces a payload between two fibers many times:
// every hop is a park on an empty mailbox plus a wake from a push, so
// this exercises the token handoff, the pending bit (pushes that land
// while the receiver still runs) and FIFO dispatch under churn.
func TestEventModePingPong(t *testing.T) {
	w := eventWorld(t, 2)
	const hops = 200
	var wg sync.WaitGroup
	var last []byte
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		w.Spawn(r, func() {
			defer wg.Done()
			ep := w.Endpoint(r)
			if r == 0 {
				e := GetEnvelope()
				e.Dst, e.Tag, e.Payload = 1, 0, []byte{0}
				ep.Send(e)
			}
			for {
				e := ep.Recv()
				if e == nil {
					return
				}
				hop := e.Tag + 1
				if hop >= hops {
					last = append([]byte(nil), e.Payload...)
					w.Close() // unblocks the peer's Recv
					return
				}
				out := GetEnvelope()
				out.Dst = 1 - r
				out.Tag = hop
				out.Payload = append([]byte(nil), e.Payload...)
				out.Payload[0]++
				ep.Send(out)
			}
		})
	}
	join(t, &wg)
	if len(last) != 1 || last[0] != hops-1 {
		t.Fatalf("payload after %d hops = %v, want [%d]", hops, last, hops-1)
	}
}

// TestEventModeDeterministicDelivery runs the same many-to-one pattern
// twice and demands identical arrival order AND identical virtual
// timestamps: the event scheduler's FIFO run order makes whole runs
// bit-for-bit reproducible.
func TestEventModeDeterministicDelivery(t *testing.T) {
	run := func() string {
		w, err := NewWorldMode(simnet.SingleNode(8), ProgressEvent)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		var wg sync.WaitGroup
		var trace string
		for r := 0; r < 8; r++ {
			r := r
			wg.Add(1)
			w.Spawn(r, func() {
				defer wg.Done()
				ep := w.Endpoint(r)
				if r != 0 {
					for i := 0; i < 3; i++ {
						e := GetEnvelope()
						e.Dst = 0
						e.Tag = int32(i)
						e.Payload = []byte{byte(r)}
						ep.Send(e)
					}
					return
				}
				for i := 0; i < 21; i++ {
					e := ep.Recv()
					ep.AccountRecv(e)
					trace += fmt.Sprintf("%d/%d@%d ", e.Src, e.Tag, e.Arrive)
					PutEnvelope(e)
				}
			})
		}
		join(t, &wg)
		return trace
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged:\n  %s\nvs\n  %s", i+2, got, first)
		}
	}
}

// TestEventModeBlockingOutsideSpawnPanics: on an event-mode world a
// goroutine not started via Spawn cannot hold the token, so a blocking
// Recv from it must panic with a pointer at Spawn instead of corrupting
// the scheduler.
func TestEventModeBlockingOutsideSpawnPanics(t *testing.T) {
	w := eventWorld(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Recv outside Spawn did not panic on an event-mode world")
		}
	}()
	w.Endpoint(0).Recv()
}

// TestEventModeCloseWakesParked: fibers parked on empty mailboxes must
// all observe Close and exit — teardown uses wakeAll, not per-rank
// bookkeeping.
func TestEventModeCloseWakesParked(t *testing.T) {
	w := eventWorld(t, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		w.Spawn(r, func() {
			defer wg.Done()
			if e := w.Endpoint(r).Recv(); e != nil {
				t.Errorf("rank %d: Recv on closed world returned %+v", r, e)
			}
		})
	}
	time.Sleep(10 * time.Millisecond) // let fibers reach their park
	w.Close()
	join(t, &wg)
}

// TestEventModeGoexitReleasesToken: a fiber that exits abnormally
// (runtime.Goexit — which is what t.Fatal does) still runs the deferred
// scheduler exit, so the token moves on and the rest of the world keeps
// working instead of wedging.
func TestEventModeGoexitReleasesToken(t *testing.T) {
	w := eventWorld(t, 3)
	var wg sync.WaitGroup
	wg.Add(1)
	w.Spawn(0, func() {
		defer wg.Done()
		runtime.Goexit()
	})
	got := make(chan byte, 1)
	for r := 1; r < 3; r++ {
		r := r
		wg.Add(1)
		w.Spawn(r, func() {
			defer wg.Done()
			ep := w.Endpoint(r)
			if r == 1 {
				e := GetEnvelope()
				e.Dst, e.Payload = 2, []byte{42}
				ep.Send(e)
				return
			}
			e := ep.Recv()
			got <- e.Payload[0] //mpivet:allow parksafe -- capacity-1 channel with a single sender; the send never blocks
			PutEnvelope(e)
		})
	}
	join(t, &wg)
	if v := <-got; v != 42 {
		t.Fatalf("payload = %d, want 42", v)
	}
}

// TestEventModeSpawnTwicePanics: double-registering a rank is a harness
// bug; the scheduler refuses loudly.
func TestEventModeSpawnTwicePanics(t *testing.T) {
	w := eventWorld(t, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	w.Spawn(0, func() { wg.Done() })
	join(t, &wg)
	defer func() {
		if recover() == nil {
			t.Fatal("second Spawn of rank 0 did not panic")
		}
	}()
	w.Spawn(0, func() {})
}

// TestGoroutineModeSpawnIsPlainGo: Spawn on a default-mode world must
// not serialize anything — both ranks run concurrently and can block on
// each other without a token.
func TestGoroutineModeSpawnIsPlainGo(t *testing.T) {
	w, err := NewWorld(simnet.SingleNode(2))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Mode() != ProgressGoroutine {
		t.Fatalf("Mode() = %q, want %q", w.Mode(), ProgressGoroutine)
	}
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		w.Spawn(r, func() {
			defer wg.Done()
			ep := w.Endpoint(r)
			e := GetEnvelope()
			e.Dst = 1 - r
			e.Payload = []byte{byte(r)}
			ep.Send(e)
			in := ep.Recv()
			if in == nil || in.Payload[0] != byte(1-r) {
				t.Errorf("rank %d: bad echo %+v", r, in)
			}
			if in != nil {
				PutEnvelope(in)
			}
		})
	}
	join(t, &wg)
}
