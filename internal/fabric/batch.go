package fabric

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/simnet"
)

// Envelope batch codec: the wire frame for a burst of envelopes between
// two fabric domains. In-process worlds move *Envelope pointers and never
// serialize, but a future multi-process fabric (a matrixd worker farm, or
// replaying a captured trace) needs the burst as bytes — and the frame is
// the natural fuzz surface for the batching layer: every field that
// RecvBatch hands to a dispatcher round-trips through it.
//
// Frame layout (all integers varint, signed fields zigzag):
//
//	magic byte 0xEB, version byte, count,
//	then per envelope:
//	  src dst cid tag proto seq round hdr sent arrive payloadLen payload
//
// Decoding is strict: unknown version, short input, oversized counts and
// payload lengths past the buffer all fail loudly rather than truncating
// silently.

const (
	batchMagic   = 0xEB
	batchVersion = 1
	// batchMaxCount caps the declared envelope count so a corrupt header
	// cannot make the decoder pre-commit to absurd allocations.
	batchMaxCount = 1 << 22
)

// AppendBatch appends the encoded frame for envs to buf and returns it.
func AppendBatch(buf []byte, envs []*Envelope) []byte {
	buf = append(buf, batchMagic, batchVersion)
	buf = binary.AppendUvarint(buf, uint64(len(envs)))
	for _, e := range envs {
		buf = binary.AppendVarint(buf, int64(e.Src))
		buf = binary.AppendVarint(buf, int64(e.Dst))
		buf = binary.AppendUvarint(buf, uint64(e.CID))
		buf = binary.AppendVarint(buf, int64(e.Tag))
		buf = append(buf, byte(e.Proto))
		buf = binary.AppendUvarint(buf, e.Seq)
		buf = binary.AppendVarint(buf, int64(e.Round))
		buf = binary.AppendUvarint(buf, e.Hdr)
		buf = binary.AppendVarint(buf, int64(e.Sent))
		buf = binary.AppendVarint(buf, int64(e.Arrive))
		buf = binary.AppendUvarint(buf, uint64(len(e.Payload)))
		buf = append(buf, e.Payload...)
	}
	return buf
}

// DecodeBatch decodes one frame, returning the envelopes (pool-allocated;
// the caller owns them and may PutEnvelope after consumption) and the
// number of bytes consumed.
func DecodeBatch(buf []byte) ([]*Envelope, int, error) {
	if len(buf) < 2 {
		return nil, 0, fmt.Errorf("fabric: batch frame truncated (len %d)", len(buf))
	}
	if buf[0] != batchMagic {
		return nil, 0, fmt.Errorf("fabric: bad batch magic 0x%02x", buf[0])
	}
	if buf[1] != batchVersion {
		return nil, 0, fmt.Errorf("fabric: unsupported batch version %d", buf[1])
	}
	d := batchDecoder{buf: buf, off: 2}
	count := d.uvarint()
	if d.err != nil {
		return nil, 0, d.err
	}
	if count > batchMaxCount {
		return nil, 0, fmt.Errorf("fabric: batch count %d exceeds limit", count)
	}
	envs := make([]*Envelope, 0, min(int(count), 1024))
	for i := uint64(0); i < count; i++ {
		e := GetEnvelope()
		e.Src = d.intField("src")
		e.Dst = d.intField("dst")
		e.CID = d.uint32Field("cid")
		e.Tag = d.int32Field("tag")
		e.Proto = Proto(d.byteField("proto"))
		e.Seq = d.uvarint()
		e.Round = d.int32Field("round")
		e.Hdr = d.uvarint()
		e.Sent = simnet.Time(d.varint())
		e.Arrive = simnet.Time(d.varint())
		e.Payload = d.bytesField("payload")
		if d.err != nil {
			PutEnvelope(e)
			for _, prev := range envs {
				PutEnvelope(prev)
			}
			return nil, 0, fmt.Errorf("fabric: batch envelope %d: %w", i, d.err)
		}
		envs = append(envs, e)
	}
	return envs, d.off, nil
}

// batchDecoder is a cursor with sticky error state; field helpers
// become no-ops once an error is recorded.
type batchDecoder struct {
	buf []byte
	off int
	err error
}

func (d *batchDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *batchDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *batchDecoder) byteField(name string) byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.err = fmt.Errorf("truncated %s at offset %d", name, d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *batchDecoder) intField(name string) int {
	v := d.varint()
	if d.err == nil && (v > math.MaxInt32 || v < math.MinInt32) {
		d.err = fmt.Errorf("%s %d out of range", name, v)
		return 0
	}
	return int(v)
}

func (d *batchDecoder) int32Field(name string) int32 {
	v := d.varint()
	if d.err == nil && (v > math.MaxInt32 || v < math.MinInt32) {
		d.err = fmt.Errorf("%s %d out of range", name, v)
		return 0
	}
	return int32(v)
}

func (d *batchDecoder) uint32Field(name string) uint32 {
	v := d.uvarint()
	if d.err == nil && v > math.MaxUint32 {
		d.err = fmt.Errorf("%s %d out of range", name, v)
		return 0
	}
	return uint32(v)
}

func (d *batchDecoder) bytesField(name string) []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.err = fmt.Errorf("%s length %d exceeds remaining %d bytes", name, n, len(d.buf)-d.off)
		return nil
	}
	if n == 0 {
		return nil
	}
	p := make([]byte, n)
	copy(p, d.buf[d.off:])
	d.off += int(n)
	return p
}
