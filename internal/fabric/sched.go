package fabric

import (
	"fmt"
	"sync"
)

// ProgressMode selects how a world executes its ranks.
//
// The default, ProgressGoroutine, is one OS-scheduled goroutine per rank
// with blocking mailbox hops: faithful, fully parallel, and fine up to a
// few hundred ranks — but at thousands of ranks the per-message
// condition-variable wakeups, mutex contention and scheduler thrash make
// collective benches allocation- and wakeup-bound.
//
// ProgressEvent multiplexes every rank over a single execution token: an
// event-driven cooperative scheduler. Exactly one rank runs at a time;
// blocking on the fabric (an empty mailbox, an incomplete OOB exchange)
// parks the rank's fiber and hands the token to the next runnable one,
// and message delivery marks the destination runnable instead of waking
// an OS thread. Mailbox locks are never contended, wakeups are queue
// appends, and — because the run order is a deterministic FIFO — an
// event-mode run is bit-for-bit reproducible, virtual times included.
// This is what makes a 4096-rank allreduce feasible on a laptop.
//
// The two modes execute identical runtime semantics over identical wire
// protocols; the differential suite in internal/mpicore holds them to
// bit-identical results.
type ProgressMode string

// Progress modes.
const (
	// ProgressGoroutine is goroutine-per-rank (the default; "" means this).
	ProgressGoroutine ProgressMode = "goroutine"
	// ProgressEvent is the single-token event-driven scheduler.
	ProgressEvent ProgressMode = "event"
)

// Validate reports whether the mode is known. The empty string is the
// default (goroutine) and valid.
func (m ProgressMode) Validate() error {
	switch m {
	case "", ProgressGoroutine, ProgressEvent:
		return nil
	}
	return fmt.Errorf("fabric: unknown progress mode %q", m)
}

// event reports whether the mode selects the event scheduler.
func (m ProgressMode) event() bool { return m == ProgressEvent }

// fiberState is one rank fiber's scheduling state.
type fiberState uint8

const (
	fiberIdle     fiberState = iota // not spawned yet
	fiberRunnable                   // queued for the token
	fiberRunning                    // holds the token
	fiberBlocked                    // parked, waiting for a wake
	fiberDone                       // exited
)

// sched is the event-driven rank scheduler: a single execution token
// multiplexed over rank fibers. Fibers are real goroutines (Go stacks
// cannot be swapped by hand) but at most one is unparked at a time, so
// rank execution is serialized and deterministic: the runnable queue is
// FIFO, and every state transition is driven by an explicit event (a
// mailbox push, an exchange completion, a close).
//
// Lock ordering: data-structure locks (mailbox.mu, OOB.mu) may be held
// while calling wake/wakeAll — sched.mu is a leaf lock. park must be
// called WITHOUT any data lock held (the parked fiber would otherwise
// deadlock the successor it hands the token to); blocking sites
// therefore re-check their condition in a loop around park, and the
// pending bit makes the unlock→park window race-free: a wake that
// arrives while its target still runs is remembered and consumed by the
// next park, which returns immediately instead of sleeping.
type sched struct {
	mu      sync.Mutex
	state   []fiberState
	pending []bool          // wake arrived while fiber was running
	gates   []chan struct{} // per-fiber dispatch signal, cap 1
	runq    []int           // FIFO of runnable fibers
	running int             // fiber holding the token, or -1
}

func newSched(n int) *sched {
	s := &sched{
		state:   make([]fiberState, n),
		pending: make([]bool, n),
		gates:   make([]chan struct{}, n),
		running: -1,
	}
	for i := range s.gates {
		s.gates[i] = make(chan struct{}, 1)
	}
	return s
}

// spawn registers rank's fiber and starts its goroutine. The goroutine
// does not run fn until the scheduler dispatches it, and the token is
// released when fn returns — or panics: the deferred exit keeps one
// crashing fiber from wedging the whole world.
func (s *sched) spawn(rank int, fn func()) {
	s.mu.Lock()
	if s.state[rank] != fiberIdle {
		s.mu.Unlock()
		panic(fmt.Sprintf("fabric: rank %d spawned twice on an event-mode world", rank))
	}
	s.state[rank] = fiberRunnable
	s.runq = append(s.runq, rank)
	s.dispatchLocked()
	s.mu.Unlock()
	go func() {
		<-s.gates[rank]
		defer s.exit(rank)
		fn()
	}()
}

// exit releases the token when a fiber returns.
func (s *sched) exit(rank int) {
	s.mu.Lock()
	s.state[rank] = fiberDone
	s.pending[rank] = false
	if s.running == rank {
		s.running = -1
	}
	s.dispatchLocked()
	s.mu.Unlock()
}

// park releases the token and blocks until the fiber is woken AND
// re-dispatched. A wake that arrived while the fiber was still running
// (the pending bit) makes park return immediately: the caller's
// condition may already hold, and the loop around park re-checks it.
// Only the fiber currently holding the token may park.
func (s *sched) park(rank int) {
	s.mu.Lock()
	if s.state[rank] != fiberRunning {
		s.mu.Unlock()
		panic(fmt.Sprintf("fabric: park by rank %d which does not hold the token (state %d); "+
			"event-mode ranks must be started with World.Spawn", rank, s.state[rank]))
	}
	if s.pending[rank] {
		s.pending[rank] = false
		s.mu.Unlock()
		return
	}
	s.state[rank] = fiberBlocked
	s.running = -1
	s.dispatchLocked()
	s.mu.Unlock()
	<-s.gates[rank]
}

// wake marks rank runnable after an event (mailbox push, exchange
// completion, close). Safe to call from fibers and external goroutines
// alike, with data locks held. Waking a running fiber sets its pending
// bit; waking a runnable, done or unspawned fiber is a no-op (an
// unspawned fiber finds the event's effect before its first park).
func (s *sched) wake(rank int) {
	s.mu.Lock()
	switch s.state[rank] {
	case fiberBlocked:
		s.state[rank] = fiberRunnable
		s.runq = append(s.runq, rank)
		s.dispatchLocked()
	case fiberRunning:
		s.pending[rank] = true
	}
	s.mu.Unlock()
}

// wakeAll wakes every blocked fiber — the broadcast analog, used by
// barrier-style completions (OOB exchange) and world teardown.
func (s *sched) wakeAll() {
	s.mu.Lock()
	for r, st := range s.state {
		switch st {
		case fiberBlocked:
			s.state[r] = fiberRunnable
			s.runq = append(s.runq, r)
		case fiberRunning:
			s.pending[r] = true
		}
	}
	s.dispatchLocked()
	s.mu.Unlock()
}

// dispatchLocked hands the token to the next runnable fiber if it is
// free. Called with s.mu held; the gate send cannot block (cap 1, and
// the state machine dispatches a fiber at most once per park).
func (s *sched) dispatchLocked() {
	if s.running != -1 || len(s.runq) == 0 {
		return
	}
	r := s.runq[0]
	copy(s.runq, s.runq[1:])
	s.runq = s.runq[:len(s.runq)-1]
	s.state[r] = fiberRunning
	s.running = r
	s.gates[r] <- struct{}{} //mpivet:allow parksafe -- cap-1 gate owned by the token state machine: a fiber is dispatched at most once per park, so the send never blocks
}

// Spawn starts fn as rank r's execution context: `go fn()` on a
// goroutine-mode world, a scheduler fiber on an event-mode world. Every
// goroutine that drives a rank's endpoint on an event-mode world MUST be
// started through Spawn — the blocking fabric primitives park the
// calling fiber, and an unregistered goroutine cannot park.
func (w *World) Spawn(r int, fn func()) {
	if w.sched == nil {
		go fn()
		return
	}
	w.sched.spawn(r, fn)
}

// Mode returns the world's progress mode.
func (w *World) Mode() ProgressMode {
	if w.sched != nil {
		return ProgressEvent
	}
	return ProgressGoroutine
}
