package fabric

import (
	"bytes"
	"testing"
)

// sampleBatch covers the frame's edge values: negative rank fields
// (wildcards are negative in every test vocabulary), zero and max-uint32
// cid, empty and non-empty payloads, and large timestamps.
func sampleBatch() []*Envelope {
	return []*Envelope{
		{Src: 0, Dst: 1, CID: 0, Tag: 0, Proto: ProtoEager, Payload: []byte("hi")},
		{Src: -7, Dst: 4095, CID: 1<<32 - 1, Tag: -8, Proto: ProtoRTS,
			Seq: 1<<63 - 1, Round: -1, Hdr: 9999, Sent: 123456, Arrive: 789012},
		{Src: 3, Dst: 3, CID: 42, Tag: 1 << 20, Proto: ProtoCtrl,
			Payload: bytes.Repeat([]byte{0xAB}, 300)},
		{Src: 1, Dst: 2, CID: 7, Proto: ProtoData, Seq: 17,
			Sent: -1, Arrive: -1}, // negative times zigzag-encode fine
	}
}

func envEqual(a, b *Envelope) bool {
	return a.Src == b.Src && a.Dst == b.Dst && a.CID == b.CID && a.Tag == b.Tag &&
		a.Proto == b.Proto && a.Seq == b.Seq && a.Round == b.Round && a.Hdr == b.Hdr &&
		a.Sent == b.Sent && a.Arrive == b.Arrive && bytes.Equal(a.Payload, b.Payload)
}

func TestBatchRoundTrip(t *testing.T) {
	envs := sampleBatch()
	frame := AppendBatch(nil, envs)
	got, n, err := DecodeBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Fatalf("consumed %d of %d bytes", n, len(frame))
	}
	if len(got) != len(envs) {
		t.Fatalf("decoded %d envelopes, want %d", len(got), len(envs))
	}
	for i := range envs {
		if !envEqual(envs[i], got[i]) {
			t.Errorf("envelope %d: got %+v want %+v", i, got[i], envs[i])
		}
		PutEnvelope(got[i])
	}
}

func TestBatchEmptyFrame(t *testing.T) {
	frame := AppendBatch(nil, nil)
	got, n, err := DecodeBatch(frame)
	if err != nil || len(got) != 0 || n != len(frame) {
		t.Fatalf("empty frame: envs=%v n=%d err=%v", got, n, err)
	}
}

// TestBatchFrameConcatenation: frames are self-delimiting — the consumed
// count lets a stream of frames decode back-to-back.
func TestBatchFrameConcatenation(t *testing.T) {
	a := sampleBatch()[:2]
	b := sampleBatch()[2:]
	stream := AppendBatch(AppendBatch(nil, a), b)
	gotA, n, err := DecodeBatch(stream)
	if err != nil || len(gotA) != 2 {
		t.Fatalf("first frame: %d envs, err=%v", len(gotA), err)
	}
	gotB, _, err := DecodeBatch(stream[n:])
	if err != nil || len(gotB) != 2 {
		t.Fatalf("second frame: %d envs, err=%v", len(gotB), err)
	}
	if !envEqual(gotB[0], b[0]) || !envEqual(gotB[1], b[1]) {
		t.Error("second frame contents diverged")
	}
}

func TestBatchDecodeRejects(t *testing.T) {
	good := AppendBatch(nil, sampleBatch())
	cases := map[string][]byte{
		"empty":        {},
		"magic only":   {batchMagic},
		"bad magic":    append([]byte{0x00}, good[1:]...),
		"bad version":  append([]byte{batchMagic, 99}, good[2:]...),
		"truncated":    good[:len(good)/2],
		"payload lies": func() []byte { b := AppendBatch(nil, []*Envelope{{Payload: []byte("xy")}}); return b[:len(b)-1] }(),
		"huge count": func() []byte {
			b := []byte{batchMagic, batchVersion}
			return append(b, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // uvarint > batchMaxCount
		}(),
	}
	for name, buf := range cases {
		if envs, _, err := DecodeBatch(buf); err == nil {
			t.Errorf("%s: decoded %d envelopes, want error", name, len(envs))
		}
	}
}

// FuzzEnvelopeBatch drives the codec both ways. Valid-frame inputs must
// round-trip losslessly; arbitrary inputs must either decode cleanly or
// fail with an error — never panic, never over-read, never return an
// envelope count the input couldn't have paid for (the anti-amplification
// property that makes the frame safe to decode from untrusted peers).
func FuzzEnvelopeBatch(f *testing.F) {
	f.Add(AppendBatch(nil, sampleBatch()))
	f.Add(AppendBatch(nil, nil))
	f.Add(AppendBatch(nil, []*Envelope{{Src: 1, Dst: 0, Proto: ProtoCTS, Seq: 3}}))
	f.Add([]byte{batchMagic, batchVersion, 0x03, 0x00})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		envs, n, err := DecodeBatch(data)
		if err != nil {
			if envs != nil {
				t.Fatal("error return leaked envelopes")
			}
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d > input %d", n, len(data))
		}
		// Each decoded envelope costs >= 11 frame bytes (10 single-byte
		// varints + proto byte + payload length byte is 12, minus sharing
		// none — be conservative).
		if len(envs) > 0 && n/len(envs) < 11 {
			t.Fatalf("amplification: %d envelopes from %d consumed bytes", len(envs), n)
		}
		// Re-encode / re-decode: decoding is a projection — the decoded
		// form must be a fixed point.
		frame := AppendBatch(nil, envs)
		again, m, err := DecodeBatch(frame)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if m != len(frame) || len(again) != len(envs) {
			t.Fatalf("re-decode shape: %d envs/%d bytes, want %d/%d", len(again), m, len(envs), len(frame))
		}
		for i := range envs {
			if !envEqual(envs[i], again[i]) {
				t.Fatalf("envelope %d not a fixed point: %+v vs %+v", i, envs[i], again[i])
			}
			PutEnvelope(envs[i])
			PutEnvelope(again[i])
		}
	})
}
