package fabric

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
)

func newTestWorld(t testing.TB, n int) *World {
	t.Helper()
	w, err := NewWorld(simnet.SingleNode(n))
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestWorldShape(t *testing.T) {
	w := newTestWorld(t, 4)
	if w.Size() != 4 {
		t.Fatalf("Size = %d, want 4", w.Size())
	}
	for r := 0; r < 4; r++ {
		if got := w.Endpoint(r).Rank(); got != r {
			t.Fatalf("Endpoint(%d).Rank() = %d", r, got)
		}
	}
}

func TestEndpointOutOfRangePanics(t *testing.T) {
	w := newTestWorld(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Endpoint(5) did not panic")
		}
	}()
	w.Endpoint(5)
}

func TestSendRecvPayloadCopied(t *testing.T) {
	w := newTestWorld(t, 2)
	buf := []byte{1, 2, 3}
	done := make(chan *Envelope)
	go func() { done <- w.Endpoint(1).Recv() }()
	w.Endpoint(0).Send(&Envelope{Dst: 1, Tag: 9, Payload: buf})
	buf[0] = 99 // sender mutates its buffer after send
	e := <-done
	if e.Src != 0 || e.Tag != 9 {
		t.Fatalf("envelope src/tag = %d/%d, want 0/9", e.Src, e.Tag)
	}
	if !bytes.Equal(e.Payload, []byte{1, 2, 3}) {
		t.Fatalf("payload not copied at send: %v", e.Payload)
	}
}

func TestRecvAdvancesClock(t *testing.T) {
	w := newTestWorld(t, 2)
	go w.Endpoint(0).Send(&Envelope{Dst: 1, Payload: make([]byte, 4096)})
	e := w.Endpoint(1).Recv()
	if e == nil {
		t.Fatal("Recv returned nil")
	}
	now := w.Endpoint(1).Clock().Now()
	if now < e.Arrive {
		t.Fatalf("receiver clock %v earlier than arrival %v", now, e.Arrive)
	}
	if e.Arrive <= e.Sent {
		t.Fatalf("arrival %v not after send %v", e.Arrive, e.Sent)
	}
}

func TestTryRecv(t *testing.T) {
	w := newTestWorld(t, 2)
	if _, ok := w.Endpoint(1).TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox returned ok")
	}
	w.Endpoint(0).Send(&Envelope{Dst: 1})
	// Delivery is synchronous (push happens inside Send), so it is queued.
	if _, ok := w.Endpoint(1).TryRecv(); !ok {
		t.Fatal("TryRecv after Send returned !ok")
	}
}

func TestRecvAfterCloseReturnsNil(t *testing.T) {
	w := newTestWorld(t, 2)
	got := make(chan *Envelope)
	go func() { got <- w.Endpoint(0).Recv() }()
	w.Close()
	select {
	case e := <-got:
		if e != nil {
			t.Fatalf("Recv after close = %+v, want nil", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not return after Close")
	}
}

func TestMailboxFIFO(t *testing.T) {
	w := newTestWorld(t, 2)
	for i := 0; i < 10; i++ {
		w.Endpoint(0).Send(&Envelope{Dst: 1, Tag: int32(i)})
	}
	for i := 0; i < 10; i++ {
		e := w.Endpoint(1).Recv()
		if e.Tag != int32(i) {
			t.Fatalf("message %d has tag %d; mailbox not FIFO", i, e.Tag)
		}
	}
}

func TestPending(t *testing.T) {
	w := newTestWorld(t, 2)
	if got := w.Endpoint(1).Pending(); got != 0 {
		t.Fatalf("Pending = %d, want 0", got)
	}
	w.Endpoint(0).Send(&Envelope{Dst: 1})
	w.Endpoint(0).Send(&Envelope{Dst: 1})
	if got := w.Endpoint(1).Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
}

func TestOOBSendRecv(t *testing.T) {
	w := newTestWorld(t, 3)
	w.OOB().Send(0, 2, "ckpt", "hello")
	w.OOB().Send(1, 2, "other", 42)
	// Tagged receive skips non-matching messages.
	src, v, ok := w.OOB().Recv(2, "other")
	if !ok || src != 1 || v.(int) != 42 {
		t.Fatalf("Recv(other) = %d %v %v", src, v, ok)
	}
	src, v, ok = w.OOB().Recv(2, "ckpt")
	if !ok || src != 0 || v.(string) != "hello" {
		t.Fatalf("Recv(ckpt) = %d %v %v", src, v, ok)
	}
}

func TestOOBExchange(t *testing.T) {
	const n = 8
	w := newTestWorld(t, n)
	var wg sync.WaitGroup
	results := make([][][]byte, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r] = w.OOB().Exchange(r, []byte(fmt.Sprintf("rank%d", r)))
		}(r)
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		if len(results[r]) != n {
			t.Fatalf("rank %d got %d slots", r, len(results[r]))
		}
		for s := 0; s < n; s++ {
			want := fmt.Sprintf("rank%d", s)
			if string(results[r][s]) != want {
				t.Fatalf("rank %d slot %d = %q, want %q", r, s, results[r][s], want)
			}
		}
	}
}

// Exchange must be reusable across generations without cross-talk, even when
// some ranks race ahead into the next generation.
func TestOOBExchangeGenerations(t *testing.T) {
	const n, rounds = 6, 25
	w := newTestWorld(t, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for g := 0; g < rounds; g++ {
				out := w.OOB().Exchange(r, []byte{byte(g), byte(r)})
				for s, v := range out {
					if v[0] != byte(g) || v[1] != byte(s) {
						errs <- fmt.Errorf("rank %d gen %d slot %d: got %v", r, g, s, v)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestOOBExchangeClosedWorld(t *testing.T) {
	w := newTestWorld(t, 2)
	got := make(chan [][]byte)
	go func() { got <- w.OOB().Exchange(0, []byte("x")) }()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case out := <-got:
		if out != nil {
			t.Fatalf("Exchange on closed world = %v, want nil", out)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Exchange did not return after Close")
	}
}

func TestInterNodeArrivalLaterThanIntra(t *testing.T) {
	cfg := simnet.Discovery10GbE()
	cfg.JitterFrac = 0
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Endpoint(0).Send(&Envelope{Dst: 1, Payload: make([]byte, 64)})  // same node
	w.Endpoint(0).Send(&Envelope{Dst: 12, Payload: make([]byte, 64)}) // other node
	intra := w.Endpoint(1).Recv()
	inter := w.Endpoint(12).Recv()
	if inter.Arrive.Sub(inter.Sent) <= intra.Arrive.Sub(intra.Sent) {
		t.Fatalf("inter-node flight %v not slower than intra-node %v",
			inter.Arrive.Sub(inter.Sent), intra.Arrive.Sub(intra.Sent))
	}
}

// Kill models fail-stop endpoint death: the victim's queued mail drops,
// later sends to it vanish on the wire (the sender still pays its
// overhead), Alive flips, and the rest of the world keeps working.
func TestKillIsFailStop(t *testing.T) {
	w, err := NewWorld(simnet.SingleNode(3))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Endpoint(0).Send(&Envelope{Dst: 1, Payload: []byte("x")})
	w.Kill(1)
	if w.Alive(1) || !w.Alive(0) || !w.Alive(2) {
		t.Fatalf("liveness after Kill(1): %v %v %v", w.Alive(0), w.Alive(1), w.Alive(2))
	}
	if w.Alive(-1) || w.Alive(99) {
		t.Fatal("out-of-range ranks reported alive")
	}
	// The dead endpoint's mailbox is closed and drained.
	if e := w.Endpoint(1).Recv(); e != nil {
		t.Fatalf("dead endpoint received %+v", e)
	}
	// A send to the dead rank is dropped, but the sender's clock still
	// advances by the send overhead.
	before := w.Endpoint(0).Clock().Now()
	w.Endpoint(0).Send(&Envelope{Dst: 1, Payload: []byte("y")})
	if w.Endpoint(0).Clock().Now() <= before {
		t.Fatal("sender paid no overhead for a send to a dead rank")
	}
	if w.Endpoint(1).Pending() != 0 {
		t.Fatal("send to a dead rank was queued")
	}
	// Survivors still communicate.
	w.Endpoint(0).Send(&Envelope{Dst: 2, Payload: []byte("z")})
	if e := w.Endpoint(2).Recv(); e == nil || string(e.Payload) != "z" {
		t.Fatalf("survivor traffic broken: %+v", e)
	}
	// Kill is idempotent.
	w.Kill(1, 1)
}

func BenchmarkSendRecv(b *testing.B) {
	w, err := NewWorld(simnet.SingleNode(2))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Endpoint(0).Send(&Envelope{Dst: 1, Payload: payload})
		w.Endpoint(1).Recv()
	}
}
