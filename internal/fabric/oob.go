package fabric

import (
	"fmt"
	"sync"
)

// OOB is the out-of-band control plane: the analog of the TCP sockets that
// DMTCP's coordinator and MANA's drain protocol use alongside the MPI
// fabric. It provides per-rank typed message queues and a reusable
// all-to-all exchange barrier ("phaser") for counter exchange.
//
// OOB traffic is control-plane traffic; it does not consume virtual time.
// This mirrors the paper's setting, where checkpoint coordination happens on
// a side channel whose cost is not part of the measured MPI latencies.
type OOB struct {
	boxes []*mailboxAny
	sched *sched // nil on goroutine-mode worlds

	mu        sync.Mutex
	cond      *sync.Cond
	gen       uint64
	slots     [][]byte
	seen      int
	published map[uint64]*pubGen
	done      bool
}

// pubGen is a completed exchange generation awaiting pickup by its waiters.
type pubGen struct {
	data    [][]byte
	readers int
}

type anyMsg struct {
	src  int
	tag  string
	data any
}

type mailboxAny struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []anyMsg
	closed bool
	sched  *sched // nil on goroutine-mode worlds
	owner  int
}

func newMailboxAny(s *sched, owner int) *mailboxAny {
	m := &mailboxAny{sched: s, owner: owner}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailboxAny) push(v anyMsg) {
	m.mu.Lock()
	m.queue = append(m.queue, v)
	m.mu.Unlock()
	if m.sched != nil {
		m.sched.wake(m.owner)
	} else {
		m.cond.Broadcast()
	}
}

// popTag blocks until a message with the given tag is available and removes
// it, preserving the order of other messages. Returns ok=false if closed.
func (m *mailboxAny) popTag(tag string) (anyMsg, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, v := range m.queue {
			if v.tag == tag {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return v, true
			}
		}
		if m.closed {
			return anyMsg{}, false
		}
		if m.sched != nil {
			// Park outside the box lock; the pending bit covers the gap.
			m.mu.Unlock()
			m.sched.park(m.owner)
			m.mu.Lock()
		} else {
			m.cond.Wait()
		}
	}
}

func (m *mailboxAny) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	if m.sched != nil {
		m.sched.wake(m.owner)
	} else {
		m.cond.Broadcast()
	}
}

func newOOB(n int, s *sched) *OOB {
	o := &OOB{
		boxes:     make([]*mailboxAny, n),
		slots:     make([][]byte, n),
		published: make(map[uint64]*pubGen),
		sched:     s,
	}
	for i := range o.boxes {
		o.boxes[i] = newMailboxAny(s, i)
	}
	o.cond = sync.NewCond(&o.mu)
	return o
}

func (o *OOB) close() {
	o.mu.Lock()
	o.done = true
	o.mu.Unlock()
	o.cond.Broadcast()
	if o.sched != nil {
		o.sched.wakeAll()
	}
	for _, b := range o.boxes {
		b.close()
	}
}

// Send delivers an arbitrary value to rank dst under the given tag.
func (o *OOB) Send(src, dst int, tag string, v any) {
	if dst < 0 || dst >= len(o.boxes) {
		panic(fmt.Sprintf("fabric: oob send to rank %d out of range", dst))
	}
	o.boxes[dst].push(anyMsg{src: src, tag: tag, data: v})
}

// Recv blocks until a message with the given tag arrives for rank r.
// It returns the source rank and value; ok=false means the world closed.
func (o *OOB) Recv(r int, tag string) (src int, v any, ok bool) {
	m, ok := o.boxes[r].popTag(tag)
	if !ok {
		return 0, nil, false
	}
	return m.src, m.data, true
}

// Exchange is an all-to-all barrier: every rank deposits a byte slice and
// blocks until all n ranks have deposited, then receives a copy of every
// deposit indexed by rank. It is reusable: the completing rank publishes a
// per-generation snapshot so late wakers never observe deposits from the
// next generation. Returns nil if the world is closed while waiting.
func (o *OOB) Exchange(rank int, data []byte) [][]byte {
	o.mu.Lock()
	defer o.mu.Unlock()
	gen := o.gen
	o.slots[rank] = data
	o.seen++
	if o.seen == len(o.slots) {
		snap := cloneSlots(o.slots)
		if len(o.slots) > 1 {
			o.published[gen] = &pubGen{data: snap, readers: len(o.slots) - 1}
		}
		o.gen++
		o.seen = 0
		o.cond.Broadcast()
		if o.sched != nil {
			o.sched.wakeAll()
		}
		return cloneSlots(snap)
	}
	for o.published[gen] == nil && !o.done {
		if o.sched != nil {
			// Park outside o.mu so the completing fiber can take it; a
			// broadcast landing in the unlock→park window is latched by
			// the scheduler's pending bit and park returns at once.
			o.mu.Unlock()
			o.sched.park(rank)
			o.mu.Lock()
		} else {
			o.cond.Wait() //mpivet:allow parksafe -- goroutine-mode branch (o.sched == nil); the event-mode path parks via the scheduler above
		}
	}
	// A published generation outranks closure: if the last depositor
	// completed the exchange and only then closed the world (a fault
	// firing right after a checkpoint barrier does exactly this), the
	// late wakers' data exists and they must receive it — returning nil
	// here would tear a barrier that did, in fact, complete, stranding a
	// finished checkpoint with half its images unwritten.
	pg := o.published[gen]
	if pg == nil {
		return nil
	}
	out := cloneSlots(pg.data)
	pg.readers--
	if pg.readers == 0 {
		delete(o.published, gen)
	}
	return out
}

func cloneSlots(slots [][]byte) [][]byte {
	out := make([][]byte, len(slots))
	for i, s := range slots {
		if s == nil {
			continue
		}
		c := make([]byte, len(s))
		copy(c, s)
		out[i] = c
	}
	return out
}
