// Package fabric is the physical substrate shared by every simulated MPI
// implementation: a World of rank endpoints connected by the simnet cost
// model, plus an out-of-band control plane used by launchers, the
// checkpoint coordinator, and MANA's drain protocol.
//
// In the paper's terms, fabric is the testbed hardware underneath the
// three-legged stool (Section 5.1's 4-node 10 GbE Discovery partition):
// every stack combination the evaluation compares runs over this same
// substrate, which is what makes the overheads of Figures 2-6
// attributable to the software layers alone.
//
// fabric deliberately knows nothing about MPI semantics. It moves opaque
// envelopes between endpoints and stamps virtual arrival times; message
// matching, protocols (eager/rendezvous) and collectives belong to the MPI
// implementations built on top (internal/mpich, internal/openmpi).
package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/ulfm"
)

// Proto identifies the wire protocol step an envelope belongs to. The two
// MPI implementations use these differently (different eager thresholds and
// rendezvous flows), but the vocabulary is shared by the wire.
type Proto uint8

// Wire protocol steps.
const (
	ProtoEager Proto = iota // payload travels with the envelope
	ProtoRTS                // rendezvous request-to-send (header only)
	ProtoCTS                // rendezvous clear-to-send
	ProtoData               // rendezvous payload
	ProtoColl               // internal collective traffic
	ProtoCtrl               // implementation-internal control
)

// protoNames are the trace-event labels for the wire protocol steps.
var protoNames = [...]string{"eager", "rts", "cts", "data", "coll", "ctrl"}

// String names the protocol step (trace args, diagnostics).
func (p Proto) String() string {
	if int(p) < len(protoNames) {
		return protoNames[p]
	}
	return "proto" + trace.Itoa(int(p))
}

// Envelope is one message on the wire. Payload is owned by the receiver
// after delivery; senders must not retain it. Hot-path senders obtain
// envelopes from GetEnvelope and receivers return fully-consumed ones
// with PutEnvelope; an envelope handed to Send/SendOwned belongs to the
// fabric and must not be reused by the sender.
type Envelope struct {
	Src, Dst int
	CID      uint32 // communicator context id
	Tag      int32
	Proto    Proto
	Seq      uint64 // rendezvous sequence number, assigned by sender
	Round    int32  // collective round discriminator
	Hdr      uint64 // protocol header word (e.g. RTS payload length)
	Payload  []byte

	Sent   simnet.Time // sender's clock at send
	Arrive simnet.Time // computed by the network model
}

// envPool recycles Envelope structs across the send/dispatch hot path.
// At 4096 ranks a single allreduce creates hundreds of thousands of
// envelopes; pooling them (and their one-per-message header allocations)
// is a large share of the event mode's speedup.
var envPool = sync.Pool{New: func() any { return new(Envelope) }}

// GetEnvelope returns a zeroed envelope from the pool.
func GetEnvelope() *Envelope { return envPool.Get().(*Envelope) }

// PutEnvelope recycles an envelope the caller has fully consumed: no
// field — Payload included — may be referenced after the call. Receivers
// that retain an envelope's payload (unexpected-queue buffering) must
// not recycle it until the payload is consumed too.
func PutEnvelope(e *Envelope) {
	*e = Envelope{}
	envPool.Put(e)
}

// mailbox is an unbounded FIFO of envelopes with blocking receive. On a
// goroutine-mode world blocking uses a condition variable; on an
// event-mode world the owning fiber parks in the scheduler instead, and
// a push marks it runnable.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Envelope
	closed bool
	sched  *sched // nil on goroutine-mode worlds
	owner  int    // owning rank, for sched wakes

	// tr and clk instrument event-mode park/wake (trace.CatSched).
	// Written only before the world starts (SetTrace); park events are
	// emitted by the parking fiber itself, preserving the track's
	// single-writer discipline.
	tr  *trace.Track
	clk *simnet.Clock
}

func newMailbox(s *sched, owner int) *mailbox {
	m := &mailbox{sched: s, owner: owner}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(e *Envelope) {
	m.mu.Lock()
	m.queue = append(m.queue, e)
	m.mu.Unlock()
	if m.sched != nil {
		m.sched.wake(m.owner)
	} else {
		m.cond.Signal()
	}
}

// pop blocks until an envelope is available or the mailbox is closed.
// It returns nil once closed and drained.
func (m *mailbox) pop() *Envelope {
	m.mu.Lock()
	for len(m.queue) == 0 && !m.closed {
		if m.sched != nil {
			// park must not hold m.mu (the successor fiber may need it);
			// the scheduler's pending bit closes the unlock→park window.
			m.mu.Unlock()
			if tr := m.tr; tr != nil {
				tr.Instant(trace.CatSched, "park", m.clk.Now())
			}
			m.sched.park(m.owner)
			if tr := m.tr; tr != nil {
				tr.Instant(trace.CatSched, "wake", m.clk.Now())
			}
			m.mu.Lock()
		} else {
			m.cond.Wait() //mpivet:allow parksafe -- goroutine-mode branch (m.sched == nil); the event-mode path parks via the scheduler above
		}
	}
	var e *Envelope
	if len(m.queue) > 0 {
		e = m.queue[0]
		m.queue = m.queue[1:]
	}
	m.mu.Unlock()
	return e
}

// tryPop returns the next envelope without blocking.
func (m *mailbox) tryPop() (*Envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 {
		return nil, false
	}
	e := m.queue[0]
	m.queue = m.queue[1:]
	return e, true
}

// popBatch blocks like pop but drains the ENTIRE queue in one lock
// acquisition, appending to buf in arrival order. It returns the grown
// buf, or buf unchanged once the mailbox is closed and drained. Batching
// replaces per-message lock/wakeup hops with one hop per burst — the
// receive-side half of the hot-path refactor.
func (m *mailbox) popBatch(buf []*Envelope) []*Envelope {
	m.mu.Lock()
	for len(m.queue) == 0 && !m.closed {
		if m.sched != nil {
			m.mu.Unlock()
			if tr := m.tr; tr != nil {
				tr.Instant(trace.CatSched, "park", m.clk.Now())
			}
			m.sched.park(m.owner)
			if tr := m.tr; tr != nil {
				tr.Instant(trace.CatSched, "wake", m.clk.Now())
			}
			m.mu.Lock()
		} else {
			m.cond.Wait() //mpivet:allow parksafe -- goroutine-mode branch (m.sched == nil); the event-mode path parks via the scheduler above
		}
	}
	buf = append(buf, m.queue...)
	clearEnvSlice(m.queue)
	m.queue = m.queue[:0]
	m.mu.Unlock()
	return buf
}

// tryPopBatch drains the queue without blocking.
func (m *mailbox) tryPopBatch(buf []*Envelope) []*Envelope {
	m.mu.Lock()
	buf = append(buf, m.queue...)
	clearEnvSlice(m.queue)
	m.queue = m.queue[:0]
	m.mu.Unlock()
	return buf
}

// clearEnvSlice nils out a drained queue so the retained backing array
// does not pin envelopes (they are pooled and must be collectible by
// their next owner alone).
func clearEnvSlice(q []*Envelope) {
	for i := range q {
		q[i] = nil
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	if m.sched != nil {
		m.sched.wake(m.owner)
	} else {
		m.cond.Broadcast()
	}
}

// purge drops queued envelopes (fail-stop death: a dead host's inbound
// queue is gone, not readable posthumously; contrast close, which lets
// a graceful shutdown drain).
func (m *mailbox) purge() {
	m.mu.Lock()
	m.queue = nil
	m.mu.Unlock()
}

func (m *mailbox) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// World is one simulated cluster run: n rank endpoints over a shared
// network, plus the out-of-band plane.
type World struct {
	cfg     simnet.Config
	net     *simnet.Network
	eps     []*Endpoint
	dead    []atomic.Bool // per-rank fail-stop flag (see Kill)
	oob     *OOB
	sched   *sched     // non-nil iff the world runs in ProgressEvent mode
	leg     *trace.Leg // non-nil iff the world is traced (see SetTrace)
	logical int        // logical rank count on a replicated world (0 = unreplicated)
	once    sync.Once
}

// NewWorld builds a goroutine-mode world for cfg.Size() ranks.
func NewWorld(cfg simnet.Config) (*World, error) {
	return NewWorldMode(cfg, ProgressGoroutine)
}

// NewWorldMode builds a world running under the given progress mode. On
// an event-mode world every rank-driving goroutine must be started via
// Spawn; everything else — Send/Recv, OOB, Kill/NotifyFailure, Close —
// keeps its exact goroutine-mode semantics.
func NewWorldMode(cfg simnet.Config, mode ProgressMode) (*World, error) {
	if err := mode.Validate(); err != nil {
		return nil, err
	}
	net, err := simnet.NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.Size()
	var s *sched
	if mode.event() {
		s = newSched(n)
	}
	w := &World{cfg: cfg, net: net, oob: newOOB(n, s), dead: make([]atomic.Bool, n), sched: s}
	w.eps = make([]*Endpoint, n)
	for i := range w.eps {
		w.eps[i] = &Endpoint{world: w, rank: i, in: newMailbox(s, i)}
	}
	return w, nil
}

// NewReplicatedWorld builds a world for cfg.Size() LOGICAL ranks, each
// backed by a primary + shadow pair of physical endpoints — the
// FTHP-MPI-style active-replication substrate. cfg describes the
// logical cluster; the world doubles the node count so every shadow
// lives on a different node than its primary (a node crash never takes
// both replicas of a pair), giving Size() == 2×cfg.Size() physical
// endpoints. Logical rank r is backed by physical primary r and
// physical shadow r+n; the mapping is fixed for the world's lifetime —
// promotion after a primary death is pure bookkeeping in the layers
// above, never a renumbering here.
//
// The fabric stays replication-agnostic on the data path: endpoints
// send and receive by physical rank exactly as on any other world, and
// the duplicate-send / receive-dedup protocol belongs to the MPI
// runtime built on top (internal/mpicore). The world only records the
// logical shape so that runtime can recover it.
func NewReplicatedWorld(cfg simnet.Config, mode ProgressMode) (*World, error) {
	phys := cfg
	phys.Nodes *= 2
	w, err := NewWorldMode(phys, mode)
	if err != nil {
		return nil, err
	}
	w.logical = cfg.Size()
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.eps) }

// Replicated reports whether the world was built by NewReplicatedWorld
// (every logical rank backed by a primary + shadow physical pair).
func (w *World) Replicated() bool { return w.logical > 0 }

// LogicalSize returns the number of logical ranks: Size() on an
// unreplicated world, Size()/2 on a replicated one.
func (w *World) LogicalSize() int {
	if w.logical > 0 {
		return w.logical
	}
	return len(w.eps)
}

// Replicas returns the physical ranks backing logical rank lr on a
// replicated world: the primary (lr) and its shadow (lr + LogicalSize).
func (w *World) Replicas(lr int) (primary, shadow int) {
	return lr, lr + w.logical
}

// Config returns the simnet configuration.
func (w *World) Config() simnet.Config { return w.cfg }

// Network exposes the cost model (used by implementations to price
// collective phases that do not map one-to-one onto envelopes).
func (w *World) Network() *simnet.Network { return w.net }

// Endpoint returns rank r's endpoint.
func (w *World) Endpoint(r int) *Endpoint {
	if r < 0 || r >= len(w.eps) {
		panic(fmt.Sprintf("fabric: endpoint rank %d out of range [0,%d)", r, len(w.eps)))
	}
	return w.eps[r]
}

// OOB returns the out-of-band control plane.
func (w *World) OOB() *OOB { return w.oob }

// SetTrace attaches a trace leg to the world: every endpoint caches its
// per-rank track so emission is a field load plus a nil check. Must be
// called before any rank goroutine starts (the fields are read without
// synchronization on the hot path). A nil leg leaves the world untraced.
func (w *World) SetTrace(l *trace.Leg) {
	if l == nil {
		return
	}
	w.leg = l
	for i, ep := range w.eps {
		ep.tr = l.Track(i)
		ep.in.tr = ep.tr
		ep.in.clk = &ep.clock
	}
}

// TraceLeg returns the world's trace leg, or nil when untraced.
func (w *World) TraceLeg() *trace.Leg { return w.leg }

// Kill marks ranks dead (fail-stop): their inbound mailboxes close,
// dropping queued envelopes, and subsequent Sends addressed to them
// vanish on the wire, exactly as messages to a powered-off node do.
// Kill does not release peers blocked waiting on the dead ranks' traffic
// — that is the failure-detection layer's job (internal/core records the
// RankFailure and closes the world).
func (w *World) Kill(ranks ...int) {
	for _, r := range ranks {
		if r < 0 || r >= len(w.eps) {
			continue
		}
		if !w.dead[r].Swap(true) {
			w.eps[r].in.close()
			w.eps[r].in.purge()
		}
	}
}

// NotifyFailure broadcasts a fail-stop failure notice for the given
// ranks to every surviving endpoint's mailbox — the fabric analog of the
// runtime failure detector ULFM specifies. The notice is a ProtoCtrl
// envelope (tag ulfm.CtrlFailure, payload the dead world ranks), and the
// push is what wakes peers blocked waiting on the dead ranks' traffic so
// their pending operations can complete with the proc-failed error
// instead of hanging. Callers Kill first, then NotifyFailure; contrast
// Close, which tears the whole job down (the fail-stop fatal path).
func (w *World) NotifyFailure(ranks ...int) {
	payload := ulfm.EncodeRanks(ranks)
	for r, ep := range w.eps {
		if w.dead[r].Load() {
			continue
		}
		ep.in.push(&Envelope{
			Src: -1, Dst: r, Proto: ProtoCtrl, Tag: ulfm.CtrlFailure,
			Payload: payload,
		})
	}
}

// Alive reports whether rank r has not been killed.
func (w *World) Alive(r int) bool {
	if r < 0 || r >= len(w.dead) {
		return false
	}
	return !w.dead[r].Load()
}

// Close shuts every mailbox down, releasing blocked receivers.
func (w *World) Close() {
	w.once.Do(func() {
		for _, ep := range w.eps {
			ep.in.close()
		}
		w.oob.close()
	})
}

// Endpoint is one rank's attachment point: a virtual clock and an inbound
// mailbox. The owning rank goroutine calls Recv/TryRecv; any rank may Send
// to it.
type Endpoint struct {
	world *World
	rank  int
	clock simnet.Clock
	in    *mailbox
	tr    *trace.Track // non-nil iff the world is traced
}

// Rank returns the endpoint's rank in the world.
func (ep *Endpoint) Rank() int { return ep.rank }

// Trace returns the rank's trace track, or nil when the world is
// untraced. Layers above cache it (mpicore's Proc) so their emission
// sites share the endpoint's nil-check fast path.
func (ep *Endpoint) Trace() *trace.Track { return ep.tr }

// Clock returns the rank's virtual clock.
func (ep *Endpoint) Clock() *simnet.Clock { return &ep.clock }

// World returns the world the endpoint belongs to.
func (ep *Endpoint) World() *World { return ep.world }

// Send prices the envelope on the network and delivers it to the
// destination mailbox. The payload is copied, mirroring MPI's buffer
// ownership semantics, and the sender's clock is advanced by the per-message
// send overhead. Send never blocks (mailboxes are unbounded).
func (ep *Endpoint) Send(e *Envelope) { ep.send(e, true) }

// SendOwned is Send minus the defensive payload copy: the caller
// transfers ownership of e.Payload to the receiver. Legal ONLY when the
// payload is freshly allocated for this message and the sender never
// touches it again — a packed p2p buffer qualifies; a collective
// accumulator that the algorithm keeps reducing into does not (the
// receiver would observe the sender's later mutations).
func (ep *Endpoint) SendOwned(e *Envelope) { ep.send(e, false) }

func (ep *Endpoint) send(e *Envelope, copyPayload bool) {
	if e.Dst < 0 || e.Dst >= ep.world.Size() {
		panic(fmt.Sprintf("fabric: send to rank %d out of range [0,%d)", e.Dst, ep.world.Size()))
	}
	e.Src = ep.rank
	ep.clock.Advance(ep.world.cfg.SendOverhead)
	e.Sent = ep.clock.Now()
	if tr := ep.tr; tr != nil {
		// Emitted before the push: once the envelope is handed to the
		// destination mailbox its fields belong to the receiver.
		tr.Instant(trace.CatFabric, "send", e.Sent,
			trace.Arg{Key: "dst", Val: trace.Itoa(e.Dst)},
			trace.Arg{Key: "proto", Val: e.Proto.String()},
			trace.Arg{Key: "bytes", Val: trace.Itoa(len(e.Payload))})
	}
	if ep.world.dead[e.Dst].Load() {
		// The sender pays its per-message overhead; the envelope is lost.
		return
	}
	if copyPayload && e.Payload != nil {
		p := make([]byte, len(e.Payload))
		copy(p, e.Payload)
		e.Payload = p
	}
	e.Arrive = ep.world.net.Transfer(ep.rank, e.Dst, len(e.Payload), e.Sent)
	ep.world.eps[e.Dst].in.push(e)
}

// Recv blocks for the next inbound envelope, advances the local clock to
// the arrival time plus receive overhead, and returns it. Returns nil when
// the world is closed.
func (ep *Endpoint) Recv() *Envelope {
	e := ep.in.pop()
	if e == nil {
		return nil
	}
	ep.AccountRecv(e)
	return e
}

// TryRecv returns the next inbound envelope if one is queued.
func (ep *Endpoint) TryRecv() (*Envelope, bool) {
	e, ok := ep.in.tryPop()
	if !ok {
		return nil, false
	}
	ep.AccountRecv(e)
	return e, true
}

// RecvBatch blocks for inbound traffic and drains the whole mailbox into
// buf in arrival order, one lock hop for the burst. Unlike Recv it does
// NOT touch the clock: the caller accounts each envelope with
// AccountRecv as it dispatches it, which keeps the virtual-time
// arithmetic bit-identical to a sequence of Recv calls (the clock
// advances per message, in the same order, by the same amounts).
// Returns buf unchanged once the world is closed and the queue drained.
func (ep *Endpoint) RecvBatch(buf []*Envelope) []*Envelope {
	out := ep.in.popBatch(buf)
	if tr := ep.tr; tr != nil && len(out) > len(buf) {
		tr.Instant(trace.CatSched, "drain", ep.clock.Now(),
			trace.Arg{Key: "count", Val: trace.Itoa(len(out) - len(buf))})
	}
	return out
}

// TryRecvBatch is RecvBatch without blocking.
func (ep *Endpoint) TryRecvBatch(buf []*Envelope) []*Envelope {
	out := ep.in.tryPopBatch(buf)
	if tr := ep.tr; tr != nil && len(out) > len(buf) {
		tr.Instant(trace.CatSched, "drain", ep.clock.Now(),
			trace.Arg{Key: "count", Val: trace.Itoa(len(out) - len(buf))})
	}
	return out
}

// AccountRecv applies one envelope's receive-side clock cost: advance to
// its arrival time, then pay the per-message receive overhead — exactly
// what Recv does after pop.
func (ep *Endpoint) AccountRecv(e *Envelope) {
	ep.clock.AdvanceTo(e.Arrive)
	ep.clock.Advance(ep.world.cfg.RecvOverhead)
	if tr := ep.tr; tr != nil {
		tr.Instant(trace.CatFabric, "deliver", ep.clock.Now(),
			trace.Arg{Key: "src", Val: trace.Itoa(e.Src)},
			trace.Arg{Key: "proto", Val: e.Proto.String()},
			trace.Arg{Key: "bytes", Val: trace.Itoa(len(e.Payload))})
	}
}

// Pending reports the number of queued inbound envelopes (used by drain
// logic and tests).
func (ep *Endpoint) Pending() int { return ep.in.len() }
