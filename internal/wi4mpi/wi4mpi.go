// Package wi4mpi reproduces Wi4MPI's "preload" mode, the alternative
// interoperability strategy the paper surveys in Section 4.2.2: instead of
// compiling the application against a standardized ABI, the application
// stays compiled against one implementation's ABI (MPICH's here, the
// common case Wi4MPI targets), and a translation layer converts every
// call on the fly to whatever implementation is actually loaded at
// runtime.
//
// Contrast with internal/mukautuva: Mukautuva translates FROM the
// standard ABI, Wi4MPI translates FROM a concrete implementation's ABI.
// Both land on the same wrap adapters. Having both in the repository
// makes the paper's taxonomy executable — and the MANA wrapper stacks on
// either, since it resolves its constants through whatever table it is
// given.
//
// In the README's layer diagram Wi4MPI is the preload-translation entry
// of the bindings-and-shims row (Section 4.2.2).
package wi4mpi

import (
	"time"

	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/mpich"
	"repro/internal/mukautuva"
	"repro/internal/ops"
	"repro/internal/simnet"
	"repro/internal/types"
)

// Config tunes the translator's virtual-time cost. Wi4MPI's published
// overhead is higher than Mukautuva's for small messages (the paper notes
// "high overhead for small messages" among its limitations), which the
// default reflects.
type Config struct {
	// PerCall is the on-the-fly translation cost charged per MPI call.
	PerCall time.Duration
}

// DefaultConfig reflects Wi4MPI's heavier per-call translation.
func DefaultConfig() Config { return Config{PerCall: 450 * time.Nanosecond} }

// dialect is the source-ABI vocabulary the application was compiled
// against: MPICH's handle values and integer constants, exactly what
// mpich.Bind hands out.
func dialectLookup(sym abi.Sym) abi.Handle {
	switch sym {
	case abi.SymCommWorld:
		return widen(mpich.CommWorld)
	case abi.SymCommSelf:
		return widen(mpich.CommSelf)
	case abi.SymCommNull:
		return widen(mpich.CommNull)
	case abi.SymGroupNull:
		return widen(mpich.GroupNull)
	case abi.SymGroupEmpty:
		return widen(mpich.GroupEmpty)
	case abi.SymTypeNull:
		return widen(mpich.DatatypeNull)
	case abi.SymOpNull:
		return widen(mpich.OpNull)
	case abi.SymRequestNull:
		return widen(mpich.RequestNull)
	}
	if k, ok := abi.KindForSym(sym); ok {
		return widen(mpich.TypeHandle(k))
	}
	if op, ok := abi.OpForSym(sym); ok {
		return widen(mpich.OpHandle(op))
	}
	return widen(mpich.DatatypeNull)
}

// widen embeds an MPICH 32-bit handle in the opaque 64-bit slot the same
// way the native binding does.
func widen(h mpich.Handle) abi.Handle { return abi.Handle(uint64(uint32(int32(h)))) }

func dialectLookupInt(sym abi.IntSym) int {
	switch sym {
	case abi.IntAnySource:
		return mpich.AnySource
	case abi.IntAnyTag:
		return mpich.AnyTag
	case abi.IntProcNull:
		return mpich.ProcNull
	case abi.IntRoot:
		return mpich.Root
	case abi.IntUndefined:
		return mpich.Undefined
	case abi.IntTagUB:
		return mpich.TagUB
	}
	return mpich.Undefined
}

// codeOfClass maps standard error classes back to MPICH's error codes:
// the application expects MPICH's numbering in statuses and error values.
func codeOfClass(c abi.ErrClass) int32 {
	switch c {
	case abi.ErrSuccess:
		return mpich.Success
	case abi.ErrBuffer:
		return mpich.ErrBuffer
	case abi.ErrCount:
		return mpich.ErrCount
	case abi.ErrType:
		return mpich.ErrType
	case abi.ErrTag:
		return mpich.ErrTag
	case abi.ErrComm:
		return mpich.ErrComm
	case abi.ErrRank:
		return mpich.ErrRank
	case abi.ErrRoot:
		return mpich.ErrRoot
	case abi.ErrGroup:
		return mpich.ErrGroup
	case abi.ErrOp:
		return mpich.ErrOp
	case abi.ErrArg:
		return mpich.ErrArg
	case abi.ErrTruncate:
		return mpich.ErrTruncate
	case abi.ErrRequest:
		return mpich.ErrRequest
	case abi.ErrPending:
		return mpich.ErrPending
	case abi.ErrIntern:
		return mpich.ErrIntern
	case abi.ErrProcFailed:
		return mpich.ErrProcFailed
	case abi.ErrRevoked:
		return mpich.ErrRevoked
	default:
		return mpich.ErrOther
	}
}

// Preload is the Wi4MPI preload-mode translator: an abi.FuncTable whose
// visible vocabulary is MPICH's, implemented over any wrap adapter.
type Preload struct {
	name string
	lib  *mukautuva.WrapLib
	cfg  Config

	clock *simnet.Clock

	fwd  map[abi.Handle]abi.Handle // MPICH-dialect -> target
	next uint64

	tAnySource, tAnyTag, tProcNull, tRoot, tUndefined int
	tCommNull, tGroupNull, tTypeNull, tOpNull         abi.Handle
	tReqNull                                          abi.Handle
}

var _ abi.FuncTable = (*Preload)(nil)

// Load selects the runtime implementation by name (the analog of Wi4MPI's
// WI4MPI_TO environment variable) and builds the translator.
func Load(target string, w *fabric.World, rank int, cfg Config) (*Preload, error) {
	lib, err := mukautuva.LoadLib(target, w, rank)
	if err != nil {
		return nil, err
	}
	p := &Preload{
		name:  target,
		lib:   lib,
		cfg:   cfg,
		clock: w.Endpoint(rank).Clock(),
		fwd:   make(map[abi.Handle]abi.Handle),
		next:  1 << 22, // dynamic dialect handles: above MPICH's payload space
	}
	inner := lib.Table
	syms := []abi.Sym{
		abi.SymCommWorld, abi.SymCommSelf, abi.SymCommNull,
		abi.SymGroupNull, abi.SymGroupEmpty, abi.SymTypeNull,
		abi.SymOpNull, abi.SymRequestNull,
	}
	for _, k := range types.Kinds() {
		syms = append(syms, abi.SymForKind(k))
	}
	for _, op := range ops.Ops() {
		syms = append(syms, abi.SymForOp(op))
	}
	for _, sym := range syms {
		p.fwd[dialectLookup(sym)] = inner.Lookup(sym)
	}
	p.tCommNull = inner.Lookup(abi.SymCommNull)
	p.tGroupNull = inner.Lookup(abi.SymGroupNull)
	p.tTypeNull = inner.Lookup(abi.SymTypeNull)
	p.tOpNull = inner.Lookup(abi.SymOpNull)
	p.tReqNull = inner.Lookup(abi.SymRequestNull)
	p.tAnySource = inner.LookupInt(abi.IntAnySource)
	p.tAnyTag = inner.LookupInt(abi.IntAnyTag)
	p.tProcNull = inner.LookupInt(abi.IntProcNull)
	p.tRoot = inner.LookupInt(abi.IntRoot)
	p.tUndefined = inner.LookupInt(abi.IntUndefined)
	return p, nil
}

// Target names the implementation actually running underneath.
func (p *Preload) Target() string { return p.name }

func (p *Preload) charge() { p.clock.Advance(p.cfg.PerCall) }

func (p *Preload) in(h abi.Handle) abi.Handle {
	if t, ok := p.fwd[h]; ok {
		return t
	}
	// Unknown dialect handle: hand the class-appropriate null downward.
	// MPICH handles carry their class in the top bits of the 32-bit word;
	// recover it for a sensible error from the target library.
	mh := mpich.Handle(int32(uint32(h)))
	switch {
	case widen(mh) == h && mh != 0:
		switch mpich.Handle(int32(uint32(h))) & 0x7c000000 {
		case 0x44000000:
			return p.tCommNull
		case 0x48000000:
			return p.tGroupNull
		case 0x4c000000:
			return p.tTypeNull
		case 0x58000000:
			return p.tOpNull
		case 0x2c000000:
			return p.tReqNull
		}
	}
	return p.tTypeNull
}

// adopt mints a fresh dialect handle for a target-library result.
func (p *Preload) adopt(native, nativeNull, dialectNull abi.Handle) abi.Handle {
	if native == nativeNull {
		return dialectNull
	}
	p.next++
	h := abi.Handle(p.next)
	p.fwd[h] = native
	return h
}

func (p *Preload) release(h abi.Handle) { delete(p.fwd, h) }

func (p *Preload) peerIn(v int) int {
	switch v {
	case mpich.AnySource:
		return p.tAnySource
	case mpich.ProcNull:
		return p.tProcNull
	case mpich.Root:
		return p.tRoot
	default:
		return v
	}
}

func (p *Preload) tagIn(v int) int {
	if v == mpich.AnyTag {
		return p.tAnyTag
	}
	return v
}

// statusBack rewrites target sentinels and error codes into MPICH's
// vocabulary — the inverse direction from the Mukautuva shim.
func (p *Preload) statusBack(st *abi.Status) {
	if st == nil {
		return
	}
	if int(st.Source) == p.tProcNull {
		st.Source = int32(mpich.ProcNull)
	}
	if int(st.Tag) == p.tAnyTag {
		st.Tag = int32(mpich.AnyTag)
	}
	if st.Error != 0 {
		st.Error = codeOfClass(p.lib.ErrClass(int(st.Error)))
	}
}

func (p *Preload) err(e error) error {
	if e == nil {
		return nil
	}
	return abi.Errorf(abi.ClassOf(e), "wi4mpi("+p.name+")", "%v", e)
}

func (p *Preload) countBack(v int) int {
	if v == p.tUndefined {
		return mpich.Undefined
	}
	return v
}

// --- abi.FuncTable (MPICH dialect upward, target implementation downward) ---

func (p *Preload) ImplName() string { return "wi4mpi->" + p.name }

// Lookup resolves to MPICH-dialect values: the application "was compiled
// against MPICH's mpi.h".
func (p *Preload) Lookup(sym abi.Sym) abi.Handle { return dialectLookup(sym) }

func (p *Preload) LookupInt(sym abi.IntSym) int { return dialectLookupInt(sym) }

func (p *Preload) Send(buf []byte, count int, dtype abi.Handle, dest, tag int, comm abi.Handle) error {
	p.charge()
	return p.err(p.lib.Table.Send(buf, count, p.in(dtype), p.peerIn(dest), tag, p.in(comm)))
}

func (p *Preload) Recv(buf []byte, count int, dtype abi.Handle, source, tag int, comm abi.Handle, st *abi.Status) error {
	p.charge()
	err := p.lib.Table.Recv(buf, count, p.in(dtype), p.peerIn(source), p.tagIn(tag), p.in(comm), st)
	p.statusBack(st)
	return p.err(err)
}

func (p *Preload) Isend(buf []byte, count int, dtype abi.Handle, dest, tag int, comm abi.Handle) (abi.Handle, error) {
	p.charge()
	r, err := p.lib.Table.Isend(buf, count, p.in(dtype), p.peerIn(dest), tag, p.in(comm))
	if err != nil {
		return widen(mpich.RequestNull), p.err(err)
	}
	return p.adopt(r, p.tReqNull, widen(mpich.RequestNull)), nil
}

func (p *Preload) Irecv(buf []byte, count int, dtype abi.Handle, source, tag int, comm abi.Handle) (abi.Handle, error) {
	p.charge()
	r, err := p.lib.Table.Irecv(buf, count, p.in(dtype), p.peerIn(source), p.tagIn(tag), p.in(comm))
	if err != nil {
		return widen(mpich.RequestNull), p.err(err)
	}
	return p.adopt(r, p.tReqNull, widen(mpich.RequestNull)), nil
}

func (p *Preload) Wait(req abi.Handle, st *abi.Status) error {
	p.charge()
	err := p.lib.Table.Wait(p.in(req), st)
	p.statusBack(st)
	p.release(req)
	return p.err(err)
}

func (p *Preload) Test(req abi.Handle, st *abi.Status) (bool, error) {
	p.charge()
	done, err := p.lib.Table.Test(p.in(req), st)
	if done {
		p.statusBack(st)
		p.release(req)
	}
	return done, p.err(err)
}

func (p *Preload) Waitall(reqs []abi.Handle, sts []abi.Status) error {
	p.charge()
	native := make([]abi.Handle, len(reqs))
	for i, r := range reqs {
		native[i] = p.in(r)
	}
	err := p.lib.Table.Waitall(native, sts)
	for i := range sts {
		p.statusBack(&sts[i])
	}
	for _, r := range reqs {
		p.release(r)
	}
	return p.err(err)
}

func (p *Preload) Sendrecv(sendbuf []byte, scount int, stype abi.Handle, dest, stag int,
	recvbuf []byte, rcount int, rtype abi.Handle, source, rtag int,
	comm abi.Handle, st *abi.Status) error {
	p.charge()
	err := p.lib.Table.Sendrecv(sendbuf, scount, p.in(stype), p.peerIn(dest), stag,
		recvbuf, rcount, p.in(rtype), p.peerIn(source), p.tagIn(rtag), p.in(comm), st)
	p.statusBack(st)
	return p.err(err)
}

func (p *Preload) Probe(source, tag int, comm abi.Handle, st *abi.Status) error {
	p.charge()
	err := p.lib.Table.Probe(p.peerIn(source), p.tagIn(tag), p.in(comm), st)
	p.statusBack(st)
	return p.err(err)
}

func (p *Preload) Iprobe(source, tag int, comm abi.Handle, st *abi.Status) (bool, error) {
	p.charge()
	found, err := p.lib.Table.Iprobe(p.peerIn(source), p.tagIn(tag), p.in(comm), st)
	if found {
		p.statusBack(st)
	}
	return found, p.err(err)
}

func (p *Preload) Barrier(comm abi.Handle) error {
	p.charge()
	return p.err(p.lib.Table.Barrier(p.in(comm)))
}

func (p *Preload) Bcast(buf []byte, count int, dtype abi.Handle, root int, comm abi.Handle) error {
	p.charge()
	return p.err(p.lib.Table.Bcast(buf, count, p.in(dtype), root, p.in(comm)))
}

func (p *Preload) Reduce(sendbuf, recvbuf []byte, count int, dtype, op abi.Handle, root int, comm abi.Handle) error {
	p.charge()
	return p.err(p.lib.Table.Reduce(sendbuf, recvbuf, count, p.in(dtype), p.in(op), root, p.in(comm)))
}

func (p *Preload) Allreduce(sendbuf, recvbuf []byte, count int, dtype, op abi.Handle, comm abi.Handle) error {
	p.charge()
	return p.err(p.lib.Table.Allreduce(sendbuf, recvbuf, count, p.in(dtype), p.in(op), p.in(comm)))
}

func (p *Preload) Gather(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, root int, comm abi.Handle) error {
	p.charge()
	return p.err(p.lib.Table.Gather(sendbuf, scount, p.in(stype), recvbuf, rcount, p.in(rtype), root, p.in(comm)))
}

func (p *Preload) Allgather(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, comm abi.Handle) error {
	p.charge()
	return p.err(p.lib.Table.Allgather(sendbuf, scount, p.in(stype), recvbuf, rcount, p.in(rtype), p.in(comm)))
}

func (p *Preload) Scatter(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, root int, comm abi.Handle) error {
	p.charge()
	return p.err(p.lib.Table.Scatter(sendbuf, scount, p.in(stype), recvbuf, rcount, p.in(rtype), root, p.in(comm)))
}

func (p *Preload) Alltoall(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, comm abi.Handle) error {
	p.charge()
	return p.err(p.lib.Table.Alltoall(sendbuf, scount, p.in(stype), recvbuf, rcount, p.in(rtype), p.in(comm)))
}

func (p *Preload) CommSize(comm abi.Handle) (int, error) {
	p.charge()
	n, err := p.lib.Table.CommSize(p.in(comm))
	return n, p.err(err)
}

func (p *Preload) CommRank(comm abi.Handle) (int, error) {
	p.charge()
	r, err := p.lib.Table.CommRank(p.in(comm))
	return r, p.err(err)
}

func (p *Preload) CommDup(comm abi.Handle) (abi.Handle, error) {
	p.charge()
	n, err := p.lib.Table.CommDup(p.in(comm))
	if err != nil {
		return widen(mpich.CommNull), p.err(err)
	}
	return p.adopt(n, p.tCommNull, widen(mpich.CommNull)), nil
}

func (p *Preload) CommSplit(comm abi.Handle, color, key int) (abi.Handle, error) {
	p.charge()
	if color == mpich.Undefined {
		color = p.tUndefined
	}
	n, err := p.lib.Table.CommSplit(p.in(comm), color, key)
	if err != nil {
		return widen(mpich.CommNull), p.err(err)
	}
	return p.adopt(n, p.tCommNull, widen(mpich.CommNull)), nil
}

func (p *Preload) CommCreate(comm, group abi.Handle) (abi.Handle, error) {
	p.charge()
	n, err := p.lib.Table.CommCreate(p.in(comm), p.in(group))
	if err != nil {
		return widen(mpich.CommNull), p.err(err)
	}
	return p.adopt(n, p.tCommNull, widen(mpich.CommNull)), nil
}

func (p *Preload) CommGroup(comm abi.Handle) (abi.Handle, error) {
	p.charge()
	n, err := p.lib.Table.CommGroup(p.in(comm))
	if err != nil {
		return widen(mpich.GroupNull), p.err(err)
	}
	return p.adopt(n, p.tGroupNull, widen(mpich.GroupNull)), nil
}

func (p *Preload) CommFree(comm abi.Handle) error {
	p.charge()
	err := p.lib.Table.CommFree(p.in(comm))
	if err == nil {
		p.release(comm)
	}
	return p.err(err)
}

func (p *Preload) GroupSize(group abi.Handle) (int, error) {
	p.charge()
	n, err := p.lib.Table.GroupSize(p.in(group))
	return n, p.err(err)
}

func (p *Preload) GroupRank(group abi.Handle) (int, error) {
	p.charge()
	r, err := p.lib.Table.GroupRank(p.in(group))
	return p.countBack(r), p.err(err)
}

func (p *Preload) GroupIncl(group abi.Handle, ranks []int) (abi.Handle, error) {
	p.charge()
	n, err := p.lib.Table.GroupIncl(p.in(group), ranks)
	if err != nil {
		return widen(mpich.GroupNull), p.err(err)
	}
	return p.adopt(n, p.tGroupNull, widen(mpich.GroupNull)), nil
}

func (p *Preload) GroupExcl(group abi.Handle, ranks []int) (abi.Handle, error) {
	p.charge()
	n, err := p.lib.Table.GroupExcl(p.in(group), ranks)
	if err != nil {
		return widen(mpich.GroupNull), p.err(err)
	}
	return p.adopt(n, p.tGroupNull, widen(mpich.GroupNull)), nil
}

func (p *Preload) GroupTranslateRanks(g1 abi.Handle, ranks []int, g2 abi.Handle) ([]int, error) {
	p.charge()
	out, err := p.lib.Table.GroupTranslateRanks(p.in(g1), ranks, p.in(g2))
	for i := range out {
		out[i] = p.countBack(out[i])
	}
	return out, p.err(err)
}

func (p *Preload) GroupFree(group abi.Handle) error {
	p.charge()
	err := p.lib.Table.GroupFree(p.in(group))
	if err == nil {
		p.release(group)
	}
	return p.err(err)
}

func (p *Preload) TypeContiguous(count int, inner abi.Handle) (abi.Handle, error) {
	p.charge()
	n, err := p.lib.Table.TypeContiguous(count, p.in(inner))
	if err != nil {
		return widen(mpich.DatatypeNull), p.err(err)
	}
	return p.adopt(n, p.tTypeNull, widen(mpich.DatatypeNull)), nil
}

func (p *Preload) TypeVector(count, blocklen, stride int, inner abi.Handle) (abi.Handle, error) {
	p.charge()
	n, err := p.lib.Table.TypeVector(count, blocklen, stride, p.in(inner))
	if err != nil {
		return widen(mpich.DatatypeNull), p.err(err)
	}
	return p.adopt(n, p.tTypeNull, widen(mpich.DatatypeNull)), nil
}

func (p *Preload) TypeIndexed(blocklens, displs []int, inner abi.Handle) (abi.Handle, error) {
	p.charge()
	n, err := p.lib.Table.TypeIndexed(blocklens, displs, p.in(inner))
	if err != nil {
		return widen(mpich.DatatypeNull), p.err(err)
	}
	return p.adopt(n, p.tTypeNull, widen(mpich.DatatypeNull)), nil
}

func (p *Preload) TypeCreateStruct(blocklens, displs []int, typs []abi.Handle) (abi.Handle, error) {
	p.charge()
	native := make([]abi.Handle, len(typs))
	for i, t := range typs {
		native[i] = p.in(t)
	}
	n, err := p.lib.Table.TypeCreateStruct(blocklens, displs, native)
	if err != nil {
		return widen(mpich.DatatypeNull), p.err(err)
	}
	return p.adopt(n, p.tTypeNull, widen(mpich.DatatypeNull)), nil
}

func (p *Preload) TypeCommit(dtype abi.Handle) error {
	p.charge()
	return p.err(p.lib.Table.TypeCommit(p.in(dtype)))
}

func (p *Preload) TypeFree(dtype abi.Handle) error {
	p.charge()
	err := p.lib.Table.TypeFree(p.in(dtype))
	if err == nil {
		p.release(dtype)
	}
	return p.err(err)
}

func (p *Preload) TypeSize(dtype abi.Handle) (int, error) {
	p.charge()
	n, err := p.lib.Table.TypeSize(p.in(dtype))
	return n, p.err(err)
}

func (p *Preload) TypeExtent(dtype abi.Handle) (int, error) {
	p.charge()
	n, err := p.lib.Table.TypeExtent(p.in(dtype))
	return n, p.err(err)
}

func (p *Preload) GetCount(st *abi.Status, dtype abi.Handle) (int, error) {
	p.charge()
	n, err := p.lib.Table.GetCount(st, p.in(dtype))
	return p.countBack(n), p.err(err)
}

func (p *Preload) OpCreate(name string, commute bool) (abi.Handle, error) {
	p.charge()
	n, err := p.lib.Table.OpCreate(name, commute)
	if err != nil {
		return widen(mpich.OpNull), p.err(err)
	}
	return p.adopt(n, p.tOpNull, widen(mpich.OpNull)), nil
}

func (p *Preload) OpFree(op abi.Handle) error {
	p.charge()
	err := p.lib.Table.OpFree(p.in(op))
	if err == nil {
		p.release(op)
	}
	return p.err(err)
}

func (p *Preload) Abort(comm abi.Handle, code int) error {
	return p.err(p.lib.Table.Abort(p.in(comm), code))
}

// The ULFM (MPIX_*) surface in preload mode: the application speaks
// MPICH's dialect (its handle values and its 71/72 MPIX error codes),
// the target library answers in its own, and the translator converts
// both directions on the fly — including re-numbering the target's
// proc-failed/revoked codes into MPICH's, the newest corner of the code
// space and the one fault-tolerant applications actually branch on.

func (p *Preload) CommRevoke(comm abi.Handle) error {
	p.charge()
	return p.err(p.lib.Table.CommRevoke(p.in(comm)))
}

func (p *Preload) CommShrink(comm abi.Handle) (abi.Handle, error) {
	p.charge()
	n, err := p.lib.Table.CommShrink(p.in(comm))
	if err != nil {
		return widen(mpich.CommNull), p.err(err)
	}
	return p.adopt(n, p.tCommNull, widen(mpich.CommNull)), nil
}

func (p *Preload) CommAgree(comm abi.Handle, flag uint64) (uint64, error) {
	p.charge()
	out, err := p.lib.Table.CommAgree(p.in(comm), flag)
	return out, p.err(err)
}

func (p *Preload) CommFailureAck(comm abi.Handle) error {
	p.charge()
	return p.err(p.lib.Table.CommFailureAck(p.in(comm)))
}

func (p *Preload) CommFailureGetAcked(comm abi.Handle) (abi.Handle, error) {
	p.charge()
	n, err := p.lib.Table.CommFailureGetAcked(p.in(comm))
	if err != nil {
		return widen(mpich.GroupNull), p.err(err)
	}
	return p.adopt(n, p.tGroupNull, widen(mpich.GroupNull)), nil
}
