package wi4mpi

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/mpich"
	"repro/internal/ops"
	"repro/internal/simnet"
	"repro/internal/types"
)

// runPreload runs fn per rank over the preload translator targeting the
// given implementation.
func runPreload(t *testing.T, target string, n int, fn func(p *Preload, rank int) error) {
	t.Helper()
	w, err := fabric.NewWorld(simnet.SingleNode(n))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p, err := Load(target, w, r, DefaultConfig())
			if err != nil {
				errs <- err
				w.Close()
				return
			}
			if err := fn(p, r); err != nil {
				errs <- fmt.Errorf("rank %d: %w", r, err)
				w.Close()
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("preload SPMD test timed out")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDialectIsMPICH(t *testing.T) {
	runPreload(t, "openmpi", 1, func(p *Preload, rank int) error {
		// The application sees MPICH's constants even though Open MPI runs
		// underneath — that is the preload conceit.
		if p.Lookup(abi.SymCommWorld) != widen(mpich.CommWorld) {
			return fmt.Errorf("CommWorld not MPICH-valued: %v", p.Lookup(abi.SymCommWorld))
		}
		if p.LookupInt(abi.IntAnySource) != mpich.AnySource {
			return fmt.Errorf("AnySource = %d, want MPICH's %d",
				p.LookupInt(abi.IntAnySource), mpich.AnySource)
		}
		if p.ImplName() != "wi4mpi->openmpi" || p.Target() != "openmpi" {
			return fmt.Errorf("identity wrong: %q %q", p.ImplName(), p.Target())
		}
		return nil
	})
}

// An "MPICH-compiled" program (using MPICH constants throughout) must run
// unchanged over Open MPI through the translator.
func TestMPICHProgramOverOpenMPI(t *testing.T) {
	runPreload(t, "openmpi", 4, func(p *Preload, rank int) error {
		world := widen(mpich.CommWorld)
		f64 := widen(mpich.TypeHandle(types.KindFloat64))
		sum := widen(mpich.OpHandle(ops.OpSum))
		n, err := p.CommSize(world)
		if err != nil {
			return err
		}
		me, err := p.CommRank(world)
		if err != nil {
			return err
		}
		// Ring with MPICH wildcards (ANY_SOURCE = -2).
		rb := make([]byte, 8)
		req, err := p.Irecv(rb, 1, f64, mpich.AnySource, mpich.AnyTag, world)
		if err != nil {
			return err
		}
		if err := p.Send(abi.Float64Bytes([]float64{float64(me)}), 1, f64, (me+1)%n, 3, world); err != nil {
			return err
		}
		var st abi.Status
		if err := p.Wait(req, &st); err != nil {
			return err
		}
		left := (me - 1 + n) % n
		if got := abi.Float64sOf(rb)[0]; got != float64(left) {
			return fmt.Errorf("ring got %v, want %d", got, left)
		}
		// Allreduce via MPICH op handle.
		out := make([]byte, 8)
		if err := p.Allreduce(abi.Float64Bytes([]float64{2}), out, 1, f64, sum, world); err != nil {
			return err
		}
		if got := abi.Float64sOf(out)[0]; got != float64(2*n) {
			return fmt.Errorf("allreduce = %v, want %d", got, 2*n)
		}
		// PROC_NULL with MPICH's value (-1), status back in MPICH terms.
		var pn abi.Status
		if err := p.Recv(nil, 0, f64, mpich.ProcNull, 0, world, &pn); err != nil {
			return err
		}
		if pn.Source != mpich.ProcNull {
			return fmt.Errorf("PROC_NULL status source = %d, want MPICH's %d", pn.Source, mpich.ProcNull)
		}
		return nil
	})
}

func TestErrorCodesComeBackAsMPICH(t *testing.T) {
	runPreload(t, "openmpi", 2, func(p *Preload, rank int) error {
		world := widen(mpich.CommWorld)
		bt := widen(mpich.TypeHandle(types.KindByte))
		if rank == 0 {
			return p.Send(make([]byte, 64), 64, bt, 1, 0, world)
		}
		var st abi.Status
		err := p.Recv(make([]byte, 4), 4, bt, 0, 0, world, &st)
		if abi.ClassOf(err) != abi.ErrTruncate {
			return fmt.Errorf("error class = %v", abi.ClassOf(err))
		}
		// Open MPI's MPI_ERR_TRUNCATE is 15; MPICH's is 14. The app sees 14.
		if st.Error != mpich.ErrTruncate {
			return fmt.Errorf("status error = %d, want MPICH's %d", st.Error, mpich.ErrTruncate)
		}
		return nil
	})
}

func TestDynamicObjectsThroughPreload(t *testing.T) {
	runPreload(t, "openmpi", 4, func(p *Preload, rank int) error {
		world := widen(mpich.CommWorld)
		i64 := widen(mpich.TypeHandle(types.KindInt64))
		sum := widen(mpich.OpHandle(ops.OpSum))
		sub, err := p.CommSplit(world, rank%2, rank)
		if err != nil {
			return err
		}
		rb := make([]byte, 8)
		if err := p.Allreduce(abi.Int64Bytes([]int64{int64(rank)}), rb, 1, i64, sum, sub); err != nil {
			return err
		}
		want := int64(0 + 2)
		if rank%2 == 1 {
			want = 1 + 3
		}
		if got := abi.Int64sOf(rb)[0]; got != want {
			return fmt.Errorf("split allreduce = %d, want %d", got, want)
		}
		if err := p.CommFree(sub); err != nil {
			return err
		}
		// MPI_UNDEFINED color: MPICH's value translated to the target's.
		null, err := p.CommSplit(world, mpich.Undefined, 0)
		if err != nil {
			return err
		}
		if null != widen(mpich.CommNull) {
			return fmt.Errorf("undefined split = %v, want MPICH's COMM_NULL", null)
		}
		return nil
	})
}

func TestUnknownTargetRejected(t *testing.T) {
	w, err := fabric.NewWorld(simnet.SingleNode(1))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := Load("intel-mpi", w, 0, DefaultConfig()); err == nil {
		t.Fatal("unknown target accepted")
	}
}
