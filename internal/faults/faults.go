// Package faults provides declarative fault injection for the simulated
// cluster: the axis the paper's title promises but its evaluation never
// exercises. A Plan names the failures a run must survive — a rank
// crashing, a whole node going down, a NIC degrading — and an Injector
// arms the plan against one concrete cluster shape, drawing unspecified
// targets and trigger points deterministically from the repetition seed,
// exactly like the simnet jitter stream. Same seed, same fault.
//
// Crash faults fire at program-step boundaries (or at the first safe
// point at/after a virtual-time trigger): internal/core consults the
// injector between steps, which is the in-process analog of a fail-stop
// process death the MPI runtime's fault detector observes (compare
// FTHP-MPI's injected process failures, arXiv:2504.09989). NIC
// degradation is armed directly into the simnet cost model and needs no
// cooperation from the victim.
//
// A fired fault stays fired for the lifetime of the Injector, across
// restart legs: the recovery driver carries one Injector through launch,
// detection and restart, so a crash consumed on the first leg does not
// re-kill the recovered job when it replays the trigger step.
//
// In the README's layer diagram the fault axis is orthogonal to the
// stack column: plans arm fail-stop kills, failure notices and NIC
// degradation in the fabric+simnet row, and the three recovery drivers
// in internal/core — restart, shrink, replicate (docs/recovery.md) —
// consume the resulting failures.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/simnet"
)

// Kind names a fault class.
type Kind string

// Fault classes.
const (
	// KindRankCrash kills one rank (fail-stop process death).
	KindRankCrash Kind = "rank-crash"
	// KindNodeCrash kills every rank on one node (node power loss).
	KindNodeCrash Kind = "node-crash"
	// KindNICDegrade divides one node's NIC serialization rate by Factor
	// from virtual time At onward (link degradation, not a failure — the
	// job completes, slower).
	KindNICDegrade Kind = "nic-degrade"
)

// Anywhere, as a Spec target, means "drawn deterministically from the
// injector seed".
const Anywhere = -1

// Spec declares one fault. The zero values of Rank/Node target rank 0 /
// node 0; use Anywhere for a seeded draw.
type Spec struct {
	Kind Kind `json:"kind"`
	// Rank targets a rank (KindRankCrash). Anywhere = seeded draw.
	Rank int `json:"rank"`
	// Node targets a node (KindNodeCrash, KindNICDegrade). Anywhere =
	// seeded draw.
	Node int `json:"node"`
	// Step is the program step the fault fires before (crash kinds):
	// the victim dies at the step-Step boundary, never executing it.
	// 0 means a seeded draw from [MinStep, MaxStep].
	Step uint64 `json:"step,omitempty"`
	// MinStep/MaxStep bound the seeded step draw (defaults 2 and 3, so a
	// drawn trigger always fires inside even the shortest smoke-scale
	// runs while leaving at least one safe point ahead of it).
	MinStep, MaxStep uint64 `json:"-"`
	// At is a virtual-time trigger: crash kinds fire at the victim's
	// first step boundary at/after At (used when Step is 0);
	// KindNICDegrade degrades transfers departing at/after At.
	At time.Duration `json:"at,omitempty"`
	// Factor is the NIC slowdown multiplier (KindNICDegrade; default 8).
	Factor float64 `json:"factor,omitempty"`
	// NonFatal selects the ULFM-style crash mode: the victims still die
	// fail-stop, but the job does NOT abort — the fabric broadcasts a
	// failure notice instead of closing, survivors' pending operations
	// complete with the proc-failed error, and the application recovers
	// in place (revoke/shrink/continue) rather than by restart. Crash
	// kinds only; core refuses non-fatal faults outside a shrink-mode
	// launch, where survivors would otherwise hang at the next
	// checkpoint barrier waiting for the dead.
	NonFatal bool `json:"non_fatal,omitempty"`
}

// Plan is the declarative list of faults one run must survive.
type Plan struct {
	Faults []Spec `json:"faults"`
}

// Validate reports why a spec cannot be armed against cfg.
func (s Spec) Validate(cfg simnet.Config) error {
	switch s.Kind {
	case KindRankCrash:
		if s.Rank != Anywhere && (s.Rank < 0 || s.Rank >= cfg.Size()) {
			return fmt.Errorf("faults: rank %d out of range [0,%d)", s.Rank, cfg.Size())
		}
	case KindNodeCrash, KindNICDegrade:
		if s.Node != Anywhere && (s.Node < 0 || s.Node >= cfg.Nodes) {
			return fmt.Errorf("faults: node %d out of range [0,%d)", s.Node, cfg.Nodes)
		}
	default:
		return fmt.Errorf("faults: unknown fault kind %q", s.Kind)
	}
	if s.MinStep > s.MaxStep {
		return fmt.Errorf("faults: MinStep %d > MaxStep %d", s.MinStep, s.MaxStep)
	}
	if s.Factor < 0 || (s.Kind == KindNICDegrade && s.Factor != 0 && s.Factor < 1) {
		return fmt.Errorf("faults: degradation factor %g must be >= 1", s.Factor)
	}
	if s.At < 0 {
		return fmt.Errorf("faults: negative virtual-time trigger %v", s.At)
	}
	if s.NonFatal && s.Kind == KindNICDegrade {
		return fmt.Errorf("faults: non-fatal mode applies to crash kinds, not %s", s.Kind)
	}
	return nil
}

// Fault is one armed fault: a Spec with its seeded draws resolved against
// a concrete cluster shape.
type Fault struct {
	Spec
	// Ranks are the ranks the fault kills (crash kinds; nil for
	// nic-degrade). A node crash lists every rank of the node.
	Ranks []int
	// TriggerStep is the concrete step trigger (0 = virtual-time trigger
	// via Spec.At).
	TriggerStep uint64
}

// hits reports whether rank is among the fault's victims.
func (f *Fault) hits(rank int) bool {
	for _, r := range f.Ranks {
		if r == rank {
			return true
		}
	}
	return false
}

// Injector is a plan armed against one cluster shape. One Injector is
// shared by every leg of a recovery cycle (launch, restarts), so fired
// faults never refire; it is safe for concurrent use by all ranks.
type Injector struct {
	cfg simnet.Config

	mu     sync.Mutex
	faults []*Fault
	fired  []int // leg the fault fired in; -1 = still armed
	leg    int
}

// injectorSalt decorrelates the fault draw stream from the simnet jitter
// stream, which is seeded from the same repetition seed.
const injectorSalt = 0x6661756c74 // "fault"

// NewInjector resolves the plan's seeded draws against cfg. The same
// (plan, seed, cfg) always resolves to the same faults.
func NewInjector(plan Plan, seed int64, cfg simnet.Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed ^ injectorSalt))
	in := &Injector{cfg: cfg}
	for i, s := range plan.Faults {
		if err := s.Validate(cfg); err != nil {
			return nil, fmt.Errorf("fault %d: %w", i, err)
		}
		f := &Fault{Spec: s}
		switch s.Kind {
		case KindRankCrash:
			r := s.Rank
			if r == Anywhere {
				r = rng.Intn(cfg.Size())
			}
			f.Ranks = []int{r}
		case KindNodeCrash:
			n := s.Node
			if n == Anywhere {
				n = rng.Intn(cfg.Nodes)
			}
			f.Node = n
			for r := n * cfg.RanksPerNode; r < (n+1)*cfg.RanksPerNode; r++ {
				f.Ranks = append(f.Ranks, r)
			}
		case KindNICDegrade:
			n := s.Node
			if n == Anywhere {
				n = rng.Intn(cfg.Nodes)
			}
			f.Node = n
			if f.Factor == 0 {
				f.Factor = 8
			}
		}
		if s.Kind != KindNICDegrade {
			f.TriggerStep = s.Step
			if f.TriggerStep == 0 && s.At == 0 {
				lo, hi := s.MinStep, s.MaxStep
				if lo == 0 {
					lo = 2
				}
				if hi == 0 {
					hi = 3
				}
				if hi < lo {
					hi = lo
				}
				f.TriggerStep = lo + uint64(rng.Int63n(int64(hi-lo+1)))
			}
		}
		in.faults = append(in.faults, f)
	}
	in.fired = make([]int, len(in.faults))
	for i := range in.fired {
		in.fired[i] = -1
	}
	return in, nil
}

// BeginLeg marks the start of a new job leg (launch or restart).
// Co-victims of a fired fault keep dying within the leg the fault fired
// in — a node crash takes its whole node down, whichever rank's step
// boundary noticed first — but a later leg sees the fault as spent: the
// failed hardware was replaced, and the recovered job replays the
// trigger step unharmed. internal/core calls this on every leg.
func (in *Injector) BeginLeg() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.leg++
}

// Config returns the cluster shape the injector was armed against.
func (in *Injector) Config() simnet.Config { return in.cfg }

// Faults returns the resolved faults (stable order: plan order).
func (in *Injector) Faults() []*Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]*Fault(nil), in.faults...)
}

// CrashModes summarizes the armed crash faults' modes, for launch-time
// validation: a fatal crash under a shrink-mode job would close the
// world out from under the survivors, and a non-fatal crash under a
// restart-mode job would strand survivors at the next checkpoint
// barrier waiting for the dead.
func (in *Injector) CrashModes() (fatal, nonFatal bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range in.faults {
		if f.Kind == KindNICDegrade {
			continue
		}
		if f.NonFatal {
			nonFatal = true
		} else {
			fatal = true
		}
	}
	return fatal, nonFatal
}

// ArmNetwork installs the plan's NIC degradations into the cost model.
// Called once per leg: degradation is a property of the (simulated)
// hardware and persists across restarts of the job on it.
func (in *Injector) ArmNetwork(n *simnet.Network) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range in.faults {
		if f.Kind == KindNICDegrade {
			n.DegradeNodeAfter(f.Node, f.Factor, simnet.Time(f.At))
		}
	}
}

// CrashAt reports whether rank must die before executing step (the
// rank's virtual clock reads now). The third result is true for exactly
// one call per fault — the rank that trips the trigger — so the caller
// tears the world down once; victims of an already-fired fault die
// silently on their own next check.
func (in *Injector) CrashAt(rank int, step uint64, now simnet.Time) (f *Fault, dead, first bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.faults {
		if f.Kind == KindNICDegrade || !f.hits(rank) {
			continue
		}
		if in.fired[i] >= 0 {
			if in.fired[i] == in.leg {
				return f, true, false
			}
			continue // spent on an earlier leg; harmless now
		}
		trip := false
		switch {
		case f.TriggerStep > 0:
			trip = step >= f.TriggerStep
		case f.At > 0:
			trip = now >= simnet.Time(f.At)
		}
		if trip {
			in.fired[i] = in.leg
			return f, true, true
		}
	}
	return nil, false, false
}
