package faults

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/simnet"
)

func cfg2x4() simnet.Config {
	c := simnet.Discovery10GbE()
	c.Nodes = 2
	c.RanksPerNode = 4
	return c
}

func TestSeededDrawsAreDeterministic(t *testing.T) {
	plan := Plan{Faults: []Spec{
		{Kind: KindRankCrash, Rank: Anywhere, Node: Anywhere},
		{Kind: KindNodeCrash, Rank: Anywhere, Node: Anywhere},
		{Kind: KindNICDegrade, Rank: Anywhere, Node: Anywhere},
	}}
	a, err := NewInjector(plan, 42, cfg2x4())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(plan, 42, cfg2x4())
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Faults(), b.Faults()
	if !reflect.DeepEqual(fa, fb) {
		t.Fatalf("same seed resolved differently:\n%+v\n%+v", fa, fb)
	}
	// A different seed must be able to move the draw (checked over a few
	// seeds so the test does not hinge on one collision).
	moved := false
	for seed := int64(1); seed <= 8 && !moved; seed++ {
		c, err := NewInjector(plan, seed, cfg2x4())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fa, c.Faults()) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("seed has no effect on fault resolution")
	}
}

func TestResolutionShapes(t *testing.T) {
	in, err := NewInjector(Plan{Faults: []Spec{
		{Kind: KindRankCrash, Rank: Anywhere, Node: Anywhere},
		{Kind: KindNodeCrash, Rank: Anywhere, Node: 1},
		{Kind: KindNICDegrade, Rank: Anywhere, Node: 0},
	}}, 7, cfg2x4())
	if err != nil {
		t.Fatal(err)
	}
	fs := in.Faults()
	crash, node, nic := fs[0], fs[1], fs[2]
	if len(crash.Ranks) != 1 || crash.Ranks[0] < 0 || crash.Ranks[0] >= 8 {
		t.Fatalf("rank crash resolved to %v", crash.Ranks)
	}
	if crash.TriggerStep < 2 || crash.TriggerStep > 3 {
		t.Fatalf("default step draw %d outside [2,3]", crash.TriggerStep)
	}
	if want := []int{4, 5, 6, 7}; !reflect.DeepEqual(node.Ranks, want) {
		t.Fatalf("node crash ranks = %v, want %v", node.Ranks, want)
	}
	if nic.Ranks != nil || nic.Factor != 8 {
		t.Fatalf("nic fault resolved to ranks=%v factor=%g", nic.Ranks, nic.Factor)
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Spec{
		{Kind: "meteor-strike"},
		{Kind: KindRankCrash, Rank: 99, Node: Anywhere},
		{Kind: KindNodeCrash, Rank: Anywhere, Node: 5},
		{Kind: KindNICDegrade, Rank: Anywhere, Node: 0, Factor: 0.5},
		{Kind: KindRankCrash, Rank: 0, Node: Anywhere, MinStep: 9, MaxStep: 3},
		{Kind: KindRankCrash, Rank: 0, Node: Anywhere, At: -time.Second},
		// Non-fatal mode only makes sense for crash kinds.
		{Kind: KindNICDegrade, Rank: Anywhere, Node: 0, NonFatal: true},
	}
	for _, s := range bad {
		if _, err := NewInjector(Plan{Faults: []Spec{s}}, 1, cfg2x4()); err == nil {
			t.Errorf("invalid spec %+v accepted", s)
		}
	}
	// CrashModes summarizes the armed crash faults for launch validation.
	inj, err := NewInjector(Plan{Faults: []Spec{
		{Kind: KindRankCrash, Rank: 0, Node: Anywhere, Step: 2, NonFatal: true},
		{Kind: KindNodeCrash, Rank: Anywhere, Node: 0, Step: 3},
		{Kind: KindNICDegrade, Rank: Anywhere, Node: 0},
	}}, 1, cfg2x4())
	if err != nil {
		t.Fatal(err)
	}
	if fatal, nonFatal := inj.CrashModes(); !fatal || !nonFatal {
		t.Errorf("CrashModes = (%v, %v), want (true, true)", fatal, nonFatal)
	}
}

func TestCrashAtFiresOnceAndKillsCoVictims(t *testing.T) {
	in, err := NewInjector(Plan{Faults: []Spec{
		{Kind: KindNodeCrash, Rank: Anywhere, Node: 0, Step: 5},
	}}, 1, cfg2x4())
	if err != nil {
		t.Fatal(err)
	}
	if _, dead, _ := in.CrashAt(0, 4, 0); dead {
		t.Fatal("fault fired before its trigger step")
	}
	if _, dead, _ := in.CrashAt(7, 100, 0); dead {
		t.Fatal("fault killed a rank on the healthy node")
	}
	f, dead, first := in.CrashAt(2, 5, 0)
	if !dead || !first || f == nil {
		t.Fatalf("trigger rank: dead=%v first=%v", dead, first)
	}
	// Co-victims die, but do not re-trigger; the trigger rank itself dies
	// again without re-triggering (restart-leg replay of the step).
	for _, r := range []int{0, 1, 2, 3} {
		if _, dead, first := in.CrashAt(r, 6, 0); !dead || first {
			t.Fatalf("rank %d after fire: dead=%v first=%v", r, dead, first)
		}
	}
	// A new leg (the recovered job) sees the fault as spent: the replayed
	// trigger step must not re-kill anyone.
	in.BeginLeg()
	for _, r := range []int{0, 1, 2, 3} {
		if _, dead, _ := in.CrashAt(r, 100, 0); dead {
			t.Fatalf("spent fault killed rank %d on a new leg", r)
		}
	}
}

func TestVirtualTimeTrigger(t *testing.T) {
	in, err := NewInjector(Plan{Faults: []Spec{
		{Kind: KindRankCrash, Rank: 3, Node: Anywhere, At: time.Millisecond},
	}}, 1, cfg2x4())
	if err != nil {
		t.Fatal(err)
	}
	if _, dead, _ := in.CrashAt(3, 50, simnet.Time(time.Millisecond)-1); dead {
		t.Fatal("virtual-time fault fired early")
	}
	if _, dead, first := in.CrashAt(3, 51, simnet.Time(time.Millisecond)); !dead || !first {
		t.Fatal("virtual-time fault did not fire at its trigger")
	}
}

func TestArmNetworkDegradesTransfers(t *testing.T) {
	cfg := cfg2x4()
	cfg.JitterFrac = 0
	net, err := simnet.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const at = simnet.Time(1e6)
	healthy := net.Transfer(0, 4, 1<<20, 0)
	in, err := NewInjector(Plan{Faults: []Spec{
		{Kind: KindNICDegrade, Rank: Anywhere, Node: 0, Factor: 10, At: time.Duration(at)},
	}}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in.ArmNetwork(net)
	// Before the trigger the NIC is healthy; after it, the same transfer
	// serializes ten times slower. Reset clears the congestion bookkeeping
	// between probes so each one sees an idle network.
	net.Reset()
	before := net.Transfer(0, 4, 1<<20, 0)
	if before != healthy {
		t.Fatalf("pre-trigger transfer changed: %v vs %v", before, healthy)
	}
	net.Reset()
	afterStart := at + 1
	slow := net.Transfer(0, 4, 1<<20, afterStart)
	fast := healthy - 0 // healthy transfer duration from t=0
	if slowDur := slow - afterStart; slowDur < 5*fast {
		t.Fatalf("degraded transfer took %v, healthy %v — degradation not applied", slowDur, fast)
	}
}
