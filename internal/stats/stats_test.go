package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 3}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{5, 1, 3}
	Median(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
	if StdDev([]float64{1}) != 0 {
		t.Fatal("StdDev of singleton must be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("P25 = %v", got)
	}
}

func TestOverheadPct(t *testing.T) {
	if got := OverheadPct(100, 110); got != 10 {
		t.Fatalf("OverheadPct = %v, want 10", got)
	}
	// A missing baseline must be visibly undefined, not a fake perfect
	// score: 0% would read as "no overhead".
	if got := OverheadPct(0, 10); !math.IsNaN(got) {
		t.Fatalf("OverheadPct(0, 10) = %v, want NaN", got)
	}
	if got := OverheadPct(200, 190); got != -5 {
		t.Fatalf("negative overhead = %v, want -5", got)
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(12.34); got != "12.3%" {
		t.Fatalf("FormatPct(12.34) = %q", got)
	}
	if got := FormatPct(OverheadPct(0, 10)); got != "n/a" {
		t.Fatalf("FormatPct(NaN) = %q, want n/a", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Median != 3 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.N != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestEmptyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"median":     func() { Median(nil) },
		"mean":       func() { Mean(nil) },
		"min":        func() { Min(nil) },
		"max":        func() { Max(nil) },
		"percentile": func() { Percentile(nil, 50) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: median lies between min and max, and is order-invariant.
func TestMedianProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Median(xs)
		if m < Min(xs) || m > Max(xs) {
			return false
		}
		shuffled := append([]float64(nil), xs...)
		sort.Sort(sort.Reverse(sort.Float64Slice(shuffled)))
		return Median(shuffled) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
