// Package stats provides the small statistical toolkit the experiment
// protocol of Section 5 needs: the paper reports medians of 5 repetitions
// for the latency sweeps of Figures 2-4 and 6, adds standard deviations
// for Figure 5's error bars, and quotes relative overheads in its in-text
// claims (OverheadPct). Both internal/harness and the internal/scenario
// matrix engine aggregate repetitions through Summarize.
//
// Stats sits beside the README's layer diagram, not in it: the figure
// harness and the scenario engine aggregate repetitions through it, and
// the stack column itself never calls it.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs (the mean of the middle pair for even
// lengths). It panics on empty input, which is always a harness bug.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	lo, hi := s[mid-1], s[mid]
	// Halved-sum form: lo+(hi-lo)/2 overflows when lo and hi have opposite
	// signs and huge magnitudes, (lo+hi)/2 when they share a sign; halving
	// each term first overflows in neither case and stays within [lo, hi].
	return lo/2 + hi/2
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// for samples smaller than 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min and Max return the extrema.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: min of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: max of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) by linear interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// OverheadPct returns the relative overhead of measured vs baseline in
// percent: 100*(measured-baseline)/baseline. A zero (missing) baseline
// yields NaN: "overhead relative to nothing" is undefined, and returning
// 0 would be indistinguishable from a measured perfect score. Render
// with FormatPct, which spells the NaN as "n/a".
func OverheadPct(baseline, measured float64) float64 {
	if baseline == 0 {
		return math.NaN()
	}
	return 100 * (measured - baseline) / baseline
}

// FormatPct renders an overhead percentage for tables and notes, "n/a"
// when the value is undefined (NaN).
func FormatPct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", v)
}

// Summary aggregates a repeated measurement.
type Summary struct {
	Median, Mean, StdDev, Min, Max float64
	N                              int
}

// Summarize computes all the summary statistics at once.
func Summarize(xs []float64) Summary {
	return Summary{
		Median: Median(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		N:      len(xs),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("median=%.3f mean=%.3f sd=%.3f n=%d", s.Median, s.Mean, s.StdDev, s.N)
}
