package dmtcp

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/simnet"
)

// runAgents drives n agents through `steps` safe points with the given
// per-rank serializer, returning each rank's decisions.
func runAgents(t *testing.T, c *Coordinator, n, steps int, plugin Plugin) [][]Decision {
	t.Helper()
	out := make([][]Decision, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			a := c.NewAgent(r)
			for s := 0; s < steps; s++ {
				d, err := a.SafePoint(func() ([]byte, error) {
					return []byte(fmt.Sprintf("rank%d-step%d", r, s)), nil
				}, plugin)
				if err != nil {
					t.Errorf("rank %d step %d: %v", r, s, err)
					return
				}
				out[r] = append(out[r], d)
				if d == DecisionExit {
					return
				}
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("agents timed out")
	}
	return out
}

func newWorld(t *testing.T, n int) *fabric.World {
	t.Helper()
	w, err := fabric.NewWorld(simnet.SingleNode(n))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestSafePointWithoutRequest(t *testing.T) {
	w := newWorld(t, 4)
	c := NewCoordinator(w, Meta{Impl: "mpich", Program: "p"})
	decisions := runAgents(t, c, 4, 3, NopPlugin{})
	for r, ds := range decisions {
		for s, d := range ds {
			if d != DecisionContinue {
				t.Fatalf("rank %d step %d decision %v, want Continue", r, s, d)
			}
		}
	}
}

func TestCheckpointContinueWritesImages(t *testing.T) {
	w := newWorld(t, 3)
	c := NewCoordinator(w, Meta{Impl: "openmpi", StandardABI: true, Program: "prog"})
	dir := filepath.Join(t.TempDir(), "imgs")
	errCh := c.RequestCheckpoint(dir, false)
	decisions := runAgents(t, c, 3, 2, NopPlugin{})
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	sawCkpt := false
	for _, ds := range decisions {
		for _, d := range ds {
			if d == DecisionCheckpointed {
				sawCkpt = true
			}
		}
	}
	if !sawCkpt {
		t.Fatal("no rank observed the checkpoint")
	}
	meta, err := ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumRanks != 3 || meta.Impl != "openmpi" || !meta.StandardABI || meta.Program != "prog" {
		t.Fatalf("meta = %+v", meta)
	}
	for r := 0; r < 3; r++ {
		img, err := ReadRankImage(dir, r)
		if err != nil {
			t.Fatal(err)
		}
		if img.Rank != r || len(img.ProgState) == 0 {
			t.Fatalf("rank image %d = %+v", r, img)
		}
		if string(img.ProgState) != fmt.Sprintf("rank%d-step0", r) {
			t.Fatalf("state = %q", img.ProgState)
		}
	}
}

func TestCheckpointExitStopsRanks(t *testing.T) {
	w := newWorld(t, 2)
	c := NewCoordinator(w, Meta{Impl: "mpich"})
	dir := filepath.Join(t.TempDir(), "imgs")
	errCh := c.RequestCheckpoint(dir, true)
	decisions := runAgents(t, c, 2, 5, NopPlugin{})
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	for r, ds := range decisions {
		if len(ds) != 1 || ds[0] != DecisionExit {
			t.Fatalf("rank %d decisions = %v, want one Exit", r, ds)
		}
	}
}

func TestDoubleRequestRejected(t *testing.T) {
	w := newWorld(t, 1)
	c := NewCoordinator(w, Meta{})
	_ = c.RequestCheckpoint(t.TempDir(), false)
	errCh2 := c.RequestCheckpoint(t.TempDir(), false)
	if err := <-errCh2; err == nil {
		t.Fatal("second concurrent request accepted")
	}
}

func TestAbortPending(t *testing.T) {
	w := newWorld(t, 1)
	c := NewCoordinator(w, Meta{})
	errCh := c.RequestCheckpoint(t.TempDir(), false)
	c.AbortPending(fmt.Errorf("job done"))
	if err := <-errCh; err == nil {
		t.Fatal("aborted request reported success")
	}
	// Coordinator is closed: further requests fail fast.
	if err := <-c.RequestCheckpoint(t.TempDir(), false); err == nil {
		t.Fatal("request after close accepted")
	}
}

func TestReadMetaMissing(t *testing.T) {
	if _, err := ReadMeta(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing meta read succeeded")
	}
	if _, err := ReadRankImage(t.TempDir(), 0); err == nil {
		t.Fatal("missing rank image read succeeded")
	}
}

// failingPlugin simulates a drain failure on one rank; the checkpoint must
// report failure to the requester but leave the job running.
type failingPlugin struct{ rank int }

func (p failingPlugin) PreCheckpoint() ([]byte, error) {
	if p.rank == 1 {
		return nil, fmt.Errorf("injected drain failure")
	}
	return []byte("ok"), nil
}

func (p failingPlugin) Resume() error { return nil }

func TestPluginFailurePropagates(t *testing.T) {
	w := newWorld(t, 2)
	c := NewCoordinator(w, Meta{})
	errCh := c.RequestCheckpoint(filepath.Join(t.TempDir(), "x"), false)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			a := c.NewAgent(r)
			// The failing rank gets an error from SafePoint; the healthy
			// rank completes the protocol.
			_, _ = a.SafePoint(func() ([]byte, error) { return nil, nil }, failingPlugin{rank: r})
		}(r)
	}
	wg.Wait()
	if err := <-errCh; err == nil {
		t.Fatal("plugin failure not reported to requester")
	}
}

func TestStepCounter(t *testing.T) {
	w := newWorld(t, 1)
	c := NewCoordinator(w, Meta{})
	a := c.NewAgent(0)
	if a.Step() != 0 {
		t.Fatal("fresh agent step != 0")
	}
	a.SetStep(41)
	if _, err := a.SafePoint(func() ([]byte, error) { return nil, nil }, NopPlugin{}); err != nil {
		t.Fatal(err)
	}
	if a.Step() != 42 {
		t.Fatalf("step = %d, want 42", a.Step())
	}
}
