// Package dmtcp reproduces the control plane of the DMTCP checkpointing
// platform: a coordinator that drives coordinated checkpoints across all
// ranks through a phased protocol, with plugin hooks for MPI-specific work
// (internal/mana registers as the plugin, exactly as MANA is a DMTCP
// plugin in the paper).
//
// The protocol runs at application safe points. Every rank calls
// Agent.SafePoint between program steps; the call is a consensus round:
// if any rank has observed a checkpoint request, all ranks enter the
// checkpoint phases together:
//
//	vote -> quiesce barrier -> plugin drain -> write images -> resume/exit
//
// Interrupting a rank blocked inside an MPI call — which real DMTCP does
// with signals and which Go cannot do to a goroutine — is replaced by the
// step-boundary consensus; see DESIGN.md for the substitution note.
//
// In the README's layer diagram DMTCP is the checkpointer-interposition
// entry of the bindings-and-shims row (Section 3 of the paper);
// internal/mana registers as its MPI plugin, exactly as MANA is a DMTCP
// plugin in the paper.
package dmtcp

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/fabric"
	"repro/internal/simnet"
)

// Meta describes a checkpoint image set; it is written once by rank 0 as
// meta.gob in the image directory.
type Meta struct {
	// NumRanks is the world size of the checkpointed job.
	NumRanks int
	// Impl is the MPI implementation name the job ran under at
	// checkpoint time.
	Impl string
	// ABI is the binding mode the job ran under ("native", "mukautuva",
	// "wi4mpi"); together with Impl and Ckpt it is the image's lineage.
	ABI string
	// Ckpt is the checkpointing package that wrote the images ("mana" or
	// "dmtcp"). Empty on images from before this field existed (treated as
	// "mana" by the restart path).
	Ckpt string
	// StandardABI records whether the job ran through the Mukautuva shim.
	// Only standard-ABI images may be restarted under a different
	// implementation — the paper's core claim as an invariant.
	StandardABI bool
	// Program is the registered program type name (for gob decoding).
	Program string
	// Step is the program step index at which the checkpoint was taken.
	Step uint64
	// NetSeed preserves the network jitter stream across restarts.
	NetSeed int64
}

// RankImage is one rank's checkpoint image (rank_NNN.img). ProgState and
// PluginBlob are opaque to DMTCP, mirroring how the real coordinator
// treats process memory and plugin data.
type RankImage struct {
	Rank       int
	Step       uint64
	Clock      int64 // virtual time at checkpoint
	ProgState  []byte
	PluginBlob []byte
}

// Plugin is the per-rank checkpoint participant (MANA implements this).
type Plugin interface {
	// PreCheckpoint quiesces and serializes the plugin's state. It runs
	// after the quiesce barrier, so every rank is inside the protocol.
	PreCheckpoint() ([]byte, error)
	// Resume runs after images are written when the job continues.
	Resume() error
}

// NopPlugin is the plugin used when no checkpointing package is loaded.
type NopPlugin struct{}

// PreCheckpoint returns an empty blob.
func (NopPlugin) PreCheckpoint() ([]byte, error) { return nil, nil }

// Resume does nothing.
func (NopPlugin) Resume() error { return nil }

// Decision tells the runner what to do after a safe point.
type Decision int

// Safe point outcomes.
const (
	DecisionContinue     Decision = iota // no checkpoint happened; keep running
	DecisionCheckpointed                 // checkpoint written; keep running
	DecisionExit                         // checkpoint written; stop the job
)

type ckptRequest struct {
	dir  string
	exit bool
	errs chan error
}

// Periodic configures automatic checkpoints: one image set lands in
// PeriodicDir(Dir, step) at every step divisible by Every. Because all
// ranks pass the same safe points, every rank decides a periodic
// checkpoint is due locally, with no extra vote; the result is the image
// lineage a recovery driver restarts from after a failure (see
// core.RunWithRecovery and LatestComplete).
type Periodic struct {
	Dir   string
	Every uint64
}

// Coordinator orchestrates checkpoints for one world. It is shared by all
// rank agents in-process, standing in for the DMTCP coordinator daemon.
type Coordinator struct {
	w    *fabric.World
	meta Meta

	mu       sync.Mutex
	req      *ckptRequest
	periodic Periodic
	closed   bool
}

// NewCoordinator builds a coordinator for a world. meta supplies the
// stack facts recorded into every checkpoint.
func NewCoordinator(w *fabric.World, meta Meta) *Coordinator {
	meta.NumRanks = w.Size()
	return &Coordinator{w: w, meta: meta}
}

// RequestCheckpoint asks the job to checkpoint into dir at its next safe
// point. The returned channel yields one error (nil on success) when the
// checkpoint completes. With exit=true the job stops after checkpointing.
func (c *Coordinator) RequestCheckpoint(dir string, exit bool) <-chan error {
	errs := make(chan error, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		errs <- fmt.Errorf("dmtcp: job already finished")
		return errs
	}
	if c.req != nil {
		errs <- fmt.Errorf("dmtcp: checkpoint already in progress")
		return errs
	}
	c.req = &ckptRequest{dir: dir, exit: exit, errs: errs}
	return errs
}

// SetPeriodic installs the periodic checkpoint schedule. Call before the
// job's ranks start taking safe points.
func (c *Coordinator) SetPeriodic(p Periodic) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.periodic = p
}

func (c *Coordinator) periodicCfg() Periodic {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.periodic
}

// pendingFlag is read during the safe-point vote.
func (c *Coordinator) pendingFlag() byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.req != nil {
		return 1
	}
	return 0
}

func (c *Coordinator) current() *ckptRequest {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.req
}

// AbortPending fails any in-flight checkpoint request; the job runner
// calls it when the application exits before reaching another safe point.
func (c *Coordinator) AbortPending(err error) {
	c.mu.Lock()
	req := c.req
	c.req = nil
	c.closed = true
	c.mu.Unlock()
	if req != nil {
		req.errs <- err //mpivet:allow parksafe -- errs has capacity 1 and req is claimed under c.mu, so exactly one resolver ever sends
	}
}

// finish completes the in-flight request (rank 0 only).
func (c *Coordinator) finish(err error) {
	c.mu.Lock()
	req := c.req
	c.req = nil
	c.mu.Unlock()
	if req != nil {
		req.errs <- err //mpivet:allow parksafe -- errs has capacity 1 and req is claimed under c.mu, so exactly one resolver ever sends
	}
}

// Agent is one rank's attachment to the coordinator.
type Agent struct {
	c     *Coordinator
	rank  int
	clock *simnet.Clock
	step  uint64
}

// NewAgent attaches rank to the coordinator.
func (c *Coordinator) NewAgent(rank int) *Agent {
	return &Agent{c: c, rank: rank, clock: c.w.Endpoint(rank).Clock()}
}

// Step returns the number of safe points this agent has passed.
func (a *Agent) Step() uint64 { return a.step }

// SetStep is used on restart to resume the step counter.
func (a *Agent) SetStep(s uint64) { a.step = s }

// SafePoint is the per-step consensus + checkpoint driver. The runner
// calls it between program steps with a serializer for the rank's program
// state. All ranks call SafePoint the same number of times.
func (a *Agent) SafePoint(serialize func() ([]byte, error), plugin Plugin) (Decision, error) {
	a.step++
	// Vote round: does anyone see a pending request?
	votes := a.c.w.OOB().Exchange(a.rank, []byte{a.c.pendingFlag()})
	if votes == nil {
		return DecisionContinue, fmt.Errorf("dmtcp: world closed during vote")
	}
	any := false
	for _, v := range votes {
		if len(v) > 0 && v[0] == 1 {
			any = true
		}
	}
	if !any {
		// No explicit request anywhere; a due periodic checkpoint still
		// runs. Every rank computes the same verdict (same step, same
		// schedule), so the quiesce/drain barriers inside runCheckpoint
		// line up without an extra vote. An explicit request landing on a
		// periodic step takes priority and the periodic image is skipped
		// — the explicit image captures the same state.
		per := a.c.periodicCfg()
		if per.Every == 0 || a.step%per.Every != 0 {
			return DecisionContinue, nil
		}
		req := &ckptRequest{dir: PeriodicDir(per.Dir, a.step)}
		if err := a.runCheckpoint(req, serialize, plugin); err != nil {
			return DecisionContinue, err
		}
		if perr := plugin.Resume(); perr != nil {
			return DecisionCheckpointed, perr
		}
		return DecisionCheckpointed, nil
	}
	req := a.c.current()
	if req == nil {
		// finished between vote and read — cannot happen (cleared only
		// after the completion barrier below), but fail loudly if it does.
		return DecisionContinue, fmt.Errorf("dmtcp: vote without request")
	}
	err := a.runCheckpoint(req, serialize, plugin)
	// Completion barrier, then rank 0 resolves the request. A second
	// barrier keeps any rank from re-voting before the request clears.
	failed := byte(0)
	if err != nil {
		failed = 1
	}
	outcome := a.c.w.OOB().Exchange(a.rank, []byte{failed})
	if a.rank == 0 {
		var firstErr error
		for r, v := range outcome {
			if len(v) > 0 && v[0] == 1 {
				firstErr = fmt.Errorf("dmtcp: checkpoint failed on rank %d (first)", r)
				break
			}
		}
		if err != nil {
			firstErr = err
		}
		a.c.finish(firstErr)
	}
	a.c.w.OOB().Exchange(a.rank, nil)
	if err != nil {
		return DecisionContinue, err
	}
	if req.exit {
		return DecisionExit, nil
	}
	if perr := plugin.Resume(); perr != nil {
		return DecisionCheckpointed, perr
	}
	return DecisionCheckpointed, nil
}

// runCheckpoint executes the drain + write phases for one rank. A rank
// that fails locally must still participate in every barrier, or it would
// strand its peers mid-protocol; the first error is carried through and
// returned at the end.
func (a *Agent) runCheckpoint(req *ckptRequest, serialize func() ([]byte, error), plugin Plugin) error {
	var firstErr error
	// Quiesce barrier: every rank is now inside the protocol, so no new
	// application MPI traffic can be injected while the plugin drains.
	if a.c.w.OOB().Exchange(a.rank, nil) == nil {
		return fmt.Errorf("dmtcp: world closed during quiesce")
	}
	var blob []byte
	if b, err := plugin.PreCheckpoint(); err != nil {
		firstErr = fmt.Errorf("dmtcp: plugin drain on rank %d: %w", a.rank, err)
	} else {
		blob = b
	}
	// Drain-complete barrier: images must not be written while a peer is
	// still pulling messages out of the fabric.
	if a.c.w.OOB().Exchange(a.rank, nil) == nil {
		return fmt.Errorf("dmtcp: world closed during drain barrier")
	}
	if firstErr != nil {
		return firstErr
	}
	state, err := serialize()
	if err != nil {
		return fmt.Errorf("dmtcp: serializing rank %d: %w", a.rank, err)
	}
	img := RankImage{
		Rank:       a.rank,
		Step:       a.step,
		Clock:      int64(a.clock.Now()),
		ProgState:  state,
		PluginBlob: blob,
	}
	if err := writeRankImage(req.dir, img); err != nil {
		return err
	}
	if a.rank == 0 {
		meta := a.c.meta
		meta.Step = a.step
		if err := writeMeta(req.dir, meta); err != nil {
			return err
		}
	}
	return nil
}

// --- image file I/O ---

func rankImagePath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("rank_%04d.img", rank))
}

func metaPath(dir string) string { return filepath.Join(dir, "meta.gob") }

func writeRankImage(dir string, img RankImage) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dmtcp: creating image dir: %w", err)
	}
	f, err := os.Create(rankImagePath(dir, img.Rank))
	if err != nil {
		return fmt.Errorf("dmtcp: creating rank image: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(img); err != nil {
		return fmt.Errorf("dmtcp: encoding rank image: %w", err)
	}
	return nil
}

func writeMeta(dir string, meta Meta) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dmtcp: creating image dir: %w", err)
	}
	f, err := os.Create(metaPath(dir))
	if err != nil {
		return fmt.Errorf("dmtcp: creating meta: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(meta); err != nil {
		return fmt.Errorf("dmtcp: encoding meta: %w", err)
	}
	return nil
}

// PeriodicDir returns the image directory of the periodic checkpoint
// taken at the given step under root.
func PeriodicDir(root string, step uint64) string {
	return filepath.Join(root, fmt.Sprintf("step_%06d", step))
}

// LatestComplete scans root for periodic image sets and returns the most
// recent complete one: meta present and decodable, the expected rank
// count (nranks; 0 accepts any), and every rank's image file on disk. A
// checkpoint interrupted by the failure it was meant to survive leaves a
// partial directory, which the scan skips — recovery falls back to the
// image before it.
func LatestComplete(root string, nranks int) (dir string, meta Meta, ok bool) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return "", Meta{}, false
	}
	// ReadDir sorts ascending; walk backwards for the newest step first.
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "step_") {
			continue
		}
		d := filepath.Join(root, e.Name())
		m, err := ReadMeta(d)
		if err != nil || (nranks > 0 && m.NumRanks != nranks) {
			continue
		}
		complete := true
		for r := 0; r < m.NumRanks; r++ {
			if _, err := os.Stat(rankImagePath(d, r)); err != nil {
				complete = false
				break
			}
		}
		if complete {
			return d, m, true
		}
	}
	return "", Meta{}, false
}

// ReadMeta loads the image set descriptor from a checkpoint directory.
func ReadMeta(dir string) (Meta, error) {
	var meta Meta
	f, err := os.Open(metaPath(dir))
	if err != nil {
		return meta, fmt.Errorf("dmtcp: opening meta: %w", err)
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(&meta); err != nil {
		return meta, fmt.Errorf("dmtcp: decoding meta: %w", err)
	}
	return meta, nil
}

// ReadRankImage loads one rank's image from a checkpoint directory.
func ReadRankImage(dir string, rank int) (RankImage, error) {
	var img RankImage
	f, err := os.Open(rankImagePath(dir, rank))
	if err != nil {
		return img, fmt.Errorf("dmtcp: opening rank image: %w", err)
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(&img); err != nil {
		return img, fmt.Errorf("dmtcp: decoding rank image: %w", err)
	}
	if img.Rank != rank {
		return img, fmt.Errorf("dmtcp: image rank %d does not match file for rank %d", img.Rank, rank)
	}
	return img, nil
}
