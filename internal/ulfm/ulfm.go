// Package ulfm is the representation-agnostic half of the User-Level
// Fault Mitigation subsystem: the failure/revocation/acknowledgement
// bookkeeping every simulated MPI implementation shares, factored out of
// the runtime the way internal/mpicore factors out the progress engine.
//
// ULFM (the MPI Forum's fault-tolerance working-group interface, shipped
// as MPIX_* by MPICH and Open MPI alike) is the *other* half of
// fault-tolerant MPI next to checkpoint/restart: instead of resuming an
// image, the survivors acknowledge the failure (MPIX_Comm_failure_ack),
// revoke the damaged communicator (MPIX_Comm_revoke), shrink it to a
// survivors-only one (MPIX_Comm_shrink), and agree on how to continue
// (MPIX_Comm_agree). The paper's ABI argument bites hardest exactly here:
// each implementation numbers the new MPIX error classes differently, so
// an application that survives a failure under one stack cannot even
// compare error codes under another without translation (compare
// FTHP-MPI, arXiv:2504.09989, and the MPI ABI standardization effort,
// arXiv:2308.11214).
//
// This package owns the pure state and wire payloads:
//
//   - Tracker: one rank's view of which world ranks have failed, which
//     communicator context ids are revoked, and which failures have been
//     acknowledged per communicator;
//   - Bitmap: the fixed-width failed-set exchanged by the fault-tolerant
//     agreement rounds (internal/mpicore's CommAgree/CommShrink);
//   - the control-plane payload codecs for the fabric's failure notice
//     and the runtime's revoke notice.
//
// The communicating half — sweeping the progress engine's queues,
// running the agreement rounds, deriving the shrunken context id — lives
// in internal/mpicore, which embeds a Tracker per rank. The ABI surfaces
// (internal/mpich, internal/openmpi, internal/stdabi) expose the five
// MPIX calls in their own constant vocabularies, and the shims
// (internal/mukautuva, internal/wi4mpi) translate the error classes in
// both directions.
//
// In the README's layer diagram ulfm is its own box beside the shared
// runtime: state only, embedded per rank by mpicore. It is the in-place
// counterpart to the checkpoint/restart recovery of Sections 3 and 5.3;
// docs/recovery.md compares both with the replication mode side by side.
package ulfm

import "hash/fnv"

// Control-plane tags carried by fabric.ProtoCtrl envelopes. They live
// below zero so they can never collide with application tags (validated
// non-negative) or collective-reserved tag blocks (always positive).
const (
	// CtrlFailure announces fail-stop rank deaths. The payload is
	// EncodeRanks of the dead world ranks; the fabric broadcasts it to
	// every surviving endpoint at kill time, which is what wakes peers
	// blocked on the dead ranks' traffic.
	CtrlFailure int32 = -100
	// CtrlRevoke announces a communicator revocation. The envelope's CID
	// names the revoked communicator; there is no payload.
	CtrlRevoke int32 = -101
)

// EncodeRanks packs a world-rank list into a control payload.
func EncodeRanks(ranks []int) []byte {
	out := make([]byte, 0, 4*len(ranks))
	for _, r := range ranks {
		u := uint32(r)
		out = append(out, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return out
}

// DecodeRanks unpacks a control payload into a world-rank list. Trailing
// partial words (a malformed payload) are ignored.
func DecodeRanks(payload []byte) []int {
	n := len(payload) / 4
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		b := payload[i*4:]
		out = append(out, int(uint32(b[0])|uint32(b[1])<<8|uint32(b[2])<<16|uint32(b[3])<<24))
	}
	return out
}

// Bitmap is a fixed-width set of world ranks, the unit the agreement
// rounds exchange: every participant contributes its local failed set
// and folds in everyone else's, converging on a common view.
type Bitmap []byte

// NewBitmap returns an empty bitmap wide enough for n ranks.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+7)/8) }

// Set marks rank r.
func (b Bitmap) Set(r int) {
	if r >= 0 && r/8 < len(b) {
		b[r/8] |= 1 << (r % 8)
	}
}

// Has reports whether rank r is marked.
func (b Bitmap) Has(r int) bool {
	return r >= 0 && r/8 < len(b) && b[r/8]&(1<<(r%8)) != 0
}

// Or folds another bitmap in (union). Width mismatches fold the common
// prefix, so a malformed contribution can never widen the set.
func (b Bitmap) Or(other Bitmap) {
	for i := 0; i < len(b) && i < len(other); i++ {
		b[i] |= other[i]
	}
}

// Hash digests the bitmap into an ordinal perturbation: every member of
// a shrink agreement mixes it into the derived context id, so two
// shrinks of the same parent after different failures can never alias.
func (b Bitmap) Hash() uint32 {
	h := fnv.New32a()
	h.Write(b)
	return h.Sum32()
}

// Clone copies the bitmap.
func (b Bitmap) Clone() Bitmap { return append(Bitmap(nil), b...) }

// Tracker is one rank's ULFM state. It is owned by the rank's runtime
// goroutine (like the progress engine's queues) and is not
// concurrency-safe by itself.
type Tracker struct {
	failed  map[int]bool
	revoked map[uint32]bool
	acked   map[uint32]map[int]bool
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		failed:  make(map[int]bool),
		revoked: make(map[uint32]bool),
		acked:   make(map[uint32]map[int]bool),
	}
}

// NoteFailed records world-rank deaths, returning true when at least one
// was news (callers sweep the progress queues exactly once per novelty).
func (t *Tracker) NoteFailed(ranks ...int) bool {
	news := false
	for _, r := range ranks {
		if !t.failed[r] {
			t.failed[r] = true
			news = true
		}
	}
	return news
}

// Failed reports whether world rank r is known dead.
func (t *Tracker) Failed(r int) bool { return t.failed[r] }

// FailedCount returns the number of known-dead ranks.
func (t *Tracker) FailedCount() int { return len(t.failed) }

// FailedBitmap renders the known-failed set over a world of n ranks.
func (t *Tracker) FailedBitmap(n int) Bitmap {
	b := NewBitmap(n)
	for r := range t.failed {
		b.Set(r)
	}
	return b
}

// Revoke marks a context id revoked, returning true when it was news.
func (t *Tracker) Revoke(cid uint32) bool {
	if t.revoked[cid] {
		return false
	}
	t.revoked[cid] = true
	return true
}

// Revoked reports whether a context id has been revoked.
func (t *Tracker) Revoked(cid uint32) bool { return t.revoked[cid] }

// Ack acknowledges, for the communicator identified by cid, every
// currently-known failure among the given member world ranks — the
// MPIX_Comm_failure_ack contract: acknowledged failures stop poisoning
// wildcard receives, and later failures start a fresh ack cycle.
func (t *Tracker) Ack(cid uint32, members []int) {
	set := t.acked[cid]
	if set == nil {
		set = make(map[int]bool)
		t.acked[cid] = set
	}
	for _, w := range members {
		if t.failed[w] {
			set[w] = true
		}
	}
}

// AckedRanks returns the acknowledged-failed members of cid, in the
// order given (the MPIX_Comm_failure_get_acked group order).
func (t *Tracker) AckedRanks(cid uint32, members []int) []int {
	set := t.acked[cid]
	var out []int
	for _, w := range members {
		if set[w] {
			out = append(out, w)
		}
	}
	return out
}

// HasUnacked reports whether any member world rank is dead but not yet
// acknowledged on cid — the condition under which wildcard-source
// receives must raise the proc-failed error instead of blocking forever.
func (t *Tracker) HasUnacked(cid uint32, members []int) bool {
	set := t.acked[cid]
	for _, w := range members {
		if t.failed[w] && !set[w] {
			return true
		}
	}
	return false
}

// Forget drops a freed communicator's revocation and ack state.
func (t *Tracker) Forget(cid uint32) {
	delete(t.revoked, cid)
	delete(t.acked, cid)
}
