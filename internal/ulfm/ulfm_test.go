package ulfm

import (
	"reflect"
	"testing"
)

func TestRankCodecRoundTrip(t *testing.T) {
	for _, ranks := range [][]int{nil, {0}, {3, 1, 47}, {0, 1, 2, 3, 4, 5, 6, 7}} {
		got := DecodeRanks(EncodeRanks(ranks))
		if len(ranks) == 0 {
			if len(got) != 0 {
				t.Fatalf("decode(encode(%v)) = %v", ranks, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, ranks) {
			t.Fatalf("decode(encode(%v)) = %v", ranks, got)
		}
	}
	// Malformed trailing bytes are dropped, not misread.
	if got := DecodeRanks(append(EncodeRanks([]int{5}), 0xff, 0xff)); !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("truncated payload decoded to %v", got)
	}
}

func TestBitmap(t *testing.T) {
	b := NewBitmap(48)
	if len(b) != 6 {
		t.Fatalf("48-rank bitmap is %d bytes, want 6", len(b))
	}
	b.Set(0)
	b.Set(9)
	b.Set(47)
	for _, r := range []int{0, 9, 47} {
		if !b.Has(r) {
			t.Errorf("rank %d not set", r)
		}
	}
	for _, r := range []int{1, 8, 46, 48, -1} {
		if b.Has(r) {
			t.Errorf("rank %d spuriously set", r)
		}
	}
	o := NewBitmap(48)
	o.Set(13)
	b.Or(o)
	if !b.Has(13) || !b.Has(9) {
		t.Error("union lost a member")
	}
	// Hash is a pure function of contents and differs across sets.
	if b.Hash() != b.Clone().Hash() {
		t.Error("hash not stable under clone")
	}
	if b.Hash() == o.Hash() {
		t.Error("distinct sets hash equal")
	}
	// A wider (malformed) contribution cannot widen the receiver.
	short := NewBitmap(8)
	short.Or(b)
	if len(short) != 1 {
		t.Errorf("union widened the receiver to %d bytes", len(short))
	}
}

func TestTrackerFailures(t *testing.T) {
	tr := NewTracker()
	if tr.Failed(3) || tr.FailedCount() != 0 {
		t.Fatal("fresh tracker knows failures")
	}
	if !tr.NoteFailed(3, 5) {
		t.Fatal("first failure report was not news")
	}
	if tr.NoteFailed(3) {
		t.Fatal("repeat failure report was news")
	}
	if !tr.NoteFailed(3, 7) {
		t.Fatal("partially fresh report was not news")
	}
	if !tr.Failed(3) || !tr.Failed(5) || !tr.Failed(7) || tr.Failed(0) {
		t.Fatal("failure set wrong")
	}
	bm := tr.FailedBitmap(8)
	for r := 0; r < 8; r++ {
		if bm.Has(r) != tr.Failed(r) {
			t.Errorf("bitmap disagrees with tracker at rank %d", r)
		}
	}
}

func TestTrackerRevoke(t *testing.T) {
	tr := NewTracker()
	if tr.Revoked(9) {
		t.Fatal("fresh cid revoked")
	}
	if !tr.Revoke(9) {
		t.Fatal("first revoke was not news")
	}
	if tr.Revoke(9) {
		t.Fatal("second revoke was news")
	}
	if !tr.Revoked(9) {
		t.Fatal("revocation lost")
	}
	tr.Forget(9)
	if tr.Revoked(9) {
		t.Fatal("Forget kept the revocation")
	}
}

func TestTrackerAckCycle(t *testing.T) {
	tr := NewTracker()
	members := []int{0, 2, 4, 6}
	tr.NoteFailed(4)
	if !tr.HasUnacked(1, members) {
		t.Fatal("unacked failure not reported")
	}
	tr.Ack(1, members)
	if tr.HasUnacked(1, members) {
		t.Fatal("acked failure still poisons")
	}
	if got := tr.AckedRanks(1, members); !reflect.DeepEqual(got, []int{4}) {
		t.Fatalf("acked ranks = %v, want [4]", got)
	}
	// Acks are per-communicator.
	if !tr.HasUnacked(2, members) {
		t.Fatal("ack leaked across communicators")
	}
	// A later failure reopens the cycle on the already-acked comm.
	tr.NoteFailed(6)
	if !tr.HasUnacked(1, members) {
		t.Fatal("new failure hidden by the old ack")
	}
	tr.Ack(1, members)
	if got := tr.AckedRanks(1, members); !reflect.DeepEqual(got, []int{4, 6}) {
		t.Fatalf("acked ranks = %v, want [4 6]", got)
	}
	// Failures outside the membership never enter the comm's ack view.
	tr.NoteFailed(9)
	if tr.HasUnacked(1, members) {
		t.Fatal("non-member failure poisons the comm")
	}
}
