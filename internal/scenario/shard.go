package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard selects a deterministic 1/Count slice of an enumerated spec
// list, so N independent processes — CI jobs, machines, terminals — can
// each run a disjoint subset of the same matrix and merge the partial
// reports afterwards (MergeReports). The zero value means "unsharded":
// every spec is selected.
//
// The partition is round-robin over the deduplicated, enumeration-
// ordered spec list (spec i goes to shard i mod Count), which spreads
// the expensive cells — restart pairings and fault recoveries cluster
// together in enumeration order — roughly evenly across shards. Two
// processes sharding the same spec list with the same Count therefore
// always agree on who owns which cell, with no coordination.
type Shard struct {
	// Index is the 0-based shard number, in [0, Count).
	Index int
	// Count is the total number of shards; 0 or 1 means unsharded.
	Count int
}

// Validate reports why the shard selector is unusable.
func (sh Shard) Validate() error {
	if sh.Count < 0 {
		return fmt.Errorf("scenario: shard count %d is negative", sh.Count)
	}
	if sh.Count <= 1 {
		if sh.Index != 0 {
			return fmt.Errorf("scenario: shard index %d without a shard count", sh.Index)
		}
		return nil
	}
	if sh.Index < 0 || sh.Index >= sh.Count {
		return fmt.Errorf("scenario: shard index %d out of range [0, %d)", sh.Index, sh.Count)
	}
	return nil
}

// normalize maps every selector to a usable one: an unsharded-ish zero
// or negative Count becomes the zero selector, and an out-of-range
// Index wraps modulo Count. Run normalizes rather than failing because
// it has no error channel; cmd-level flag parsing validates loudly
// first (see cmd/paperfigs -shard).
func (sh Shard) normalize() Shard {
	if sh.Count <= 1 {
		return Shard{}
	}
	sh.Index = ((sh.Index % sh.Count) + sh.Count) % sh.Count
	return sh
}

// sharded reports whether the selector actually partitions.
func (sh Shard) sharded() bool { return sh.normalize().Count > 1 }

// Select returns the specs this shard owns, preserving order. The
// shards of a list are pairwise disjoint and their union is the list:
// Select over Index 0..Count-1 yields every spec exactly once.
func (sh Shard) Select(specs []Spec) []Spec {
	sh = sh.normalize()
	if sh.Count <= 1 {
		return specs
	}
	var out []Spec
	for i, s := range specs {
		if i%sh.Count == sh.Index {
			out = append(out, s)
		}
	}
	return out
}

// ParseShard parses the "i/n" form of cmd-line shard selectors
// (0-based index, total count), validating the result. The whole
// string must be consumed: "1/4/8" and "1/4x" are rejected rather than
// silently running shard 1 of 4.
func ParseShard(s string) (Shard, error) {
	idx, count, found := strings.Cut(s, "/")
	if !found {
		return Shard{}, fmt.Errorf("scenario: shard selector %q is not i/n", s)
	}
	var sh Shard
	var err error
	if sh.Index, err = strconv.Atoi(idx); err != nil {
		return Shard{}, fmt.Errorf("scenario: shard selector %q is not i/n: %w", s, err)
	}
	if sh.Count, err = strconv.Atoi(count); err != nil {
		return Shard{}, fmt.Errorf("scenario: shard selector %q is not i/n: %w", s, err)
	}
	if sh.Count < 1 {
		return Shard{}, fmt.Errorf("scenario: shard selector %q has no shards", s)
	}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}
