package scenario

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// mapStore is the minimal in-memory Store, with operation counters so
// tests can see which tier a read was served from.
type mapStore struct {
	m          map[string]Result
	gets, puts atomic.Int32
	putErr     error
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string]Result)} }

func (s *mapStore) Get(hash string) (Result, bool) {
	s.gets.Add(1)
	res, ok := s.m[hash]
	return res, ok
}

func (s *mapStore) Put(hash string, res Result) error {
	s.puts.Add(1)
	if s.putErr != nil {
		return s.putErr
	}
	s.m[hash] = res
	return nil
}

// The directory cache is the Store archetype; the compiler holds it to
// the interface.
var _ Store = (*Cache)(nil)

func TestTieredReadThroughWriteBack(t *testing.T) {
	local, upstream := newMapStore(), newMapStore()
	st := Tiered(local, upstream)

	upstream.m["aa"] = Result{ID: "cell/a", Status: StatusPass}

	// First read falls through to upstream and writes back into local.
	res, ok := st.Get("aa")
	if !ok || res.ID != "cell/a" {
		t.Fatalf("Get = %+v, %v", res, ok)
	}
	if local.puts.Load() != 1 {
		t.Fatalf("upstream hit not written back to local (%d local puts)", local.puts.Load())
	}
	// Second read is served locally: upstream sees no new Get.
	before := upstream.gets.Load()
	if _, ok := st.Get("aa"); !ok {
		t.Fatal("write-back entry missed")
	}
	if upstream.gets.Load() != before {
		t.Fatal("local hit still consulted upstream")
	}

	// Put writes both tiers.
	if err := st.Put("bb", Result{ID: "cell/b", Status: StatusPass}); err != nil {
		t.Fatal(err)
	}
	if _, ok := local.m["bb"]; !ok {
		t.Fatal("Put skipped the local tier")
	}
	if _, ok := upstream.m["bb"]; !ok {
		t.Fatal("Put skipped the upstream tier")
	}

	// Misses everywhere are misses.
	if _, ok := st.Get("cc"); ok {
		t.Fatal("phantom hit")
	}
}

func TestTieredErrorDiscipline(t *testing.T) {
	local, upstream := newMapStore(), newMapStore()
	st := Tiered(local, upstream)

	// A failing local write-back must not turn an upstream hit into a
	// miss, and a failing local Put must not mask upstream success.
	local.putErr = fmt.Errorf("disk full")
	upstream.m["aa"] = Result{ID: "cell/a", Status: StatusPass}
	if _, ok := st.Get("aa"); !ok {
		t.Fatal("local write-back failure became an upstream miss")
	}
	if err := st.Put("bb", Result{ID: "cell/b", Status: StatusPass}); err != nil {
		t.Fatalf("local-tier failure surfaced from Put: %v", err)
	}

	// The upstream is the shared store; its Put failure is THE failure.
	local.putErr = nil
	upstream.putErr = fmt.Errorf("server gone")
	if err := st.Put("cc", Result{ID: "cell/c", Status: StatusPass}); err == nil {
		t.Fatal("upstream Put failure swallowed")
	}
}

func TestTieredNilCollapses(t *testing.T) {
	only := newMapStore()
	if st := Tiered(nil, only); st != Store(only) {
		t.Fatal("nil local did not collapse to upstream")
	}
	if st := Tiered(only, nil); st != Store(only) {
		t.Fatal("nil upstream did not collapse to local")
	}
}

// Options.Store takes precedence over CacheDir and serves cells without
// execution, exactly like the directory cache — the seam matrixd
// workers and tests plug into.
func TestRunUsesInjectedStore(t *testing.T) {
	var live atomic.Int32
	withStubRunner(t, func(s Spec, o Options) Result {
		live.Add(1)
		return Result{ID: s.ID(), Spec: s, Status: StatusPass, Reps: o.Reps}
	})
	st := newMapStore()
	o := Options{Parallel: 2, Reps: 1, Store: st}
	specs := DefaultMatrix().Enumerate()[:8]

	cold := Run(specs, o)
	if int(live.Load()) != len(specs) || cold.Provenance.Cached != 0 {
		t.Fatalf("cold: %d live, provenance %+v", live.Load(), cold.Provenance)
	}
	if len(st.m) != len(specs) {
		t.Fatalf("store holds %d entries after cold run, want %d", len(st.m), len(specs))
	}

	live.Store(0)
	warm := Run(specs, o)
	if live.Load() != 0 {
		t.Fatalf("warm run executed %d cells through an injected store", live.Load())
	}
	if warm.Provenance.Cached != len(specs) {
		t.Fatalf("warm provenance = %+v", warm.Provenance)
	}

	// Store wins over CacheDir when both are set: one store per run.
	live.Store(0)
	o.CacheDir = t.TempDir()
	Run(specs, o)
	if live.Load() != 0 {
		t.Fatal("CacheDir overrode the injected Store")
	}
}

// RunCell is the single-cell entry matrixd workers execute leases with:
// same defaults, same stamped hash, no shard or store interaction.
func TestRunCellMatchesRun(t *testing.T) {
	withStubRunner(t, richStubRunner)
	specs := DefaultMatrix().Enumerate()[:4]
	o := Options{Reps: 2, BaseSeed: 3}
	whole := Run(specs, o)
	for _, s := range specs {
		res := RunCell(s, o)
		if res.CellHash != CellHash(s, o) {
			t.Fatalf("RunCell(%s) stamped hash %s, want %s", s.ID(), res.CellHash, CellHash(s, o))
		}
		want := whole.Find(s.ID())
		res.WallMS, want.WallMS = 0, 0
		if fmt.Sprintf("%+v", res) != fmt.Sprintf("%+v", *want) {
			t.Fatalf("RunCell(%s) diverges from Run:\n cell: %+v\n run:  %+v", s.ID(), res, *want)
		}
	}
}
