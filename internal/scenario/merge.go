package scenario

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
)

// OptionsMismatchError is MergeReports' refusal to combine reports that
// ran under different experiment conditions. Every Options field that
// is serialized into the report — cluster shape (nodes, ranks_per_node),
// reps, the OSU sweep knobs (max_size, iters, warmup, iters_large),
// app_scale, timeout_ns, base_seed, ckpt_every and max_restarts — must
// match across all merged reports, because those fields determine every
// cell's result (they are exactly the fields CellHash folds into the
// cell identity). Fields excluded from report JSON — Parallel, Scratch,
// CacheDir, Shard — may differ freely: shard membership and pool width
// are how a sharded run differs from an unsharded one in the first
// place.
type OptionsMismatchError struct {
	// Field is the JSON name of the first differing Options field.
	Field string
	// Report is the index (in MergeReports argument order) of the report
	// that disagrees with report 0.
	Report int
	// A and B are report 0's and report Report's values for Field.
	A, B any
}

func (e *OptionsMismatchError) Error() string {
	return fmt.Sprintf("scenario: cannot merge reports: options field %q is %v in report 0 but %v in report %d",
		e.Field, e.A, e.B, e.Report)
}

// DuplicateCellError is MergeReports' refusal to combine reports whose
// cell sets overlap: shards of one run are disjoint by construction, so
// a duplicate ID means the inputs are not shards of the same run (or
// the same shard was passed twice), and silently picking one result
// would hide that.
type DuplicateCellError struct {
	// ID is the scenario ID present in more than one report.
	ID string
	// A and B are the indices of two reports that both carry ID.
	A, B int
}

func (e *DuplicateCellError) Error() string {
	return fmt.Sprintf("scenario: cannot merge reports: scenario %s appears in both report %d and report %d",
		e.ID, e.A, e.B)
}

// optionsJSON flattens the report-serialized Options fields for
// comparison, so the merge-compatibility rule automatically tracks the
// struct: any field added to the report schema becomes part of the rule.
func optionsJSON(o Options) map[string]any {
	raw, err := json.Marshal(o)
	if err != nil {
		panic(fmt.Sprintf("scenario: encoding options: %v", err))
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		panic(fmt.Sprintf("scenario: decoding options: %v", err))
	}
	return m
}

// diffOptions returns the first (alphabetically) serialized field on
// which a and b disagree, or ok=false when they agree everywhere.
func diffOptions(a, b Options) (field string, av, bv any, differ bool) {
	am, bm := optionsJSON(a), optionsJSON(b)
	keys := make([]string, 0, len(am))
	for k := range am {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !reflect.DeepEqual(am[k], bm[k]) {
			return k, am[k], bm[k], true
		}
	}
	return "", nil, nil, false
}

// MergeReports combines shard (or otherwise partial) reports of one
// matrix run into a single report, as if the union had run in one
// process: results are re-sorted by ID, pass/fail counts recomputed,
// and provenance records where each slice came from (per-shard cell
// counts, live-vs-cached splits and wall times). The merged top-level
// WallMS is the *sum* of the inputs' — total compute spent, not elapsed
// time; shards typically run concurrently, and the per-shard elapsed
// times live in Provenance.Shards.
//
// All inputs must carry the current SchemaVersion (ReadReport already
// enforces this for reports read from disk) and agree on every
// serialized Options field (see OptionsMismatchError); their cell sets
// must be disjoint (see DuplicateCellError). Find, Select and the
// harness figure queries work identically over a merged report and an
// unsharded one.
func MergeReports(reports ...*Report) (*Report, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("scenario: nothing to merge")
	}
	for i, r := range reports {
		if r.SchemaVersion != SchemaVersion {
			return nil, fmt.Errorf("scenario: cannot merge report %d: schema v%d, this build merges v%d",
				i, r.SchemaVersion, SchemaVersion)
		}
	}
	for i, r := range reports[1:] {
		if field, av, bv, differ := diffOptions(reports[0].Options, r.Options); differ {
			return nil, &OptionsMismatchError{Field: field, Report: i + 1, A: av, B: bv}
		}
	}

	owner := make(map[string]int)
	var results []Result
	var wall int64
	var shards []ShardInfo
	for i, r := range reports {
		for _, res := range r.Results {
			if prev, dup := owner[res.ID]; dup {
				return nil, &DuplicateCellError{ID: res.ID, A: prev, B: i}
			}
			owner[res.ID] = i
			results = append(results, res)
		}
		wall += r.WallMS
		shards = append(shards, shardInfos(r, i)...)
	}

	opts := reports[0].Options
	// The non-serialized fields are run-local (pool width, scratch and
	// cache paths, result store, shard membership); zero them so an
	// in-memory merge carries none of one input's locals.
	opts.Parallel = 0
	opts.Scratch = ""
	opts.CacheDir = ""
	opts.Store = nil
	opts.Shard = Shard{}

	merged := newReport(opts, results, 0)
	merged.WallMS = wall
	merged.Provenance.Shards = renumberPartials(shards)
	return merged, nil
}

// renumberPartials gives every Count-0 slice (hand-merged partials,
// matrixd workers) a distinct index in the merged provenance. Without
// this, merging two reports that are THEMSELVES merges collides their
// partials' indices — merge(merge(w0,w1), merge(w2,w3)) used to carry
// two "partial 0" and two "partial 1" entries, flattening the lineage
// even though each entry's wall time survived. Deterministic -shard
// entries (Count > 0) keep their index/count identity untouched: i/n is
// their name. Labels are never rewritten — they are the durable name a
// renumbered partial keeps.
func renumberPartials(shards []ShardInfo) []ShardInfo {
	out := append([]ShardInfo(nil), shards...)
	next := 0
	for i := range out {
		if out[i].Count == 0 {
			out[i].Index = next
			next++
		}
	}
	return out
}

// shardInfos extracts report i's per-shard provenance: its own shard
// entries when it ran sharded, or a synthesized entry (Count 0 marks
// "unsharded input") so the merged provenance accounts for every input.
func shardInfos(r *Report, i int) []ShardInfo {
	if r.Provenance != nil && len(r.Provenance.Shards) > 0 {
		return r.Provenance.Shards
	}
	info := ShardInfo{Index: i, Count: 0, Scenarios: r.Scenarios, WallMS: r.WallMS}
	if r.Provenance != nil {
		info.Live, info.Cached = r.Provenance.Live, r.Provenance.Cached
	} else {
		info.Live = r.Scenarios
	}
	return []ShardInfo{info}
}
