package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dmtcp"
	"repro/internal/faults"
	"repro/internal/mana"
	"repro/internal/osu"
	"repro/internal/stats"
	"repro/internal/trace"

	// The engine runs the registered workloads.
	_ "repro/internal/apps/comd"
	_ "repro/internal/apps/wavempi"
)

// kernelModern maps the Spec kernel tag to the MANA cost model.
func kernelModern() mana.KernelVersion { return mana.Kernel5_9Plus }

// Options scales and paces a matrix run.
type Options struct {
	// Nodes and RanksPerNode define the simulated cluster per scenario.
	Nodes        int `json:"nodes"`
	RanksPerNode int `json:"ranks_per_node"`
	// Reps is the repetition count; repetitions differ only in jitter
	// seed, and results carry medians and standard deviations over them.
	Reps int `json:"reps"`
	// MaxSize caps the message-size sweep of OSU benchmark scenarios.
	MaxSize int `json:"max_size"`
	// Iters/Warmup/ItersLarge are the OSU per-size iteration counts.
	Iters      int `json:"iters"`
	Warmup     int `json:"warmup"`
	ItersLarge int `json:"iters_large"`
	// AppScale scales application step counts (1.0 = paper scale).
	AppScale float64 `json:"app_scale"`
	// Parallel bounds the worker pool (0 = one worker per CPU, capped).
	// Excluded from reports: pool width never affects results, and the
	// CPU-derived default would make reports differ across machines.
	Parallel int `json:"-"`
	// Timeout fails one scenario repetition that exceeds it, without
	// sinking the rest of the run (0 = no timeout).
	Timeout time.Duration `json:"timeout_ns"`
	// BaseSeed perturbs every derived jitter seed; runs with equal
	// BaseSeed and scale are reproducible.
	BaseSeed int64 `json:"base_seed"`
	// CkptEvery is the periodic checkpoint interval, in program steps,
	// for fault-injection cells (0 = 1: an image behind every safe
	// point, so a seeded fault always has a complete image to recover
	// from). Spec.CkptEvery overrides it per cell.
	CkptEvery uint64 `json:"ckpt_every"`
	// MaxRestarts bounds each fault cell's recovery retry budget.
	MaxRestarts int `json:"max_restarts"`
	// Scratch is the root directory for checkpoint images. Empty means a
	// throwaway temp directory. Excluded from reports: it varies per run.
	Scratch string `json:"-"`
	// CacheDir, when set, enables the content-addressed result cache:
	// cells whose CellHash already has a completed (passing) Result are
	// served from disk instead of executing, and live passing results
	// are stored back. Safe to share between concurrent shard processes.
	// Excluded from reports: the cache location never affects results.
	CacheDir string `json:"-"`
	// Store, when set, is the content-addressed result store the run
	// reads and writes — a remote matrixd client, a Tiered composition,
	// or any other Store implementation. It takes precedence over
	// CacheDir (which is the convenience spelling for "open the local
	// directory implementation"). Excluded from reports for the same
	// reason CacheDir is: where results are stored never affects them.
	Store Store `json:"-"`
	// Shard selects a deterministic 1/Count slice of the (deduplicated)
	// spec list; the zero value runs everything. Excluded from reports'
	// options: shard membership is provenance (see Report.Provenance),
	// not an experiment condition, and merged reports must compare equal
	// to unsharded ones.
	Shard Shard `json:"-"`
	// Progress selects the worlds' rank execution engine (goroutine-
	// per-rank by default, or the event-driven scheduler for large-rank
	// runs). omitempty keeps default-mode cell hashes — and therefore
	// the CI result cache — identical to what they were before the knob
	// existed; results are mode-invariant by the differential suites, so
	// an "event" hash differing from the default one is conservative.
	Progress core.ProgressMode `json:"progress_mode,omitempty"`
	// TraceDir, when set, writes one Chrome trace-event JSON file per
	// executed cell (Perfetto-loadable; see internal/trace and
	// docs/observability.md) to <TraceDir>/<cell-id-path>.json.
	// Excluded from reports and cell hashes: tracing observes a run, it
	// never affects one — timestamps are virtual, so with the event
	// engine the files are byte-deterministic per seed.
	TraceDir string `json:"-"`
	// OnCell, when set, is invoked once per scheduled cell as it
	// completes (cached or live). Run calls it from its worker
	// goroutines concurrently; the callback must synchronize. Excluded
	// from reports and hashes like every other observer knob.
	OnCell func(CellEvent) `json:"-"`

	// sink is the per-cell trace sink, created by runOne when TraceDir
	// is set and threaded to the rep runners (unexported: plumbing, not
	// configuration).
	sink *trace.Sink
}

// CellEvent is one Options.OnCell progress notification.
type CellEvent struct {
	// Index/Total locate the cell in this run's scheduled list.
	Index, Total int
	// ID is the scenario ID; Cached reports a store hit.
	ID     string
	Cached bool
	// WallMS is the cell's wall-clock cost: measured for live cells,
	// the original run's recorded cost for cached ones.
	WallMS int64
}

// Full returns the paper-scale configuration (4x12 ranks, 5 repetitions).
func Full() Options {
	return Options{
		Nodes: 4, RanksPerNode: 12, Reps: 5,
		MaxSize: 1 << 18, Iters: 20, Warmup: 4, ItersLarge: 4,
		AppScale: 1, Timeout: 10 * time.Minute,
	}
}

// Quick returns a minutes-scale smoke configuration for CI and laptops.
func Quick() Options {
	return Options{
		Nodes: 2, RanksPerNode: 4, Reps: 2,
		MaxSize: 1 << 12, Iters: 4, Warmup: 1, ItersLarge: 2,
		AppScale: 0.08, Timeout: 2 * time.Minute,
	}
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 2
	}
	if o.RanksPerNode <= 0 {
		o.RanksPerNode = 4
	}
	if o.Reps <= 0 {
		o.Reps = 1
	}
	if o.MaxSize <= 0 {
		o.MaxSize = 1 << 12
	}
	if o.Iters <= 0 {
		o.Iters = 4
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
		if o.Parallel > 8 {
			o.Parallel = 8
		}
	}
	if o.CkptEvery == 0 {
		o.CkptEvery = 1
	}
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 3
	}
	// An explicit "goroutine" is the default spelled out: normalize to the
	// empty string so both spellings address the same cache cell (the JSON
	// hash field carries omitempty for exactly this reason).
	if o.Progress == core.ProgressGoroutine {
		o.Progress = ""
	}
	return o
}

func (o Options) sizes() []int {
	var out []int
	for sz := 1; sz <= o.MaxSize; sz <<= 1 {
		out = append(out, sz)
	}
	return out
}

// configure plants the run scale and noise seed into a fresh program
// instance, for every workload shape the engine knows.
func (o Options) configure(seed int64) func(rank int, p core.Program) {
	return func(rank int, p core.Program) {
		if b, ok := p.(*osu.LatencyBench); ok {
			b.Sizes = o.sizes()
			b.Iters = o.Iters
			b.Warmup = o.Warmup
			b.ItersLarge = o.ItersLarge
			// The engine checkpoints at the first safe point via WithHold;
			// the wall-clock sleep window is not needed and only slows runs.
			b.SleepVirtual = 0
			b.SleepReal = 0
		}
		if s, ok := p.(interface{ ScaleSteps(f float64) }); ok && o.AppScale > 0 && o.AppScale != 1 {
			s.ScaleSteps(o.AppScale)
		}
		if s, ok := p.(interface{ SetSeed(s int64) }); ok {
			s.SetSeed(seed)
		}
	}
}

// runScenario executes one scenario; a package variable so pool tests can
// observe scheduling without running real stacks.
var runScenario = runOne

// Run executes the scenarios concurrently over a bounded worker pool and
// returns the aggregated, ID-sorted report. Every scenario produces a
// Result — panics, timeouts and stack failures are isolated to their own
// cell and reported as Status "fail". Duplicate scenario IDs are
// collapsed to their first occurrence: two copies of the same scenario
// would race on one checkpoint image directory and be indistinguishable
// in the report.
//
// The incremental layer sits between dedup and the pool: Options.Shard
// selects this process's deterministic slice of the deduplicated list
// (dedup first, so every shard partitions the same canonical list), and
// Options.CacheDir serves cells whose content hash already has a
// completed Result from disk instead of executing them (such results
// are marked Cached; see Report.Provenance for the live/cached split).
func Run(specs []Spec, o Options) *Report {
	o = o.withDefaults()
	seen := make(map[string]bool, len(specs))
	uniq := make([]Spec, 0, len(specs))
	for _, s := range specs {
		if id := s.ID(); !seen[id] {
			seen[id] = true
			uniq = append(uniq, s)
		}
	}
	specs = o.Shard.Select(uniq)
	store := o.Store
	if store == nil && o.CacheDir != "" {
		// An unopenable cache degrades to a live run, mirroring the
		// scratch fallback below: caching is an accelerator, never a
		// correctness dependency.
		if c, err := OpenCache(o.CacheDir); err == nil {
			store = c
		}
	}
	if o.Scratch == "" {
		dir, err := os.MkdirTemp("", "scenario-*")
		if err == nil {
			o.Scratch = dir
			defer os.RemoveAll(dir)
		}
		// On failure Scratch stays empty: scenarios that need checkpoint
		// images fail their own cell (see runRep) instead of silently
		// littering the working directory.
	}
	results := make([]Result, len(specs))
	hashes := make([]string, len(specs))
	for i := range specs {
		hashes[i] = CellHash(specs[i], o)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < o.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if store != nil {
					if res, ok := store.Get(hashes[i]); ok && res.ID == specs[i].ID() {
						res.Cached = true
						results[i] = res
						if o.OnCell != nil {
							o.OnCell(CellEvent{Index: i, Total: len(specs), ID: res.ID, Cached: true, WallMS: res.WallMS})
						}
						continue
					}
				}
				res := runScenario(specs[i], o)
				res.CellHash = hashes[i]
				results[i] = res
				if store != nil && res.Status == StatusPass {
					// Best-effort: a failed Put only means this cell runs
					// live again next time.
					_ = store.Put(hashes[i], res)
				}
				if o.OnCell != nil {
					o.OnCell(CellEvent{Index: i, Total: len(specs), ID: res.ID, WallMS: res.WallMS})
				}
			}
		}()
	}
	start := time.Now() //mpivet:allow walltime -- wall_ms report metadata; never feeds event order or scenario hashes
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()
	return newReport(o, results, time.Since(start)) //mpivet:allow walltime -- wall_ms report metadata; never feeds event order or scenario hashes
}

// RunCell executes one cell live — no store consult, no shard
// selection — and returns its Result with the content address stamped.
// It is the unit of work a matrixd lease names: the scheduler only
// hands out cells the shared store does not already hold, so the worker
// goes straight to execution. A missing Options.Scratch gets a private
// temp directory for the cell's checkpoint images, removed on return.
func RunCell(s Spec, o Options) Result {
	o = o.withDefaults()
	o.Shard = Shard{}
	if o.Scratch == "" {
		if dir, err := os.MkdirTemp("", "scenario-cell-*"); err == nil {
			o.Scratch = dir
			defer os.RemoveAll(dir)
		}
	}
	res := runScenario(s, o)
	res.CellHash = CellHash(s, o)
	return res
}

// runOne executes one scenario's repetitions and aggregates them.
func runOne(s Spec, o Options) (res Result) {
	start := time.Now() //mpivet:allow walltime -- wall_ms report metadata; never feeds event order or scenario hashes
	res = Result{ID: s.ID(), Spec: s, Status: StatusPass, Reps: o.Reps}
	var cellLeg *trace.Leg
	if o.TraceDir != "" {
		o.sink = trace.NewSink()
		// A rank-less leg carrying the scenario layer's own lifecycle
		// events; job legs follow it in pid order. Cell events carry no
		// world clock, so they sit at virtual time zero.
		cellLeg = o.sink.NewLeg("cell "+res.ID, 0)
		cellLeg.Driver(trace.CatCell, "cell-start", 0,
			trace.Arg{Key: "id", Val: res.ID})
	}
	defer func() {
		if r := recover(); r != nil {
			res.Status = StatusFail
			res.Error = fmt.Sprintf("panic: %v", r)
		}
		res.WallMS = time.Since(start).Milliseconds() //mpivet:allow walltime -- wall_ms report metadata; never feeds event order or scenario hashes
		if o.sink != nil {
			cellLeg.Driver(trace.CatCell, "cell-done", 0,
				trace.Arg{Key: "status", Val: string(res.Status)})
			// Best-effort, like the result cache: a failed trace write
			// never fails the cell.
			_ = o.sink.WriteChromeFile(filepath.Join(o.TraceDir, idPath(res.ID)+".json"))
		}
	}()
	if err := s.Validate(); err != nil {
		res.Status = StatusFail
		res.Error = err.Error()
		return res
	}
	var launch, restart repSamples
	for rep := 0; rep < o.Reps; rep++ {
		if cellLeg != nil {
			cellLeg.Driver(trace.CatCell, "rep", 0,
				trace.Arg{Key: "rep", Val: trace.Itoa(rep)})
		}
		seed := seedFor(o.BaseSeed, s.Program, rep)
		res.Seeds = append(res.Seeds, seed)
		if s.Fault != "" {
			m, fr, err := runFaultRep(s, o, rep, seed)
			if err != nil {
				res.Status = StatusFail
				res.Error = fmt.Sprintf("rep %d: %v", rep, err)
				return res
			}
			launch.add(m)
			res.Faults = append(res.Faults, fr)
			continue
		}
		lm, rm, lin, err := runRep(s, o, rep, seed)
		if err != nil {
			res.Status = StatusFail
			res.Error = fmt.Sprintf("rep %d: %v", rep, err)
			return res
		}
		launch.add(lm)
		if s.HasRestart() {
			restart.add(rm)
			res.Lineage = append(res.Lineage, lin)
		}
	}
	res.Time = launch.timeSummary()
	res.Curve = launch.curve()
	if s.HasRestart() && s.Fault == "" {
		res.RestartTime = restart.timeSummary()
		res.RestartCurve = restart.curve()
	}
	return res
}

// runFaultRep runs one fault-injection repetition. Crash kinds go
// through the automated recovery driver (periodic checkpoints, typed
// detection, restart from the latest complete image under the restart
// stack when the scenario names one); nic-degrade completes under the
// degraded fabric with no recovery. The returned measurement is the
// final completed job's — for crash cells, the recovered completion.
func runFaultRep(s Spec, o Options, rep int, seed int64) (measurement, FaultRecord, error) {
	var m measurement
	fr := FaultRecord{Rep: rep, Kind: string(s.Fault), Node: -1}
	stack := s.LaunchStack()
	stack.Net.Nodes = o.Nodes
	stack.Net.RanksPerNode = o.RanksPerNode
	stack.Net.Seed = seed
	stack.Progress = o.Progress
	inj, err := faults.NewInjector(faults.Plan{Faults: []faults.Spec{{
		Kind: s.Fault, Rank: faults.Anywhere, Node: faults.Anywhere, Step: s.FaultStep,
	}}}, seed, stack.Net)
	if err != nil {
		return m, fr, err
	}

	if s.Fault == faults.KindNICDegrade {
		f := inj.Faults()[0]
		fr.Node = f.Node
		job, err := core.Launch(stack, s.Program,
			core.WithConfigure(o.configure(seed)), core.WithFaults(inj),
			core.WithTrace(o.sink))
		if err != nil {
			return m, fr, err
		}
		if err := waitTimeout(job, o.Timeout); err != nil {
			return m, fr, err
		}
		return measureJob(job, stack.Net.Size()), fr, nil
	}

	if s.Recovery == RecoveryShrink {
		return runShrinkRep(s, o, fr, stack, seed)
	}
	if s.Recovery == RecoveryReplicate {
		return runReplicateRep(s, o, fr, stack, seed)
	}

	if o.Scratch == "" {
		return m, fr, fmt.Errorf("no scratch directory for checkpoint images (temp dir creation failed)")
	}
	imgDir := filepath.Join(idPath(s.ID()), fmt.Sprintf("rep%02d", rep))
	every := s.CkptEvery
	if every == 0 {
		every = o.CkptEvery
	}
	pol := core.RecoveryPolicy{
		ImageRoot:   filepath.Join(o.Scratch, imgDir),
		Interval:    every,
		MaxRestarts: o.MaxRestarts,
		LegTimeout:  o.Timeout,
	}
	if s.HasRestart() {
		r := s.RestartStack()
		r.Net = stack.Net
		r.Progress = o.Progress
		pol.RestartStack = &r
		fr.RestartStack = r.Label()
	}
	rr, err := core.RunWithRecovery(stack, s.Program, inj, pol,
		core.WithConfigure(o.configure(seed)), core.WithTrace(o.sink))
	if rr != nil {
		fr.Restarts = rr.Restarts
		if len(rr.Events) > 0 {
			ev := rr.Events[0]
			fr.Ranks = ev.Failure.Ranks
			fr.Node = ev.Failure.Node
			fr.Step = ev.Failure.Step
			fr.DetectVirtMS = float64(ev.Detected) / 1e6
			fr.ImageStep = ev.ImageStep
			fr.LostVirtMS = float64(ev.LostVirt.Nanoseconds()) / 1e6
			if ev.ImageDir != "" {
				// Keep the report path relative to the scratch root, like
				// Lineage.Dir, so reports diff across machines.
				if rel, rerr := filepath.Rel(o.Scratch, ev.ImageDir); rerr == nil {
					fr.ImageDir = rel
				} else {
					fr.ImageDir = ev.ImageDir
				}
			}
		}
	}
	if err != nil {
		return m, fr, err
	}
	m = measureJob(rr.Job, stack.Net.Size())
	// Fold the recomputation windows back in: Restart rewinds every
	// rank's virtual clock to the image's, so the final completion time
	// alone would read as if the crash never happened. The cell's time is
	// the virtual time-to-solution — completion plus the work each
	// failure threw away — which is what the recovery-overhead table
	// sweeps against the checkpoint interval.
	for _, ev := range rr.Events {
		m.timeSecs += ev.LostVirt.Seconds()
	}
	return m, fr, nil
}

// runShrinkRep runs one ULFM shrink-recovery repetition: the same
// seeded rank crash as a restart cell, injected non-fatally, survived
// in place by revoke/shrink/recompute. Because in-place recovery never
// rewinds the virtual clocks, the job's completion time already IS the
// time-to-solution — no lost-work folding, unlike the restart path.
func runShrinkRep(s Spec, o Options, fr FaultRecord, stack core.Stack, seed int64) (measurement, FaultRecord, error) {
	var m measurement
	fr.Recovery = RecoveryShrink
	inj, err := faults.NewInjector(faults.Plan{Faults: []faults.Spec{{
		Kind: s.Fault, Rank: faults.Anywhere, Step: s.FaultStep, NonFatal: true,
	}}}, seed, stack.Net)
	if err != nil {
		return m, fr, err
	}
	rr, err := core.RunWithShrinkRecovery(stack, s.Program, inj,
		core.ShrinkPolicy{MaxShrinks: o.MaxRestarts, LegTimeout: o.Timeout},
		core.WithConfigure(o.configure(seed)), core.WithTrace(o.sink))
	if rr != nil {
		fr.Shrinks = rr.Shrinks
		if len(rr.Events) > 0 {
			ev := rr.Events[0]
			if ev.Failure != nil {
				fr.Ranks = ev.Failure.Ranks
				fr.Step = ev.Failure.Step
				fr.DetectVirtMS = float64(ev.Detected) / 1e6
			}
			fr.Survivors = ev.Survivors
		}
	}
	if err != nil {
		return m, fr, err
	}
	return measureJob(rr.Job, stack.Net.Size()), fr, nil
}

// runReplicateRep runs one replication-failover repetition: the same
// seeded rank crash, injected non-fatally against the LOGICAL cluster
// shape (so the victim is always a primary), absorbed by promoting the
// victim's warm shadow in place. The world is physically doubled but
// the scenario's identity — and its measurement — stays logical: the
// completion time is the max over logical clocks (a promoted logical
// rank reads its shadow's clock; the dead primary's froze at the
// crash), and like shrink there is no lost-work folding, because
// nothing rewinds and nothing recomputes. What the cell pays instead
// is the steady-state duplicate-message overhead, which is exactly the
// contrast the recoveryfrontier figure draws.
func runReplicateRep(s Spec, o Options, fr FaultRecord, stack core.Stack, seed int64) (measurement, FaultRecord, error) {
	var m measurement
	fr.Recovery = RecoveryReplicate
	inj, err := faults.NewInjector(faults.Plan{Faults: []faults.Spec{{
		Kind: s.Fault, Rank: faults.Anywhere, Step: s.FaultStep, NonFatal: true,
	}}}, seed, stack.Net)
	if err != nil {
		return m, fr, err
	}
	rr, err := core.RunWithReplication(stack, s.Program, inj,
		core.ReplicaPolicy{LegTimeout: o.Timeout},
		core.WithConfigure(o.configure(seed)), core.WithTrace(o.sink))
	if rr != nil {
		fr.Promotions = rr.Promotions
		if len(rr.Events) > 0 {
			ev := rr.Events[0]
			if ev.Failure != nil {
				fr.Ranks = ev.Failure.Ranks
				fr.Step = ev.Failure.Step
				fr.DetectVirtMS = float64(ev.Detected) / 1e6
			}
			fr.Promoted = ev.Logical
		}
	}
	if err != nil {
		return m, fr, err
	}
	for r := 0; r < stack.Net.Size(); r++ {
		if t := rr.Job.LogicalClock(r).Duration().Seconds(); t > m.timeSecs {
			m.timeSecs = t
		}
	}
	return m, fr, nil
}

// runRep runs one repetition: launch (with the checkpoint/restart dance
// when the scenario has a restart leg) and measurement extraction.
func runRep(s Spec, o Options, rep int, seed int64) (launch, restarted measurement, lin Lineage, err error) {
	stack := s.LaunchStack()
	stack.Net.Nodes = o.Nodes
	stack.Net.RanksPerNode = o.RanksPerNode
	stack.Net.Seed = seed
	stack.Progress = o.Progress

	opts := []core.LaunchOption{core.WithConfigure(o.configure(seed)), core.WithTrace(o.sink)}
	if s.HasRestart() {
		opts = append(opts, core.WithHold())
	}
	job, err := core.Launch(stack, s.Program, opts...)
	if err != nil {
		return launch, restarted, lin, err
	}
	var ckpt <-chan error
	imgDir := ""
	if s.HasRestart() {
		if o.Scratch == "" {
			job.Cancel()
			return launch, restarted, lin, fmt.Errorf("no scratch directory for checkpoint images (temp dir creation failed)")
		}
		imgDir = filepath.Join(idPath(s.ID()), fmt.Sprintf("rep%02d", rep))
		// Register the request before releasing the ranks: the checkpoint
		// lands deterministically at the first safe point, and the
		// original run continues to completion for comparison.
		ckpt = job.CheckpointAsync(filepath.Join(o.Scratch, imgDir), false)
		job.Start()
	}
	if err := waitTimeout(job, o.Timeout); err != nil {
		return launch, restarted, lin, err
	}
	if ckpt != nil {
		if err := <-ckpt; err != nil {
			return launch, restarted, lin, fmt.Errorf("checkpoint: %w", err)
		}
	}
	launch = measureJob(job, stack.Net.Size())
	if !s.HasRestart() {
		return launch, restarted, lin, nil
	}

	rstack := s.RestartStack()
	rstack.Net.Nodes = o.Nodes
	rstack.Net.RanksPerNode = o.RanksPerNode
	rstack.Net.Seed = seed
	rstack.Progress = o.Progress
	rjob, err := core.Restart(filepath.Join(o.Scratch, imgDir), rstack, core.WithTrace(o.sink))
	if err != nil {
		return launch, restarted, lin, fmt.Errorf("restart: %w", err)
	}
	if err := waitTimeout(rjob, o.Timeout); err != nil {
		return launch, restarted, lin, fmt.Errorf("restarted run: %w", err)
	}
	restarted = measureJob(rjob, rstack.Net.Size())

	lin = Lineage{Rep: rep, Dir: imgDir, LaunchStack: stack.Label(), RestartStack: rstack.Label()}
	if meta, merr := dmtcp.ReadMeta(filepath.Join(o.Scratch, imgDir)); merr == nil {
		lin.Step = meta.Step
	}
	return launch, restarted, lin, nil
}

// waitTimeout bounds one job with the shared cancel-on-timeout helper;
// the stable core.ErrCancelled-wrapping error it returns on timeout is
// what keeps timed-out cells' text deterministic (the
// report-diffability guarantee).
func waitTimeout(job *core.Job, d time.Duration) error {
	return core.WaitTimeout(job, d)
}

// measurement is one repetition's extracted observables.
type measurement struct {
	timeSecs float64
	sizes    []int
	means    []float64
}

// measureJob pulls the completion time (max virtual time over ranks) and,
// for OSU benchmarks, rank 0's per-size latency curve.
func measureJob(job *core.Job, ranks int) measurement {
	var m measurement
	for r := 0; r < ranks; r++ {
		if t := job.Clock(r).Duration().Seconds(); t > m.timeSecs {
			m.timeSecs = t
		}
	}
	if b, ok := job.Program(0).(*osu.LatencyBench); ok {
		m.sizes, m.means = b.Results()
	}
	return m
}

// repSamples accumulates measurements across repetitions.
type repSamples struct {
	times   []float64
	sizes   []int
	perSize [][]float64 // perSize[i][rep] = mean latency for sizes[i]
}

func (a *repSamples) add(m measurement) {
	a.times = append(a.times, m.timeSecs)
	if len(m.sizes) == 0 {
		return
	}
	if a.sizes == nil {
		a.sizes = m.sizes
		a.perSize = make([][]float64, len(m.sizes))
	}
	for i := range m.sizes {
		if i < len(a.perSize) {
			a.perSize[i] = append(a.perSize[i], m.means[i])
		}
	}
}

func (a *repSamples) timeSummary() *stats.Summary {
	if len(a.times) == 0 {
		return nil
	}
	s := stats.Summarize(a.times)
	return &s
}

func (a *repSamples) curve() *Curve {
	if len(a.sizes) == 0 {
		return nil
	}
	c := &Curve{Sizes: a.sizes}
	for i := range a.sizes {
		c.MedianUS = append(c.MedianUS, stats.Median(a.perSize[i]))
		c.StdDevUS = append(c.StdDevUS, stats.StdDev(a.perSize[i]))
	}
	return c
}
