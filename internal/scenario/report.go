package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// SchemaVersion is bumped whenever the JSON shape of Report changes, so
// matrix results stay diffable (and comparable tooling can refuse
// mismatched versions) across revisions of this repository.
//
// v2 added the fault axis: Spec.Fault/FaultStep/CkptEvery,
// Result.Faults, and Options.CkptEvery/MaxRestarts.
//
// v3 added the incremental-execution layer: Result.CellHash/Cached and
// Report.Provenance (live-vs-cached cell counts, per-shard wall times),
// so sharded partial reports merge (MergeReports) into one report that
// still records which cells ran live and where each slice came from.
//
// v4 added the recovery-mode axis: Spec.Recovery ("shrink" selects ULFM
// in-place recovery for rank-crash cells) and the shrink half of
// FaultRecord (Recovery/Shrinks/Survivors).
//
// v5 added the third recovery mode: Spec.Recovery "replicate" (warm
// shadow replicas, promotion in place of a dead primary) and the
// promotion half of FaultRecord (Promotions/Promoted).
const SchemaVersion = 5

// Status is a scenario outcome.
type Status string

// Scenario outcomes.
const (
	StatusPass Status = "pass"
	StatusFail Status = "fail"
)

// Curve is a per-message-size latency series aggregated over repetitions
// (medians with standard deviations, the paper's protocol).
type Curve struct {
	Sizes    []int     `json:"sizes"`
	MedianUS []float64 `json:"median_us"`
	StdDevUS []float64 `json:"stddev_us"`
}

// Lineage records one repetition's checkpoint image provenance: which
// stack wrote the images, which stack resumed them, and at which program
// step the checkpoint was taken. Dir is relative to the run's scratch
// root so reports stay diffable; note that a self-created temp scratch is
// deleted when Run returns — set Options.Scratch (cmd flags -scratch /
// -dir) to keep images on disk.
type Lineage struct {
	Rep          int    `json:"rep"`
	Dir          string `json:"dir"`
	Step         uint64 `json:"step"`
	LaunchStack  string `json:"launch_stack"`
	RestartStack string `json:"restart_stack"`
}

// FaultRecord is one repetition's injected fault and its recovery, in
// the terms the report can keep deterministic: resolved targets, trigger
// step, and virtual times (wall clocks would differ between two runs of
// the same seed, and the report must diff cleanly).
type FaultRecord struct {
	Rep  int    `json:"rep"`
	Kind string `json:"kind"`
	// Ranks are the ranks the fault killed; Node is the dead node for
	// node-scoped faults (-1 otherwise); Step is the trigger step.
	Ranks []int  `json:"ranks,omitempty"`
	Node  int    `json:"node"`
	Step  uint64 `json:"step,omitempty"`
	// DetectVirtMS is the virtual time at which the failure was detected.
	DetectVirtMS float64 `json:"detect_virt_ms,omitempty"`
	// ImageDir (relative to the run's scratch root) and ImageStep name
	// the complete image recovery resumed from; empty/zero means the
	// failure beat the first checkpoint and the job relaunched from
	// scratch. LostVirtMS is the recomputation window (detection minus
	// image time): the recovery cost the checkpoint interval buys down.
	ImageDir   string  `json:"image_dir,omitempty"`
	ImageStep  uint64  `json:"image_step,omitempty"`
	LostVirtMS float64 `json:"lost_virt_ms,omitempty"`
	// Restarts is the number of recovery legs used (retry budget spent).
	Restarts int `json:"restarts"`
	// RestartStack labels the stack the recovery legs ran under.
	RestartStack string `json:"restart_stack,omitempty"`
	// Recovery marks the recovery mode ("shrink" for ULFM in-place
	// cells; empty for the restart protocol). Shrink cells never
	// restart: Shrinks counts the in-place recoveries and Survivors is
	// the shrunken world size after the first one.
	Recovery  string `json:"recovery,omitempty"`
	Shrinks   int    `json:"shrinks,omitempty"`
	Survivors int    `json:"survivors,omitempty"`
	// Replicate cells ("replicate") never restart or shrink either:
	// Promotions counts the logical ranks that failed over to their warm
	// shadow, and Promoted lists them. The world keeps its full logical
	// size throughout — promotion is membership-preserving by design.
	Promotions int   `json:"promotions,omitempty"`
	Promoted   []int `json:"promoted,omitempty"`
}

// Result is one scenario's aggregated outcome.
type Result struct {
	ID     string `json:"id"`
	Spec   Spec   `json:"spec"`
	Status Status `json:"status"`
	Error  string `json:"error,omitempty"`
	// Reps and Seeds document the repetition protocol (Seeds are the
	// deterministic per-repetition jitter seeds actually used).
	Reps  int     `json:"reps"`
	Seeds []int64 `json:"seeds,omitempty"`
	// Time is the virtual completion time over repetitions; Curve is the
	// per-size latency sweep (OSU scenarios only).
	Time  *stats.Summary `json:"time_secs,omitempty"`
	Curve *Curve         `json:"curve,omitempty"`
	// RestartTime/RestartCurve are the restarted run's measurements, and
	// Lineage the image provenance, for scenarios with a restart leg.
	RestartTime  *stats.Summary `json:"restart_time_secs,omitempty"`
	RestartCurve *Curve         `json:"restart_curve,omitempty"`
	Lineage      []Lineage      `json:"lineage,omitempty"`
	// Faults records each repetition's injected fault and recovery, for
	// fault-axis scenarios. Time then measures the virtual
	// time-to-solution: recovered completion plus the recomputation
	// windows the failures threw away (restart rewinds the virtual
	// clocks to the image, so completion alone would hide the crash).
	Faults []FaultRecord `json:"faults,omitempty"`
	// CellHash is the cell's content address (see CellHash): a stable
	// hash of the spec, the result-determining options, the derived
	// seeds and the engine version. Equal inputs hash equally across
	// processes and machines, which is what lets shards share a result
	// cache without coordination.
	CellHash string `json:"cell_hash,omitempty"`
	// Cached marks a result served from the on-disk cache instead of a
	// live execution; its measurements (and WallMS) are those of the run
	// that originally produced it.
	Cached bool `json:"cached,omitempty"`
	// WallMS is the wall-clock cost of the scenario (all repetitions).
	WallMS int64 `json:"wall_ms"`
}

// Cross reports whether the result's scenario restarts under a different
// MPI implementation than it launched with — the paper's headline move.
func (r Result) Cross() bool {
	return r.Spec.HasRestart() && r.Spec.RestartImpl != r.Spec.Impl
}

// ShardInfo is the provenance of one merged slice: which shard of how
// many it was, how many cells it carried (split live vs cached), and
// its own elapsed wall time. Count 0 marks a slice that was not a
// deterministic -shard partition: a partial report merged by hand, or
// one worker's share of a matrixd work-stealing run (Label then names
// the worker). Count-0 indices are renumbered at every merge so each
// slice keeps a distinct identity through merges of merges; Label, the
// durable name, is never rewritten.
type ShardInfo struct {
	Index     int    `json:"index"`
	Count     int    `json:"count"`
	Label     string `json:"label,omitempty"`
	Scenarios int    `json:"scenarios"`
	Live      int    `json:"live"`
	Cached    int    `json:"cached"`
	WallMS    int64  `json:"wall_ms"`
}

// Provenance records how the report's results were obtained: how many
// cells actually executed (Live) versus were served from the result
// cache (Cached), and — for sharded or merged reports — the per-shard
// breakdown. It is the schema-v3 answer to "what did this run cost and
// can I trust a warm-cache run": a fully warm re-run shows Live 0.
type Provenance struct {
	Live   int         `json:"live"`
	Cached int         `json:"cached"`
	Shards []ShardInfo `json:"shards,omitempty"`
}

// Report is a full matrix run: versioned, ID-sorted, and JSON-stable, so
// two runs of the same matrix at the same scale diff cleanly. A report
// may also be one shard of a run (Options.Shard selected a slice of the
// matrix) or the merge of several shards (MergeReports); the queries
// below behave identically over all three.
type Report struct {
	SchemaVersion int         `json:"schema_version"`
	Paper         string      `json:"paper"`
	Options       Options     `json:"options"`
	Scenarios     int         `json:"scenarios"`
	Passed        int         `json:"passed"`
	Failed        int         `json:"failed"`
	WallMS        int64       `json:"wall_ms"`
	Provenance    *Provenance `json:"provenance,omitempty"`
	Results       []Result    `json:"results"`
}

func newReport(o Options, results []Result, wall time.Duration) *Report {
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Paper:         "The Case for ABI Interoperability in a Fault Tolerant MPI (IPPS 2025)",
		Options:       o,
		Scenarios:     len(sorted),
		WallMS:        wall.Milliseconds(),
		Provenance:    &Provenance{},
		Results:       sorted,
	}
	for _, r := range sorted {
		if r.Status == StatusPass {
			rep.Passed++
		} else {
			rep.Failed++
		}
		if r.Cached {
			rep.Provenance.Cached++
		} else {
			rep.Provenance.Live++
		}
	}
	if sh := o.Shard.normalize(); sh.Count > 1 {
		rep.Provenance.Shards = []ShardInfo{{
			Index: sh.Index, Count: sh.Count, Scenarios: len(sorted),
			Live: rep.Provenance.Live, Cached: rep.Provenance.Cached,
			WallMS: wall.Milliseconds(),
		}}
	}
	return rep
}

// AssembleReport builds a Report from out-of-band results exactly as
// Run builds one from its own executions: ID-sorted, pass/fail counted,
// provenance split live-vs-cached from each Result's Cached mark. It
// exists for assemblers that obtain results through the Store protocol
// rather than by executing — the matrixd server assembling a
// work-stealing fleet's run streams results in as workers upload them
// and reports through this. wall is the total compute cost to record
// (matrixd sums its workers' per-cell wall times, mirroring
// MergeReports' sum-not-elapsed semantics). Run-local Options fields
// are zeroed so the report carries no assembler-machine locals.
func AssembleReport(o Options, results []Result, wall time.Duration) *Report {
	o = o.withDefaults()
	o.Parallel = 0
	o.Scratch = ""
	o.CacheDir = ""
	o.Store = nil
	o.Shard = Shard{}
	return newReport(o, results, wall)
}

// Find returns the result with the given scenario ID, or nil. Reports
// written by Run or MergeReports are ID-sorted and looked up by binary
// search; a hand-assembled (unsorted) report falls back to a linear
// scan, so queries tolerate partial and merged reports from any source.
func (r *Report) Find(id string) *Result {
	i := sort.Search(len(r.Results), func(i int) bool { return r.Results[i].ID >= id })
	if i < len(r.Results) && r.Results[i].ID == id {
		return &r.Results[i]
	}
	for j := range r.Results {
		if r.Results[j].ID == id {
			return &r.Results[j]
		}
	}
	return nil
}

// Select returns the results matching the filter, in report order.
func (r *Report) Select(keep func(Result) bool) []Result {
	var out []Result
	for _, res := range r.Results {
		if keep(res) {
			out = append(out, res)
		}
	}
	return out
}

// FirstFailure returns the first failed result, or nil when all passed.
func (r *Report) FirstFailure() *Result {
	for i := range r.Results {
		if r.Results[i].Status != StatusPass {
			return &r.Results[i]
		}
	}
	return nil
}

// WriteJSON persists the report (indented, trailing newline) at path,
// creating parent directories as needed.
func (r *Report) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: encoding report: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("scenario: creating report dir: %w", err)
		}
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadReport loads a report written by WriteJSON, rejecting unknown
// schema versions.
func ReadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: reading report: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("scenario: decoding report: %w", err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("scenario: report schema v%d, this build reads v%d",
			rep.SchemaVersion, SchemaVersion)
	}
	return &rep, nil
}

// Render formats the report as an aligned text table, one scenario per
// line, pass/fail first.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== SCENARIO MATRIX (schema v%d): %d scenarios, %d pass, %d fail, %.1fs wall",
		r.SchemaVersion, r.Scenarios, r.Passed, r.Failed, float64(r.WallMS)/1000)
	if p := r.Provenance; p != nil && p.Cached > 0 {
		fmt.Fprintf(&b, " (%d live, %d cached)", p.Live, p.Cached)
	}
	b.WriteString(" ==\n")
	for _, res := range r.Results {
		line := fmt.Sprintf("%-4s  %-64s", res.Status, res.ID)
		switch {
		case res.Status != StatusPass:
			line += "  " + res.Error
		case res.Time != nil:
			line += fmt.Sprintf("  t=%.3fs", res.Time.Median)
			if res.RestartTime != nil && len(res.Lineage) > 0 {
				line += fmt.Sprintf("  restart t=%.3fs (ckpt step %d)", res.RestartTime.Median, res.Lineage[0].Step)
			}
			if len(res.Faults) > 0 {
				f := res.Faults[0]
				line += fmt.Sprintf("  fault=%s", f.Kind)
				if f.Step > 0 {
					line += fmt.Sprintf("@%d", f.Step)
				}
				if f.Restarts > 0 {
					line += fmt.Sprintf(" recovered(%d)", f.Restarts)
				}
				if f.Shrinks > 0 {
					line += fmt.Sprintf(" shrunk(x%d, %d survive)", f.Shrinks, f.Survivors)
				}
				if f.Promotions > 0 {
					line += fmt.Sprintf(" failover(x%d promoted)", f.Promotions)
				}
			}
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}
