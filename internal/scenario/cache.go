package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// EngineVersion stamps every cell hash with the execution semantics
// that produced the result. Bump it whenever Run/runOne change what a
// cell *means* — measurement extraction, seed derivation, recovery
// protocol, fault resolution — so every cached result from the old
// engine misses and re-runs. Schema changes alone (report shape) do not
// require a bump: cached entries already embed the result and are
// invalidated by the entry decoding below when Result's JSON changes
// incompatibly.
//
// Version history:
//
//	1: PR 3's initial content-addressed cache.
//	2: the mpicore extraction and the stdabi implementation. The matrix
//	   grew a third implementation axis (120 -> 216 cells) and every MPI
//	   stack now executes over the shared internal/mpicore runtime; the
//	   refactor preserves algorithms and thresholds, but cell semantics
//	   are owned by a different code path, so every v1 result must
//	   re-run rather than be trusted across the boundary.
//	3: the ULFM subsystem and the recovery-mode axis (216 -> 234 cells:
//	   a shrink-recovery rank-crash cell per checkpointer-free straight
//	   cell). Every cell's progress engine gained failure sweeps,
//	   revocation checks and the control-plane dispatch path, so all v2
//	   results execute over changed runtime semantics and must re-run.
//	4: the replication subsystem (234 -> 252 cells: a replicate-recovery
//	   rank-crash cell beside every shrink one). The shared runtime's
//	   send, dispatch and failure-notice paths gained the replica-layer
//	   interception hooks; the hooks are no-ops on unreplicated worlds,
//	   but the paths' semantics are owned by new code, so v3 results
//	   must re-run rather than be trusted across the boundary.
const EngineVersion = 4

// CellHash is the content address of one matrix cell: a stable SHA-256
// over everything that determines the cell's Result.
//
// The preimage is the canonical JSON of (EngineVersion, Spec, the
// report-serialized Options fields, and the derived per-repetition
// seeds). Options fields excluded from report JSON — Parallel, Scratch,
// CacheDir, Shard — are excluded here too, deliberately: pool width,
// scratch location and shard membership never change a cell's result,
// so they must not change its address. Conversely, every serialized
// field (cluster shape, repetition count, sweep sizes, timeout, base
// seed, checkpoint interval, retry budget) is part of the identity, and
// changing any of them re-runs the cell. This is the cache invalidation
// rule: a cell re-runs exactly when its spec, its scale, its seeds or
// the engine version changed.
func CellHash(s Spec, o Options) string {
	o = o.withDefaults()
	seeds := make([]int64, o.Reps)
	for rep := 0; rep < o.Reps; rep++ {
		seeds[rep] = seedFor(o.BaseSeed, s.Program, rep)
	}
	preimage := struct {
		Engine int     `json:"engine"`
		Spec   Spec    `json:"spec"`
		Opts   Options `json:"options"`
		Seeds  []int64 `json:"seeds"`
	}{EngineVersion, s, o, seeds}
	raw, err := json.Marshal(preimage)
	if err != nil {
		// Spec and Options are plain data; Marshal cannot fail on them.
		panic(fmt.Sprintf("scenario: hashing cell %s: %v", s.ID(), err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Cache is a persistent, content-addressed store of completed cell
// Results, shared safely between concurrent workers and concurrent
// processes (shards pointing at one directory). Entries live at
// <dir>/<hash[:2]>/<hash>.json and are written atomically (temp file +
// rename), so a reader never observes a half-written entry; two
// processes racing to write the same hash write the same bytes, and
// either rename winning is correct.
//
// Only passing Results are stored (see Run): a failure is re-attempted
// on every run rather than pinned, because failures are where the
// un-modeled world (timeouts, scratch exhaustion) leaks in.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("scenario: opening cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// cacheEntry is the on-disk shape of one cached cell. WallMS duplicates
// the result's wall-clock cost at the top level so schedulers can read
// expected durations (WallHints) without decoding — or trusting — the
// whole Result: a wall time is a scheduling hint, useful even from an
// entry whose result a newer engine version must not serve.
type cacheEntry struct {
	Engine int    `json:"engine_version"`
	Hash   string `json:"hash"`
	WallMS int64  `json:"wall_ms,omitempty"`
	Result Result `json:"result"`
}

// path fans entries out over 256 subdirectories so no single directory
// grows unboundedly as the matrix does.
func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash[:2], hash+".json")
}

// Get returns the cached Result for hash, or ok=false on any miss —
// absent, unreadable, corrupt, stale-engine or mismatched entries all
// read as misses (the cell simply runs live and overwrites).
func (c *Cache) Get(hash string) (Result, bool) {
	if len(hash) < 2 {
		return Result{}, false
	}
	raw, err := os.ReadFile(c.path(hash))
	if err != nil {
		return Result{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		return Result{}, false
	}
	if e.Engine != EngineVersion || e.Hash != hash || e.Result.Status != StatusPass {
		return Result{}, false
	}
	return e.Result, true
}

// Prune deletes cache entries no current-or-future engine can serve:
// entries stamped with an OLDER EngineVersion (every version bump would
// otherwise leave its whole generation of results dead on disk forever
// — Get treats them as misses but nothing ever removed them) and
// entries too corrupt to decode. Live-engine entries are untouched, and
// so are entries from a NEWER engine: a shared cache directory may be
// written by a more recent checkout, and an older build's prune must
// not eat results only the newer build can serve.
// Returns how many files were removed.
func (c *Cache) Prune() (int, error) {
	removed := 0
	fanouts, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, fmt.Errorf("scenario: pruning cache: %w", err)
	}
	for _, fan := range fanouts {
		if !fan.IsDir() {
			continue
		}
		dir := filepath.Join(c.dir, fan.Name())
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, ent := range entries {
			if ent.IsDir() || filepath.Ext(ent.Name()) != ".json" {
				continue
			}
			path := filepath.Join(dir, ent.Name())
			raw, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			var e cacheEntry
			stale := json.Unmarshal(raw, &e) != nil || e.Engine < EngineVersion
			if !stale {
				continue
			}
			if err := os.Remove(path); err == nil {
				removed++
			}
		}
	}
	return removed, nil
}

// WallHints scans the cache for recorded per-cell wall-clock costs,
// keyed by scenario ID. The key is deliberately the ID and not the
// content address: IDs are stable across engine versions, option
// changes and seed changes, which is exactly when a scheduler needs a
// warm-start duration estimate — the cell is about to re-run under a
// new address, and its old cost is still the best predictor of its new
// one. Every decodable entry contributes, stale-engine ones included
// (a wall time is a hint, never a correctness input); entries written
// before the top-level wall_ms field existed backfill from the
// embedded result's WallMS; undecodable files contribute nothing.
// When one ID appears under several addresses, the largest cost wins —
// schedulers order pessimistically.
func (c *Cache) WallHints() map[string]int64 {
	hints := make(map[string]int64)
	fanouts, err := os.ReadDir(c.dir)
	if err != nil {
		return hints
	}
	for _, fan := range fanouts {
		if !fan.IsDir() {
			continue
		}
		dir := filepath.Join(c.dir, fan.Name())
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, ent := range entries {
			if ent.IsDir() || filepath.Ext(ent.Name()) != ".json" {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				continue
			}
			// Decode only the hint surface: the result may be from any
			// engine generation and is never served from here.
			var e struct {
				WallMS int64 `json:"wall_ms"`
				Result struct {
					ID     string `json:"id"`
					WallMS int64  `json:"wall_ms"`
				} `json:"result"`
			}
			if json.Unmarshal(raw, &e) != nil || e.Result.ID == "" {
				continue
			}
			wall := e.WallMS
			if wall == 0 {
				wall = e.Result.WallMS
			}
			if wall > hints[e.Result.ID] {
				hints[e.Result.ID] = wall
			}
		}
	}
	return hints
}

// Put stores res under hash. Best-effort by design: a failed Put only
// means the cell re-runs next time, so Run ignores the error; callers
// that care (tests) can check it.
func (c *Cache) Put(hash string, res Result) error {
	if len(hash) < 2 {
		return fmt.Errorf("scenario: cache put with malformed hash %q", hash)
	}
	res.Cached = false // stored results are canonical, not themselves hits
	raw, err := json.MarshalIndent(cacheEntry{Engine: EngineVersion, Hash: hash, WallMS: res.WallMS, Result: res}, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: encoding cache entry: %w", err)
	}
	dir := filepath.Dir(c.path(hash))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("scenario: cache fanout dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+hash[:8]+"-*")
	if err != nil {
		return fmt.Errorf("scenario: cache temp file: %w", err)
	}
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("scenario: writing cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("scenario: closing cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("scenario: publishing cache entry: %w", err)
	}
	return nil
}
