package scenario

import (
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/faults"
)

func TestEnumerateExcludesInvalidStacks(t *testing.T) {
	specs := DefaultMatrix().Enumerate()
	if len(specs) == 0 {
		t.Fatal("empty matrix")
	}
	seen := make(map[string]bool)
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("enumerated invalid scenario %s: %v", s.ID(), err)
		}
		if seen[s.ID()] {
			t.Errorf("duplicate scenario %s", s.ID())
		}
		seen[s.ID()] = true
	}
	// The matrix must cover every base cell: 2 apps x 3 impls x 3 ABIs x
	// 3 checkpointers = 54 straight runs.
	var straight, cross, same int
	var rankCrash, nodeCrash, nicDegrade, shrink, replicate int
	for _, s := range specs {
		switch s.Fault {
		case faults.KindRankCrash:
			if s.Recovery == RecoveryReplicate {
				replicate++
				continue
			}
			if s.Recovery == RecoveryShrink {
				shrink++
				continue
			}
			rankCrash++
			continue
		case faults.KindNodeCrash:
			nodeCrash++
			continue
		case faults.KindNICDegrade:
			nicDegrade++
			continue
		}
		switch {
		case !s.HasRestart():
			straight++
		case s.RestartImpl != s.Impl:
			cross++
		default:
			same++
		}
	}
	if straight != 54 {
		t.Errorf("straight scenarios = %d, want 54", straight)
	}
	// Cross-implementation restarts exist only for MANA over a standard
	// ABI: 2 apps x 2 standard ABIs x 3 launch impls x 2 other restart
	// impls = 24 (stdabi<->{mpich,openmpi} pairings included, both
	// directions).
	if cross != 24 {
		t.Errorf("cross-restart scenarios = %d, want 24", cross)
	}
	if same == 0 {
		t.Error("no same-implementation restart scenarios")
	}
	// The fault axis: a rank-crash recovery per restart pairing (24 cross
	// + 36 same = 60), a node-crash per cross pairing (24), and — per
	// checkpointer-free straight cell (18 of them) — one nic-degrade,
	// one ULFM shrink-recovery rank-crash and one replication-failover
	// rank-crash (the recovery-mode axis) — 252 scenarios total.
	if rankCrash != 60 {
		t.Errorf("rank-crash scenarios = %d, want 60", rankCrash)
	}
	if nodeCrash != 24 {
		t.Errorf("node-crash scenarios = %d, want 24", nodeCrash)
	}
	if nicDegrade != 18 {
		t.Errorf("nic-degrade scenarios = %d, want 18", nicDegrade)
	}
	if shrink != 18 {
		t.Errorf("shrink-recovery scenarios = %d, want 18", shrink)
	}
	if replicate != 18 {
		t.Errorf("replicate-recovery scenarios = %d, want 18", replicate)
	}
	if len(specs) != 252 {
		t.Errorf("matrix has %d scenarios, want 252", len(specs))
	}
	// Both in-place recovery modes must cover all three implementations,
	// both native and shimmed.
	recBy := map[string]map[core.Impl]map[core.ABIMode]bool{
		RecoveryShrink: {}, RecoveryReplicate: {},
	}
	for _, s := range specs {
		by, ok := recBy[s.Recovery]
		if !ok {
			continue
		}
		if s.Ckpt != core.CkptNone || s.HasRestart() {
			t.Errorf("%s cell %s advertises a checkpoint or restart leg", s.Recovery, s.ID())
		}
		if by[s.Impl] == nil {
			by[s.Impl] = make(map[core.ABIMode]bool)
		}
		by[s.Impl][s.ABI] = true
	}
	for mode, by := range recBy {
		for _, impl := range []core.Impl{core.ImplMPICH, core.ImplOpenMPI, core.ImplStdABI} {
			for _, abiMode := range []core.ABIMode{core.ABINative, core.ABIMukautuva, core.ABIWi4MPI} {
				if !by[impl][abiMode] {
					t.Errorf("no %s-recovery cell for %s+%s", mode, impl, abiMode)
				}
			}
		}
	}
	if len(specs) < 170 {
		t.Errorf("matrix has %d scenarios, the stdabi axis should push it past 170", len(specs))
	}
	// The stdabi axis must contribute cross-restart recovery cells in
	// both directions (the acceptance bar for the third implementation).
	var stdCross int
	for _, s := range specs {
		if s.Fault == faults.KindNodeCrash &&
			(s.Impl == core.ImplStdABI) != (s.RestartImpl == core.ImplStdABI) {
			stdCross++
		}
	}
	if stdCross < 4 {
		t.Errorf("stdabi node-crash cross-restart cells = %d, want >= 4", stdCross)
	}
	for _, s := range specs {
		if s.HasRestart() && s.RestartImpl != s.Impl && s.Ckpt != core.CkptMANA {
			t.Errorf("cross-restart scenario %s with checkpointer %s", s.ID(), s.Ckpt)
		}
		if s.Fault == faults.KindNodeCrash && s.RestartImpl == s.Impl {
			t.Errorf("node-crash scenario %s is not a cross-implementation pairing", s.ID())
		}
	}
}

func TestFaultSpecValidation(t *testing.T) {
	bad := []Spec{
		// Crash recovery without a checkpointing package.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			Fault: faults.KindRankCrash},
		// Unknown fault kind.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptMANA,
			Fault: "gamma-ray"},
		// Fault parameters without a fault.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			FaultStep: 3},
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			CkptEvery: 2},
		// A restart pairing on a nic-degrade cell would never execute.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			RestartImpl: core.ImplMPICH, RestartABI: core.ABIMukautuva, Fault: faults.KindNICDegrade},
		// Recovery mode without a fault.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			Recovery: RecoveryShrink},
		// Unknown recovery mode.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			Fault: faults.KindRankCrash, Recovery: "regrow"},
		// Shrink recovery is checkpoint-free: a checkpointer on the cell
		// advertises a leg that never executes.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			Fault: faults.KindRankCrash, Recovery: RecoveryShrink},
		// ... as does a restart pairing.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptNone,
			RestartImpl: core.ImplOpenMPI, RestartABI: core.ABIMukautuva,
			Fault: faults.KindRankCrash, Recovery: RecoveryShrink},
		// ... or a checkpoint interval.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			Fault: faults.KindRankCrash, Recovery: RecoveryShrink, CkptEvery: 2},
		// Shrink under a node crash would drop whole nodes of ranks.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			Fault: faults.KindNodeCrash, Recovery: RecoveryShrink},
		// Replication is checkpoint-free too...
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			Fault: faults.KindRankCrash, Recovery: RecoveryReplicate},
		// ... never restarts ...
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptNone,
			RestartImpl: core.ImplOpenMPI, RestartABI: core.ABIMukautuva,
			Fault: faults.KindRankCrash, Recovery: RecoveryReplicate},
		// ... takes no checkpoint interval ...
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			Fault: faults.KindRankCrash, Recovery: RecoveryReplicate, CkptEvery: 2},
		// ... and only absorbs rank crashes (a node crash could land on a
		// replica pair's disjoint nodes in one blow).
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			Fault: faults.KindNodeCrash, Recovery: RecoveryReplicate},
		// Recovery mode on a nic-degrade cell is meaningless.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			Fault: faults.KindNICDegrade, Recovery: RecoveryShrink},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid fault scenario %s accepted", s.ID())
		}
	}
	good := []Spec{
		// nic-degrade needs no checkpointer: nothing dies.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			Fault: faults.KindNICDegrade},
		// Crash recovery under the same stack (no restart leg).
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			Fault: faults.KindRankCrash, FaultStep: 3, CkptEvery: 2},
		// The headline: node crash, recover under the other implementation.
		{Program: "app.wave", Impl: core.ImplOpenMPI, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			RestartImpl: core.ImplMPICH, RestartABI: core.ABIMukautuva, Fault: faults.KindNodeCrash},
		// ULFM shrink recovery: checkpointer-free, any binding.
		{Program: "app.wave", Impl: core.ImplStdABI, ABI: core.ABIWi4MPI, Ckpt: core.CkptNone,
			Fault: faults.KindRankCrash, FaultStep: 3, Recovery: RecoveryShrink},
		// Replication failover: checkpointer-free, any binding.
		{Program: "app.wave", Impl: core.ImplOpenMPI, ABI: core.ABIMukautuva, Ckpt: core.CkptNone,
			Fault: faults.KindRankCrash, FaultStep: 3, Recovery: RecoveryReplicate},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("valid fault scenario %s rejected: %v", s.ID(), err)
		}
	}
	// Fault parameters are part of the identity (distinct image dirs,
	// distinct report rows).
	a := good[1]
	b := a
	b.CkptEvery = 4
	if a.ID() == b.ID() {
		t.Errorf("distinct checkpoint intervals share ID %s", a.ID())
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Spec{
		// Restart without a checkpointing package.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptNone,
			RestartImpl: core.ImplOpenMPI, RestartABI: core.ABIMukautuva},
		// Cross-implementation restart of a native-ABI MANA image.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptMANA,
			RestartImpl: core.ImplOpenMPI, RestartABI: core.ABINative},
		// Cross-implementation restart of a plain DMTCP image.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptDMTCP,
			RestartImpl: core.ImplOpenMPI, RestartABI: core.ABIMukautuva},
		// Standard-ABI image restarted without a translation layer.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			RestartImpl: core.ImplMPICH, RestartABI: core.ABINative},
		// Unknown implementation.
		{Program: "app.wave", Impl: "lam", ABI: core.ABINative, Ckpt: core.CkptNone},
		// Unknown kernel model.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone, Kernel: "4.4"},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid scenario %s accepted", s.ID())
		}
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	a, b := DefaultMatrix().Enumerate(), DefaultMatrix().Enumerate()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("enumeration order is not deterministic")
	}
}

func TestSeedsDeterministicAndPaired(t *testing.T) {
	if seedFor(1, "app.wave", 0) != seedFor(1, "app.wave", 0) {
		t.Fatal("seed not deterministic")
	}
	if seedFor(1, "app.wave", 0) == seedFor(1, "app.wave", 1) {
		t.Fatal("repetitions share a seed")
	}
	if seedFor(1, "app.wave", 0) == seedFor(2, "app.wave", 0) {
		t.Fatal("base seed has no effect")
	}
	if seedFor(1, "app.wave", 0) == seedFor(1, "app.comd", 0) {
		t.Fatal("programs share a seed")
	}
}

// withStubRunner swaps the scenario runner for fn for the test's duration.
func withStubRunner(t *testing.T, fn func(Spec, Options) Result) {
	t.Helper()
	orig := runScenario
	runScenario = fn
	t.Cleanup(func() { runScenario = orig })
}

func TestWorkerPoolRespectsParallelismBound(t *testing.T) {
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	withStubRunner(t, func(s Spec, o Options) Result {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		inFlight.Add(-1)
		return Result{ID: s.ID(), Spec: s, Status: StatusPass}
	})
	specs := DefaultMatrix().Enumerate()[:12]
	rep := Run(specs, Options{Parallel: 3, Reps: 1})
	if got := peak.Load(); got > 3 {
		t.Fatalf("pool ran %d scenarios concurrently, bound is 3", got)
	}
	if rep.Scenarios != 12 || rep.Passed != 12 {
		t.Fatalf("report: %d scenarios, %d passed", rep.Scenarios, rep.Passed)
	}
}

func TestFailingScenarioDoesNotAbortSiblings(t *testing.T) {
	withStubRunner(t, func(s Spec, o Options) Result {
		if strings.HasPrefix(s.Program, "app.comd") {
			panic("stack blew up")
		}
		return Result{ID: s.ID(), Spec: s, Status: StatusPass}
	})
	specs := []Spec{
		{Program: "app.comd", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone},
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone},
		{Program: "app.wave", Impl: core.ImplOpenMPI, ABI: core.ABINative, Ckpt: core.CkptNone},
	}
	// The stub panics out of runScenario itself: the pool worker must not
	// die with it. Wrap like the real runner does.
	withStubRunner(t, func(s Spec, o Options) (res Result) {
		defer func() {
			if r := recover(); r != nil {
				res = Result{ID: s.ID(), Spec: s, Status: StatusFail, Error: "panic"}
			}
		}()
		if s.Program == "app.comd" {
			panic("stack blew up")
		}
		return Result{ID: s.ID(), Spec: s, Status: StatusPass}
	})
	rep := Run(specs, Options{Parallel: 2, Reps: 1})
	if rep.Failed != 1 || rep.Passed != 2 {
		t.Fatalf("passed=%d failed=%d, want 2/1", rep.Passed, rep.Failed)
	}
	if f := rep.FirstFailure(); f == nil || f.Spec.Program != "app.comd" {
		t.Fatalf("FirstFailure = %+v", f)
	}
}

func TestRunOneIsolatesPanicsAndInvalidSpecs(t *testing.T) {
	// An invalid spec fails its own cell with the validation error.
	res := runOne(Spec{Program: "app.wave", Impl: "lam", ABI: core.ABINative, Ckpt: core.CkptNone}, Quick())
	if res.Status != StatusFail || res.Error == "" {
		t.Fatalf("invalid spec result: %+v", res)
	}
	// An unregistered program fails at launch, not by sinking the run.
	res = runOne(Spec{Program: "app.nonesuch", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone},
		Options{Nodes: 1, RanksPerNode: 2, Reps: 1})
	if res.Status != StatusFail || !strings.Contains(res.Error, "not registered") {
		t.Fatalf("unregistered program result: %+v", res)
	}
}

// tinyOptions runs real stacks small enough for CI.
func tinyOptions(t *testing.T) Options {
	return Options{
		Nodes: 1, RanksPerNode: 4, Reps: 2,
		MaxSize: 64, Iters: 2, Warmup: 1,
		AppScale: 0.01, Parallel: 2,
		Timeout: time.Minute, Scratch: t.TempDir(),
	}
}

func TestRunRealScenariosEndToEnd(t *testing.T) {
	specs := []Spec{
		// Straight run, native stack.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone},
		// Cross-implementation restart through the standard ABI.
		{Program: "app.wave", Impl: core.ImplOpenMPI, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			RestartImpl: core.ImplMPICH, RestartABI: core.ABIMukautuva},
		// Plain DMTCP same-stack restart.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptDMTCP,
			RestartImpl: core.ImplMPICH, RestartABI: core.ABIMukautuva},
		// OSU benchmark: must produce a latency curve.
		{Program: "osu.alltoall", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone},
	}
	rep := Run(specs, tinyOptions(t))
	if rep.Failed != 0 {
		t.Fatalf("failures:\n%s", rep.Render())
	}
	for _, s := range specs[1:3] {
		res := rep.Find(s.ID())
		if res == nil {
			t.Fatalf("scenario %s missing from report", s.ID())
		}
		if res.RestartTime == nil || res.RestartTime.Median <= 0 {
			t.Errorf("%s: no restarted-run time", s.ID())
		}
		if len(res.Lineage) != 2 {
			t.Errorf("%s: lineage for %d reps, want 2", s.ID(), len(res.Lineage))
		} else if res.Lineage[0].Step == 0 {
			t.Errorf("%s: lineage missing checkpoint step", s.ID())
		}
	}
	if res := rep.Find(specs[1].ID()); !res.Cross() {
		t.Error("mukautuva+mana pairing not flagged as cross-implementation")
	}
	osuRes := rep.Find(specs[3].ID())
	if osuRes.Curve == nil || len(osuRes.Curve.Sizes) != 7 { // 1..64
		t.Fatalf("osu scenario curve: %+v", osuRes.Curve)
	}
	for i, m := range osuRes.Curve.MedianUS {
		if m <= 0 {
			t.Errorf("size %d: non-positive latency", osuRes.Curve.Sizes[i])
		}
	}
}

// faultOptions is tinyOptions over two nodes, so node faults have a
// surviving node and crash scenarios cross a node boundary.
func faultOptions(t *testing.T) Options {
	o := tinyOptions(t)
	o.Nodes = 2
	o.RanksPerNode = 2
	return o
}

func TestFaultScenariosEndToEnd(t *testing.T) {
	specs := []Spec{
		// The paper's headline under failure: launch Open MPI, crash a
		// node, recover and complete under MPICH.
		{Program: "app.wave", Impl: core.ImplOpenMPI, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			RestartImpl: core.ImplMPICH, RestartABI: core.ABIMukautuva, Fault: faults.KindNodeCrash},
		// Same-stack rank-crash recovery.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			Fault: faults.KindRankCrash},
		// Degraded completion, no recovery.
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			Fault: faults.KindNICDegrade},
	}
	rep := Run(specs, faultOptions(t))
	if rep.Failed != 0 {
		t.Fatalf("failures:\n%s", rep.Render())
	}
	for _, s := range specs[:2] {
		res := rep.Find(s.ID())
		if res == nil {
			t.Fatalf("scenario %s missing", s.ID())
		}
		if len(res.Faults) != 2 {
			t.Fatalf("%s: fault records for %d reps, want 2", s.ID(), len(res.Faults))
		}
		for _, fr := range res.Faults {
			if fr.Restarts == 0 {
				t.Errorf("%s rep %d: fault did not trigger recovery", s.ID(), fr.Rep)
			}
			if fr.Step == 0 || len(fr.Ranks) == 0 {
				t.Errorf("%s rep %d: fault record incomplete: %+v", s.ID(), fr.Rep, fr)
			}
			if fr.DetectVirtMS <= 0 {
				t.Errorf("%s rep %d: no detection time", s.ID(), fr.Rep)
			}
			if fr.ImageDir == "" || fr.ImageStep == 0 {
				t.Errorf("%s rep %d: no image lineage (interval 1 guarantees one): %+v", s.ID(), fr.Rep, fr)
			}
			if filepath.IsAbs(fr.ImageDir) {
				t.Errorf("%s rep %d: image dir %q not relative to scratch", s.ID(), fr.Rep, fr.ImageDir)
			}
		}
		if res.Time == nil || res.Time.Median <= 0 {
			t.Errorf("%s: no recovered completion time", s.ID())
		}
	}
	headline := rep.Find(specs[0].ID())
	if headline.Faults[0].Node < 0 {
		t.Errorf("node crash recorded no node: %+v", headline.Faults[0])
	}
	if headline.Faults[0].RestartStack == "" {
		t.Errorf("cross recovery recorded no restart stack")
	}
	if nic := rep.Find(specs[2].ID()); len(nic.Faults) != 2 || nic.Faults[0].Restarts != 0 {
		t.Errorf("nic-degrade records = %+v", nic.Faults)
	}
}

// Same seed, same fault: two runs of a fault scenario must resolve the
// same victims at the same step — the report-diffability guarantee
// extended to the fault axis.
func TestFaultResolutionDeterministic(t *testing.T) {
	spec := Spec{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
		Fault: faults.KindRankCrash}
	a := Run([]Spec{spec}, faultOptions(t))
	b := Run([]Spec{spec}, faultOptions(t))
	ra, rb := a.Find(spec.ID()), b.Find(spec.ID())
	if ra.Status != StatusPass || rb.Status != StatusPass {
		t.Fatalf("runs failed:\n%s\n%s", a.Render(), b.Render())
	}
	for i := range ra.Faults {
		fa, fb := ra.Faults[i], rb.Faults[i]
		if !reflect.DeepEqual(fa.Ranks, fb.Ranks) || fa.Step != fb.Step || fa.ImageStep != fb.ImageStep {
			t.Fatalf("rep %d resolved differently:\n%+v\n%+v", i, fa, fb)
		}
	}
}

// A faulted cell fails or recovers alone: a node crash in one scenario
// must not sink the healthy sibling running concurrently.
func TestNodeCrashIsolation(t *testing.T) {
	o := faultOptions(t)
	o.Parallel = 2
	specs := []Spec{
		{Program: "app.wave", Impl: core.ImplOpenMPI, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			RestartImpl: core.ImplMPICH, RestartABI: core.ABIMukautuva, Fault: faults.KindNodeCrash},
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone},
	}
	rep := Run(specs, o)
	if rep.Failed != 0 {
		t.Fatalf("isolation broken:\n%s", rep.Render())
	}
	healthy := rep.Find(specs[1].ID())
	if len(healthy.Faults) != 0 {
		t.Fatalf("healthy cell caught fault records: %+v", healthy.Faults)
	}

	// And when recovery is impossible — a crash pairing the stool cannot
	// support — the faulted cell fails alone, without sinking the healthy
	// sibling.
	badSpecs := []Spec{
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptDMTCP,
			RestartImpl: core.ImplOpenMPI, RestartABI: core.ABIMukautuva, Fault: faults.KindRankCrash},
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone},
	}
	rep = Run(badSpecs, o)
	if rep.Failed != 1 || rep.Passed != 1 {
		t.Fatalf("invalid pairing not isolated:\n%s", rep.Render())
	}
	if f := rep.FirstFailure(); f.Spec.Fault != faults.KindRankCrash {
		t.Fatalf("wrong cell failed: %+v", f)
	}
}

func TestTimeoutFailsScenarioWithoutSinkingRun(t *testing.T) {
	o := tinyOptions(t)
	o.Reps = 1
	// Wide enough that the tiny wave run always finishes (even under the
	// race detector's slowdown), far shorter than glacial's ~200s.
	o.Timeout = 2 * time.Second
	specs := []Spec{
		// The glacial program (registered below) outlives the timeout and
		// must be cancelled; the sibling wave run must still pass.
		{Program: "test.scenario.glacial", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone},
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone},
	}
	rep := Run(specs, o)
	if rep.Failed != 1 || rep.Passed != 1 {
		t.Fatalf("report:\n%s", rep.Render())
	}
	fail := rep.FirstFailure()
	if fail.Spec.Program != "test.scenario.glacial" || !strings.Contains(fail.Error, "timed out") {
		t.Fatalf("failure = %+v", fail)
	}
}

// glacialProg sleeps through every step; only a timeout ends it.
type glacialProg struct{ Iter int }

func (g *glacialProg) Setup(env *abi.Env) error { return nil }
func (g *glacialProg) Step(env *abi.Env) (bool, error) {
	time.Sleep(2 * time.Millisecond) //mpivet:allow parksafe -- glacialProg exists to stall the world and trip the engine's timeout path
	g.Iter++
	return g.Iter >= 100000, nil
}

func init() {
	core.RegisterProgram("test.scenario.glacial", func() core.Program { return &glacialProg{} })
}

func TestReportJSONRoundTrip(t *testing.T) {
	withStubRunner(t, func(s Spec, o Options) Result {
		return runOne(s, o) // real runner, tiny specs below
	})
	specs := []Spec{
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone},
		{Program: "app.wave", Impl: core.ImplOpenMPI, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			RestartImpl: core.ImplMPICH, RestartABI: core.ABIMukautuva},
	}
	rep := Run(specs, tinyOptions(t))
	path := filepath.Join(t.TempDir(), "nested", "results.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	// Scratch and Parallel are deliberately not serialized: a throwaway
	// temp path and a CPU-derived pool width would make reports
	// non-diffable across machines.
	rep.Options.Scratch = ""
	rep.Options.Parallel = 0
	if !reflect.DeepEqual(rep, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", rep, got)
	}
	if got.SchemaVersion != SchemaVersion || got.Find(specs[1].ID()) == nil {
		t.Fatal("report lost identity through JSON")
	}
}

func TestReadReportRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	rep := newReport(Options{}, nil, 0)
	rep.SchemaVersion = SchemaVersion + 1
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("unknown schema version accepted")
	}
}

func TestRunCollapsesDuplicateSpecs(t *testing.T) {
	withStubRunner(t, func(s Spec, o Options) Result {
		return Result{ID: s.ID(), Spec: s, Status: StatusPass}
	})
	s := Spec{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone}
	rep := Run([]Spec{s, s, s}, Options{Parallel: 2, Reps: 1})
	if rep.Scenarios != 1 {
		t.Fatalf("duplicates not collapsed: %d scenarios", rep.Scenarios)
	}
}

// TestShrinkScenariosEndToEnd runs the recovery-mode axis live: one
// shrink-recovery rank-crash cell per implementation (one shimmed), at
// tiny scale, asserting the shrink half of the fault record and — the
// determinism bar — that a second run produces identical fault
// resolution.
func TestShrinkScenariosEndToEnd(t *testing.T) {
	specs := []Spec{
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			Fault: faults.KindRankCrash, Recovery: RecoveryShrink},
		{Program: "app.wave", Impl: core.ImplOpenMPI, ABI: core.ABIMukautuva, Ckpt: core.CkptNone,
			Fault: faults.KindRankCrash, Recovery: RecoveryShrink},
		{Program: "app.wave", Impl: core.ImplStdABI, ABI: core.ABINative, Ckpt: core.CkptNone,
			Fault: faults.KindRankCrash, Recovery: RecoveryShrink},
	}
	rep := Run(specs, faultOptions(t))
	if rep.Failed != 0 {
		t.Fatalf("failures:\n%s", rep.Render())
	}
	for _, s := range specs {
		res := rep.Find(s.ID())
		if res == nil {
			t.Fatalf("scenario %s missing", s.ID())
		}
		if len(res.Faults) != 2 {
			t.Fatalf("%s: fault records for %d reps, want 2", s.ID(), len(res.Faults))
		}
		for _, fr := range res.Faults {
			if fr.Recovery != RecoveryShrink {
				t.Errorf("%s rep %d: recovery mode %q", s.ID(), fr.Rep, fr.Recovery)
			}
			if fr.Shrinks != 1 || fr.Restarts != 0 {
				t.Errorf("%s rep %d: shrinks=%d restarts=%d, want 1/0", s.ID(), fr.Rep, fr.Shrinks, fr.Restarts)
			}
			if fr.Survivors != 3 {
				t.Errorf("%s rep %d: survivors=%d, want 3", s.ID(), fr.Rep, fr.Survivors)
			}
			if fr.Step == 0 || len(fr.Ranks) != 1 {
				t.Errorf("%s rep %d: fault record incomplete: %+v", s.ID(), fr.Rep, fr)
			}
			if fr.ImageDir != "" || fr.ImageStep != 0 {
				t.Errorf("%s rep %d: shrink cell recorded checkpoint lineage: %+v", s.ID(), fr.Rep, fr)
			}
		}
		if res.Time == nil || res.Time.Median <= 0 {
			t.Errorf("%s: no recovered completion time", s.ID())
		}
	}

	// Determinism: a second run resolves the same victims at the same
	// steps with the same shrink outcomes. The structural fields are
	// exact; virtual times (DetectVirtMS, completion) carry the engine's
	// documented near-determinism under simulated NIC contention and are
	// deliberately not compared — same bar as the restart fault cells.
	rep2 := Run(specs, faultOptions(t))
	for _, s := range specs {
		a, b := rep.Find(s.ID()), rep2.Find(s.ID())
		for i := range a.Faults {
			fa, fb := a.Faults[i], b.Faults[i]
			fa.DetectVirtMS, fb.DetectVirtMS = 0, 0
			if !reflect.DeepEqual(fa, fb) {
				t.Errorf("%s rep %d: fault records differ across identical runs:\n%+v\n%+v",
					s.ID(), i, a.Faults[i], b.Faults[i])
			}
		}
	}
}

func TestReplicateScenariosEndToEnd(t *testing.T) {
	specs := []Spec{
		{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone,
			Fault: faults.KindRankCrash, Recovery: RecoveryReplicate},
		{Program: "app.wave", Impl: core.ImplOpenMPI, ABI: core.ABIMukautuva, Ckpt: core.CkptNone,
			Fault: faults.KindRankCrash, Recovery: RecoveryReplicate},
		{Program: "app.wave", Impl: core.ImplStdABI, ABI: core.ABINative, Ckpt: core.CkptNone,
			Fault: faults.KindRankCrash, Recovery: RecoveryReplicate},
	}
	rep := Run(specs, faultOptions(t))
	if rep.Failed != 0 {
		t.Fatalf("failures:\n%s", rep.Render())
	}
	for _, s := range specs {
		res := rep.Find(s.ID())
		if res == nil {
			t.Fatalf("scenario %s missing", s.ID())
		}
		if len(res.Faults) != 2 {
			t.Fatalf("%s: fault records for %d reps, want 2", s.ID(), len(res.Faults))
		}
		for _, fr := range res.Faults {
			if fr.Recovery != RecoveryReplicate {
				t.Errorf("%s rep %d: recovery mode %q", s.ID(), fr.Rep, fr.Recovery)
			}
			if fr.Promotions != 1 || fr.Shrinks != 0 || fr.Restarts != 0 {
				t.Errorf("%s rep %d: promotions=%d shrinks=%d restarts=%d, want 1/0/0",
					s.ID(), fr.Rep, fr.Promotions, fr.Shrinks, fr.Restarts)
			}
			if len(fr.Ranks) != 1 || !reflect.DeepEqual(fr.Promoted, fr.Ranks) {
				t.Errorf("%s rep %d: promoted %v != killed primaries %v", s.ID(), fr.Rep, fr.Promoted, fr.Ranks)
			}
			if fr.Step == 0 {
				t.Errorf("%s rep %d: fault record incomplete: %+v", s.ID(), fr.Rep, fr)
			}
			if fr.Survivors != 0 || fr.ImageDir != "" || fr.ImageStep != 0 {
				t.Errorf("%s rep %d: replicate cell leaked shrink/restart fields: %+v", s.ID(), fr.Rep, fr)
			}
		}
		if res.Time == nil || res.Time.Median <= 0 {
			t.Errorf("%s: no completion time", s.ID())
		}
	}

	// Determinism: same bar as the shrink cells — structural fields
	// exact, virtual times deliberately not compared.
	rep2 := Run(specs, faultOptions(t))
	for _, s := range specs {
		a, b := rep.Find(s.ID()), rep2.Find(s.ID())
		for i := range a.Faults {
			fa, fb := a.Faults[i], b.Faults[i]
			fa.DetectVirtMS, fb.DetectVirtMS = 0, 0
			if !reflect.DeepEqual(fa, fb) {
				t.Errorf("%s rep %d: fault records differ across identical runs:\n%+v\n%+v",
					s.ID(), i, a.Faults[i], b.Faults[i])
			}
		}
	}
}
