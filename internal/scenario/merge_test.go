package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// richStubRunner produces deterministic, structurally rich results so
// merged and unsharded reports can be compared byte-for-byte.
func richStubRunner(s Spec, o Options) Result {
	res := Result{ID: s.ID(), Spec: s, Status: StatusPass, Reps: o.Reps}
	for rep := 0; rep < o.Reps; rep++ {
		res.Seeds = append(res.Seeds, seedFor(o.BaseSeed, s.Program, rep))
	}
	if s.HasRestart() {
		res.Lineage = []Lineage{{Rep: 0, Dir: idPath(s.ID()), Step: 1,
			LaunchStack: string(s.Impl), RestartStack: string(s.RestartImpl)}}
	}
	return res
}

// normalizeProvenance strips the fields the acceptance criterion
// excludes: wall times and provenance (live/cached marks, shard lists).
func normalizeProvenance(r *Report) {
	r.WallMS = 0
	r.Provenance = nil
	for i := range r.Results {
		r.Results[i].WallMS = 0
		r.Results[i].Cached = false
	}
}

// reportBytes is the byte-equivalence yardstick: the indented JSON that
// WriteJSON would persist.
func reportBytes(t *testing.T, r *Report) string {
	t.Helper()
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// The headline acceptance: a 4-way sharded run of the full default
// matrix, merged, is byte-equivalent (modulo wall-time and provenance
// fields) to the unsharded run — cell-for-cell, including IDs, seeds,
// hashes and lineage.
func TestMergedShardsEqualUnshardedRun(t *testing.T) {
	withStubRunner(t, richStubRunner)
	specs := DefaultMatrix().Enumerate()
	o := Options{Parallel: 4, Reps: 2, BaseSeed: 7}

	whole := Run(specs, o)
	const n = 4
	var parts []*Report
	total := 0
	for i := 0; i < n; i++ {
		so := o
		so.Shard = Shard{Index: i, Count: n}
		part := Run(specs, so)
		total += part.Scenarios
		if part.Provenance == nil || len(part.Provenance.Shards) != 1 ||
			part.Provenance.Shards[0].Index != i || part.Provenance.Shards[0].Count != n {
			t.Fatalf("shard %d provenance = %+v", i, part.Provenance)
		}
		parts = append(parts, part)
	}
	if total != len(specs) {
		t.Fatalf("shards ran %d cells, matrix has %d", total, len(specs))
	}

	merged, err := MergeReports(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Scenarios != whole.Scenarios || merged.Passed != whole.Passed || merged.Failed != whole.Failed {
		t.Fatalf("merged %d/%d/%d, unsharded %d/%d/%d",
			merged.Scenarios, merged.Passed, merged.Failed,
			whole.Scenarios, whole.Passed, whole.Failed)
	}
	if len(merged.Provenance.Shards) != n {
		t.Fatalf("merged provenance lists %d shards, want %d", len(merged.Provenance.Shards), n)
	}
	if merged.Provenance.Live != len(specs) || merged.Provenance.Cached != 0 {
		t.Fatalf("merged live/cached = %d/%d", merged.Provenance.Live, merged.Provenance.Cached)
	}

	normalizeProvenance(whole)
	normalizeProvenance(merged)
	if got, want := reportBytes(t, merged), reportBytes(t, whole); got != want {
		t.Fatalf("merged report diverges from unsharded run:\nmerged:   %.2000s\nunsharded: %.2000s", got, want)
	}

	// The queries behave identically over both shapes.
	for _, s := range specs {
		if merged.Find(s.ID()) == nil {
			t.Fatalf("merged report lost %s", s.ID())
		}
	}
	cross := func(r *Report) int { return len(r.Select(Result.Cross)) }
	if cross(merged) != cross(whole) || cross(merged) == 0 {
		t.Fatalf("Select(Cross) = %d merged vs %d unsharded", cross(merged), cross(whole))
	}
}

// Merging must also survive the disk round trip, since CI merges shard
// artifacts written by four separate processes.
func TestMergeAcrossDiskRoundTrip(t *testing.T) {
	withStubRunner(t, richStubRunner)
	specs := DefaultMatrix().Enumerate()[:10]
	o := Options{Parallel: 2, Reps: 1}
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 2; i++ {
		so := o
		so.Shard = Shard{Index: i, Count: 2}
		p := filepath.Join(dir, fmt.Sprintf("shard-%d.json", i))
		if err := Run(specs, so).WriteJSON(p); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	var parts []*Report
	for _, p := range paths {
		r, err := ReadReport(p)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, r)
	}
	merged, err := MergeReports(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Scenarios != len(specs) {
		t.Fatalf("merged %d scenarios, want %d", merged.Scenarios, len(specs))
	}
	whole := Run(specs, o)
	normalizeProvenance(whole)
	normalizeProvenance(merged)
	if reportBytes(t, merged) != reportBytes(t, whole) {
		t.Fatal("disk round-tripped merge diverges from unsharded run")
	}
}

func TestMergeRejectsMismatchedOptions(t *testing.T) {
	withStubRunner(t, richStubRunner)
	specs := DefaultMatrix().Enumerate()[:8]
	a := Run(specs, Options{Reps: 1, Shard: Shard{Index: 0, Count: 2}})
	b := Run(specs, Options{Reps: 1, BaseSeed: 5, Shard: Shard{Index: 1, Count: 2}})
	_, err := MergeReports(a, b)
	var mismatch *OptionsMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("err = %v, want *OptionsMismatchError", err)
	}
	if mismatch.Field != "base_seed" || mismatch.Report != 1 {
		t.Fatalf("mismatch = %+v", mismatch)
	}

	// Run-local knobs (parallel, scratch, cache, shard) must NOT block a
	// merge — differing shard membership is the whole point.
	c := Run(specs, Options{Reps: 1, Parallel: 1, Shard: Shard{Index: 1, Count: 2}})
	if _, err := MergeReports(a, c); err != nil {
		t.Fatalf("run-local knob blocked merge: %v", err)
	}
}

func TestMergeRejectsOverlappingCells(t *testing.T) {
	withStubRunner(t, richStubRunner)
	specs := DefaultMatrix().Enumerate()[:6]
	o := Options{Reps: 1}
	a, b := Run(specs, o), Run(specs[3:], o)
	_, err := MergeReports(a, b)
	var dup *DuplicateCellError
	if !errors.As(err, &dup) {
		t.Fatalf("err = %v, want *DuplicateCellError", err)
	}
	if dup.A != 0 || dup.B != 1 || dup.ID == "" {
		t.Fatalf("duplicate = %+v", dup)
	}
}

func TestMergeRejectsForeignSchema(t *testing.T) {
	withStubRunner(t, richStubRunner)
	a := Run(DefaultMatrix().Enumerate()[:2], Options{Reps: 1})
	b := Run(DefaultMatrix().Enumerate()[2:4], Options{Reps: 1})
	b.SchemaVersion = SchemaVersion + 1
	if _, err := MergeReports(a, b); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := MergeReports(); err == nil {
		t.Fatal("empty merge accepted")
	}
}

// A merged report keeps working when one input was itself unsharded
// (partial hand-run): its provenance is synthesized with Count 0.
func TestMergeSynthesizesProvenanceForUnshardedInputs(t *testing.T) {
	withStubRunner(t, richStubRunner)
	specs := DefaultMatrix().Enumerate()[:6]
	o := Options{Reps: 1}
	a, b := Run(specs[:3], o), Run(specs[3:], o)
	merged, err := MergeReports(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Provenance.Shards) != 2 {
		t.Fatalf("shards = %+v", merged.Provenance.Shards)
	}
	for i, sh := range merged.Provenance.Shards {
		if sh.Count != 0 || sh.Index != i || sh.Scenarios != 3 {
			t.Fatalf("synthesized shard %d = %+v", i, sh)
		}
	}
}

// A merge of merges must keep every partial's lineage distinct: wall
// times carry through, and the synthesized Count-0 indices are
// renumbered instead of colliding (two "partial 0" and two "partial 1"
// entries, which is what merge(merge(w0,w1), merge(w2,w3)) used to
// produce).
func TestMergeOfMergesKeepsPartialLineage(t *testing.T) {
	withStubRunner(t, richStubRunner)
	specs := DefaultMatrix().Enumerate()[:8]
	o := Options{Reps: 1}
	quarters := make([]*Report, 4)
	for i := range quarters {
		quarters[i] = Run(specs[2*i:2*i+2], o)
		quarters[i].WallMS = int64(100 * (i + 1)) // distinct, recognizable
	}
	left, err := MergeReports(quarters[0], quarters[1])
	if err != nil {
		t.Fatal(err)
	}
	right, err := MergeReports(quarters[2], quarters[3])
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeReports(left, right)
	if err != nil {
		t.Fatal(err)
	}
	shards := merged.Provenance.Shards
	if len(shards) != 4 {
		t.Fatalf("merge-of-merges lists %d partials, want 4: %+v", len(shards), shards)
	}
	seen := make(map[int]int64)
	for _, sh := range shards {
		if sh.Count != 0 {
			t.Fatalf("partial carries shard identity: %+v", sh)
		}
		if prev, dup := seen[sh.Index]; dup {
			t.Fatalf("index %d appears twice (wall %d and %d): lineage flattened", sh.Index, prev, sh.WallMS)
		}
		seen[sh.Index] = sh.WallMS
	}
	// Each input's wall time survives both merge levels, and the total is
	// their sum (compute spent, not elapsed).
	for i, want := range []int64{100, 200, 300, 400} {
		if seen[i] != want {
			t.Fatalf("partial %d wall = %d, want %d (indices renumbered in input order)", i, seen[i], want)
		}
	}
	if merged.WallMS != 1000 {
		t.Fatalf("merged wall = %d, want 1000", merged.WallMS)
	}

	// Deterministic -shard entries are never renumbered: i/n IS their
	// identity, and a merge-of-merges that includes real shards keeps
	// them verbatim beside renumbered partials.
	s0, s1 := o, o
	s0.Shard, s1.Shard = Shard{Index: 0, Count: 2}, Shard{Index: 1, Count: 2}
	sharded, err := MergeReports(Run(specs[:4], s0), Run(specs[:4], s1))
	if err != nil {
		t.Fatal(err)
	}
	extra := Run(specs[4:6], o)
	combined, err := MergeReports(sharded, extra)
	if err != nil {
		t.Fatal(err)
	}
	var shardEntries, partials int
	for _, sh := range combined.Provenance.Shards {
		if sh.Count == 2 {
			shardEntries++
		} else if sh.Count == 0 {
			partials++
		}
	}
	if shardEntries != 2 || partials != 1 {
		t.Fatalf("combined provenance = %+v, want 2 shard entries + 1 partial", combined.Provenance.Shards)
	}

	// Worker labels survive merging untouched: they are the durable name
	// a renumbered partial keeps.
	la := Run(specs[6:7], o)
	la.Provenance.Shards = []ShardInfo{{Label: "worker-a", Scenarios: 1, Live: 1}}
	lb := Run(specs[7:8], o)
	lb.Provenance.Shards = []ShardInfo{{Label: "worker-b", Scenarios: 1, Live: 1}}
	labeled, err := MergeReports(la, lb)
	if err != nil {
		t.Fatal(err)
	}
	var labels []string
	for _, sh := range labeled.Provenance.Shards {
		labels = append(labels, sh.Label)
	}
	if len(labels) != 2 || labels[0] != "worker-a" || labels[1] != "worker-b" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestFindToleratesUnsortedReports(t *testing.T) {
	// A hand-assembled report (results not ID-sorted) must still answer
	// Find correctly via the linear fallback.
	r := &Report{Results: []Result{
		{ID: "z/last"}, {ID: "a/first"}, {ID: "m/middle"},
	}}
	for _, id := range []string{"z/last", "a/first", "m/middle"} {
		if got := r.Find(id); got == nil || got.ID != id {
			t.Fatalf("Find(%q) = %+v", id, got)
		}
	}
	if r.Find("q/absent") != nil {
		t.Fatal("absent ID found")
	}
}

// Sharding composes with the cache: four shards sharing one cache
// directory, then a fifth unsharded run, executes zero live cells.
func TestShardsWarmSharedCacheForUnshardedRun(t *testing.T) {
	withStubRunner(t, richStubRunner)
	specs := DefaultMatrix().Enumerate()
	o := Options{Parallel: 2, Reps: 1, CacheDir: t.TempDir()}
	for i := 0; i < 4; i++ {
		so := o
		so.Shard = Shard{Index: i, Count: 4}
		if rep := Run(specs, so); rep.Provenance.Cached != 0 {
			t.Fatalf("shard %d hit the cache on a cold run: %+v", i, rep.Provenance)
		}
	}
	warm := Run(specs, o)
	if warm.Provenance.Live != 0 || warm.Provenance.Cached != len(specs) {
		t.Fatalf("warm unsharded run after sharded warmup: %+v", warm.Provenance)
	}
}

// Guard the scenario.Spec surface the cache hash folds in: adding a
// field to Spec without bumping EngineVersion silently aliases old
// cache entries. reflect-based field census.
func TestSpecShapeGuard(t *testing.T) {
	raw, err := json.Marshal(Spec{Program: "p", Impl: core.ImplMPICH, ABI: core.ABINative,
		Ckpt: core.CkptMANA, Kernel: KernelModern, RestartImpl: core.ImplOpenMPI,
		RestartABI: core.ABIMukautuva, Fault: "rank-crash", FaultStep: 1, CkptEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	// 10 serialized fields today. If this fails you added (or removed) a
	// Spec field: it is part of every cell's content address, so bump
	// EngineVersion in cache.go and re-pin TestCellHashPinned.
	if len(m) != 10 {
		t.Fatalf("Spec serializes %d fields, expected 10 — bump EngineVersion if this is intentional", len(m))
	}
}
