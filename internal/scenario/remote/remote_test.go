package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
)

// fakeClock drives lease expiry without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testSpecs picks a small, shape-diverse slice of the real matrix:
// plain cells, a checkpointed cell, a restart pairing and a fault cell,
// so lease ordering and the live equivalence test cover the straggler
// classes. Enumerate only yields valid cells, so every pick is runnable.
func testSpecs(t *testing.T, n int) []scenario.Spec {
	t.Helper()
	all := scenario.DefaultMatrix().Enumerate()
	var plain, ckpt, restart, fault []scenario.Spec
	for _, s := range all {
		switch {
		case s.Fault != "":
			fault = append(fault, s)
		case s.HasRestart():
			restart = append(restart, s)
		case s.Ckpt != "none":
			ckpt = append(ckpt, s)
		default:
			plain = append(plain, s)
		}
	}
	picks := []scenario.Spec{plain[0], plain[1], ckpt[0], restart[0], fault[0], fault[len(fault)-1]}
	if n < len(picks) {
		picks = picks[:n]
	}
	for len(picks) < n {
		picks = append(picks, plain[len(picks)])
	}
	return picks
}

// tinyOptions is the smallest runnable scale (mirrors the scenario
// package's fault-capable test options: 2x2 ranks so node-crash cells
// have a surviving node).
func tinyOptions() scenario.Options {
	return scenario.Options{
		Nodes: 2, RanksPerNode: 2, Reps: 1,
		MaxSize: 64, Iters: 2, Warmup: 1,
		AppScale: 0.01, Timeout: time.Minute,
	}
}

func newTestServer(t *testing.T, specs []scenario.Spec, o scenario.Options, dir string, clk *fakeClock, ttl time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	store, err := scenario.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{Specs: specs, Options: o, Store: store, LeaseTTL: ttl}
	if clk != nil {
		cfg.Now = clk.now
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs
}

// stubResult is the deterministic fake execution used by protocol
// tests: same bytes for the same cell no matter which worker runs it.
func stubResult(s scenario.Spec, o scenario.Options) scenario.Result {
	return scenario.Result{
		ID: s.ID(), Spec: s, Status: scenario.StatusPass,
		Reps: o.Reps, WallMS: int64(len(s.ID())),
	}
}

func putEntry(t *testing.T, base, hash, worker string, e wireEntry) int {
	t.Helper()
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	return putRaw(t, base, hash, worker, raw)
}

func putRaw(t *testing.T, base, hash, worker string, body []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/cells/"+hash, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if worker != "" {
		req.Header.Set(workerHeader, worker)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// Lease order is longest-expected-first: with no recorded history the
// shape heuristic front-loads fault cells; a recorded wall time for a
// cell — even under a stale address from a previous engine or seed —
// overrides the heuristic, which is the warm-start satellite.
func TestLeaseOrderingLongestExpectedFirst(t *testing.T) {
	specs := testSpecs(t, 6)
	o := tinyOptions()
	dir := t.TempDir()

	_, hs := newTestServer(t, specs, o, dir, nil, 0)
	client, err := Dial(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for {
		l, err := client.Lease()
		if err != nil {
			var busy *BusyError
			if asBusy(err, &busy) {
				break // all leased, none uploaded: queue exhausted
			}
			t.Fatal(err)
		}
		if l == nil {
			break
		}
		order = append(order, l.ID)
	}
	if len(order) != len(specs) {
		t.Fatalf("leased %d cells, want %d", len(order), len(specs))
	}
	// Fault cells (heaviest shapes) must all be granted before any plain
	// cell (lightest shape).
	lastFault, firstPlain := -1, len(order)
	for i, id := range order {
		spec := specByID(t, specs, id)
		switch {
		case spec.Fault != "":
			lastFault = i
		case spec.Ckpt == "none" && !spec.HasRestart():
			if i < firstPlain {
				firstPlain = i
			}
		}
	}
	if lastFault > firstPlain {
		t.Fatalf("plain cell leased before a fault straggler: %v", order)
	}

	// Warm-start: record an enormous wall time for one plain cell under a
	// DIFFERENT base seed (different address, same ID — the address is
	// about to miss, the cost is still the best predictor). A fresh
	// server must lease that cell first.
	plain := specs[0]
	oldOpts := o
	oldOpts.BaseSeed = 999
	store, err := scenario.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := stubResult(plain, oldOpts)
	res.WallMS = 1 << 30
	if err := store.Put(scenario.CellHash(plain, oldOpts), res); err != nil {
		t.Fatal(err)
	}
	_, hs2 := newTestServer(t, specs, o, dir, nil, 0)
	client2, err := Dial(hs2.URL)
	if err != nil {
		t.Fatal(err)
	}
	first, err := client2.Lease()
	if err != nil || first == nil {
		t.Fatalf("lease = %v, %v", first, err)
	}
	if first.ID != plain.ID() {
		t.Fatalf("recorded wall hint ignored: first lease is %s, want %s", first.ID, plain.ID())
	}
}

func specByID(t *testing.T, specs []scenario.Spec, id string) scenario.Spec {
	t.Helper()
	for _, s := range specs {
		if s.ID() == id {
			return s
		}
	}
	t.Fatalf("unknown cell %s", id)
	return scenario.Spec{}
}

// An expired lease requeues its cell: a dead worker costs one TTL, not
// a shard. The re-upload from the late first worker is idempotent.
func TestLeaseExpiryRequeuesCell(t *testing.T) {
	specs := testSpecs(t, 1)
	o := tinyOptions()
	clk := newFakeClock()
	srv, hs := newTestServer(t, specs, o, t.TempDir(), clk, time.Minute)
	client, err := Dial(hs.URL)
	if err != nil {
		t.Fatal(err)
	}

	l1, err := client.Lease()
	if err != nil || l1 == nil {
		t.Fatalf("lease = %v, %v", l1, err)
	}
	if l1.TTLMS != time.Minute.Milliseconds() {
		t.Fatalf("lease TTL %dms, want 60000", l1.TTLMS)
	}

	// Held: the only cell is leased, so the next ask is a busy signal
	// carrying a retry hint bounded by the fake clock's distance to
	// expiry (clamped to 1s).
	if _, err := client.Lease(); err == nil {
		t.Fatal("second lease granted while the first is live")
	} else {
		var busy *BusyError
		if !asBusy(err, &busy) {
			t.Fatalf("err = %v, want *BusyError", err)
		}
		if busy.Retry < 50*time.Millisecond || busy.Retry > time.Second {
			t.Fatalf("retry hint %v outside [50ms, 1s]", busy.Retry)
		}
	}

	// Worker 1 dies mid-cell (simply never uploads). One TTL later the
	// cell is grantable again.
	clk.advance(time.Minute + time.Second)
	l2, err := client.Lease()
	if err != nil || l2 == nil {
		t.Fatalf("post-expiry lease = %v, %v", l2, err)
	}
	if l2.ID != l1.ID || l2.Hash != l1.Hash {
		t.Fatalf("requeue granted a different cell: %+v vs %+v", l2, l1)
	}

	// Worker 2 completes it.
	res := stubResult(specs[0], o)
	if code := putEntry(t, hs.URL, l2.Hash, "w2",
		wireEntry{Engine: scenario.EngineVersion, Hash: l2.Hash, WallMS: res.WallMS, Result: res}); code != http.StatusCreated {
		t.Fatalf("upload = %d, want 201", code)
	}
	// Worker 1 rises from the dead and re-uploads: idempotent 200, and
	// the completion is still credited to w2.
	if code := putEntry(t, hs.URL, l2.Hash, "w1",
		wireEntry{Engine: scenario.EngineVersion, Hash: l2.Hash, WallMS: res.WallMS, Result: res}); code != http.StatusOK {
		t.Fatalf("duplicate upload = %d, want 200", code)
	}
	rep := srv.Report()
	if rep == nil || rep.Scenarios != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Provenance.Shards) != 1 || rep.Provenance.Shards[0].Label != "w2" {
		t.Fatalf("completion credited to %+v, want w2", rep.Provenance.Shards)
	}
	// Run complete: further leases are a clean 204.
	if l, err := client.Lease(); err != nil || l != nil {
		t.Fatalf("post-completion lease = %v, %v, want nil, nil", l, err)
	}
}

// The server polices PUTs the way Cache.Prune polices the local
// directory: corrupt bodies, mismatched addresses and foreign engine
// versions are rejected and never stored.
func TestPutValidationMirrorsPrune(t *testing.T) {
	specs := testSpecs(t, 1)
	o := tinyOptions()
	dir := t.TempDir()
	srv, hs := newTestServer(t, specs, o, dir, nil, 0)
	hash := scenario.CellHash(specs[0], o)
	good := stubResult(specs[0], o)

	if code := putRaw(t, hs.URL, hash, "w", []byte("{torn write")); code != http.StatusBadRequest {
		t.Fatalf("corrupt body = %d, want 400", code)
	}
	if code := putEntry(t, hs.URL, hash, "w",
		wireEntry{Engine: scenario.EngineVersion + 1, Hash: hash, Result: good}); code != http.StatusConflict {
		t.Fatalf("foreign engine = %d, want 409", code)
	}
	if code := putEntry(t, hs.URL, hash, "w",
		wireEntry{Engine: scenario.EngineVersion, Hash: strings.Repeat("ab", 32), Result: good}); code != http.StatusBadRequest {
		t.Fatalf("hash/address mismatch = %d, want 400", code)
	}
	alien := good
	alien.ID = "someone/else"
	if code := putEntry(t, hs.URL, hash, "w",
		wireEntry{Engine: scenario.EngineVersion, Hash: hash, Result: alien}); code != http.StatusBadRequest {
		t.Fatalf("foreign result ID = %d, want 400", code)
	}
	drifted := good
	drifted.CellHash = strings.Repeat("cd", 32)
	if code := putEntry(t, hs.URL, hash, "w",
		wireEntry{Engine: scenario.EngineVersion, Hash: hash, Result: drifted}); code != http.StatusBadRequest {
		t.Fatalf("stamped-hash drift = %d, want 400", code)
	}
	if code := putEntry(t, hs.URL, strings.Repeat("ef", 32), "w",
		wireEntry{Engine: scenario.EngineVersion, Hash: strings.Repeat("ef", 32), Result: good}); code != http.StatusNotFound {
		t.Fatalf("address outside the run = %d, want 404", code)
	}

	// None of it landed: no progress, nothing in the store.
	if p := srv.Progress(); p.Done != 0 {
		t.Fatalf("rejected uploads completed cells: %+v", p)
	}
	store, _ := scenario.OpenCache(dir)
	if _, ok := store.Get(hash); ok {
		t.Fatal("rejected upload reached the store")
	}

	// And the well-formed upload still lands after all the abuse.
	if code := putEntry(t, hs.URL, hash, "w",
		wireEntry{Engine: scenario.EngineVersion, Hash: hash, Result: good}); code != http.StatusCreated {
		t.Fatalf("valid upload = %d, want 201", code)
	}
}

// Failing results complete the run but are never persisted: a fresh
// server over the same store re-attempts them — the remote twin of the
// local cache's failures-never-pinned rule.
func TestFailuresCompleteButNeverPin(t *testing.T) {
	specs := testSpecs(t, 2)
	o := tinyOptions()
	dir := t.TempDir()
	srv, hs := newTestServer(t, specs, o, dir, nil, 0)
	client, err := Dial(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Drain(WorkerConfig{Name: "w", Execute: func(s scenario.Spec, o scenario.Options) scenario.Result {
		res := stubResult(s, o)
		if s.ID() == specs[0].ID() {
			res.Status = scenario.StatusFail
			res.Error = "transient"
		}
		return res
	}}); err != nil {
		t.Fatal(err)
	}
	rep := srv.Report()
	if rep == nil || rep.Failed != 1 || rep.Passed != 1 {
		t.Fatalf("report = %+v", rep)
	}
	got := rep.Find(specs[0].ID())
	if got == nil || got.Status != scenario.StatusFail || got.Error != "transient" {
		t.Fatalf("failed cell in report = %+v", got)
	}

	// GETs never serve the failure, and a new server re-queues exactly
	// the failed cell.
	if _, ok := client.Get(scenario.CellHash(specs[0], o)); ok {
		t.Fatal("failing result served from the store")
	}
	srv2, hs2 := newTestServer(t, specs, o, dir, nil, 0)
	if p := srv2.Progress(); p.Done != 1 || p.Cached != 1 {
		t.Fatalf("restart progress = %+v, want the passing cell cached and the failure live", p)
	}
	client2, err := Dial(hs2.URL)
	if err != nil {
		t.Fatal(err)
	}
	l, err := client2.Lease()
	if err != nil || l == nil || l.ID != specs[0].ID() {
		t.Fatalf("restarted server leased %+v, %v; want the previously failed cell", l, err)
	}
}

// The headline equivalence: four coordination-free workers over the
// lease queue produce a report cell-for-cell identical to an unsharded
// single-process run — IDs, seeds, hashes, fault resolutions, lineage —
// with wall times and provenance excepted, and completion/detection
// virtual times held to the engine's documented bar: they carry
// near-determinism under simulated NIC contention and are deliberately
// not compared, exactly as the scenario package's own determinism
// tests exclude them (see TestShrinkScenariosEndToEnd). Live engine,
// tiny scale, fully concurrent on both sides.
func TestConcurrentWorkersMatchSingleProcessRun(t *testing.T) {
	specs := testSpecs(t, 6)
	o := tinyOptions()
	o.Parallel = 2
	o.Scratch = t.TempDir()
	whole := scenario.Run(specs, o)

	srv, hs := newTestServer(t, specs, o, t.TempDir(), nil, 0)
	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	stats := make([]WorkerStats, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := Dial(hs.URL)
			if err != nil {
				errs[w] = err
				return
			}
			stats[w], errs[w] = client.Drain(WorkerConfig{
				Name: fmt.Sprintf("w%d", w), Scratch: t.TempDir(),
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	select {
	case <-srv.Done():
	default:
		t.Fatal("all workers drained but the run is not complete")
	}
	rep := srv.Report()
	if rep == nil {
		t.Fatal("no report after completion")
	}

	// Every cell was executed exactly once, split across the fleet.
	executed := 0
	for _, st := range stats {
		executed += st.Executed
	}
	if executed != len(specs) {
		t.Fatalf("fleet executed %d cells, matrix has %d", executed, len(specs))
	}
	if len(rep.Provenance.Shards) == 0 {
		t.Fatal("no per-worker provenance")
	}
	perWorker := 0
	for _, sh := range rep.Provenance.Shards {
		if sh.Count != 0 || sh.Label == "" {
			t.Fatalf("worker provenance entry = %+v", sh)
		}
		perWorker += sh.Scenarios
	}
	if perWorker != len(specs) {
		t.Fatalf("worker provenance accounts for %d cells, want %d", perWorker, len(specs))
	}

	// Cell-for-cell equality. Normalized away: wall times, provenance,
	// and the near-deterministic virtual times (completion summaries,
	// detection latencies and the lost-work windows derived from them —
	// the engine's documented exclusion). Still
	// compared exactly: IDs, seeds, hashes, statuses, latency curves,
	// lineage, and every structural fault-record field (victim ranks,
	// steps, image steps, survivors, promotions).
	normalize := func(r *scenario.Report) {
		r.WallMS = 0
		r.Provenance = nil
		for i := range r.Results {
			res := &r.Results[i]
			res.WallMS = 0
			res.Cached = false
			res.Time = nil
			res.RestartTime = nil
			for f := range res.Faults {
				res.Faults[f].DetectVirtMS = 0
				res.Faults[f].LostVirtMS = 0
			}
		}
	}
	normalize(whole)
	normalize(rep)
	a, err := json.MarshalIndent(whole, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("work-stealing report diverges from single-process run:\nsingle: %.2000s\nfleet:  %.2000s", a, b)
	}
}

// A warm store completes the run before the first lease: the rerun
// executes zero live cells, workers drain instantly, and the report
// marks every cell cached.
func TestWarmRerunExecutesZeroLiveCells(t *testing.T) {
	specs := testSpecs(t, 4)
	o := tinyOptions()
	dir := t.TempDir()
	_, hs := newTestServer(t, specs, o, dir, nil, 0)
	client, err := Dial(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Drain(WorkerConfig{Name: "seed", Execute: stubResult}); err != nil {
		t.Fatal(err)
	}

	srv2, hs2 := newTestServer(t, specs, o, dir, nil, 0)
	select {
	case <-srv2.Done():
	default:
		t.Fatal("warm server not complete at startup")
	}
	client2, err := Dial(hs2.URL)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client2.Drain(WorkerConfig{Name: "idle", Execute: func(s scenario.Spec, o scenario.Options) scenario.Result {
		t.Errorf("warm rerun executed %s", s.ID())
		return stubResult(s, o)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 || stats.LocalHits != 0 {
		t.Fatalf("warm drain stats = %+v, want all zeros", stats)
	}
	rep := srv2.Report()
	if rep.Provenance.Live != 0 || rep.Provenance.Cached != len(specs) {
		t.Fatalf("warm report provenance = %+v", rep.Provenance)
	}
	if rep.WallMS != 0 {
		t.Fatalf("warm report charges %dms of compute", rep.WallMS)
	}
	for _, res := range rep.Results {
		if !res.Cached {
			t.Fatalf("warm cell %s not marked cached", res.ID)
		}
	}
}

// The worker's local cache composes as a read-through tier: locally
// warm cells are published to the server without re-executing.
func TestLocalTierPublishesWithoutReexecution(t *testing.T) {
	specs := testSpecs(t, 3)
	o := tinyOptions()
	local, err := scenario.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs[:2] {
		if err := local.Put(scenario.CellHash(s, o), stubResult(s, o)); err != nil {
			t.Fatal(err)
		}
	}
	srv, hs := newTestServer(t, specs, o, t.TempDir(), nil, 0)
	client, err := Dial(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Drain(WorkerConfig{Name: "w", Local: local, Execute: stubResult})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LocalHits != 2 || stats.Executed != 1 {
		t.Fatalf("stats = %+v, want 2 local hits + 1 execution", stats)
	}
	if rep := srv.Report(); rep == nil || rep.Passed != len(specs) {
		t.Fatalf("report = %+v", rep)
	}
	// The executed cell was written back into the local tier.
	if _, ok := local.Get(scenario.CellHash(specs[2], o)); !ok {
		t.Fatal("executed cell not written back to the local tier")
	}
}

// Store GETs carry the immutability headers; the client Store facade
// round-trips results and treats every anomaly as a miss.
func TestCellTransferAndCaching(t *testing.T) {
	specs := testSpecs(t, 1)
	o := tinyOptions()
	_, hs := newTestServer(t, specs, o, t.TempDir(), nil, 0)
	client, err := Dial(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	hash := scenario.CellHash(specs[0], o)

	if _, ok := client.Get(hash); ok {
		t.Fatal("hit before any upload")
	}
	if client.Head(hash) {
		t.Fatal("HEAD hit before any upload")
	}
	want := stubResult(specs[0], o)
	if err := client.Put(hash, want); err != nil {
		t.Fatal(err)
	}
	got, ok := client.Get(hash)
	if !ok || got.ID != want.ID || got.WallMS != want.WallMS {
		t.Fatalf("round trip = %+v, %v", got, ok)
	}
	if !client.Head(hash) {
		t.Fatal("HEAD miss after upload")
	}

	resp, err := http.Get(hs.URL + "/cells/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if et := resp.Header.Get("ETag"); et != `"`+hash+`"` {
		t.Fatalf("ETag = %q", et)
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "immutable") {
		t.Fatalf("Cache-Control = %q", cc)
	}
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/cells/"+hash, nil)
	req.Header.Set("If-None-Match", `"`+hash+`"`)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", resp2.StatusCode)
	}
}

// Dial refuses a server from a different engine or schema generation:
// addresses and results would not be interchangeable.
func TestDialRefusesVersionDrift(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"engine", func(m *Manifest) { m.EngineVersion++ }},
		{"schema", func(m *Manifest) { m.SchemaVersion++ }},
	} {
		man := Manifest{SchemaVersion: scenario.SchemaVersion, EngineVersion: scenario.EngineVersion}
		tc.mutate(&man)
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(man)
		}))
		if _, err := Dial(hs.URL); err == nil {
			t.Errorf("%s drift accepted", tc.name)
		}
		hs.Close()
	}
}

// The report endpoint serves progress (202) while draining and flips to
// the full report (200) at completion; the polling client sees both.
func TestReportEndpointProgression(t *testing.T) {
	specs := testSpecs(t, 2)
	o := tinyOptions()
	_, hs := newTestServer(t, specs, o, t.TempDir(), nil, 0)
	client, err := Dial(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Report(0); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("report before completion = %v, want incomplete error", err)
	}
	if _, err := client.Drain(WorkerConfig{Name: "w", Execute: stubResult}); err != nil {
		t.Fatal(err)
	}
	rep, err := client.Report(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios != len(specs) || rep.Passed != len(specs) {
		t.Fatalf("report = %d scenarios, %d passed", rep.Scenarios, rep.Passed)
	}
}
