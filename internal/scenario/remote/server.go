package remote

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/scenario"
)

// DefaultLeaseTTL bounds how long a worker may sit on a cell before the
// scheduler hands it to someone else. It is sized for the full-scale
// fault cells (minutes of checkpoint/restart legs), because the cost of
// a too-short TTL — two workers racing the same straggler — is paid on
// exactly the most expensive cells.
const DefaultLeaseTTL = 10 * time.Minute

// ServerConfig describes one matrix run to serve.
type ServerConfig struct {
	// Specs is the cell set, deduplicated by the constructor exactly as
	// scenario.Run deduplicates (first occurrence wins).
	Specs []scenario.Spec
	// Options are the run-wide execution options; only the serialized
	// (result-determining) fields travel to workers.
	Options scenario.Options
	// Store is the persistent content-addressed backing store. Cells it
	// already holds are complete before the first lease — the warm-start
	// path — and its recorded wall times drive lease ordering.
	Store *scenario.Cache
	// LeaseTTL overrides DefaultLeaseTTL when positive.
	LeaseTTL time.Duration
	// Now overrides the wall clock; tests inject a fake clock to expire
	// leases without sleeping. Nil means time.Now.
	Now func() time.Time
}

// cell is the scheduler's view of one matrix cell.
type cell struct {
	spec   scenario.Spec
	id     string
	hash   string
	expect int64 // expected wall ms, for longest-expected-first ordering

	done   bool
	cached bool             // satisfied by the store before any lease
	failed *scenario.Result // in-memory failing result; never persisted

	leaseUntil time.Time
	worker     string // provenance: the worker whose upload completed it
	wallMS     int64
	live       bool // completed by an upload rather than the warm store
}

// Server is the matrixd core: an http.Handler serving the store and
// scheduler protocol for one enumerated matrix run.
type Server struct {
	opts  scenario.Options
	store *scenario.Cache
	ttl   time.Duration
	now   func() time.Time

	mu     sync.Mutex
	cells  []*cell // longest-expected-first
	byHash map[string]*cell
	done   int
	doneCh chan struct{}

	// Operational counters for /metrics and /status (all under mu).
	started       time.Time
	leaseGrants   int64
	leaseExpiries int64
	storeHits     int64
	storeMisses   int64
	bytesServed   int64
	bytesReceived int64
	workers       map[string]*workerStatus
}

// workerStatus is the server's liveness/throughput view of one worker,
// keyed by its X-Matrix-Worker name. Protected by Server.mu.
type workerStatus struct {
	leases    int64
	cells     int64
	failed    int64
	wallMS    int64
	firstSeen time.Time
	lastSeen  time.Time
}

// NewServer enumerates the run (hashes every cell, scans the store for
// already-complete results, orders the live queue longest-expected-
// first) and returns the ready-to-serve scheduler.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("remote: server requires a backing store")
	}
	s := &Server{
		opts:    cfg.Options,
		store:   cfg.Store,
		ttl:     cfg.LeaseTTL,
		now:     cfg.Now,
		byHash:  make(map[string]*cell),
		doneCh:  make(chan struct{}),
		workers: make(map[string]*workerStatus),
	}
	if s.ttl <= 0 {
		s.ttl = DefaultLeaseTTL
	}
	if s.now == nil {
		s.now = time.Now
	}
	s.started = s.now()
	hints := cfg.Store.WallHints()
	seen := make(map[string]bool, len(cfg.Specs))
	for _, spec := range cfg.Specs {
		id := spec.ID()
		if seen[id] {
			continue
		}
		seen[id] = true
		c := &cell{
			spec:   spec,
			id:     id,
			hash:   scenario.CellHash(spec, cfg.Options),
			expect: expectedWall(spec, cfg.Options, hints),
		}
		if res, ok := cfg.Store.Get(c.hash); ok && res.ID == id {
			c.done, c.cached = true, true
			s.done++
		}
		s.cells = append(s.cells, c)
		s.byHash[c.hash] = c
	}
	if len(s.cells) == 0 {
		return nil, fmt.Errorf("remote: empty cell set")
	}
	// Longest-expected-first: the 10-rep fault stragglers go to the
	// front of the queue so no worker discovers one with the rest of
	// the fleet already idle. The sort is stable, so equal expectations
	// keep enumeration order and the schedule is deterministic.
	sort.SliceStable(s.cells, func(i, j int) bool { return s.cells[i].expect > s.cells[j].expect })
	if s.done == len(s.cells) {
		close(s.doneCh)
	}
	return s, nil
}

// expectedWall predicts one cell's wall cost for queue ordering. A
// recorded wall time from a previous run of the same cell ID — any
// engine generation; a stale result is still a current cost estimate —
// wins outright; cells that have never run backfill from a shape
// heuristic ranking the known straggler classes: crash cells that pay
// checkpoint/restart legs dominate, in-place recoveries and degraded
// completions follow, then restart pairings, then checkpointed
// straight runs, then plain cells. Everything scales with the
// repetition count, which is exactly what makes 10-rep fault cells the
// stragglers the ISSUE names. Expected cost orders the queue and
// nothing else — a wrong guess costs schedule quality, never
// correctness.
func expectedWall(s scenario.Spec, o scenario.Options, hints map[string]int64) int64 {
	if h := hints[s.ID()]; h > 0 {
		return h
	}
	w := int64(1)
	switch {
	case s.Fault == faults.KindRankCrash && s.Recovery == "",
		s.Fault == faults.KindNodeCrash:
		w = 40 // periodic checkpoints + detect + restart legs
	case s.Recovery != "":
		w = 15 // in-place shrink/replicate recovery
	case s.Fault == faults.KindNICDegrade:
		w = 10 // completes under a degraded fabric
	case s.HasRestart():
		w = 5 // checkpoint, finish, restart, finish again
	case s.Ckpt != core.CkptNone:
		w = 2
	}
	reps := o.Reps
	if reps <= 0 {
		reps = 1
	}
	return w * int64(reps)
}

// Done returns a channel closed when every cell is complete.
func (s *Server) Done() <-chan struct{} { return s.doneCh }

// Progress snapshots the run's completion state.
func (s *Server) Progress() Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.progressLocked()
}

func (s *Server) progressLocked() Progress {
	p := Progress{Total: len(s.cells), Done: s.done}
	now := s.now()
	for _, c := range s.cells {
		switch {
		case c.done && c.cached:
			p.Cached++
		case c.done && c.failed != nil:
			p.Failed++
		case !c.done && now.Before(c.leaseUntil):
			p.Leased++
		}
	}
	return p
}

// Report assembles the run's matrix report from the store and the
// in-memory failures, exactly as an unsharded scenario.Run would have
// written it (IDs, seeds, hashes, measurements — wall times and
// provenance are the run's own). Provenance carries one Count-0 entry
// per worker, labeled with the worker's name, in place of shard
// entries. Returns nil until the run is complete.
func (s *Server) Report() *scenario.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done != len(s.cells) {
		return nil
	}
	results := make([]scenario.Result, 0, len(s.cells))
	workers := make(map[string]*scenario.ShardInfo)
	var order []string
	var wall int64
	for _, c := range s.cells {
		var res scenario.Result
		switch {
		case c.failed != nil:
			res = *c.failed
		default:
			got, ok := s.store.Get(c.hash)
			if !ok || got.ID != c.id {
				// The store lost or mangled an entry between completion
				// and assembly; report it as the failure it is rather
				// than fabricating a cell.
				res = scenario.Result{
					ID: c.id, Spec: c.spec, Status: scenario.StatusFail,
					Error: "remote: stored result missing at report assembly", CellHash: c.hash,
				}
			} else {
				res = got
			}
		}
		res.Cached = c.cached
		results = append(results, res)
		if c.live {
			wall += c.wallMS
			w := workers[c.worker]
			if w == nil {
				w = &scenario.ShardInfo{Label: c.worker}
				workers[c.worker] = w
				order = append(order, c.worker)
			}
			w.Scenarios++
			w.Live++
			w.WallMS += c.wallMS
		}
	}
	rep := scenario.AssembleReport(s.opts, results, time.Duration(wall)*time.Millisecond)
	sort.Strings(order)
	infos := make([]scenario.ShardInfo, 0, len(order))
	for i, name := range order {
		w := workers[name]
		w.Index = i
		infos = append(infos, *w)
	}
	rep.Provenance.Shards = infos
	return rep
}

// ServeHTTP routes the protocol. Routing is by hand (method + prefix)
// so the server behaves identically across Go versions' ServeMux
// semantics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/config" && r.Method == http.MethodGet:
		s.handleConfig(w)
	case r.URL.Path == "/lease" && r.Method == http.MethodPost:
		s.handleLease(w, r)
	case r.URL.Path == "/report" && r.Method == http.MethodGet:
		s.handleReport(w)
	case r.URL.Path == "/metrics" && r.Method == http.MethodGet:
		s.handleMetrics(w)
	case r.URL.Path == "/status" && r.Method == http.MethodGet:
		s.handleStatus(w)
	case strings.HasPrefix(r.URL.Path, "/cells/"):
		s.handleCell(w, r, strings.TrimPrefix(r.URL.Path, "/cells/"))
	default:
		http.NotFound(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleConfig(w http.ResponseWriter) {
	s.mu.Lock()
	cells := len(s.cells)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Manifest{
		SchemaVersion: scenario.SchemaVersion,
		EngineVersion: scenario.EngineVersion,
		Cells:         cells,
		Options:       s.opts,
	})
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	worker := workerName(r)
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		now := s.now()
		s.touchWorkerLocked(worker, now)
		remaining := len(s.cells) - s.done
		if remaining == 0 {
			s.mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
			return
		}
		var nextExpiry time.Time
		for _, c := range s.cells {
			if c.done {
				continue
			}
			if now.Before(c.leaseUntil) {
				// Held by a live lease; remember the earliest release in
				// case nothing is grantable.
				if nextExpiry.IsZero() || c.leaseUntil.Before(nextExpiry) {
					nextExpiry = c.leaseUntil
				}
				continue
			}
			// Grantable: never leased, or the previous lease expired — the
			// requeue that bounds a dead worker's cost to one TTL.
			if !c.leaseUntil.IsZero() {
				s.leaseExpiries++
			}
			s.leaseGrants++
			s.workers[worker].leases++
			c.leaseUntil = now.Add(s.ttl)
			lease := Lease{
				ID: c.id, Spec: c.spec, Hash: c.hash,
				TTLMS: s.ttl.Milliseconds(), Remaining: remaining,
			}
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, lease)
			return
		}
		// Every remaining cell is leased out: the fleet has more hands
		// than work. The common way this resolves is a live worker
		// finishing its straggler — not a lease expiring — so bouncing
		// the caller into a blind sleep would stretch the run's tail by
		// the whole sleep. Instead, hold the request once (bounded by the
		// earliest lease release, clamped to a second) and answer 204 the
		// moment the run completes; only if the hold elapses without
		// completion does the caller get a 503 with the retry hint.
		retry := nextExpiry.Sub(now)
		if retry < 50*time.Millisecond {
			retry = 50 * time.Millisecond
		}
		if retry > time.Second {
			retry = time.Second
		}
		s.mu.Unlock()
		if attempt == 0 {
			t := time.NewTimer(retry)
			select {
			case <-s.doneCh:
				t.Stop()
				w.WriteHeader(http.StatusNoContent)
				return
			case <-r.Context().Done():
				t.Stop()
				return
			case <-t.C:
				continue // a lease may have expired meanwhile; look again
			}
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]int64{"retry_ms": retry.Milliseconds()})
		return
	}
}

func (s *Server) handleReport(w http.ResponseWriter) {
	if rep := s.Report(); rep != nil {
		writeJSON(w, http.StatusOK, rep)
		return
	}
	s.mu.Lock()
	p := s.progressLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, p)
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request, hash string) {
	s.mu.Lock()
	c := s.byHash[hash]
	s.mu.Unlock()
	if c == nil || strings.ContainsRune(hash, '/') {
		// Content addresses outside this run are unknown by
		// construction: the server only answers for cells it leased.
		http.NotFound(w, r)
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		s.serveCell(w, r, c)
	case http.MethodPut:
		s.acceptCell(w, r, c)
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// serveCell answers GET/HEAD. Entries are immutable — the address
// covers everything that determines the bytes — so the hash doubles as
// a strong ETag and revalidation is a 304 with no store read beyond
// the existence check.
func (s *Server) serveCell(w http.ResponseWriter, r *http.Request, c *cell) {
	res, ok := s.store.Get(c.hash)
	s.mu.Lock()
	if ok && res.ID == c.id {
		s.storeHits++
	} else {
		s.storeMisses++
	}
	s.mu.Unlock()
	if !ok || res.ID != c.id {
		http.NotFound(w, r)
		return
	}
	etag := `"` + c.hash + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	if strings.Contains(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	raw, err := json.MarshalIndent(wireEntry{
		Engine: scenario.EngineVersion, Hash: c.hash, WallMS: res.WallMS, Result: res,
	}, "", "  ")
	if err != nil {
		http.Error(w, "encoding entry: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	s.bytesServed += int64(len(raw))
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

// acceptCell validates and stores an uploaded result, policing the
// wire the way Cache.Prune polices the local directory: undecodable
// entries and hash mismatches are 400s, a foreign EngineVersion is a
// 409, and none of them touch the store. Passing results persist;
// failing results stay in memory so they are re-attempted on the next
// server run, exactly like the local cache's failures-never-pinned
// rule. Duplicate uploads are idempotent.
func (s *Server) acceptCell(w http.ResponseWriter, r *http.Request, c *cell) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, "reading entry: "+err.Error(), http.StatusBadRequest)
		return
	}
	var e wireEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		http.Error(w, "undecodable entry: "+err.Error(), http.StatusBadRequest)
		return
	}
	switch {
	case e.Engine != scenario.EngineVersion:
		http.Error(w, fmt.Sprintf("entry engine version %d, server serves %d", e.Engine, scenario.EngineVersion),
			http.StatusConflict)
		return
	case e.Hash != c.hash:
		http.Error(w, "entry hash does not match its address", http.StatusBadRequest)
		return
	case e.Result.ID != c.id:
		http.Error(w, fmt.Sprintf("entry holds result for %q, address names %q", e.Result.ID, c.id),
			http.StatusBadRequest)
		return
	case e.Result.CellHash != "" && e.Result.CellHash != c.hash:
		http.Error(w, "result's stamped cell hash disagrees with its address (engine drift?)",
			http.StatusBadRequest)
		return
	}
	worker := workerName(r)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytesReceived += int64(len(raw))
	s.touchWorkerLocked(worker, s.now())
	if c.done {
		// A re-upload of a completed cell: a worker that outlived its
		// lease, or a retry. The bytes are equal by determinism; accept
		// and change nothing.
		w.WriteHeader(http.StatusOK)
		return
	}
	if e.Result.Status == scenario.StatusPass {
		if err := s.store.Put(c.hash, e.Result); err != nil {
			http.Error(w, "storing entry: "+err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		res := e.Result
		res.Cached = false
		c.failed = &res
	}
	c.done = true
	c.live = true
	c.worker = worker
	c.wallMS = e.Result.WallMS
	ws := s.workers[worker]
	ws.cells++
	ws.wallMS += e.Result.WallMS
	if e.Result.Status != scenario.StatusPass {
		ws.failed++
	}
	s.done++
	if s.done == len(s.cells) {
		close(s.doneCh)
	}
	w.WriteHeader(http.StatusCreated)
}
