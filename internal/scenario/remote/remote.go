// Package remote promotes the scenario result cache from a filesystem
// directory to a network protocol: matrix-as-a-service. It is the
// paper's "re-validate the world on every commit" made cheap — one
// content-addressed store server (cmd/matrixd) serves completed cell
// results to any number of coordination-free worker processes, and a
// lease-based work-stealing scheduler replaces static -shard i/n
// partitioning, whose wall time was gated by whichever shard drew the
// fault-recovery stragglers.
//
// The protocol has two halves, both deliberately narrow:
//
// The store half is the Store interface over HTTP, one route per verb:
//
//	GET  /cells/<hash>   the cached entry, or 404. Entries are
//	                     immutable — equal addresses hold equal results
//	                     by construction — so responses carry the hash
//	                     as a strong ETag plus an immutable
//	                     Cache-Control, and If-None-Match revalidates
//	                     for free. 304 on match.
//	HEAD /cells/<hash>   existence probe, same headers, no body.
//	PUT  /cells/<hash>   store a completed entry. Validated the way
//	                     Cache.Prune polices the local directory:
//	                     undecodable bodies, hash mismatches and
//	                     results stamped with a foreign EngineVersion
//	                     are rejected (400/409), never stored.
//	                     Duplicate PUTs of the same hash are idempotent
//	                     (the bytes are equal by determinism). Passing
//	                     results persist via the same atomic
//	                     temp+rename discipline as the local cache;
//	                     failing results are held in memory only, so a
//	                     failure is never pinned across server runs.
//
// The scheduler half hands out the live work:
//
//	GET  /config         the run manifest: schema/engine versions, the
//	                     serialized Options (everything that determines
//	                     cell results), and the cell count. Clients
//	                     refuse a manifest from a different engine.
//	POST /lease          the next uncached cell, longest-expected-first
//	                     (recorded wall times from the store via
//	                     Cache.WallHints, shape heuristics when a cell
//	                     has never run), with a deadline. 200 with the
//	                     lease, 204 when every cell is complete. When
//	                     all remaining cells are leased out the server
//	                     holds the request briefly (long-poll, bounded
//	                     by the earliest lease release and one second)
//	                     so completion turns into an immediate 204
//	                     rather than a sleep-length tail; if the hold
//	                     elapses first, 503 with a retry hint. An
//	                     expired lease requeues the cell, so a dead
//	                     worker costs one lease TTL, not a shard.
//	GET  /report         the assembled matrix report (200) once every
//	                     cell is complete; 202 with progress counts
//	                     while the fleet is still draining. The server
//	                     assembles the report as results stream in —
//	                     there is no separate merge step — and its
//	                     provenance records each worker's cell count
//	                     and wall time the way shard provenance did.
//
// Workers need no configuration beyond the server URL: Dial fetches the
// manifest, Drain leases cells, executes them with scenario.RunCell,
// and uploads the results, optionally composing a local directory cache
// under the remote store (scenario.Tiered) so warm local results are
// published instead of re-executed. Determinism does the rest: any
// interleaving of any number of workers produces the same report an
// unsharded single-process run would have, cell for cell.
package remote

import (
	"repro/internal/scenario"
)

// Manifest is the run description served at /config: the two version
// stamps a client must agree on, the serialized Options (exactly the
// result-determining fields — run-local knobs are excluded from
// Options' JSON), and the cell count.
type Manifest struct {
	SchemaVersion int              `json:"schema_version"`
	EngineVersion int              `json:"engine_version"`
	Cells         int              `json:"cells"`
	Options       scenario.Options `json:"options"`
}

// Lease is one granted unit of work: the cell to execute and the
// deadline discipline. A worker that cannot upload the result before
// TTL elapses should assume the cell has been re-leased; its own
// upload remains welcome (idempotent) but may be credited to another
// worker.
type Lease struct {
	// ID and Spec name the cell; Hash is its content address, which the
	// worker must independently reproduce (CellHash over Spec and the
	// manifest Options) — a mismatch means the two sides' engines have
	// drifted and the result would be unusable.
	ID   string        `json:"id"`
	Spec scenario.Spec `json:"spec"`
	Hash string        `json:"hash"`
	// TTLMS is the lease duration in milliseconds.
	TTLMS int64 `json:"ttl_ms"`
	// Remaining counts cells not yet complete, this one included —
	// worker-side progress display.
	Remaining int `json:"remaining"`
}

// Progress is the run's completion state, served with a 202 at /report
// while incomplete.
type Progress struct {
	Total  int `json:"total"`
	Done   int `json:"done"`
	Cached int `json:"cached"`
	Failed int `json:"failed"`
	Leased int `json:"leased"`
}

// wireEntry is the on-wire shape of one stored cell: the same triple
// the local cache persists (engine stamp, address, result) plus the
// top-level wall_ms scheduling hint, so a remote store directory and a
// local one hold interchangeable bytes.
type wireEntry struct {
	Engine int             `json:"engine_version"`
	Hash   string          `json:"hash"`
	WallMS int64           `json:"wall_ms,omitempty"`
	Result scenario.Result `json:"result"`
}

// workerHeader carries the worker's self-chosen name on lease and
// upload requests; the server uses it only for provenance labels.
const workerHeader = "X-Matrix-Worker"
