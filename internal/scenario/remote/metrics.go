package remote

// The matrixd operational plane: GET /metrics exposes the scheduler's
// counters in Prometheus text exposition format, GET /status renders
// the same state as a one-screen human summary. Both are snapshots
// under the scheduler mutex — cheap enough to scrape every few seconds
// against a server whose hot path is leases, not metrics.
//
// The counters are deliberately reconcilable with the assembled
// report's provenance: matrixd_worker_cells_total summed over workers
// equals the report's live count, matrixd_cells_cached equals its
// cached count, and matrixd_cells_done equals its cell total — so CI
// can cross-check the scraped plane against results.json.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// touchWorkerLocked records that a named worker was heard from at now.
// Callers hold s.mu.
func (s *Server) touchWorkerLocked(name string, now time.Time) {
	ws := s.workers[name]
	if ws == nil {
		ws = &workerStatus{firstSeen: now}
		s.workers[name] = ws
	}
	ws.lastSeen = now
}

// workerName extracts the request's worker label, matching acceptCell's
// historical provenance default for unlabeled workers.
func workerName(r *http.Request) string {
	if w := r.Header.Get(workerHeader); w != "" {
		return w
	}
	return "anonymous"
}

// sortedWorkersLocked returns the worker names in lexical order, so
// /metrics and /status render deterministically. Callers hold s.mu.
func (s *Server) sortedWorkersLocked() []string {
	names := make([]string, 0, len(s.workers))
	for name := range s.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Metrics renders the operational counters in Prometheus text
// exposition format (version 0.0.4): gauges for queue state, counters
// for everything cumulative, one labeled series per worker.
func (s *Server) Metrics() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.progressLocked()
	now := s.now()

	var b strings.Builder
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("matrixd_cells_total", "Cells in this matrix run.", int64(p.Total))
	gauge("matrixd_cells_done", "Cells complete (cached, live, or failed).", int64(p.Done))
	gauge("matrixd_cells_cached", "Cells satisfied by the warm store before any lease.", int64(p.Cached))
	gauge("matrixd_cells_failed", "Cells whose uploaded result was a failure.", int64(p.Failed))
	gauge("matrixd_cells_leased", "Cells currently out on a live lease.", int64(p.Leased))
	gauge("matrixd_cells_queued", "Cells neither done nor leased.", int64(p.Total-p.Done-p.Leased))
	counter("matrixd_lease_grants_total", "Leases granted, including regrants of expired leases.", s.leaseGrants)
	counter("matrixd_lease_expiries_total", "Leases that expired and were regranted to another worker.", s.leaseExpiries)
	counter("matrixd_store_hits_total", "GET /cells requests answered from the store.", s.storeHits)
	counter("matrixd_store_misses_total", "GET /cells requests the store could not answer.", s.storeMisses)
	counter("matrixd_store_served_bytes_total", "Result bytes served to workers.", s.bytesServed)
	counter("matrixd_store_received_bytes_total", "Result bytes uploaded by workers.", s.bytesReceived)
	gauge("matrixd_uptime_seconds", "Seconds since the scheduler was constructed.", int64(now.Sub(s.started).Seconds()))

	names := s.sortedWorkersLocked()
	series := func(name, help, typ string, val func(*workerStatus) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, n := range names {
			fmt.Fprintf(&b, "%s{worker=%q} %d\n", name, n, val(s.workers[n]))
		}
	}
	if len(names) > 0 {
		series("matrixd_worker_cells_total", "Cells completed live by this worker.", "counter",
			func(w *workerStatus) int64 { return w.cells })
		series("matrixd_worker_failed_total", "Failing results uploaded by this worker.", "counter",
			func(w *workerStatus) int64 { return w.failed })
		series("matrixd_worker_leases_total", "Leases granted to this worker.", "counter",
			func(w *workerStatus) int64 { return w.leases })
		series("matrixd_worker_wall_ms_total", "Wall milliseconds of live cell execution by this worker.", "counter",
			func(w *workerStatus) int64 { return w.wallMS })
		series("matrixd_worker_last_seen_seconds", "Seconds since this worker was last heard from.", "gauge",
			func(w *workerStatus) int64 { return int64(now.Sub(w.lastSeen).Seconds()) })
	}
	return b.String()
}

// Status renders a one-screen human summary of the same state.
func (s *Server) Status() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.progressLocked()
	now := s.now()

	var b strings.Builder
	fmt.Fprintf(&b, "matrixd up %v\n", now.Sub(s.started).Round(time.Second))
	fmt.Fprintf(&b, "cells: %d/%d done (%d cached, %d failed), %d leased, %d queued\n",
		p.Done, p.Total, p.Cached, p.Failed, p.Leased, p.Total-p.Done-p.Leased)
	fmt.Fprintf(&b, "leases: %d granted, %d expired+requeued\n", s.leaseGrants, s.leaseExpiries)
	fmt.Fprintf(&b, "store: %d hits, %d misses, %d B served, %d B received\n",
		s.storeHits, s.storeMisses, s.bytesServed, s.bytesReceived)
	names := s.sortedWorkersLocked()
	if len(names) == 0 {
		fmt.Fprintf(&b, "workers: none seen yet\n")
		return b.String()
	}
	fmt.Fprintf(&b, "workers (%d):\n", len(names))
	for _, n := range names {
		w := s.workers[n]
		tput := "-"
		if w.cells > 0 && w.wallMS > 0 {
			tput = fmt.Sprintf("%.2f cells/s", float64(w.cells)/(float64(w.wallMS)/1000))
		}
		fmt.Fprintf(&b, "  %-20s %3d cells (%d failed), %6.1fs wall, %s, last seen %v ago\n",
			n, w.cells, w.failed, float64(w.wallMS)/1000, tput, now.Sub(w.lastSeen).Round(time.Second))
	}
	return b.String()
}

func (s *Server) handleMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, s.Metrics())
}

func (s *Server) handleStatus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, s.Status())
}
