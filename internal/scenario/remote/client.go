package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/scenario"
)

// Client speaks the matrixd protocol. Its Get/Put half implements
// scenario.Store, so a remote server drops into every place a local
// cache directory does — scenario.Options.Store, scenario.Tiered — and
// its Lease/Drain half is the work-stealing worker.
type Client struct {
	base   string
	http   *http.Client
	worker string
	man    Manifest
}

// BusyError is Lease's "nothing grantable yet": every remaining cell
// is held by a live lease. Retry says when the earliest lease can
// expire.
type BusyError struct {
	Retry time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("remote: all remaining cells are leased; retry in %v", e.Retry)
}

// Dial fetches the server's manifest and refuses engine or schema
// drift: a worker built from different source would compute different
// cell addresses (or different results), and every such divergence is
// better rejected at connect time than discovered as a 409 mid-run.
func Dial(baseURL string) (*Client, error) {
	c := &Client{base: strings.TrimRight(baseURL, "/"), http: &http.Client{Timeout: 2 * time.Minute}}
	resp, err := c.http.Get(c.base + "/config")
	if err != nil {
		return nil, fmt.Errorf("remote: dialing %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote: %s/config answered %s", baseURL, resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&c.man); err != nil {
		return nil, fmt.Errorf("remote: decoding manifest: %w", err)
	}
	if c.man.EngineVersion != scenario.EngineVersion {
		return nil, fmt.Errorf("remote: server engine version %d, this build runs %d — results would not be interchangeable",
			c.man.EngineVersion, scenario.EngineVersion)
	}
	if c.man.SchemaVersion != scenario.SchemaVersion {
		return nil, fmt.Errorf("remote: server schema v%d, this build speaks v%d",
			c.man.SchemaVersion, scenario.SchemaVersion)
	}
	return c, nil
}

// SetWorker names this client in lease and upload requests; the server
// uses the name only for provenance labels.
func (c *Client) SetWorker(name string) { c.worker = name }

// Manifest returns the run description fetched at Dial.
func (c *Client) Manifest() Manifest { return c.man }

// Options returns the run's result-determining options, as the server
// serialized them. Run-local fields (pool width, scratch, store) are
// the worker's own to choose.
func (c *Client) Options() scenario.Options { return c.man.Options }

// Get implements scenario.Store over GET /cells/<hash>. Any failure —
// network, status, decode, a mismatched or foreign-engine entry — is a
// miss, mirroring the local cache's "broken reads degrade to live
// execution" contract.
func (c *Client) Get(hash string) (scenario.Result, bool) {
	resp, err := c.http.Get(c.base + "/cells/" + hash)
	if err != nil {
		return scenario.Result{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return scenario.Result{}, false
	}
	var e wireEntry
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&e); err != nil {
		return scenario.Result{}, false
	}
	if e.Engine != scenario.EngineVersion || e.Hash != hash || e.Result.Status != scenario.StatusPass {
		return scenario.Result{}, false
	}
	return e.Result, true
}

// Head probes for an entry without transferring it.
func (c *Client) Head(hash string) bool {
	req, err := http.NewRequest(http.MethodHead, c.base+"/cells/"+hash, nil)
	if err != nil {
		return false
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Put implements scenario.Store over PUT /cells/<hash>. Unlike Get's
// soft misses, Put reports failure loudly: publishing to the shared
// store is what marks the leased cell complete, and a worker must not
// believe its work landed when it did not.
func (c *Client) Put(hash string, res scenario.Result) error {
	res.Cached = false
	raw, err := json.Marshal(wireEntry{
		Engine: scenario.EngineVersion, Hash: hash, WallMS: res.WallMS, Result: res,
	})
	if err != nil {
		return fmt.Errorf("remote: encoding entry: %w", err)
	}
	req, err := http.NewRequest(http.MethodPut, c.base+"/cells/"+hash, bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("remote: put %s: %w", hash[:8], err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.worker != "" {
		req.Header.Set(workerHeader, c.worker)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("remote: put %s: %w", hash[:8], err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("remote: put %s: %s: %s", hash[:8], resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}

// Lease asks for the next cell. A nil lease with a nil error means the
// run is complete (204) and the worker should stop; a *BusyError means
// every remaining cell is leased to someone else and the caller should
// wait and retry; other errors are the server being gone or broken.
func (c *Client) Lease() (*Lease, error) {
	req, err := http.NewRequest(http.MethodPost, c.base+"/lease", nil)
	if err != nil {
		return nil, fmt.Errorf("remote: lease: %w", err)
	}
	if c.worker != "" {
		req.Header.Set(workerHeader, c.worker)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("remote: lease: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var l Lease
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&l); err != nil {
			return nil, fmt.Errorf("remote: decoding lease: %w", err)
		}
		return &l, nil
	case http.StatusNoContent:
		return nil, nil
	case http.StatusServiceUnavailable:
		var busy struct {
			RetryMS int64 `json:"retry_ms"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&busy); err != nil || busy.RetryMS <= 0 {
			busy.RetryMS = 250
		}
		return nil, &BusyError{Retry: time.Duration(busy.RetryMS) * time.Millisecond}
	default:
		return nil, fmt.Errorf("remote: lease answered %s", resp.Status)
	}
}

// Report fetches the assembled matrix report, polling while the fleet
// is still draining (202). poll <= 0 makes incompleteness an error
// instead of a wait.
func (c *Client) Report(poll time.Duration) (*scenario.Report, error) {
	for {
		resp, err := c.http.Get(c.base + "/report")
		if err != nil {
			return nil, fmt.Errorf("remote: report: %w", err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var rep scenario.Report
			err := json.NewDecoder(resp.Body).Decode(&rep)
			resp.Body.Close()
			if err != nil {
				return nil, fmt.Errorf("remote: decoding report: %w", err)
			}
			if rep.SchemaVersion != scenario.SchemaVersion {
				return nil, fmt.Errorf("remote: report schema v%d, this build reads v%d",
					rep.SchemaVersion, scenario.SchemaVersion)
			}
			return &rep, nil
		case http.StatusAccepted:
			var p Progress
			_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&p)
			resp.Body.Close()
			if poll <= 0 {
				return nil, fmt.Errorf("remote: run incomplete (%d/%d cells done)", p.Done, p.Total)
			}
			time.Sleep(poll)
		default:
			resp.Body.Close()
			return nil, fmt.Errorf("remote: report answered %s", resp.Status)
		}
	}
}

// WorkerConfig tunes one Drain call.
type WorkerConfig struct {
	// Name labels this worker in the server's provenance. Empty is
	// reported as "anonymous".
	Name string
	// Procs is the number of cells executed concurrently (default 1).
	Procs int
	// Local, when set, is a local store tier consulted before executing
	// a leased cell and populated alongside the upload — read-through /
	// write-back (scenario.Tiered composes the same pair for plain
	// cached runs). A cell the local tier already holds is published to
	// the server without re-executing.
	Local scenario.Store
	// Scratch keeps checkpoint images under this directory; empty uses
	// a throwaway temp directory per cell.
	Scratch string
	// TraceDir writes one Chrome trace-event JSON per executed cell
	// into this directory (a worker-local choice, like Scratch — the
	// server's result-determining options are unaffected).
	TraceDir string
	// Execute overrides cell execution; nil means scenario.RunCell.
	// Tests substitute stubs here.
	Execute func(scenario.Spec, scenario.Options) scenario.Result
}

// WorkerStats summarizes one Drain call.
type WorkerStats struct {
	// Executed counts cells this worker ran live; LocalHits counts
	// leased cells served from the local tier and merely published;
	// Failed counts executed cells whose result was a failure.
	Executed  int
	LocalHits int
	Failed    int
	// WallMS sums the executed cells' recorded wall costs.
	WallMS int64
}

// Drain is the work-stealing worker loop: lease, execute (or serve
// from the local tier), upload, repeat until the server reports the
// run complete. Procs goroutines drain concurrently; the aggregate
// stats and the first hard error are returned. Drain needs no
// coordination with other workers — the server's lease queue is the
// only shared state, which is the point.
func (c *Client) Drain(w WorkerConfig) (WorkerStats, error) {
	if w.Name != "" {
		c.SetWorker(w.Name)
	}
	procs := w.Procs
	if procs <= 0 {
		procs = 1
	}
	execute := w.Execute
	if execute == nil {
		execute = scenario.RunCell
	}
	opts := c.Options()
	opts.Scratch = w.Scratch
	opts.TraceDir = w.TraceDir

	var (
		mu    sync.Mutex
		stats WorkerStats
		first error
	)
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	stop := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return first != nil
	}

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop() {
				lease, err := c.Lease()
				if err != nil {
					var busy *BusyError
					if asBusy(err, &busy) {
						time.Sleep(busy.Retry)
						continue
					}
					fail(err)
					return
				}
				if lease == nil {
					return // run complete
				}
				// The address check catches engine/source drift Dial's
				// version check cannot: if the two sides disagree on the
				// cell's identity, the result must not be published.
				if got := scenario.CellHash(lease.Spec, opts); got != lease.Hash {
					fail(fmt.Errorf("remote: cell %s hashes to %s here but %s on the server — source drift",
						lease.ID, got[:8], lease.Hash[:8]))
					return
				}
				res, hit := scenario.Result{}, false
				if w.Local != nil {
					if cached, ok := w.Local.Get(lease.Hash); ok && cached.ID == lease.ID {
						res, hit = cached, true
					}
				}
				if !hit {
					res = execute(lease.Spec, opts)
				}
				if err := c.Put(lease.Hash, res); err != nil {
					fail(err)
					return
				}
				if w.Local != nil && !hit && res.Status == scenario.StatusPass {
					_ = w.Local.Put(lease.Hash, res)
				}
				mu.Lock()
				if hit {
					stats.LocalHits++
				} else {
					stats.Executed++
					stats.WallMS += res.WallMS
					if res.Status != scenario.StatusPass {
						stats.Failed++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return stats, first
}

// asBusy unwraps a *BusyError (errors.As without the reflection — the
// chain here is one link deep by construction).
func asBusy(err error, target **BusyError) bool {
	b, ok := err.(*BusyError)
	if ok {
		*target = b
	}
	return ok
}
