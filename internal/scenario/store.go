package scenario

// Store is the narrow interface between the matrix engine and any
// content-addressed result store. The contract is exactly the directory
// cache's (Cache is the original implementation):
//
//   - Get(hash) returns the completed passing Result stored under the
//     cell address, or ok=false on ANY miss — absent, unreadable,
//     corrupt, stale-engine and mismatched entries are all
//     indistinguishable from "not cached", so a broken store degrades
//     to live execution, never to a wrong result.
//   - Put(hash, res) stores a Result under its address. Entries are
//     immutable once written: equal addresses hold equal results by
//     construction (the address covers everything that determines the
//     result, see CellHash), so overwriting and duplicate writes are
//     idempotent. Only passing Results may be stored; failures re-run.
//
// Implementations: *Cache (the local filesystem directory),
// remote.Client (the matrixd HTTP store), and Tiered (read-through /
// write-back composition of the two).
type Store interface {
	Get(hash string) (Result, bool)
	Put(hash string, res Result) error
}

// tiered composes a fast local store with an authoritative upstream:
// the standard client-side arrangement for a shared matrixd server.
type tiered struct {
	local, upstream Store
}

// Tiered returns the read-through/write-back composition of a local
// store and an upstream one. Get consults local first and falls back to
// upstream, writing upstream hits back into local so the next read is
// local; Put writes both (local first — the cheap write — then
// upstream, whose error is returned: the upstream is the store shared
// with other workers, so failing to publish there is the failure that
// matters). Either side may be nil, in which case the other is used
// alone.
func Tiered(local, upstream Store) Store {
	if local == nil {
		return upstream
	}
	if upstream == nil {
		return local
	}
	return &tiered{local: local, upstream: upstream}
}

func (t *tiered) Get(hash string) (Result, bool) {
	if res, ok := t.local.Get(hash); ok {
		return res, true
	}
	res, ok := t.upstream.Get(hash)
	if !ok {
		return Result{}, false
	}
	// Write-back is best-effort: a full local disk must not turn an
	// upstream hit into a miss.
	_ = t.local.Put(hash, res)
	return res, true
}

func (t *tiered) Put(hash string, res Result) error {
	_ = t.local.Put(hash, res)
	return t.upstream.Put(hash, res)
}
