package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// traceSpec is the acceptance cell: a rank crash recovered in place by
// ULFM shrink, whose trace must show the failure notice, the revoke,
// the agree rounds and the survivors' continued collectives.
func traceSpec() Spec {
	return Spec{
		Program: "app.comd", Impl: core.ImplMPICH, ABI: core.ABINative,
		Ckpt: core.CkptNone, Fault: faults.KindRankCrash, Recovery: RecoveryShrink,
	}
}

func traceOptions(t *testing.T, mode core.ProgressMode) Options {
	t.Helper()
	return Options{
		Nodes: 2, RanksPerNode: 4, Reps: 2,
		MaxSize: 64, Iters: 2, Warmup: 1,
		AppScale: 0.01, Parallel: 1,
		Timeout: time.Minute, Scratch: t.TempDir(),
		Progress: mode, TraceDir: t.TempDir(),
	}
}

func runTraced(t *testing.T, mode core.ProgressMode) []byte {
	return runTracedSpec(t, traceSpec(), mode)
}

func runTracedSpec(t *testing.T, s Spec, mode core.ProgressMode) []byte {
	t.Helper()
	o := traceOptions(t, mode)
	res := RunCell(s, o)
	if res.Status != StatusPass {
		t.Fatalf("traced cell %s under %q engine: %s: %s", s.ID(), mode, res.Status, res.Error)
	}
	raw, err := os.ReadFile(filepath.Join(o.TraceDir, TraceFileName(s.ID())))
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	return raw
}

// TestTraceByteDeterminism: two event-engine runs of the same seeded
// cell must produce byte-identical trace files. Virtual timestamps and
// the single-token fiber scheduler make the whole trace — ordering,
// clocks, arguments — a pure function of the seed.
func TestTraceByteDeterminism(t *testing.T) {
	a := runTraced(t, core.ProgressEvent)
	b := runTraced(t, core.ProgressEvent)
	if !bytes.Equal(a, b) {
		t.Fatalf("event-engine traces differ between identical runs (%d vs %d bytes)", len(a), len(b))
	}
}

// traceEvent is the decoded Chrome trace-event shape the tests need.
type traceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	S    string          `json:"s"`
	Args json.RawMessage `json:"args"`
}

func decodeTrace(t *testing.T, raw []byte) []traceEvent {
	t.Helper()
	var doc struct {
		SchemaVersion int          `json:"schemaVersion"`
		TraceEvents   []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.SchemaVersion != 1 {
		t.Fatalf("schemaVersion = %d, want 1", doc.SchemaVersion)
	}
	return doc.TraceEvents
}

// multiset collapses a trace to its engine-invariant event multiset:
// (pid, tid, ph, name, cat) counts for every category except "sched",
// which records engine-internal scheduling (fiber park/wake, batch
// drains) that legitimately exists only under one engine. Timestamps
// and args are excluded: clocks and queue paths (posted vs unexpected
// match) are timing, not semantics.
func multiset(evs []traceEvent) map[string]int {
	m := make(map[string]int)
	for _, e := range evs {
		if e.Ph == "M" || e.Cat == "sched" {
			continue
		}
		m[fmt.Sprintf("%d/%d/%s/%s/%s", e.Pid, e.Tid, e.Ph, e.Cat, e.Name)]++
	}
	return m
}

// TestTraceCrossEngineMultiset: the goroutine engine must emit the
// same events as the event engine — same ranks, same names, same
// counts — even though its interleaving (and so its file ordering and
// timestamps) may differ. The trace is a differential-testing surface
// between the two progress engines.
//
// The comparison runs on a fault-free cell: under a fault, how far
// each survivor gets before tripping over the failure (and therefore
// how many partial collectives it traced before recomputing) is
// engine-timing-dependent by nature, so only the fault-free multiset
// is an invariant.
func TestTraceCrossEngineMultiset(t *testing.T) {
	s := Spec{Program: "app.comd", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone}
	ev := multiset(decodeTrace(t, runTracedSpec(t, s, core.ProgressEvent)))
	gr := multiset(decodeTrace(t, runTracedSpec(t, s, core.ProgressGoroutine)))
	keys := make(map[string]bool, len(ev)+len(gr))
	for k := range ev {
		keys[k] = true
	}
	for k := range gr {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	bad := 0
	for _, k := range sorted {
		if ev[k] != gr[k] {
			t.Errorf("event %s: event-engine count %d, goroutine-engine count %d", k, ev[k], gr[k])
			if bad++; bad > 20 {
				t.Fatalf("too many divergent events; stopping")
			}
		}
	}
}

// TestTracePerfettoValidity checks the structural properties Perfetto
// relies on: per-track B/E begin/end pairs balance in stack order, X
// spans carry non-negative durations, instants carry their scope, and
// every rank track's non-span timestamps are monotone (complete X
// spans are back-dated to their start by design, and the driver track
// aggregates foreign clocks, so both are exempt).
func TestTracePerfettoValidity(t *testing.T) {
	evs := decodeTrace(t, runTraced(t, core.ProgressEvent))

	type trackKey struct{ pid, tid int }
	tracks := make(map[trackKey][]traceEvent)
	driver := make(map[trackKey]bool)
	for _, e := range evs {
		k := trackKey{e.Pid, e.Tid}
		if e.Ph == "M" {
			if e.Name == "thread_name" && bytes.Contains(e.Args, []byte(`"driver"`)) {
				driver[k] = true
			}
			continue
		}
		tracks[k] = append(tracks[k], e)
	}
	if len(tracks) == 0 {
		t.Fatalf("no event tracks in trace")
	}
	for k, evs := range tracks {
		var stack []string
		lastTs := -1.0
		for _, e := range evs {
			switch e.Ph {
			case "B":
				stack = append(stack, e.Name)
			case "E":
				if len(stack) == 0 {
					t.Fatalf("track %v: E %q with no open B", k, e.Name)
				}
				top := stack[len(stack)-1]
				if top != e.Name {
					t.Fatalf("track %v: E %q closes open B %q", k, e.Name, top)
				}
				stack = stack[:len(stack)-1]
			case "X":
				if e.Dur < 0 {
					t.Fatalf("track %v: X %q with negative dur %v", k, e.Name, e.Dur)
				}
			case "i":
				if e.S != "t" {
					t.Fatalf("track %v: instant %q without thread scope", k, e.Name)
				}
			default:
				t.Fatalf("track %v: unknown phase %q", k, e.Ph)
			}
			if e.Ph != "X" && !driver[k] {
				if e.Ts < lastTs {
					t.Fatalf("track %v: timestamp regressed %v -> %v at %q", k, lastTs, e.Ts, e.Name)
				}
				lastTs = e.Ts
			}
		}
		if len(stack) != 0 {
			t.Fatalf("track %v: %d unclosed B slices (%v)", k, len(stack), stack)
		}
	}

	// The acceptance shape: the ULFM story must actually be in there.
	want := map[string]bool{"notice": false, "revoke": false, "agree-round": false, "shrink-recover": false}
	coll := false
	for _, e := range evs {
		if _, ok := want[e.Name]; ok {
			want[e.Name] = true
		}
		if e.Cat == "coll" {
			coll = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("traced shrink cell has no %q event", name)
		}
	}
	if !coll {
		t.Errorf("traced shrink cell has no collective events")
	}
}

// TestTraceDisabledByDefault: without TraceDir no trace plumbing runs
// and no file appears.
func TestTraceDisabledByDefault(t *testing.T) {
	s := traceSpec()
	o := traceOptions(t, core.ProgressEvent)
	dir := o.TraceDir
	o.TraceDir = ""
	res := RunCell(s, o)
	if res.Status != StatusPass {
		t.Fatalf("untraced cell: %s: %s", res.Status, res.Error)
	}
	if _, err := os.Stat(filepath.Join(dir, TraceFileName(s.ID()))); !os.IsNotExist(err) {
		t.Fatalf("trace file written with tracing disabled (err=%v)", err)
	}
}
