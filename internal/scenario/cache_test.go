package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func hashSpec() Spec {
	return Spec{Program: "app.wave", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA}
}

func TestCellHashStableAndComplete(t *testing.T) {
	s, o := hashSpec(), Quick()
	if CellHash(s, o) != CellHash(s, o) {
		t.Fatal("hash not deterministic")
	}
	// The hash must survive withDefaults: hashing raw options and hashing
	// the defaults-applied options the engine actually runs with must
	// agree, or Run and out-of-band tooling would disagree on addresses.
	if CellHash(s, o) != CellHash(s, o.withDefaults()) {
		t.Fatal("hash differs across withDefaults")
	}

	// Every result-determining input changes the address.
	base := CellHash(s, o)
	s2 := s
	s2.Fault = "rank-crash"
	if CellHash(s2, o) == base {
		t.Error("spec change did not change hash")
	}
	for name, mutate := range map[string]func(*Options){
		"base_seed":  func(o *Options) { o.BaseSeed++ },
		"reps":       func(o *Options) { o.Reps++ },
		"nodes":      func(o *Options) { o.Nodes++ },
		"app_scale":  func(o *Options) { o.AppScale *= 2 },
		"timeout":    func(o *Options) { o.Timeout *= 2 },
		"ckpt_every": func(o *Options) { o.CkptEvery = 7 },
	} {
		m := o
		mutate(&m)
		if CellHash(s, m) == base {
			t.Errorf("options change %q did not change hash", name)
		}
	}

	// Run-local knobs must NOT change the address: pool width, scratch
	// and cache paths, shard membership never affect a cell's result.
	for name, mutate := range map[string]func(*Options){
		"parallel": func(o *Options) { o.Parallel = 1 },
		"scratch":  func(o *Options) { o.Scratch = "/elsewhere" },
		"cache":    func(o *Options) { o.CacheDir = "/elsewhere" },
		"shard":    func(o *Options) { o.Shard = Shard{Index: 1, Count: 4} },
	} {
		m := o
		mutate(&m)
		if CellHash(s, m) != base {
			t.Errorf("run-local knob %q changed the hash", name)
		}
	}
}

// The pinned hash guards cross-process / cross-revision stability: two
// shard processes (or two CI runs) must address the same cell with the
// same hash, or the cache never hits. If this test breaks, cell
// identity changed — that invalidates every cached result, which is
// only correct when intentional: bump EngineVersion and re-pin.
func TestCellHashPinned(t *testing.T) {
	s := hashSpec()
	o := Options{Nodes: 2, RanksPerNode: 4, Reps: 2, MaxSize: 64, Iters: 2, Warmup: 1, BaseSeed: 42}
	// Re-pinned for EngineVersion 4 (the replication subsystem's
	// interception hooks in the shared runtime; every v3 result
	// deliberately invalidated).
	const want = "9d4a3597cb342a7cd9930ea731e305ca71225f25ea74a5a46d0b1507ae78e45a"
	if got := CellHash(s, o); got != want {
		t.Fatalf("pinned cell hash drifted (engine version %d):\n got %s\nwant %s",
			EngineVersion, got, want)
	}
}

// ProgressMode is result-determining (virtual-time folds depend on the
// delivery schedule), so the event engine must get its own cell address —
// while the default engine, spelled "" or "goroutine", must hash exactly
// as it did before the knob existed, keeping every cached result valid.
func TestCellHashProgressMode(t *testing.T) {
	s, o := hashSpec(), Quick()
	base := CellHash(s, o)
	explicit := o
	explicit.Progress = core.ProgressGoroutine
	if CellHash(s, explicit) != base {
		t.Error("explicit goroutine mode changed the cell address; cached results orphaned")
	}
	event := o
	event.Progress = core.ProgressEvent
	if CellHash(s, event) == base {
		t.Error("event mode shares the default engine's cell address")
	}
}

func TestCacheHitSkipsExecution(t *testing.T) {
	var live atomic.Int32
	withStubRunner(t, func(s Spec, o Options) Result {
		live.Add(1)
		return Result{ID: s.ID(), Spec: s, Status: StatusPass, Reps: o.Reps, WallMS: 7}
	})
	o := Options{Parallel: 4, Reps: 2, CacheDir: t.TempDir()}
	specs := DefaultMatrix().Enumerate()

	cold := Run(specs, o)
	if n := int(live.Load()); n != len(specs) {
		t.Fatalf("cold run executed %d cells, want %d", n, len(specs))
	}
	if cold.Provenance == nil || cold.Provenance.Live != len(specs) || cold.Provenance.Cached != 0 {
		t.Fatalf("cold provenance = %+v", cold.Provenance)
	}

	live.Store(0)
	warm := Run(specs, o)
	if n := int(live.Load()); n != 0 {
		t.Fatalf("warm run executed %d cells, want 0", n)
	}
	if warm.Provenance.Live != 0 || warm.Provenance.Cached != len(specs) {
		t.Fatalf("warm provenance = %+v", warm.Provenance)
	}
	// Warm results equal cold results cell-for-cell, modulo the Cached
	// provenance mark.
	for i := range cold.Results {
		c, w := cold.Results[i], warm.Results[i]
		if !w.Cached {
			t.Fatalf("warm result %s not marked cached", w.ID)
		}
		w.Cached = false
		if c.ID != w.ID || c.CellHash != w.CellHash || c.WallMS != w.WallMS || c.Status != w.Status {
			t.Fatalf("warm result diverged:\ncold %+v\nwarm %+v", c, w)
		}
	}

	// Changing the base seed re-addresses every cell: full re-run.
	o.BaseSeed = 99
	Run(specs, o)
	if n := int(live.Load()); n != len(specs) {
		t.Fatalf("seed change re-ran %d cells, want %d", n, len(specs))
	}
}

func TestCacheDoesNotPinFailures(t *testing.T) {
	var live atomic.Int32
	withStubRunner(t, func(s Spec, o Options) Result {
		live.Add(1)
		return Result{ID: s.ID(), Spec: s, Status: StatusFail, Error: "transient"}
	})
	o := Options{Parallel: 2, Reps: 1, CacheDir: t.TempDir()}
	specs := DefaultMatrix().Enumerate()[:4]
	Run(specs, o)
	Run(specs, o)
	if n := int(live.Load()); n != 2*len(specs) {
		t.Fatalf("failing cells executed %d times, want %d (failures must never be served from cache)",
			n, 2*len(specs))
	}
}

func TestCacheCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := CellHash(hashSpec(), Quick())
	if err := c.Put(h, Result{ID: hashSpec().ID(), Status: StatusPass}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(h); !ok {
		t.Fatal("fresh entry missed")
	}
	if err := os.WriteFile(filepath.Join(dir, h[:2], h+".json"), []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(h); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	// A stale engine version is a miss too.
	raw := strings.Replace(`{"engine_version": 999999, "hash": "H", "result": {"id": "x", "status": "pass"}}`,
		"H", h, 1)
	if err := os.WriteFile(filepath.Join(dir, h[:2], h+".json"), []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(h); ok {
		t.Fatal("stale-engine entry served as a hit")
	}
}

// The cache is shared by the pool's workers and by concurrent shard
// processes; this is the -race exercise for racing Put/Get on
// overlapping hash sets.
func TestCacheConcurrentPutGet(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := DefaultMatrix().Enumerate()[:16]
	o := Quick()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, s := range specs {
				h := CellHash(s, o)
				if res, ok := c.Get(h); ok && res.ID != s.ID() {
					t.Errorf("hash %s returned result for %s, want %s", h[:8], res.ID, s.ID())
				}
				if err := c.Put(h, Result{ID: s.ID(), Spec: s, Status: StatusPass}); err != nil {
					t.Errorf("put %s: %v", s.ID(), err)
				}
				if res, ok := c.Get(h); !ok || res.ID != s.ID() {
					t.Errorf("get-after-put %s: ok=%v", s.ID(), ok)
				}
			}
		}()
	}
	wg.Wait()
}

// WallHints is the scheduler's warm start: recorded per-cell costs,
// keyed by ID so they survive engine bumps and seed changes, with
// graceful backfill for entries written before the top-level wall_ms
// field existed.
func TestCacheWallHints(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := Quick()
	s := hashSpec()
	h := CellHash(s, o)
	if err := c.Put(h, Result{ID: s.ID(), Spec: s, Status: StatusPass, WallMS: 120}); err != nil {
		t.Fatal(err)
	}
	if hints := c.WallHints(); hints[s.ID()] != 120 {
		t.Fatalf("hints = %v, want %s -> 120", hints, s.ID())
	}

	// A stale-engine entry still contributes: wall time is a hint, not a
	// result, and the stale cost is exactly the warm-start estimate for
	// the re-run the engine bump forces. Plant it under a different
	// address for the same ID with a LARGER cost — the pessimistic
	// maximum must win.
	raw, err := os.ReadFile(filepath.Join(dir, h[:2], h+".json"))
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(raw),
		`"engine_version": `+fmt.Sprint(EngineVersion),
		`"engine_version": `+fmt.Sprint(EngineVersion-1), 1)
	stale = strings.Replace(stale, `"wall_ms": 120`, `"wall_ms": 900`, -1)
	h2 := strings.Repeat("ef", 32)
	stale = strings.Replace(stale, h, h2, -1)
	if err := os.MkdirAll(filepath.Join(dir, h2[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, h2[:2], h2+".json"), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if hints := c.WallHints(); hints[s.ID()] != 900 {
		t.Fatalf("stale-engine hint lost or maximum not taken: %v", hints)
	}

	// An entry written before the top-level wall_ms existed backfills
	// from the embedded result's own wall time.
	s3 := hashSpec()
	s3.Program = "app.comd"
	h3 := CellHash(s3, o)
	legacy := fmt.Sprintf(`{"engine_version": %d, "hash": %q, "result": {"id": %q, "status": "pass", "wall_ms": 55}}`,
		EngineVersion, h3, s3.ID())
	if err := os.MkdirAll(filepath.Join(dir, h3[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, h3[:2], h3+".json"), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	// And corruption contributes nothing (no panic, no phantom key).
	h4 := strings.Repeat("09", 32)
	if err := os.MkdirAll(filepath.Join(dir, h4[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, h4[:2], h4+".json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	hints := c.WallHints()
	if hints[s3.ID()] != 55 {
		t.Fatalf("legacy entry did not backfill from result wall_ms: %v", hints)
	}
	if len(hints) != 2 {
		t.Fatalf("hints = %v, want exactly 2 IDs", hints)
	}
}

func TestShardPartitionDisjointAndExhaustive(t *testing.T) {
	specs := DefaultMatrix().Enumerate()
	const n = 4
	seen := make(map[string]int)
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		part := Shard{Index: i, Count: n}.Select(specs)
		sizes[i] = len(part)
		for _, s := range part {
			if prev, dup := seen[s.ID()]; dup {
				t.Fatalf("scenario %s in shards %d and %d", s.ID(), prev, i)
			}
			seen[s.ID()] = i
		}
	}
	if len(seen) != len(specs) {
		t.Fatalf("union covers %d of %d specs", len(seen), len(specs))
	}
	for i := 1; i < n; i++ {
		if d := sizes[i] - sizes[0]; d < -1 || d > 1 {
			t.Fatalf("unbalanced shards: %v", sizes)
		}
	}
	// Unsharded selectors pass everything through.
	if got := (Shard{}).Select(specs); len(got) != len(specs) {
		t.Fatalf("zero shard selected %d of %d", len(got), len(specs))
	}
}

func TestShardValidateAndParse(t *testing.T) {
	for _, bad := range []string{"", "3", "4/4", "-1/4", "1/0", "a/b", "1/4/8", "1/4x", " 1/4"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
	sh, err := ParseShard("2/4")
	if err != nil || sh != (Shard{Index: 2, Count: 4}) {
		t.Fatalf("ParseShard(2/4) = %+v, %v", sh, err)
	}
	if err := (Shard{Index: 1, Count: 0}).Validate(); err == nil {
		t.Error("index without count accepted")
	}
	if err := (Shard{}).Validate(); err != nil {
		t.Errorf("zero shard rejected: %v", err)
	}
}

// TestCachePrune: stale-engine and corrupt entries are deleted, live
// entries survive and still serve.
func TestCachePrune(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := Quick()
	live := CellHash(hashSpec(), o)
	if err := c.Put(live, Result{ID: hashSpec().ID(), Status: StatusPass}); err != nil {
		t.Fatal(err)
	}

	// A stale-engine entry: a valid entry body stamped with the previous
	// engine version, planted the way an old build would have left it.
	s2 := hashSpec()
	s2.Program = "app.comd"
	stale := CellHash(s2, o)
	raw, err := os.ReadFile(filepath.Join(dir, live[:2], live+".json"))
	if err != nil {
		t.Fatal(err)
	}
	old := strings.Replace(string(raw),
		`"engine_version": `+fmt.Sprint(EngineVersion),
		`"engine_version": `+fmt.Sprint(EngineVersion-1), 1)
	old = strings.Replace(old, live, stale, -1)
	if err := os.MkdirAll(filepath.Join(dir, stale[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, stale[:2], stale+".json"), []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt entry.
	corrupt := strings.Repeat("ab", 32)
	if err := os.MkdirAll(filepath.Join(dir, corrupt[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, corrupt[:2], corrupt+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A newer-engine entry (a shared cache directory written by a more
	// recent checkout) must survive an older build's prune.
	future := strings.Repeat("cd", 32)
	futureRaw := strings.Replace(old,
		`"engine_version": `+fmt.Sprint(EngineVersion-1),
		`"engine_version": `+fmt.Sprint(EngineVersion+1), 1)
	futureRaw = strings.Replace(futureRaw, stale, future, -1)
	if err := os.MkdirAll(filepath.Join(dir, future[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, future[:2], future+".json"), []byte(futureRaw), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := c.Prune()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("pruned %d entries, want 2 (stale + corrupt)", removed)
	}
	if _, ok := c.Get(live); !ok {
		t.Fatal("prune removed a live-engine entry")
	}
	if _, err := os.Stat(filepath.Join(dir, future[:2], future+".json")); err != nil {
		t.Fatal("prune removed a newer-engine entry a future build can serve")
	}
	if _, err := os.Stat(filepath.Join(dir, stale[:2], stale+".json")); !os.IsNotExist(err) {
		t.Fatal("stale-engine entry survived prune")
	}
	if _, err := os.Stat(filepath.Join(dir, corrupt[:2], corrupt+".json")); !os.IsNotExist(err) {
		t.Fatal("corrupt entry survived prune")
	}
	// Idempotent.
	if removed, err := c.Prune(); err != nil || removed != 0 {
		t.Fatalf("second prune = (%d, %v), want (0, nil)", removed, err)
	}
}
