// Package scenario is the scenario-matrix engine behind the paper's
// combinatorial claim (Sections 4-5): one application, compiled once
// against the standard ABI, must run — and checkpoint, and restart —
// under *every* valid pairing of MPI implementation, binding mode and
// checkpointing package, cross-implementation restarts included.
//
// A Spec names one cell of that matrix: a registered program, the three
// legs of the stool (implementation, ABI binding, checkpointer), an
// optional kernel model for the MANA FSGSBASE ablation, an optional
// restart pairing (checkpoint under one implementation, restart under
// another — the Section 5.3 / Figure 6 protocol), and an optional
// injected fault (internal/faults) that turns the cell into the paper's
// title claim under actual failure: crash, detect, restart from the
// latest periodic image, complete — under the other implementation where
// the pairing allows it. MatrixSpec enumerates every valid Spec in a
// deterministic order, excluding the combinations the paper's model
// forbids: restarting without a checkpointer, cross-implementation
// restart of a native-ABI or plain-DMTCP image, and restarting a
// standard-ABI image without a translation layer.
//
// Run executes a list of Specs concurrently over a bounded worker pool
// with deterministic per-scenario seeds, per-scenario timeouts and
// failure isolation (a panicking or deadlocked stack fails its own cell,
// not the run), and aggregates repetitions with internal/stats exactly as
// the paper does (medians, standard deviations). Results persist as
// versioned JSON (see Report) so matrix runs are diffable across
// revisions; internal/harness builds the paper's figures as thin queries
// over these results.
//
// On top of Run sits the incremental execution layer that keeps the
// matrix's wall time flat as its axes multiply: every cell has a stable
// content address (CellHash — spec, result-determining options, derived
// seeds, engine version), a persistent content-addressed cache (Cache)
// serves unchanged cells without re-executing them, Options.Shard
// partitions the enumerated list so independent processes each run a
// disjoint slice, and MergeReports recombines the partial reports into
// one — with provenance recording which cells ran live, which came from
// cache, and what each shard cost.
package scenario

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
)

// KernelModern selects the post-5.9 (userspace FSGSBASE) kernel model for
// the MANA layer; the empty string selects the paper's pre-5.9 testbed
// kernel. These are the two points of the FSGSBASE ablation.
const KernelModern = "5_9plus"

// Spec identifies one scenario: a program run under one full stack, with
// an optional checkpoint/restart pairing. The zero values of RestartImpl
// and RestartABI mean "no restart leg".
type Spec struct {
	// Program is the registered core.Program name (e.g. "app.wave",
	// "osu.alltoall").
	Program string `json:"program"`
	// Impl, ABI and Ckpt are the launch stack's three legs.
	Impl core.Impl     `json:"impl"`
	ABI  core.ABIMode  `json:"abi"`
	Ckpt core.CkptMode `json:"ckpt"`
	// Kernel optionally selects the MANA kernel model (KernelModern);
	// empty means the paper's pre-5.9 testbed kernel.
	Kernel string `json:"kernel,omitempty"`
	// RestartImpl/RestartABI, when set, add a restart leg: the run is
	// checkpointed at its first safe point and the images are restarted
	// under this stack (same checkpointer), while the original run
	// continues to completion for comparison.
	RestartImpl core.Impl    `json:"restart_impl,omitempty"`
	RestartABI  core.ABIMode `json:"restart_abi,omitempty"`
	// Fault, when set, turns the cell into a fault-injection scenario.
	// Crash kinds run the automated recovery protocol instead of the
	// compare protocol: the job checkpoints periodically, the fault fires
	// at a seeded step, and the recovery driver restarts from the latest
	// complete image — under the restart stack when the scenario has a
	// restart leg (cross-implementation where the legs allow it).
	// faults.KindNICDegrade degrades the fabric instead; the run
	// completes under it without recovery.
	Fault faults.Kind `json:"fault,omitempty"`
	// Recovery selects the recovery mode for rank-crash cells: empty
	// means the default checkpoint/restart protocol above;
	// RecoveryShrink runs ULFM in-place recovery instead — the fault is
	// non-fatal, survivors revoke and shrink the world communicator and
	// recompute on it, and no checkpoint is ever written (the cell must
	// be checkpointer-free); RecoveryReplicate runs every logical rank
	// as a primary + warm-shadow pair and promotes the shadow when the
	// primary dies — no rollback, no shrink, same membership (also
	// checkpointer-free). The axis exists so the harness can compare
	// the three legs of fault-tolerant MPI — restart a bigger job from
	// images, shrink and recompute in place, or pay for replication up
	// front — on the same crashes.
	Recovery string `json:"recovery,omitempty"`
	// FaultStep pins the fault's trigger step (0 = drawn from the
	// repetition seed; see faults.Spec).
	FaultStep uint64 `json:"fault_step,omitempty"`
	// CkptEvery overrides Options.CkptEvery for this cell's periodic
	// checkpoint interval (0 = the run-wide default). The
	// recovery-overhead table sweeps it.
	CkptEvery uint64 `json:"ckpt_every,omitempty"`
}

// RecoveryShrink selects ULFM in-place recovery for a rank-crash cell.
const RecoveryShrink = "shrink"

// RecoveryReplicate selects replication-based recovery for a rank-crash
// cell: primary + shadow replica pairs with in-place shadow promotion.
const RecoveryReplicate = "replicate"

// HasRestart reports whether the scenario includes a restart leg.
func (s Spec) HasRestart() bool { return s.RestartImpl != "" }

// ID is the scenario's stable identifier:
// program/impl+abi+ckpt[@kernel][>restartimpl+restartabi][!fault[#step][%every][~recovery]].
// Reports are sorted and queried by it.
func (s Spec) ID() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s+%s+%s", s.Program, s.Impl, s.ABI, s.Ckpt)
	if s.Kernel != "" {
		fmt.Fprintf(&b, "@%s", s.Kernel)
	}
	if s.HasRestart() {
		fmt.Fprintf(&b, ">%s+%s", s.RestartImpl, s.RestartABI)
	}
	if s.Fault != "" {
		fmt.Fprintf(&b, "!%s", s.Fault)
		if s.FaultStep > 0 {
			fmt.Fprintf(&b, "#%d", s.FaultStep)
		}
		if s.CkptEvery > 0 {
			fmt.Fprintf(&b, "%%%d", s.CkptEvery)
		}
		if s.Recovery != "" {
			fmt.Fprintf(&b, "~%s", s.Recovery)
		}
	}
	return b.String()
}

// LaunchStack composes the launch-side core.Stack (testbed-default shape;
// the engine overrides the cluster shape and seed per run).
func (s Spec) LaunchStack() core.Stack {
	stack := core.DefaultStack(s.Impl, s.ABI, s.Ckpt)
	if s.Kernel == KernelModern {
		stack.Kernel = kernelModern()
	}
	return stack
}

// RestartStack composes the restart-side core.Stack. Only meaningful when
// HasRestart.
func (s Spec) RestartStack() core.Stack {
	stack := core.DefaultStack(s.RestartImpl, s.RestartABI, s.Ckpt)
	if s.Kernel == KernelModern {
		stack.Kernel = kernelModern()
	}
	return stack
}

// Validate reports why a scenario is not runnable. The restart rules
// mirror core.Restart so that enumeration excludes exactly the stacks the
// runtime would reject:
//
//   - a restart leg requires a checkpointing package;
//   - a plain DMTCP image restores the whole process, MPI library
//     included, so it restarts only under the identical stack;
//   - a MANA image taken over a native ABI binding restarts only under
//     the same implementation (the incompatibility the paper removes);
//   - a MANA image taken through the standard ABI needs a translation
//     layer (Mukautuva or Wi4MPI) on the restart side too.
func (s Spec) Validate() error {
	if s.Program == "" {
		return fmt.Errorf("scenario: empty program name")
	}
	if err := s.LaunchStack().Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.ID(), err)
	}
	if s.Kernel != "" && s.Kernel != KernelModern {
		return fmt.Errorf("scenario %s: unknown kernel model %q", s.ID(), s.Kernel)
	}
	switch s.Fault {
	case "":
		if s.FaultStep != 0 || s.CkptEvery != 0 {
			return fmt.Errorf("scenario %s: fault parameters without a fault kind", s.ID())
		}
		if s.Recovery != "" {
			return fmt.Errorf("scenario %s: recovery mode without a fault kind", s.ID())
		}
	case faults.KindRankCrash, faults.KindNodeCrash:
		if s.Recovery == RecoveryShrink {
			// ULFM in-place recovery is the checkpoint-free path: the
			// survivors shrink and recompute, nothing is ever written or
			// restarted, so a checkpointer or restart pairing on the cell
			// would advertise legs that never execute.
			if s.Fault != faults.KindRankCrash {
				return fmt.Errorf("scenario %s: shrink recovery applies to rank crashes (a node crash takes the membership below the apps' minimum)", s.ID())
			}
			if s.Ckpt != core.CkptNone {
				return fmt.Errorf("scenario %s: shrink recovery is checkpoint-free; drop the checkpointer", s.ID())
			}
			if s.HasRestart() {
				return fmt.Errorf("scenario %s: shrink recovery never restarts; drop the restart pairing", s.ID())
			}
			if s.CkptEvery != 0 {
				return fmt.Errorf("scenario %s: shrink recovery has no checkpoint interval", s.ID())
			}
			break
		}
		if s.Recovery == RecoveryReplicate {
			// Replication is the other checkpoint-free leg: shadows absorb
			// the crash in place, nothing is written or restarted — the
			// same four rules as shrink, for the same reasons.
			if s.Fault != faults.KindRankCrash {
				return fmt.Errorf("scenario %s: replication recovery applies to rank crashes (the seeded victim must be one primary)", s.ID())
			}
			if s.Ckpt != core.CkptNone {
				return fmt.Errorf("scenario %s: replication recovery is checkpoint-free; drop the checkpointer", s.ID())
			}
			if s.HasRestart() {
				return fmt.Errorf("scenario %s: replication recovery never restarts; drop the restart pairing", s.ID())
			}
			if s.CkptEvery != 0 {
				return fmt.Errorf("scenario %s: replication recovery has no checkpoint interval", s.ID())
			}
			break
		}
		if s.Recovery != "" {
			return fmt.Errorf("scenario %s: unknown recovery mode %q", s.ID(), s.Recovery)
		}
		// Crash recovery restarts from periodic images, so the cell needs
		// a checkpointing package; the restart pairing (when present) is
		// validated by the shared rules below.
		if s.Ckpt == core.CkptNone {
			return fmt.Errorf("scenario %s: crash recovery requires a checkpointing package", s.ID())
		}
	case faults.KindNICDegrade:
		if s.Recovery != "" {
			return fmt.Errorf("scenario %s: recovery mode applies to crash cells", s.ID())
		}
		// Degradation slows the run but kills nobody; any stack survives
		// — and nothing triggers a restart, so a restart pairing on a
		// degraded cell would be advertised in the ID yet never executed.
		if s.HasRestart() {
			return fmt.Errorf("scenario %s: nic-degrade runs to completion without a restart leg; drop the restart pairing", s.ID())
		}
	default:
		return fmt.Errorf("scenario %s: unknown fault kind %q", s.ID(), s.Fault)
	}
	if !s.HasRestart() {
		if s.RestartABI != "" {
			return fmt.Errorf("scenario %s: restart ABI without a restart implementation", s.ID())
		}
		return nil
	}
	if s.Ckpt == core.CkptNone {
		return fmt.Errorf("scenario %s: restart leg requires a checkpointing package", s.ID())
	}
	if err := s.RestartStack().Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.ID(), err)
	}
	switch s.Ckpt {
	case core.CkptDMTCP:
		if s.RestartImpl != s.Impl || s.RestartABI != s.ABI {
			return fmt.Errorf("scenario %s: a plain DMTCP image restarts only under the identical stack", s.ID())
		}
	case core.CkptMANA:
		if s.ABI == core.ABINative {
			if s.RestartImpl != s.Impl || s.RestartABI != core.ABINative {
				return fmt.Errorf("scenario %s: a native-ABI image cannot restart under a different stack", s.ID())
			}
		} else if s.RestartABI == core.ABINative {
			return fmt.Errorf("scenario %s: a standard-ABI image needs a translation layer to restart", s.ID())
		}
	}
	return nil
}

// MatrixSpec enumerates a scenario matrix: the cross product of its axes,
// filtered down to valid stacks.
type MatrixSpec struct {
	// Programs are registered program names (apps or benchmarks).
	Programs []string
	// Impls, ABIs and Ckpts are the three legs' axes.
	Impls []core.Impl
	ABIs  []core.ABIMode
	Ckpts []core.CkptMode
	// CrossRestart adds, for every checkpointed cell, one scenario per
	// valid restart implementation (same-implementation restarts and, for
	// standard-ABI MANA stacks, cross-implementation restarts).
	CrossRestart bool
	// Faults is the fault axis. KindRankCrash adds a crash-recovery
	// scenario to every restart pairing AND a ULFM shrink-recovery
	// scenario AND a replication-failover scenario to every
	// checkpointer-free straight cell (the recovery-mode axis: the same
	// class of crash, survived by restart, in place by shrinking, or in
	// place by shadow promotion); KindNodeCrash adds one to every
	// cross-implementation pairing (the paper's headline failure: lose a
	// node under one implementation, finish under the other);
	// KindNICDegrade adds a degraded-completion scenario to every
	// checkpointer-free straight cell.
	Faults []faults.Kind
}

// DefaultMatrix is the paper's full claim surface: both Figure 5
// applications over every implementation — the two historical ABIs plus
// the standard-ABI-native third (internal/stdabi) — every binding mode,
// every checkpointing package, every valid restart pairing (including
// stdabi<->{mpich,openmpi} cross-restarts in both directions), and the
// fault axis — crash recovery over every pairing, ULFM shrink recovery
// and replication failover over every plain cell, node loss over every
// cross-implementation pairing, link degradation over every plain cell.
func DefaultMatrix() MatrixSpec {
	return MatrixSpec{
		Programs:     []string{"app.comd", "app.wave"},
		Impls:        []core.Impl{core.ImplMPICH, core.ImplOpenMPI, core.ImplStdABI},
		ABIs:         []core.ABIMode{core.ABINative, core.ABIMukautuva, core.ABIWi4MPI},
		Ckpts:        []core.CkptMode{core.CkptNone, core.CkptDMTCP, core.CkptMANA},
		CrossRestart: true,
		Faults:       []faults.Kind{faults.KindRankCrash, faults.KindNodeCrash, faults.KindNICDegrade},
	}
}

// hasFault reports whether the matrix includes the fault kind.
func (m MatrixSpec) hasFault(k faults.Kind) bool {
	for _, f := range m.Faults {
		if f == k {
			return true
		}
	}
	return false
}

// Enumerate expands the matrix into the valid scenarios, in a
// deterministic order (axes iterate in the order given; restart pairings
// follow their base cell).
func (m MatrixSpec) Enumerate() []Spec {
	var out []Spec
	for _, prog := range m.Programs {
		for _, impl := range m.Impls {
			for _, abiMode := range m.ABIs {
				for _, ckpt := range m.Ckpts {
					base := Spec{Program: prog, Impl: impl, ABI: abiMode, Ckpt: ckpt}
					if base.Validate() != nil {
						continue
					}
					out = append(out, base)
					if ckpt == core.CkptNone && m.hasFault(faults.KindNICDegrade) {
						s := base
						s.Fault = faults.KindNICDegrade
						out = append(out, s)
					}
					// The recovery-mode axis: every checkpointer-free
					// straight cell gets a ULFM shrink-recovery sibling —
					// the same seeded rank crash the restart cells
					// recover from, survived in place instead (all three
					// implementations, native and shimmed).
					if ckpt == core.CkptNone && m.hasFault(faults.KindRankCrash) {
						s := base
						s.Fault = faults.KindRankCrash
						s.Recovery = RecoveryShrink
						out = append(out, s)
						// ...and a replication-failover sibling: the same
						// seeded crash, absorbed by a warm shadow instead
						// of a shrink.
						r := base
						r.Fault = faults.KindRankCrash
						r.Recovery = RecoveryReplicate
						out = append(out, r)
					}
					if !m.CrossRestart || ckpt == core.CkptNone {
						continue
					}
					for _, rimpl := range m.Impls {
						s := base
						s.RestartImpl = rimpl
						s.RestartABI = abiMode
						if s.Validate() != nil {
							continue
						}
						out = append(out, s)
						if m.hasFault(faults.KindRankCrash) {
							f := s
							f.Fault = faults.KindRankCrash
							out = append(out, f)
						}
						if m.hasFault(faults.KindNodeCrash) && s.RestartImpl != s.Impl {
							f := s
							f.Fault = faults.KindNodeCrash
							out = append(out, f)
						}
					}
				}
			}
		}
	}
	return out
}

// seedFor derives the deterministic jitter seed for one repetition. It
// depends on the program and repetition but deliberately not on the
// stack: the paper compares stacks under identical cluster noise, so
// every stack running the same program in the same repetition sees the
// same jitter stream (paired comparison), while distinct repetitions and
// programs get distinct streams.
func seedFor(base int64, program string, rep int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", program, base, rep)
	seed := int64(h.Sum64() & 0x7fffffffffffffff)
	if seed == 0 {
		seed = 1
	}
	return seed
}

// idPath renders a scenario ID as a filesystem-safe path component for
// checkpoint image directories.
func idPath(id string) string {
	r := strings.NewReplacer("/", "_", ">", "_to_", "+", "-", "@", "-", "!", "_", "#", "-", "%", "-", "~", "-")
	return r.Replace(id)
}

// TraceFileName is the file a traced cell's Chrome trace lands under
// inside Options.TraceDir: the cell ID sanitized exactly like its
// checkpoint scratch directory, plus ".json".
func TraceFileName(id string) string { return idPath(id) + ".json" }
