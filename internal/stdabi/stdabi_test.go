package stdabi

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/ops"
	"repro/internal/simnet"
	"repro/internal/types"
)

// runSPMD launches fn on n ranks bound through the native (standard ABI)
// binding and fails the test on error or timeout.
func runSPMD(t *testing.T, n int, fn func(b *Binding) error) {
	t.Helper()
	w, err := fabric.NewWorld(simnet.SingleNode(n))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := fn(Bind(Init(w, r))); err != nil {
				errs <- fmt.Errorf("rank %d: %w", r, err)
				w.Close() // release peers blocked in Recv
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SPMD test timed out (likely deadlock)")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestNativeSurfaceIsStandardABI is the package's reason to exist: the
// constants an application resolves at bind time are the abi package's
// standard values, bit-for-bit, with no translation layer in between.
func TestNativeSurfaceIsStandardABI(t *testing.T) {
	w, err := fabric.NewWorld(simnet.SingleNode(1))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	b := Bind(Init(w, 0))
	if got := b.Lookup(abi.SymCommWorld); got != abi.CommWorld {
		t.Errorf("Lookup(CommWorld) = %v, want the standard handle %v", got, abi.CommWorld)
	}
	if got := b.Lookup(abi.SymForKind(types.KindFloat64)); got != abi.TypeFloat64 {
		t.Errorf("Lookup(float64) = %v, want %v", got, abi.TypeFloat64)
	}
	if got := b.Lookup(abi.SymForOp(ops.OpSum)); got != abi.OpSum {
		t.Errorf("Lookup(sum) = %v, want %v", got, abi.OpSum)
	}
	if b.LookupInt(abi.IntAnySource) != abi.AnySource || b.LookupInt(abi.IntProcNull) != abi.ProcNull {
		t.Error("integer constants are not the standard values")
	}
	// Error codes ARE the standard classes: MPI_Error_class is identity.
	for c := abi.ErrSuccess; c <= abi.ErrOther; c++ {
		if ClassOfCode(int(c)) != c {
			t.Errorf("ClassOfCode(%d) = %v, want identity", int(c), c)
		}
	}
	if ClassOfCode(9999) != abi.ErrOther {
		t.Error("out-of-range code should collapse to ErrOther")
	}
}

// TestMintedHandlesAboveReservedRange checks the mpi_abi.h-style handle
// model: predefined payloads sit below abi.PredefinedLimit, runtime
// handles above it.
func TestMintedHandlesAboveReservedRange(t *testing.T) {
	runSPMD(t, 2, func(b *Binding) error {
		if !abi.CommWorld.Predefined() || !abi.TypeFloat64.Predefined() {
			return fmt.Errorf("predefined handles must sit in the reserved range")
		}
		dup, err := b.CommDup(abi.CommWorld)
		if err != nil {
			return err
		}
		if dup.Predefined() {
			return fmt.Errorf("minted handle %v landed in the reserved predefined range", dup)
		}
		if dup.HandleClass() != abi.ClassComm {
			return fmt.Errorf("minted handle %v has wrong class", dup)
		}
		vec, err := b.TypeVector(2, 1, 2, abi.TypeInt32)
		if err != nil {
			return err
		}
		if vec.Predefined() || vec.HandleClass() != abi.ClassType {
			return fmt.Errorf("minted type handle %v malformed", vec)
		}
		return nil
	})
}

func TestSendRecvBothProtocols(t *testing.T) {
	for _, sz := range []int{64, 32 * 1024} { // eager and rendezvous (eagerMax 8 KiB)
		t.Run(fmt.Sprintf("sz=%d", sz), func(t *testing.T) {
			runSPMD(t, 2, func(b *Binding) error {
				rank, err := b.CommRank(abi.CommWorld)
				if err != nil {
					return err
				}
				if rank == 0 {
					buf := make([]byte, sz)
					for i := range buf {
						buf[i] = byte(i * 13)
					}
					return b.Send(buf, sz, abi.TypeByte, 1, 5, abi.CommWorld)
				}
				buf := make([]byte, sz)
				var st abi.Status
				if err := b.Recv(buf, sz, abi.TypeByte, 0, 5, abi.CommWorld, &st); err != nil {
					return err
				}
				for i := range buf {
					if buf[i] != byte(i*13) {
						return fmt.Errorf("byte %d corrupted", i)
					}
				}
				if st.Source != 0 || st.Tag != 5 || st.CountBytes != uint64(sz) {
					return fmt.Errorf("status wrong: %+v", st)
				}
				return nil
			})
		})
	}
}

func TestCollectivesAcrossThresholds(t *testing.T) {
	// Cross the recursive-doubling/ring allreduce switchover (16 KiB) and
	// odd communicator sizes.
	for _, n := range []int{2, 3, 4, 5, 8} {
		for _, count := range []int{1, 3000} { // 8 B and 24 KB of int64
			t.Run(fmt.Sprintf("n=%d count=%d", n, count), func(t *testing.T) {
				runSPMD(t, n, func(b *Binding) error {
					rank, err := b.CommRank(abi.CommWorld)
					if err != nil {
						return err
					}
					vals := make([]int64, count)
					for i := range vals {
						vals[i] = int64(rank+1) * int64(i%7+1)
					}
					rb := make([]byte, count*8)
					if err := b.Allreduce(abi.Int64Bytes(vals), rb, count,
						abi.TypeInt64, abi.OpSum, abi.CommWorld); err != nil {
						return err
					}
					tri := int64(n * (n + 1) / 2)
					got := abi.Int64sOf(rb)
					for i := range got {
						if got[i] != tri*int64(i%7+1) {
							return fmt.Errorf("elem %d = %d, want %d", i, got[i], tri*int64(i%7+1))
						}
					}
					// Bcast exercises the binomial/scatter-ring pair.
					bc := make([]byte, count*8)
					if rank == 0 {
						copy(bc, rb)
					}
					if err := b.Bcast(bc, count, abi.TypeInt64, 0, abi.CommWorld); err != nil {
						return err
					}
					for i, v := range abi.Int64sOf(bc) {
						if v != tri*int64(i%7+1) {
							return fmt.Errorf("bcast elem %d = %d", i, v)
						}
					}
					return b.Barrier(abi.CommWorld)
				})
			})
		}
	}
}

func TestAlltoallAndCommSplit(t *testing.T) {
	runSPMD(t, 6, func(b *Binding) error {
		rank, err := b.CommRank(abi.CommWorld)
		if err != nil {
			return err
		}
		n := 6
		vals := make([]int64, n)
		for d := 0; d < n; d++ {
			vals[d] = int64(rank*100 + d)
		}
		rb := make([]byte, n*8)
		if err := b.Alltoall(abi.Int64Bytes(vals), 1, abi.TypeInt64, rb, 1, abi.TypeInt64, abi.CommWorld); err != nil {
			return err
		}
		for s, v := range abi.Int64sOf(rb) {
			if v != int64(s*100+rank) {
				return fmt.Errorf("from %d = %d, want %d", s, v, s*100+rank)
			}
		}
		sub, err := b.CommSplit(abi.CommWorld, rank%2, rank)
		if err != nil {
			return err
		}
		sz, err := b.CommSize(sub)
		if err != nil {
			return err
		}
		if sz != 3 {
			return fmt.Errorf("split size = %d, want 3", sz)
		}
		out := make([]byte, 8)
		if err := b.Allreduce(abi.Int64Bytes([]int64{int64(rank)}), out, 1,
			abi.TypeInt64, abi.OpSum, sub); err != nil {
			return err
		}
		want := int64(0 + 2 + 4)
		if rank%2 == 1 {
			want = 1 + 3 + 5
		}
		if got := abi.Int64sOf(out)[0]; got != want {
			return fmt.Errorf("split allreduce = %d, want %d", got, want)
		}
		return nil
	})
}

func TestErrorClassesOnBadArguments(t *testing.T) {
	runSPMD(t, 1, func(b *Binding) error {
		checks := []struct {
			err  error
			want abi.ErrClass
			what string
		}{
			{b.Send(nil, 1, abi.TypeByte, 0, 0, abi.CommNull), abi.ErrComm, "null comm"},
			{b.Send(nil, 1, abi.TypeNull, 0, 0, abi.CommWorld), abi.ErrType, "null type"},
			{b.Send(nil, 1, abi.TypeByte, 5, 0, abi.CommWorld), abi.ErrRank, "bad rank"},
			{b.Send(nil, -1, abi.TypeByte, 0, 0, abi.CommWorld), abi.ErrCount, "bad count"},
			{b.Bcast(nil, 1, abi.TypeByte, 9, abi.CommWorld), abi.ErrRoot, "bad root"},
			{b.CommFree(abi.CommWorld), abi.ErrComm, "free world"},
			{b.TypeFree(abi.TypeByte), abi.ErrType, "free predefined type"},
			{b.Wait(abi.MakeHandle(abi.ClassRequest, 0x77777), nil), abi.ErrRequest, "bogus request"},
		}
		for _, c := range checks {
			if abi.ClassOf(c.err) != c.want {
				return fmt.Errorf("%s: class = %v, want %v", c.what, abi.ClassOf(c.err), c.want)
			}
		}
		// PROC_NULL uses the standard sentinel, natively.
		var st abi.Status
		if err := b.Recv(nil, 0, abi.TypeByte, abi.ProcNull, 0, abi.CommWorld, &st); err != nil {
			return err
		}
		if st.Source != abi.ProcNull || st.Tag != abi.AnyTag {
			return fmt.Errorf("PROC_NULL status wrong: %+v", st)
		}
		return nil
	})
}

func TestIsendIrecvRing(t *testing.T) {
	runSPMD(t, 5, func(b *Binding) error {
		rank, err := b.CommRank(abi.CommWorld)
		if err != nil {
			return err
		}
		size, err := b.CommSize(abi.CommWorld)
		if err != nil {
			return err
		}
		right, left := (rank+1)%size, (rank-1+size)%size
		rb := make([]byte, 8)
		rr, err := b.Irecv(rb, 1, abi.TypeInt64, left, 2, abi.CommWorld)
		if err != nil {
			return err
		}
		sr, err := b.Isend(abi.Int64Bytes([]int64{int64(rank)}), 1, abi.TypeInt64, right, 2, abi.CommWorld)
		if err != nil {
			return err
		}
		sts := make([]abi.Status, 2)
		if err := b.Waitall([]abi.Handle{rr, sr}, sts); err != nil {
			return err
		}
		if got := abi.Int64sOf(rb)[0]; got != int64(left) {
			return fmt.Errorf("ring recv = %d, want %d", got, left)
		}
		if sts[0].Source != int32(left) {
			return fmt.Errorf("status source = %d, want %d", sts[0].Source, left)
		}
		return nil
	})
}
