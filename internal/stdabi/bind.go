package stdabi

import (
	"repro/internal/abi"
)

// Binding adapts a Proc to the generic function-table shape. For the two
// historical implementations this layer is where handles are widened,
// registries consulted and codes re-numbered; here it does none of that —
// the native surface already IS the standard ABI, so handles, constants
// and statuses pass through bit-for-bit and the only work left is
// wrapping int codes as error values. Handle resolution leans on the
// shared runtime's own argument checking: an unknown or null handle
// resolves to nil, and the runtime answers with the class-appropriate
// standard code. Compare this file with mpich/bind.go and
// openmpi/bind.go to see the translation cost a standard ABI deletes.
type Binding struct {
	p *Proc
}

// Bind wraps a Proc in its native function-table binding.
func Bind(p *Proc) *Binding { return &Binding{p: p} }

var _ abi.FuncTable = (*Binding)(nil)

// codeErr converts a standard code into an error value; the class is the
// code.
func codeErr(code int) error {
	if code == Success {
		return nil
	}
	return abi.Errorf(ClassOfCode(code), "stdabi", "%s", ErrorString(code))
}

// ImplName identifies the lower library.
func (b *Binding) ImplName() string { return "stdabi" }

// Lookup resolves predefined constants — to the standard values, which
// are the native values.
func (b *Binding) Lookup(s abi.Sym) abi.Handle { return abi.StdLookup(s) }

// LookupInt resolves integer constants, likewise untranslated.
func (b *Binding) LookupInt(s abi.IntSym) int { return abi.StdLookupInt(s) }

func (b *Binding) Send(buf []byte, count int, dtype abi.Handle, dest, tag int, comm abi.Handle) error {
	return codeErr(b.p.rt.Send(buf, count, b.p.t(dtype), dest, tag, b.p.c(comm)))
}

func (b *Binding) Recv(buf []byte, count int, dtype abi.Handle, source, tag int, comm abi.Handle, st *abi.Status) error {
	var cs coreStatus
	code := b.p.rt.Recv(buf, count, b.p.t(dtype), source, tag, b.p.c(comm), &cs)
	if st != nil {
		*st = stdStatus(&cs)
	}
	return codeErr(code)
}

// newReq registers a runtime request under a fresh handle.
func (b *Binding) newReq(r *coreRequest, code int) (abi.Handle, error) {
	if code != Success {
		return abi.RequestNull, codeErr(code)
	}
	h := b.p.mint(abi.ClassRequest)
	b.p.reqs[h] = r
	return h, nil
}

func (b *Binding) Isend(buf []byte, count int, dtype abi.Handle, dest, tag int, comm abi.Handle) (abi.Handle, error) {
	return b.newReq(b.p.rt.Isend(buf, count, b.p.t(dtype), dest, tag, b.p.c(comm)))
}

func (b *Binding) Irecv(buf []byte, count int, dtype abi.Handle, source, tag int, comm abi.Handle) (abi.Handle, error) {
	return b.newReq(b.p.rt.Irecv(buf, count, b.p.t(dtype), source, tag, b.p.c(comm)))
}

func (b *Binding) Wait(req abi.Handle, st *abi.Status) error {
	if req == abi.RequestNull {
		b.procNull(st)
		return nil
	}
	r, ok := b.p.reqs[req]
	if !ok {
		return codeErr(ErrRequest)
	}
	var cs coreStatus
	code := b.p.rt.Wait(r, &cs)
	if !r.Done() {
		return codeErr(code) // progress failed; the request stays live
	}
	delete(b.p.reqs, req)
	if st != nil {
		*st = stdStatus(&cs)
	}
	return codeErr(code)
}

func (b *Binding) Test(req abi.Handle, st *abi.Status) (bool, error) {
	if req == abi.RequestNull {
		b.procNull(st)
		return true, nil
	}
	r, ok := b.p.reqs[req]
	if !ok {
		return false, codeErr(ErrRequest)
	}
	var cs coreStatus
	done, code := b.p.rt.Test(r, &cs)
	if !done {
		return false, codeErr(code)
	}
	delete(b.p.reqs, req)
	if st != nil {
		*st = stdStatus(&cs)
	}
	return true, codeErr(code)
}

func (b *Binding) Waitall(reqs []abi.Handle, sts []abi.Status) error {
	if sts != nil && len(sts) != len(reqs) {
		return codeErr(ErrArg)
	}
	var rc error
	for i, h := range reqs {
		var st abi.Status
		if err := b.Wait(h, &st); err != nil {
			rc = err
		}
		if sts != nil {
			sts[i] = st
		}
	}
	return rc
}

func (b *Binding) Sendrecv(sendbuf []byte, scount int, stype abi.Handle, dest, stag int,
	recvbuf []byte, rcount int, rtype abi.Handle, source, rtag int,
	comm abi.Handle, st *abi.Status) error {
	rreq, err := b.Irecv(recvbuf, rcount, rtype, source, rtag, comm)
	if err != nil {
		return err
	}
	if err := b.Send(sendbuf, scount, stype, dest, stag, comm); err != nil {
		return err
	}
	return b.Wait(rreq, st)
}

func (b *Binding) procNull(st *abi.Status) {
	if st == nil {
		return
	}
	var cs coreStatus
	b.p.rt.ProcNullStatus(&cs)
	*st = stdStatus(&cs)
}

func (b *Binding) Probe(source, tag int, comm abi.Handle, st *abi.Status) error {
	var cs coreStatus
	code := b.p.rt.Probe(source, tag, b.p.c(comm), &cs)
	if code == Success && st != nil {
		*st = stdStatus(&cs)
	}
	return codeErr(code)
}

func (b *Binding) Iprobe(source, tag int, comm abi.Handle, st *abi.Status) (bool, error) {
	var cs coreStatus
	found, code := b.p.rt.Iprobe(source, tag, b.p.c(comm), &cs)
	if found && st != nil {
		*st = stdStatus(&cs)
	}
	return found, codeErr(code)
}

func (b *Binding) Barrier(comm abi.Handle) error {
	return codeErr(b.p.rt.Barrier(b.p.c(comm)))
}

func (b *Binding) Bcast(buf []byte, count int, dtype abi.Handle, root int, comm abi.Handle) error {
	return codeErr(b.p.rt.Bcast(buf, count, b.p.t(dtype), root, b.p.c(comm)))
}

func (b *Binding) Reduce(sendbuf, recvbuf []byte, count int, dtype, op abi.Handle, root int, comm abi.Handle) error {
	return codeErr(b.p.rt.Reduce(sendbuf, recvbuf, count, b.p.t(dtype), b.p.o(op), root, b.p.c(comm)))
}

func (b *Binding) Allreduce(sendbuf, recvbuf []byte, count int, dtype, op abi.Handle, comm abi.Handle) error {
	return codeErr(b.p.rt.Allreduce(sendbuf, recvbuf, count, b.p.t(dtype), b.p.o(op), b.p.c(comm)))
}

func (b *Binding) Gather(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, root int, comm abi.Handle) error {
	return codeErr(b.p.rt.Gather(sendbuf, scount, b.p.t(stype),
		recvbuf, rcount, b.p.t(rtype), root, b.p.c(comm)))
}

func (b *Binding) Allgather(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, comm abi.Handle) error {
	return codeErr(b.p.rt.Allgather(sendbuf, scount, b.p.t(stype),
		recvbuf, rcount, b.p.t(rtype), b.p.c(comm)))
}

func (b *Binding) Scatter(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, root int, comm abi.Handle) error {
	return codeErr(b.p.rt.Scatter(sendbuf, scount, b.p.t(stype),
		recvbuf, rcount, b.p.t(rtype), root, b.p.c(comm)))
}

func (b *Binding) Alltoall(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, comm abi.Handle) error {
	return codeErr(b.p.rt.Alltoall(sendbuf, scount, b.p.t(stype),
		recvbuf, rcount, b.p.t(rtype), b.p.c(comm)))
}

func (b *Binding) CommSize(comm abi.Handle) (int, error) {
	c := b.p.c(comm)
	if c == nil {
		return 0, codeErr(ErrComm)
	}
	return c.Size(), nil
}

func (b *Binding) CommRank(comm abi.Handle) (int, error) {
	c := b.p.c(comm)
	if c == nil {
		return 0, codeErr(ErrComm)
	}
	return c.MyPos, nil
}

// newComm registers a runtime-built communicator under a fresh handle;
// nil (the split/create non-member result) maps to MPI_COMM_NULL.
func (b *Binding) newComm(nc *coreComm, code int) (abi.Handle, error) {
	if code != Success || nc == nil {
		return abi.CommNull, codeErr(code)
	}
	h := b.p.mint(abi.ClassComm)
	b.p.comms[h] = nc
	return h, nil
}

func (b *Binding) CommDup(comm abi.Handle) (abi.Handle, error) {
	return b.newComm(b.p.rt.CommDup(b.p.c(comm)))
}

func (b *Binding) CommSplit(comm abi.Handle, color, key int) (abi.Handle, error) {
	return b.newComm(b.p.rt.CommSplit(b.p.c(comm), color, key))
}

func (b *Binding) CommCreate(comm, group abi.Handle) (abi.Handle, error) {
	return b.newComm(b.p.rt.CommCreate(b.p.c(comm), b.p.g(group)))
}

func (b *Binding) CommGroup(comm abi.Handle) (abi.Handle, error) {
	return b.newGroup(b.p.rt.CommGroup(b.p.c(comm)))
}

func (b *Binding) CommFree(comm abi.Handle) error {
	if comm == abi.CommWorld || comm == abi.CommSelf {
		return codeErr(ErrComm)
	}
	if code := b.p.rt.CommFree(b.p.c(comm)); code != Success {
		return codeErr(code)
	}
	delete(b.p.comms, comm)
	return nil
}

func (b *Binding) GroupSize(group abi.Handle) (int, error) {
	n, code := b.p.rt.GroupSize(b.p.g(group))
	return n, codeErr(code)
}

func (b *Binding) GroupRank(group abi.Handle) (int, error) {
	r, code := b.p.rt.GroupRank(b.p.g(group))
	return r, codeErr(code)
}

// newGroup registers a runtime-built group; the empty group collapses to
// the reserved MPI_GROUP_EMPTY handle.
func (b *Binding) newGroup(g *coreGroup, code int) (abi.Handle, error) {
	if code != Success {
		return abi.GroupNull, codeErr(code)
	}
	if len(g.Ranks) == 0 {
		return abi.GroupEmpty, nil
	}
	h := b.p.mint(abi.ClassGroup)
	b.p.groups[h] = g
	return h, nil
}

func (b *Binding) GroupIncl(group abi.Handle, ranks []int) (abi.Handle, error) {
	return b.newGroup(b.p.rt.GroupIncl(b.p.g(group), ranks))
}

func (b *Binding) GroupExcl(group abi.Handle, ranks []int) (abi.Handle, error) {
	return b.newGroup(b.p.rt.GroupExcl(b.p.g(group), ranks))
}

func (b *Binding) GroupTranslateRanks(g1 abi.Handle, ranks []int, g2 abi.Handle) ([]int, error) {
	out, code := b.p.rt.GroupTranslateRanks(b.p.g(g1), ranks, b.p.g(g2))
	return out, codeErr(code)
}

func (b *Binding) GroupFree(group abi.Handle) error {
	if group == abi.GroupEmpty {
		return nil
	}
	if _, ok := b.p.groups[group]; !ok {
		return codeErr(ErrGroup)
	}
	delete(b.p.groups, group)
	return nil
}

// newType registers a runtime-built datatype under a fresh handle.
func (b *Binding) newType(t *coreType, code int) (abi.Handle, error) {
	if code != Success {
		return abi.TypeNull, codeErr(code)
	}
	h := b.p.mint(abi.ClassType)
	b.p.dtypes[h] = t
	return h, nil
}

func (b *Binding) TypeContiguous(count int, inner abi.Handle) (abi.Handle, error) {
	return b.newType(b.p.rt.TypeContiguous(count, b.p.t(inner)))
}

func (b *Binding) TypeVector(count, blocklen, stride int, inner abi.Handle) (abi.Handle, error) {
	return b.newType(b.p.rt.TypeVector(count, blocklen, stride, b.p.t(inner)))
}

func (b *Binding) TypeIndexed(blocklens, displs []int, inner abi.Handle) (abi.Handle, error) {
	return b.newType(b.p.rt.TypeIndexed(blocklens, displs, b.p.t(inner)))
}

func (b *Binding) TypeCreateStruct(blocklens, displs []int, typs []abi.Handle) (abi.Handle, error) {
	members := make([]*coreType, len(typs))
	for i, th := range typs {
		members[i] = b.p.t(th)
	}
	return b.newType(b.p.rt.TypeCreateStruct(blocklens, displs, members))
}

func (b *Binding) TypeCommit(dtype abi.Handle) error {
	return codeErr(b.p.rt.TypeCommit(b.p.t(dtype)))
}

func (b *Binding) TypeFree(dtype abi.Handle) error {
	if code := b.p.rt.TypeFree(b.p.t(dtype)); code != Success {
		return codeErr(code)
	}
	delete(b.p.dtypes, dtype)
	return nil
}

func (b *Binding) TypeSize(dtype abi.Handle) (int, error) {
	n, code := b.p.rt.TypeSize(b.p.t(dtype))
	return n, codeErr(code)
}

func (b *Binding) TypeExtent(dtype abi.Handle) (int, error) {
	n, code := b.p.rt.TypeExtent(b.p.t(dtype))
	return n, codeErr(code)
}

func (b *Binding) GetCount(st *abi.Status, dtype abi.Handle) (int, error) {
	n, code := b.p.rt.GetCount(st.CountBytes, b.p.t(dtype))
	return n, codeErr(code)
}

func (b *Binding) OpCreate(name string, commute bool) (abi.Handle, error) {
	o, code := b.p.rt.OpCreate(name, commute)
	if code != Success {
		return abi.OpNull, codeErr(code)
	}
	h := b.p.mint(abi.ClassOp)
	b.p.userOps[h] = o
	return h, nil
}

func (b *Binding) OpFree(op abi.Handle) error {
	if code := b.p.rt.OpFree(b.p.o(op)); code != Success {
		return codeErr(code)
	}
	delete(b.p.userOps, op)
	return nil
}

func (b *Binding) Abort(comm abi.Handle, code int) error {
	return codeErr(b.p.rt.Abort(code))
}

func (b *Binding) CommRevoke(comm abi.Handle) error {
	return codeErr(b.p.rt.CommRevoke(b.p.c(comm)))
}

func (b *Binding) CommShrink(comm abi.Handle) (abi.Handle, error) {
	return b.newComm(b.p.rt.CommShrink(b.p.c(comm)))
}

func (b *Binding) CommAgree(comm abi.Handle, flag uint64) (uint64, error) {
	out, code := b.p.rt.CommAgree(b.p.c(comm), flag)
	return out, codeErr(code)
}

func (b *Binding) CommFailureAck(comm abi.Handle) error {
	return codeErr(b.p.rt.CommFailureAck(b.p.c(comm)))
}

func (b *Binding) CommFailureGetAcked(comm abi.Handle) (abi.Handle, error) {
	return b.newGroup(b.p.rt.CommFailureGetAcked(b.p.c(comm)))
}
