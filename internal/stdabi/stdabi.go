// Package stdabi is the third simulated MPI implementation — and the
// proof that the shared mpicore runtime earns its keep. Where
// internal/mpich and internal/openmpi each reproduce a historical ABI
// (encoded 32-bit integers; live pointers), this implementation natively
// exposes the *standardized* ABI of the MPI ABI working group (Hammond et
// al., PAPERS.md; the mpi_abi.h exemplar in SNIPPETS.md):
//
//   - handles are pointer-width integers whose predefined values are
//     fixed small constants baked into the binary at compile time
//     (MPI_SUM = 0x21-style reserved ranges — here, abi.Handle values
//     with payloads below abi.PredefinedLimit), with runtime-minted
//     handles above the reserved range;
//   - integer constants are the standard values (MPI_ANY_SOURCE = -1,
//     MPI_PROC_NULL = -2, ...), resolved by abi.StdLookup/StdLookupInt;
//   - the status object is the standard abi.Status layout, verbatim;
//   - error codes are the standard error classes themselves —
//     MPI_Error_class is the identity function.
//
// Because the native surface IS the standard ABI, the binding layer does
// no translation at all: handles, constants, statuses and codes cross the
// boundary bit-for-bit. Everything behind that surface — progress engine,
// matching, communicators, collectives — comes from internal/mpicore;
// what this package adds is a few hundred lines of handle bookkeeping and
// an algorithm policy. That is the paper's economic argument made
// executable: once the runtime is common and the ABI is standardized, a
// new interoperable implementation is cheap.
//
// In the scenario matrix this package is the third implementation axis:
// applications bind to it natively, through Mukautuva, or through Wi4MPI,
// and MANA images taken through the standard ABI restart across
// stdabi <-> {mpich, openmpi} in both directions.
//
// In the README's layer diagram this is the third entry of the
// implementation-packages row — the one whose native surface IS the
// standard ABI of Section 4.1.
package stdabi

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/mpicore"
	"repro/internal/ops"
	"repro/internal/types"
)

// Version identifies the simulated library.
const Version = "MPI-ABI 1.0 reference (simulated)"

// Error codes: the standard error classes, as plain ints. This table IS
// abi.ErrClass — the point of the standard ABI is that no private
// numbering exists to translate.
const (
	Success     = int(abi.ErrSuccess)
	ErrBuffer   = int(abi.ErrBuffer)
	ErrCount    = int(abi.ErrCount)
	ErrType     = int(abi.ErrType)
	ErrTag      = int(abi.ErrTag)
	ErrComm     = int(abi.ErrComm)
	ErrRank     = int(abi.ErrRank)
	ErrRequest  = int(abi.ErrRequest)
	ErrRoot     = int(abi.ErrRoot)
	ErrGroup    = int(abi.ErrGroup)
	ErrOp       = int(abi.ErrOp)
	ErrArg      = int(abi.ErrArg)
	ErrTruncate = int(abi.ErrTruncate)
	ErrIntern   = int(abi.ErrIntern)
	ErrOther    = int(abi.ErrOther)
	// The ULFM classes: natively the standard values, where MPICH says
	// 71/72 and Open MPI says 54/56 — the standardized encoding of
	// exactly the classes fault-tolerant applications must compare.
	ErrProcFailed = int(abi.ErrProcFailed)
	ErrRevoked    = int(abi.ErrRevoked)
)

// ClassOfCode maps this implementation's error codes to standard classes.
// Natively standard codes make it the identity (out-of-range values
// collapse to ErrOther, as MPI_Error_class does for unknown codes).
func ClassOfCode(code int) abi.ErrClass {
	c := abi.ErrClass(code)
	if c < abi.ErrSuccess || c > abi.ErrRevoked {
		return abi.ErrOther
	}
	return c
}

// CodeOfClass is the reverse direction — for this implementation, the
// identity: the standard class IS the native code. Present so the
// cross-implementation round-trip tests treat all three implementations
// uniformly.
func CodeOfClass(c abi.ErrClass) int {
	if c < abi.ErrSuccess || c > abi.ErrRevoked {
		return ErrOther
	}
	return int(c)
}

// ErrorString mirrors MPI_Error_string over the standard class names.
func ErrorString(code int) string { return ClassOfCode(code).String() }

// Reference algorithm selections: deliberately a third personality —
// MPICH's tree shapes at its own switchover points, with Open MPI's ring
// for very long reductions — so the three implementations stay
// distinguishable in the latency curves.
const (
	eagerMax          = 8 * 1024  // between MPICH's 16 KiB and Open MPI's 4 KiB
	bcastShortMax     = 16 * 1024 // binomial below, scatter+ring above
	allreduceShortMax = 16 * 1024 // recursive doubling below, ring above
	alltoallBruckMax  = 512       // Bruck below, nonblocking overlap above
	allgatherRDMax    = 65536     // recursive doubling (pow2) below, ring above
)

var stdConsts = mpicore.Consts{
	AnySource: abi.AnySource,
	AnyTag:    abi.AnyTag,
	ProcNull:  abi.ProcNull,
	TagUB:     abi.TagUB,
	Undefined: abi.Undefined,
}

var stdCodes = mpicore.Codes{
	Success:       Success,
	ErrBuffer:     ErrBuffer,
	ErrCount:      ErrCount,
	ErrType:       ErrType,
	ErrTag:        ErrTag,
	ErrComm:       ErrComm,
	ErrRank:       ErrRank,
	ErrRoot:       ErrRoot,
	ErrGroup:      ErrGroup,
	ErrOp:         ErrOp,
	ErrArg:        ErrArg,
	ErrTruncate:   ErrTruncate,
	ErrRequest:    ErrRequest,
	ErrIntern:     ErrIntern,
	ErrOther:      ErrOther,
	ErrProcFailed: ErrProcFailed,
	ErrRevoked:    ErrRevoked,
}

// Policy is the reference implementation's algorithm personality over
// the shared runtime (exported for the mpicore collective benchmarks).
func Policy() mpicore.Policy {
	return mpicore.Policy{
		EagerMax: eagerMax,
		// 'S': keep stdabi's cid stream distinct from the other two.
		DeriveCID: mpicore.SaltedCIDDeriver('S'),
		Barrier: func(p *mpicore.Proc, c *mpicore.Comm, tag int32) int {
			return p.BarrierDissemination(c, tag)
		},
		Bcast: func(p *mpicore.Proc, c *mpicore.Comm, packed []byte, root int, tag int32) int {
			if len(packed) <= bcastShortMax {
				return p.BcastBinomial(c, packed, root, tag)
			}
			return p.BcastScatterRing(c, packed, root, tag)
		},
		Reduce: func(p *mpicore.Proc, c *mpicore.Comm, acc []byte, o *mpicore.Op, k types.Kind, root int, tag int32) int {
			return p.ReduceBinomial(c, acc, o, k, root, tag)
		},
		Allreduce: func(p *mpicore.Proc, c *mpicore.Comm, acc []byte, o *mpicore.Op, k types.Kind, tag int32) int {
			if len(acc) > allreduceShortMax && len(acc)/k.Size() >= c.Size() {
				return p.AllreduceRing(c, acc, o, k, tag)
			}
			return p.AllreduceRecDoubling(c, acc, o, k, tag, 61)
		},
		Gather: func(p *mpicore.Proc, c *mpicore.Comm, own, region []byte, blockSz, root int, tag int32) int {
			return p.GatherBinomial(c, own, region, blockSz, root, tag)
		},
		Scatter: func(p *mpicore.Proc, c *mpicore.Comm, region []byte, blockSz, root int, tag int32) ([]byte, int) {
			return p.ScatterBinomial(c, region, blockSz, root, tag)
		},
		Allgather: func(p *mpicore.Proc, c *mpicore.Comm, region []byte, blockSz int, tag int32) int {
			n := c.Size()
			if n&(n-1) == 0 && n*blockSz <= allgatherRDMax {
				return p.AllgatherRecDoubling(c, region, blockSz, tag)
			}
			return p.AllgatherRing(c, region, blockSz, tag)
		},
		Alltoall: func(p *mpicore.Proc, c *mpicore.Comm, out, in []byte, blockSz int, tag int32) int {
			if blockSz <= alltoallBruckMax {
				return p.AlltoallBruck(c, out, in, blockSz, tag)
			}
			return p.AlltoallOverlap(c, out, in, blockSz, tag)
		},
	}
}

// Shorthand for the runtime types the binding passes around.
type (
	coreStatus  = mpicore.Status
	coreType    = mpicore.Type
	coreComm    = mpicore.Comm
	coreGroup   = mpicore.Group
	coreOp      = mpicore.Op
	coreRequest = mpicore.Request
)

// Proc is one rank's stdabi library instance: the shared runtime plus the
// standard handle table. Handle payloads below abi.PredefinedLimit are
// the reserved compile-time constants; minted payloads start at the
// limit.
type Proc struct {
	rt *mpicore.Proc

	comms   map[abi.Handle]*mpicore.Comm
	groups  map[abi.Handle]*mpicore.Group
	dtypes  map[abi.Handle]*mpicore.Type
	userOps map[abi.Handle]*mpicore.Op
	reqs    map[abi.Handle]*mpicore.Request

	next uint64 // dynamic payloads, shared across classes
}

// Init attaches a fresh stdabi instance to the given world endpoint.
func Init(w *fabric.World, rank int) *Proc {
	p := &Proc{
		rt:      mpicore.NewProc(w, rank, stdConsts, stdCodes, Policy()),
		comms:   make(map[abi.Handle]*mpicore.Comm),
		groups:  make(map[abi.Handle]*mpicore.Group),
		dtypes:  make(map[abi.Handle]*mpicore.Type),
		userOps: make(map[abi.Handle]*mpicore.Op),
		reqs:    make(map[abi.Handle]*mpicore.Request),
		next:    abi.PredefinedLimit,
	}
	p.comms[abi.CommWorld] = p.rt.CommWorld
	p.comms[abi.CommSelf] = p.rt.CommSelf
	p.groups[abi.GroupEmpty] = &mpicore.Group{MyPos: -1}
	for _, k := range types.Kinds() {
		p.dtypes[abi.TypeHandle(k)] = p.rt.Predef(k)
	}
	for _, op := range ops.Ops() {
		p.userOps[abi.OpHandle(op)] = p.rt.PredefOp(op)
	}
	return p
}

// mint allocates a dynamic handle in class c, above the reserved
// predefined range.
func (p *Proc) mint(c abi.Class) abi.Handle {
	p.next++
	return abi.MakeHandle(c, p.next)
}

// Rank, Size, World, Finalize: the usual library surface.
func (p *Proc) Rank() int               { return p.rt.Rank() }
func (p *Proc) Size() int               { return p.rt.Size() }
func (p *Proc) World() *fabric.World    { return p.rt.World() }
func (p *Proc) Finalize() int           { return p.rt.Finalize() }
func (p *Proc) AbortWorld(code int) int { return p.rt.Abort(code) }

// Handle resolution: unknown and null handles (the null handle of every
// class has payload 0 and is never registered) resolve to nil, and the
// runtime's argument checking answers with the class-appropriate
// standard code.
func (p *Proc) c(h abi.Handle) *coreComm  { return p.comms[h] }
func (p *Proc) t(h abi.Handle) *coreType  { return p.dtypes[h] }
func (p *Proc) g(h abi.Handle) *coreGroup { return p.groups[h] }
func (p *Proc) o(h abi.Handle) *coreOp    { return p.userOps[h] }

// stdStatus converts the runtime's canonical status into the standard
// layout — which is the same layout; the conversion is a field copy, not
// a re-encoding. Error already carries a standard class value.
func stdStatus(cs *mpicore.Status) abi.Status {
	return abi.Status{
		Source: cs.Source, Tag: cs.Tag, Error: cs.Error,
		CountBytes: cs.CountBytes, Cancelled: cs.Cancelled,
	}
}

func (p *Proc) String() string {
	posted, unexpected, pendingSend, awaiting := p.rt.Depths()
	return fmt.Sprintf("stdabi rank %d: posted=%d unexpected=%d pendingSend=%d awaiting=%d reqs=%d",
		p.rt.Rank(), posted, unexpected, pendingSend, awaiting, len(p.reqs))
}
