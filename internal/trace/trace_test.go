package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilSafety is the zero-overhead-when-disabled contract: every
// level of the object model no-ops on a nil receiver, so emission
// sites only ever pay a pointer compare.
func TestNilSafety(t *testing.T) {
	var s *Sink
	l := s.NewLeg("leg", 4)
	if l != nil {
		t.Fatalf("nil sink produced a leg")
	}
	if l.Track(0) != nil || l.Ranks() != 0 || l.Name() != "" {
		t.Fatalf("nil leg not inert")
	}
	l.Driver(CatCkpt, "x", 0)
	l.DriverSpan(CatCkpt, "x", 0, 1)
	var tr *Track
	tr.Begin(CatColl, "x", 0)
	tr.End(CatColl, "x", 1)
	tr.Span(CatColl, "x", 0, 1)
	tr.Instant(CatFabric, "x", 2)
	if tr.Events() != nil {
		t.Fatalf("nil track has events")
	}
	if s.Legs() != nil {
		t.Fatalf("nil sink has legs")
	}
}

func TestTrackRecording(t *testing.T) {
	s := NewSink()
	l := s.NewLeg("launch prog", 2)
	if l.Ranks() != 2 {
		t.Fatalf("ranks = %d, want 2", l.Ranks())
	}
	if l.Track(2) != nil || l.Track(-1) != nil {
		t.Fatalf("out-of-range track not nil")
	}
	tr := l.Track(0)
	tr.Begin(CatColl, "bcast", 10)
	tr.Span(CatColl, "round", 10, 20, Arg{Key: "peer", Val: "1"})
	tr.End(CatColl, "bcast", 30)
	tr.Span(CatColl, "negative", 30, 20) // clamped, never negative
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	if evs[1].Dur != 10 || evs[3].Dur != 0 {
		t.Fatalf("span durations = %d, %d; want 10, 0", evs[1].Dur, evs[3].Dur)
	}
	l.Driver(CatCkpt, "failure", 40, Arg{Key: "ranks", Val: "[1]"})
	if n := len(s.Legs()); n != 1 {
		t.Fatalf("legs = %d, want 1", n)
	}
}

func TestItoa(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want string
	}{{0, "0"}, {7, "7"}, {42, "42"}, {-3, "-3"}, {123456789, "123456789"}} {
		if got := Itoa(tc.n); got != tc.want {
			t.Errorf("Itoa(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

// chromeDoc mirrors the exported JSON shape for decoding in tests.
type chromeDoc struct {
	SchemaVersion int `json:"schemaVersion"`
	TraceEvents   []struct {
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ph   string          `json:"ph"`
		Pid  int             `json:"pid"`
		Tid  int             `json:"tid"`
		Ts   json.Number     `json:"ts"`
		Dur  json.Number     `json:"dur"`
		S    string          `json:"s"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func buildSink() *Sink {
	s := NewSink()
	l := s.NewLeg("launch demo", 2)
	r0 := l.Track(0)
	r0.Begin(CatColl, "BcastBinomial", 1000)
	r0.Instant(CatFabric, "send", 1500, Arg{Key: "dst", Val: "1"}, Arg{Key: "bytes", Val: "64"})
	r0.Span(CatColl, "coll-send", 1000, 2500, Arg{Key: "peer", Val: "1"})
	r0.End(CatColl, "BcastBinomial", 2500)
	l.Track(1).Instant(CatFabric, "deliver", 2001, Arg{Key: "src", Val: "0"})
	l.Driver(CatCkpt, "failure", 3000, Arg{Key: "ranks", Val: "[1]"})
	return s
}

// TestWriteChromeFormat decodes the export with encoding/json and
// checks the trace-event fields Perfetto relies on.
func TestWriteChromeFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSink().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.SchemaVersion != SchemaVersion {
		t.Fatalf("schemaVersion = %d, want %d", doc.SchemaVersion, SchemaVersion)
	}
	var meta, b, e, x, inst int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "B":
			b++
		case "E":
			e++
		case "X":
			x++
			if ev.Dur.String() != "1.500" {
				t.Errorf("span dur = %s, want 1.500 (µs from 1500ns)", ev.Dur)
			}
		case "i":
			inst++
			if ev.S != "t" {
				t.Errorf("instant scope = %q, want \"t\"", ev.S)
			}
		default:
			t.Errorf("unknown phase %q", ev.Ph)
		}
	}
	// 2 process metas + 3 thread metas (rank 0, rank 1, driver).
	if meta != 5 || b != 1 || e != 1 || x != 1 || inst != 3 {
		t.Fatalf("phase counts M=%d B=%d E=%d X=%d i=%d, want 5/1/1/1/3", meta, b, e, x, inst)
	}
	if !strings.Contains(buf.String(), `"ts":1.000`) {
		t.Errorf("missing integer-formatted microsecond timestamp:\n%s", buf.String())
	}
}

// TestWriteChromeDeterministic: equal event streams produce equal
// bytes — the foundation of the cross-run trace diffing contract.
func TestWriteChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSink().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSink().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two exports of equal sinks differ")
	}
}

// TestWriteChromeEscaping: a hostile name cannot corrupt the file.
func TestWriteChromeEscaping(t *testing.T) {
	s := NewSink()
	l := s.NewLeg("leg \"quoted\"\\\n", 1)
	l.Track(0).Instant(CatCell, "na\"me", 0, Arg{Key: "k\\", Val: "v\x01"})
	var buf bytes.Buffer
	if err := s.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("escaped export is not valid JSON: %v\n%s", err, buf.String())
	}
}

func TestWriteChromeFile(t *testing.T) {
	path := t.TempDir() + "/sub/dir/trace.json"
	if err := buildSink().WriteChromeFile(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := buildSink().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
}
