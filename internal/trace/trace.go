// Package trace is the runtime's virtual-time event sink: a structured
// record of what every rank did and when, stamped with the simulated
// cluster's clocks rather than the host's, so a trace is a deterministic
// artifact of the seed — two event-mode runs of the same cell produce
// byte-identical trace files, which makes the trace itself a
// differential-testing surface between the progress engines.
//
// The object model mirrors how the runtime executes:
//
//	Sink  — one traced cell or job: a bag of legs.
//	Leg   — one launch of a world (the initial launch, or one restart
//	        leg of a recovery cycle). Restart legs REWIND virtual
//	        clocks to the checkpoint image, so per-leg separation is
//	        what keeps every track's timestamps monotonic. A leg is one
//	        Perfetto "process" (pid).
//	Track — one rank's event buffer within a leg (one Perfetto
//	        "thread", tid = rank), appended to ONLY by the owning rank
//	        goroutine or fiber: no locks on the hot path. Each leg also
//	        carries one mutex-guarded driver track (tid = rank count)
//	        for events the recovery drivers and the scenario engine
//	        emit from outside any rank.
//
// Disabled is the default and costs nothing: a nil *Sink produces nil
// legs, nil legs produce nil tracks, and every method no-ops on a nil
// receiver. Emission sites guard with a nil check before building
// arguments, so an untraced run's hot path is a pointer compare.
//
// Export is Chrome trace-event JSON (chrome.go), loadable in Perfetto.
package trace

import (
	"sync"

	"repro/internal/simnet"
)

// SchemaVersion stamps exported trace files; bump it whenever the event
// vocabulary or the JSON shape changes incompatibly.
const SchemaVersion = 1

// Event categories: which layer of the stack emitted the event.
// CatSched marks engine-internal events (fiber park/wake, batch drains)
// that exist only under one progress engine — cross-engine comparisons
// must exclude them; every other category's event multiset is identical
// between the goroutine and event engines.
const (
	CatFabric = "fabric" // envelope send/deliver
	CatSched  = "sched"  // engine-internal: park/wake, batch drain
	CatP2P    = "p2p"    // point-to-point matching
	CatColl   = "coll"   // collective algorithms and rounds
	CatUlfm   = "ulfm"   // failure notices, revoke, shrink, agree
	CatRepl   = "repl"   // replication: duplicate, dedup, promotion
	CatCkpt   = "ckpt"   // checkpoint/restore legs, recovery decisions
	CatCell   = "cell"   // scenario cell lifecycle
)

// Phases, with Chrome trace-event "ph" values: Begin/End bracket a
// nested slice, Span is a complete slice (begin + duration in one
// event), Instant is a point marker.
const (
	PhaseBegin   = byte('B')
	PhaseEnd     = byte('E')
	PhaseSpan    = byte('X')
	PhaseInstant = byte('i')
)

// Arg is one key/value annotation on an event. Args are an ordered
// slice, never a map: export iterates them in emission order, which is
// part of the byte-determinism contract.
type Arg struct {
	Key, Val string
}

// Event is one trace record. Ts (and Dur, for spans) are virtual
// nanoseconds from the emitting rank's simnet clock.
type Event struct {
	Name string
	Cat  string
	Ph   byte
	Ts   simnet.Time
	Dur  simnet.Time // PhaseSpan only
	Args []Arg
}

// Track is one rank's (or the driver's) event buffer within a leg.
// Rank tracks are single-writer by construction — only the owning rank
// goroutine/fiber appends — so emission takes no lock.
type Track struct {
	tid    int
	name   string
	events []Event
}

// Begin opens a nested slice at ts.
func (t *Track) Begin(cat, name string, ts simnet.Time, args ...Arg) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Name: name, Cat: cat, Ph: PhaseBegin, Ts: ts, Args: args})
}

// End closes the innermost open slice of the same name at ts.
func (t *Track) End(cat, name string, ts simnet.Time) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Name: name, Cat: cat, Ph: PhaseEnd, Ts: ts})
}

// Span records a complete slice covering [from, to].
func (t *Track) Span(cat, name string, from, to simnet.Time, args ...Arg) {
	if t == nil {
		return
	}
	d := to - from
	if d < 0 {
		d = 0
	}
	t.events = append(t.events, Event{Name: name, Cat: cat, Ph: PhaseSpan, Ts: from, Dur: d, Args: args})
}

// Instant records a point marker at ts.
func (t *Track) Instant(cat, name string, ts simnet.Time, args ...Arg) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Name: name, Cat: cat, Ph: PhaseInstant, Ts: ts, Args: args})
}

// Events returns the recorded events. Callers must not read while the
// owning rank is still running.
func (t *Track) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Leg is one world launch: a set of per-rank tracks plus the driver
// track. One Perfetto process (pid).
type Leg struct {
	pid    int
	name   string
	tracks []*Track

	mu     sync.Mutex
	driver *Track
}

// Track returns rank r's track, or nil (out of range, nil leg).
func (l *Leg) Track(r int) *Track {
	if l == nil || r < 0 || r >= len(l.tracks) {
		return nil
	}
	return l.tracks[r]
}

// Ranks returns the number of rank tracks.
func (l *Leg) Ranks() int {
	if l == nil {
		return 0
	}
	return len(l.tracks)
}

// Name returns the leg's display name.
func (l *Leg) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// Driver records an instant on the leg's driver track. Unlike rank
// tracks it may be called from any goroutine (recovery drivers, the
// scenario engine), so it locks.
func (l *Leg) Driver(cat, name string, ts simnet.Time, args ...Arg) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.driver.Instant(cat, name, ts, args...)
	l.mu.Unlock()
}

// DriverSpan records a complete slice on the driver track.
func (l *Leg) DriverSpan(cat, name string, from, to simnet.Time, args ...Arg) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.driver.Span(cat, name, from, to, args...)
	l.mu.Unlock()
}

// Sink collects one traced run's legs. A nil Sink is the disabled
// state: NewLeg returns nil and every emission downstream no-ops.
type Sink struct {
	mu   sync.Mutex
	legs []*Leg
}

// NewSink returns an enabled, empty sink.
func NewSink() *Sink { return &Sink{} }

// NewLeg opens a new leg named name with ranks rank tracks (plus the
// driver track). Legs are numbered in creation order; on a nil sink it
// returns nil.
func (s *Sink) NewLeg(name string, ranks int) *Leg {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	l := &Leg{pid: len(s.legs), name: name}
	l.tracks = make([]*Track, ranks)
	for i := range l.tracks {
		l.tracks[i] = &Track{tid: i, name: "rank " + itoa(i)}
	}
	l.driver = &Track{tid: ranks, name: "driver"}
	s.legs = append(s.legs, l)
	return l
}

// Legs returns the sink's legs in creation order. Callers must not read
// while traced ranks are still running.
func (s *Sink) Legs() []*Leg {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Leg(nil), s.legs...)
}

// itoa is strconv.Itoa without the import spread at emission sites.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Itoa formats an int for event args.
func Itoa(n int) string { return itoa(n) }
