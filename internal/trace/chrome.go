package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteChrome exports the sink as Chrome trace-event JSON, the format
// Perfetto (ui.perfetto.dev) loads directly: one process per leg, one
// thread per rank track plus the driver track, B/E pairs as nested
// slices, X as complete slices, i as instants. Timestamps are virtual
// microseconds with nanosecond precision.
//
// The encoding is hand-rolled rather than encoding/json for the
// byte-determinism contract: field order is fixed, args are emitted in
// recording order, numbers are formatted by integer arithmetic, and no
// map is ever iterated — equal event streams produce equal bytes.
func (s *Sink) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"schemaVersion\":")
	writeInt(bw, SchemaVersion)
	bw.WriteString(",\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	for _, leg := range s.Legs() {
		sep()
		writeMeta(bw, "process_name", leg.pid, -1, leg.name)
		sep()
		writeMetaInt(bw, "process_sort_index", leg.pid, -1, leg.pid)
		for _, t := range append(append([]*Track(nil), leg.tracks...), leg.driver) {
			sep()
			writeMeta(bw, "thread_name", leg.pid, t.tid, t.name)
			for i := range t.events {
				sep()
				writeEvent(bw, leg.pid, t.tid, &t.events[i])
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// WriteChromeFile writes the Chrome trace to path, creating parent
// directories as needed.
func (s *Sink) WriteChromeFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("trace: creating trace dir: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: creating trace file: %w", err)
	}
	if err := s.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: closing %s: %w", path, err)
	}
	return nil
}

// writeMeta emits a Chrome metadata record naming a process or thread.
// tid < 0 omits the tid field (process-scoped metadata).
func writeMeta(bw *bufio.Writer, kind string, pid, tid int, name string) {
	bw.WriteString("{\"name\":\"")
	bw.WriteString(kind)
	bw.WriteString("\",\"ph\":\"M\",\"pid\":")
	writeInt(bw, pid)
	if tid >= 0 {
		bw.WriteString(",\"tid\":")
		writeInt(bw, tid)
	}
	bw.WriteString(",\"args\":{\"name\":")
	writeString(bw, name)
	bw.WriteString("}}")
}

func writeMetaInt(bw *bufio.Writer, kind string, pid, tid, v int) {
	bw.WriteString("{\"name\":\"")
	bw.WriteString(kind)
	bw.WriteString("\",\"ph\":\"M\",\"pid\":")
	writeInt(bw, pid)
	if tid >= 0 {
		bw.WriteString(",\"tid\":")
		writeInt(bw, tid)
	}
	bw.WriteString(",\"args\":{\"sort_index\":")
	writeInt(bw, v)
	bw.WriteString("}}")
}

func writeEvent(bw *bufio.Writer, pid, tid int, e *Event) {
	bw.WriteString("{\"name\":")
	writeString(bw, e.Name)
	bw.WriteString(",\"cat\":")
	writeString(bw, e.Cat)
	bw.WriteString(",\"ph\":\"")
	bw.WriteByte(e.Ph)
	bw.WriteString("\",\"pid\":")
	writeInt(bw, pid)
	bw.WriteString(",\"tid\":")
	writeInt(bw, tid)
	bw.WriteString(",\"ts\":")
	writeMicros(bw, int64(e.Ts))
	if e.Ph == PhaseSpan {
		bw.WriteString(",\"dur\":")
		writeMicros(bw, int64(e.Dur))
	}
	if e.Ph == PhaseInstant {
		bw.WriteString(",\"s\":\"t\"")
	}
	if len(e.Args) > 0 {
		bw.WriteString(",\"args\":{")
		for i, a := range e.Args {
			if i > 0 {
				bw.WriteByte(',')
			}
			writeString(bw, a.Key)
			bw.WriteByte(':')
			writeString(bw, a.Val)
		}
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
}

// writeMicros formats ns nanoseconds as microseconds with three decimal
// places ("12.345"), by integer arithmetic only.
func writeMicros(bw *bufio.Writer, ns int64) {
	if ns < 0 {
		bw.WriteByte('-')
		ns = -ns
	}
	writeInt64(bw, ns/1000)
	frac := ns % 1000
	bw.WriteByte('.')
	bw.WriteByte(byte('0' + frac/100))
	bw.WriteByte(byte('0' + (frac/10)%10))
	bw.WriteByte(byte('0' + frac%10))
}

func writeInt(bw *bufio.Writer, n int) { writeInt64(bw, int64(n)) }

func writeInt64(bw *bufio.Writer, n int64) {
	if n < 0 {
		bw.WriteByte('-')
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	bw.Write(buf[i:])
}

// writeString emits s as a JSON string. Event names and args are ASCII
// identifiers by convention; the escaper still handles the full JSON
// mandatory set so a stray byte cannot corrupt the file.
func writeString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			bw.WriteByte('\\')
			bw.WriteByte(c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			bw.WriteString("\\u00")
			bw.WriteByte(hex[c>>4])
			bw.WriteByte(hex[c&0xf])
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}
