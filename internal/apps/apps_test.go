// Package apps_test exercises the two Figure 5 applications end to end:
// numerical sanity, stack-independence of results, and checkpoint/restart
// mid-simulation.
package apps_test

import (
	"bytes"
	"encoding/gob"
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/apps/comd"
	"repro/internal/apps/wavempi"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simnet"
)

func smallStack(impl core.Impl, abiMode core.ABIMode, ckpt core.CkptMode, n int) core.Stack {
	s := core.DefaultStack(impl, abiMode, ckpt)
	s.Net = simnet.SingleNode(n)
	return s
}

func runWave(t *testing.T, stack core.Stack, steps, points int) *wavempi.Wave {
	t.Helper()
	job, err := core.Launch(stack, "app.wave", core.WithConfigure(func(rank int, p core.Program) {
		w := p.(*wavempi.Wave)
		w.Steps = steps
		w.GlobalPoints = points
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	return job.Program(0).(*wavempi.Wave)
}

func TestWaveChecksumStackIndependent(t *testing.T) {
	// The standing wave's energy checksum must be identical regardless of
	// implementation or interposition: MPI plumbing must not change the
	// numerics.
	var ref float64
	for i, stack := range []core.Stack{
		smallStack(core.ImplMPICH, core.ABINative, core.CkptNone, 4),
		smallStack(core.ImplOpenMPI, core.ABINative, core.CkptNone, 4),
		smallStack(core.ImplStdABI, core.ABINative, core.CkptNone, 4),
		smallStack(core.ImplMPICH, core.ABIMukautuva, core.CkptMANA, 4),
		smallStack(core.ImplOpenMPI, core.ABIMukautuva, core.CkptMANA, 4),
		smallStack(core.ImplStdABI, core.ABIMukautuva, core.CkptMANA, 4),
	} {
		w := runWave(t, stack, 25, 2048)
		if i == 0 {
			ref = w.Checked
			if ref <= 0 {
				t.Fatalf("degenerate checksum %v", ref)
			}
			continue
		}
		if math.Abs(w.Checked-ref) > 1e-9 {
			t.Fatalf("stack %d checksum %v != reference %v", i, w.Checked, ref)
		}
	}
}

func TestWaveEnergyBounded(t *testing.T) {
	// The explicit scheme at this CFL number must not blow up.
	w := runWave(t, smallStack(core.ImplMPICH, core.ABINative, core.CkptNone, 4), 60, 4096)
	if math.IsNaN(w.Checked) || w.Checked > 1e6 {
		t.Fatalf("solution diverged: checksum %v", w.Checked)
	}
}

func TestWaveRejectsTinyGrid(t *testing.T) {
	job, err := core.Launch(smallStack(core.ImplMPICH, core.ABINative, core.CkptNone, 4), "app.wave",
		core.WithConfigure(func(rank int, p core.Program) {
			w := p.(*wavempi.Wave)
			w.GlobalPoints = 3
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err == nil {
		t.Fatal("3-point grid over 4 ranks accepted")
	}
}

func runCoMD(t *testing.T, stack core.Stack, steps, atoms int) (*comd.CoMD, float64) {
	t.Helper()
	job, err := core.Launch(stack, "app.comd", core.WithConfigure(func(rank int, p core.Program) {
		c := p.(*comd.CoMD)
		c.Steps = steps
		c.ParticlesPerRank = atoms
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	var maxT float64
	for r := 0; r < stack.Net.Size(); r++ {
		if ts := job.Clock(r).Duration().Seconds(); ts > maxT {
			maxT = ts
		}
	}
	return job.Program(0).(*comd.CoMD), maxT
}

func TestCoMDEnergiesFinite(t *testing.T) {
	for _, impl := range []core.Impl{core.ImplMPICH, core.ImplOpenMPI} {
		t.Run(string(impl), func(t *testing.T) {
			c, elapsed := runCoMD(t, smallStack(impl, core.ABINative, core.CkptNone, 4), 10, 64)
			if math.IsNaN(c.KineticE) || math.IsNaN(c.PotentialE) {
				t.Fatalf("energies NaN: %v %v", c.KineticE, c.PotentialE)
			}
			if c.KineticE <= 0 {
				t.Fatalf("kinetic energy %v not positive", c.KineticE)
			}
			if elapsed <= 0 {
				t.Fatal("no virtual time elapsed")
			}
		})
	}
}

func TestCoMDDeterministicAcrossImpls(t *testing.T) {
	// Same seed, same particles: the energies must agree across
	// implementations bit-for-bit deviations aside (the halo exchange is
	// bytewise identical; reduction order may differ, so allow a tiny
	// tolerance).
	a, _ := runCoMD(t, smallStack(core.ImplMPICH, core.ABINative, core.CkptNone, 4), 8, 64)
	b, _ := runCoMD(t, smallStack(core.ImplOpenMPI, core.ABIMukautuva, core.CkptMANA, 4), 8, 64)
	if math.Abs(a.KineticE-b.KineticE) > 1e-6*math.Abs(a.KineticE)+1e-12 {
		t.Fatalf("kinetic energies diverge: %v vs %v", a.KineticE, b.KineticE)
	}
	if math.Abs(a.PotentialE-b.PotentialE) > 1e-6*math.Abs(a.PotentialE)+1e-9 {
		t.Fatalf("potential energies diverge: %v vs %v", a.PotentialE, b.PotentialE)
	}
}

func TestAppsCheckpointRestartCrossImpl(t *testing.T) {
	for _, app := range []string{"app.wave", "app.comd"} {
		t.Run(app, func(t *testing.T) {
			stack := smallStack(core.ImplOpenMPI, core.ABIMukautuva, core.CkptMANA, 4)
			dir := filepath.Join(t.TempDir(), "img")
			// Hold the launch so the checkpoint request is registered
			// before any rank steps: the checkpoint lands at the first
			// safe point instead of racing the job to completion.
			job, err := core.Launch(stack, app, core.WithConfigure(func(rank int, p core.Program) {
				switch v := p.(type) {
				case *wavempi.Wave:
					v.Steps = 2000
					v.GlobalPoints = 2048
				case *comd.CoMD:
					v.Steps = 2000
					v.ParticlesPerRank = 48
				}
			}), core.WithHold())
			if err != nil {
				t.Fatal(err)
			}
			ckpt := job.CheckpointAsync(dir, true)
			job.Start()
			if err := <-ckpt; err != nil {
				t.Fatal(err)
			}
			if err := job.Wait(); err != nil {
				t.Fatal(err)
			}
			// Shorten the remaining run by hacking steps? No — restart must
			// complete the full run; keep it running under MPICH and give it
			// a moment before verifying it progresses.
			restarted, err := core.Restart(dir, smallStack(core.ImplMPICH, core.ABIMukautuva, core.CkptMANA, 4))
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { done <- restarted.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(120 * time.Second):
				t.Fatal("restarted app did not finish")
			}
		})
	}
}

// equivProbe is a seeded SPMD program exercising the collective surface
// with integer payloads: every round it derives a deterministic vector
// from (seed, round, rank), runs it through allreduce (sum and max),
// bcast, allgather and alltoall, and folds every result byte into a
// running FNV-1a digest. Integer reductions are exact, so the digest —
// and the whole gob-serialized program state — must be byte-identical
// under every implementation and binding, whatever tree shapes and
// thresholds their policies pick. (Floating-point apps get a tolerance;
// this probe is the exact-arithmetic form of the invariant.)
type equivProbe struct {
	Seed   int64
	Rounds int
	Round  int
	Digest uint64
}

func (p *equivProbe) Setup(env *abi.Env) error {
	p.Digest = 14695981039346656037 // FNV-1a offset basis
	return nil
}

func (p *equivProbe) fold(b []byte) {
	for _, x := range b {
		p.Digest ^= uint64(x)
		p.Digest *= 1099511628211
	}
}

func (p *equivProbe) Step(env *abi.Env) (bool, error) {
	n, me := env.Size(), env.Rank()
	const count = 96 // crosses none of the eager limits; payload math still exact
	vals := make([]int64, count)
	for i := range vals {
		vals[i] = p.Seed + int64(p.Round)*1009 + int64(me)*31 + int64(i)
	}
	sb := abi.Int64Bytes(vals)
	rb := make([]byte, count*8)
	if err := env.T.Allreduce(sb, rb, count, env.TypeInt64, env.OpSum, env.CommWorld); err != nil {
		return false, err
	}
	p.fold(rb)
	if err := env.T.Allreduce(sb, rb, count, env.TypeInt64, env.OpMax, env.CommWorld); err != nil {
		return false, err
	}
	p.fold(rb)
	root := p.Round % n
	bc := make([]byte, count*8)
	if me == root {
		copy(bc, sb)
	}
	if err := env.T.Bcast(bc, count, env.TypeInt64, root, env.CommWorld); err != nil {
		return false, err
	}
	p.fold(bc)
	ag := make([]byte, n*8)
	if err := env.T.Allgather(abi.Int64Bytes([]int64{vals[0]}), 1, env.TypeInt64,
		ag, 1, env.TypeInt64, env.CommWorld); err != nil {
		return false, err
	}
	p.fold(ag)
	a2a := make([]int64, n)
	for d := 0; d < n; d++ {
		a2a[d] = vals[0]*1000 + int64(d)
	}
	at := make([]byte, n*8)
	if err := env.T.Alltoall(abi.Int64Bytes(a2a), 1, env.TypeInt64,
		at, 1, env.TypeInt64, env.CommWorld); err != nil {
		return false, err
	}
	p.fold(at)
	p.Round++
	return p.Round >= p.Rounds, nil
}

func init() {
	core.RegisterProgram("test.equiv.collectives", func() core.Program {
		return &equivProbe{Seed: 7, Rounds: 5}
	})
}

// TestCollectiveResultsByteIdenticalAcrossImpls is the "same math,
// different ABI" invariant: the same seeded program must produce
// byte-identical reduction/collective results under mpich, openmpi and
// stdabi — natively and through the standard-ABI shim — down to the
// gob-serialized program state of every rank.
func TestCollectiveResultsByteIdenticalAcrossImpls(t *testing.T) {
	const n = 5 // odd size exercises the non-power-of-two paths everywhere
	type leg struct {
		impl core.Impl
		abi  core.ABIMode
	}
	legs := []leg{
		{core.ImplMPICH, core.ABINative},
		{core.ImplOpenMPI, core.ABINative},
		{core.ImplStdABI, core.ABINative},
		{core.ImplMPICH, core.ABIMukautuva},
		{core.ImplOpenMPI, core.ABIMukautuva},
		{core.ImplStdABI, core.ABIMukautuva},
	}
	var ref [][]byte // per-rank gob state of the first leg
	for i, l := range legs {
		stack := smallStack(l.impl, l.abi, core.CkptNone, n)
		job, err := core.Launch(stack, "test.equiv.collectives")
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(); err != nil {
			t.Fatalf("%s+%s: %v", l.impl, l.abi, err)
		}
		states := make([][]byte, n)
		for r := 0; r < n; r++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(job.Program(r)); err != nil {
				t.Fatal(err)
			}
			states[r] = buf.Bytes()
			probe := job.Program(r).(*equivProbe)
			if probe.Round != probe.Rounds || probe.Digest == 0 {
				t.Fatalf("%s+%s rank %d: probe did not complete: %+v", l.impl, l.abi, r, probe)
			}
		}
		if i == 0 {
			ref = states
			continue
		}
		for r := 0; r < n; r++ {
			if !bytes.Equal(states[r], ref[r]) {
				t.Errorf("%s+%s rank %d: state diverges from %s+%s (digest %x vs %x)",
					l.impl, l.abi, r, legs[0].impl, legs[0].abi,
					job.Program(r).(*equivProbe).Digest, mustProbe(t, ref[r]).Digest)
			}
		}
	}
}

// mustProbe decodes a gob-serialized probe state.
func mustProbe(t *testing.T, raw []byte) *equivProbe {
	t.Helper()
	var p equivProbe
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&p); err != nil {
		t.Fatal(err)
	}
	return &p
}

func TestScaleHelpers(t *testing.T) {
	w := wavempi.New()
	w.ScaleSteps(0.001)
	if w.Steps < 3 || w.GlobalPoints < 256 {
		t.Fatalf("wave floor violated: %d %d", w.Steps, w.GlobalPoints)
	}
	c := comd.New()
	c.ScaleSteps(0.001)
	if c.Steps < 3 || c.ParticlesPerRank < 32 {
		t.Fatalf("comd floor violated: %d %d", c.Steps, c.ParticlesPerRank)
	}
	w.SetSeed(5)
	c.SetSeed(5)
	if w.Seed != 5 || c.Seed != 5 {
		t.Fatal("seed setters broken")
	}
}

// TestWaveShrinkRecoveryDigest is the application-level acceptance check
// for ULFM in-place recovery: kill a rank mid-run under every
// implementation (the survivors are inside the halo exchange — only the
// victim's neighbors observe the death directly; the rest are dragged
// in by revocation), shrink, and require the recovered checksum to
// match a survivors-only reference run bit-for-bit.
func TestWaveShrinkRecoveryDigest(t *testing.T) {
	const n, victim = 4, 3
	configure := core.WithConfigure(func(rank int, p core.Program) {
		w := p.(*wavempi.Wave)
		w.Steps = 20
		w.GlobalPoints = 2048
	})
	for _, impl := range []core.Impl{core.ImplMPICH, core.ImplOpenMPI, core.ImplStdABI} {
		t.Run(string(impl), func(t *testing.T) {
			stack := smallStack(impl, core.ABINative, core.CkptNone, n)
			inj, err := faults.NewInjector(faults.Plan{Faults: []faults.Spec{
				{Kind: faults.KindRankCrash, Rank: victim, Step: 5, NonFatal: true},
			}}, 1, stack.Net)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.RunWithShrinkRecovery(stack, "app.wave", inj,
				core.ShrinkPolicy{LegTimeout: 2 * time.Minute}, configure)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed || res.Shrinks != 1 {
				t.Fatalf("completed=%v shrinks=%d", res.Completed, res.Shrinks)
			}
			ref := runWave(t, smallStack(impl, core.ABINative, core.CkptNone, n-1), 20, 2048)
			got := res.Job.Program(0).(*wavempi.Wave).Checked
			if ref.Checked == 0 || got != ref.Checked {
				t.Fatalf("recovered checksum %v != %d-rank reference %v", got, n-1, ref.Checked)
			}
		})
	}
}
