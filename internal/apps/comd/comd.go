// Package comd reproduces the communication and compute signature of the
// CoMD molecular-dynamics proxy application, the first real-world workload
// in the paper's Figure 5: short-range Lennard-Jones dynamics with a
// spatially decomposed particle set, per-step halo exchange of boundary
// particles with neighbor ranks, velocity-Verlet integration, and a global
// energy reduction.
//
// The decomposition is 1-D over a 3-D periodic box (the paper's runs use
// 48 ranks on a modest problem, where the halo pattern, message sizes in
// the tens of kilobytes, and one allreduce per step are what the MPI stack
// sees).
//
// In the README's layer diagram CoMD is the applications row: compiled
// once against internal/abi, oblivious to every layer below.
package comd

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/abi"
	"repro/internal/core"
)

// Particle is one atom's dynamic state (exported for gob).
type Particle struct {
	X, Y, Z    float64
	Vx, Vy, Vz float64
}

// CoMD is the per-rank program state.
type CoMD struct {
	// Parameters.
	ParticlesPerRank int
	Steps            int
	BoxSide          float64 // periodic box edge length (per-rank slab depth in X)
	Cutoff           float64
	Dt               float64
	// ComputeNsPerPair models the force kernel's virtual cost per
	// interacting pair examined; the kernel also really executes.
	ComputeNsPerPair float64
	// Seed feeds the OS-noise model (per-step compute jitter).
	Seed int64

	// State.
	Iter       int
	Atoms      []Particle
	KineticE   float64
	PotentialE float64
}

// New returns the paper-scale configuration.
func New() *CoMD {
	return &CoMD{
		ParticlesPerRank: 384,
		Steps:            300,
		BoxSide:          6.0,
		Cutoff:           1.6,
		Dt:               0.0005,
		ComputeNsPerPair: 18,
	}
}

// Setup seeds the rank's slab with a jittered lattice, deterministic per
// rank.
func (c *CoMD) Setup(env *abi.Env) error {
	if c.ParticlesPerRank <= 0 {
		return fmt.Errorf("comd: ParticlesPerRank must be positive")
	}
	rng := rand.New(rand.NewSource(int64(env.Rank()) + 7))
	c.Atoms = make([]Particle, c.ParticlesPerRank)
	side := int(math.Ceil(math.Cbrt(float64(c.ParticlesPerRank))))
	spacing := c.BoxSide / float64(side)
	for i := range c.Atoms {
		ix, iy, iz := i%side, (i/side)%side, i/(side*side)
		c.Atoms[i] = Particle{
			X:  (float64(ix) + 0.1*rng.Float64()) * spacing,
			Y:  (float64(iy) + 0.1*rng.Float64()) * spacing,
			Z:  (float64(iz) + 0.1*rng.Float64()) * spacing,
			Vx: rng.NormFloat64() * 0.05,
			Vy: rng.NormFloat64() * 0.05,
			Vz: rng.NormFloat64() * 0.05,
		}
	}
	return nil
}

// packPositions serializes the slab boundary atoms (all atoms here: the
// slab is thin, as in small-per-rank CoMD runs) for the halo exchange.
func (c *CoMD) packPositions() []byte {
	vals := make([]float64, 3*len(c.Atoms))
	for i, a := range c.Atoms {
		vals[3*i], vals[3*i+1], vals[3*i+2] = a.X, a.Y, a.Z
	}
	return abi.Float64Bytes(vals)
}

// ljForce accumulates the Lennard-Jones force on atom a from a neighbor
// position, returning the pair potential energy contribution.
func ljForce(a *Particle, fx, fy, fz *float64, nx, ny, nz, cutoff2 float64) float64 {
	dx, dy, dz := a.X-nx, a.Y-ny, a.Z-nz
	r2 := dx*dx + dy*dy + dz*dz
	if r2 > cutoff2 || r2 < 1e-9 {
		return 0
	}
	inv2 := 1.0 / r2
	inv6 := inv2 * inv2 * inv2
	f := 24 * inv2 * inv6 * (2*inv6 - 1)
	*fx += f * dx
	*fy += f * dy
	*fz += f * dz
	return 4 * inv6 * (inv6 - 1)
}

// Step is one velocity-Verlet iteration: exchange halo positions with both
// X-neighbors, compute LJ forces against local + halo atoms, integrate,
// and reduce the total energy.
func (c *CoMD) Step(env *abi.Env) (bool, error) {
	n, me := env.Size(), env.Rank()
	left, right := (me-1+n)%n, (me+1)%n
	mine := c.packPositions()

	var fromLeft, fromRight []byte
	if n > 1 {
		fromLeft = make([]byte, len(mine))
		fromRight = make([]byte, len(mine))
		r1, err := env.T.Irecv(fromLeft, len(fromLeft), env.TypeByte, left, 21, env.CommWorld)
		if err != nil {
			return false, err
		}
		r2, err := env.T.Irecv(fromRight, len(fromRight), env.TypeByte, right, 22, env.CommWorld)
		if err != nil {
			return false, err
		}
		if err := env.T.Send(mine, len(mine), env.TypeByte, right, 21, env.CommWorld); err != nil {
			return false, err
		}
		if err := env.T.Send(mine, len(mine), env.TypeByte, left, 22, env.CommWorld); err != nil {
			return false, err
		}
		if err := env.T.Waitall([]abi.Handle{r1, r2}, nil); err != nil {
			return false, err
		}
	}
	// Neighbor slabs sit at X-offsets of one box side: rank r-1's box is
	// the slab at [-side, 0), rank r+1's at [side, 2*side). Without the
	// offsets, halo atoms would alias local coordinates and the potential
	// would blow up.
	haloLeft := abi.Float64sOf(fromLeft)
	for j := 0; j+2 < len(haloLeft); j += 3 {
		haloLeft[j] -= c.BoxSide
	}
	haloRight := abi.Float64sOf(fromRight)
	for j := 0; j+2 < len(haloRight); j += 3 {
		haloRight[j] += c.BoxSide
	}
	halo := append(haloLeft, haloRight...)
	local := abi.Float64sOf(mine)

	cutoff2 := c.Cutoff * c.Cutoff
	pairs := 0
	var potential float64
	for i := range c.Atoms {
		a := &c.Atoms[i]
		var fx, fy, fz float64
		for j := 0; j+2 < len(local); j += 3 {
			if j/3 == i {
				continue
			}
			potential += ljForce(a, &fx, &fy, &fz, local[j], local[j+1], local[j+2], cutoff2)
			pairs++
		}
		for j := 0; j+2 < len(halo); j += 3 {
			potential += ljForce(a, &fx, &fy, &fz, halo[j], halo[j+1], halo[j+2], cutoff2)
			pairs++
		}
		// Velocity Verlet (unit mass), with positions wrapped into the box.
		a.Vx += fx * c.Dt
		a.Vy += fy * c.Dt
		a.Vz += fz * c.Dt
		a.X = wrap(a.X+a.Vx*c.Dt, c.BoxSide)
		a.Y = wrap(a.Y+a.Vy*c.Dt, c.BoxSide)
		a.Z = wrap(a.Z+a.Vz*c.Dt, c.BoxSide)
	}
	cost := float64(pairs) * c.ComputeNsPerPair
	cost *= 1 + 0.05*noise(c.Seed, int64(c.Iter), int64(me))
	env.Compute(time.Duration(cost))

	var kinetic float64
	for _, a := range c.Atoms {
		kinetic += 0.5 * (a.Vx*a.Vx + a.Vy*a.Vy + a.Vz*a.Vz)
	}
	out := make([]byte, 16)
	if err := env.T.Allreduce(abi.Float64Bytes([]float64{kinetic, potential / 2}), out, 2,
		env.TypeFloat64, env.OpSum, env.CommWorld); err != nil {
		return false, err
	}
	sums := abi.Float64sOf(out)
	c.KineticE, c.PotentialE = sums[0], sums[1]

	c.Iter++
	return c.Iter >= c.Steps, nil
}

// noise returns a deterministic pseudo-random value in [0, 1) (see the
// wavempi twin).
func noise(seed, iter, rank int64) float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(iter)*0xbf58476d1ce4e5b9 ^ uint64(rank)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return float64(x%1000000) / 1000000
}

func wrap(x, side float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0 // numerically destroyed atoms re-enter at the origin
	}
	x = math.Mod(x, side)
	if x < 0 {
		x += side
	}
	return x
}

func init() {
	core.RegisterProgram("app.comd", func() core.Program { return New() })
}

// ScaleSteps shrinks the run for quick harness configurations.
func (c *CoMD) ScaleSteps(f float64) {
	c.Steps = int(float64(c.Steps) * f)
	if c.Steps < 3 {
		c.Steps = 3
	}
	c.ParticlesPerRank = int(float64(c.ParticlesPerRank) * f * 2)
	if c.ParticlesPerRank < 32 {
		c.ParticlesPerRank = 32
	}
}

// SetSeed plants the run's OS-noise seed (harness hook).
func (c *CoMD) SetSeed(s int64) { c.Seed = s }
