// Package wavempi reproduces Burkardt's wave_mpi benchmark, the second
// real-world application in the paper's Figure 5: a 1-D wave equation
// u_tt = c^2 u_xx solved by explicit finite differences, with the spatial
// domain block-distributed across ranks and one halo value exchanged with
// each neighbor per time step.
//
// The communication signature is what matters for the reproduction: two
// tiny point-to-point messages per rank per step, which is why the paper
// sees essentially zero Mukautuva+MANA overhead on it.
//
// In the README's layer diagram wave_mpi is the applications row,
// compiled once against internal/abi like its CoMD sibling.
package wavempi

import (
	"fmt"
	"math"
	"time"

	"repro/internal/abi"
	"repro/internal/core"
)

// Wave is the per-rank program state. Exported fields are checkpointed.
type Wave struct {
	// Parameters (set at launch).
	GlobalPoints int     // total grid points
	Steps        int     // time steps to run
	C            float64 // wave speed
	Dt           float64 // time step

	// ComputeNsPerPoint models the per-point floating-point cost in
	// virtual time; the stencil itself also really executes.
	ComputeNsPerPoint float64
	// Seed feeds the OS-noise model (per-step compute jitter), giving
	// repeated runs the run-to-run variance Figure 5's error bars show.
	Seed int64

	// State.
	Iter    int
	UPrev   []float64
	U       []float64
	lo, hi  int // owned index range [lo, hi)
	Checked float64
}

// New returns the paper-scale configuration: enough points and steps that
// the completion time lands in Figure 5's seconds range.
func New() *Wave {
	return &Wave{
		GlobalPoints:      1 << 20,
		Steps:             400,
		C:                 1.0,
		Dt:                0.00005,
		ComputeNsPerPoint: 250,
	}
}

// split computes rank r's block [lo, hi) of n points over size ranks.
func split(n, size, r int) (int, int) {
	base, rem := n/size, n%size
	lo := r*base + min(r, rem)
	sz := base
	if r < rem {
		sz++
	}
	return lo, lo + sz
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Setup initializes the rank's slab with the standing-wave initial
// condition.
func (w *Wave) Setup(env *abi.Env) error {
	if w.GlobalPoints < env.Size()*2 {
		return fmt.Errorf("wavempi: %d points cannot split over %d ranks", w.GlobalPoints, env.Size())
	}
	w.lo, w.hi = split(w.GlobalPoints, env.Size(), env.Rank())
	n := w.hi - w.lo
	w.UPrev = make([]float64, n)
	w.U = make([]float64, n)
	dx := 1.0 / float64(w.GlobalPoints-1)
	for i := 0; i < n; i++ {
		x := float64(w.lo+i) * dx
		w.U[i] = math.Sin(2 * math.Pi * x)
		w.UPrev[i] = w.U[i]
	}
	return nil
}

// Step advances one time level: exchange halo values with both neighbors,
// apply the stencil, rotate the time levels.
func (w *Wave) Step(env *abi.Env) (bool, error) {
	if w.lo == 0 && w.hi == 0 { // restarted image: recompute the partition
		w.lo, w.hi = split(w.GlobalPoints, env.Size(), env.Rank())
	}
	n := w.hi - w.lo
	me, size := env.Rank(), env.Size()
	left, right := me-1, me+1
	if left < 0 {
		left = env.ProcNull
	}
	if right >= size {
		right = env.ProcNull
	}
	// Halo exchange: send boundary values, receive ghosts. PROC_NULL at
	// the physical boundaries keeps the code branch-free, as in the
	// original Fortran.
	var leftGhost, rightGhost [8]byte
	var reqs []abi.Handle
	r1, err := env.T.Irecv(leftGhost[:], 1, env.TypeFloat64, left, 10, env.CommWorld)
	if err != nil {
		return false, err
	}
	r2, err := env.T.Irecv(rightGhost[:], 1, env.TypeFloat64, right, 11, env.CommWorld)
	if err != nil {
		return false, err
	}
	reqs = append(reqs, r1, r2)
	if err := env.T.Send(abi.Float64Bytes(w.U[:1]), 1, env.TypeFloat64, left, 11, env.CommWorld); err != nil {
		return false, err
	}
	if err := env.T.Send(abi.Float64Bytes(w.U[n-1:]), 1, env.TypeFloat64, right, 10, env.CommWorld); err != nil {
		return false, err
	}
	if err := env.T.Waitall(reqs, nil); err != nil {
		return false, err
	}

	dx := 1.0 / float64(w.GlobalPoints-1)
	alpha := w.C * w.C * w.Dt * w.Dt / (dx * dx)
	uNext := make([]float64, n)
	at := func(i int) float64 {
		switch {
		case i < 0:
			if me == 0 {
				return 0 // fixed physical boundary
			}
			return abi.Float64sOf(leftGhost[:])[0]
		case i >= n:
			if me == size-1 {
				return 0
			}
			return abi.Float64sOf(rightGhost[:])[0]
		default:
			return w.U[i]
		}
	}
	for i := 0; i < n; i++ {
		uNext[i] = 2*w.U[i] - w.UPrev[i] + alpha*(at(i-1)-2*w.U[i]+at(i+1))
	}
	w.UPrev, w.U = w.U, uNext
	// Charge the stencil's virtual compute cost, with OS-noise jitter.
	cost := float64(n) * w.ComputeNsPerPoint
	cost *= 1 + 0.05*noise(w.Seed, int64(w.Iter), int64(me))
	env.Compute(time.Duration(cost))
	w.Iter++
	if w.Iter >= w.Steps {
		// Final consistency value: global energy-ish checksum.
		var local float64
		for _, v := range w.U {
			local += v * v
		}
		out := make([]byte, 8)
		if err := env.T.Allreduce(abi.Float64Bytes([]float64{local}), out, 1,
			env.TypeFloat64, env.OpSum, env.CommWorld); err != nil {
			return false, err
		}
		w.Checked = abi.Float64sOf(out)[0]
		return true, nil
	}
	return false, nil
}

// noise returns a deterministic pseudo-random value in [0, 1) from the
// run seed, step and rank — the OS-noise model shared by the Figure 5
// applications.
func noise(seed, iter, rank int64) float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(iter)*0xbf58476d1ce4e5b9 ^ uint64(rank)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return float64(x%1000000) / 1000000
}

func init() {
	core.RegisterProgram("app.wave", func() core.Program { return New() })
}

// ScaleSteps shrinks the run for quick harness configurations.
func (w *Wave) ScaleSteps(f float64) {
	w.Steps = int(float64(w.Steps) * f)
	if w.Steps < 3 {
		w.Steps = 3
	}
	w.GlobalPoints = int(float64(w.GlobalPoints) * f)
	if w.GlobalPoints < 256 {
		w.GlobalPoints = 256
	}
}

// SetSeed plants the run's OS-noise seed (harness hook).
func (w *Wave) SetSeed(s int64) { w.Seed = s }
