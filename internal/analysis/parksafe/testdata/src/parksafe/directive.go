// Directive suppression: an allowed fact is struck before the may-park
// closure, so neither the site nor anything reaching it is reported.
package parksafe

import "repro/internal/fabric"

func sendsOnce(done chan struct{}) {
	done <- struct{}{} //mpivet:allow parksafe -- seeded: capacity-1 in every caller, the send never blocks
}

func suppressedFactClearsClosure(w *fabric.World, done chan struct{}) {
	w.Spawn(0, func() {
		sendsOnce(done)
	})
}
