// Seeded violations of the fiber park discipline.
package parksafe

import (
	"sync"
	"time"

	"repro/internal/fabric"
)

func directBlocks(w *fabric.World, ch chan int, wg *sync.WaitGroup) {
	w.Spawn(0, func() {
		ch <- 1 // want `channel send blocks a fiber`
	})
	w.Spawn(1, func() {
		time.Sleep(time.Millisecond) // want `time\.Sleep blocks a fiber`
	})
	w.Spawn(2, func() {
		wg.Wait() // want `sync\.WaitGroup\.Wait blocks a fiber`
	})
	w.Spawn(3, func() {
		for range ch { // want `range over a channel blocks a fiber`
		}
	})
}

func selectNoDefault(w *fabric.World, a, b chan int) {
	w.Spawn(0, func() {
		select { // want `select without a default case blocks a fiber`
		case <-a:
		case <-b:
		}
	})
}

func condWait(w *fabric.World, c *sync.Cond) {
	w.Spawn(0, func() {
		c.L.Lock()
		c.Wait() // want `sync\.Cond\.Wait blocks a fiber`
		c.L.Unlock()
	})
}

// blockHelper is reachable from a fiber only through the call graph.
func blockHelper(ch chan int) int {
	return <-ch // want `channel receive blocks a fiber`
}

func transitive(w *fabric.World, ch chan int) {
	w.Spawn(0, func() {
		blockHelper(ch)
	})
}

func lockedAcrossBlock(w *fabric.World, ch chan int) {
	var mu sync.Mutex
	w.Spawn(0, func() {
		mu.Lock()
		<-ch // want `channel receive blocks a fiber` `channel receive while mu is held`
		mu.Unlock()
	})
}

func lockedAcrossCall(w *fabric.World, ch chan int) {
	var mu sync.Mutex
	w.Spawn(0, func() {
		mu.Lock()
		blockHelper(ch) // want `parksafe\.blockHelper \(which may park\) while mu is held`
		mu.Unlock()
	})
}
