// False-positive regressions for the fiber rules.
package parksafe

import (
	"sync"

	"repro/internal/fabric"
)

// offFiber: goroutines started by fiber code are not fibers — they may
// block freely.
func offFiber(w *fabric.World, ch chan int) {
	w.Spawn(0, func() {
		go func() {
			ch <- 1
		}()
	})
}

// notSpawned: a function never handed to Spawn may block; it is host
// code.
func notSpawned(ch chan int) {
	ch <- 1
	<-ch
}

// selectWithDefault never blocks.
func selectWithDefault(w *fabric.World, ch chan int) {
	w.Spawn(0, func() {
		select {
		case v := <-ch:
			_ = v
		default:
		}
	})
}

// unlockBeforeBlock is the runtime's own mailbox/OOB pattern: release
// the lock, block, re-take it. The sequential model must not flag the
// block site.
func unlockBeforeBlock(w *fabric.World, ch chan int) {
	var mu sync.Mutex
	w.Spawn(0, func() {
		mu.Lock()
		mu.Unlock()
		blockHelper(ch)
		mu.Lock()
		mu.Unlock()
	})
}

// shortCritical: lock spans only non-parking work.
func shortCritical(w *fabric.World) {
	var mu sync.Mutex
	n := 0
	w.Spawn(0, func() {
		mu.Lock()
		n++
		mu.Unlock()
	})
	_ = n
}
