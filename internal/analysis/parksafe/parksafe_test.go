package parksafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/parksafe"
)

func TestParkSafe(t *testing.T) {
	analysistest.Run(t, parksafe.Analyzer, "parksafe")
}
