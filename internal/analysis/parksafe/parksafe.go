// Package parksafe checks the event-mode fiber discipline from
// internal/fabric/sched.go: under ProgressEvent every rank runs as a
// fiber multiplexed onto one scheduler token, and a fiber that blocks
// in the Go runtime instead of parking through (*sched).park stalls the
// token — every other rank in the world stops with it. The rules:
//
//  1. Code reachable from fiber roots — the functions handed to
//     (*World).Spawn — must not use blocking primitives directly:
//     channel sends/receives, select without default, range over a
//     channel, sync.Cond.Wait, sync.WaitGroup.Wait, time.Sleep.
//  2. A fiber must not hold a mutex across anything that may park:
//     park hands the token to another fiber, and if that fiber needs
//     the mutex the world deadlocks. The runtime's own pattern
//     (mailbox, OOB) is unlock -> park -> relock, and the checker
//     models exactly that sequence.
//
// The call graph is assembled from static calls across every loaded
// package (keys from analysis.FuncKey, so identity survives separate
// type-checker instances); interface calls fan out to every module
// method with the same name and parameter count; `go fn()` targets are
// excluded (a goroutine started by a fiber is not a fiber).
package parksafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the parksafe checker. It is program-level: reachability
// from Spawn roots crosses package boundaries.
var Analyzer = &analysis.Analyzer{
	Name:       "parksafe",
	Doc:        "check that fiber-reachable code blocks only via the scheduler and never parks holding a mutex",
	RunProgram: runProgram,
}

type fact struct {
	pos  token.Pos
	what string
}

type funcNode struct {
	key     string
	display string
	pass    *analysis.Pass
	body    *ast.BlockStmt

	edges     []string
	facts     []fact      // direct blocking primitives
	parkCalls []token.Pos // direct (*sched).park calls
	goCalls   map[*ast.CallExpr]bool

	root    string // "" or the Spawn site that makes this a fiber root
	mayPark bool
}

type program struct {
	nodes   map[string]*funcNode
	methods map[string][]string // name|nparams -> concrete method keys
	order   []string            // insertion order, for determinism
}

func runProgram(passes []*analysis.Pass) error {
	p := &program{nodes: map[string]*funcNode{}, methods: map[string][]string{}}
	for _, pass := range passes {
		p.indexPass(pass)
	}
	// Second sweep: scan bodies (needs the full method index for
	// interface fan-out).
	for _, key := range p.order {
		p.scan(p.nodes[key])
	}
	p.fixMayPark()
	p.report()
	return nil
}

// indexPass registers every declared function and method of the pass.
func (p *program) indexPass(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			key := analysis.FuncKey(fn)
			p.add(&funcNode{
				key:     key,
				display: displayName(fn),
				pass:    pass,
				body:    fd.Body,
			})
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				mk := methodKey(fn.Name(), sig.Params().Len())
				p.methods[mk] = append(p.methods[mk], key)
			}
		}
	}
}

// addFact records a blocking primitive unless a directive covers the
// site: an allowed fact is struck before the may-park closure, so a
// justified "this send cannot block" does not demand echo directives up
// every caller chain.
func (n *funcNode) addFact(pos token.Pos, what string) {
	if !n.pass.Allowed(pos) {
		n.facts = append(n.facts, fact{pos, what})
	}
}

func (p *program) add(n *funcNode) {
	if _, dup := p.nodes[n.key]; dup {
		return
	}
	p.nodes[n.key] = n
	p.order = append(p.order, n.key)
}

func methodKey(name string, nparams int) string {
	return fmt.Sprintf("%s|%d", name, nparams)
}

func displayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = path.Base(fn.Pkg().Path()) + "."
	}
	if recv := analysis.RecvTypeName(fn); recv != "" {
		return pkg + "(*" + recv + ")." + fn.Name()
	}
	return pkg + fn.Name()
}

// scan collects edges, blocking facts, park calls, and Spawn roots from
// one function body. Function literals become child nodes: linked by an
// edge when they may run on the caller's fiber, rootless and edgeless
// when they are a `go` target, and fiber roots when passed to Spawn.
func (p *program) scan(n *funcNode) {
	info := n.pass.TypesInfo
	noEdge := map[*ast.FuncLit]bool{}    // go-statement targets: off-fiber
	rootLit := map[*ast.FuncLit]string{} // Spawn arguments: fiber roots
	n.goCalls = map[*ast.CallExpr]bool{}
	skipComm := map[ast.Node]bool{}

	ast.Inspect(n.body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			n.goCalls[x.Call] = true
			if lit, ok := analysis.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				noEdge[lit] = true
			}
		case *ast.CallExpr:
			if spawnSite, fnArg := p.spawnArg(info, x); fnArg != nil {
				site := fmt.Sprintf("%s(%s)", spawnSite, shortPos(n.pass.Fset, x.Pos()))
				if lit, ok := analysis.Unparen(fnArg).(*ast.FuncLit); ok {
					rootLit[lit] = site
				} else if callee := funcValue(info, fnArg); callee != nil {
					if t := p.nodes[analysis.FuncKey(callee)]; t != nil && t.root == "" {
						t.root = site
					}
				}
			}
		case *ast.SelectStmt:
			for _, cl := range x.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					skipComm[cc.Comm] = true
				}
			}
		}
		return true
	})

	addFact := n.addFact

	var walk func(x ast.Node) bool
	walk = func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			child := &funcNode{
				key:     litKey(n.pass.Fset, x),
				display: "func literal (" + shortPos(n.pass.Fset, x.Pos()) + ")",
				pass:    n.pass,
				body:    x.Body,
				root:    rootLit[x],
			}
			p.add(child)
			p.scan(child)
			if !noEdge[x] && child.root == "" {
				n.edges = append(n.edges, child.key)
			}
			return false
		case *ast.SendStmt:
			if !skipComm[ast.Node(x)] {
				addFact(x.Arrow, "channel send")
			}
			return !skipComm[ast.Node(x)]
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				addFact(x.OpPos, "channel receive")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					addFact(x.For, "range over a channel")
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range x.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				addFact(x.Select, "select without a default case")
			}
			// Comm statements are part of the select (already accounted
			// for); walk only the clause bodies.
			for _, cl := range x.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						ast.Inspect(s, walk)
					}
				}
			}
			return false
		case ast.Stmt:
			if skipComm[x] {
				return false
			}
		case *ast.CallExpr:
			p.scanCall(n, info, x)
		}
		return true
	}
	ast.Inspect(n.body, walk)
}

// spawnArg matches (*fabric.World).Spawn(rank, fn) and
// (*fabric.sched).spawn(rank, fn), returning the fiber function arg.
func (p *program) spawnArg(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	callee := analysis.Callee(info, call)
	if len(call.Args) != 2 {
		return "", nil
	}
	if analysis.IsMethod(callee, "internal/fabric", "World", "Spawn") {
		return "Spawn", call.Args[1]
	}
	if analysis.IsMethod(callee, "internal/fabric", "sched", "spawn") {
		return "spawn", call.Args[1]
	}
	return "", nil
}

// funcValue resolves a function-valued expression (method value or
// function identifier) passed as an argument.
func funcValue(info *types.Info, e ast.Expr) *types.Func {
	switch e := analysis.Unparen(e).(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

func (p *program) scanCall(n *funcNode, info *types.Info, call *ast.CallExpr) {
	callee := analysis.Callee(info, call)
	if callee == nil {
		return
	}
	switch {
	case analysis.IsPkgFunc(callee, "time", "Sleep"):
		n.addFact(call.Pos(), "time.Sleep")
		return
	case analysis.IsMethod(callee, "sync", "Cond", "Wait"):
		n.addFact(call.Pos(), "sync.Cond.Wait")
		return
	case analysis.IsMethod(callee, "sync", "WaitGroup", "Wait"):
		n.addFact(call.Pos(), "sync.WaitGroup.Wait")
		return
	case analysis.IsMethod(callee, "internal/fabric", "sched", "park"):
		n.parkCalls = append(n.parkCalls, call.Pos())
		return
	}
	if n.goCalls[call] {
		return // `go f()`: f runs off-fiber
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, iface := sig.Recv().Type().Underlying().(*types.Interface); iface {
			// Interface dispatch: fan out to same-shaped module methods.
			n.edges = append(n.edges, p.methods[methodKey(callee.Name(), sig.Params().Len())]...)
			return
		}
	}
	n.edges = append(n.edges, analysis.FuncKey(callee))
}

func litKey(fset *token.FileSet, lit *ast.FuncLit) string {
	pos := fset.Position(lit.Pos())
	return fmt.Sprintf("lit|%s:%d:%d", pos.Filename, pos.Line, pos.Column)
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", path.Base(p.Filename), p.Line)
}

// fixMayPark computes the may-park closure: a function may park if it
// parks or blocks directly, or calls something that may.
func (p *program) fixMayPark() {
	for _, n := range p.nodes {
		n.mayPark = len(n.parkCalls) > 0 || len(n.facts) > 0
	}
	for changed := true; changed; {
		changed = false
		for _, n := range p.nodes {
			if n.mayPark {
				continue
			}
			for _, e := range n.edges {
				if t := p.nodes[e]; t != nil && t.mayPark {
					n.mayPark = true
					changed = true
					break
				}
			}
		}
	}
}

// report walks fiber reachability from the Spawn roots and emits both
// finding kinds for every reachable function.
func (p *program) report() {
	parent := map[string]string{}
	var queue []string
	for _, key := range p.order {
		if p.nodes[key].root != "" {
			parent[key] = ""
			queue = append(queue, key)
		}
	}
	var reach []string
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		reach = append(reach, key)
		for _, e := range p.nodes[key].edges {
			t := p.nodes[e]
			if t == nil {
				continue // no body loaded (stdlib etc.)
			}
			if _, seen := parent[e]; seen {
				continue
			}
			parent[e] = key
			queue = append(queue, e)
		}
	}
	for _, key := range reach {
		n := p.nodes[key]
		via := p.path(parent, key)
		for _, f := range n.facts {
			n.pass.Reportf(f.pos, "%s blocks a fiber (%s): event-mode fibers share one scheduler token and must park via the scheduler, not the Go runtime", f.what, via)
		}
		p.checkLocks(n)
	}
}

func (p *program) path(parent map[string]string, key string) string {
	var segs []string
	for key != "" {
		n := p.nodes[key]
		segs = append(segs, n.display)
		if parent[key] == "" {
			segs = append(segs, "fiber root "+n.root)
			break
		}
		key = parent[key]
	}
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return strings.Join(segs, " -> ")
}

// ---- mutex-held-across-park ----

// lockFlow tracks, branch-isolated, which mutexes are locked, and
// reports any site that may park while one is held. sync.Cond.Wait is
// exempt: its contract requires the lock (it releases internally), and
// the blocking itself is already reported above.
type lockFlow struct {
	p        *program
	n        *funcNode
	locked   map[string]string // mutex expr key -> display
	reported map[token.Pos]bool
}

func (p *program) checkLocks(n *funcNode) {
	f := &lockFlow{p: p, n: n, locked: map[string]string{}, reported: map[token.Pos]bool{}}
	analysis.WalkFlow(n.body.List, f)
}

func (f *lockFlow) Clone() analysis.Flow {
	l := make(map[string]string, len(f.locked))
	for k, v := range f.locked {
		l[k] = v
	}
	return &lockFlow{p: f.p, n: f.n, locked: l, reported: f.reported}
}

func (f *lockFlow) Merge(branches []analysis.Flow, terminated []bool) {
	var live []*lockFlow
	for i, b := range branches {
		if !terminated[i] {
			live = append(live, b.(*lockFlow))
		}
	}
	if len(live) == 0 {
		return
	}
	for k := range f.locked {
		for _, b := range live {
			if _, held := b.locked[k]; !held {
				delete(f.locked, k)
				break
			}
		}
	}
}

func (f *lockFlow) Cond(e ast.Expr) { f.scan(e) }

func (f *lockFlow) Leaf(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := analysis.Unparen(s.X).(*ast.CallExpr); ok {
			if f.lockOp(call) {
				return
			}
		}
		f.scan(s.X)
	case *ast.DeferStmt:
		// A deferred Unlock releases at return; it does not release for
		// the statements that follow, so tracking ignores it. A deferred
		// anything-else cannot park mid-body either.
	case *ast.SendStmt:
		f.parkish(s.Arrow, "channel send")
		f.scan(s.Chan)
		f.scan(s.Value)
	default:
		if s != nil {
			f.scan(s)
		}
	}
}

// lockOp applies m.Lock()/m.Unlock() statements to the lock set.
func (f *lockFlow) lockOp(call *ast.CallExpr) bool {
	callee := analysis.Callee(f.n.pass.TypesInfo, call)
	name, recv := mutexOp(callee)
	if name == "" {
		return false
	}
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	key := analysis.ExprKey(f.n.pass.TypesInfo, sel.X)
	if key == "" {
		key = "<mutex>@" + recv
	}
	switch name {
	case "Lock", "RLock":
		f.locked[key] = analysis.ExprString(sel.X)
	case "Unlock", "RUnlock":
		delete(f.locked, key)
	}
	return true
}

// mutexOp matches sync.Mutex/sync.RWMutex lock methods.
func mutexOp(callee *types.Func) (op, recv string) {
	for _, r := range []string{"Mutex", "RWMutex"} {
		for _, m := range []string{"Lock", "Unlock", "RLock", "RUnlock"} {
			if analysis.IsMethod(callee, "sync", r, m) {
				return m, r
			}
		}
	}
	return "", ""
}

// scan inspects a statement or expression for sites that may park.
func (f *lockFlow) scan(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				f.parkish(x.OpPos, "channel receive")
			}
		case *ast.CallExpr:
			if f.n.goCalls[x] {
				return true // args still scanned; target runs off-fiber
			}
			info := f.n.pass.TypesInfo
			callee := analysis.Callee(info, x)
			if callee == nil {
				return true
			}
			switch {
			case analysis.IsMethod(callee, "sync", "Cond", "Wait"):
				return true // exempt: Wait's contract is lock-held
			case analysis.IsMethod(callee, "internal/fabric", "sched", "park"):
				f.parkish(x.Pos(), "sched.park")
			case analysis.IsPkgFunc(callee, "time", "Sleep"):
				f.parkish(x.Pos(), "time.Sleep")
			case analysis.IsMethod(callee, "sync", "WaitGroup", "Wait"):
				f.parkish(x.Pos(), "sync.WaitGroup.Wait")
			default:
				if op, _ := mutexOp(callee); op != "" {
					return true
				}
				if t := f.p.nodes[analysis.FuncKey(callee)]; t != nil && t.mayPark {
					f.parkish(x.Pos(), t.display+" (which may park)")
				}
			}
		}
		return true
	})
}

func (f *lockFlow) parkish(pos token.Pos, what string) {
	if len(f.locked) == 0 || f.reported[pos] {
		return
	}
	var held string
	for _, d := range f.locked {
		if held == "" || d < held {
			held = d
		}
	}
	f.reported[pos] = true
	f.n.pass.Reportf(pos, "%s while %s is held: a parked fiber keeps the lock and the next fiber needing it deadlocks the world; unlock before parking (unlock -> park -> relock)", what, held)
}
