package analysis

import "go/ast"

// Flow is the per-analyzer half of a branch-isolated sequential walk
// over a function body. WalkFlow owns the control-flow skeleton —
// statement ordering, branch cloning, merging — and hands every
// non-control statement and every control-flow condition to the
// analyzer's state.
//
// The model is deliberately simple: state changes inside a branch are
// visible to later statements of that branch; after the branch, Merge
// decides what survives (typically: keep what all non-terminating
// branches agree on). Loops run their body once over a clone. This
// catches straight-line and single-branch ordering bugs — which is what
// the ownership and park contracts are — without a CFG, and its
// conservatism is one-sided: disagreement stops tracking rather than
// reporting.
type Flow interface {
	// Clone returns an independent copy for a branch walk.
	Clone() Flow
	// Merge reconciles branch outcomes into the receiver. terminated[i]
	// marks branches whose statement list certainly leaves the scope
	// (return/branch/panic); their state should not vote.
	Merge(branches []Flow, terminated []bool)
	// Leaf handles one non-control statement (assign, expr, return,
	// defer, go, decl, send, inc/dec, empty).
	Leaf(s ast.Stmt)
	// Cond scans a control-flow operand (if/for condition, switch tag,
	// range operand) for uses.
	Cond(e ast.Expr)
}

// WalkFlow interprets the statement list sequentially against f.
func WalkFlow(stmts []ast.Stmt, f Flow) {
	for _, s := range stmts {
		walkFlowStmt(s, f)
	}
}

func walkFlowStmt(s ast.Stmt, f Flow) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		WalkFlow(s.List, f)
	case *ast.LabeledStmt:
		walkFlowStmt(s.Stmt, f)
	case *ast.IfStmt:
		if s.Init != nil {
			walkFlowStmt(s.Init, f)
		}
		f.Cond(s.Cond)
		then := f.Clone()
		WalkFlow(s.Body.List, then)
		branches := []Flow{then}
		terms := []bool{FlowTerminates(s.Body.List)}
		if s.Else != nil {
			els := f.Clone()
			walkFlowStmt(s.Else, els)
			branches = append(branches, els)
			if eb, ok := s.Else.(*ast.BlockStmt); ok {
				terms = append(terms, FlowTerminates(eb.List))
			} else {
				terms = append(terms, false) // else-if: approximate
			}
		} else {
			branches = append(branches, f.Clone())
			terms = append(terms, false)
		}
		f.Merge(branches, terms)
	case *ast.ForStmt:
		if s.Init != nil {
			walkFlowStmt(s.Init, f)
		}
		if s.Cond != nil {
			f.Cond(s.Cond)
		}
		body := f.Clone()
		WalkFlow(s.Body.List, body)
		if s.Post != nil {
			walkFlowStmt(s.Post, body)
		}
		f.Merge([]Flow{body}, []bool{FlowTerminates(s.Body.List)})
	case *ast.RangeStmt:
		f.Cond(s.X)
		body := f.Clone()
		// Key/Value rebinding is the analyzer's business; hand the whole
		// range header to Leaf via a synthetic assign when present.
		if s.Key != nil || s.Value != nil {
			body.Leaf(&ast.AssignStmt{Lhs: rangeVars(s), Tok: s.Tok, Rhs: nil})
		}
		WalkFlow(s.Body.List, body)
		f.Merge([]Flow{body}, []bool{FlowTerminates(s.Body.List)})
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkFlowStmt(s.Init, f)
		}
		if s.Tag != nil {
			f.Cond(s.Tag)
		}
		walkFlowClauses(s.Body, f)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			walkFlowStmt(s.Init, f)
		}
		if as, ok := s.Assign.(*ast.AssignStmt); ok {
			for _, r := range as.Rhs {
				f.Cond(r)
			}
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			f.Cond(es.X)
		}
		walkFlowClauses(s.Body, f)
	case *ast.SelectStmt:
		walkFlowClauses(s.Body, f)
	default:
		f.Leaf(s)
	}
}

func rangeVars(s *ast.RangeStmt) []ast.Expr {
	var out []ast.Expr
	if s.Key != nil {
		out = append(out, s.Key)
	}
	if s.Value != nil {
		out = append(out, s.Value)
	}
	return out
}

func walkFlowClauses(body *ast.BlockStmt, f Flow) {
	var branches []Flow
	var terms []bool
	hasDefault := false
	for _, cl := range body.List {
		b := f.Clone()
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				f.Cond(e)
			}
			WalkFlow(cl.Body, b)
			branches = append(branches, b)
			terms = append(terms, FlowTerminates(cl.Body))
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				walkFlowStmt(cl.Comm, b)
			}
			WalkFlow(cl.Body, b)
			branches = append(branches, b)
			terms = append(terms, FlowTerminates(cl.Body))
		}
	}
	if !hasDefault {
		branches = append(branches, f.Clone())
		terms = append(terms, false)
	}
	f.Merge(branches, terms)
}

// FlowTerminates reports whether the statement list certainly leaves
// the enclosing scope, so a branch's state cannot flow past its merge.
func FlowTerminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return FlowTerminates(last.List)
	case *ast.LabeledStmt:
		return FlowTerminates([]ast.Stmt{last.Stmt})
	}
	return false
}
