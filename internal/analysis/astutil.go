package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Unparen strips any enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Callee resolves the static callee of a call: a package function, a
// concrete method, or an interface method. Calls through function
// values return nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call: fabric.GetEnvelope().
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// PkgPathIs reports whether the object's package import path ends in
// suffix (matched on path-segment boundaries). Matching by suffix keeps
// the analyzers independent of the module name, so the same rules hold
// for the repo and for testdata importing it.
func PkgPathIs(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// IsPkgFunc reports whether f is the package-level function
// pkgSuffix.name.
func IsPkgFunc(f *types.Func, pkgSuffix, name string) bool {
	if f == nil || f.Name() != name || !PkgPathIs(f.Pkg(), pkgSuffix) {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsMethod reports whether f is method recvName.name (pointer or value
// receiver) declared in the package with the given path suffix.
func IsMethod(f *types.Func, pkgSuffix, recvName, name string) bool {
	if f == nil || f.Name() != name || !PkgPathIs(f.Pkg(), pkgSuffix) {
		return false
	}
	return RecvTypeName(f) == recvName
}

// RecvTypeName returns the name of f's receiver's named type, with any
// pointer stripped, or "" for package-level functions.
func RecvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// NamedTypeIs reports whether t (through pointers) is the named type
// pkgSuffix.name.
func NamedTypeIs(t types.Type, pkgSuffix, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == name && PkgPathIs(n.Obj().Pkg(), pkgSuffix)
}

// ExprKey canonicalizes an ident or selector chain of idents to a
// stable string ("e", "s.payload", "p.ep"); other expressions yield "".
// The key is scoped by the root identifier's object, so shadowed names
// in nested scopes do not collide.
func ExprKey(info *types.Info, e ast.Expr) string {
	switch e := Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			return objKey(obj)
		}
	case *ast.SelectorExpr:
		base := ExprKey(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

func objKey(obj types.Object) string {
	if obj == nil {
		return ""
	}
	return obj.Name() + "@" + obj.Id() + posKey(obj)
}

func posKey(obj types.Object) string {
	if !obj.Pos().IsValid() {
		return ""
	}
	return "#" + itoa(int(obj.Pos()))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// ExprString renders an ident/selector chain as source-ish text for
// diagnostics ("m.mu", "p.ep"); other expressions render as "<expr>".
func ExprString(e ast.Expr) string {
	switch e := Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	}
	return "<expr>"
}

// FuncKey names a function object package-globally:
// "path|RecvName|Name" (RecvName empty for package functions). Keys are
// what the program-level analyzers use to stitch call graphs across
// per-package type-checker instances.
func FuncKey(f *types.Func) string {
	if f == nil {
		return ""
	}
	path := ""
	if f.Pkg() != nil {
		path = f.Pkg().Path()
	}
	return path + "|" + RecvTypeName(f) + "|" + f.Name()
}
