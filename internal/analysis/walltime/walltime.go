// Package walltime is the determinism lint. The runtime's equivalence
// results rest on bit-identical replay: the same seed and scenario must
// produce the same event order, the same recovery decisions, and the
// same scenario hash on every run. Three things silently break that —
// wall-clock reads, the process-global math/rand source, and Go's
// randomized map iteration order feeding anything serialized. The
// checker forbids all three in the deterministic core (mpicore, fabric,
// ulfm, simnet, scenario, trace — traces are byte-deterministic under
// the event engine, so the trace writer is held to the same bar).
//
// Map iteration is only flagged when the loop body is order-sensitive:
// appending to a slice that is not sorted afterwards in the same
// function, writing to an output stream, or concatenating strings.
// Commutative folds (map/index writes, numeric accumulation, deletes)
// iterate in any order to the same result and pass silently.
//
// Test files are exempt (tests may time themselves), and legitimately
// wall-clock sites — the scenario engine's wall_ms reporting field —
// carry //mpivet:allow directives with their justification.
package walltime

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the walltime checker.
var Analyzer = &analysis.Analyzer{
	Name:            "walltime",
	Doc:             "check the deterministic core for wall-clock reads, global math/rand, and order-sensitive map iteration",
	Run:             run,
	IgnoreTestFiles: true,
}

// deterministicPkgs are the package suffixes whose behavior must replay
// bit-identically from a seed.
var deterministicPkgs = []string{
	"internal/mpicore",
	"internal/fabric",
	"internal/ulfm",
	"internal/simnet",
	"internal/scenario",
	"internal/trace",
}

// wallFuncs are the time package functions that read or depend on the
// wall clock / monotonic clock.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// seededCtors are the math/rand package functions that are fine: they
// construct or parameterize an explicit source instead of drawing from
// the process-global one.
var seededCtors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func run(pass *analysis.Pass) error {
	deterministic := false
	for _, s := range deterministicPkgs {
		if analysis.PkgPathIs(pass.Pkg, s) {
			deterministic = true
			break
		}
	}
	if !deterministic {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := analysis.Callee(info, n)
			if callee == nil {
				return true
			}
			if callee.Pkg() != nil && callee.Pkg().Path() == "time" && wallFuncs[callee.Name()] {
				pass.Reportf(n.Pos(), "wall-clock time.%s in the deterministic core: replay and scenario hashes must depend only on the seed, never on wall time", callee.Name())
			}
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() == nil &&
				callee.Pkg() != nil && callee.Pkg().Path() == "math/rand" && !seededCtors[callee.Name()] {
				pass.Reportf(n.Pos(), "global math/rand.%s draws from the process-wide source: use the world's seeded *rand.Rand so runs replay from the seed", callee.Name())
			}
		case *ast.RangeStmt:
			checkMapRange(pass, fn, n)
		}
		return true
	})
}

// checkMapRange flags order-sensitive iteration over a map.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	t := info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var appended []string // keys of slices appended to in the loop
	sensitive := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := analysis.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				fnID, ok := call.Fun.(*ast.Ident)
				if !ok {
					continue
				}
				_, builtin := info.Uses[fnID].(*types.Builtin)
				if fnID.Name == "append" && builtin && i < len(n.Lhs) {
					if key := analysis.ExprKey(info, n.Lhs[i]); key != "" {
						appended = append(appended, key)
					} else if sensitive == "" {
						sensitive = "appends in map order"
					}
				}
			}
			// String concatenation accumulates order-sensitively.
			if n.Tok == token.ADD_ASSIGN {
				for _, lhs := range n.Lhs {
					t := info.TypeOf(lhs)
					if t == nil {
						continue
					}
					if bt, ok := t.Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 && sensitive == "" {
						sensitive = "concatenates strings in map order"
					}
				}
			}
		case *ast.CallExpr:
			if writesOutput(info, n) && sensitive == "" {
				sensitive = "writes output in map order"
			}
		}
		return true
	})
	if sensitive == "" && len(appended) > 0 {
		for _, key := range appended {
			if !sortedAfter(info, fn, rng, key) {
				sensitive = "appends to a slice that is never sorted"
				break
			}
		}
	}
	if sensitive != "" {
		pass.Reportf(rng.For, "map iteration %s: Go randomizes map order, so serialized output and hashes diverge between runs; sort the keys first", sensitive)
	}
}

// writesOutput matches print/write-style calls whose output would
// expose iteration order.
func writesOutput(info *types.Info, call *ast.CallExpr) bool {
	callee := analysis.Callee(info, call)
	if callee == nil {
		return false
	}
	if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		switch callee.Name() {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf", "Sprint", "Sprintln", "Sprintf", "Appendf":
			return true
		}
	}
	switch callee.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		return callee.Type().(*types.Signature).Recv() != nil
	}
	return false
}

// sortedAfter reports whether the slice named by key is sorted in fn
// after the range loop ends.
func sortedAfter(info *types.Info, fn *ast.FuncDecl, rng *ast.RangeStmt, key string) bool {
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		callee := analysis.Callee(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		pkg := callee.Pkg().Path()
		isSort := (pkg == "sort" || pkg == "slices") &&
			(callee.Name() == "Slice" || callee.Name() == "SliceStable" ||
				callee.Name() == "Sort" || callee.Name() == "SortFunc" ||
				callee.Name() == "SortStableFunc" || callee.Name() == "Strings" ||
				callee.Name() == "Ints")
		if isSort && analysis.ExprKey(info, call.Args[0]) == key {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}
