// Seeded determinism violations. The directory name makes this
// package's import path end in internal/mpicore, putting it in the
// deterministic core exactly like the real runtime package.
package mpicore

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallRead() int64 {
	return time.Now().UnixNano() // want `wall-clock time\.Now in the deterministic core`
}

func wallElapsed(since time.Time) time.Duration {
	return time.Since(since) // want `wall-clock time\.Since in the deterministic core`
}

func wallTimer(d time.Duration) <-chan time.Time {
	return time.After(d) // want `wall-clock time\.After in the deterministic core`
}

func globalRand() int {
	return rand.Intn(8) // want `global math/rand\.Intn draws from the process-wide source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle draws from the process-wide source`
}

// seededRand draws from an explicit source: replayable, fine.
func seededRand(r *rand.Rand) int {
	return r.Intn(8)
}

// newSeeded constructs a source — the sanctioned way.
func newSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func unsortedDump(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `map iteration appends to a slice that is never sorted`
		out = append(out, v)
	}
	return out
}

func printedDump(m map[int]int) {
	for k, v := range m { // want `map iteration writes output in map order`
		fmt.Printf("%d=%d\n", k, v)
	}
}

func concatDump(m map[int]string) string {
	s := ""
	for _, v := range m { // want `map iteration concatenates strings in map order`
		s += v
	}
	return s
}

// sortedDump collects then sorts: order-insensitive, fine.
func sortedDump(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// commutativeFold and mapWrite iterate in any order to the same result.
func commutativeFold(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func mapWrite(src map[int]int, dst map[int]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func suppressed() int64 {
	return time.Now().UnixNano() //mpivet:allow walltime -- seeded: proves a justified directive suppresses this line
}
