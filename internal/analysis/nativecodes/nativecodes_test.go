package nativecodes_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nativecodes"
)

func TestNativeCodes(t *testing.T) {
	analysistest.Run(t, nativecodes.Analyzer, "internal/mpich")
}

// TestOffSurface pins the scope: packages outside the ABI surfaces are
// never flagged, whatever they return.
func TestOffSurface(t *testing.T) {
	analysistest.Run(t, nativecodes.Analyzer, "offsurface")
}
