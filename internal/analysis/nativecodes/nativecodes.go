// Package nativecodes checks error-code sourcing across the ABI
// surfaces. The whole point of the repo's cross-ABI recovery story is
// that MPICH, Open MPI, and the standard ABI disagree about the
// integer values of MPI_ERR_PROC_FAILED and MPI_ERR_REVOKED (71/72 vs
// 54/56 vs the standard's fixed classes), and that the translation
// happens in exactly one place — each implementation's Codes table and
// the abi.ErrClass constants. A function on an ABI surface that
// returns a bare integer literal as an error code re-encodes that
// knowledge in a second place, silently wrong for every other ABI.
//
// The checker works per function: a result slot is an error-code slot
// if its type is abi.ErrClass, or if some return statement fills it
// from an error-shaped expression (an identifier or selector named
// Err* or Success, or any expression already typed abi.ErrClass). Once
// a slot is known to carry codes, every return filling it with an
// integer literal is reported. Test files are exempt: tests pin native
// values on purpose.
package nativecodes

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the nativecodes checker.
var Analyzer = &analysis.Analyzer{
	Name:            "nativecodes",
	Doc:             "check that ABI-surface error codes come from Codes tables or abi.ErrClass, never integer literals",
	Run:             run,
	IgnoreTestFiles: true,
}

// abiPkgs are the package suffixes forming the ABI surfaces.
var abiPkgs = []string{
	"internal/abi",
	"internal/mpich",
	"internal/openmpi",
	"internal/stdabi",
	"internal/mpicore",
	"internal/mukautuva",
	"internal/wi4mpi",
	"internal/mana",
}

func run(pass *analysis.Pass) error {
	if !onSurface(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fn.Body != nil && fn.Type.Results != nil {
				checkFunc(pass, fn)
			}
			return false
		})
	}
	return nil
}

func onSurface(pkg *types.Package) bool {
	for _, s := range abiPkgs {
		if analysis.PkgPathIs(pkg, s) {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	nres := 0
	for _, fld := range fn.Type.Results.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		nres += n
	}

	// Collect the full returns; bare `return` with named results carries
	// no expressions to judge.
	var returns []*ast.ReturnStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // different signature, different slots
		case *ast.ReturnStmt:
			if len(n.Results) == nres {
				returns = append(returns, n)
			}
		}
		return true
	})

	// Decide which slots carry error codes.
	codeSlot := make([]bool, nres)
	i := 0
	for _, fld := range fn.Type.Results.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		isClass := false
		if t := info.TypeOf(fld.Type); t != nil {
			isClass = analysis.NamedTypeIs(t, "internal/abi", "ErrClass")
		}
		for k := 0; k < n; k++ {
			codeSlot[i+k] = isClass
		}
		i += n
	}
	for _, ret := range returns {
		for i, r := range ret.Results {
			if errorShaped(info, r) {
				codeSlot[i] = true
			}
		}
	}

	for _, ret := range returns {
		for i, r := range ret.Results {
			if codeSlot[i] && isIntLiteral(info, r) {
				pass.Reportf(r.Pos(), "error code returned as integer literal: native values differ per ABI (MPICH 71/72, Open MPI 54/56); source it from the implementation's Codes table or an abi.ErrClass constant")
			}
		}
	}
}

// errorShaped reports whether e visibly carries an error code: a name
// like ErrComm or Success, a Codes-table field, or anything typed
// abi.ErrClass.
func errorShaped(info *types.Info, e ast.Expr) bool {
	e = analysis.Unparen(e)
	if t := info.TypeOf(e); t != nil && analysis.NamedTypeIs(t, "internal/abi", "ErrClass") {
		return true
	}
	name := ""
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.CallExpr:
		// A conversion or translator call whose operand is error-shaped
		// (int32(p.E.ErrComm), CodeOf(abi.ErrRevoked)).
		for _, a := range e.Args {
			if errorShaped(info, a) {
				return true
			}
		}
		return false
	}
	return strings.HasPrefix(name, "Err") || name == "Success"
}

// isIntLiteral matches an integer literal through parens, unary +/-,
// and type conversions: 71, -(2), int32(54), ErrClass(17). Ordinary
// calls taking a literal are not matched — only conversions.
func isIntLiteral(info *types.Info, e ast.Expr) bool {
	switch e := analysis.Unparen(e).(type) {
	case *ast.BasicLit:
		return e.Kind == token.INT
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return isIntLiteral(info, e.X)
		}
	case *ast.CallExpr:
		if len(e.Args) == 1 {
			if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
				return isIntLiteral(info, e.Args[0])
			}
		}
	}
	return false
}
