// offsurface is not an ABI package: even literal returns beside
// error-shaped ones are out of the analyzer's scope here.
package offsurface

const ErrSomething = 7

func untouched(ok bool) int {
	if ok {
		return ErrSomething
	}
	return 71
}
