// Seeded violations of error-code sourcing. The directory name makes
// this package's import path end in internal/mpich, putting it on the
// analyzer's ABI surface exactly like the real implementation package.
package mpich

import "repro/internal/abi"

const (
	Success = 0
	ErrComm = 5
)

func constsOK(ok bool) int {
	if ok {
		return Success
	}
	return ErrComm
}

func literalCode(ok bool) int {
	if ok {
		return Success
	}
	return 71 // want `error code returned as integer literal`
}

func negativeLiteral(ok bool) int {
	if ok {
		return ErrComm
	}
	return -(2) // want `error code returned as integer literal`
}

func convertedLiteral(ok bool) int32 {
	if ok {
		return int32(Success)
	}
	return int32(54) // want `error code returned as integer literal`
}

func classLiteral() abi.ErrClass {
	return abi.ErrClass(3) // want `error code returned as integer literal`
}

func classOK() abi.ErrClass {
	return abi.ErrRevoked
}

func codeInPair(ok bool) ([]byte, int) {
	if ok {
		return nil, Success
	}
	return nil, 54 // want `error code returned as integer literal`
}

// notACode: int results that never carry error-shaped values are not
// error slots; lengths and counts stay unflagged.
func notACode(n int) int {
	if n > 4 {
		return 4
	}
	return n + 1
}

func suppressed(ok bool) int {
	if ok {
		return Success
	}
	return 71 //mpivet:allow nativecodes -- seeded: proves a justified directive suppresses this line
}
