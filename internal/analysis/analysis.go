// Package analysis is the runtime's static-analysis framework: a small,
// dependency-free re-statement of the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, Diagnostic) plus the //mpivet:allow suppression
// directive shared by every checker and the cmd/mpivet driver.
//
// The checkers built on it (envlifetime, sendowned, parksafe,
// nativecodes, walltime) machine-enforce contracts the compiler cannot
// see and the paper's results depend on: pooled-envelope ownership,
// SendOwned transfer semantics, fiber park safety in event mode,
// native-error-code sourcing across ABI surfaces, and determinism of
// everything that feeds serialized reports. Each invariant is today
// documented in comments and enforced by differential tests; mpivet
// makes violating one a vet-time failure instead of a 4096-rank debug
// session.
//
// The analyzers sit beside the README's layer diagram rather than in
// it: they audit the fabric, mpicore and scenario rows from outside,
// guarding the determinism and overhead-attribution claims of Section 5.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. Exactly one of Run and
// RunProgram is set: Run checks a single package at a time, RunProgram
// sees every loaded package at once (needed for cross-package
// reachability, e.g. parksafe's fiber call graph).
type Analyzer struct {
	Name string
	Doc  string

	// Run checks one package.
	Run func(*Pass) error
	// RunProgram checks the whole program (all loaded packages).
	RunProgram func([]*Pass) error

	// IgnoreTestFiles excludes _test.go files from this analyzer's
	// scope. Used by checkers whose rule is deliberately violated by
	// tests (nativecodes: tests pin literal native values; walltime:
	// tests measure wall time legitimately).
	IgnoreTestFiles bool
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Allows holds the package's parsed mpivet:allow directives. Most
	// analyzers never look: the driver filters reports afterwards. The
	// transitive ones (parksafe) consult Allowed while gathering facts,
	// so that suppressing a provably-safe blocking site also clears the
	// may-park closure built on top of it — otherwise one directive
	// would demand echo directives up every caller chain.
	Allows []*Allow

	diagnostics []Diagnostic
}

// Allowed reports whether a directive for this pass's analyzer covers
// pos.
func (p *Pass) Allowed(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	for _, a := range p.Allows {
		if a.Covers(p.Analyzer.Name, position.Filename, position.Line) {
			return true
		}
	}
	return false
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Diagnostics returns the findings recorded so far, with findings in
// files the analyzer excludes (IgnoreTestFiles) dropped.
func (p *Pass) Diagnostics() []Diagnostic {
	var out []Diagnostic
	for _, d := range p.diagnostics {
		file := p.Fset.Position(d.Pos).Filename
		if p.Analyzer.IgnoreTestFiles && strings.HasSuffix(file, "_test.go") {
			continue
		}
		out = append(out, d)
	}
	return out
}

// IsTestFile reports whether pos lands in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ---- //mpivet:allow directives ----

// DirectivePrefix introduces a suppression comment:
//
//	//mpivet:allow <analyzer>[,<analyzer>...] -- <justification>
//
// A trailing directive suppresses findings on its own line; a directive
// alone on a line suppresses the next line; a directive in a function's
// doc comment suppresses the named analyzers for the whole function
// body. The justification is mandatory: a directive without one is
// itself reported, so every suppression in the tree carries a written
// reason.
const DirectivePrefix = "//mpivet:allow"

// An Allow is one parsed directive.
type Allow struct {
	Analyzers []string
	Reason    string
	Pos       token.Pos
	// FromLine..ToLine is the suppressed line range, inclusive.
	FromLine, ToLine int
	File             string
}

// Covers reports whether the directive suppresses analyzer findings at
// the given file line.
func (a *Allow) Covers(analyzer, file string, line int) bool {
	if a.File != file || line < a.FromLine || line > a.ToLine {
		return false
	}
	for _, n := range a.Analyzers {
		if n == analyzer {
			return true
		}
	}
	return false
}

// ParseAllows extracts every mpivet:allow directive from the files and
// validates it: a missing justification or a name not in known (so a
// typo cannot silently suppress nothing) is returned as a problem
// diagnostic in its own right.
func ParseAllows(fset *token.FileSet, files []*ast.File, src map[string][]byte, known map[string]bool) (allows []*Allow, problems []Diagnostic) {
	for _, f := range files {
		fileName := fset.Position(f.Pos()).Filename
		lines := strings.Split(string(src[fileName]), "\n")
		// Map func bodies for doc-comment scoping.
		type span struct{ from, to int }
		var funcSpans []struct {
			doc  *ast.CommentGroup
			span span
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			funcSpans = append(funcSpans, struct {
				doc  *ast.CommentGroup
				span span
			}{fd.Doc, span{fset.Position(fd.Pos()).Line, fset.Position(fd.End()).Line}})
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //mpivet:allowed — not ours
				}
				names, reason, ok := splitDirective(rest)
				if !ok || len(names) == 0 {
					problems = append(problems, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "mpivet",
						Message:  "malformed mpivet:allow directive: want //mpivet:allow <analyzer>[,<analyzer>] -- <justification>",
					})
					continue
				}
				if reason == "" {
					problems = append(problems, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "mpivet",
						Message:  "mpivet:allow directive is missing its justification (append: -- <reason>)",
					})
					continue
				}
				bad := false
				for _, n := range names {
					if known != nil && !known[n] {
						problems = append(problems, Diagnostic{
							Pos:      c.Pos(),
							Analyzer: "mpivet",
							Message:  fmt.Sprintf("mpivet:allow names unknown analyzer %q", n),
						})
						bad = true
					}
				}
				if bad {
					continue
				}
				pos := fset.Position(c.Pos())
				a := &Allow{Analyzers: names, Reason: reason, Pos: c.Pos(), File: fileName}
				// Doc-comment directive: scope to the whole function.
				scoped := false
				for _, fs := range funcSpans {
					if within(c.Pos(), fs.doc) {
						a.FromLine, a.ToLine = fs.span.from, fs.span.to
						scoped = true
						break
					}
				}
				if !scoped {
					if onlyCommentOnLine(lines, pos.Line, pos.Column) {
						a.FromLine, a.ToLine = pos.Line+1, pos.Line+1
					} else {
						a.FromLine, a.ToLine = pos.Line, pos.Line
					}
				}
				allows = append(allows, a)
			}
		}
	}
	return allows, problems
}

func within(pos token.Pos, cg *ast.CommentGroup) bool {
	return pos >= cg.Pos() && pos <= cg.End()
}

// onlyCommentOnLine reports whether the comment starting at col on the
// 1-based line has nothing but whitespace before it — i.e. it is a
// standalone directive that applies to the following line rather than a
// trailing one applying to its own.
func onlyCommentOnLine(lines []string, line, col int) bool {
	if line-1 < 0 || line-1 >= len(lines) {
		return false
	}
	prefix := lines[line-1]
	if col-1 < len(prefix) {
		prefix = prefix[:col-1]
	}
	return strings.TrimSpace(prefix) == ""
}

func splitDirective(rest string) (names []string, reason string, ok bool) {
	rest = strings.TrimSpace(rest)
	namePart := rest
	if i := strings.Index(rest, "--"); i >= 0 {
		namePart = strings.TrimSpace(rest[:i])
		reason = strings.TrimSpace(rest[i+2:])
	}
	if namePart == "" {
		return nil, reason, false
	}
	for _, n := range strings.Split(namePart, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, reason, false
		}
		names = append(names, n)
	}
	return names, reason, true
}

// Filter drops diagnostics covered by an allow directive and returns the
// survivors sorted by position. Directive problems (missing reason,
// unknown analyzer) are appended as findings in their own right.
func Filter(fset *token.FileSet, diags []Diagnostic, allows []*Allow, problems []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, a := range allows {
			if a.Covers(d.Analyzer, pos.Filename, pos.Line) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	out = append(out, problems...)
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Message < out[j].Message
	})
	return out
}
