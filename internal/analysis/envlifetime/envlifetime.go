// Package envlifetime checks the pooled-Envelope lifecycle contract
// from internal/fabric: an envelope obtained from GetEnvelope is owned
// by exactly one party at a time. PutEnvelope returns it to the pool —
// after which no field may be referenced; Send/SendOwned transfer it to
// the fabric — after which the sender must not Put or reuse it; and an
// envelope a function takes from the pool must leave every return path
// recycled, transferred, or escaped into a longer-lived structure (the
// unexpected queue), never silently dropped.
//
// The checker is an intra-procedural, branch-isolated walk
// (analysis.WalkFlow): state changes inside a branch are visible to
// later statements of that branch, and propagate past it only when
// every surviving branch agrees. That trades missed interprocedural
// bugs for zero tolerance of false positives on the runtime's real
// hot-path idioms (dispatch's per-protocol switch, DecodeBatch's
// error-path unwind, sendInternal's eager/rendezvous split).
package envlifetime

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the envlifetime checker.
var Analyzer = &analysis.Analyzer{
	Name: "envlifetime",
	Doc:  "check pooled fabric.Envelope lifecycle: use-after-Put, double-Put, Put-after-send, leaks, retention by trace emission",
	Run:  run,
}

type ownState uint8

const (
	stLive ownState = iota // usable; fromPool says whether a leak matters
	stPut                  // returned to the pool
	stSent                 // transferred to the fabric
)

type envVar struct {
	name     string
	state    ownState
	fromPool bool   // obtained from GetEnvelope in this function
	how      string // "Send" or "SendOwned" when stSent
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok {
				if fn.Body != nil {
					checkFunc(pass, fn.Type, fn.Body)
				}
				return false // nested literals handled inside checkFunc
			}
			return true
		})
	}
	return nil
}

// checkFunc seeds tracking with *fabric.Envelope parameters (checked
// for reuse-after-release, but not leak-checked: the caller owns them)
// and walks the body.
func checkFunc(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	f := &envFlow{pass: pass, info: pass.TypesInfo, st: map[string]*envVar{}}
	if ft.Params != nil {
		for _, fld := range ft.Params.List {
			for _, name := range fld.Names {
				obj := f.info.Defs[name]
				if obj != nil && isEnvelopePtr(obj.Type()) {
					f.st[analysis.ExprKey(f.info, name)] = &envVar{name: name.Name}
				}
			}
		}
	}
	analysis.WalkFlow(body.List, f)
}

func isEnvelopePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return analysis.NamedTypeIs(p.Elem(), "internal/fabric", "Envelope")
}

// envFlow is the analyzer's branch-isolated state: tracked envelope
// variables by canonical key.
type envFlow struct {
	pass *analysis.Pass
	info *types.Info
	st   map[string]*envVar
}

func (f *envFlow) Clone() analysis.Flow {
	st := make(map[string]*envVar, len(f.st))
	for k, v := range f.st {
		cp := *v
		st[k] = &cp
	}
	return &envFlow{pass: f.pass, info: f.info, st: st}
}

// Merge keeps keys on which every surviving branch agrees; disagreement
// stops tracking (conservative: no reports past the merge).
func (f *envFlow) Merge(branches []analysis.Flow, terminated []bool) {
	var live []*envFlow
	for i, b := range branches {
		if !terminated[i] {
			live = append(live, b.(*envFlow))
		}
	}
	if len(live) == 0 {
		return // every branch leaves the scope; nothing flows past
	}
	for k := range f.st {
		first := live[0].st[k]
		agreed := first != nil
		for _, b := range live[1:] {
			v := b.st[k]
			if v == nil || first == nil || *v != *first {
				agreed = false
				break
			}
		}
		if agreed {
			*f.st[k] = *first
		} else {
			delete(f.st, k)
		}
	}
}

func (f *envFlow) Cond(e ast.Expr) { f.useCheck(e) }

func (f *envFlow) Leaf(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		f.leafAssign(s)
	case *ast.ExprStmt:
		f.leafExpr(s.X)
	case *ast.ReturnStmt:
		f.leafReturn(s)
	case *ast.DeferStmt:
		f.checkDeferredTrace(s.Call)
		// Defers run at an unknowable point in this model; anything a
		// deferred call references leaves leak tracking (a deferred
		// PutEnvelope counts as a release), and reuse state is frozen.
		f.escapeAll(s.Call)
	case *ast.GoStmt:
		f.escapeAll(s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					f.leafDecl(vs)
				}
			}
		}
	case *ast.SendStmt:
		f.useCheck(s.Chan)
		f.useCheck(s.Value)
		f.escapeAliases(s.Value)
	case *ast.IncDecStmt:
		f.useCheck(s.X)
	default:
		f.useCheckNode(s)
	}
}

func (f *envFlow) leafDecl(vs *ast.ValueSpec) {
	for _, v := range vs.Values {
		if !f.isGetEnvelope(v) {
			f.useCheck(v)
			f.escapeAliases(v)
		}
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) && f.isGetEnvelope(vs.Values[i]) {
			f.st[analysis.ExprKey(f.info, name)] = &envVar{name: name.Name, fromPool: true}
			continue
		}
		f.untrack(name)
	}
}

func (f *envFlow) leafAssign(s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		if f.isGetEnvelope(rhs) {
			continue // a (re)binding, handled below
		}
		f.useCheck(rhs)
		// The value now flows somewhere this model cannot follow.
		f.escapeAliases(rhs)
	}
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		}
		if rhs != nil && f.isGetEnvelope(rhs) {
			if key := analysis.ExprKey(f.info, lhs); key != "" {
				name := key
				if id, ok := lhs.(*ast.Ident); ok {
					name = id.Name
				}
				f.st[key] = &envVar{name: name, fromPool: true}
				continue
			}
		}
		// Rebinding a tracked variable unbinds it; writing THROUGH a
		// tracked envelope (e.Field = x) is a use of it.
		if key := analysis.ExprKey(f.info, lhs); key != "" {
			if _, ok := f.st[key]; ok {
				delete(f.st, key)
				continue
			}
		}
		f.useCheck(lhs)
	}
}

// leafExpr handles the event calls and falls back to a use scan.
func (f *envFlow) leafExpr(e ast.Expr) {
	call, ok := analysis.Unparen(e).(*ast.CallExpr)
	if !ok {
		f.useCheck(e)
		return
	}
	callee := analysis.Callee(f.info, call)
	switch {
	case analysis.IsPkgFunc(callee, "internal/fabric", "PutEnvelope") && len(call.Args) == 1:
		key := analysis.ExprKey(f.info, call.Args[0])
		if v, ok := f.st[key]; ok {
			switch v.state {
			case stPut:
				f.pass.Reportf(call.Pos(), "second PutEnvelope of %s: envelope already returned to the pool", v.name)
			case stSent:
				f.pass.Reportf(call.Pos(), "PutEnvelope of %s after %s handed it to the fabric: the receiver owns it now", v.name, v.how)
			default:
				v.state = stPut
			}
			return
		}
		f.useCheck(call.Args[0])
	case (analysis.IsMethod(callee, "internal/fabric", "Endpoint", "Send") ||
		analysis.IsMethod(callee, "internal/fabric", "Endpoint", "SendOwned")) && len(call.Args) == 1:
		f.useCheck(call.Fun)
		key := analysis.ExprKey(f.info, call.Args[0])
		if v, ok := f.st[key]; ok {
			switch v.state {
			case stPut:
				f.pass.Reportf(call.Pos(), "%s of %s after PutEnvelope returned it to the pool", callee.Name(), v.name)
			case stSent:
				f.pass.Reportf(call.Pos(), "%s already handed to the fabric by %s; an envelope can be sent once", v.name, v.how)
			default:
				v.state = stSent
				v.how = callee.Name()
			}
			return
		}
		f.useCheck(call.Args[0])
	default:
		f.useCheck(e)
		// Trace emission buffers its arguments in a per-rank track until
		// export — long past the PutEnvelope that recycles the struct — so
		// handing an envelope pointer to internal/trace is a retention bug
		// even when the call site looks innocent. Emission sites must pass
		// extracted scalars (src/tag/bytes), never the envelope.
		if callee != nil && analysis.PkgPathIs(callee.Pkg(), "internal/trace") {
			for _, a := range call.Args {
				if t := f.info.TypeOf(a); t != nil && isEnvelopePtr(t) {
					f.pass.Reportf(a.Pos(), "*fabric.Envelope passed to trace %s: trace tracks retain event args past PutEnvelope; pass extracted scalars instead", callee.Name())
				}
			}
		}
		// The callee may retain or recycle envelope arguments.
		for _, a := range call.Args {
			f.escapeAliases(a)
		}
	}
}

func (f *envFlow) leafReturn(s *ast.ReturnStmt) {
	returned := map[string]bool{}
	for _, r := range s.Results {
		f.useCheck(r)
		if key := analysis.ExprKey(f.info, r); key != "" {
			returned[key] = true
		}
		f.escapeAliases(r)
	}
	for key, v := range f.st {
		if v.fromPool && v.state == stLive && !returned[key] {
			f.pass.Reportf(s.Pos(), "envelope %s from GetEnvelope is neither recycled nor handed to the fabric on this return path", v.name)
		}
	}
}

// checkDeferredTrace flags deferred closures that emit trace events
// from a tracked envelope: the defer runs at function exit, after the
// body's PutEnvelope (or Send) released the struct, so the emission
// reads a recycled — possibly re-leased — envelope. Direct
// `defer tr.X(args...)` is safe (Go evaluates the arguments at defer
// time), so only function literals are inspected.
func (f *envFlow) checkDeferredTrace(call *ast.CallExpr) {
	fl, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	tracing := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if callee := analysis.Callee(f.info, c); callee != nil && analysis.PkgPathIs(callee.Pkg(), "internal/trace") {
				tracing = true
				return false
			}
		}
		return true
	})
	if !tracing {
		return
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := f.st[analysis.ExprKey(f.info, id)]; ok {
				f.pass.Reportf(id.Pos(), "deferred trace emission reads envelope %s after this function releases it; capture the scalars before the defer", v.name)
			}
		}
		return true
	})
}

func (f *envFlow) isGetEnvelope(e ast.Expr) bool {
	call, ok := analysis.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return analysis.IsPkgFunc(analysis.Callee(f.info, call), "internal/fabric", "GetEnvelope")
}

// useCheck reports uses of released/transferred envelopes anywhere in
// the expression, and recurses into function literals with fresh state.
func (f *envFlow) useCheck(e ast.Expr) {
	if e != nil {
		f.useCheckNode(e)
	}
}

func (f *envFlow) useCheckNode(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The closure may run later: everything it references
			// escapes; its own envelopes are checked independently.
			f.closureEscape(n)
			checkFunc(f.pass, n.Type, n.Body)
			return false
		case *ast.Ident:
			if v, ok := f.st[analysis.ExprKey(f.info, n)]; ok {
				switch v.state {
				case stPut:
					f.pass.Reportf(n.Pos(), "use of %s after PutEnvelope returned it to the pool", v.name)
				case stSent:
					if v.how == "Send" {
						f.pass.Reportf(n.Pos(), "use of %s after Send handed it to the fabric", v.name)
					}
					// SendOwned reuse is the sendowned analyzer's finding.
				}
			}
		}
		return true
	})
}

// escapeAliases stops leak-tracking envelopes whose value flows
// somewhere this model cannot follow (append, struct fields, other
// variables, arbitrary calls). Reuse checks stay active.
func (f *envFlow) escapeAliases(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := f.st[analysis.ExprKey(f.info, id)]; ok {
				v.fromPool = false
			}
		}
		return true
	})
}

func (f *envFlow) escapeAll(n ast.Node) {
	f.useCheckNode(n)
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := f.st[analysis.ExprKey(f.info, id)]; ok {
				v.fromPool = false
			}
		}
		return true
	})
}

func (f *envFlow) closureEscape(fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := f.st[analysis.ExprKey(f.info, id)]; ok {
				v.fromPool = false
			}
		}
		return true
	})
}

func (f *envFlow) untrack(e ast.Expr) {
	if key := analysis.ExprKey(f.info, e); key != "" {
		delete(f.st, key)
	}
}
