// Seeded violations of the pooled-envelope lifecycle.
package envlifetime

import "repro/internal/fabric"

func useAfterPut() {
	e := fabric.GetEnvelope()
	e.Dst = 1
	fabric.PutEnvelope(e)
	e.Tag = 2 // want `use of e after PutEnvelope returned it to the pool`
}

func doublePut() {
	e := fabric.GetEnvelope()
	fabric.PutEnvelope(e)
	fabric.PutEnvelope(e) // want `second PutEnvelope of e: envelope already returned to the pool`
}

func putAfterSend(ep *fabric.Endpoint) {
	e := fabric.GetEnvelope()
	ep.Send(e)
	fabric.PutEnvelope(e) // want `PutEnvelope of e after Send handed it to the fabric: the receiver owns it now`
}

func useAfterSend(ep *fabric.Endpoint) {
	e := fabric.GetEnvelope()
	ep.Send(e)
	_ = e.Seq // want `use of e after Send handed it to the fabric`
}

func doubleSend(ep *fabric.Endpoint) {
	e := fabric.GetEnvelope()
	ep.Send(e)
	ep.Send(e) // want `e already handed to the fabric by Send; an envelope can be sent once`
}

func leakOnErrorPath(cond bool) error {
	e := fabric.GetEnvelope()
	if cond {
		return nil // want `envelope e from GetEnvelope is neither recycled nor handed to the fabric on this return path`
	}
	fabric.PutEnvelope(e)
	return nil
}

func paramReuse(e *fabric.Envelope) {
	fabric.PutEnvelope(e)
	_ = e.Src // want `use of e after PutEnvelope returned it to the pool`
}
