// False-positive regressions: the runtime's real hot-path idioms, none
// of which may be flagged.
package envlifetime

import "repro/internal/fabric"

// branchAgree mirrors sendInternal's eager path: both arms transfer, so
// no leak is reported after the merge.
func branchAgree(ep *fabric.Endpoint, owned bool) error {
	e := fabric.GetEnvelope()
	if owned {
		ep.SendOwned(e)
	} else {
		ep.Send(e)
	}
	return nil
}

// errorUnwind mirrors DecodeBatch: the error path recycles the current
// envelope plus everything accumulated, the success path escapes it
// into the result slice.
func errorUnwind(datas [][]byte) []*fabric.Envelope {
	var envs []*fabric.Envelope
	for _, d := range datas {
		e := fabric.GetEnvelope()
		if len(d) == 0 {
			fabric.PutEnvelope(e)
			for _, prev := range envs {
				fabric.PutEnvelope(prev)
			}
			return nil
		}
		e.Payload = append(e.Payload[:0], d...)
		envs = append(envs, e)
	}
	return envs
}

// branchRelease mirrors dispatch: each protocol arm disposes of the
// envelope its own way and the arms never rejoin live state.
func branchRelease(ep *fabric.Endpoint, proto int) {
	e := fabric.GetEnvelope()
	switch proto {
	case 0:
		fabric.PutEnvelope(e)
	case 1:
		ep.Send(e)
	default:
		fabric.PutEnvelope(e)
	}
}

// deferredPut counts as a release: defers run at an unknowable point in
// the model, so leak tracking lets go.
func deferredPut(use func(*fabric.Envelope)) {
	e := fabric.GetEnvelope()
	defer fabric.PutEnvelope(e)
	use(e)
}
