// Trace emission sites must not retain pooled envelopes past their
// release: a deferred closure runs at function exit, after PutEnvelope
// recycled the struct, so reading the envelope from one emits fields
// of whatever the pool leased the struct to next.
package envlifetime

import (
	"repro/internal/fabric"
	"repro/internal/trace"
)

func deferredTraceRead(tr *trace.Track) {
	e := fabric.GetEnvelope()
	defer func() {
		tr.Instant(trace.CatFabric, "late", 0,
			trace.Arg{Key: "src", Val: trace.Itoa(e.Src)}) // want `deferred trace emission reads envelope e after this function releases it`
	}()
	fabric.PutEnvelope(e)
}

func deferredTraceParam(tr *trace.Track, e *fabric.Envelope) {
	defer func() {
		tr.Instant(trace.CatFabric, "late", 0,
			trace.Arg{Key: "dst", Val: trace.Itoa(e.Dst)}) // want `deferred trace emission reads envelope e after this function releases it`
	}()
	fabric.PutEnvelope(e)
}

func deferredTraceScalars(tr *trace.Track) {
	e := fabric.GetEnvelope()
	src := e.Src
	defer func() {
		// Legal: the scalar was captured before the defer.
		tr.Instant(trace.CatFabric, "late", 0,
			trace.Arg{Key: "src", Val: trace.Itoa(src)})
	}()
	fabric.PutEnvelope(e)
}

func directDeferTrace(tr *trace.Track) {
	e := fabric.GetEnvelope()
	// Legal: a direct defer evaluates its arguments now, while the
	// envelope is still owned here.
	defer tr.Instant(trace.CatFabric, "late", 0,
		trace.Arg{Key: "src", Val: trace.Itoa(e.Src)})
	fabric.PutEnvelope(e)
}
