// Directive handling: a justified allow suppresses, a bare one is a
// finding in its own right (and suppresses nothing).
package envlifetime

import "repro/internal/fabric"

func suppressed() {
	e := fabric.GetEnvelope()
	fabric.PutEnvelope(e)
	e.Tag = 9 //mpivet:allow envlifetime -- seeded: proves a justified directive suppresses this line
}

func standaloneSuppressed() {
	e := fabric.GetEnvelope()
	fabric.PutEnvelope(e)
	//mpivet:allow envlifetime -- seeded: proves a standalone directive covers the next line
	e.Tag = 10
}

func unjustified() {
	e := fabric.GetEnvelope()
	fabric.PutEnvelope(e)
	_ = e.Seq //mpivet:allow envlifetime // want `use of e after PutEnvelope` `mpivet:allow directive is missing its justification`
}
