package envlifetime_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/envlifetime"
)

func TestEnvLifetime(t *testing.T) {
	analysistest.Run(t, envlifetime.Analyzer, "envlifetime")
}
