// Package analysistest runs one mpivet analyzer over a seeded testdata
// package and checks its findings against `// want "regex"` comments,
// in the manner of golang.org/x/tools/go/analysis/analysistest but on
// the repo's own framework.
//
// Testdata lives at testdata/src/<pkg>/ under the analyzer's package
// directory and is a real, type-checked Go package that may import the
// module (repro/internal/fabric and friends); <pkg> doubles as its
// import path, which is how the path-scoped analyzers (nativecodes,
// walltime) are pointed at their surfaces ("internal/mpich"). Every
// finding must be matched by a want comment on its line and vice versa;
// suppression runs through the production ParseAllows/Filter path, so
// directive tests exercise exactly what cmd/mpivet does.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

var (
	universeMu  sync.Mutex
	universeVal *load.Universe
	universeErr error
)

// universe lists and caches the module's package graph (with export
// data) once per test binary; the listing runs at the module root so
// every analyzer package shares one build-cache pass.
func universe(t *testing.T) *load.Universe {
	t.Helper()
	universeMu.Lock()
	defer universeMu.Unlock()
	if universeVal == nil && universeErr == nil {
		root, err := moduleRoot()
		if err != nil {
			universeErr = err
		} else {
			// The extra stdlib patterns cover imports testdata packages
			// use that the module itself might not.
			universeVal, _, universeErr = load.List(root, "./...", "time", "math/rand", "sync", "sort", "fmt")
		}
	}
	if universeErr != nil {
		t.Fatalf("analysistest: loading module universe: %v", universeErr)
	}
	return universeVal
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

// Run checks analyzer a against testdata/src/<pkg>.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	u := universe(t)
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkg))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}

	fset := token.NewFileSet()
	files, src, err := load.ParseDir(fset, dir, names)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	p, err := u.CheckSource(pkg, fset, files, src)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	known := map[string]bool{a.Name: true}
	allows, problems := analysis.ParseAllows(fset, p.Files, p.Src, known)
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.Info,
		Allows:    allows,
	}
	switch {
	case a.Run != nil:
		if err := a.Run(pass); err != nil {
			t.Fatalf("analysistest: %s: %v", a.Name, err)
		}
	case a.RunProgram != nil:
		if err := a.RunProgram([]*analysis.Pass{pass}); err != nil {
			t.Fatalf("analysistest: %s: %v", a.Name, err)
		}
	default:
		t.Fatalf("analysistest: %s has no Run or RunProgram", a.Name)
	}
	findings := analysis.Filter(fset, pass.Diagnostics(), allows, problems)

	wants := parseWants(t, src)
	for _, d := range findings {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected finding: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.rx.String())
		}
	}
}

type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// wantRx extracts the quoted patterns after a `// want` marker: either
// "double quoted" (no escapes needed by the suites) or `backquoted`.
var wantRx = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

func parseWants(t *testing.T, src map[string][]byte) []*want {
	t.Helper()
	var out []*want
	files := make([]string, 0, len(src))
	for f := range src {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, fname := range files {
		for i, line := range strings.Split(string(src[fname]), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			rest := line[idx+len("// want "):]
			ms := wantRx.FindAllStringSubmatch(rest, -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: malformed want comment (no quoted pattern)", fname, i+1)
			}
			for _, m := range ms {
				pat := m[1]
				if m[2] != "" {
					pat = m[2]
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", fname, i+1, pat, err)
				}
				out = append(out, &want{file: fname, line: i + 1, rx: rx})
			}
		}
	}
	return out
}

func claim(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.rx.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
