// Package load type-checks the module's packages for the mpivet
// analyzers using only the standard library: package metadata and
// export data come from `go list -export -json -deps -test`, sources
// are parsed with go/parser, and imports resolve through the gc
// importer reading the build cache's export files. This is the offline
// subset of golang.org/x/tools/go/packages the analysis suite needs —
// the toolchain image carries no x/tools, so mpivet carries its own
// loader.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// ListPackage is the subset of `go list -json` output the loader uses.
type ListPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	ForTest    string
}

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the plain import path ("repro/internal/fabric"), with any
	// test-variant decoration stripped; ListPath keeps the decorated
	// form ("repro/internal/fabric [repro/internal/fabric.test]").
	Path     string
	ListPath string
	Name     string
	Dir      string
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	// Src holds each file's source bytes, keyed by filename, for
	// directive parsing.
	Src map[string][]byte
}

// Universe is the import-resolution context shared by every typecheck:
// the full `go list -deps` closure with export data.
type Universe struct {
	Dir  string // module root the listing ran in
	Pkgs map[string]*ListPackage
}

// List runs `go list -export -json -deps -test` over patterns in dir and
// returns the universe plus the matched (non-dependency) packages.
func List(dir string, patterns ...string) (*Universe, []*ListPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "-test", "-e"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	u := &Universe{Dir: dir, Pkgs: map[string]*ListPackage{}}
	var targets []*ListPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(ListPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		u.Pkgs[p.ImportPath] = p
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	return u, targets, nil
}

// PlainPath strips the test-variant decoration from a go list import
// path: "p [p.test]" -> "p".
func PlainPath(listPath string) string {
	if i := strings.Index(listPath, " ["); i >= 0 {
		return listPath[:i]
	}
	return listPath
}

// importerFor builds a gc importer resolving through the universe's
// export data, honoring the importing package's ImportMap (which is how
// go list spells "this import resolves to the test variant").
func (u *Universe) importerFor(fset *token.FileSet, p *ListPackage) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if p != nil {
			if m, ok := p.ImportMap[path]; ok {
				path = m
			}
		}
		lp, ok := u.Pkgs[path]
		if !ok || lp.Export == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(lp.Export)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Check type-checks one listed package into the shared fset.
func (u *Universe) Check(fset *token.FileSet, p *ListPackage) (*Package, error) {
	files, src, err := ParseDir(fset, p.Dir, p.GoFiles)
	if err != nil {
		return nil, err
	}
	plain := PlainPath(p.ImportPath)
	info := NewInfo()
	conf := types.Config{Importer: u.importerFor(fset, p)}
	tpkg, err := conf.Check(plain, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return &Package{
		Path:     plain,
		ListPath: p.ImportPath,
		Name:     p.Name,
		Dir:      p.Dir,
		Fset:     fset,
		Files:    files,
		Types:    tpkg,
		Info:     info,
		Src:      src,
	}, nil
}

// CheckSource type-checks an ad-hoc package (the analysistest harness's
// testdata packages, which live outside the module's package graph) at
// the given import path, resolving imports through the universe with no
// ImportMap.
func (u *Universe) CheckSource(path string, fset *token.FileSet, files []*ast.File, src map[string][]byte) (*Package, error) {
	info := NewInfo()
	conf := types.Config{Importer: u.importerFor(fset, nil)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	name := ""
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	return &Package{
		Path: path, ListPath: path, Name: name,
		Fset: fset, Files: files, Types: tpkg, Info: info, Src: src,
	}, nil
}

// ParseDir parses the named files of dir, returning ASTs plus raw
// sources keyed by filename.
func ParseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, map[string][]byte, error) {
	var files []*ast.File
	src := map[string][]byte{}
	for _, name := range names {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, name)
		}
		data, err := os.ReadFile(fn)
		if err != nil {
			return nil, nil, err
		}
		af, err := parser.ParseFile(fset, fn, data, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("parse %s: %v", fn, err)
		}
		files = append(files, af)
		src[fn] = data
	}
	return files, src, nil
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Program loads and type-checks every analyzable package matched by
// patterns. A test-augmented variant ("p [p.test]") compiles the exact
// same non-test files as the plain package plus its _test.go files, so
// when one is present the plain build is skipped and the variant is
// analyzed alone — one pass per package, test files included, no
// duplicated findings. External _test packages are their own entry;
// generated ".test" mains are skipped.
func Program(dir string, patterns ...string) (*Universe, *token.FileSet, []*Package, error) {
	u, targets, err := List(dir, patterns...)
	if err != nil {
		return nil, nil, nil, err
	}
	fset := token.NewFileSet()
	augmented := map[string]bool{}
	for _, t := range targets {
		if t.ForTest != "" && PlainPath(t.ImportPath) == t.ForTest {
			augmented[t.ForTest] = true
		}
	}
	var pkgs []*Package
	for _, t := range targets {
		if strings.HasSuffix(t.ImportPath, ".test") && t.Name == "main" {
			continue // generated test main
		}
		if t.ForTest == "" && augmented[t.ImportPath] {
			continue // superseded by the test-augmented variant
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		p, err := u.Check(fset, t)
		if err != nil {
			return nil, nil, nil, err
		}
		pkgs = append(pkgs, p)
	}
	return u, fset, pkgs, nil
}
