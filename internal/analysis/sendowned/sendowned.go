// Package sendowned checks fabric.Endpoint.SendOwned's transfer
// contract: SendOwned skips the defensive payload copy, so the moment
// it returns, the envelope AND the backing array of its payload slice
// belong to the receiver. Any later read or write by the sender — of
// the envelope, of the slice that was assigned to its Payload field, or
// of any alias of that slice — races with the receiver and corrupts
// results nondeterministically. This is exactly the bug class the
// collective accumulators avoid by keeping the defensive copy: an
// accumulator the algorithm keeps reducing into must never travel
// through SendOwned.
//
// The checker tracks, per function (analysis.WalkFlow, branch-isolated),
// which expressions alias each envelope's payload: `e.Payload = buf`
// and `buf := e.Payload` both link buf to e. After `ep.SendOwned(e)`,
// a use of e or of any linked alias is reported; re-binding an alias
// variable (`buf = nil`, `s.payload = nil`) is legal and unlinks it.
package sendowned

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the sendowned checker.
var Analyzer = &analysis.Analyzer{
	Name: "sendowned",
	Doc:  "check that envelopes and payload slices are never touched after SendOwned transfers ownership",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok {
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	f := &soFlow{
		pass:    pass,
		info:    pass.TypesInfo,
		aliases: map[string]string{},
		sent:    map[string]sentInfo{},
	}
	analysis.WalkFlow(body.List, f)
}

type sentInfo struct {
	name string // display name of the envelope variable
}

// soFlow tracks payload aliasing and transfer state.
//
// aliases maps an expression key (envelope var, alias var, or selector
// chain like "s.payload") to its alias-group id; groups are keyed by
// the envelope variable's key. sent marks groups whose envelope has
// been handed to SendOwned.
type soFlow struct {
	pass    *analysis.Pass
	info    *types.Info
	aliases map[string]string   // expr key -> group id
	sent    map[string]sentInfo // group id -> transfer record
}

func (f *soFlow) Clone() analysis.Flow {
	a := make(map[string]string, len(f.aliases))
	for k, v := range f.aliases {
		a[k] = v
	}
	s := make(map[string]sentInfo, len(f.sent))
	for k, v := range f.sent {
		s[k] = v
	}
	return &soFlow{pass: f.pass, info: f.info, aliases: a, sent: s}
}

func (f *soFlow) Merge(branches []analysis.Flow, terminated []bool) {
	var live []*soFlow
	for i, b := range branches {
		if !terminated[i] {
			live = append(live, b.(*soFlow))
		}
	}
	if len(live) == 0 {
		return
	}
	// Keep alias links and sent marks present in every surviving branch.
	for k, g := range f.aliases {
		for _, b := range live {
			if b.aliases[k] != g {
				delete(f.aliases, k)
				break
			}
		}
	}
	// A transfer in SOME branch poisons the merge only if every
	// surviving branch transferred: otherwise tracking would flag code
	// that is legal on the untransferred path. (A transfer in one arm
	// followed by a use after the merge is real, but flagging it risks
	// false positives on mode-guarded code; the seeded tests pin the
	// in-branch and post-both-branch cases.)
	agreed := map[string]sentInfo{}
	for g, si := range live[0].sent {
		ok := true
		for _, b := range live[1:] {
			if _, has := b.sent[g]; !has {
				ok = false
				break
			}
		}
		if ok {
			agreed[g] = si
		}
	}
	f.sent = agreed
}

func (f *soFlow) Cond(e ast.Expr) { f.scanUse(e) }

func (f *soFlow) Leaf(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		f.leafAssign(s)
	case *ast.ExprStmt:
		f.leafExpr(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			f.scanUse(r)
		}
	case *ast.DeferStmt:
		f.scanUse(s.Call)
	case *ast.GoStmt:
		f.scanUse(s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						f.scanUse(v)
						if i < len(vs.Names) {
							f.link(vs.Names[i], v)
						}
					}
				}
			}
		}
	case *ast.SendStmt:
		f.scanUse(s.Chan)
		f.scanUse(s.Value)
	case *ast.IncDecStmt:
		f.scanUse(s.X)
	default:
		if s != nil {
			f.scanNode(s)
		}
	}
}

func (f *soFlow) leafAssign(s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		f.scanUse(rhs)
	}
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		}
		key := analysis.ExprKey(f.info, lhs)
		if g, tracked := f.aliases[key]; key != "" && tracked {
			if _, gone := f.sent[g]; gone && isPayloadSelector(f.info, lhs) {
				// e.Payload = x after transfer writes the envelope.
				f.reportUse(lhs.Pos(), key, g)
			}
			// Re-binding unlinks the alias: the variable now holds a
			// different value (s.payload = nil is the legal pattern).
			delete(f.aliases, key)
		} else {
			// Not a tracked alias itself — but writing through a
			// transferred envelope (e.Tag = 3) is still a use of it.
			f.scanUse(lhs)
		}
		if rhs != nil {
			f.link(lhs, rhs)
		}
	}
}

// link records aliasing created by `lhs = rhs` for the relevant shapes:
//   - lhs is e.Payload (e an envelope) -> rhs joins e's group
//   - rhs is e.Payload                 -> lhs joins e's group
//   - rhs is an existing alias         -> lhs joins its group
func (f *soFlow) link(lhs, rhs ast.Expr) {
	lhsKey := analysis.ExprKey(f.info, lhs)
	rhsKey := analysis.ExprKey(f.info, rhs)
	if lhsKey == "" && rhsKey == "" {
		return
	}
	// e.Payload = rhs
	if base, ok := payloadBase(f.info, lhs); ok {
		g := f.groupOf(base)
		if rhsKey != "" {
			if rg, tracked := f.aliases[rhsKey]; tracked && rg != g {
				// Payload shared between two envelopes: unify.
				for k, kg := range f.aliases {
					if kg == rg {
						f.aliases[k] = g
					}
				}
				if si, was := f.sent[rg]; was {
					f.sent[g] = si
					delete(f.sent, rg)
				}
			}
			f.aliases[rhsKey] = g
		}
		return
	}
	if lhsKey == "" {
		return
	}
	// lhs = e.Payload
	if base, ok := payloadBase(f.info, rhs); ok {
		f.aliases[lhsKey] = f.groupOf(base)
		return
	}
	// lhs = existing alias (slice or envelope copy)
	if g, tracked := f.aliases[rhsKey]; tracked {
		f.aliases[lhsKey] = g
	}
}

// leafExpr intercepts SendOwned; other calls get the generic scan.
func (f *soFlow) leafExpr(e ast.Expr) {
	call, ok := analysis.Unparen(e).(*ast.CallExpr)
	if !ok {
		f.scanUse(e)
		return
	}
	callee := analysis.Callee(f.info, call)
	if analysis.IsMethod(callee, "internal/fabric", "Endpoint", "SendOwned") && len(call.Args) == 1 {
		f.scanUse(call.Fun)
		arg := call.Args[0]
		key := analysis.ExprKey(f.info, arg)
		if key == "" {
			return
		}
		if g, tracked := f.aliases[key]; tracked {
			if _, already := f.sent[g]; already {
				f.reportUse(arg.Pos(), key, g)
				return
			}
			f.sent[g] = sentInfo{name: exprName(arg)}
			return
		}
		g := f.groupOf(key)
		f.sent[g] = sentInfo{name: exprName(arg)}
		return
	}
	f.scanUse(e)
}

// groupOf returns (creating if needed) the alias group for an envelope
// expression key; the envelope itself is a member of its own group.
func (f *soFlow) groupOf(envKey string) string {
	if g, ok := f.aliases[envKey]; ok {
		return g
	}
	f.aliases[envKey] = envKey
	return envKey
}

// scanUse reports reads/writes of transferred envelopes or payload
// aliases inside e. Matching is top-down: the widest matching selector
// chain reports once and is not descended into.
func (f *soFlow) scanUse(e ast.Expr) {
	if e != nil {
		f.scanNode(e)
	}
}

func (f *soFlow) scanNode(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(f.pass, n.Body)
			return false
		case *ast.SelectorExpr, *ast.Ident:
			key := analysis.ExprKey(f.info, n.(ast.Expr))
			if key == "" {
				return true
			}
			if g, tracked := f.aliases[key]; tracked {
				if _, gone := f.sent[g]; gone {
					f.reportUse(n.Pos(), key, g)
				}
				return false // widest match only
			}
			_, isSel := n.(*ast.SelectorExpr)
			return isSel // look for shorter chains inside a selector
		}
		return true
	})
}

func (f *soFlow) reportUse(pos token.Pos, key, group string) {
	si := f.sent[group]
	what := "payload alias of " + si.name
	if key == group {
		what = "envelope " + si.name
	}
	f.pass.Reportf(pos, "%s used after SendOwned transferred ownership to the receiver", what)
}

// payloadBase matches `<env>.Payload` where <env> is a *fabric.Envelope
// expression with a canonical key, returning the envelope's key.
func payloadBase(info *types.Info, e ast.Expr) (string, bool) {
	sel, ok := analysis.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Payload" {
		return "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil || !analysis.NamedTypeIs(t, "internal/fabric", "Envelope") {
		return "", false
	}
	key := analysis.ExprKey(info, sel.X)
	return key, key != ""
}

func isPayloadSelector(info *types.Info, e ast.Expr) bool {
	_, ok := payloadBase(info, e)
	return ok
}

func exprName(e ast.Expr) string {
	switch e := analysis.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	}
	return "envelope"
}
