package sendowned_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sendowned"
)

func TestSendOwned(t *testing.T) {
	analysistest.Run(t, sendowned.Analyzer, "sendowned")
}
