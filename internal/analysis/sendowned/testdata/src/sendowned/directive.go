// Directive suppression through the production filter path.
package sendowned

import "repro/internal/fabric"

func suppressed(ep *fabric.Endpoint, buf []byte) {
	e := fabric.GetEnvelope()
	e.Payload = buf
	ep.SendOwned(e)
	_ = buf[0] //mpivet:allow sendowned -- seeded: proves a justified directive suppresses this line
}
