// False-positive regressions: the rendezvous CTS handoff from
// mpicore/p2p.go, which is the legal shape of SendOwned usage.
package sendowned

import "repro/internal/fabric"

type pendingSend struct {
	payload []byte
	owned   bool
}

// legalHandoff mirrors the CTS handler: the payload moves to a fresh
// envelope, the transfer happens on one arm only, and the source field
// is re-bound to nil afterwards (a rebinding, not a use).
func legalHandoff(ep *fabric.Endpoint, s *pendingSend) {
	d := fabric.GetEnvelope()
	d.Payload = s.payload
	if s.owned {
		ep.SendOwned(d)
	} else {
		ep.Send(d)
	}
	s.payload = nil
}

// rebindAfterTransfer: re-binding an alias variable after the transfer
// releases it; only reads and writes through it are violations.
func rebindAfterTransfer(ep *fabric.Endpoint, s *pendingSend) {
	d := fabric.GetEnvelope()
	d.Payload = s.payload
	ep.SendOwned(d)
	s.payload = nil
}

// plainSendKeepsOwnership: Send copies the payload, so the sender may
// keep using its buffer — the accumulator pattern the collectives rely
// on.
func plainSendKeepsOwnership(ep *fabric.Endpoint, acc []byte, chunk []byte) {
	e := fabric.GetEnvelope()
	e.Payload = acc
	ep.Send(e)
	for i := range chunk {
		acc[i] += chunk[i]
	}
}
