// Seeded violations of the SendOwned ownership transfer.
package sendowned

import "repro/internal/fabric"

func payloadReuse(ep *fabric.Endpoint, buf []byte) {
	e := fabric.GetEnvelope()
	e.Payload = buf
	ep.SendOwned(e)
	buf[0] = 1 // want `payload alias of e used after SendOwned transferred ownership to the receiver`
}

func payloadRead(ep *fabric.Endpoint, buf []byte) byte {
	e := fabric.GetEnvelope()
	e.Payload = buf
	ep.SendOwned(e)
	return buf[0] // want `payload alias of e used after SendOwned transferred ownership to the receiver`
}

func envelopeWrite(ep *fabric.Endpoint, buf []byte) {
	e := fabric.GetEnvelope()
	e.Payload = buf
	ep.SendOwned(e)
	e.Tag = 3 // want `envelope e used after SendOwned transferred ownership to the receiver`
}

func doubleSendOwned(ep *fabric.Endpoint, buf []byte) {
	e := fabric.GetEnvelope()
	e.Payload = buf
	ep.SendOwned(e)
	ep.SendOwned(e) // want `envelope e used after SendOwned transferred ownership to the receiver`
}

func paramEnvelope(ep *fabric.Endpoint, e *fabric.Envelope) {
	ep.SendOwned(e)
	_ = e.Seq // want `envelope e used after SendOwned transferred ownership to the receiver`
}

// accumulatorThroughSendOwned is the collective-accumulator bug class:
// the buffer keeps being reduced into after its backing array left.
func accumulatorThroughSendOwned(ep *fabric.Endpoint, acc []byte, chunk []byte) {
	e := fabric.GetEnvelope()
	e.Payload = acc
	ep.SendOwned(e)
	for i := range chunk {
		acc[i] += chunk[i] // want `payload alias of e used after SendOwned transferred ownership to the receiver`
	}
}

func aliasOfAlias(ep *fabric.Endpoint, buf []byte) {
	e := fabric.GetEnvelope()
	e.Payload = buf
	view := buf
	ep.SendOwned(e)
	_ = view[0] // want `payload alias of e used after SendOwned transferred ownership to the receiver`
}
