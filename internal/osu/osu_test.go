package osu

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/simnet"
)

func runBench(t *testing.T, prog string, stack core.Stack, conf func(*LatencyBench)) *LatencyBench {
	t.Helper()
	job, err := core.Launch(stack, prog, core.WithConfigure(func(rank int, p core.Program) {
		conf(p.(*LatencyBench))
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	return job.Program(0).(*LatencyBench)
}

func smallStack(impl core.Impl) core.Stack {
	s := core.DefaultStack(impl, core.ABINative, core.CkptNone)
	s.Net = simnet.SingleNode(4)
	return s
}

func TestAllBenchmarksProduceResults(t *testing.T) {
	for _, prog := range []string{"osu.alltoall", "osu.bcast", "osu.allreduce"} {
		for _, impl := range []core.Impl{core.ImplMPICH, core.ImplOpenMPI} {
			t.Run(fmt.Sprintf("%s/%s", prog, impl), func(t *testing.T) {
				b := runBench(t, prog, smallStack(impl), func(lb *LatencyBench) {
					lb.Sizes = []int{1, 64, 4096}
					lb.Iters = 3
					lb.Warmup = 1
				})
				sizes, means := b.Results()
				if len(sizes) != 3 || len(means) != 3 {
					t.Fatalf("results incomplete: %v %v", sizes, means)
				}
				for i, m := range means {
					if m <= 0 {
						t.Fatalf("size %d latency %v not positive", sizes[i], m)
					}
				}
			})
		}
	}
}

func TestLatencyGrowsWithSize(t *testing.T) {
	b := runBench(t, "osu.alltoall", smallStack(core.ImplMPICH), func(lb *LatencyBench) {
		lb.Sizes = []int{64, 1 << 16}
		lb.Iters = 4
		lb.Warmup = 1
	})
	_, means := b.Results()
	if means[1] < 2*means[0] {
		t.Fatalf("64KB alltoall (%v us) not clearly slower than 64B (%v us)", means[1], means[0])
	}
}

func TestSleepWindowAdvancesVirtualTime(t *testing.T) {
	stack := smallStack(core.ImplOpenMPI)
	job, err := core.Launch(stack, "osu.alltoall.ckptwindow", core.WithConfigure(func(rank int, p core.Program) {
		lb := p.(*LatencyBench)
		lb.Sizes = []int{1}
		lb.Iters = 2
		lb.Warmup = 1
		lb.SleepReal = 0 // keep the test fast; virtual sleep remains
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if job.Clock(0).Duration().Seconds() < 10 {
		t.Fatalf("virtual clock %v did not include the 10s sleep window", job.Clock(0).Duration())
	}
}

func TestDefaultSizesMatchPaperAxis(t *testing.T) {
	sizes := DefaultSizes()
	if sizes[0] != 1 || sizes[len(sizes)-1] != 1<<18 || len(sizes) != 19 {
		t.Fatalf("sweep = %v", sizes)
	}
}

func TestUnknownCollectiveFails(t *testing.T) {
	stack := smallStack(core.ImplMPICH)
	job, err := core.Launch(stack, "osu.alltoall", core.WithConfigure(func(rank int, p core.Program) {
		lb := p.(*LatencyBench)
		lb.Op = Collective("gatherv")
		lb.Sizes = []int{1}
		lb.Iters = 1
		lb.Warmup = 1
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err == nil {
		t.Fatal("unknown collective ran successfully")
	}
}
