// Package osu reproduces the OSU Micro-Benchmark kernels the paper's
// evaluation uses (OSU Micro-Benchmarks 7.5): collective latency sweeps for
// MPI_Alltoall, MPI_Bcast and MPI_Allreduce over message sizes 2^0..2^18,
// plus the paper's modified alltoall with a sleep window after warm-up
// (Section 5.3 / Figure 6), which provides the checkpoint opportunity.
//
// Each benchmark is a core.Program whose exported fields are its
// checkpointable state; the Figure 6 experiment checkpoints the benchmark
// mid-run and restarts it under another MPI implementation, so the sweep
// position, accumulated timings and phase all live in serialized state.
//
// In the README's layer diagram the OSU kernels are the applications
// row: programs compiled once against internal/abi like any user code.
package osu

import (
	"fmt"
	"time"

	"repro/internal/abi"
	"repro/internal/core"
)

// Collective names the benchmarked operation.
type Collective string

// Benchmarked collectives.
const (
	Alltoall  Collective = "alltoall"
	Bcast     Collective = "bcast"
	Allreduce Collective = "allreduce"
)

// DefaultSizes is the paper's x-axis: 1 B to 256 KiB in powers of two.
func DefaultSizes() []int {
	var sizes []int
	for sz := 1; sz <= 1<<18; sz <<= 1 {
		sizes = append(sizes, sz)
	}
	return sizes
}

// phase values for the benchmark state machine.
const (
	phaseWarmup = iota
	phaseSleep
	phaseMeasure
)

// LatencyBench sweeps one collective over message sizes, measuring the
// virtual-time latency per call, OSU style: warm-up iterations are
// discarded, measured iterations are averaged per size.
type LatencyBench struct {
	Op     Collective
	Sizes  []int
	Warmup int
	Iters  int
	// ItersLarge overrides Iters for sizes of LargeSize and up, mirroring
	// OSU's reduced large-message iteration counts (0 = same as Iters).
	ItersLarge int

	// SleepVirtual inserts the paper's post-warm-up sleep (10 s in the
	// paper) as virtual time; SleepReal holds the step for that long in
	// wall-clock time so an external checkpoint request can land in the
	// window, like the paper's operator did.
	SleepVirtual time.Duration
	SleepReal    time.Duration

	// State machine (exported: checkpointed).
	Phase   int
	SizeIdx int
	Iter    int
	AccumNs int64 // virtual ns accumulated over measured iterations

	// MeanMicros[i] is the mean latency in microseconds for Sizes[i].
	MeanMicros []float64

	// Restarted is flipped by the restart driver (diagnostics only).
	Restarted bool
}

// LargeSize is the boundary above which ItersLarge applies.
const LargeSize = 32 * 1024

// NewLatencyBench returns a bench with the paper's sweep parameters.
func NewLatencyBench(op Collective) *LatencyBench {
	return &LatencyBench{
		Op:         op,
		Sizes:      DefaultSizes(),
		Warmup:     5,
		Iters:      20,
		ItersLarge: 4,
	}
}

// itersNow is the measured-iteration target for the current size.
func (b *LatencyBench) itersNow() int {
	if b.ItersLarge > 0 && b.SizeIdx < len(b.Sizes) && b.Sizes[b.SizeIdx] >= LargeSize {
		return b.ItersLarge
	}
	return b.Iters
}

// Setup allocates nothing: buffers are rebuilt per step so they never
// bloat checkpoint images.
func (b *LatencyBench) Setup(env *abi.Env) error {
	if len(b.Sizes) == 0 {
		b.Sizes = DefaultSizes()
	}
	if b.Iters == 0 {
		b.Iters = 20
	}
	return nil
}

// run performs one collective call of the current size.
func (b *LatencyBench) run(env *abi.Env) error {
	sz := b.Sizes[b.SizeIdx]
	n := env.Size()
	switch b.Op {
	case Alltoall:
		send := make([]byte, n*sz)
		recv := make([]byte, n*sz)
		return env.T.Alltoall(send, sz, env.TypeByte, recv, sz, env.TypeByte, env.CommWorld)
	case Bcast:
		buf := make([]byte, sz)
		return env.T.Bcast(buf, sz, env.TypeByte, 0, env.CommWorld)
	case Allreduce:
		send := make([]byte, sz)
		recv := make([]byte, sz)
		return env.T.Allreduce(send, recv, sz, env.TypeByte, env.OpSum, env.CommWorld)
	default:
		return fmt.Errorf("osu: unknown collective %q", b.Op)
	}
}

// Step advances the warm-up/sleep/measure state machine by one collective
// call (or the sleep window).
func (b *LatencyBench) Step(env *abi.Env) (bool, error) {
	switch b.Phase {
	case phaseWarmup:
		if err := b.run(env); err != nil {
			return false, err
		}
		// Lockstep between iterations, as osu_latency does with its
		// barrier: prevents root-ahead pipelining from hiding latency.
		if err := env.T.Barrier(env.CommWorld); err != nil {
			return false, err
		}
		b.Iter++
		if b.Iter >= b.Warmup {
			b.Iter = 0
			if b.SleepVirtual > 0 || b.SleepReal > 0 {
				b.Phase = phaseSleep
			} else {
				b.Phase = phaseMeasure
			}
		}
		return false, nil
	case phaseSleep:
		// The paper's modified benchmark sleeps 10 s after warm-up; the
		// checkpoint is taken in this window.
		env.Compute(b.SleepVirtual)
		if b.SleepReal > 0 {
			time.Sleep(b.SleepReal) //mpivet:allow parksafe -- the paper's modified benchmark really sleeps here; opt-in via SleepReal (default 0)
		}
		b.Phase = phaseMeasure
		return false, nil
	case phaseMeasure:
		t0 := env.Now()
		if err := b.run(env); err != nil {
			return false, err
		}
		b.AccumNs += int64(env.Now() - t0)
		// Barrier outside the timed region (OSU protocol).
		if err := env.T.Barrier(env.CommWorld); err != nil {
			return false, err
		}
		b.Iter++
		if iters := b.itersNow(); b.Iter >= iters {
			// OSU reports the average latency across ranks: reduce the
			// per-rank accumulators.
			out := make([]byte, 8)
			if err := env.T.Allreduce(abi.Int64Bytes([]int64{b.AccumNs}), out, 1,
				env.TypeInt64, env.OpSum, env.CommWorld); err != nil {
				return false, err
			}
			total := abi.Int64sOf(out)[0]
			mean := float64(total) / float64(env.Size()) / float64(iters) / 1e3
			b.MeanMicros = append(b.MeanMicros, mean)
			b.AccumNs = 0
			b.Iter = 0
			b.SizeIdx++
			if b.SizeIdx < len(b.Sizes) {
				return false, nil
			}
			return true, nil
		}
		return false, nil
	}
	return false, fmt.Errorf("osu: corrupt phase %d", b.Phase)
}

// Results pairs sizes with measured mean latencies; valid once done.
func (b *LatencyBench) Results() ([]int, []float64) {
	return b.Sizes[:len(b.MeanMicros)], b.MeanMicros
}

func init() {
	core.RegisterProgram("osu.alltoall", func() core.Program { return NewLatencyBench(Alltoall) })
	core.RegisterProgram("osu.bcast", func() core.Program { return NewLatencyBench(Bcast) })
	core.RegisterProgram("osu.allreduce", func() core.Program { return NewLatencyBench(Allreduce) })
	// The Section 5.3 variant: alltoall with the post-warm-up sleep window.
	core.RegisterProgram("osu.alltoall.ckptwindow", func() core.Program {
		b := NewLatencyBench(Alltoall)
		b.SleepVirtual = 10 * time.Second
		b.SleepReal = 150 * time.Millisecond
		return b
	})
}
