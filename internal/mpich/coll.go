package mpich

import (
	"repro/internal/ops"
	"repro/internal/types"
)

// MPICH-style collective algorithm selection thresholds (bytes).
const (
	bcastShortMax       = 12288 // binomial below, scatter+ring-allgather above
	allreduceShortMax   = 2048  // recursive doubling below, Rabenseifner above
	alltoallBruckMax    = 256   // Bruck below, nonblocking overlap between
	alltoallPairwiseMin = 32768 // pairwise exchange above (long messages)
	allgatherRDMax      = 32768 // recursive doubling (pow2) below, ring above
)

// nextCollTag reserves a tag block for one collective call on c. Each call
// gets 64 tag values (rounds 0..63); successive collectives on the same
// communicator never share tags.
func (p *Proc) nextCollTag(c *commObj) int32 {
	c.collSeq++
	return int32((c.collSeq & 0x00ffffff) << 6)
}

// collSend sends packed bytes to a communicator rank on the collective
// context, blocking until the payload is handed to the fabric.
func (p *Proc) collSend(c *commObj, peer int, tag int32, data []byte) int {
	r := p.sendInternal(data, c.ranks[peer], tag, c.cid|collCIDBit)
	for r != nil && !r.done {
		if code := p.progress(true); code != Success {
			return code
		}
	}
	if r != nil {
		return r.code
	}
	return Success
}

// collRecv blocks for a packed message from a communicator rank on the
// collective context.
func (p *Proc) collRecv(c *commObj, peer int, tag int32) ([]byte, int) {
	r := &request{
		kind: reqRecv, comm: c, raw: true,
		srcWorld: c.ranks[peer], tag: int(tag), cid: c.cid | collCIDBit,
	}
	p.postRecv(r)
	for !r.done {
		if code := p.progress(true); code != Success {
			return nil, code
		}
	}
	return r.rawOut, r.code
}

// collExchange posts the receive before sending, making symmetric
// pairwise exchanges deadlock-free even on the rendezvous path.
func (p *Proc) collExchange(c *commObj, sendTo, recvFrom int, tag int32, data []byte) ([]byte, int) {
	r := &request{
		kind: reqRecv, comm: c, raw: true,
		srcWorld: c.ranks[recvFrom], tag: int(tag), cid: c.cid | collCIDBit,
	}
	p.postRecv(r)
	if code := p.collSend(c, sendTo, tag, data); code != Success {
		return nil, code
	}
	for !r.done {
		if code := p.progress(true); code != Success {
			return nil, code
		}
	}
	return r.rawOut, r.code
}

// Barrier uses MPICH's dissemination algorithm: ceil(log2 n) rounds of
// token exchanges at power-of-two distances.
func (p *Proc) Barrier(comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	n, me := c.size(), c.myPos
	if n == 1 {
		return Success
	}
	base := p.nextCollTag(c)
	round := int32(0)
	for mask := 1; mask < n; mask <<= 1 {
		to := (me + mask) % n
		from := (me - mask + n) % n
		if _, code := p.collExchange(c, to, from, base+round, nil); code != Success {
			return code
		}
		round++
	}
	return Success
}

// Bcast uses binomial trees for short messages and a scatter plus ring
// allgather for long ones, MPICH's classic selection.
func (p *Proc) Bcast(buf []byte, count int, dtype Handle, root int, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	dt, code := p.lookupType(dtype)
	if code != Success {
		return code
	}
	if root < 0 || root >= c.size() {
		return ErrRoot
	}
	if count < 0 {
		return ErrCount
	}
	n, me := c.size(), c.myPos
	nbytes := count * dt.t.Size()
	if n == 1 || nbytes == 0 {
		return Success
	}
	tag := p.nextCollTag(c)

	var packed []byte
	if me == root {
		var code int
		packed, code = packElems(dt, buf, count)
		if code != Success {
			return code
		}
	} else {
		packed = make([]byte, nbytes)
	}

	if nbytes <= bcastShortMax {
		code = p.bcastBinomial(c, packed, root, tag)
	} else {
		code = p.bcastScatterRing(c, packed, root, tag)
	}
	if code != Success {
		return code
	}
	if me != root {
		if _, err := dt.t.Unpack(packed, count, buf); err != nil {
			return ErrBuffer
		}
	}
	return Success
}

// bcastBinomial is the binomial-tree broadcast over relative ranks.
func (p *Proc) bcastBinomial(c *commObj, packed []byte, root int, tag int32) int {
	n, me := c.size(), c.myPos
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			data, code := p.collRecv(c, abs(rel-mask), tag)
			if code != Success {
				return code
			}
			copy(packed, data)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < n {
			if code := p.collSend(c, abs(rel+mask), tag, packed); code != Success {
				return code
			}
		}
	}
	return Success
}

// chunkBounds splits nbytes into n nearly-equal chunks; chunk i spans
// [off[i], off[i+1]).
func chunkBounds(nbytes, n int) []int {
	off := make([]int, n+1)
	base, rem := nbytes/n, nbytes%n
	for i := 0; i < n; i++ {
		sz := base
		if i < rem {
			sz++
		}
		off[i+1] = off[i] + sz
	}
	return off
}

// bcastScatterRing scatters the buffer binomially over relative ranks and
// reassembles with a ring allgather, MPICH's long-message broadcast.
func (p *Proc) bcastScatterRing(c *commObj, packed []byte, root int, tag int32) int {
	n, me := c.size(), c.myPos
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	off := chunkBounds(len(packed), n)

	// Binomial scatter: the holder of relative range [rel, rel+mask) hands
	// the upper half to its child.
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			data, code := p.collRecv(c, abs(rel-mask), tag)
			if code != Success {
				return code
			}
			copy(packed[off[rel]:], data)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < n {
			hi := rel + 2*mask
			if hi > n {
				hi = n
			}
			child := rel + mask
			if code := p.collSend(c, abs(child), tag, packed[off[child]:off[hi]]); code != Success {
				return code
			}
		}
	}

	// Ring allgather of the n chunks over relative ranks.
	for s := 0; s < n-1; s++ {
		sendChunk := (rel - s + n) % n
		recvChunk := (rel - s - 1 + n) % n
		data, code := p.collExchange(c, abs((rel+1)%n), abs((rel-1+n)%n),
			tag+1, packed[off[sendChunk]:off[sendChunk+1]])
		if code != Success {
			return code
		}
		copy(packed[off[recvChunk]:off[recvChunk+1]], data)
	}
	return Success
}

// reduceKind extracts the uniform primitive kind needed for a reduction.
func reduceKind(dt *typeObj) (types.Kind, int) {
	k, ok := dt.t.PrimKind()
	if !ok {
		return types.KindInvalid, ErrType
	}
	return k, Success
}

// applyOp folds in into acc (packed buffers of the same uniform kind).
func applyOp(o *opObj, k types.Kind, acc, in []byte) int {
	count := len(acc) / k.Size()
	if o.user != "" {
		fn, _, err := ops.LookupUser(o.user)
		if err != nil {
			return ErrOp
		}
		fn(acc, in, k, count)
		return Success
	}
	if err := ops.Apply(o.op, k, acc, in, count); err != nil {
		return ErrOp
	}
	return Success
}

// Reduce uses a binomial tree (commutative operators).
func (p *Proc) Reduce(sendbuf, recvbuf []byte, count int, dtype, op Handle, root int, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	dt, code := p.lookupType(dtype)
	if code != Success {
		return code
	}
	o, code := p.lookupOp(op)
	if code != Success {
		return code
	}
	if root < 0 || root >= c.size() {
		return ErrRoot
	}
	k, code := reduceKind(dt)
	if code != Success {
		return code
	}
	if !opDefined(o, k) {
		return ErrOp
	}
	n, me := c.size(), c.myPos
	acc, code := packElems(dt, sendbuf, count)
	if code != Success {
		return code
	}
	tag := p.nextCollTag(c)
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask == 0 {
			childRel := rel | mask
			if childRel < n {
				data, code := p.collRecv(c, abs(childRel), tag)
				if code != Success {
					return code
				}
				if code := applyOp(o, k, acc, data); code != Success {
					return code
				}
			}
		} else {
			if code := p.collSend(c, abs(rel-mask), tag, acc); code != Success {
				return code
			}
			break
		}
	}
	if me == root && count > 0 {
		if _, err := dt.t.Unpack(acc, count, recvbuf); err != nil {
			return ErrBuffer
		}
	}
	return Success
}

// opDefined checks operator/kind compatibility including user ops (which
// accept any uniform kind).
func opDefined(o *opObj, k types.Kind) bool {
	if o.user != "" {
		return true
	}
	return ops.Compatible(o.op, k)
}

// Allreduce selects recursive doubling for short messages and
// Rabenseifner's reduce-scatter/allgather for long power-of-two cases,
// like MPICH.
func (p *Proc) Allreduce(sendbuf, recvbuf []byte, count int, dtype, op Handle, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	dt, code := p.lookupType(dtype)
	if code != Success {
		return code
	}
	o, code := p.lookupOp(op)
	if code != Success {
		return code
	}
	k, code := reduceKind(dt)
	if code != Success {
		return code
	}
	if !opDefined(o, k) {
		return ErrOp
	}
	if count < 0 {
		return ErrCount
	}
	acc, code := packElems(dt, sendbuf, count)
	if code != Success {
		return code
	}
	n := c.size()
	tag := p.nextCollTag(c)
	nbytes := len(acc)
	elems := nbytes / k.Size()
	isPow2 := n&(n-1) == 0
	if n > 1 && nbytes > 0 {
		if nbytes > allreduceShortMax && isPow2 && elems >= n {
			code = p.allreduceRabenseifner(c, acc, o, k, tag)
		} else {
			code = p.allreduceRecDoubling(c, acc, o, k, tag)
		}
		if code != Success {
			return code
		}
	}
	if count > 0 {
		if _, err := dt.t.Unpack(acc, count, recvbuf); err != nil {
			return ErrBuffer
		}
	}
	return Success
}

// allreduceRecDoubling handles any communicator size by folding the
// non-power-of-two remainder into the nearest power of two first.
func (p *Proc) allreduceRecDoubling(c *commObj, acc []byte, o *opObj, k types.Kind, tag int32) int {
	n, me := c.size(), c.myPos
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	newrank := -1
	round := int32(0)
	switch {
	case me < 2*rem && me%2 == 0:
		if code := p.collSend(c, me+1, tag+round, acc); code != Success {
			return code
		}
	case me < 2*rem: // odd rank in the folded region
		data, code := p.collRecv(c, me-1, tag+round)
		if code != Success {
			return code
		}
		if code := applyOp(o, k, acc, data); code != Success {
			return code
		}
		newrank = me / 2
	default:
		newrank = me - rem
	}
	round++
	if newrank != -1 {
		for mask := 1; mask < pof2; mask <<= 1 {
			partnerNew := newrank ^ mask
			partner := partnerNew + rem
			if partnerNew < rem {
				partner = partnerNew*2 + 1
			}
			data, code := p.collExchange(c, partner, partner, tag+round, acc)
			if code != Success {
				return code
			}
			if code := applyOp(o, k, acc, data); code != Success {
				return code
			}
			round++
		}
	}
	// Unfold: odd folded ranks return results to their even partners.
	if me < 2*rem {
		if me%2 != 0 {
			return p.collSend(c, me-1, tag+62, acc)
		}
		data, code := p.collRecv(c, me+1, tag+62)
		if code != Success {
			return code
		}
		copy(acc, data)
	}
	return Success
}

// allreduceRabenseifner is the long-message reduce-scatter plus allgather
// algorithm for power-of-two communicators.
func (p *Proc) allreduceRabenseifner(c *commObj, acc []byte, o *opObj, k types.Kind, tag int32) int {
	n, me := c.size(), c.myPos
	es := k.Size()
	elems := len(acc) / es
	type span struct{ lo, hi int }
	var stack []span
	cur := span{0, elems}
	round := int32(0)
	// Reduce-scatter by recursive halving.
	for dist := n / 2; dist >= 1; dist /= 2 {
		partner := me ^ dist
		mid := (cur.lo + cur.hi) / 2
		var keep, give span
		if me < partner {
			keep, give = span{cur.lo, mid}, span{mid, cur.hi}
		} else {
			keep, give = span{mid, cur.hi}, span{cur.lo, mid}
		}
		data, code := p.collExchange(c, partner, partner, tag+round, acc[give.lo*es:give.hi*es])
		if code != Success {
			return code
		}
		if code := applyOp(o, k, acc[keep.lo*es:keep.hi*es], data); code != Success {
			return code
		}
		stack = append(stack, cur)
		cur = keep
		round++
	}
	// Allgather by recursive doubling, unwinding the halving stack.
	for dist := 1; dist < n; dist *= 2 {
		partner := me ^ dist
		parent := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		data, code := p.collExchange(c, partner, partner, tag+round, acc[cur.lo*es:cur.hi*es])
		if code != Success {
			return code
		}
		// Partner owned the complementary half of the parent span.
		if cur.lo == parent.lo {
			copy(acc[cur.hi*es:parent.hi*es], data)
		} else {
			copy(acc[parent.lo*es:cur.lo*es], data)
		}
		cur = parent
		round++
	}
	return Success
}

// Gather uses MPICH's binomial tree: each subtree root forwards its
// aggregated relative-rank block range to its parent.
func (p *Proc) Gather(sendbuf []byte, scount int, stype Handle,
	recvbuf []byte, rcount int, rtype Handle, root int, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	st, code := p.lookupType(stype)
	if code != Success {
		return code
	}
	if root < 0 || root >= c.size() {
		return ErrRoot
	}
	n, me := c.size(), c.myPos
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	blockSz := scount * st.t.Size()
	region := make([]byte, n*blockSz)
	if _, err := st.t.Pack(sendbuf, scount, region[:blockSz]); err != nil && scount > 0 {
		return ErrBuffer
	}
	tag := p.nextCollTag(c)
	span := 1
	mask := 1
	for mask < n {
		if rel&mask == 0 {
			childRel := rel + mask
			if childRel < n {
				data, code := p.collRecv(c, abs(childRel), tag)
				if code != Success {
					return code
				}
				copy(region[span*blockSz:], data)
				childSpan := mask
				if childRel+childSpan > n {
					childSpan = n - childRel
				}
				span += childSpan
			}
		} else {
			if code := p.collSend(c, abs(rel-mask), tag, region[:span*blockSz]); code != Success {
				return code
			}
			return Success
		}
		mask <<= 1
	}
	// Only the root reaches here. Unscramble relative order into recvbuf.
	rt, code := p.lookupType(rtype)
	if code != Success {
		return code
	}
	if rcount*rt.t.Size() != blockSz {
		return ErrTruncate
	}
	for r := 0; r < n; r++ {
		relPos := (r - root + n) % n
		if _, err := rt.t.Unpack(region[relPos*blockSz:(relPos+1)*blockSz], rcount,
			recvbuf[r*rcount*rt.t.Extent():]); err != nil {
			return ErrBuffer
		}
	}
	return Success
}

// Scatter is the binomial mirror of Gather.
func (p *Proc) Scatter(sendbuf []byte, scount int, stype Handle,
	recvbuf []byte, rcount int, rtype Handle, root int, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	rt, code := p.lookupType(rtype)
	if code != Success {
		return code
	}
	n, me := c.size(), c.myPos
	if root < 0 || root >= n {
		return ErrRoot
	}
	blockSz := rcount * rt.t.Size()
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	tag := p.nextCollTag(c)
	region := make([]byte, n*blockSz)
	if me == root {
		st, code := p.lookupType(stype)
		if code != Success {
			return code
		}
		if scount*st.t.Size() != blockSz {
			return ErrTruncate
		}
		// Rotate into relative order while packing.
		for r := 0; r < n; r++ {
			relPos := (r - root + n) % n
			if _, err := st.t.Pack(sendbuf[r*scount*st.t.Extent():], scount,
				region[relPos*blockSz:(relPos+1)*blockSz]); err != nil {
				return ErrBuffer
			}
		}
	}
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			mySpan := mask
			if rel+mySpan > n {
				mySpan = n - rel
			}
			data, code := p.collRecv(c, abs(rel-mask), tag)
			if code != Success {
				return code
			}
			copy(region[rel*blockSz:(rel+mySpan)*blockSz], data)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask >= 1; mask >>= 1 {
		if rel+mask < n {
			child := rel + mask
			hi := rel + 2*mask
			if hi > n {
				hi = n
			}
			if code := p.collSend(c, abs(child), tag, region[child*blockSz:hi*blockSz]); code != Success {
				return code
			}
		}
	}
	if _, err := rt.t.Unpack(region[rel*blockSz:(rel+1)*blockSz], rcount, recvbuf); err != nil {
		return ErrBuffer
	}
	return Success
}

// Allgather uses recursive doubling on power-of-two communicators for
// short messages and a ring otherwise, MPICH's selection.
func (p *Proc) Allgather(sendbuf []byte, scount int, stype Handle,
	recvbuf []byte, rcount int, rtype Handle, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	st, code := p.lookupType(stype)
	if code != Success {
		return code
	}
	rt, code := p.lookupType(rtype)
	if code != Success {
		return code
	}
	n, me := c.size(), c.myPos
	blockSz := scount * st.t.Size()
	if rcount*rt.t.Size() != blockSz {
		return ErrTruncate
	}
	region := make([]byte, n*blockSz)
	if _, err := st.t.Pack(sendbuf, scount, region[me*blockSz:(me+1)*blockSz]); err != nil && scount > 0 {
		return ErrBuffer
	}
	tag := p.nextCollTag(c)
	isPow2 := n&(n-1) == 0
	if n > 1 && blockSz > 0 {
		if isPow2 && n*blockSz <= allgatherRDMax {
			code = p.allgatherRecDoubling(c, region, blockSz, tag)
		} else {
			code = p.allgatherRing(c, region, blockSz, tag)
		}
		if code != Success {
			return code
		}
	}
	for r := 0; r < n; r++ {
		if _, err := rt.t.Unpack(region[r*blockSz:(r+1)*blockSz], rcount,
			recvbuf[r*rcount*rt.t.Extent():]); err != nil {
			return ErrBuffer
		}
	}
	return Success
}

func (p *Proc) allgatherRecDoubling(c *commObj, region []byte, blockSz int, tag int32) int {
	n, me := c.size(), c.myPos
	round := int32(0)
	for dist := 1; dist < n; dist *= 2 {
		partner := me ^ dist
		base := me &^ (2*dist - 1)
		myLo := me &^ (dist - 1)
		partnerLo := partner &^ (dist - 1)
		data, code := p.collExchange(c, partner, partner, tag+round,
			region[myLo*blockSz:(myLo+dist)*blockSz])
		if code != Success {
			return code
		}
		copy(region[partnerLo*blockSz:], data)
		_ = base
		round++
	}
	return Success
}

func (p *Proc) allgatherRing(c *commObj, region []byte, blockSz int, tag int32) int {
	n, me := c.size(), c.myPos
	right := (me + 1) % n
	left := (me - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendBlock := (me - s + n) % n
		recvBlock := (me - s - 1 + n) % n
		data, code := p.collExchange(c, right, left, tag,
			region[sendBlock*blockSz:(sendBlock+1)*blockSz])
		if code != Success {
			return code
		}
		copy(region[recvBlock*blockSz:(recvBlock+1)*blockSz], data)
	}
	return Success
}

// Alltoall uses the Bruck algorithm for short blocks and pairwise
// exchanges for long ones, MPICH's selection.
func (p *Proc) Alltoall(sendbuf []byte, scount int, stype Handle,
	recvbuf []byte, rcount int, rtype Handle, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	st, code := p.lookupType(stype)
	if code != Success {
		return code
	}
	rt, code := p.lookupType(rtype)
	if code != Success {
		return code
	}
	n, me := c.size(), c.myPos
	blockSz := scount * st.t.Size()
	if rcount*rt.t.Size() != blockSz {
		return ErrTruncate
	}
	// Pack per-destination blocks.
	out := make([]byte, n*blockSz)
	for d := 0; d < n; d++ {
		if _, err := st.t.Pack(sendbuf[d*scount*st.t.Extent():], scount,
			out[d*blockSz:(d+1)*blockSz]); err != nil && scount > 0 {
			return ErrBuffer
		}
	}
	in := make([]byte, n*blockSz)
	tag := p.nextCollTag(c)
	switch {
	case n == 1 || blockSz == 0:
		copy(in, out)
	case blockSz <= alltoallBruckMax:
		if code := p.alltoallBruck(c, out, in, blockSz, tag); code != Success {
			return code
		}
	case blockSz < alltoallPairwiseMin:
		if code := p.alltoallOverlap(c, out, in, blockSz, tag); code != Success {
			return code
		}
	default:
		if code := p.alltoallPairwise(c, out, in, blockSz, tag); code != Success {
			return code
		}
	}
	_ = me
	for r := 0; r < n; r++ {
		if _, err := rt.t.Unpack(in[r*blockSz:(r+1)*blockSz], rcount,
			recvbuf[r*rcount*rt.t.Extent():]); err != nil {
			return ErrBuffer
		}
	}
	return Success
}

// alltoallBruck runs in ceil(log2 n) rounds, each moving all blocks whose
// (rotated) index has the round's bit set.
func (p *Proc) alltoallBruck(c *commObj, out, in []byte, blockSz int, tag int32) int {
	n, me := c.size(), c.myPos
	// Phase 1: local rotation; tmp[i] = block destined to (me+i) mod n.
	tmp := make([]byte, n*blockSz)
	for i := 0; i < n; i++ {
		d := (me + i) % n
		copy(tmp[i*blockSz:(i+1)*blockSz], out[d*blockSz:(d+1)*blockSz])
	}
	round := int32(0)
	scratch := make([]byte, n*blockSz)
	for pow := 1; pow < n; pow <<= 1 {
		var idxs []int
		for i := 0; i < n; i++ {
			if i&pow != 0 {
				idxs = append(idxs, i)
			}
		}
		sendbuf := scratch[:0]
		for _, i := range idxs {
			sendbuf = append(sendbuf, tmp[i*blockSz:(i+1)*blockSz]...)
		}
		to := (me + pow) % n
		from := (me - pow + n) % n
		data, code := p.collExchange(c, to, from, tag+round, sendbuf)
		if code != Success {
			return code
		}
		for j, i := range idxs {
			copy(tmp[i*blockSz:(i+1)*blockSz], data[j*blockSz:(j+1)*blockSz])
		}
		round++
	}
	// Phase 3: block from source s sits at index (me-s+n) mod n.
	for s := 0; s < n; s++ {
		i := (me - s + n) % n
		copy(in[s*blockSz:(s+1)*blockSz], tmp[i*blockSz:(i+1)*blockSz])
	}
	return Success
}

// alltoallOverlap is MPICH's medium-message algorithm: post every receive,
// start every send nonblocking, then drain — maximal overlap across peers.
func (p *Proc) alltoallOverlap(c *commObj, out, in []byte, blockSz int, tag int32) int {
	n, me := c.size(), c.myPos
	copy(in[me*blockSz:(me+1)*blockSz], out[me*blockSz:(me+1)*blockSz])
	recvs := make([]*request, 0, n-1)
	for i := 1; i < n; i++ {
		from := (me - i + n) % n
		r := &request{
			kind: reqRecv, comm: c, raw: true,
			srcWorld: c.ranks[from], tag: int(tag), cid: c.cid | collCIDBit,
		}
		p.postRecv(r)
		recvs = append(recvs, r)
	}
	sends := make([]*request, 0, n-1)
	for i := 1; i < n; i++ {
		to := (me + i) % n
		if s := p.sendInternal(out[to*blockSz:(to+1)*blockSz], c.ranks[to], tag, c.cid|collCIDBit); s != nil {
			sends = append(sends, s)
		}
	}
	for i, r := range recvs {
		for !r.done {
			if code := p.progress(true); code != Success {
				return code
			}
		}
		if r.code != Success {
			return r.code
		}
		from := (me - i - 1 + n) % n
		copy(in[from*blockSz:(from+1)*blockSz], r.rawOut)
	}
	for _, s := range sends {
		for !s.done {
			if code := p.progress(true); code != Success {
				return code
			}
		}
	}
	return Success
}

// alltoallPairwise exchanges with peers at increasing offsets; step k
// pairs rank r with r+k (send) and r-k (recv).
func (p *Proc) alltoallPairwise(c *commObj, out, in []byte, blockSz int, tag int32) int {
	n, me := c.size(), c.myPos
	copy(in[me*blockSz:(me+1)*blockSz], out[me*blockSz:(me+1)*blockSz])
	for k := 1; k < n; k++ {
		to := (me + k) % n
		from := (me - k + n) % n
		data, code := p.collExchange(c, to, from, tag,
			out[to*blockSz:(to+1)*blockSz])
		if code != Success {
			return code
		}
		copy(in[from*blockSz:(from+1)*blockSz], data)
	}
	return Success
}
