package mpich

import (
	"sort"

	"repro/internal/abi"
	"repro/internal/ops"
	"repro/internal/types"
)

// CommSize mirrors MPI_Comm_size.
func (p *Proc) CommSize(comm Handle) (int, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return 0, code
	}
	return c.size(), Success
}

// CommRank mirrors MPI_Comm_rank.
func (p *Proc) CommRank(comm Handle) (int, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return 0, code
	}
	return c.myPos, Success
}

// CommDup duplicates a communicator into a fresh context id. Like the real
// call it is collective; the barrier models the agreement round-trip and
// enforces that every member participates.
func (p *Proc) CommDup(comm Handle) (Handle, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return CommNull, code
	}
	if code := p.Barrier(comm); code != Success {
		return CommNull, code
	}
	c.chldSeq++
	nc := &commObj{
		handle: p.newCommHandle(),
		cid:    deriveCID(c.cid, c.chldSeq),
		ranks:  append([]int(nil), c.ranks...),
		myPos:  c.myPos,
	}
	p.installComm(nc)
	return nc.handle, Success
}

// CommSplit partitions a communicator by color, ordering members by (key,
// parent rank). Color Undefined yields CommNull. The membership exchange
// runs as an allgather on the parent, like MPICH's implementation.
func (p *Proc) CommSplit(comm Handle, color, key int) (Handle, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return CommNull, code
	}
	n := c.size()
	// Allgather (color, key) pairs over the parent communicator.
	mine := abi.Int64Bytes([]int64{int64(color), int64(key)})
	all := make([]byte, n*16)
	if code := p.Allgather(mine, 16, TypeHandle(types.KindByte),
		all, 16, TypeHandle(types.KindByte), comm); code != Success {
		return CommNull, code
	}
	c.chldSeq++
	ordinal := c.chldSeq
	if color == Undefined {
		return CommNull, Success
	}
	type member struct{ key, parentRank int }
	var members []member
	for r := 0; r < n; r++ {
		vals := abi.Int64sOf(all[r*16 : (r+1)*16])
		if int(vals[0]) == color {
			members = append(members, member{key: int(vals[1]), parentRank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].parentRank < members[j].parentRank
	})
	ranks := make([]int, len(members))
	myPos := -1
	for i, m := range members {
		ranks[i] = c.ranks[m.parentRank]
		if m.parentRank == c.myPos {
			myPos = i
		}
	}
	nc := &commObj{
		handle: p.newCommHandle(),
		cid:    deriveCID(c.cid, ordinal<<8|uint32(color&0xff)),
		ranks:  ranks,
		myPos:  myPos,
	}
	p.installComm(nc)
	return nc.handle, Success
}

// CommCreate builds a communicator from a subgroup; callers outside the
// group receive CommNull. Collective over the parent.
func (p *Proc) CommCreate(comm, group Handle) (Handle, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return CommNull, code
	}
	g, ok := p.groups[group]
	if !ok || group.isNull() {
		return CommNull, ErrGroup
	}
	if code := p.Barrier(comm); code != Success {
		return CommNull, code
	}
	c.chldSeq++
	myPos := -1
	for i, w := range g.ranks {
		if w == p.rank {
			myPos = i
		}
	}
	if myPos == -1 {
		return CommNull, Success
	}
	nc := &commObj{
		handle: p.newCommHandle(),
		cid:    deriveCID(c.cid, c.chldSeq|0x40000000),
		ranks:  append([]int(nil), g.ranks...),
		myPos:  myPos,
	}
	p.installComm(nc)
	return nc.handle, Success
}

// CommGroup extracts a communicator's group.
func (p *Proc) CommGroup(comm Handle) (Handle, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return GroupNull, code
	}
	g := &groupObj{
		handle: p.newGroupHandle(),
		ranks:  append([]int(nil), c.ranks...),
		myPos:  c.myPos,
	}
	p.groups[g.handle] = g
	return g.handle, Success
}

// CommFree releases a dynamic communicator. Predefined communicators are
// rejected, as in MPI.
func (p *Proc) CommFree(comm Handle) int {
	if comm == CommWorld || comm == CommSelf {
		return ErrComm
	}
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	delete(p.comms, comm)
	delete(p.cidIndex, c.cid)
	return Success
}

// GroupSize mirrors MPI_Group_size.
func (p *Proc) GroupSize(group Handle) (int, int) {
	g, ok := p.groups[group]
	if group == GroupEmpty {
		return 0, Success
	}
	if !ok || group.isNull() {
		return 0, ErrGroup
	}
	return len(g.ranks), Success
}

// GroupRank mirrors MPI_Group_rank (Undefined when not a member).
func (p *Proc) GroupRank(group Handle) (int, int) {
	if group == GroupEmpty {
		return Undefined, Success
	}
	g, ok := p.groups[group]
	if !ok || group.isNull() {
		return 0, ErrGroup
	}
	if g.myPos < 0 {
		return Undefined, Success
	}
	return g.myPos, Success
}

func (p *Proc) lookupGroup(group Handle) (*groupObj, int) {
	if group == GroupEmpty {
		return &groupObj{handle: GroupEmpty, myPos: -1}, Success
	}
	g, ok := p.groups[group]
	if !ok || group.isNull() {
		return nil, ErrGroup
	}
	return g, Success
}

// GroupIncl selects the listed ranks into a new group, in order.
func (p *Proc) GroupIncl(group Handle, ranksIn []int) (Handle, int) {
	g, code := p.lookupGroup(group)
	if code != Success {
		return GroupNull, code
	}
	if len(ranksIn) == 0 {
		return GroupEmpty, Success
	}
	worlds := make([]int, len(ranksIn))
	myPos := -1
	for i, r := range ranksIn {
		if r < 0 || r >= len(g.ranks) {
			return GroupNull, ErrRank
		}
		worlds[i] = g.ranks[r]
		if worlds[i] == p.rank {
			myPos = i
		}
	}
	ng := &groupObj{handle: p.newGroupHandle(), ranks: worlds, myPos: myPos}
	p.groups[ng.handle] = ng
	return ng.handle, Success
}

// GroupExcl removes the listed ranks from a group, preserving order.
func (p *Proc) GroupExcl(group Handle, ranksOut []int) (Handle, int) {
	g, code := p.lookupGroup(group)
	if code != Success {
		return GroupNull, code
	}
	excl := make(map[int]bool, len(ranksOut))
	for _, r := range ranksOut {
		if r < 0 || r >= len(g.ranks) {
			return GroupNull, ErrRank
		}
		excl[r] = true
	}
	var worlds []int
	myPos := -1
	for i, w := range g.ranks {
		if excl[i] {
			continue
		}
		if w == p.rank {
			myPos = len(worlds)
		}
		worlds = append(worlds, w)
	}
	if len(worlds) == 0 {
		return GroupEmpty, Success
	}
	ng := &groupObj{handle: p.newGroupHandle(), ranks: worlds, myPos: myPos}
	p.groups[ng.handle] = ng
	return ng.handle, Success
}

// GroupTranslateRanks maps ranks in g1 to their ranks in g2 (Undefined when
// absent), mirroring MPI_Group_translate_ranks.
func (p *Proc) GroupTranslateRanks(g1 Handle, ranks []int, g2 Handle) ([]int, int) {
	a, code := p.lookupGroup(g1)
	if code != Success {
		return nil, code
	}
	b, code := p.lookupGroup(g2)
	if code != Success {
		return nil, code
	}
	out := make([]int, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= len(a.ranks) {
			return nil, ErrRank
		}
		out[i] = Undefined
		for j, w := range b.ranks {
			if w == a.ranks[r] {
				out[i] = j
				break
			}
		}
	}
	return out, Success
}

// GroupFree releases a dynamic group.
func (p *Proc) GroupFree(group Handle) int {
	if group == GroupEmpty {
		return Success
	}
	if _, ok := p.groups[group]; !ok || group.isNull() {
		return ErrGroup
	}
	delete(p.groups, group)
	return Success
}

// lookupTypeAny permits uncommitted datatypes (constructor inputs).
func (p *Proc) lookupTypeAny(h Handle) (*typeObj, int) {
	t, ok := p.dtypes[h]
	if !ok || h.isNull() {
		return nil, ErrType
	}
	return t, Success
}

// TypeContiguous mirrors MPI_Type_contiguous.
func (p *Proc) TypeContiguous(count int, inner Handle) (Handle, int) {
	it, code := p.lookupTypeAny(inner)
	if code != Success {
		return DatatypeNull, code
	}
	t, err := types.Contiguous(count, it.t)
	if err != nil {
		return DatatypeNull, ErrArg
	}
	h := p.newTypeHandle()
	p.dtypes[h] = &typeObj{handle: h, t: t}
	return h, Success
}

// TypeVector mirrors MPI_Type_vector.
func (p *Proc) TypeVector(count, blocklen, stride int, inner Handle) (Handle, int) {
	it, code := p.lookupTypeAny(inner)
	if code != Success {
		return DatatypeNull, code
	}
	t, err := types.Vector(count, blocklen, stride, it.t)
	if err != nil {
		return DatatypeNull, ErrArg
	}
	h := p.newTypeHandle()
	p.dtypes[h] = &typeObj{handle: h, t: t}
	return h, Success
}

// TypeIndexed mirrors MPI_Type_indexed.
func (p *Proc) TypeIndexed(blocklens, displs []int, inner Handle) (Handle, int) {
	it, code := p.lookupTypeAny(inner)
	if code != Success {
		return DatatypeNull, code
	}
	t, err := types.Indexed(blocklens, displs, it.t)
	if err != nil {
		return DatatypeNull, ErrArg
	}
	h := p.newTypeHandle()
	p.dtypes[h] = &typeObj{handle: h, t: t}
	return h, Success
}

// TypeCreateStruct mirrors MPI_Type_create_struct. Member types must be
// committed first (our engine's flattening requirement).
func (p *Proc) TypeCreateStruct(blocklens, displs []int, typs []Handle) (Handle, int) {
	members := make([]*types.Type, len(typs))
	for i, th := range typs {
		tt, code := p.lookupTypeAny(th)
		if code != Success {
			return DatatypeNull, code
		}
		if err := tt.t.Commit(); err != nil {
			return DatatypeNull, ErrType
		}
		members[i] = tt.t
	}
	t, err := types.Struct(blocklens, displs, members)
	if err != nil {
		return DatatypeNull, ErrArg
	}
	h := p.newTypeHandle()
	p.dtypes[h] = &typeObj{handle: h, t: t}
	return h, Success
}

// TypeCommit mirrors MPI_Type_commit.
func (p *Proc) TypeCommit(dtype Handle) int {
	t, code := p.lookupTypeAny(dtype)
	if code != Success {
		return code
	}
	if err := t.t.Commit(); err != nil {
		return ErrType
	}
	return Success
}

// TypeFree releases a dynamic datatype; predefined types are rejected.
func (p *Proc) TypeFree(dtype Handle) int {
	t, code := p.lookupTypeAny(dtype)
	if code != Success {
		return code
	}
	if t.prim.Valid() {
		return ErrType
	}
	delete(p.dtypes, dtype)
	return Success
}

// TypeSize mirrors MPI_Type_size (committing lazily for queries).
func (p *Proc) TypeSize(dtype Handle) (int, int) {
	t, code := p.lookupTypeAny(dtype)
	if code != Success {
		return 0, code
	}
	if err := t.t.Commit(); err != nil {
		return 0, ErrType
	}
	return t.t.Size(), Success
}

// TypeExtent mirrors MPI_Type_get_extent.
func (p *Proc) TypeExtent(dtype Handle) (int, int) {
	t, code := p.lookupTypeAny(dtype)
	if code != Success {
		return 0, code
	}
	if err := t.t.Commit(); err != nil {
		return 0, ErrType
	}
	return t.t.Extent(), Success
}

// GetCount mirrors MPI_Get_count.
func (p *Proc) GetCount(st *Status, dtype Handle) (int, int) {
	t, code := p.lookupTypeAny(dtype)
	if code != Success {
		return 0, code
	}
	if err := t.t.Commit(); err != nil {
		return 0, ErrType
	}
	sz := t.t.Size()
	if sz == 0 {
		return 0, ErrType
	}
	bytes := st.CountBytes()
	if bytes%uint64(sz) != 0 {
		return Undefined, Success
	}
	return int(bytes / uint64(sz)), Success
}

// OpCreate registers a user reduction operator by registry name (see
// ops.RegisterUser); named registration is what lets user ops survive a
// checkpoint/restart.
func (p *Proc) OpCreate(name string, commute bool) (Handle, int) {
	if _, _, err := ops.LookupUser(name); err != nil {
		return OpNull, ErrOp
	}
	h := p.newOpHandle()
	p.userOps[h] = &opObj{handle: h, user: name, commute: commute}
	return h, Success
}

// OpFree releases a user operator; predefined operators are rejected.
func (p *Proc) OpFree(op Handle) int {
	o, code := p.lookupOp(op)
	if code != Success {
		return code
	}
	if o.user == "" {
		return ErrOp
	}
	delete(p.userOps, op)
	return Success
}
