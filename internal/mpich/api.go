package mpich

import (
	"repro/internal/mpicore"
)

// This file is MPICH's public MPI surface: every function decodes the
// package's native handles, delegates to the shared mpicore runtime, and
// re-encodes results. The runtime was constructed with MPICH's constant
// and error-code tables, so codes and sentinels come back already in
// MPICH's vocabulary.

func fillProcNullStatus(st *Status) {
	if st == nil {
		return
	}
	st.Source = ProcNull
	st.Tag = AnyTag
	st.Error = Success
	st.setCount(0)
}

// Send is blocking standard-mode MPI_Send.
func (p *Proc) Send(buf []byte, count int, dtype Handle, dest, tag int, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	dt, code := p.lookupType(dtype)
	if code != Success {
		return code
	}
	return p.rt.Send(buf, count, dt, dest, tag, c)
}

// Recv is blocking MPI_Recv.
func (p *Proc) Recv(buf []byte, count int, dtype Handle, source, tag int, comm Handle, st *Status) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	dt, code := p.lookupType(dtype)
	if code != Success {
		return code
	}
	var cs mpicore.Status
	code = p.rt.Recv(buf, count, dt, source, tag, c, &cs)
	if st != nil {
		*st = nativeStatus(&cs)
	}
	return code
}

// Isend is nonblocking MPI_Isend. The returned request must be completed
// with Wait/Test/Waitall.
func (p *Proc) Isend(buf []byte, count int, dtype Handle, dest, tag int, comm Handle) (Handle, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return RequestNull, code
	}
	dt, code := p.lookupType(dtype)
	if code != Success {
		return RequestNull, code
	}
	r, code := p.rt.Isend(buf, count, dt, dest, tag, c)
	if code != Success {
		return RequestNull, code
	}
	h := p.newReqHandle()
	p.reqs[h] = r
	return h, Success
}

// Irecv is nonblocking MPI_Irecv.
func (p *Proc) Irecv(buf []byte, count int, dtype Handle, source, tag int, comm Handle) (Handle, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return RequestNull, code
	}
	dt, code := p.lookupType(dtype)
	if code != Success {
		return RequestNull, code
	}
	r, code := p.rt.Irecv(buf, count, dt, source, tag, c)
	if code != Success {
		return RequestNull, code
	}
	h := p.newReqHandle()
	p.reqs[h] = r
	return h, Success
}

// Wait completes one request, freeing it.
func (p *Proc) Wait(req Handle, st *Status) int {
	if req == RequestNull {
		fillProcNullStatus(st)
		return Success
	}
	r, ok := p.reqs[req]
	if !ok {
		return ErrRequest
	}
	var cs mpicore.Status
	code := p.rt.Wait(r, &cs)
	if !r.Done() {
		return code // progress failed; the request stays live
	}
	delete(p.reqs, req)
	if st != nil {
		*st = nativeStatus(&cs)
	}
	return code
}

// Test polls one request; outcome=(completed, code). A completed request
// is freed.
func (p *Proc) Test(req Handle, st *Status) (bool, int) {
	if req == RequestNull {
		fillProcNullStatus(st)
		return true, Success
	}
	r, ok := p.reqs[req]
	if !ok {
		return false, ErrRequest
	}
	var cs mpicore.Status
	done, code := p.rt.Test(r, &cs)
	if !done {
		return false, code
	}
	delete(p.reqs, req)
	if st != nil {
		*st = nativeStatus(&cs)
	}
	return true, code
}

// Waitall completes a set of requests. statuses may be nil or match
// len(reqs).
func (p *Proc) Waitall(reqs []Handle, statuses []Status) int {
	if statuses != nil && len(statuses) != len(reqs) {
		return ErrArg
	}
	rc := Success
	for i, h := range reqs {
		var st Status
		code := p.Wait(h, &st)
		if code != Success {
			rc = code
		}
		if statuses != nil {
			statuses[i] = st
		}
	}
	return rc
}

// Sendrecv posts the receive, runs the send, then completes the receive —
// the deadlock-free composite MPI_Sendrecv.
func (p *Proc) Sendrecv(sendbuf []byte, scount int, stype Handle, dest, stag int,
	recvbuf []byte, rcount int, rtype Handle, source, rtag int,
	comm Handle, st *Status) int {
	rreq, code := p.Irecv(recvbuf, rcount, rtype, source, rtag, comm)
	if code != Success {
		return code
	}
	if code := p.Send(sendbuf, scount, stype, dest, stag, comm); code != Success {
		return code
	}
	return p.Wait(rreq, st)
}

// Probe mirrors MPI_Probe: block until a matching message is pending.
func (p *Proc) Probe(source, tag int, comm Handle, st *Status) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	var cs mpicore.Status
	code = p.rt.Probe(source, tag, c, &cs)
	if code == Success && st != nil {
		*st = nativeStatus(&cs)
	}
	return code
}

// Iprobe mirrors MPI_Iprobe: poll for a matching pending message.
func (p *Proc) Iprobe(source, tag int, comm Handle, st *Status) (bool, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return false, code
	}
	var cs mpicore.Status
	found, code := p.rt.Iprobe(source, tag, c, &cs)
	if found && st != nil {
		*st = nativeStatus(&cs)
	}
	return found, code
}

// Barrier uses MPICH's dissemination algorithm (see the policy in
// proc.go).
func (p *Proc) Barrier(comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	return p.rt.Barrier(c)
}

// Bcast uses binomial trees for short messages and a scatter plus ring
// allgather for long ones, MPICH's classic selection.
func (p *Proc) Bcast(buf []byte, count int, dtype Handle, root int, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	dt, code := p.lookupType(dtype)
	if code != Success {
		return code
	}
	return p.rt.Bcast(buf, count, dt, root, c)
}

// Reduce uses a binomial tree (commutative operators).
func (p *Proc) Reduce(sendbuf, recvbuf []byte, count int, dtype, op Handle, root int, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	dt, code := p.lookupType(dtype)
	if code != Success {
		return code
	}
	o, code := p.lookupOp(op)
	if code != Success {
		return code
	}
	return p.rt.Reduce(sendbuf, recvbuf, count, dt, o, root, c)
}

// Allreduce selects recursive doubling for short messages and
// Rabenseifner's reduce-scatter/allgather for long power-of-two cases,
// like MPICH.
func (p *Proc) Allreduce(sendbuf, recvbuf []byte, count int, dtype, op Handle, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	dt, code := p.lookupType(dtype)
	if code != Success {
		return code
	}
	o, code := p.lookupOp(op)
	if code != Success {
		return code
	}
	return p.rt.Allreduce(sendbuf, recvbuf, count, dt, o, c)
}

// Gather uses MPICH's binomial tree: each subtree root forwards its
// aggregated block range to its parent.
func (p *Proc) Gather(sendbuf []byte, scount int, stype Handle,
	recvbuf []byte, rcount int, rtype Handle, root int, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	st, code := p.lookupType(stype)
	if code != Success {
		return code
	}
	rt, _ := p.lookupType(rtype) // validated by the runtime at the root
	return p.rt.Gather(sendbuf, scount, st, recvbuf, rcount, rt, root, c)
}

// Scatter is the binomial mirror of Gather.
func (p *Proc) Scatter(sendbuf []byte, scount int, stype Handle,
	recvbuf []byte, rcount int, rtype Handle, root int, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	rt, code := p.lookupType(rtype)
	if code != Success {
		return code
	}
	st, _ := p.lookupType(stype) // validated by the runtime at the root
	return p.rt.Scatter(sendbuf, scount, st, recvbuf, rcount, rt, root, c)
}

// Allgather uses recursive doubling on power-of-two communicators for
// short messages and a ring otherwise, MPICH's selection.
func (p *Proc) Allgather(sendbuf []byte, scount int, stype Handle,
	recvbuf []byte, rcount int, rtype Handle, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	st, code := p.lookupType(stype)
	if code != Success {
		return code
	}
	rt, code := p.lookupType(rtype)
	if code != Success {
		return code
	}
	return p.rt.Allgather(sendbuf, scount, st, recvbuf, rcount, rt, c)
}

// Alltoall uses the Bruck algorithm for short blocks, nonblocking overlap
// for medium ones and pairwise exchanges for long ones, MPICH's selection.
func (p *Proc) Alltoall(sendbuf []byte, scount int, stype Handle,
	recvbuf []byte, rcount int, rtype Handle, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	st, code := p.lookupType(stype)
	if code != Success {
		return code
	}
	rt, code := p.lookupType(rtype)
	if code != Success {
		return code
	}
	return p.rt.Alltoall(sendbuf, scount, st, recvbuf, rcount, rt, c)
}

// CommSize mirrors MPI_Comm_size.
func (p *Proc) CommSize(comm Handle) (int, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return 0, code
	}
	return c.Size(), Success
}

// CommRank mirrors MPI_Comm_rank.
func (p *Proc) CommRank(comm Handle) (int, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return 0, code
	}
	return c.MyPos, Success
}

// CommDup duplicates a communicator into a fresh context id (collective).
func (p *Proc) CommDup(comm Handle) (Handle, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return CommNull, code
	}
	nc, code := p.rt.CommDup(c)
	if code != Success {
		return CommNull, code
	}
	h := p.newCommHandle()
	p.comms[h] = nc
	return h, Success
}

// CommSplit partitions a communicator by color, ordering members by (key,
// parent rank). Color Undefined yields CommNull (collective).
func (p *Proc) CommSplit(comm Handle, color, key int) (Handle, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return CommNull, code
	}
	nc, code := p.rt.CommSplit(c, color, key)
	if code != Success || nc == nil {
		return CommNull, code
	}
	h := p.newCommHandle()
	p.comms[h] = nc
	return h, Success
}

// CommCreate builds a communicator from a subgroup; callers outside the
// group receive CommNull. Collective over the parent.
func (p *Proc) CommCreate(comm, group Handle) (Handle, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return CommNull, code
	}
	g, ok := p.groups[group]
	if !ok || group.isNull() {
		return CommNull, ErrGroup
	}
	nc, code := p.rt.CommCreate(c, g)
	if code != Success || nc == nil {
		return CommNull, code
	}
	h := p.newCommHandle()
	p.comms[h] = nc
	return h, Success
}

// CommGroup extracts a communicator's group.
func (p *Proc) CommGroup(comm Handle) (Handle, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return GroupNull, code
	}
	g, code := p.rt.CommGroup(c)
	if code != Success {
		return GroupNull, code
	}
	h := p.newGroupHandle()
	p.groups[h] = g
	return h, Success
}

// CommFree releases a dynamic communicator. Predefined communicators are
// rejected, as in MPI.
func (p *Proc) CommFree(comm Handle) int {
	if comm == CommWorld || comm == CommSelf {
		return ErrComm
	}
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	if code := p.rt.CommFree(c); code != Success {
		return code
	}
	delete(p.comms, comm)
	return Success
}

// GroupSize mirrors MPI_Group_size.
func (p *Proc) GroupSize(group Handle) (int, int) {
	if group == GroupEmpty {
		return 0, Success
	}
	g, code := p.lookupGroup(group)
	if code != Success {
		return 0, code
	}
	return p.rt.GroupSize(g)
}

// GroupRank mirrors MPI_Group_rank (Undefined when not a member).
func (p *Proc) GroupRank(group Handle) (int, int) {
	g, code := p.lookupGroup(group)
	if code != Success {
		return 0, code
	}
	return p.rt.GroupRank(g)
}

// GroupIncl selects the listed ranks into a new group, in order.
func (p *Proc) GroupIncl(group Handle, ranksIn []int) (Handle, int) {
	g, code := p.lookupGroup(group)
	if code != Success {
		return GroupNull, code
	}
	if len(ranksIn) == 0 {
		return GroupEmpty, Success
	}
	ng, code := p.rt.GroupIncl(g, ranksIn)
	if code != Success {
		return GroupNull, code
	}
	h := p.newGroupHandle()
	p.groups[h] = ng
	return h, Success
}

// GroupExcl removes the listed ranks from a group, preserving order.
func (p *Proc) GroupExcl(group Handle, ranksOut []int) (Handle, int) {
	g, code := p.lookupGroup(group)
	if code != Success {
		return GroupNull, code
	}
	ng, code := p.rt.GroupExcl(g, ranksOut)
	if code != Success {
		return GroupNull, code
	}
	if len(ng.Ranks) == 0 {
		return GroupEmpty, Success
	}
	h := p.newGroupHandle()
	p.groups[h] = ng
	return h, Success
}

// GroupTranslateRanks maps ranks in g1 to their ranks in g2 (Undefined
// when absent), mirroring MPI_Group_translate_ranks.
func (p *Proc) GroupTranslateRanks(g1 Handle, ranks []int, g2 Handle) ([]int, int) {
	a, code := p.lookupGroup(g1)
	if code != Success {
		return nil, code
	}
	b, code := p.lookupGroup(g2)
	if code != Success {
		return nil, code
	}
	return p.rt.GroupTranslateRanks(a, ranks, b)
}

// GroupFree releases a dynamic group.
func (p *Proc) GroupFree(group Handle) int {
	if group == GroupEmpty {
		return Success
	}
	if _, ok := p.groups[group]; !ok || group.isNull() {
		return ErrGroup
	}
	delete(p.groups, group)
	return Success
}

// TypeContiguous mirrors MPI_Type_contiguous.
func (p *Proc) TypeContiguous(count int, inner Handle) (Handle, int) {
	it, code := p.lookupType(inner)
	if code != Success {
		return DatatypeNull, code
	}
	t, code := p.rt.TypeContiguous(count, it)
	if code != Success {
		return DatatypeNull, code
	}
	h := p.newTypeHandle()
	p.dtypes[h] = t
	return h, Success
}

// TypeVector mirrors MPI_Type_vector.
func (p *Proc) TypeVector(count, blocklen, stride int, inner Handle) (Handle, int) {
	it, code := p.lookupType(inner)
	if code != Success {
		return DatatypeNull, code
	}
	t, code := p.rt.TypeVector(count, blocklen, stride, it)
	if code != Success {
		return DatatypeNull, code
	}
	h := p.newTypeHandle()
	p.dtypes[h] = t
	return h, Success
}

// TypeIndexed mirrors MPI_Type_indexed.
func (p *Proc) TypeIndexed(blocklens, displs []int, inner Handle) (Handle, int) {
	it, code := p.lookupType(inner)
	if code != Success {
		return DatatypeNull, code
	}
	t, code := p.rt.TypeIndexed(blocklens, displs, it)
	if code != Success {
		return DatatypeNull, code
	}
	h := p.newTypeHandle()
	p.dtypes[h] = t
	return h, Success
}

// TypeCreateStruct mirrors MPI_Type_create_struct. Member types must be
// committed first (our engine's flattening requirement).
func (p *Proc) TypeCreateStruct(blocklens, displs []int, typs []Handle) (Handle, int) {
	members := make([]*mpicore.Type, len(typs))
	for i, th := range typs {
		tt, code := p.lookupType(th)
		if code != Success {
			return DatatypeNull, code
		}
		members[i] = tt
	}
	t, code := p.rt.TypeCreateStruct(blocklens, displs, members)
	if code != Success {
		return DatatypeNull, code
	}
	h := p.newTypeHandle()
	p.dtypes[h] = t
	return h, Success
}

// TypeCommit mirrors MPI_Type_commit.
func (p *Proc) TypeCommit(dtype Handle) int {
	t, code := p.lookupType(dtype)
	if code != Success {
		return code
	}
	return p.rt.TypeCommit(t)
}

// TypeFree releases a dynamic datatype; predefined types are rejected.
func (p *Proc) TypeFree(dtype Handle) int {
	t, code := p.lookupType(dtype)
	if code != Success {
		return code
	}
	if code := p.rt.TypeFree(t); code != Success {
		return code
	}
	delete(p.dtypes, dtype)
	return Success
}

// TypeSize mirrors MPI_Type_size (committing lazily for queries).
func (p *Proc) TypeSize(dtype Handle) (int, int) {
	t, code := p.lookupType(dtype)
	if code != Success {
		return 0, code
	}
	return p.rt.TypeSize(t)
}

// TypeExtent mirrors MPI_Type_get_extent.
func (p *Proc) TypeExtent(dtype Handle) (int, int) {
	t, code := p.lookupType(dtype)
	if code != Success {
		return 0, code
	}
	return p.rt.TypeExtent(t)
}

// GetCount mirrors MPI_Get_count.
func (p *Proc) GetCount(st *Status, dtype Handle) (int, int) {
	t, code := p.lookupType(dtype)
	if code != Success {
		return 0, code
	}
	return p.rt.GetCount(st.CountBytes(), t)
}

// OpCreate registers a user reduction operator by registry name (see
// ops.RegisterUser); named registration is what lets user ops survive a
// checkpoint/restart.
func (p *Proc) OpCreate(name string, commute bool) (Handle, int) {
	o, code := p.rt.OpCreate(name, commute)
	if code != Success {
		return OpNull, code
	}
	h := p.newOpHandle()
	p.userOps[h] = o
	return h, Success
}

// OpFree releases a user operator; predefined operators are rejected.
func (p *Proc) OpFree(op Handle) int {
	o, code := p.lookupOp(op)
	if code != Success {
		return code
	}
	if code := p.rt.OpFree(o); code != Success {
		return code
	}
	delete(p.userOps, op)
	return Success
}

// CommRevoke mirrors MPIX_Comm_revoke.
func (p *Proc) CommRevoke(comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	return p.rt.CommRevoke(c)
}

// CommShrink mirrors MPIX_Comm_shrink: a survivors-only communicator,
// derived fault-tolerantly (it works on revoked communicators).
func (p *Proc) CommShrink(comm Handle) (Handle, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return CommNull, code
	}
	nc, code := p.rt.CommShrink(c)
	if code != Success {
		return CommNull, code
	}
	h := p.newCommHandle()
	p.comms[h] = nc
	return h, Success
}

// CommAgree mirrors MPIX_Comm_agree: fault-tolerant agreement returning
// the bitwise AND of living participants' flags.
func (p *Proc) CommAgree(comm Handle, flag uint64) (uint64, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return 0, code
	}
	return p.rt.CommAgree(c, flag)
}

// CommFailureAck mirrors MPIX_Comm_failure_ack.
func (p *Proc) CommFailureAck(comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	return p.rt.CommFailureAck(c)
}

// CommFailureGetAcked mirrors MPIX_Comm_failure_get_acked.
func (p *Proc) CommFailureGetAcked(comm Handle) (Handle, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return GroupNull, code
	}
	g, code := p.rt.CommFailureGetAcked(c)
	if code != Success {
		return GroupNull, code
	}
	h := p.newGroupHandle()
	p.groups[h] = g
	return h, Success
}
