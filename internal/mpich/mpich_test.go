package mpich

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/ops"
	"repro/internal/simnet"
	"repro/internal/types"
)

// runSPMD launches fn on n ranks and fails the test on error or timeout.
func runSPMD(t *testing.T, n int, fn func(p *Proc) error) {
	t.Helper()
	w, err := fabric.NewWorld(simnet.SingleNode(n))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := fn(Init(w, r)); err != nil {
				errs <- fmt.Errorf("rank %d: %w", r, err)
				w.Close() // release peers blocked in Recv
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SPMD test timed out (likely deadlock)")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func codef(code int, op string) error {
	if code != Success {
		return fmt.Errorf("%s failed: %s (code %d)", op, ErrorString(code), code)
	}
	return nil
}

func TestSendRecvEager(t *testing.T) {
	runSPMD(t, 2, func(p *Proc) error {
		ft64 := TypeHandle(types.KindFloat64)
		if p.Rank() == 0 {
			buf := abi.Float64Bytes([]float64{1.5, -2.5, 3.25})
			return codef(p.Send(buf, 3, ft64, 1, 7, CommWorld), "send")
		}
		buf := make([]byte, 24)
		var st Status
		if err := codef(p.Recv(buf, 3, ft64, 0, 7, CommWorld, &st), "recv"); err != nil {
			return err
		}
		got := abi.Float64sOf(buf)
		if got[0] != 1.5 || got[1] != -2.5 || got[2] != 3.25 {
			return fmt.Errorf("payload corrupted: %v", got)
		}
		if st.Source != 0 || st.Tag != 7 || st.CountBytes() != 24 {
			return fmt.Errorf("status wrong: %+v", st)
		}
		return nil
	})
}

func TestSendRecvRendezvous(t *testing.T) {
	const n = 64 * 1024 // above eagerMax
	runSPMD(t, 2, func(p *Proc) error {
		bt := TypeHandle(types.KindByte)
		if p.Rank() == 0 {
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(i * 31)
			}
			return codef(p.Send(buf, n, bt, 1, 3, CommWorld), "send")
		}
		buf := make([]byte, n)
		var st Status
		if err := codef(p.Recv(buf, n, bt, 0, 3, CommWorld, &st), "recv"); err != nil {
			return err
		}
		for i := range buf {
			if buf[i] != byte(i*31) {
				return fmt.Errorf("byte %d corrupted", i)
			}
		}
		if st.CountBytes() != n {
			return fmt.Errorf("count = %d, want %d", st.CountBytes(), n)
		}
		return nil
	})
}

func TestRecvWildcards(t *testing.T) {
	runSPMD(t, 3, func(p *Proc) error {
		bt := TypeHandle(types.KindByte)
		switch p.Rank() {
		case 1, 2:
			return codef(p.Send([]byte{byte(p.Rank())}, 1, bt, 0, 10+p.Rank(), CommWorld), "send")
		}
		seen := map[int32]bool{}
		for i := 0; i < 2; i++ {
			buf := make([]byte, 1)
			var st Status
			if err := codef(p.Recv(buf, 1, bt, AnySource, AnyTag, CommWorld, &st), "recv"); err != nil {
				return err
			}
			if int32(buf[0]) != st.Source {
				return fmt.Errorf("payload %d does not match source %d", buf[0], st.Source)
			}
			if st.Tag != 10+st.Source {
				return fmt.Errorf("tag %d for source %d", st.Tag, st.Source)
			}
			seen[st.Source] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("missing senders: %v", seen)
		}
		return nil
	})
}

func TestProcNull(t *testing.T) {
	runSPMD(t, 1, func(p *Proc) error {
		bt := TypeHandle(types.KindByte)
		if err := codef(p.Send(nil, 0, bt, ProcNull, 0, CommWorld), "send to PROC_NULL"); err != nil {
			return err
		}
		var st Status
		if err := codef(p.Recv(nil, 0, bt, ProcNull, 0, CommWorld, &st), "recv from PROC_NULL"); err != nil {
			return err
		}
		if st.Source != ProcNull || st.Tag != AnyTag || st.CountBytes() != 0 {
			return fmt.Errorf("PROC_NULL status wrong: %+v", st)
		}
		return nil
	})
}

func TestTruncation(t *testing.T) {
	runSPMD(t, 2, func(p *Proc) error {
		bt := TypeHandle(types.KindByte)
		if p.Rank() == 0 {
			return codef(p.Send(make([]byte, 100), 100, bt, 1, 0, CommWorld), "send")
		}
		var st Status
		code := p.Recv(make([]byte, 10), 10, bt, 0, 0, CommWorld, &st)
		if code != ErrTruncate {
			return fmt.Errorf("code = %d, want ErrTruncate", code)
		}
		if st.CountBytes() != 10 {
			return fmt.Errorf("truncated count = %d, want 10", st.CountBytes())
		}
		return nil
	})
}

func TestIsendIrecvWaitall(t *testing.T) {
	runSPMD(t, 4, func(p *Proc) error {
		it := TypeHandle(types.KindInt64)
		n := p.Size()
		me := p.Rank()
		right := (me + 1) % n
		left := (me - 1 + n) % n
		sendbuf := abi.Int64Bytes([]int64{int64(me * 100)})
		recvbuf := make([]byte, 8)
		var reqs []Handle
		r1, code := p.Irecv(recvbuf, 1, it, left, 5, CommWorld)
		if code != Success {
			return codef(code, "irecv")
		}
		r2, code := p.Isend(sendbuf, 1, it, right, 5, CommWorld)
		if code != Success {
			return codef(code, "isend")
		}
		reqs = append(reqs, r1, r2)
		sts := make([]Status, 2)
		if err := codef(p.Waitall(reqs, sts), "waitall"); err != nil {
			return err
		}
		got := abi.Int64sOf(recvbuf)[0]
		if got != int64(left*100) {
			return fmt.Errorf("ring recv = %d, want %d", got, left*100)
		}
		if sts[0].Source != int32(left) {
			return fmt.Errorf("status source = %d, want %d", sts[0].Source, left)
		}
		return nil
	})
}

func TestTestPolling(t *testing.T) {
	runSPMD(t, 2, func(p *Proc) error {
		bt := TypeHandle(types.KindByte)
		if p.Rank() == 0 {
			// Delay the send so rank 1 polls at least once.
			time.Sleep(20 * time.Millisecond)
			return codef(p.Send([]byte{42}, 1, bt, 1, 1, CommWorld), "send")
		}
		buf := make([]byte, 1)
		req, code := p.Irecv(buf, 1, bt, 0, 1, CommWorld)
		if code != Success {
			return codef(code, "irecv")
		}
		var st Status
		for {
			done, code := p.Test(req, &st)
			if code != Success {
				return codef(code, "test")
			}
			if done {
				break
			}
		}
		if buf[0] != 42 {
			return fmt.Errorf("payload = %d", buf[0])
		}
		return nil
	})
}

func TestSendrecvExchange(t *testing.T) {
	runSPMD(t, 2, func(p *Proc) error {
		it := TypeHandle(types.KindInt32)
		me := p.Rank()
		other := 1 - me
		sb := abi.Int32Bytes([]int32{int32(me + 1)})
		rb := make([]byte, 4)
		var st Status
		if err := codef(p.Sendrecv(sb, 1, it, other, 9, rb, 1, it, other, 9, CommWorld, &st), "sendrecv"); err != nil {
			return err
		}
		if got := abi.Int32sOf(rb)[0]; got != int32(other+1) {
			return fmt.Errorf("got %d, want %d", got, other+1)
		}
		return nil
	})
}

func TestBarrierCompletes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runSPMD(t, n, func(p *Proc) error {
				for i := 0; i < 3; i++ {
					if code := p.Barrier(CommWorld); code != Success {
						return codef(code, "barrier")
					}
				}
				return nil
			})
		})
	}
}

func TestBcastSizes(t *testing.T) {
	// Cross the binomial/scatter-ring threshold and odd communicator sizes.
	for _, n := range []int{2, 3, 4, 5, 8} {
		for _, count := range []int{1, 100, 5000} { // 8B, 800B, 40KB of float64
			t.Run(fmt.Sprintf("n=%d count=%d", n, count), func(t *testing.T) {
				runSPMD(t, n, func(p *Proc) error {
					ft := TypeHandle(types.KindFloat64)
					buf := make([]byte, count*8)
					if p.Rank() == 2%n {
						vals := make([]float64, count)
						for i := range vals {
							vals[i] = float64(i) * 0.5
						}
						abi.PutFloat64s(buf, vals)
					}
					if code := p.Bcast(buf, count, ft, 2%n, CommWorld); code != Success {
						return codef(code, "bcast")
					}
					got := abi.Float64sOf(buf)
					for i := range got {
						if got[i] != float64(i)*0.5 {
							return fmt.Errorf("element %d = %v, want %v", i, got[i], float64(i)*0.5)
						}
					}
					return nil
				})
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 3, 4, 6} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runSPMD(t, n, func(p *Proc) error {
				it := TypeHandle(types.KindInt64)
				sb := abi.Int64Bytes([]int64{int64(p.Rank() + 1), int64(10 * (p.Rank() + 1))})
				rb := make([]byte, 16)
				if code := p.Reduce(sb, rb, 2, it, OpHandle(ops.OpSum), 0, CommWorld); code != Success {
					return codef(code, "reduce")
				}
				if p.Rank() == 0 {
					want := int64(n * (n + 1) / 2)
					got := abi.Int64sOf(rb)
					if got[0] != want || got[1] != 10*want {
						return fmt.Errorf("reduce = %v, want [%d %d]", got, want, 10*want)
					}
				}
				return nil
			})
		})
	}
}

func TestAllreduceSizesAndShapes(t *testing.T) {
	// Exercise recursive doubling (small, non-pow2) and Rabenseifner
	// (large, pow2).
	for _, n := range []int{2, 3, 4, 5, 8} {
		for _, count := range []int{1, 3, 1024} { // 8B, 24B, 8KB
			t.Run(fmt.Sprintf("n=%d count=%d", n, count), func(t *testing.T) {
				runSPMD(t, n, func(p *Proc) error {
					it := TypeHandle(types.KindInt64)
					vals := make([]int64, count)
					for i := range vals {
						vals[i] = int64(p.Rank()+1) * int64(i+1)
					}
					sb := abi.Int64Bytes(vals)
					rb := make([]byte, count*8)
					if code := p.Allreduce(sb, rb, count, it, OpHandle(ops.OpSum), CommWorld); code != Success {
						return codef(code, "allreduce")
					}
					got := abi.Int64sOf(rb)
					tri := int64(n * (n + 1) / 2)
					for i := range got {
						if got[i] != tri*int64(i+1) {
							return fmt.Errorf("elem %d = %d, want %d", i, got[i], tri*int64(i+1))
						}
					}
					return nil
				})
			})
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	runSPMD(t, 5, func(p *Proc) error {
		it := TypeHandle(types.KindInt32)
		sb := abi.Int32Bytes([]int32{int32(p.Rank() * 7 % 5)})
		rb := make([]byte, 4)
		if code := p.Allreduce(sb, rb, 1, it, OpHandle(ops.OpMax), CommWorld); code != Success {
			return codef(code, "allreduce max")
		}
		if got := abi.Int32sOf(rb)[0]; got != 4 {
			return fmt.Errorf("max = %d, want 4", got)
		}
		return nil
	})
}

func TestGatherScatter(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runSPMD(t, n, func(p *Proc) error {
				it := TypeHandle(types.KindInt32)
				root := n - 1
				me := p.Rank()
				sb := abi.Int32Bytes([]int32{int32(me), int32(me * 10)})
				var rb []byte
				if me == root {
					rb = make([]byte, n*8)
				}
				if code := p.Gather(sb, 2, it, rb, 2, it, root, CommWorld); code != Success {
					return codef(code, "gather")
				}
				if me == root {
					got := abi.Int32sOf(rb)
					for r := 0; r < n; r++ {
						if got[2*r] != int32(r) || got[2*r+1] != int32(r*10) {
							return fmt.Errorf("gather block %d = %v", r, got[2*r:2*r+2])
						}
					}
				}
				// Scatter the gathered data back out.
				rb2 := make([]byte, 8)
				if code := p.Scatter(rb, 2, it, rb2, 2, it, root, CommWorld); code != Success {
					return codef(code, "scatter")
				}
				got := abi.Int32sOf(rb2)
				if got[0] != int32(me) || got[1] != int32(me*10) {
					return fmt.Errorf("scatter = %v, want [%d %d]", got, me, me*10)
				}
				return nil
			})
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{2, 4, 5} { // pow2 (recursive doubling) and odd (ring)
		for _, count := range []int{1, 2000} {
			t.Run(fmt.Sprintf("n=%d count=%d", n, count), func(t *testing.T) {
				runSPMD(t, n, func(p *Proc) error {
					it := TypeHandle(types.KindInt64)
					me := p.Rank()
					vals := make([]int64, count)
					for i := range vals {
						vals[i] = int64(me)*1000 + int64(i)
					}
					sb := abi.Int64Bytes(vals)
					rb := make([]byte, n*count*8)
					if code := p.Allgather(sb, count, it, rb, count, it, CommWorld); code != Success {
						return codef(code, "allgather")
					}
					got := abi.Int64sOf(rb)
					for r := 0; r < n; r++ {
						for i := 0; i < count; i++ {
							want := int64(r)*1000 + int64(i)
							if got[r*count+i] != want {
								return fmt.Errorf("block %d elem %d = %d, want %d", r, i, got[r*count+i], want)
							}
						}
					}
					return nil
				})
			})
		}
	}
}

func TestAlltoallBruckAndPairwise(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 8} {
		for _, count := range []int{1, 200} { // 8B blocks (Bruck), 1600B (pairwise)
			t.Run(fmt.Sprintf("n=%d count=%d", n, count), func(t *testing.T) {
				runSPMD(t, n, func(p *Proc) error {
					it := TypeHandle(types.KindInt64)
					me := p.Rank()
					vals := make([]int64, n*count)
					for d := 0; d < n; d++ {
						for i := 0; i < count; i++ {
							vals[d*count+i] = int64(me*1000000 + d*1000 + i)
						}
					}
					sb := abi.Int64Bytes(vals)
					rb := make([]byte, n*count*8)
					if code := p.Alltoall(sb, count, it, rb, count, it, CommWorld); code != Success {
						return codef(code, "alltoall")
					}
					got := abi.Int64sOf(rb)
					for s := 0; s < n; s++ {
						for i := 0; i < count; i++ {
							want := int64(s*1000000 + me*1000 + i)
							if got[s*count+i] != want {
								return fmt.Errorf("from %d elem %d = %d, want %d", s, i, got[s*count+i], want)
							}
						}
					}
					return nil
				})
			})
		}
	}
}

func TestCommDupIsolation(t *testing.T) {
	runSPMD(t, 2, func(p *Proc) error {
		dup, code := p.CommDup(CommWorld)
		if code != Success {
			return codef(code, "dup")
		}
		bt := TypeHandle(types.KindByte)
		me := p.Rank()
		if me == 0 {
			// Same peer+tag on two communicators must not cross-match.
			if code := p.Send([]byte{1}, 1, bt, 1, 0, CommWorld); code != Success {
				return codef(code, "send world")
			}
			if code := p.Send([]byte{2}, 1, bt, 1, 0, dup); code != Success {
				return codef(code, "send dup")
			}
			return nil
		}
		buf := make([]byte, 1)
		if code := p.Recv(buf, 1, bt, 0, 0, dup, nil); code != Success {
			return codef(code, "recv dup")
		}
		if buf[0] != 2 {
			return fmt.Errorf("dup recv = %d, want 2", buf[0])
		}
		if code := p.Recv(buf, 1, bt, 0, 0, CommWorld, nil); code != Success {
			return codef(code, "recv world")
		}
		if buf[0] != 1 {
			return fmt.Errorf("world recv = %d, want 1", buf[0])
		}
		return nil
	})
}

func TestCommSplit(t *testing.T) {
	runSPMD(t, 6, func(p *Proc) error {
		me := p.Rank()
		color := me % 2
		sub, code := p.CommSplit(CommWorld, color, -me) // reverse order by key
		if code != Success {
			return codef(code, "split")
		}
		sz, code := p.CommSize(sub)
		if code != Success {
			return codef(code, "size")
		}
		if sz != 3 {
			return fmt.Errorf("subcomm size = %d, want 3", sz)
		}
		rank, _ := p.CommRank(sub)
		// Keys are -me, so higher parent ranks come first.
		wantRank := map[int]int{0: 2, 2: 1, 4: 0, 1: 2, 3: 1, 5: 0}[me]
		if rank != wantRank {
			return fmt.Errorf("subcomm rank = %d, want %d", rank, wantRank)
		}
		// The subcommunicator must work for collectives.
		it := TypeHandle(types.KindInt64)
		sb := abi.Int64Bytes([]int64{int64(me)})
		rb := make([]byte, 8)
		if code := p.Allreduce(sb, rb, 1, it, OpHandle(ops.OpSum), sub); code != Success {
			return codef(code, "allreduce on split")
		}
		want := int64(0 + 2 + 4)
		if color == 1 {
			want = 1 + 3 + 5
		}
		if got := abi.Int64sOf(rb)[0]; got != want {
			return fmt.Errorf("split allreduce = %d, want %d", got, want)
		}
		return nil
	})
}

func TestCommSplitUndefined(t *testing.T) {
	runSPMD(t, 3, func(p *Proc) error {
		color := 0
		if p.Rank() == 1 {
			color = Undefined
		}
		sub, code := p.CommSplit(CommWorld, color, 0)
		if code != Success {
			return codef(code, "split")
		}
		if p.Rank() == 1 {
			if sub != CommNull {
				return fmt.Errorf("undefined color got %v, want CommNull", sub)
			}
			return nil
		}
		sz, _ := p.CommSize(sub)
		if sz != 2 {
			return fmt.Errorf("size = %d, want 2", sz)
		}
		return nil
	})
}

func TestGroupsAndCommCreate(t *testing.T) {
	runSPMD(t, 4, func(p *Proc) error {
		wg, code := p.CommGroup(CommWorld)
		if code != Success {
			return codef(code, "comm_group")
		}
		sub, code := p.GroupIncl(wg, []int{0, 2})
		if code != Success {
			return codef(code, "group_incl")
		}
		gsz, _ := p.GroupSize(sub)
		if gsz != 2 {
			return fmt.Errorf("group size = %d", gsz)
		}
		grank, _ := p.GroupRank(sub)
		wantRank := map[int]int{0: 0, 1: Undefined, 2: 1, 3: Undefined}[p.Rank()]
		if grank != wantRank {
			return fmt.Errorf("group rank = %d, want %d", grank, wantRank)
		}
		trans, code := p.GroupTranslateRanks(sub, []int{0, 1}, wg)
		if code != Success {
			return codef(code, "translate")
		}
		if trans[0] != 0 || trans[1] != 2 {
			return fmt.Errorf("translate = %v", trans)
		}
		nc, code := p.CommCreate(CommWorld, sub)
		if code != Success {
			return codef(code, "comm_create")
		}
		if p.Rank() == 1 || p.Rank() == 3 {
			if nc != CommNull {
				return fmt.Errorf("non-member got %v", nc)
			}
			return nil
		}
		sz, _ := p.CommSize(nc)
		if sz != 2 {
			return fmt.Errorf("created comm size = %d", sz)
		}
		return nil
	})
}

func TestGroupExcl(t *testing.T) {
	runSPMD(t, 4, func(p *Proc) error {
		wg, _ := p.CommGroup(CommWorld)
		sub, code := p.GroupExcl(wg, []int{1})
		if code != Success {
			return codef(code, "group_excl")
		}
		sz, _ := p.GroupSize(sub)
		if sz != 3 {
			return fmt.Errorf("size = %d", sz)
		}
		if err := codef(p.GroupFree(sub), "group_free"); err != nil {
			return err
		}
		return codef(p.GroupFree(wg), "group_free 2")
	})
}

func TestDerivedTypeSendRecv(t *testing.T) {
	runSPMD(t, 2, func(p *Proc) error {
		// Send a strided column: vector of 3 int32 blocks with stride 2.
		vec, code := p.TypeVector(3, 1, 2, TypeHandle(types.KindInt32))
		if code != Success {
			return codef(code, "type_vector")
		}
		if code := p.TypeCommit(vec); code != Success {
			return codef(code, "commit")
		}
		sz, _ := p.TypeSize(vec)
		ext, _ := p.TypeExtent(vec)
		if sz != 12 || ext != 20 {
			return fmt.Errorf("size/extent = %d/%d, want 12/20", sz, ext)
		}
		if p.Rank() == 0 {
			src := abi.Int32Bytes([]int32{1, -1, 2, -2, 3})
			return codef(p.Send(src, 1, vec, 1, 0, CommWorld), "send vec")
		}
		dst := make([]byte, 20)
		var st Status
		if code := p.Recv(dst, 1, vec, 0, 0, CommWorld, &st); code != Success {
			return codef(code, "recv vec")
		}
		got := abi.Int32sOf(dst)
		if got[0] != 1 || got[2] != 2 || got[4] != 3 {
			return fmt.Errorf("strided recv = %v", got)
		}
		if got[1] != 0 || got[3] != 0 {
			return fmt.Errorf("holes written: %v", got)
		}
		cnt, code := p.GetCount(&st, vec)
		if code != Success || cnt != 1 {
			return fmt.Errorf("GetCount = %d (code %d), want 1", cnt, code)
		}
		return codef(p.TypeFree(vec), "type_free")
	})
}

func TestErrorsOnBadArguments(t *testing.T) {
	runSPMD(t, 1, func(p *Proc) error {
		bt := TypeHandle(types.KindByte)
		if code := p.Send(nil, 1, bt, 0, 0, CommNull); code != ErrComm {
			return fmt.Errorf("send on null comm = %d, want ErrComm", code)
		}
		if code := p.Send(nil, 1, bt, 5, 0, CommWorld); code != ErrRank {
			return fmt.Errorf("send to bad rank = %d, want ErrRank", code)
		}
		if code := p.Send(nil, 1, bt, 0, -5, CommWorld); code != ErrTag {
			return fmt.Errorf("bad tag = %d, want ErrTag", code)
		}
		if code := p.Send(nil, -1, bt, 0, 0, CommWorld); code != ErrCount {
			return fmt.Errorf("bad count = %d, want ErrCount", code)
		}
		if code := p.Send(nil, 1, Handle(0x4c0000ff), 0, 0, CommWorld); code != ErrType {
			return fmt.Errorf("bad type = %d, want ErrType", code)
		}
		if code := p.Bcast(nil, 1, bt, 9, CommWorld); code != ErrRoot {
			return fmt.Errorf("bad root = %d, want ErrRoot", code)
		}
		if code := p.CommFree(CommWorld); code != ErrComm {
			return fmt.Errorf("free world = %d, want ErrComm", code)
		}
		if code := p.TypeFree(bt); code != ErrType {
			return fmt.Errorf("free predefined type = %d, want ErrType", code)
		}
		if code := p.Wait(Handle(classRequest|0x7777), nil); code != ErrRequest {
			return fmt.Errorf("wait bogus request = %d, want ErrRequest", code)
		}
		return nil
	})
}

func TestStatusLayoutBits(t *testing.T) {
	var s Status
	s.setCount(0x1_0000_0002)
	if s.CountBytes() != 0x1_0000_0002 {
		t.Fatalf("split count round-trip = %#x", s.CountBytes())
	}
	s.SetCancelled(true)
	if !s.IsCancelled() || s.CountBytes() != 0x1_0000_0002 {
		t.Fatal("cancelled bit clobbered the count")
	}
	s.SetCancelled(false)
	if s.IsCancelled() {
		t.Fatal("cancelled bit stuck")
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	w, err := fabric.NewWorld(simnet.SingleNode(2))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var t0, t1 simnet.Time
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p := Init(w, 0)
		p.Send(make([]byte, 4096), 4096, TypeHandle(types.KindByte), 1, 0, CommWorld)
		t0 = w.Endpoint(0).Clock().Now()
	}()
	go func() {
		defer wg.Done()
		p := Init(w, 1)
		p.Recv(make([]byte, 4096), 4096, TypeHandle(types.KindByte), 0, 0, CommWorld, nil)
		t1 = w.Endpoint(1).Clock().Now()
	}()
	wg.Wait()
	if t0 <= 0 || t1 <= t0 {
		t.Fatalf("virtual time not advancing: sender=%v receiver=%v", t0, t1)
	}
}

func TestHandleHelpers(t *testing.T) {
	if !CommNull.isNull() || CommWorld.isNull() {
		t.Fatal("null detection broken")
	}
	if CommWorld.class() != classComm || GroupEmpty.class() != classGroup {
		t.Fatal("class bits broken")
	}
	if CommWorld.String() == "" {
		t.Fatal("no diagnostics")
	}
	if !bytes.Contains([]byte(Init(mustWorld(t), 0).debugString()), []byte("mpich rank 0")) {
		t.Fatal("debugString broken")
	}
}

func mustWorld(t *testing.T) *fabric.World {
	t.Helper()
	w, err := fabric.NewWorld(simnet.SingleNode(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}
