package mpich

import "repro/internal/fabric"

// probeScan looks for the oldest unexpected envelope matching the probe
// parameters without consuming it, filling st on a hit. Eager envelopes
// report their payload size; rendezvous announcements report the size
// carried in the RTS header.
func (p *Proc) probeScan(c *commObj, srcWorld, tag int, cid uint32, st *Status) bool {
	probe := &request{comm: c, srcWorld: srcWorld, tag: tag, cid: cid}
	for _, e := range p.unexpected {
		if e.Proto != fabric.ProtoEager && e.Proto != fabric.ProtoRTS {
			continue
		}
		if !envMatches(probe, e) {
			continue
		}
		if st != nil {
			st.Source = int32(c.posOf(e.Src))
			st.Tag = e.Tag
			st.Error = Success
			if e.Proto == fabric.ProtoRTS {
				st.setCount(e.Hdr)
			} else {
				st.setCount(uint64(len(e.Payload)))
			}
		}
		return true
	}
	return false
}

// probeArgs validates and resolves probe arguments; the boolean result is
// false for PROC_NULL (which "matches" immediately with an empty status).
func (p *Proc) probeArgs(source, tag int, comm Handle) (*commObj, int, bool, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return nil, 0, false, code
	}
	if code := validateRankTag(c, source, tag, false); code != Success {
		return nil, 0, false, code
	}
	if source == ProcNull {
		return c, 0, false, Success
	}
	srcWorld := AnySource
	if source != AnySource {
		srcWorld = c.ranks[source]
	}
	return c, srcWorld, true, Success
}

// Probe mirrors MPI_Probe: block until a matching message is pending.
func (p *Proc) Probe(source, tag int, comm Handle, st *Status) int {
	c, srcWorld, real, code := p.probeArgs(source, tag, comm)
	if code != Success {
		return code
	}
	if !real {
		fillProcNullStatus(st)
		return Success
	}
	for !p.probeScan(c, srcWorld, tag, c.cid, st) {
		if code := p.progress(true); code != Success {
			return code
		}
	}
	return Success
}

// Iprobe mirrors MPI_Iprobe: poll for a matching pending message.
func (p *Proc) Iprobe(source, tag int, comm Handle, st *Status) (bool, int) {
	c, srcWorld, real, code := p.probeArgs(source, tag, comm)
	if code != Success {
		return false, code
	}
	if !real {
		fillProcNullStatus(st)
		return true, Success
	}
	if p.probeScan(c, srcWorld, tag, c.cid, st) {
		return true, Success
	}
	if code := p.progress(false); code != Success {
		return false, code
	}
	return p.probeScan(c, srcWorld, tag, c.cid, st), Success
}
