package mpich

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mpicore"
	"repro/internal/ops"
	"repro/internal/types"
)

// Version identifies the simulated library, mirroring the paper's testbed.
const Version = "MPICH 3.3.2 (simulated)"

// eagerMax is MPICH's eager/rendezvous switchover in bytes.
const eagerMax = 16 * 1024

// MPICH-style collective algorithm selection thresholds (bytes). These —
// together with the handle encoding, the error-code table and the status
// layout — are the whole of what this package adds over the shared
// mpicore runtime: the ABI surface and the algorithm personality.
const (
	bcastShortMax       = 12288 // binomial below, scatter+ring-allgather above
	allreduceShortMax   = 2048  // recursive doubling below, Rabenseifner above
	alltoallBruckMax    = 256   // Bruck below, nonblocking overlap between
	alltoallPairwiseMin = 32768 // pairwise exchange above (long messages)
	allgatherRDMax      = 32768 // recursive doubling (pow2) below, ring above
)

// consts is MPICH's integer-constant vocabulary (see handles.go).
var mpichConsts = mpicore.Consts{
	AnySource: AnySource,
	AnyTag:    AnyTag,
	ProcNull:  ProcNull,
	TagUB:     TagUB,
	Undefined: Undefined,
}

// codes is MPICH's error-code table (see errors.go).
var mpichCodes = mpicore.Codes{
	Success:       Success,
	ErrBuffer:     ErrBuffer,
	ErrCount:      ErrCount,
	ErrType:       ErrType,
	ErrTag:        ErrTag,
	ErrComm:       ErrComm,
	ErrRank:       ErrRank,
	ErrRoot:       ErrRoot,
	ErrGroup:      ErrGroup,
	ErrOp:         ErrOp,
	ErrArg:        ErrArg,
	ErrTruncate:   ErrTruncate,
	ErrRequest:    ErrRequest,
	ErrIntern:     ErrIntern,
	ErrOther:      ErrOther,
	ErrProcFailed: ErrProcFailed,
	ErrRevoked:    ErrRevoked,
}

// Policy is MPICH's algorithm personality over the shared runtime: the
// classic selections (binomial broadcast with a scatter+ring switch,
// recursive-doubling and Rabenseifner allreduce, Bruck/overlap/pairwise
// alltoall, dissemination barrier) at MPICH's thresholds.
func Policy() mpicore.Policy {
	return mpicore.Policy{
		EagerMax:  eagerMax,
		DeriveCID: mpicore.FNV1aCIDDeriver(),
		Barrier: func(p *mpicore.Proc, c *mpicore.Comm, tag int32) int {
			return p.BarrierDissemination(c, tag)
		},
		Bcast: func(p *mpicore.Proc, c *mpicore.Comm, packed []byte, root int, tag int32) int {
			if len(packed) <= bcastShortMax {
				return p.BcastBinomial(c, packed, root, tag)
			}
			return p.BcastScatterRing(c, packed, root, tag)
		},
		Reduce: func(p *mpicore.Proc, c *mpicore.Comm, acc []byte, o *mpicore.Op, k types.Kind, root int, tag int32) int {
			return p.ReduceBinomial(c, acc, o, k, root, tag)
		},
		Allreduce: func(p *mpicore.Proc, c *mpicore.Comm, acc []byte, o *mpicore.Op, k types.Kind, tag int32) int {
			n := c.Size()
			elems := len(acc) / k.Size()
			isPow2 := n&(n-1) == 0
			if len(acc) > allreduceShortMax && isPow2 && elems >= n {
				return p.AllreduceRabenseifner(c, acc, o, k, tag)
			}
			return p.AllreduceRecDoubling(c, acc, o, k, tag, 62)
		},
		Gather: func(p *mpicore.Proc, c *mpicore.Comm, own, region []byte, blockSz, root int, tag int32) int {
			return p.GatherBinomial(c, own, region, blockSz, root, tag)
		},
		Scatter: func(p *mpicore.Proc, c *mpicore.Comm, region []byte, blockSz, root int, tag int32) ([]byte, int) {
			return p.ScatterBinomial(c, region, blockSz, root, tag)
		},
		Allgather: func(p *mpicore.Proc, c *mpicore.Comm, region []byte, blockSz int, tag int32) int {
			n := c.Size()
			if n&(n-1) == 0 && n*blockSz <= allgatherRDMax {
				return p.AllgatherRecDoubling(c, region, blockSz, tag)
			}
			return p.AllgatherRing(c, region, blockSz, tag)
		},
		Alltoall: func(p *mpicore.Proc, c *mpicore.Comm, out, in []byte, blockSz int, tag int32) int {
			switch {
			case blockSz <= alltoallBruckMax:
				return p.AlltoallBruck(c, out, in, blockSz, tag)
			case blockSz < alltoallPairwiseMin:
				return p.AlltoallOverlap(c, out, in, blockSz, tag)
			default:
				return p.AlltoallPairwise(c, out, in, blockSz, tag)
			}
		},
	}
}

// Proc is one rank's MPICH library instance (the paper's "lower half"):
// the shared mpicore runtime plus MPICH's handle tables. Every API method
// decodes MPICH's 32-bit handles into runtime objects, delegates, and
// encodes results back — the same translation a natively compiled binary
// gets from mpi.h macros.
type Proc struct {
	rt *mpicore.Proc

	comms   map[Handle]*mpicore.Comm
	groups  map[Handle]*mpicore.Group
	dtypes  map[Handle]*mpicore.Type
	userOps map[Handle]*mpicore.Op
	reqs    map[Handle]*mpicore.Request

	nextComm  int32
	nextGroup int32
	nextType  int32
	nextOp    int32
	nextReq   int32
}

// Init attaches a fresh MPICH instance to the given world endpoint, the
// analog of MPI_Init for one rank.
func Init(w *fabric.World, rank int) *Proc {
	p := &Proc{
		rt:      mpicore.NewProc(w, rank, mpichConsts, mpichCodes, Policy()),
		comms:   make(map[Handle]*mpicore.Comm),
		groups:  make(map[Handle]*mpicore.Group),
		dtypes:  make(map[Handle]*mpicore.Type),
		userOps: make(map[Handle]*mpicore.Op),
		reqs:    make(map[Handle]*mpicore.Request),
	}
	p.comms[CommWorld] = p.rt.CommWorld
	p.comms[CommSelf] = p.rt.CommSelf
	for _, k := range types.Kinds() {
		p.dtypes[TypeHandle(k)] = p.rt.Predef(k)
	}
	for _, op := range ops.Ops() {
		p.userOps[OpHandle(op)] = p.rt.PredefOp(op)
	}
	return p
}

// TypeHandle returns the MPICH handle of a predefined datatype. Real MPICH
// encodes the type's size in bits 8..15 of the handle; we reproduce that.
func TypeHandle(k types.Kind) Handle {
	return classDatatype | Handle(k.Size())<<8 | Handle(k)
}

// KindOfPredefined recovers the primitive kind of a predefined datatype
// handle (used by the wrap adapter).
func KindOfPredefined(h Handle) (types.Kind, bool) {
	if h.class() != classDatatype || h.isNull() || h.payload() >= dynBase {
		return types.KindInvalid, false
	}
	k := types.Kind(h & 0xff)
	return k, k.Valid()
}

// OpHandle returns the MPICH handle of a predefined reduction operator.
// Real MPICH numbers these 0x58000001.. in mpi.h order.
func OpHandle(op ops.Op) Handle { return classOp | Handle(op) }

// OpOfPredefined recovers the predefined operator (wrap adapter use).
func OpOfPredefined(h Handle) (ops.Op, bool) {
	if h.class() != classOp || h.isNull() || h.payload() >= dynBase {
		return ops.OpNull, false
	}
	op := ops.Op(h & 0xff)
	return op, op.Valid()
}

// Rank returns this process's world rank. Size returns the world size.
func (p *Proc) Rank() int { return p.rt.Rank() }

// Size returns the number of ranks in the world.
func (p *Proc) Size() int { return p.rt.Size() }

// World exposes the fabric world (used by the launcher and tests).
func (p *Proc) World() *fabric.World { return p.rt.World() }

// Finalize releases the instance. Outstanding requests are abandoned.
func (p *Proc) Finalize() int { return p.rt.Finalize() }

// Finalized reports whether Finalize has run.
func (p *Proc) Finalized() bool { return p.rt.Finalized() }

// lookupComm validates a communicator handle.
func (p *Proc) lookupComm(h Handle) (*mpicore.Comm, int) {
	c, ok := p.comms[h]
	if !ok || h.isNull() {
		return nil, ErrComm
	}
	return c, Success
}

// lookupType validates a datatype handle (commit checks happen in the
// runtime).
func (p *Proc) lookupType(h Handle) (*mpicore.Type, int) {
	t, ok := p.dtypes[h]
	if !ok || h.isNull() {
		return nil, ErrType
	}
	return t, Success
}

// lookupGroup validates a group handle; GroupEmpty resolves to a fresh
// empty group object, as in MPICH.
func (p *Proc) lookupGroup(h Handle) (*mpicore.Group, int) {
	if h == GroupEmpty {
		return &mpicore.Group{MyPos: -1}, Success
	}
	g, ok := p.groups[h]
	if !ok || h.isNull() {
		return nil, ErrGroup
	}
	return g, Success
}

// lookupOp validates an operator handle.
func (p *Proc) lookupOp(h Handle) (*mpicore.Op, int) {
	o, ok := p.userOps[h]
	if !ok || h.isNull() {
		return nil, ErrOp
	}
	return o, Success
}

// newCommHandle allocates a dynamic communicator handle.
func (p *Proc) newCommHandle() Handle {
	p.nextComm++
	return classComm | Handle(dynBase+p.nextComm)
}

func (p *Proc) newGroupHandle() Handle {
	p.nextGroup++
	return classGroup | Handle(dynBase+p.nextGroup)
}

func (p *Proc) newTypeHandle() Handle {
	p.nextType++
	return classDatatype | Handle(dynBase+p.nextType)
}

func (p *Proc) newOpHandle() Handle {
	p.nextOp++
	return classOp | Handle(dynBase+p.nextOp)
}

func (p *Proc) newReqHandle() Handle {
	p.nextReq++
	return classRequest | Handle(dynBase+p.nextReq)
}

// Abort mirrors MPI_Abort: it tears the whole world down.
func (p *Proc) Abort(code int) int { return p.rt.Abort(code) }

// nativeStatus converts the runtime's canonical status into MPICH's
// split-count-word layout.
func nativeStatus(cs *mpicore.Status) Status {
	var s Status
	s.Source = cs.Source
	s.Tag = cs.Tag
	s.Error = cs.Error
	s.setCount(cs.CountBytes)
	s.SetCancelled(cs.Cancelled)
	return s
}

// debugString summarizes internal state for tests and fault diagnosis.
func (p *Proc) debugString() string {
	posted, unexpected, pendingSend, awaiting := p.rt.Depths()
	return fmt.Sprintf("mpich rank %d: posted=%d unexpected=%d pendingSend=%d awaiting=%d reqs=%d",
		p.rt.Rank(), posted, unexpected, pendingSend, awaiting, len(p.reqs))
}
