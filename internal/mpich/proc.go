package mpich

import (
	"fmt"
	"hash/fnv"

	"repro/internal/fabric"
	"repro/internal/ops"
	"repro/internal/types"
)

// Version identifies the simulated library, mirroring the paper's testbed.
const Version = "MPICH 3.3.2 (simulated)"

// collCIDBit marks collective-internal traffic so it can never match
// application point-to-point receives on the same communicator.
const collCIDBit uint32 = 1 << 31

// eagerMax is MPICH's eager/rendezvous switchover in bytes.
const eagerMax = 16 * 1024

type commObj struct {
	handle  Handle
	cid     uint32
	ranks   []int // communicator rank -> world rank
	myPos   int   // my rank within the communicator
	collSeq uint32
	chldSeq uint32 // per-parent child communicator counter (cid derivation)
}

func (c *commObj) size() int { return len(c.ranks) }

// posOf translates a world rank into a communicator rank, or -1.
func (c *commObj) posOf(world int) int {
	for i, r := range c.ranks {
		if r == world {
			return i
		}
	}
	return -1
}

type groupObj struct {
	handle Handle
	ranks  []int // group rank -> world rank
	myPos  int   // my position, or Undefined
}

type typeObj struct {
	handle Handle
	t      *types.Type
	prim   types.Kind // valid for predefined types
}

type opObj struct {
	handle  Handle
	op      ops.Op // predefined, or OpNull for user ops
	user    string // user op registry name
	commute bool
}

type reqKind uint8

const (
	reqRecv reqKind = iota
	reqSend
)

// request is an in-flight operation. Blocking calls allocate one on the
// stack side; nonblocking calls register it in the request table.
type request struct {
	handle Handle
	kind   reqKind
	done   bool
	code   int // completion error code

	// Receive bookkeeping.
	comm     *commObj
	buf      []byte
	count    int
	dt       *typeObj
	srcWorld int // matched source world rank, or AnySource sentinel
	tag      int
	cid      uint32
	raw      bool   // collective-internal: deliver packed payload directly
	rawOut   []byte // raw delivery target
	status   Status

	// Rendezvous send bookkeeping.
	payload []byte
	dest    int // destination world rank
	seq     uint64
}

type seqKey struct {
	peer int
	seq  uint64
}

// Proc is one rank's MPICH library instance (the paper's "lower half").
type Proc struct {
	ep    *fabric.Endpoint
	world *fabric.World
	rank  int
	size  int

	comms     map[Handle]*commObj
	cidIndex  map[uint32]*commObj
	groups    map[Handle]*groupObj
	dtypes    map[Handle]*typeObj
	userOps   map[Handle]*opObj
	reqs      map[Handle]*request
	nextComm  int32
	nextGroup int32
	nextType  int32
	nextOp    int32
	nextReq   int32

	posted       []*request
	unexpected   []*fabric.Envelope
	pendingSend  map[uint64]*request // my rendezvous sends by seq
	awaitingData map[seqKey]*request // matched rendezvous recvs by (src,seq)
	nextRdvSeq   uint64

	finalized bool
}

// Init attaches a fresh MPICH instance to the given world endpoint, the
// analog of MPI_Init for one rank.
func Init(w *fabric.World, rank int) *Proc {
	p := &Proc{
		ep:           w.Endpoint(rank),
		world:        w,
		rank:         rank,
		size:         w.Size(),
		comms:        make(map[Handle]*commObj),
		cidIndex:     make(map[uint32]*commObj),
		groups:       make(map[Handle]*groupObj),
		dtypes:       make(map[Handle]*typeObj),
		userOps:      make(map[Handle]*opObj),
		reqs:         make(map[Handle]*request),
		pendingSend:  make(map[uint64]*request),
		awaitingData: make(map[seqKey]*request),
	}
	worldRanks := make([]int, p.size)
	for i := range worldRanks {
		worldRanks[i] = i
	}
	p.installComm(&commObj{handle: CommWorld, cid: 1, ranks: worldRanks, myPos: rank})
	p.installComm(&commObj{handle: CommSelf, cid: 2, ranks: []int{rank}, myPos: 0})
	for _, k := range types.Kinds() {
		h := TypeHandle(k)
		p.dtypes[h] = &typeObj{handle: h, t: types.Predefined(k), prim: k}
	}
	for _, op := range ops.Ops() {
		h := OpHandle(op)
		p.userOps[h] = &opObj{handle: h, op: op, commute: op.Commutative()}
	}
	return p
}

func (p *Proc) installComm(c *commObj) {
	p.comms[c.handle] = c
	p.cidIndex[c.cid] = c
}

// TypeHandle returns the MPICH handle of a predefined datatype. Real MPICH
// encodes the type's size in bits 8..15 of the handle; we reproduce that.
func TypeHandle(k types.Kind) Handle {
	return classDatatype | Handle(k.Size())<<8 | Handle(k)
}

// KindOfPredefined recovers the primitive kind of a predefined datatype
// handle (used by the wrap adapter).
func KindOfPredefined(h Handle) (types.Kind, bool) {
	if h.class() != classDatatype || h.isNull() || h.payload() >= dynBase {
		return types.KindInvalid, false
	}
	k := types.Kind(h & 0xff)
	return k, k.Valid()
}

// OpHandle returns the MPICH handle of a predefined reduction operator.
// Real MPICH numbers these 0x58000001.. in mpi.h order.
func OpHandle(op ops.Op) Handle { return classOp | Handle(op) }

// OpOfPredefined recovers the predefined operator (wrap adapter use).
func OpOfPredefined(h Handle) (ops.Op, bool) {
	if h.class() != classOp || h.isNull() || h.payload() >= dynBase {
		return ops.OpNull, false
	}
	op := ops.Op(h & 0xff)
	return op, op.Valid()
}

// Rank returns this process's world rank. Size returns the world size.
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks in the world.
func (p *Proc) Size() int { return p.size }

// World exposes the fabric world (used by the launcher and tests).
func (p *Proc) World() *fabric.World { return p.world }

// Finalize releases the instance. Outstanding requests are abandoned.
func (p *Proc) Finalize() int {
	p.finalized = true
	return Success
}

// Finalized reports whether Finalize has run.
func (p *Proc) Finalized() bool { return p.finalized }

// lookupComm validates a communicator handle.
func (p *Proc) lookupComm(h Handle) (*commObj, int) {
	c, ok := p.comms[h]
	if !ok || h.isNull() {
		return nil, ErrComm
	}
	return c, Success
}

// lookupType validates a datatype handle and requires it committed.
func (p *Proc) lookupType(h Handle) (*typeObj, int) {
	t, ok := p.dtypes[h]
	if !ok || h.isNull() {
		return nil, ErrType
	}
	if !t.t.Committed() {
		return nil, ErrType
	}
	return t, Success
}

// lookupOp validates an operator handle.
func (p *Proc) lookupOp(h Handle) (*opObj, int) {
	o, ok := p.userOps[h]
	if !ok || h.isNull() {
		return nil, ErrOp
	}
	return o, Success
}

// deriveCID computes a child communicator's context id deterministically:
// all members observe the same (parent cid, creation ordinal) pair, so all
// compute the same cid without extra communication. Real MPICH runs a
// collective agreement protocol; the hash keeps the simulation cheap while
// preserving the invariant that distinct communicators get distinct ids.
func deriveCID(parent uint32, ordinal uint32) uint32 {
	h := fnv.New32a()
	var b [8]byte
	b[0] = byte(parent)
	b[1] = byte(parent >> 8)
	b[2] = byte(parent >> 16)
	b[3] = byte(parent >> 24)
	b[4] = byte(ordinal)
	b[5] = byte(ordinal >> 8)
	b[6] = byte(ordinal >> 16)
	b[7] = byte(ordinal >> 24)
	h.Write(b[:])
	cid := h.Sum32() &^ collCIDBit
	if cid <= 2 { // avoid the predefined cids
		cid += 3
	}
	return cid
}

// newCommHandle allocates a dynamic communicator handle.
func (p *Proc) newCommHandle() Handle {
	p.nextComm++
	return classComm | Handle(dynBase+p.nextComm)
}

func (p *Proc) newGroupHandle() Handle {
	p.nextGroup++
	return classGroup | Handle(dynBase+p.nextGroup)
}

func (p *Proc) newTypeHandle() Handle {
	p.nextType++
	return classDatatype | Handle(dynBase+p.nextType)
}

func (p *Proc) newOpHandle() Handle {
	p.nextOp++
	return classOp | Handle(dynBase+p.nextOp)
}

func (p *Proc) newReqHandle() Handle {
	p.nextReq++
	return classRequest | Handle(dynBase+p.nextReq)
}

// Abort mirrors MPI_Abort: it tears the whole world down.
func (p *Proc) Abort(code int) int {
	p.world.Close()
	return ErrOther
}

// debugString summarizes internal state for tests and fault diagnosis.
func (p *Proc) debugString() string {
	return fmt.Sprintf("mpich rank %d: posted=%d unexpected=%d pendingSend=%d awaiting=%d reqs=%d",
		p.rank, len(p.posted), len(p.unexpected), len(p.pendingSend), len(p.awaitingData), len(p.reqs))
}
