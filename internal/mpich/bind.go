package mpich

import (
	"repro/internal/abi"
	"repro/internal/ops"
	"repro/internal/types"
)

// Binding adapts a Proc to the generic function-table shape with zero
// translation: handles cross the boundary bit-for-bit (widened int32s),
// constants resolve to MPICH's native values, and error codes map straight
// from MPICH's table. This is the analog of compiling the application
// against MPICH's own mpi.h — the baseline configuration in the paper's
// figures. An application bound this way cannot be moved to another MPI
// implementation (that is the paper's point); use the Mukautuva shim for
// the portable standard-ABI stack.
type Binding struct {
	p *Proc
}

// Bind wraps a Proc in its native function-table binding.
func Bind(p *Proc) *Binding { return &Binding{p: p} }

var _ abi.FuncTable = (*Binding)(nil)

// toAbi widens a native handle into the opaque 64-bit slot. The value does
// NOT follow the standard ABI encoding — it is MPICH's own bit pattern,
// exactly as a natively compiled binary would hold.
func toAbi(h Handle) abi.Handle { return abi.Handle(uint64(uint32(int32(h)))) }

// toNative narrows an opaque handle back to MPICH's representation.
func toNative(h abi.Handle) Handle { return Handle(int32(uint32(h))) }

// codeErr converts an MPICH int return code into an error value carrying
// the equivalent standard error class.
func codeErr(code int) error {
	if code == Success {
		return nil
	}
	return abi.Errorf(ClassOfCode(code), "mpich", "%s", ErrorString(code))
}

// ClassOfCode maps MPICH error codes to standard ABI error classes (the
// MPI_Error_class analog, exported for the wrap adapter).
func ClassOfCode(code int) abi.ErrClass {
	switch code {
	case Success:
		return abi.ErrSuccess
	case ErrBuffer:
		return abi.ErrBuffer
	case ErrCount:
		return abi.ErrCount
	case ErrType:
		return abi.ErrType
	case ErrTag:
		return abi.ErrTag
	case ErrComm:
		return abi.ErrComm
	case ErrRank:
		return abi.ErrRank
	case ErrRoot:
		return abi.ErrRoot
	case ErrGroup:
		return abi.ErrGroup
	case ErrOp:
		return abi.ErrOp
	case ErrArg:
		return abi.ErrArg
	case ErrTruncate:
		return abi.ErrTruncate
	case ErrRequest:
		return abi.ErrRequest
	case ErrPending:
		return abi.ErrPending
	case ErrIntern:
		return abi.ErrIntern
	case ErrProcFailed:
		return abi.ErrProcFailed
	case ErrRevoked:
		return abi.ErrRevoked
	default:
		return abi.ErrOther
	}
}

// CodeOfClass is the reverse direction: the MPICH code a standard error
// class surfaces as. Translation layers that present MPICH's ABI upward
// (internal/wi4mpi) and the cross-implementation round-trip tests use
// it; classes MPICH's table does not distinguish collapse to ErrOther,
// mirroring what a real errhandler sees.
func CodeOfClass(c abi.ErrClass) int {
	switch c {
	case abi.ErrSuccess:
		return Success
	case abi.ErrBuffer:
		return ErrBuffer
	case abi.ErrCount:
		return ErrCount
	case abi.ErrType:
		return ErrType
	case abi.ErrTag:
		return ErrTag
	case abi.ErrComm:
		return ErrComm
	case abi.ErrRank:
		return ErrRank
	case abi.ErrRoot:
		return ErrRoot
	case abi.ErrGroup:
		return ErrGroup
	case abi.ErrOp:
		return ErrOp
	case abi.ErrArg:
		return ErrArg
	case abi.ErrTruncate:
		return ErrTruncate
	case abi.ErrRequest:
		return ErrRequest
	case abi.ErrPending:
		return ErrPending
	case abi.ErrIntern:
		return ErrIntern
	case abi.ErrProcFailed:
		return ErrProcFailed
	case abi.ErrRevoked:
		return ErrRevoked
	default:
		return ErrOther
	}
}

// statusOut converts MPICH's status layout into the standard layout.
// Source stays an MPICH-convention value (comm rank, or MPICH's PROC_NULL
// sentinel), which is correct for a natively compiled application.
func statusOut(ms *Status, as *abi.Status) {
	if as == nil {
		return
	}
	as.Source = ms.Source
	as.Tag = ms.Tag
	as.Error = ms.Error
	as.CountBytes = ms.CountBytes()
	as.Cancelled = ms.IsCancelled()
}

// ImplName identifies the lower library.
func (b *Binding) ImplName() string { return "mpich" }

// Lookup resolves predefined constants to MPICH's native handle values.
func (b *Binding) Lookup(s abi.Sym) abi.Handle {
	switch s {
	case abi.SymCommWorld:
		return toAbi(CommWorld)
	case abi.SymCommSelf:
		return toAbi(CommSelf)
	case abi.SymCommNull:
		return toAbi(CommNull)
	case abi.SymGroupNull:
		return toAbi(GroupNull)
	case abi.SymGroupEmpty:
		return toAbi(GroupEmpty)
	case abi.SymTypeNull:
		return toAbi(DatatypeNull)
	case abi.SymOpNull:
		return toAbi(OpNull)
	case abi.SymRequestNull:
		return toAbi(RequestNull)
	}
	if k, ok := abi.KindForSym(s); ok {
		return toAbi(TypeHandle(k))
	}
	if op, ok := abi.OpForSym(s); ok {
		return toAbi(OpHandle(op))
	}
	return toAbi(DatatypeNull)
}

// LookupInt resolves integer constants to MPICH's native values.
func (b *Binding) LookupInt(s abi.IntSym) int {
	switch s {
	case abi.IntAnySource:
		return AnySource
	case abi.IntAnyTag:
		return AnyTag
	case abi.IntProcNull:
		return ProcNull
	case abi.IntRoot:
		return Root
	case abi.IntUndefined:
		return Undefined
	case abi.IntTagUB:
		return TagUB
	}
	return Undefined
}

func (b *Binding) Send(buf []byte, count int, dtype abi.Handle, dest, tag int, comm abi.Handle) error {
	return codeErr(b.p.Send(buf, count, toNative(dtype), dest, tag, toNative(comm)))
}

func (b *Binding) Recv(buf []byte, count int, dtype abi.Handle, source, tag int, comm abi.Handle, st *abi.Status) error {
	var ms Status
	code := b.p.Recv(buf, count, toNative(dtype), source, tag, toNative(comm), &ms)
	statusOut(&ms, st)
	return codeErr(code)
}

func (b *Binding) Isend(buf []byte, count int, dtype abi.Handle, dest, tag int, comm abi.Handle) (abi.Handle, error) {
	h, code := b.p.Isend(buf, count, toNative(dtype), dest, tag, toNative(comm))
	return toAbi(h), codeErr(code)
}

func (b *Binding) Irecv(buf []byte, count int, dtype abi.Handle, source, tag int, comm abi.Handle) (abi.Handle, error) {
	h, code := b.p.Irecv(buf, count, toNative(dtype), source, tag, toNative(comm))
	return toAbi(h), codeErr(code)
}

func (b *Binding) Wait(req abi.Handle, st *abi.Status) error {
	var ms Status
	code := b.p.Wait(toNative(req), &ms)
	statusOut(&ms, st)
	return codeErr(code)
}

func (b *Binding) Test(req abi.Handle, st *abi.Status) (bool, error) {
	var ms Status
	done, code := b.p.Test(toNative(req), &ms)
	if done {
		statusOut(&ms, st)
	}
	return done, codeErr(code)
}

func (b *Binding) Waitall(reqs []abi.Handle, sts []abi.Status) error {
	native := make([]Handle, len(reqs))
	for i, r := range reqs {
		native[i] = toNative(r)
	}
	var ms []Status
	if sts != nil {
		ms = make([]Status, len(reqs))
	}
	code := b.p.Waitall(native, ms)
	for i := range ms {
		statusOut(&ms[i], &sts[i])
	}
	return codeErr(code)
}

func (b *Binding) Sendrecv(sendbuf []byte, scount int, stype abi.Handle, dest, stag int,
	recvbuf []byte, rcount int, rtype abi.Handle, source, rtag int,
	comm abi.Handle, st *abi.Status) error {
	var ms Status
	code := b.p.Sendrecv(sendbuf, scount, toNative(stype), dest, stag,
		recvbuf, rcount, toNative(rtype), source, rtag, toNative(comm), &ms)
	statusOut(&ms, st)
	return codeErr(code)
}

func (b *Binding) Probe(source, tag int, comm abi.Handle, st *abi.Status) error {
	var ms Status
	code := b.p.Probe(source, tag, toNative(comm), &ms)
	statusOut(&ms, st)
	return codeErr(code)
}

func (b *Binding) Iprobe(source, tag int, comm abi.Handle, st *abi.Status) (bool, error) {
	var ms Status
	found, code := b.p.Iprobe(source, tag, toNative(comm), &ms)
	if found {
		statusOut(&ms, st)
	}
	return found, codeErr(code)
}

func (b *Binding) Barrier(comm abi.Handle) error {
	return codeErr(b.p.Barrier(toNative(comm)))
}

func (b *Binding) Bcast(buf []byte, count int, dtype abi.Handle, root int, comm abi.Handle) error {
	return codeErr(b.p.Bcast(buf, count, toNative(dtype), root, toNative(comm)))
}

func (b *Binding) Reduce(sendbuf, recvbuf []byte, count int, dtype, op abi.Handle, root int, comm abi.Handle) error {
	return codeErr(b.p.Reduce(sendbuf, recvbuf, count, toNative(dtype), toNative(op), root, toNative(comm)))
}

func (b *Binding) Allreduce(sendbuf, recvbuf []byte, count int, dtype, op abi.Handle, comm abi.Handle) error {
	return codeErr(b.p.Allreduce(sendbuf, recvbuf, count, toNative(dtype), toNative(op), toNative(comm)))
}

func (b *Binding) Gather(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, root int, comm abi.Handle) error {
	return codeErr(b.p.Gather(sendbuf, scount, toNative(stype), recvbuf, rcount, toNative(rtype), root, toNative(comm)))
}

func (b *Binding) Allgather(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, comm abi.Handle) error {
	return codeErr(b.p.Allgather(sendbuf, scount, toNative(stype), recvbuf, rcount, toNative(rtype), toNative(comm)))
}

func (b *Binding) Scatter(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, root int, comm abi.Handle) error {
	return codeErr(b.p.Scatter(sendbuf, scount, toNative(stype), recvbuf, rcount, toNative(rtype), root, toNative(comm)))
}

func (b *Binding) Alltoall(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, comm abi.Handle) error {
	return codeErr(b.p.Alltoall(sendbuf, scount, toNative(stype), recvbuf, rcount, toNative(rtype), toNative(comm)))
}

func (b *Binding) CommSize(comm abi.Handle) (int, error) {
	n, code := b.p.CommSize(toNative(comm))
	return n, codeErr(code)
}

func (b *Binding) CommRank(comm abi.Handle) (int, error) {
	r, code := b.p.CommRank(toNative(comm))
	return r, codeErr(code)
}

func (b *Binding) CommDup(comm abi.Handle) (abi.Handle, error) {
	h, code := b.p.CommDup(toNative(comm))
	return toAbi(h), codeErr(code)
}

func (b *Binding) CommSplit(comm abi.Handle, color, key int) (abi.Handle, error) {
	h, code := b.p.CommSplit(toNative(comm), color, key)
	return toAbi(h), codeErr(code)
}

func (b *Binding) CommCreate(comm, group abi.Handle) (abi.Handle, error) {
	h, code := b.p.CommCreate(toNative(comm), toNative(group))
	return toAbi(h), codeErr(code)
}

func (b *Binding) CommGroup(comm abi.Handle) (abi.Handle, error) {
	h, code := b.p.CommGroup(toNative(comm))
	return toAbi(h), codeErr(code)
}

func (b *Binding) CommFree(comm abi.Handle) error {
	return codeErr(b.p.CommFree(toNative(comm)))
}

func (b *Binding) GroupSize(group abi.Handle) (int, error) {
	n, code := b.p.GroupSize(toNative(group))
	return n, codeErr(code)
}

func (b *Binding) GroupRank(group abi.Handle) (int, error) {
	r, code := b.p.GroupRank(toNative(group))
	return r, codeErr(code)
}

func (b *Binding) GroupIncl(group abi.Handle, ranks []int) (abi.Handle, error) {
	h, code := b.p.GroupIncl(toNative(group), ranks)
	return toAbi(h), codeErr(code)
}

func (b *Binding) GroupExcl(group abi.Handle, ranks []int) (abi.Handle, error) {
	h, code := b.p.GroupExcl(toNative(group), ranks)
	return toAbi(h), codeErr(code)
}

func (b *Binding) GroupTranslateRanks(g1 abi.Handle, ranks []int, g2 abi.Handle) ([]int, error) {
	out, code := b.p.GroupTranslateRanks(toNative(g1), ranks, toNative(g2))
	return out, codeErr(code)
}

func (b *Binding) GroupFree(group abi.Handle) error {
	return codeErr(b.p.GroupFree(toNative(group)))
}

func (b *Binding) TypeContiguous(count int, inner abi.Handle) (abi.Handle, error) {
	h, code := b.p.TypeContiguous(count, toNative(inner))
	return toAbi(h), codeErr(code)
}

func (b *Binding) TypeVector(count, blocklen, stride int, inner abi.Handle) (abi.Handle, error) {
	h, code := b.p.TypeVector(count, blocklen, stride, toNative(inner))
	return toAbi(h), codeErr(code)
}

func (b *Binding) TypeIndexed(blocklens, displs []int, inner abi.Handle) (abi.Handle, error) {
	h, code := b.p.TypeIndexed(blocklens, displs, toNative(inner))
	return toAbi(h), codeErr(code)
}

func (b *Binding) TypeCreateStruct(blocklens, displs []int, typs []abi.Handle) (abi.Handle, error) {
	native := make([]Handle, len(typs))
	for i, t := range typs {
		native[i] = toNative(t)
	}
	h, code := b.p.TypeCreateStruct(blocklens, displs, native)
	return toAbi(h), codeErr(code)
}

func (b *Binding) TypeCommit(dtype abi.Handle) error {
	return codeErr(b.p.TypeCommit(toNative(dtype)))
}

func (b *Binding) TypeFree(dtype abi.Handle) error {
	return codeErr(b.p.TypeFree(toNative(dtype)))
}

func (b *Binding) TypeSize(dtype abi.Handle) (int, error) {
	n, code := b.p.TypeSize(toNative(dtype))
	return n, codeErr(code)
}

func (b *Binding) TypeExtent(dtype abi.Handle) (int, error) {
	n, code := b.p.TypeExtent(toNative(dtype))
	return n, codeErr(code)
}

func (b *Binding) GetCount(st *abi.Status, dtype abi.Handle) (int, error) {
	// Rebuild the native status from the standard one to reuse the native
	// GetCount logic.
	var ms Status
	ms.setCount(st.CountBytes)
	n, code := b.p.GetCount(&ms, toNative(dtype))
	return n, codeErr(code)
}

func (b *Binding) OpCreate(name string, commute bool) (abi.Handle, error) {
	h, code := b.p.OpCreate(name, commute)
	return toAbi(h), codeErr(code)
}

func (b *Binding) OpFree(op abi.Handle) error {
	return codeErr(b.p.OpFree(toNative(op)))
}

func (b *Binding) Abort(comm abi.Handle, code int) error {
	return codeErr(b.p.Abort(code))
}

// Compile-time checks that the predefined handle helpers stay in sync with
// the kinds and operators they encode.
var (
	_ = func() bool {
		for _, k := range types.Kinds() {
			if kk, ok := KindOfPredefined(TypeHandle(k)); !ok || kk != k {
				panic("mpich: TypeHandle/KindOfPredefined mismatch")
			}
		}
		for _, op := range ops.Ops() {
			if oo, ok := OpOfPredefined(OpHandle(op)); !ok || oo != op {
				panic("mpich: OpHandle/OpOfPredefined mismatch")
			}
		}
		return true
	}()
)

func (b *Binding) CommRevoke(comm abi.Handle) error {
	return codeErr(b.p.CommRevoke(toNative(comm)))
}

func (b *Binding) CommShrink(comm abi.Handle) (abi.Handle, error) {
	h, code := b.p.CommShrink(toNative(comm))
	return toAbi(h), codeErr(code)
}

func (b *Binding) CommAgree(comm abi.Handle, flag uint64) (uint64, error) {
	out, code := b.p.CommAgree(toNative(comm), flag)
	return out, codeErr(code)
}

func (b *Binding) CommFailureAck(comm abi.Handle) error {
	return codeErr(b.p.CommFailureAck(toNative(comm)))
}

func (b *Binding) CommFailureGetAcked(comm abi.Handle) (abi.Handle, error) {
	h, code := b.p.CommFailureGetAcked(toNative(comm))
	return toAbi(h), codeErr(code)
}
