package mpich

// MPICH-style error codes: plain ints with MPI_SUCCESS == 0. The values
// follow real MPICH's mpi.h, which differs from the simulated Open MPI's
// table — translating these spaces is part of the ABI shim's job.
const (
	Success      = 0
	ErrBuffer    = 1
	ErrCount     = 2
	ErrType      = 3
	ErrTag       = 4
	ErrComm      = 5
	ErrRank      = 6
	ErrRoot      = 7
	ErrGroup     = 8
	ErrOp        = 9
	ErrTopology  = 10
	ErrDims      = 11
	ErrArg       = 12
	ErrUnknown   = 13
	ErrTruncate  = 14
	ErrOther     = 15
	ErrIntern    = 16
	ErrInStatus  = 17
	ErrPending   = 18
	ErrRequest   = 19
	errCodeCount = 20
)

var errStrings = [errCodeCount]string{
	Success:     "No MPI error",
	ErrBuffer:   "Invalid buffer pointer",
	ErrCount:    "Invalid count argument",
	ErrType:     "Invalid datatype argument",
	ErrTag:      "Invalid tag argument",
	ErrComm:     "Invalid communicator",
	ErrRank:     "Invalid rank",
	ErrRoot:     "Invalid root",
	ErrGroup:    "Invalid group",
	ErrOp:       "Invalid MPI_Op",
	ErrTopology: "Invalid topology",
	ErrDims:     "Invalid dimension argument",
	ErrArg:      "Invalid argument",
	ErrUnknown:  "Unknown error",
	ErrTruncate: "Message truncated",
	ErrOther:    "Other MPI error",
	ErrIntern:   "Internal MPI error",
	ErrInStatus: "Error code is in status",
	ErrPending:  "Pending request",
	ErrRequest:  "Invalid MPI_Request",
}

// ErrorString mirrors MPI_Error_string.
func ErrorString(code int) string {
	if code >= 0 && code < errCodeCount {
		return errStrings[code]
	}
	return "Unknown error code"
}
