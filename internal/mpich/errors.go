package mpich

// MPICH-style error codes: plain ints with MPI_SUCCESS == 0. The values
// follow real MPICH's mpi.h, which differs from the simulated Open MPI's
// table — translating these spaces is part of the ABI shim's job.
const (
	Success      = 0
	ErrBuffer    = 1
	ErrCount     = 2
	ErrType      = 3
	ErrTag       = 4
	ErrComm      = 5
	ErrRank      = 6
	ErrRoot      = 7
	ErrGroup     = 8
	ErrOp        = 9
	ErrTopology  = 10
	ErrDims      = 11
	ErrArg       = 12
	ErrUnknown   = 13
	ErrTruncate  = 14
	ErrOther     = 15
	ErrIntern    = 16
	ErrInStatus  = 17
	ErrPending   = 18
	ErrRequest   = 19
	errCodeCount = 20

	// ULFM (MPIX_*) error classes. Real MPICH allocates these
	// dynamically past MPI_ERR_LASTCODE rather than in the classic
	// mpi.h block, so their values are an implementation artifact —
	// and differ from the simulated Open MPI's (54/56) and from the
	// standard ABI's classes, which is exactly the divergence the
	// translation layers must bridge for fault handling to survive an
	// implementation swap.
	ErrProcFailed = 71 // MPIX_ERR_PROC_FAILED
	ErrRevoked    = 72 // MPIX_ERR_REVOKED
)

var errStrings = [errCodeCount]string{
	Success:     "No MPI error",
	ErrBuffer:   "Invalid buffer pointer",
	ErrCount:    "Invalid count argument",
	ErrType:     "Invalid datatype argument",
	ErrTag:      "Invalid tag argument",
	ErrComm:     "Invalid communicator",
	ErrRank:     "Invalid rank",
	ErrRoot:     "Invalid root",
	ErrGroup:    "Invalid group",
	ErrOp:       "Invalid MPI_Op",
	ErrTopology: "Invalid topology",
	ErrDims:     "Invalid dimension argument",
	ErrArg:      "Invalid argument",
	ErrUnknown:  "Unknown error",
	ErrTruncate: "Message truncated",
	ErrOther:    "Other MPI error",
	ErrIntern:   "Internal MPI error",
	ErrInStatus: "Error code is in status",
	ErrPending:  "Pending request",
	ErrRequest:  "Invalid MPI_Request",
}

// ErrorString mirrors MPI_Error_string.
func ErrorString(code int) string {
	switch code {
	case ErrProcFailed:
		return "Process failed"
	case ErrRevoked:
		return "Communicator revoked"
	}
	if code >= 0 && code < errCodeCount {
		return errStrings[code]
	}
	return "Unknown error code"
}
