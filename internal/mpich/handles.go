// Package mpich is the first of the two simulated MPI implementations. Its
// public surface deliberately reproduces the MPICH family's ABI style:
//
//   - handles are 32-bit integers whose top bits encode the object class,
//     e.g. MPI_COMM_WORLD = 0x44000000, predefined datatypes 0x4c00xxyy
//     with the size embedded in bits 8..15;
//   - functions return C-style int error codes (MPI_SUCCESS == 0) from
//     MPICH's code table;
//   - the status object is laid out MPICH-style: count first, then
//     MPI_SOURCE, MPI_TAG, MPI_ERROR;
//   - wildcard/sentinel constants use MPICH's values (MPI_ANY_SOURCE=-2,
//     MPI_PROC_NULL=-1).
//
// Collective algorithms follow MPICH's classic selections: binomial
// broadcast (scatter+allgather for large messages), recursive-doubling and
// Rabenseifner allreduce, Bruck and pairwise alltoall, dissemination
// barrier.
//
// None of this package's types appear in the standard ABI; the Mukautuva
// wrap adapter (internal/mukautuva) translates between the two worlds, and
// Bind provides the "compiled against MPICH's mpi.h" native binding.
//
// In the paper this is one of the two incompatible ABIs that motivate
// standardization (Sections 2 and 4.1): the "MPICH" legs of every stack
// in the Section 5 evaluation, and the restart-side implementation of the
// Figure 6 cross-implementation experiment, bind here.
//
// In the README's layer diagram this is the first entry of the
// implementation-packages row: a thin ABI + policy layer over the shared
// runtime, nothing more.
package mpich

import "fmt"

// Handle is an MPICH-style object handle: a 32-bit integer with the object
// class in the top byte.
type Handle int32

// Handle class prefixes (top byte), matching MPICH's HANDLE_KIND encoding
// closely enough to feel native.
const (
	handleClassMask Handle = 0x7c000000
	classComm       Handle = 0x44000000
	classGroup      Handle = 0x48000000
	classDatatype   Handle = 0x4c000000
	classOp         Handle = 0x58000000
	classRequest    Handle = 0x2c000000
	classNullBit    Handle = 0x00800000 // set on null handles
)

// Predefined handles.
const (
	CommNull  Handle = classComm | classNullBit
	CommWorld Handle = classComm | 0x0
	CommSelf  Handle = classComm | 0x1

	GroupNull  Handle = classGroup | classNullBit
	GroupEmpty Handle = classGroup | 0x0

	DatatypeNull Handle = classDatatype | classNullBit

	OpNull Handle = classOp | classNullBit

	RequestNull Handle = classRequest | classNullBit
)

// Integer constants, MPICH values.
const (
	AnySource = -2
	ProcNull  = -1
	AnyTag    = -1
	Root      = -3
	Undefined = -32766
	TagUB     = 0x3fffffff
)

// dynBase is the first payload used for runtime-allocated handles; smaller
// payloads are predefined.
const dynBase = 0x00010000

// class extracts the class bits of a handle.
func (h Handle) class() Handle { return h & handleClassMask }

// isNull reports whether the handle is its class's null handle.
func (h Handle) isNull() bool { return h&classNullBit != 0 }

// payload extracts the index bits.
func (h Handle) payload() int32 { return int32(h) & 0x003fffff }

// String renders a handle for diagnostics.
func (h Handle) String() string { return fmt.Sprintf("mpich:%#x", int32(h)) }

// Status is MPICH's status layout: the count words come first, then the
// public fields. (Real MPICH: int count_lo; int count_hi_and_cancelled;
// int MPI_SOURCE; int MPI_TAG; int MPI_ERROR.)
type Status struct {
	CountLo             int32
	CountHiAndCancelled int32 // bit 31: cancelled flag; bits 0..30: count high bits
	Source              int32 // MPI_SOURCE
	Tag                 int32 // MPI_TAG
	Error               int32 // MPI_ERROR
}

// setCount stores a byte count into the split count words.
func (s *Status) setCount(n uint64) {
	s.CountLo = int32(n & 0xffffffff)
	hi := int32((n >> 32) & 0x7fffffff)
	s.CountHiAndCancelled = s.CountHiAndCancelled&^0x7fffffff | hi
}

// CountBytes reassembles the received byte count.
func (s *Status) CountBytes() uint64 {
	return uint64(uint32(s.CountLo)) | uint64(s.CountHiAndCancelled&0x7fffffff)<<32
}

// SetCancelled sets the cancelled flag bit.
func (s *Status) SetCancelled(c bool) {
	if c {
		s.CountHiAndCancelled |= -1 << 31
	} else {
		s.CountHiAndCancelled &^= -1 << 31
	}
}

// IsCancelled reads the cancelled flag bit.
func (s *Status) IsCancelled() bool { return s.CountHiAndCancelled&(-1<<31) != 0 }
