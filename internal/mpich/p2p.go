package mpich

import (
	"repro/internal/fabric"
)

// progress pulls one envelope from the fabric and dispatches it. With
// block=true it waits for traffic; otherwise it returns immediately when
// the mailbox is empty. MPICH-style progress is driven only from inside MPI
// calls, which this reproduces: the engine runs inside Send/Recv/Wait/etc.
func (p *Proc) progress(block bool) int {
	var e *fabric.Envelope
	if block {
		e = p.ep.Recv()
		if e == nil {
			return ErrOther // world closed under us
		}
	} else {
		var ok bool
		e, ok = p.ep.TryRecv()
		if !ok {
			return Success
		}
	}
	p.dispatch(e)
	return Success
}

// dispatch routes one arrived envelope.
func (p *Proc) dispatch(e *fabric.Envelope) {
	switch e.Proto {
	case fabric.ProtoEager:
		if r := p.matchPosted(e); r != nil {
			p.deliverPayload(r, e.Src, e.Tag, e.Payload)
		} else {
			p.unexpected = append(p.unexpected, e)
		}
	case fabric.ProtoRTS:
		if r := p.matchPosted(e); r != nil {
			p.acceptRTS(e, r)
		} else {
			p.unexpected = append(p.unexpected, e)
		}
	case fabric.ProtoCTS:
		if s, ok := p.pendingSend[e.Seq]; ok {
			delete(p.pendingSend, e.Seq)
			p.ep.Send(&fabric.Envelope{
				Dst: e.Src, CID: s.cid, Proto: fabric.ProtoData,
				Seq: e.Seq, Payload: s.payload,
			})
			s.payload = nil
			s.done = true
			s.code = Success
		}
	case fabric.ProtoData:
		key := seqKey{peer: e.Src, seq: e.Seq}
		if r, ok := p.awaitingData[key]; ok {
			delete(p.awaitingData, key)
			p.deliverPayload(r, e.Src, r.status.Tag, e.Payload)
		}
	}
}

// envMatches reports whether an arrived envelope satisfies a posted recv.
func envMatches(r *request, e *fabric.Envelope) bool {
	if e.CID != r.cid {
		return false
	}
	if r.srcWorld != AnySource && e.Src != r.srcWorld {
		return false
	}
	if r.tag != AnyTag && e.Tag != int32(r.tag) {
		return false
	}
	return true
}

// matchPosted finds and removes the oldest posted recv matching e.
func (p *Proc) matchPosted(e *fabric.Envelope) *request {
	for i, r := range p.posted {
		if envMatches(r, e) {
			p.posted = append(p.posted[:i], p.posted[i+1:]...)
			return r
		}
	}
	return nil
}

// matchUnexpected finds and removes the oldest unexpected envelope
// matching a fresh recv.
func (p *Proc) matchUnexpected(r *request) *fabric.Envelope {
	for i, e := range p.unexpected {
		if envMatches(r, e) {
			p.unexpected = append(p.unexpected[:i], p.unexpected[i+1:]...)
			return e
		}
	}
	return nil
}

// deliverPayload completes a receive with the given packed payload.
func (p *Proc) deliverPayload(r *request, srcWorld int, tag int32, payload []byte) {
	r.status.Source = int32(srcWorld) // world rank; converted to comm rank below
	if r.comm != nil {
		r.status.Source = int32(r.comm.posOf(srcWorld))
	}
	r.status.Tag = tag
	r.done = true
	if r.raw {
		r.rawOut = payload
		r.status.setCount(uint64(len(payload)))
		r.code = Success
		r.status.Error = Success
		return
	}
	capacity := r.count * r.dt.t.Size()
	n := len(payload)
	if n > capacity {
		n = capacity
		r.code = ErrTruncate
	} else {
		r.code = Success
	}
	if _, err := r.dt.t.UnpackPartial(payload[:n], r.buf); err != nil {
		r.code = ErrIntern
	}
	r.status.setCount(uint64(n))
	r.status.Error = int32(r.code)
}

// acceptRTS answers a rendezvous request-to-send for a matched recv.
func (p *Proc) acceptRTS(e *fabric.Envelope, r *request) {
	// Remember the tag now; the data envelope only carries the seq.
	r.status.Tag = e.Tag
	p.awaitingData[seqKey{peer: e.Src, seq: e.Seq}] = r
	p.ep.Send(&fabric.Envelope{
		Dst: e.Src, CID: e.CID, Proto: fabric.ProtoCTS, Seq: e.Seq,
	})
}

// postRecv registers a receive request, matching the unexpected queue
// first. srcComm/tag may be wildcards (MPICH values).
func (p *Proc) postRecv(r *request) {
	if e := p.matchUnexpected(r); e != nil {
		switch e.Proto {
		case fabric.ProtoEager:
			p.deliverPayload(r, e.Src, e.Tag, e.Payload)
		case fabric.ProtoRTS:
			p.acceptRTS(e, r)
		}
		return
	}
	p.posted = append(p.posted, r)
}

// sendInternal implements blocking and nonblocking sends on an arbitrary
// context id. Returns the request for rendezvous progress, or nil if the
// send completed immediately (eager path).
func (p *Proc) sendInternal(packed []byte, destWorld int, tag int32, cid uint32) *request {
	if len(packed) <= eagerMax || destWorld == p.rank {
		p.ep.Send(&fabric.Envelope{
			Dst: destWorld, CID: cid, Tag: tag,
			Proto: fabric.ProtoEager, Payload: packed,
		})
		return nil
	}
	p.nextRdvSeq++
	seq := p.nextRdvSeq
	r := &request{kind: reqSend, payload: packed, dest: destWorld, seq: seq, cid: cid}
	p.pendingSend[seq] = r
	p.ep.Send(&fabric.Envelope{
		Dst: destWorld, CID: cid, Tag: tag,
		Proto: fabric.ProtoRTS, Seq: seq, Hdr: uint64(len(packed)),
	})
	return r
}

// validateRankTag checks peer and tag arguments against a communicator.
func validateRankTag(c *commObj, peer, tag int, sending bool) int {
	if peer == ProcNull {
		return Success
	}
	if sending {
		if tag < 0 || tag > TagUB {
			return ErrTag
		}
	} else if tag != AnyTag && (tag < 0 || tag > TagUB) {
		return ErrTag
	}
	if !sending && peer == AnySource {
		return Success
	}
	if peer < 0 || peer >= c.size() {
		return ErrRank
	}
	return Success
}

// Send is blocking standard-mode MPI_Send.
func (p *Proc) Send(buf []byte, count int, dtype Handle, dest, tag int, comm Handle) int {
	c, code := p.lookupComm(comm)
	if code != Success {
		return code
	}
	dt, code := p.lookupType(dtype)
	if code != Success {
		return code
	}
	if code := validateRankTag(c, dest, tag, true); code != Success {
		return code
	}
	if count < 0 {
		return ErrCount
	}
	if dest == ProcNull {
		return Success
	}
	packed, code := packElems(dt, buf, count)
	if code != Success {
		return code
	}
	r := p.sendInternal(packed, c.ranks[dest], int32(tag), c.cid)
	for r != nil && !r.done {
		if code := p.progress(true); code != Success {
			return code
		}
	}
	if r != nil {
		return r.code
	}
	return Success
}

// Recv is blocking MPI_Recv.
func (p *Proc) Recv(buf []byte, count int, dtype Handle, source, tag int, comm Handle, st *Status) int {
	r, code := p.buildRecv(buf, count, dtype, source, tag, comm)
	if code != Success {
		return code
	}
	if r == nil { // PROC_NULL
		fillProcNullStatus(st)
		return Success
	}
	p.postRecv(r)
	for !r.done {
		if code := p.progress(true); code != Success {
			return code
		}
	}
	if st != nil {
		*st = r.status
	}
	return r.code
}

// buildRecv validates arguments and constructs a recv request (nil for
// PROC_NULL sources).
func (p *Proc) buildRecv(buf []byte, count int, dtype Handle, source, tag int, comm Handle) (*request, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return nil, code
	}
	dt, code := p.lookupType(dtype)
	if code != Success {
		return nil, code
	}
	if code := validateRankTag(c, source, tag, false); code != Success {
		return nil, code
	}
	if count < 0 {
		return nil, ErrCount
	}
	if source == ProcNull {
		return nil, Success
	}
	srcWorld := AnySource
	if source != AnySource {
		srcWorld = c.ranks[source]
	}
	return &request{
		kind: reqRecv, comm: c, buf: buf, count: count, dt: dt,
		srcWorld: srcWorld, tag: tag, cid: c.cid,
	}, Success
}

func fillProcNullStatus(st *Status) {
	if st == nil {
		return
	}
	st.Source = ProcNull
	st.Tag = AnyTag
	st.Error = Success
	st.setCount(0)
}

// Isend is nonblocking MPI_Isend. The returned request must be completed
// with Wait/Test/Waitall.
func (p *Proc) Isend(buf []byte, count int, dtype Handle, dest, tag int, comm Handle) (Handle, int) {
	c, code := p.lookupComm(comm)
	if code != Success {
		return RequestNull, code
	}
	dt, code := p.lookupType(dtype)
	if code != Success {
		return RequestNull, code
	}
	if code := validateRankTag(c, dest, tag, true); code != Success {
		return RequestNull, code
	}
	if count < 0 {
		return RequestNull, ErrCount
	}
	h := p.newReqHandle()
	if dest == ProcNull {
		p.reqs[h] = &request{handle: h, kind: reqSend, done: true, code: Success}
		return h, Success
	}
	packed, code := packElems(dt, buf, count)
	if code != Success {
		return RequestNull, code
	}
	r := p.sendInternal(packed, c.ranks[dest], int32(tag), c.cid)
	if r == nil {
		r = &request{kind: reqSend, done: true, code: Success}
	}
	r.handle = h
	p.reqs[h] = r
	return h, Success
}

// Irecv is nonblocking MPI_Irecv.
func (p *Proc) Irecv(buf []byte, count int, dtype Handle, source, tag int, comm Handle) (Handle, int) {
	r, code := p.buildRecv(buf, count, dtype, source, tag, comm)
	if code != Success {
		return RequestNull, code
	}
	h := p.newReqHandle()
	if r == nil { // PROC_NULL: complete immediately
		pn := &request{handle: h, kind: reqRecv, done: true, code: Success}
		fillProcNullStatusReq(pn)
		p.reqs[h] = pn
		return h, Success
	}
	r.handle = h
	p.reqs[h] = r
	p.postRecv(r)
	return h, Success
}

func fillProcNullStatusReq(r *request) {
	r.status.Source = ProcNull
	r.status.Tag = AnyTag
	r.status.Error = Success
	r.status.setCount(0)
}

// Wait completes one request, freeing it.
func (p *Proc) Wait(req Handle, st *Status) int {
	if req == RequestNull {
		fillProcNullStatus(st)
		return Success
	}
	r, ok := p.reqs[req]
	if !ok {
		return ErrRequest
	}
	for !r.done {
		if code := p.progress(true); code != Success {
			return code
		}
	}
	delete(p.reqs, req)
	if st != nil {
		*st = r.status
	}
	return r.code
}

// Test polls one request; outcome=(completed, code). A completed request
// is freed.
func (p *Proc) Test(req Handle, st *Status) (bool, int) {
	if req == RequestNull {
		fillProcNullStatus(st)
		return true, Success
	}
	r, ok := p.reqs[req]
	if !ok {
		return false, ErrRequest
	}
	if !r.done {
		if code := p.progress(false); code != Success {
			return false, code
		}
	}
	if !r.done {
		return false, Success
	}
	delete(p.reqs, req)
	if st != nil {
		*st = r.status
	}
	return true, r.code
}

// Waitall completes a set of requests. statuses may be nil or match
// len(reqs).
func (p *Proc) Waitall(reqs []Handle, statuses []Status) int {
	if statuses != nil && len(statuses) != len(reqs) {
		return ErrArg
	}
	rc := Success
	for i, h := range reqs {
		var st Status
		code := p.Wait(h, &st)
		if code != Success {
			rc = code
		}
		if statuses != nil {
			statuses[i] = st
		}
	}
	return rc
}

// Sendrecv posts the receive, runs the send, then completes the receive —
// the deadlock-free composite MPI_Sendrecv.
func (p *Proc) Sendrecv(sendbuf []byte, scount int, stype Handle, dest, stag int,
	recvbuf []byte, rcount int, rtype Handle, source, rtag int,
	comm Handle, st *Status) int {
	rreq, code := p.Irecv(recvbuf, rcount, rtype, source, rtag, comm)
	if code != Success {
		return code
	}
	if code := p.Send(sendbuf, scount, stype, dest, stag, comm); code != Success {
		return code
	}
	return p.Wait(rreq, st)
}

// packElems packs count elements of dt from buf into a fresh wire buffer.
func packElems(dt *typeObj, buf []byte, count int) ([]byte, int) {
	if count == 0 {
		return nil, Success
	}
	out := make([]byte, count*dt.t.Size())
	if _, err := dt.t.Pack(buf, count, out); err != nil {
		return nil, ErrBuffer
	}
	return out, Success
}
