package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tiny returns a minutes-not-hours configuration for CI.
func tiny() Options {
	return Options{Nodes: 2, RanksPerNode: 2, Reps: 1, MaxSize: 256, Iters: 2, Warmup: 1, AppScale: 0.02}
}

func TestLatencyFigureShape(t *testing.T) {
	fig, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig2" || len(fig.Series) != 4 {
		t.Fatalf("fig = %s with %d series", fig.ID, len(fig.Series))
	}
	wantLabels := []string{
		"MPICH", "MPICH + Mukautuva + MANA", "Open MPI", "Open MPI + Mukautuva + MANA",
	}
	for i, s := range fig.Series {
		if s.Label != wantLabels[i] {
			t.Fatalf("series %d label %q, want %q", i, s.Label, wantLabels[i])
		}
		if len(s.X) != 9 { // 1..256 in powers of two
			t.Fatalf("series %q has %d points, want 9", s.Label, len(s.X))
		}
		for j, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %q point %d latency %v", s.Label, j, y)
			}
		}
	}
	if len(fig.Notes) == 0 {
		t.Fatal("no overhead notes")
	}
	if fig.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig5Shape(t *testing.T) {
	fig, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("%d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 2 { // CoMD + wave
			t.Fatalf("series %q has %d apps", s.Label, len(s.Y))
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %q has non-positive time", s.Label)
			}
		}
	}
}

func TestFig6CrossRestartSeries(t *testing.T) {
	fig, err := Fig6(tiny(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("%d series, want 3", len(fig.Series))
	}
	if !strings.Contains(fig.Series[2].Label, "restart") {
		t.Fatalf("third series label %q", fig.Series[2].Label)
	}
	// The restarted sweep covers the full size axis.
	if len(fig.Series[2].Y) != len(fig.Series[1].Y) {
		t.Fatalf("restart series has %d points, MPICH launch %d",
			len(fig.Series[2].Y), len(fig.Series[1].Y))
	}
}

func TestFSGSBaseAblation(t *testing.T) {
	fig, err := FSGSBase(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("%d series", len(fig.Series))
	}
	// New-kernel overhead must be below old-kernel overhead at 1 B.
	native, old, modern := fig.Series[0].Y[0], fig.Series[1].Y[0], fig.Series[2].Y[0]
	if !(old > native) {
		t.Fatalf("old-kernel stack (%v) not slower than native (%v)", old, native)
	}
	if modern >= old {
		t.Fatalf("5.9+ kernel (%v) not faster than pre-5.9 (%v)", modern, old)
	}
}

func TestRecoveryOverheadTable(t *testing.T) {
	fig, err := RecoveryOverhead(tiny(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "recovery" || len(fig.Series) != 2 {
		t.Fatalf("fig %s with %d series", fig.ID, len(fig.Series))
	}
	recovered, lost := fig.Series[0], fig.Series[1]
	if len(recovered.Y) != 3 || len(lost.Y) != 3 {
		t.Fatalf("series lengths %d/%d, want 3 intervals", len(recovered.Y), len(lost.Y))
	}
	for i, y := range recovered.Y {
		if y <= 0 {
			t.Fatalf("interval %g: non-positive recovered completion %v", recovered.X[i], y)
		}
	}
	// Lost work can only grow (weakly) with the checkpoint interval:
	// fewer images, wider recomputation window.
	for i := 1; i < len(lost.Y); i++ {
		if lost.Y[i] < lost.Y[i-1] {
			t.Fatalf("lost work shrank with a longer interval: %v", lost.Y)
		}
	}
	if len(fig.Notes) < 4 {
		t.Fatalf("notes missing: %v", fig.Notes)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("17", tiny(), t.TempDir()); err == nil {
		t.Fatal("unknown figure accepted")
	}
	fig, err := ByName("4", tiny(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig4" {
		t.Fatalf("ID = %s", fig.ID)
	}
}

func TestWriteCSV(t *testing.T) {
	fig := &Figure{
		ID:     "test",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}, Err: []float64{0.1, 0.2}}},
	}
	dir := t.TempDir()
	if err := fig.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "test.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw)
	if !strings.Contains(got, `"a"`) || !strings.Contains(got, "1,3,0.1") {
		t.Fatalf("csv content:\n%s", got)
	}
}

func TestOptionsHelpers(t *testing.T) {
	full := Full()
	if full.Nodes*full.RanksPerNode != 48 || full.Reps != 5 || full.MaxSize != 1<<18 {
		t.Fatalf("Full() changed: %+v", full)
	}
	q := Quick()
	if q.ranks() >= full.ranks() {
		t.Fatal("Quick not smaller than Full")
	}
	mo := q.matrixOptions("scratch")
	if mo.Nodes != q.Nodes || mo.Reps != q.Reps || mo.MaxSize != q.MaxSize || mo.Scratch != "scratch" {
		t.Fatalf("matrixOptions dropped fields: %+v", mo)
	}
}
