package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// tiny returns a minutes-not-hours configuration for CI.
func tiny() Options {
	return Options{Nodes: 2, RanksPerNode: 2, Reps: 1, MaxSize: 256, Iters: 2, Warmup: 1, AppScale: 0.02}
}

// A figure re-run with a warm cache serves every scenario from disk and
// produces the identical figure — the incremental layer under the
// harness queries.
func TestFigureServedFromCache(t *testing.T) {
	o := tiny()
	o.Cache = t.TempDir()
	cold, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Series) != len(cold.Series) {
		t.Fatalf("warm figure has %d series, cold %d", len(warm.Series), len(cold.Series))
	}
	for i := range cold.Series {
		c, w := cold.Series[i], warm.Series[i]
		if len(c.Y) != len(w.Y) {
			t.Fatalf("series %q resized across cache", c.Label)
		}
		for j := range c.Y {
			// Bit-identical, not approximately equal: the warm run reads
			// the cold run's stored results rather than re-measuring.
			if c.Y[j] != w.Y[j] {
				t.Fatalf("series %q point %d: cold %v, warm %v", c.Label, j, c.Y[j], w.Y[j])
			}
		}
	}
}

// The figure queries answer identically over a merged report and the
// unsharded report it reassembles — the merge contract seen from the
// harness side.
func TestQueriesOverMergedReports(t *testing.T) {
	specs := fourSpecs("osu.alltoall")
	mo := tiny().matrixOptions("")

	whole := scenario.Run(specs, mo)
	// Re-running shards live would re-measure (virtual metrics wiggle
	// sub-percent across runs), so shard the *results*: split whole's
	// cells into two partial reports and merge them back.
	half := len(whole.Results) / 2
	mkPartial := func(results []scenario.Result) *scenario.Report {
		r := *whole
		r.Results = append([]scenario.Result(nil), results...)
		r.Scenarios = len(r.Results)
		r.Passed, r.Failed = 0, 0
		for _, res := range r.Results {
			if res.Status == scenario.StatusPass {
				r.Passed++
			} else {
				r.Failed++
			}
		}
		r.Provenance = &scenario.Provenance{Live: len(r.Results)}
		return &r
	}
	merged, err := scenario.MergeReports(mkPartial(whole.Results[:half]), mkPartial(whole.Results[half:]))
	if err != nil {
		t.Fatal(err)
	}

	for _, sp := range specs {
		w, err := findResult(whole, sp.ID())
		if err != nil {
			t.Fatal(err)
		}
		m, err := findResult(merged, sp.ID())
		if err != nil {
			t.Fatalf("merged report lost %s: %v", sp.ID(), err)
		}
		if w.ID != m.ID || w.Status != m.Status {
			t.Fatalf("query diverges over merged report: %+v vs %+v", w, m)
		}
		if (w.Curve == nil) != (m.Curve == nil) {
			t.Fatalf("%s: curve presence diverges", sp.ID())
		}
		if w.Curve != nil && w.Curve.MedianUS[0] != m.Curve.MedianUS[0] {
			t.Fatalf("%s: curve diverges over merged report", sp.ID())
		}
	}

	// And a single shard alone answers findResult with a real error, not
	// a nil dereference, for the cells it does not own.
	lone := mkPartial(whole.Results[:1])
	missing := 0
	for _, sp := range specs {
		if _, err := findResult(lone, sp.ID()); err != nil {
			missing++
		}
	}
	if missing != len(specs)-1 {
		t.Fatalf("partial report: %d missing cells reported, want %d", missing, len(specs)-1)
	}
}

func TestLatencyFigureShape(t *testing.T) {
	fig, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig2" || len(fig.Series) != 4 {
		t.Fatalf("fig = %s with %d series", fig.ID, len(fig.Series))
	}
	wantLabels := []string{
		"MPICH", "MPICH + Mukautuva + MANA", "Open MPI", "Open MPI + Mukautuva + MANA",
	}
	for i, s := range fig.Series {
		if s.Label != wantLabels[i] {
			t.Fatalf("series %d label %q, want %q", i, s.Label, wantLabels[i])
		}
		if len(s.X) != 9 { // 1..256 in powers of two
			t.Fatalf("series %q has %d points, want 9", s.Label, len(s.X))
		}
		for j, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %q point %d latency %v", s.Label, j, y)
			}
		}
	}
	if len(fig.Notes) == 0 {
		t.Fatal("no overhead notes")
	}
	if fig.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig5Shape(t *testing.T) {
	fig, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("%d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 2 { // CoMD + wave
			t.Fatalf("series %q has %d apps", s.Label, len(s.Y))
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %q has non-positive time", s.Label)
			}
		}
	}
}

func TestFig6CrossRestartSeries(t *testing.T) {
	fig, err := Fig6(tiny(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("%d series, want 3", len(fig.Series))
	}
	if !strings.Contains(fig.Series[2].Label, "restart") {
		t.Fatalf("third series label %q", fig.Series[2].Label)
	}
	// The restarted sweep covers the full size axis.
	if len(fig.Series[2].Y) != len(fig.Series[1].Y) {
		t.Fatalf("restart series has %d points, MPICH launch %d",
			len(fig.Series[2].Y), len(fig.Series[1].Y))
	}
}

func TestFSGSBaseAblation(t *testing.T) {
	fig, err := FSGSBase(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("%d series", len(fig.Series))
	}
	// New-kernel overhead must be below old-kernel overhead at 1 B.
	native, old, modern := fig.Series[0].Y[0], fig.Series[1].Y[0], fig.Series[2].Y[0]
	if !(old > native) {
		t.Fatalf("old-kernel stack (%v) not slower than native (%v)", old, native)
	}
	if modern >= old {
		t.Fatalf("5.9+ kernel (%v) not faster than pre-5.9 (%v)", modern, old)
	}
}

func TestRecoveryOverheadTable(t *testing.T) {
	fig, err := RecoveryOverhead(tiny(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "recovery" || len(fig.Series) != 2 {
		t.Fatalf("fig %s with %d series", fig.ID, len(fig.Series))
	}
	recovered, lost := fig.Series[0], fig.Series[1]
	if len(recovered.Y) != 3 || len(lost.Y) != 3 {
		t.Fatalf("series lengths %d/%d, want 3 intervals", len(recovered.Y), len(lost.Y))
	}
	for i, y := range recovered.Y {
		if y <= 0 {
			t.Fatalf("interval %g: non-positive recovered completion %v", recovered.X[i], y)
		}
	}
	// Lost work can only grow (weakly) with the checkpoint interval:
	// fewer images, wider recomputation window.
	for i := 1; i < len(lost.Y); i++ {
		if lost.Y[i] < lost.Y[i-1] {
			t.Fatalf("lost work shrank with a longer interval: %v", lost.Y)
		}
	}
	if len(fig.Notes) < 4 {
		t.Fatalf("notes missing: %v", fig.Notes)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("17", tiny(), t.TempDir()); err == nil {
		t.Fatal("unknown figure accepted")
	}
	fig, err := ByName("4", tiny(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig4" {
		t.Fatalf("ID = %s", fig.ID)
	}
}

func TestWriteCSV(t *testing.T) {
	fig := &Figure{
		ID:     "test",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}, Err: []float64{0.1, 0.2}}},
	}
	dir := t.TempDir()
	if err := fig.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "test.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw)
	if !strings.Contains(got, `"a"`) || !strings.Contains(got, "1,3,0.1") {
		t.Fatalf("csv content:\n%s", got)
	}
}

func TestOptionsHelpers(t *testing.T) {
	full := Full()
	if full.Nodes*full.RanksPerNode != 48 || full.Reps != 5 || full.MaxSize != 1<<18 {
		t.Fatalf("Full() changed: %+v", full)
	}
	q := Quick()
	if q.ranks() >= full.ranks() {
		t.Fatal("Quick not smaller than Full")
	}
	mo := q.matrixOptions("scratch")
	if mo.Nodes != q.Nodes || mo.Reps != q.Reps || mo.MaxSize != q.MaxSize || mo.Scratch != "scratch" {
		t.Fatalf("matrixOptions dropped fields: %+v", mo)
	}
}

// TestShrinkRecoveryFigure runs the shrink-vs-restart comparison at
// tiny scale: three series (fault-free, shrink, restart) over three
// implementations, each with a positive time-to-solution and a note
// per implementation.
func TestShrinkRecoveryFigure(t *testing.T) {
	fig, err := ShrinkRecovery(tiny(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "shrinkrecovery" || len(fig.Series) != 3 {
		t.Fatalf("figure shape: id=%s series=%d", fig.ID, len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 3 {
			t.Fatalf("series %q has %d points, want 3 (one per implementation)", s.Label, len(s.Y))
		}
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("series %q impl %d: non-positive time %v", s.Label, i, y)
			}
		}
	}
	// Both recovery modes must cost at least the fault-free run: each
	// loses work to the crash.
	for i := 0; i < 3; i++ {
		if fig.Series[1].Y[i] < fig.Series[0].Y[i] || fig.Series[2].Y[i] < fig.Series[0].Y[i] {
			t.Errorf("impl %d: recovery beat the fault-free run (%v / %v vs %v)",
				i, fig.Series[1].Y[i], fig.Series[2].Y[i], fig.Series[0].Y[i])
		}
	}
	if len(fig.Notes) != 3 {
		t.Fatalf("notes = %v", fig.Notes)
	}
}

// TestRecoveryFrontierFigure runs the three-way recovery comparison at
// tiny scale: four series (fault-free, replication, shrink, restart)
// over three implementations. Replication's point must sit above the
// fault-free anchor — the steady-state duplicate-traffic overhead is
// ~2x, far outside the engine's virtual-time noise. The two recomputing
// modes are NOT ordered against the anchor here: at tiny scale a crash
// near the first safe point costs less than the cross-cell jitter
// (each cell derives its own seeds), so their relation to the baseline
// is the figure's finding, not a test invariant.
func TestRecoveryFrontierFigure(t *testing.T) {
	fig, err := RecoveryFrontier(tiny(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "recoveryfrontier" || len(fig.Series) != 4 {
		t.Fatalf("figure shape: id=%s series=%d", fig.ID, len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 3 {
			t.Fatalf("series %q has %d points, want 3 (one per implementation)", s.Label, len(s.Y))
		}
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("series %q impl %d: non-positive time %v", s.Label, i, y)
			}
		}
	}
	for i := 0; i < 3; i++ {
		if repl, base := fig.Series[1].Y[i], fig.Series[0].Y[i]; repl < base {
			t.Errorf("impl %d: %q beat the fault-free run (%v vs %v)",
				i, fig.Series[1].Label, repl, base)
		}
	}
	if len(fig.Notes) != 3 {
		t.Fatalf("notes = %v", fig.Notes)
	}
}
