// Package harness drives the paper's evaluation: one entry point per
// figure (Figures 2-6 of Section 5, plus the FSGSBASE ablation its
// overhead analysis implies, plus the recovery-overhead table that puts
// the title's fault tolerance under an actually-injected failure),
// producing the same series the paper plots, with the same protocol
// (medians of repeated runs; Figure 5 adds standard deviations).
//
// The harness owns no experiment loops of its own: each figure names the
// scenarios it needs, hands them to the internal/scenario matrix engine,
// and renders the figure as a query over the engine's results. Running a
// figure and running the full matrix therefore measure the same way.
//
// In the README's layer diagram the harness sits above the stack
// column next to internal/scenario, driving every row below it —
// Section 5's evaluation protocol made executable.
package harness

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Options scales an experiment. Full() reproduces the paper's setup;
// Quick() is a minutes-scale smoke configuration for CI and tests.
type Options struct {
	// Nodes and RanksPerNode define the cluster (the paper: 4 x 12).
	Nodes, RanksPerNode int
	// Reps is the number of repetitions (the paper: 5).
	Reps int
	// MaxSize caps the message-size sweep (the paper: 256 KiB).
	MaxSize int
	// Iters/Warmup are the OSU per-size iteration counts; ItersLarge
	// applies to sizes of 32 KiB and up (OSU's reduced large-message
	// counts).
	Iters, Warmup, ItersLarge int
	// AppScale scales the Figure 5 applications' step counts (1.0 = paper
	// scale).
	AppScale float64
	// Parallel bounds the scenario engine's worker pool (0 = per-CPU).
	Parallel int
	// Timeout fails one deadlocked scenario instead of hanging the figure
	// (0 = the engine's default for the scale).
	Timeout time.Duration
	// Seed perturbs the engine's deterministic per-scenario jitter seeds.
	Seed int64
	// Cache, when set, is the engine's content-addressed result cache
	// directory: figures re-run over unchanged code and options serve
	// their scenarios from disk instead of re-executing them.
	Cache string
	// Progress selects the rank execution engine for every scenario
	// world (default goroutine-per-rank; "event" for large-rank runs).
	Progress core.ProgressMode
}

// Full returns the paper-scale configuration.
func Full() Options {
	return Options{Nodes: 4, RanksPerNode: 12, Reps: 5, MaxSize: 1 << 18, Iters: 20, Warmup: 4, ItersLarge: 4, AppScale: 1, Timeout: 30 * time.Minute}
}

// Quick returns a small configuration for tests.
func Quick() Options {
	return Options{Nodes: 2, RanksPerNode: 4, Reps: 2, MaxSize: 1 << 12, Iters: 4, Warmup: 1, ItersLarge: 2, AppScale: 0.08, Timeout: 5 * time.Minute}
}

func (o Options) ranks() int { return o.Nodes * o.RanksPerNode }

// matrixOptions translates figure options into engine options.
func (o Options) matrixOptions(scratch string) scenario.Options {
	timeout := o.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Minute // never run a figure without a deadlock bound
	}
	return scenario.Options{
		Nodes: o.Nodes, RanksPerNode: o.RanksPerNode, Reps: o.Reps,
		MaxSize: o.MaxSize, Iters: o.Iters, Warmup: o.Warmup, ItersLarge: o.ItersLarge,
		AppScale: o.AppScale, Parallel: o.Parallel, Timeout: timeout,
		BaseSeed: o.Seed, Scratch: scratch, CacheDir: o.Cache,
		Progress: o.Progress,
	}
}

// fourSpecs is the paper's standard comparison matrix over one program.
func fourSpecs(prog string) []scenario.Spec {
	return []scenario.Spec{
		{Program: prog, Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone},
		{Program: prog, Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA},
		{Program: prog, Impl: core.ImplOpenMPI, ABI: core.ABINative, Ckpt: core.CkptNone},
		{Program: prog, Impl: core.ImplOpenMPI, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA},
	}
}

// runMatrix executes the figure's scenarios and surfaces the first
// failure as an error (a figure is all-or-nothing).
func runMatrix(specs []scenario.Spec, o Options, scratch string) (*scenario.Report, error) {
	rep := scenario.Run(specs, o.matrixOptions(scratch))
	if f := rep.FirstFailure(); f != nil {
		return nil, fmt.Errorf("harness: scenario %s: %s", f.ID, f.Error)
	}
	return rep, nil
}

// findResult resolves one scenario in a report, with a real error
// instead of a nil dereference when the cell is absent. Figures run
// their own matrices (every spec is guaranteed a result), but the same
// queries also run over externally supplied reports — a single shard or
// a bad merge can lack cells, and the error says which one and why.
// The queries themselves behave identically over merged and unsharded
// reports: MergeReports guarantees ID-sorted results and Find falls
// back to a linear scan for unsorted hand-assembled ones.
func findResult(rep *scenario.Report, id string) (*scenario.Result, error) {
	if res := rep.Find(id); res != nil {
		return res, nil
	}
	return nil, fmt.Errorf("harness: scenario %s missing from report (a single shard? merge every shard report first)", id)
}

// Series is one plotted line (or bar group).
type Series struct {
	Label string
	X     []float64 // message sizes (bytes) or category index
	Y     []float64 // medians
	Err   []float64 // standard deviations (Figure 5)
}

// Figure is one reproduced table/figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// curveSeries converts an engine latency curve into a plotted series.
func curveSeries(label string, c *scenario.Curve) Series {
	s := Series{Label: label}
	if c == nil {
		return s
	}
	for i, sz := range c.Sizes {
		s.X = append(s.X, float64(sz))
		s.Y = append(s.Y, c.MedianUS[i])
		s.Err = append(s.Err, c.StdDevUS[i])
	}
	return s
}

// latencyFigure sweeps one collective over the four stacks: run the four
// scenarios through the matrix engine, then read the aggregated curves.
func latencyFigure(id, title string, prog string, o Options) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "Message Size (byte)",
		YLabel: "Average Latency (us)",
	}
	specs := fourSpecs(prog)
	rep, err := runMatrix(specs, o, "")
	if err != nil {
		return nil, err
	}
	for _, sp := range specs {
		res, err := findResult(rep, sp.ID())
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, curveSeries(sp.LaunchStack().Label(), res.Curve))
	}
	annotateOverheads(fig)
	return fig, nil
}

// annotateOverheads appends the paper's in-text claims: maximum and
// large-message overhead of the Muk+MANA stacks over their native
// baselines.
func annotateOverheads(fig *Figure) {
	pairs := [][2]int{{0, 1}, {2, 3}} // (native, muk+mana) series indices
	for _, p := range pairs {
		nat, wrapped := fig.Series[p[0]], fig.Series[p[1]]
		if len(nat.Y) == 0 || len(nat.Y) != len(wrapped.Y) {
			continue
		}
		maxOv, maxAt := math.NaN(), 0.0
		lastOv := math.NaN()
		for i := range nat.Y {
			ov := stats.OverheadPct(nat.Y[i], wrapped.Y[i])
			if !math.IsNaN(ov) && (math.IsNaN(maxOv) || ov > maxOv) {
				maxOv, maxAt = ov, nat.X[i]
			}
			lastOv = ov
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s vs %s: max overhead %s at %d B; %s at largest size",
			wrapped.Label, nat.Label, stats.FormatPct(maxOv), int(maxAt), stats.FormatPct(lastOv)))
	}
}

// Fig2 reproduces Figure 2: OSU MPI_Alltoall latency.
func Fig2(o Options) (*Figure, error) {
	return latencyFigure("fig2", "OSU Micro-Benchmark: MPI_Alltoall", "osu.alltoall", o)
}

// Fig3 reproduces Figure 3: OSU MPI_Bcast latency.
func Fig3(o Options) (*Figure, error) {
	return latencyFigure("fig3", "OSU Micro-Benchmark: MPI_Bcast", "osu.bcast", o)
}

// Fig4 reproduces Figure 4: OSU MPI_Allreduce latency.
func Fig4(o Options) (*Figure, error) {
	return latencyFigure("fig4", "OSU Micro-Benchmark: MPI_Allreduce", "osu.allreduce", o)
}

// Fig5 reproduces Figure 5: completion times of CoMD and wave_mpi under
// the four stacks (median and standard deviation of Reps runs). All eight
// scenarios go through the engine in one run.
func Fig5(o Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig5",
		Title:  "Runtime performance of real-world MPI applications",
		XLabel: "Application (0=CoMD, 1=wave_mpi)",
		YLabel: "Time (secs)",
	}
	apps := []string{"app.comd", "app.wave"}
	stacks := fourSpecs(apps[0])
	var specs []scenario.Spec
	for _, app := range apps {
		for _, sp := range stacks {
			sp.Program = app
			specs = append(specs, sp)
		}
	}
	rep, err := runMatrix(specs, o, "")
	if err != nil {
		return nil, err
	}
	for _, sp := range stacks {
		series := Series{Label: sp.LaunchStack().Label()}
		for ai, app := range apps {
			q := sp
			q.Program = app
			res, err := findResult(rep, q.ID())
			if err != nil {
				return nil, err
			}
			series.X = append(series.X, float64(ai))
			series.Y = append(series.Y, res.Time.Median)
			series.Err = append(series.Err, res.Time.StdDev)
		}
		fig.Series = append(fig.Series, series)
	}
	// In-text claims: per-app overhead of the wrapped stacks.
	for _, p := range [][2]int{{0, 1}, {2, 3}} {
		nat, wrapped := fig.Series[p[0]], fig.Series[p[1]]
		for ai, app := range apps {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %s vs %s overhead %s",
				app, wrapped.Label, nat.Label,
				stats.FormatPct(stats.OverheadPct(nat.Y[ai], wrapped.Y[ai]))))
		}
	}
	return fig, nil
}

// Fig6 reproduces the Section 5.3 experiment: launch the alltoall sweep
// under Open MPI (+Muk+MANA), checkpoint it (the engine pins the
// checkpoint to the first safe point), let the original run to
// completion, restart the images under MPICH, and compare all three
// latency curves. It is one cross-restart scenario plus one plain MPICH
// scenario in the matrix.
func Fig6(o Options, scratch string) (*Figure, error) {
	fig := &Figure{
		ID:     "fig6",
		Title:  "Performance After Restart with Different MPI Implementation",
		XLabel: "Message Size (byte)",
		YLabel: "Average Latency (us)",
	}
	pair := scenario.Spec{
		Program: "osu.alltoall",
		Impl:    core.ImplOpenMPI, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
		RestartImpl: core.ImplMPICH, RestartABI: core.ABIMukautuva,
	}
	plain := scenario.Spec{
		Program: "osu.alltoall",
		Impl:    core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
	}
	rep, err := runMatrix([]scenario.Spec{pair, plain}, o, scratch)
	if err != nil {
		return nil, err
	}
	pairRes, err := findResult(rep, pair.ID())
	if err != nil {
		return nil, err
	}
	plainRes, err := findResult(rep, plain.ID())
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series,
		curveSeries("Launch with Open MPI", pairRes.Curve),
		curveSeries("Launch with MPICH", plainRes.Curve),
		curveSeries("Launch with Open MPI, restart with MPICH", pairRes.RestartCurve))

	// The paper's claim: the restarted curve tracks the MPICH launch curve.
	m, rm := fig.Series[1].Y, fig.Series[2].Y
	if len(m) == len(rm) && len(m) > 0 {
		var devs []float64
		for i := range m {
			if d := stats.OverheadPct(m[i], rm[i]); !math.IsNaN(d) {
				devs = append(devs, d)
			}
		}
		if len(devs) > 0 {
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"restart-vs-MPICH-launch deviation: median %s, max %s",
				stats.FormatPct(stats.Median(devs)), stats.FormatPct(stats.Max(devs))))
		}
	}
	if len(pairRes.Lineage) > 0 {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"checkpoint lineage: %s -> %s at step %d",
			pairRes.Lineage[0].LaunchStack, pairRes.Lineage[0].RestartStack, pairRes.Lineage[0].Step))
	}
	return fig, nil
}

// RecoveryOverhead is the Figure-6 protocol under actual failure, the
// table the paper's title promises: launch app.wave under Open MPI (+
// Mukautuva + MANA) with periodic checkpointing and a seeded rank crash,
// detect the failure, recover automatically under MPICH from the latest
// complete image, and sweep the checkpoint interval. Short intervals
// buy a narrow recomputation window at the cost of more checkpoints;
// past the crash step, the interval loses the whole prefix (scratch
// relaunch). The fault-free cell anchors the overhead claims.
func RecoveryOverhead(o Options, scratch string) (*Figure, error) {
	fig := &Figure{
		ID:     "recovery",
		Title:  "Time-to-recover vs checkpoint interval (crash under Open MPI, recover under MPICH)",
		XLabel: "Checkpoint interval (steps)",
		YLabel: "Virtual time-to-solution (secs)",
	}
	baseline := scenario.Spec{
		Program: "app.wave",
		Impl:    core.ImplOpenMPI, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
	}
	intervals := []uint64{1, 2, 4}
	specs := []scenario.Spec{baseline}
	for _, iv := range intervals {
		s := baseline
		s.RestartImpl = core.ImplMPICH
		s.RestartABI = core.ABIMukautuva
		s.Fault = faults.KindRankCrash
		s.CkptEvery = iv
		specs = append(specs, s)
	}
	rep, err := runMatrix(specs, o, scratch)
	if err != nil {
		return nil, err
	}
	base, err := findResult(rep, baseline.ID())
	if err != nil {
		return nil, err
	}
	recovered := Series{Label: "time-to-solution"}
	lost := Series{Label: "lost work (virt ms)"}
	for i, iv := range intervals {
		res, err := findResult(rep, specs[i+1].ID())
		if err != nil {
			return nil, err
		}
		recovered.X = append(recovered.X, float64(iv))
		recovered.Y = append(recovered.Y, res.Time.Median)
		recovered.Err = append(recovered.Err, res.Time.StdDev)
		var lostMS []float64
		restarts := 0
		for _, fr := range res.Faults {
			lostMS = append(lostMS, fr.LostVirtMS)
			restarts += fr.Restarts
		}
		lost.X = append(lost.X, float64(iv))
		lost.Y = append(lost.Y, stats.Median(lostMS))
		lost.Err = append(lost.Err, stats.StdDev(lostMS))
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"interval %d: completion overhead %s vs fault-free, %.3f ms median lost work, %d restarts over %d reps",
			iv, stats.FormatPct(stats.OverheadPct(base.Time.Median, res.Time.Median)),
			stats.Median(lostMS), restarts, res.Reps))
	}
	fig.Series = append(fig.Series, recovered, lost)
	fig.Notes = append(fig.Notes, fmt.Sprintf("fault-free baseline: %.3f s", base.Time.Median))
	return fig, nil
}

// ShrinkRecovery compares the two halves of fault-tolerant MPI on the
// same seeded rank crash, per implementation: ULFM in-place recovery
// (revoke/shrink/recompute on the survivors, no checkpointer — the
// recovery-mode axis's shrink cells) versus automated
// checkpoint/restart (periodic images, restart from the latest complete
// one), with the fault-free run as the anchor. All stacks bind through
// Mukautuva so the comparison is between recovery models, not binding
// overheads; virtual time-to-solution includes each model's
// recomputation (shrink loses the prefix, restart loses the window
// since the last image) — the trade the paper's title implies but its
// evaluation never measures.
func ShrinkRecovery(o Options, scratch string) (*Figure, error) {
	fig := &Figure{
		ID:     "shrinkrecovery",
		Title:  "Time-to-recover: ULFM shrink vs checkpoint/restart (seeded rank crash)",
		XLabel: "Implementation (0=MPICH, 1=Open MPI, 2=StdABI)",
		YLabel: "Virtual time-to-solution (secs)",
	}
	impls := []core.Impl{core.ImplMPICH, core.ImplOpenMPI, core.ImplStdABI}
	var specs []scenario.Spec
	for _, impl := range impls {
		baseline := scenario.Spec{
			Program: "app.wave", Impl: impl, ABI: core.ABIMukautuva, Ckpt: core.CkptNone,
		}
		shrink := baseline
		shrink.Fault = faults.KindRankCrash
		shrink.Recovery = scenario.RecoveryShrink
		restart := scenario.Spec{
			Program: "app.wave", Impl: impl, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			RestartImpl: impl, RestartABI: core.ABIMukautuva,
			Fault: faults.KindRankCrash,
		}
		specs = append(specs, baseline, shrink, restart)
	}
	rep, err := runMatrix(specs, o, scratch)
	if err != nil {
		return nil, err
	}
	series := []Series{
		{Label: "fault-free"},
		{Label: "ULFM shrink (in place)"},
		{Label: "checkpoint/restart"},
	}
	for ii := range impls {
		for si := range series {
			res, err := findResult(rep, specs[ii*3+si].ID())
			if err != nil {
				return nil, err
			}
			series[si].X = append(series[si].X, float64(ii))
			series[si].Y = append(series[si].Y, res.Time.Median)
			series[si].Err = append(series[si].Err, res.Time.StdDev)
		}
		base, shrunk, restarted := series[0].Y[ii], series[1].Y[ii], series[2].Y[ii]
		shrinkRes, err := findResult(rep, specs[ii*3+1].ID())
		if err != nil {
			return nil, err
		}
		survivors := 0
		if len(shrinkRes.Faults) > 0 {
			survivors = shrinkRes.Faults[0].Survivors
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: shrink overhead %s, restart overhead %s vs fault-free (%d survivors continue in place)",
			impls[ii],
			stats.FormatPct(stats.OverheadPct(base, shrunk)),
			stats.FormatPct(stats.OverheadPct(base, restarted)), survivors))
	}
	fig.Series = series
	return fig, nil
}

// RecoveryFrontier puts all three legs of the recovery axis on one
// figure, per implementation, against the same seeded rank crash:
// replication failover (warm shadow pairs — pays a steady-state ~2x
// message overhead up front and recovers for free), ULFM shrink
// (pays nothing up front, recomputes the lost prefix on the
// survivors), and checkpoint/restart (pays periodic image I/O and the
// lost-work window behind the latest image), with the fault-free run
// as the anchor. All stacks bind through Mukautuva so the contrast is
// between recovery cost models, not binding overheads. This is the
// trade FTHP-MPI (arXiv:2504.09989) argues qualitatively; here each
// point is a measured virtual time-to-solution from the matrix engine.
func RecoveryFrontier(o Options, scratch string) (*Figure, error) {
	fig := &Figure{
		ID:     "recoveryfrontier",
		Title:  "Recovery frontier: replication vs ULFM shrink vs checkpoint/restart (seeded rank crash)",
		XLabel: "Implementation (0=MPICH, 1=Open MPI, 2=StdABI)",
		YLabel: "Virtual time-to-solution (secs)",
	}
	impls := []core.Impl{core.ImplMPICH, core.ImplOpenMPI, core.ImplStdABI}
	var specs []scenario.Spec
	for _, impl := range impls {
		baseline := scenario.Spec{
			Program: "app.wave", Impl: impl, ABI: core.ABIMukautuva, Ckpt: core.CkptNone,
		}
		replicate := baseline
		replicate.Fault = faults.KindRankCrash
		replicate.Recovery = scenario.RecoveryReplicate
		shrink := baseline
		shrink.Fault = faults.KindRankCrash
		shrink.Recovery = scenario.RecoveryShrink
		restart := scenario.Spec{
			Program: "app.wave", Impl: impl, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			RestartImpl: impl, RestartABI: core.ABIMukautuva,
			Fault: faults.KindRankCrash,
		}
		specs = append(specs, baseline, replicate, shrink, restart)
	}
	rep, err := runMatrix(specs, o, scratch)
	if err != nil {
		return nil, err
	}
	series := []Series{
		{Label: "fault-free"},
		{Label: "replication failover (warm shadows)"},
		{Label: "ULFM shrink (in place)"},
		{Label: "checkpoint/restart"},
	}
	for ii := range impls {
		for si := range series {
			res, err := findResult(rep, specs[ii*4+si].ID())
			if err != nil {
				return nil, err
			}
			series[si].X = append(series[si].X, float64(ii))
			series[si].Y = append(series[si].Y, res.Time.Median)
			series[si].Err = append(series[si].Err, res.Time.StdDev)
		}
		base := series[0].Y[ii]
		replRes, err := findResult(rep, specs[ii*4+1].ID())
		if err != nil {
			return nil, err
		}
		promotions := 0
		if len(replRes.Faults) > 0 {
			promotions = replRes.Faults[0].Promotions
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: replication overhead %s (steady-state, %d promotion), shrink overhead %s, restart overhead %s vs fault-free",
			impls[ii],
			stats.FormatPct(stats.OverheadPct(base, series[1].Y[ii])), promotions,
			stats.FormatPct(stats.OverheadPct(base, series[2].Y[ii])),
			stats.FormatPct(stats.OverheadPct(base, series[3].Y[ii]))))
	}
	fig.Series = series
	return fig, nil
}

// FSGSBase is the ablation the paper's overhead analysis implies: the same
// Muk+MANA alltoall sweep under the old-kernel (syscall) and new-kernel
// (userspace FSGSBASE) cost models — the scenario matrix's kernel axis.
func FSGSBase(o Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fsgsbase",
		Title:  "Ablation: FSGSBASE kernel support vs MANA overhead",
		XLabel: "Message Size (byte)",
		YLabel: "Average Latency (us)",
	}
	specs := []scenario.Spec{
		{Program: "osu.alltoall", Impl: core.ImplMPICH, ABI: core.ABINative, Ckpt: core.CkptNone},
		{Program: "osu.alltoall", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA},
		{Program: "osu.alltoall", Impl: core.ImplMPICH, ABI: core.ABIMukautuva, Ckpt: core.CkptMANA,
			Kernel: scenario.KernelModern},
	}
	labels := []string{
		"MPICH native",
		"MPICH + Muk + MANA (kernel < 5.9)",
		"MPICH + Muk + MANA (kernel >= 5.9)",
	}
	rep, err := runMatrix(specs, o, "")
	if err != nil {
		return nil, err
	}
	for i, sp := range specs {
		res, err := findResult(rep, sp.ID())
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, curveSeries(labels[i], res.Curve))
	}
	n, o1, o2 := fig.Series[0], fig.Series[1], fig.Series[2]
	if len(n.Y) > 0 {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"1B overhead: old kernel %s, new kernel %s",
			stats.FormatPct(stats.OverheadPct(n.Y[0], o1.Y[0])),
			stats.FormatPct(stats.OverheadPct(n.Y[0], o2.Y[0]))))
	}
	return fig, nil
}

// Render formats the figure as an aligned text table.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %26s", s.Label)
	}
	b.WriteString("\n")
	// Collect the x values of the longest series.
	var xs []float64
	for _, s := range f.Series {
		if len(s.X) > len(xs) {
			xs = s.X
		}
	}
	for i := range xs {
		fmt.Fprintf(&b, "%-14.0f", xs[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				if len(s.Err) == len(s.Y) && s.Err[i] > 0 {
					fmt.Fprintf(&b, "  %17.2f ±%7.2f", s.Y[i], s.Err[i])
				} else {
					fmt.Fprintf(&b, "  %26.2f", s.Y[i])
				}
			} else {
				fmt.Fprintf(&b, "  %26s", "-")
			}
		}
		b.WriteString("\n")
	}
	for _, note := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// WriteCSV emits the figure's data as <id>.csv in dir.
func (f *Figure) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("x")
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%q,%q", s.Label, s.Label+" stddev")
	}
	b.WriteString("\n")
	var xs []float64
	for _, s := range f.Series {
		if len(s.X) > len(xs) {
			xs = s.X
		}
	}
	for i := range xs {
		fmt.Fprintf(&b, "%g", xs[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				e := 0.0
				if i < len(s.Err) {
					e = s.Err[i]
				}
				fmt.Fprintf(&b, ",%g,%g", s.Y[i], e)
			} else {
				b.WriteString(",,")
			}
		}
		b.WriteString("\n")
	}
	return os.WriteFile(filepath.Join(dir, f.ID+".csv"), []byte(b.String()), 0o644)
}

// All runs every figure at the given scale, returning them in paper order.
func All(o Options, scratch string) ([]*Figure, error) {
	var figs []*Figure
	steps := []func() (*Figure, error){
		func() (*Figure, error) { return Fig2(o) },
		func() (*Figure, error) { return Fig3(o) },
		func() (*Figure, error) { return Fig4(o) },
		func() (*Figure, error) { return Fig5(o) },
		func() (*Figure, error) { return Fig6(o, scratch) },
	}
	for _, step := range steps {
		fig, err := step()
		if err != nil {
			return figs, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// names for figure selection in cmd/paperfigs.
var byName = map[string]func(Options, string) (*Figure, error){
	"2":                func(o Options, _ string) (*Figure, error) { return Fig2(o) },
	"3":                func(o Options, _ string) (*Figure, error) { return Fig3(o) },
	"4":                func(o Options, _ string) (*Figure, error) { return Fig4(o) },
	"5":                func(o Options, _ string) (*Figure, error) { return Fig5(o) },
	"6":                Fig6,
	"fsgsbase":         func(o Options, _ string) (*Figure, error) { return FSGSBase(o) },
	"recovery":         RecoveryOverhead,
	"shrinkrecovery":   ShrinkRecovery,
	"recoveryfrontier": RecoveryFrontier,
}

// ByName runs one figure by its paper number ("2".."6") or ablation name.
func ByName(name string, o Options, scratch string) (*Figure, error) {
	fn, ok := byName[name]
	if !ok {
		var names []string
		for k := range byName {
			names = append(names, k)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("harness: unknown figure %q (have %v)", name, names)
	}
	return fn(o, scratch)
}
