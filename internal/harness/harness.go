// Package harness drives the paper's evaluation: one entry point per
// figure, producing the same series the paper plots, with the same
// protocol (medians of repeated runs; Figure 5 adds standard deviations).
package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mana"
	"repro/internal/osu"
	"repro/internal/simnet"
	"repro/internal/stats"

	// The Figure 5 applications register themselves by name.
	_ "repro/internal/apps/comd"
	_ "repro/internal/apps/wavempi"
)

// Options scales an experiment. Full() reproduces the paper's setup;
// Quick() is a minutes-scale smoke configuration for CI and tests.
type Options struct {
	// Nodes and RanksPerNode define the cluster (the paper: 4 x 12).
	Nodes, RanksPerNode int
	// Reps is the number of repetitions (the paper: 5).
	Reps int
	// MaxSize caps the message-size sweep (the paper: 256 KiB).
	MaxSize int
	// Iters/Warmup are the OSU per-size iteration counts; ItersLarge
	// applies to sizes of 32 KiB and up (OSU's reduced large-message
	// counts).
	Iters, Warmup, ItersLarge int
	// AppScale scales the Figure 5 applications' step counts (1.0 = paper
	// scale).
	AppScale float64
}

// Full returns the paper-scale configuration.
func Full() Options {
	return Options{Nodes: 4, RanksPerNode: 12, Reps: 5, MaxSize: 1 << 18, Iters: 20, Warmup: 4, ItersLarge: 4, AppScale: 1}
}

// Quick returns a small configuration for tests.
func Quick() Options {
	return Options{Nodes: 2, RanksPerNode: 4, Reps: 2, MaxSize: 1 << 12, Iters: 4, Warmup: 1, ItersLarge: 2, AppScale: 0.08}
}

func (o Options) ranks() int { return o.Nodes * o.RanksPerNode }

func (o Options) sizes() []int {
	var out []int
	for sz := 1; sz <= o.MaxSize; sz <<= 1 {
		out = append(out, sz)
	}
	return out
}

// net builds the cluster model for one repetition (distinct jitter seed per
// rep, as distinct runs on a real cluster would see).
func (o Options) net(rep int) simnet.Config {
	cfg := simnet.Discovery10GbE()
	cfg.Nodes = o.Nodes
	cfg.RanksPerNode = o.RanksPerNode
	cfg.Seed = int64(1000*rep + 17)
	return cfg
}

// fourStacks is the paper's standard comparison matrix.
func fourStacks() []core.Stack {
	return []core.Stack{
		core.DefaultStack(core.ImplMPICH, core.ABINative, core.CkptNone),
		core.DefaultStack(core.ImplMPICH, core.ABIMukautuva, core.CkptMANA),
		core.DefaultStack(core.ImplOpenMPI, core.ABINative, core.CkptNone),
		core.DefaultStack(core.ImplOpenMPI, core.ABIMukautuva, core.CkptMANA),
	}
}

// Series is one plotted line (or bar group).
type Series struct {
	Label string
	X     []float64 // message sizes (bytes) or category index
	Y     []float64 // medians
	Err   []float64 // standard deviations (Figure 5)
}

// Figure is one reproduced table/figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// runLatency runs one OSU benchmark program under one stack and returns
// rank 0's per-size mean latencies.
func runLatency(stack core.Stack, prog string, o Options, rep int) ([]int, []float64, error) {
	stack.Net = o.net(rep)
	job, err := core.Launch(stack, prog, core.WithConfigure(func(rank int, p core.Program) {
		b := p.(*osu.LatencyBench)
		b.Sizes = o.sizes()
		b.Iters = o.Iters
		b.Warmup = o.Warmup
		b.ItersLarge = o.ItersLarge
		b.SleepVirtual = 0
		b.SleepReal = 0
	}))
	if err != nil {
		return nil, nil, err
	}
	if err := job.Wait(); err != nil {
		return nil, nil, err
	}
	b := job.Program(0).(*osu.LatencyBench)
	sizes, means := b.Results()
	return sizes, means, nil
}

// latencyFigure sweeps one collective over the four stacks.
func latencyFigure(id, title string, prog string, o Options) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "Message Size (byte)",
		YLabel: "Average Latency (us)",
	}
	for _, stack := range fourStacks() {
		perSize := make(map[int][]float64)
		var sizes []int
		for rep := 0; rep < o.Reps; rep++ {
			s, means, err := runLatency(stack, prog, o, rep)
			if err != nil {
				return nil, fmt.Errorf("%s under %s rep %d: %w", prog, stack.Label(), rep, err)
			}
			sizes = s
			for i, m := range means {
				perSize[s[i]] = append(perSize[s[i]], m)
			}
		}
		series := Series{Label: stack.Label()}
		for _, sz := range sizes {
			series.X = append(series.X, float64(sz))
			series.Y = append(series.Y, stats.Median(perSize[sz]))
			series.Err = append(series.Err, stats.StdDev(perSize[sz]))
		}
		fig.Series = append(fig.Series, series)
	}
	annotateOverheads(fig)
	return fig, nil
}

// annotateOverheads appends the paper's in-text claims: maximum and
// large-message overhead of the Muk+MANA stacks over their native
// baselines.
func annotateOverheads(fig *Figure) {
	pairs := [][2]int{{0, 1}, {2, 3}} // (native, muk+mana) series indices
	for _, p := range pairs {
		nat, wrapped := fig.Series[p[0]], fig.Series[p[1]]
		if len(nat.Y) == 0 || len(nat.Y) != len(wrapped.Y) {
			continue
		}
		maxOv, maxAt := -1e18, 0.0
		lastOv := 0.0
		for i := range nat.Y {
			ov := stats.OverheadPct(nat.Y[i], wrapped.Y[i])
			if ov > maxOv {
				maxOv, maxAt = ov, nat.X[i]
			}
			lastOv = ov
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s vs %s: max overhead %.1f%% at %d B; %.2f%% at largest size",
			wrapped.Label, nat.Label, maxOv, int(maxAt), lastOv))
	}
}

// Fig2 reproduces Figure 2: OSU MPI_Alltoall latency.
func Fig2(o Options) (*Figure, error) {
	return latencyFigure("fig2", "OSU Micro-Benchmark: MPI_Alltoall", "osu.alltoall", o)
}

// Fig3 reproduces Figure 3: OSU MPI_Bcast latency.
func Fig3(o Options) (*Figure, error) {
	return latencyFigure("fig3", "OSU Micro-Benchmark: MPI_Bcast", "osu.bcast", o)
}

// Fig4 reproduces Figure 4: OSU MPI_Allreduce latency.
func Fig4(o Options) (*Figure, error) {
	return latencyFigure("fig4", "OSU Micro-Benchmark: MPI_Allreduce", "osu.allreduce", o)
}

// runApp runs one Figure 5 application to completion and returns the
// completion time in seconds (virtual, max over ranks).
func runApp(stack core.Stack, prog string, o Options, rep int) (float64, error) {
	stack.Net = o.net(rep)
	job, err := core.Launch(stack, prog, core.WithConfigure(func(rank int, p core.Program) {
		scaleApp(p, o.AppScale)
		seedApp(p, stack.Net.Seed)
	}))
	if err != nil {
		return 0, err
	}
	if err := job.Wait(); err != nil {
		return 0, err
	}
	var maxT float64
	for r := 0; r < stack.Net.Size(); r++ {
		if t := job.Clock(r).Duration().Seconds(); t > maxT {
			maxT = t
		}
	}
	return maxT, nil
}

// seedApp plants the repetition's noise seed into programs that model OS
// noise.
func seedApp(p core.Program, seed int64) {
	type seedable interface{ SetSeed(s int64) }
	if s, ok := p.(seedable); ok {
		s.SetSeed(seed)
	}
}

// scaleApp shrinks application step counts for quick runs.
func scaleApp(p core.Program, scale float64) {
	if scale == 1 || scale <= 0 {
		return
	}
	type scalable interface{ ScaleSteps(f float64) }
	if s, ok := p.(scalable); ok {
		s.ScaleSteps(scale)
	}
}

// Fig5 reproduces Figure 5: completion times of CoMD and wave_mpi under
// the four stacks (median and standard deviation of Reps runs).
func Fig5(o Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig5",
		Title:  "Runtime performance of real-world MPI applications",
		XLabel: "Application (0=CoMD, 1=wave_mpi)",
		YLabel: "Time (secs)",
	}
	apps := []string{"app.comd", "app.wave"}
	for _, stack := range fourStacks() {
		series := Series{Label: stack.Label()}
		for ai, app := range apps {
			var times []float64
			for rep := 0; rep < o.Reps; rep++ {
				t, err := runApp(stack, app, o, rep)
				if err != nil {
					return nil, fmt.Errorf("%s under %s rep %d: %w", app, stack.Label(), rep, err)
				}
				times = append(times, t)
			}
			series.X = append(series.X, float64(ai))
			series.Y = append(series.Y, stats.Median(times))
			series.Err = append(series.Err, stats.StdDev(times))
		}
		fig.Series = append(fig.Series, series)
	}
	// In-text claims: per-app overhead of the wrapped stacks.
	for _, p := range [][2]int{{0, 1}, {2, 3}} {
		nat, wrapped := fig.Series[p[0]], fig.Series[p[1]]
		for ai, app := range apps {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %s vs %s overhead %.1f%%",
				app, wrapped.Label, nat.Label,
				stats.OverheadPct(nat.Y[ai], wrapped.Y[ai])))
		}
	}
	return fig, nil
}

// Fig6 reproduces the Section 5.3 experiment: launch the modified alltoall
// under Open MPI (+Muk+MANA), checkpoint during the post-warm-up sleep
// window, restart under MPICH, and compare all three latency curves.
func Fig6(o Options, scratch string) (*Figure, error) {
	fig := &Figure{
		ID:     "fig6",
		Title:  "Performance After Restart with Different MPI Implementation",
		XLabel: "Message Size (byte)",
		YLabel: "Average Latency (us)",
	}
	configure := func(rank int, p core.Program) {
		b := p.(*osu.LatencyBench)
		b.Sizes = o.sizes()
		b.Iters = o.Iters
		b.Warmup = o.Warmup
		b.ItersLarge = o.ItersLarge
	}
	ompi := core.DefaultStack(core.ImplOpenMPI, core.ABIMukautuva, core.CkptMANA)
	mpich := core.DefaultStack(core.ImplMPICH, core.ABIMukautuva, core.CkptMANA)

	// Series 1: launch with Open MPI, checkpoint in the window, let the
	// original run to completion (its curve is the "Launch with Open MPI"
	// line).
	ompi.Net = o.net(0)
	dir := filepath.Join(scratch, "fig6-images")
	job, err := core.Launch(ompi, "osu.alltoall.ckptwindow", core.WithConfigure(configure))
	if err != nil {
		return nil, err
	}
	time.Sleep(40 * time.Millisecond) // into the sleep window
	if err := job.Checkpoint(dir, false); err != nil {
		return nil, fmt.Errorf("fig6 checkpoint: %w", err)
	}
	if err := job.Wait(); err != nil {
		return nil, fmt.Errorf("fig6 original run: %w", err)
	}
	sizes, means := job.Program(0).(*osu.LatencyBench).Results()
	fig.Series = append(fig.Series, seriesFrom("Launch with Open MPI", sizes, means))

	// Series 2: plain MPICH launch for comparison.
	s, m, err := runLatency(mpich, "osu.alltoall", o, 0)
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, seriesFrom("Launch with MPICH", s, m))

	// Series 3: restart the Open MPI images under MPICH.
	mpichRestart := mpich
	mpichRestart.Net = o.net(0)
	restarted, err := core.Restart(dir, mpichRestart)
	if err != nil {
		return nil, fmt.Errorf("fig6 restart: %w", err)
	}
	if err := restarted.Wait(); err != nil {
		return nil, fmt.Errorf("fig6 restarted run: %w", err)
	}
	rs, rm := restarted.Program(0).(*osu.LatencyBench).Results()
	fig.Series = append(fig.Series, seriesFrom("Launch with Open MPI, restart with MPICH", rs, rm))

	// The paper's claim: the restarted curve tracks the MPICH launch curve.
	if len(m) == len(rm) && len(m) > 0 {
		var devs []float64
		for i := range m {
			devs = append(devs, stats.OverheadPct(m[i], rm[i]))
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"restart-vs-MPICH-launch deviation: median %.1f%%, max %.1f%%",
			stats.Median(devs), stats.Max(devs)))
	}
	return fig, nil
}

func seriesFrom(label string, sizes []int, means []float64) Series {
	s := Series{Label: label}
	for i, sz := range sizes {
		s.X = append(s.X, float64(sz))
		s.Y = append(s.Y, means[i])
	}
	return s
}

// FSGSBase is the ablation the paper's overhead analysis implies: the same
// Muk+MANA alltoall sweep under the old-kernel (syscall) and new-kernel
// (userspace FSGSBASE) cost models.
func FSGSBase(o Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fsgsbase",
		Title:  "Ablation: FSGSBASE kernel support vs MANA overhead",
		XLabel: "Message Size (byte)",
		YLabel: "Average Latency (us)",
	}
	base := core.DefaultStack(core.ImplMPICH, core.ABINative, core.CkptNone)
	old := core.DefaultStack(core.ImplMPICH, core.ABIMukautuva, core.CkptMANA)
	newk := old
	newk.Kernel = mana.Kernel5_9Plus
	stacks := []struct {
		label string
		stack core.Stack
	}{
		{"MPICH native", base},
		{"MPICH + Muk + MANA (kernel < 5.9)", old},
		{"MPICH + Muk + MANA (kernel >= 5.9)", newk},
	}
	for _, sc := range stacks {
		s, m, err := runLatency(sc.stack, "osu.alltoall", o, 0)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, seriesFrom(sc.label, s, m))
	}
	n, o1, o2 := fig.Series[0], fig.Series[1], fig.Series[2]
	if len(n.Y) > 0 {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"1B overhead: old kernel %.1f%%, new kernel %.1f%%",
			stats.OverheadPct(n.Y[0], o1.Y[0]), stats.OverheadPct(n.Y[0], o2.Y[0])))
	}
	return fig, nil
}

// Render formats the figure as an aligned text table.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %26s", s.Label)
	}
	b.WriteString("\n")
	// Collect the x values of the longest series.
	var xs []float64
	for _, s := range f.Series {
		if len(s.X) > len(xs) {
			xs = s.X
		}
	}
	for i := range xs {
		fmt.Fprintf(&b, "%-14.0f", xs[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				if len(s.Err) == len(s.Y) && s.Err[i] > 0 {
					fmt.Fprintf(&b, "  %17.2f ±%7.2f", s.Y[i], s.Err[i])
				} else {
					fmt.Fprintf(&b, "  %26.2f", s.Y[i])
				}
			} else {
				fmt.Fprintf(&b, "  %26s", "-")
			}
		}
		b.WriteString("\n")
	}
	for _, note := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// WriteCSV emits the figure's data as <id>.csv in dir.
func (f *Figure) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("x")
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%q,%q", s.Label, s.Label+" stddev")
	}
	b.WriteString("\n")
	var xs []float64
	for _, s := range f.Series {
		if len(s.X) > len(xs) {
			xs = s.X
		}
	}
	for i := range xs {
		fmt.Fprintf(&b, "%g", xs[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				e := 0.0
				if i < len(s.Err) {
					e = s.Err[i]
				}
				fmt.Fprintf(&b, ",%g,%g", s.Y[i], e)
			} else {
				b.WriteString(",,")
			}
		}
		b.WriteString("\n")
	}
	return os.WriteFile(filepath.Join(dir, f.ID+".csv"), []byte(b.String()), 0o644)
}

// All runs every figure at the given scale, returning them in paper order.
func All(o Options, scratch string) ([]*Figure, error) {
	var figs []*Figure
	steps := []func() (*Figure, error){
		func() (*Figure, error) { return Fig2(o) },
		func() (*Figure, error) { return Fig3(o) },
		func() (*Figure, error) { return Fig4(o) },
		func() (*Figure, error) { return Fig5(o) },
		func() (*Figure, error) { return Fig6(o, scratch) },
	}
	for _, step := range steps {
		fig, err := step()
		if err != nil {
			return figs, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// names for figure selection in cmd/paperfigs.
var byName = map[string]func(Options, string) (*Figure, error){
	"2":        func(o Options, _ string) (*Figure, error) { return Fig2(o) },
	"3":        func(o Options, _ string) (*Figure, error) { return Fig3(o) },
	"4":        func(o Options, _ string) (*Figure, error) { return Fig4(o) },
	"5":        func(o Options, _ string) (*Figure, error) { return Fig5(o) },
	"6":        Fig6,
	"fsgsbase": func(o Options, _ string) (*Figure, error) { return FSGSBase(o) },
}

// ByName runs one figure by its paper number ("2".."6") or ablation name.
func ByName(name string, o Options, scratch string) (*Figure, error) {
	fn, ok := byName[name]
	if !ok {
		var names []string
		for k := range byName {
			names = append(names, k)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("harness: unknown figure %q (have %v)", name, names)
	}
	return fn(o, scratch)
}
