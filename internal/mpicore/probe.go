package mpicore

import "repro/internal/fabric"

// probeScan looks for the oldest unexpected envelope matching the probe
// parameters without consuming it, filling st on a hit. Eager envelopes
// report their payload size; rendezvous announcements report the size
// carried in the RTS header (MANA's drain protocol depends on these).
func (p *Proc) probeScan(c *Comm, srcWorld, tag int, cid uint32, st *Status) bool {
	probe := &Request{comm: c, srcWorld: srcWorld, tag: tag, cid: cid}
	for _, e := range p.unexpected {
		if e.Proto != fabric.ProtoEager && e.Proto != fabric.ProtoRTS {
			continue
		}
		if !p.envMatches(probe, e) {
			continue
		}
		if st != nil {
			st.Source = int32(c.PosOf(e.Src))
			st.Tag = e.Tag
			st.Error = int32(p.E.Success)
			if e.Proto == fabric.ProtoRTS {
				st.CountBytes = e.Hdr
			} else {
				st.CountBytes = uint64(len(e.Payload))
			}
		}
		return true
	}
	return false
}

// probeArgs validates and resolves probe arguments; the boolean result is
// false for PROC_NULL (which "matches" immediately with an empty status).
func (p *Proc) probeArgs(c *Comm, source, tag int) (int, bool, int) {
	if c == nil {
		return 0, false, p.E.ErrComm
	}
	if p.ft.Revoked(c.CID) {
		return 0, false, p.E.ErrRevoked
	}
	if code := p.validateRankTag(c, source, tag, false); code != p.E.Success {
		return 0, false, code
	}
	if source == p.K.ProcNull {
		return 0, false, p.E.Success
	}
	srcWorld := p.K.AnySource
	if source != p.K.AnySource {
		srcWorld = c.Ranks[source]
	}
	return srcWorld, true, p.E.Success
}

// Probe mirrors MPI_Probe: block until a matching message is pending.
func (p *Proc) Probe(source, tag int, c *Comm, st *Status) int {
	srcWorld, real, code := p.probeArgs(c, source, tag)
	if code != p.E.Success {
		return code
	}
	if !real {
		if st != nil {
			p.ProcNullStatus(st)
		}
		return p.E.Success
	}
	for !p.probeScan(c, srcWorld, tag, c.CID, st) {
		// A probe is not a posted request, so the failure sweep cannot
		// complete it; apply the same doom rule here so probing a dead
		// source (or a wildcard over an unacknowledged failure) raises
		// ErrProcFailed instead of blocking forever. Queued messages the
		// peer sent before dying were scanned first and still deliver.
		if code, doomed := p.probeDoom(c, srcWorld); doomed {
			return code
		}
		if code := p.Progress(true); code != p.E.Success {
			return code
		}
	}
	return p.E.Success
}

// probeDoom mirrors recvDoom for the probe path.
func (p *Proc) probeDoom(c *Comm, srcWorld int) (int, bool) {
	if srcWorld != p.K.AnySource {
		if p.ft.Failed(srcWorld) {
			return p.E.ErrProcFailed, true
		}
	} else if p.ft.HasUnacked(c.CID, c.Ranks) {
		return p.E.ErrProcFailed, true
	}
	if p.ft.Revoked(c.CID) {
		return p.E.ErrRevoked, true
	}
	return p.E.Success, false
}

// Iprobe mirrors MPI_Iprobe: poll for a matching pending message.
func (p *Proc) Iprobe(source, tag int, c *Comm, st *Status) (bool, int) {
	srcWorld, real, code := p.probeArgs(c, source, tag)
	if code != p.E.Success {
		return false, code
	}
	if !real {
		if st != nil {
			p.ProcNullStatus(st)
		}
		return true, p.E.Success
	}
	if p.probeScan(c, srcWorld, tag, c.CID, st) {
		return true, p.E.Success
	}
	if code := p.Progress(false); code != p.E.Success {
		return false, code
	}
	if p.probeScan(c, srcWorld, tag, c.CID, st) {
		return true, p.E.Success
	}
	if code, doomed := p.probeDoom(c, srcWorld); doomed {
		return false, code
	}
	return false, p.E.Success
}
