package mpicore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/ops"
	"repro/internal/simnet"
	"repro/internal/types"
)

// Differential mode-equivalence suite: the goroutine and event progress
// engines must be indistinguishable through the runtime's API. Every
// workload here runs under both modes (and event mode twice, since it
// also claims determinism) and the per-rank digests and error classes
// must agree bit for bit — p2p soaks, wildcard funnels, every collective
// family, derived communicators, and a full ULFM kill→revoke→shrink→
// agree recovery cycle.
//
// Digests deliberately exclude virtual timestamps: on multi-node
// networks the jitter RNG is consumed in delivery order, so times are a
// property of the schedule, not of the computation. What the suite pins
// down is the MPI-visible contract — payload bytes, statuses folded
// commutatively where matching is nondeterministic by spec, and error
// codes.

// modalResult is one rank's observable outcome.
type modalResult struct {
	digest uint64
	code   int
}

const fnvOffset = 14695981039346656037

// foldBytes extends an FNV-1a digest.
func foldBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// foldU64 folds a word into an FNV-1a digest.
func foldU64(h, v uint64) uint64 {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return foldBytes(h, b[:])
}

// lcg is a seeded 64-bit linear congruential generator — deterministic
// test data with no shared state between ranks.
func lcg(s *uint64) uint64 {
	*s = *s*6364136223846793005 + 1442695040888963407
	return *s
}

func fillLCG(b []byte, seed uint64) {
	s := seed
	for i := range b {
		b[i] = byte(lcg(&s) >> 56)
	}
}

// runModal executes fn on every rank of an n-rank single-node world in
// the given progress mode and returns the per-rank results.
func runModal(t *testing.T, n int, pol Policy, mode fabric.ProgressMode, fn func(p *Proc) modalResult) []modalResult {
	t.Helper()
	w, err := fabric.NewWorldMode(simnet.SingleNode(n), mode)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	results := make([]modalResult, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		w.Spawn(r, func() {
			defer wg.Done()
			results[r] = fn(NewProc(w, r, testConsts, testCodes, pol))
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("differential workload timed out in %q mode", mode)
	}
	return results
}

// assertModesAgree runs the workload under goroutine mode once and event
// mode twice, then demands bit-identical per-rank outcomes — both across
// modes (equivalence) and across the two event runs (determinism).
func assertModesAgree(t *testing.T, n int, pol Policy, fn func(p *Proc) modalResult) {
	t.Helper()
	gor := runModal(t, n, pol, fabric.ProgressGoroutine, fn)
	ev1 := runModal(t, n, pol, fabric.ProgressEvent, fn)
	ev2 := runModal(t, n, pol, fabric.ProgressEvent, fn)
	for r := 0; r < n; r++ {
		if gor[r] != ev1[r] {
			t.Errorf("rank %d diverged across modes: goroutine %+v vs event %+v", r, gor[r], ev1[r])
		}
		if ev1[r] != ev2[r] {
			t.Errorf("rank %d nondeterministic in event mode: %+v vs %+v", r, ev1[r], ev2[r])
		}
	}
}

// p2pSoak pairs ranks across every hypercube dimension and Sendrecvs
// seeded payloads whose sizes straddle both policies' eager thresholds,
// then runs a nonblocking ring wave (Isend/Irecv/Waitall) to churn the
// request freelist. n must be a power of two.
func p2pSoak(seed uint64) func(p *Proc) modalResult {
	return func(p *Proc) modalResult {
		me, n := p.Rank(), p.Size()
		c := p.CommWorld
		bt := p.Predef(types.KindByte)
		h := uint64(fnvOffset)
		for d := 1; d < n; d++ {
			peer := me ^ d
			lo := me
			if peer < lo {
				lo = peer
			}
			sz := seed*1000003 + uint64(d)*8191 + uint64(lo)*131
			size := int(lcg(&sz)%20000) + 1
			out := make([]byte, size)
			fillLCG(out, seed^(uint64(me)<<32)^uint64(d))
			in := make([]byte, size)
			if code := p.Sendrecv(out, size, bt, peer, d, in, size, bt, peer, d, c, nil); code != testCodes.Success {
				return modalResult{h, code}
			}
			h = foldBytes(h, in)
		}
		// Nonblocking ring wave: 4 outstanding receives at once.
		const waves = 4
		reqs := make([]*Request, 0, 2*waves)
		ins := make([][]byte, waves)
		left, right := (me+n-1)%n, (me+1)%n
		for i := 0; i < waves; i++ {
			size := 100*i + 17
			ins[i] = make([]byte, size)
			rr, code := p.Irecv(ins[i], size, bt, left, 1000+i, c)
			if code != testCodes.Success {
				return modalResult{h, code}
			}
			out := make([]byte, size)
			fillLCG(out, seed^(uint64(me)<<16)^uint64(1000+i))
			sr, code := p.Isend(out, size, bt, right, 1000+i, c)
			if code != testCodes.Success {
				return modalResult{h, code}
			}
			reqs = append(reqs, rr)
			if sr != nil {
				reqs = append(reqs, sr)
			}
		}
		if code := p.Waitall(reqs, nil); code != testCodes.Success {
			return modalResult{h, code}
		}
		for _, in := range ins {
			h = foldBytes(h, in)
		}
		return modalResult{h, testCodes.Success}
	}
}

// wildcardFunnel drives every non-root rank's stream of tagged sends
// into AnySource receives at rank 0. Matching order is genuinely
// schedule-dependent (the MPI spec allows any interleaving across
// sources), so rank 0 folds per-message digests commutatively — the
// multiset of deliveries, not their order, is the invariant.
func wildcardFunnel(seed uint64) func(p *Proc) modalResult {
	const perRank = 16
	return func(p *Proc) modalResult {
		me, n := p.Rank(), p.Size()
		c := p.CommWorld
		bt := p.Predef(types.KindByte)
		if me != 0 {
			for i := 0; i < perRank; i++ {
				size := int(seed%500) + 32*i + me
				out := make([]byte, size)
				fillLCG(out, seed^uint64(me*1000+i))
				if code := p.Send(out, size, bt, 0, 5, c); code != testCodes.Success {
					return modalResult{0, code}
				}
			}
			return modalResult{0, testCodes.Success}
		}
		var sum uint64
		buf := make([]byte, 8192)
		for i := 0; i < perRank*(n-1); i++ {
			var st Status
			if code := p.Recv(buf, len(buf), bt, testConsts.AnySource, 5, c, &st); code != testCodes.Success {
				return modalResult{sum, code}
			}
			m := foldBytes(fnvOffset, buf[:st.CountBytes])
			sum += foldU64(m, uint64(st.Source)) // commutative across arrival orders
		}
		return modalResult{sum, testCodes.Success}
	}
}

// collectiveSweep runs every collective family over seeded int64 data and
// digests all result buffers. Counts straddle the policies' algorithm
// cutovers (binomial vs scatter-ring bcast, recursive-doubling vs
// ring/Rabenseifner allreduce, Bruck vs pairwise alltoall).
func collectiveSweep(seed uint64, count int) func(p *Proc) modalResult {
	return func(p *Proc) modalResult {
		me, n := p.Rank(), p.Size()
		c := p.CommWorld
		it := p.Predef(types.KindInt64)
		sum := p.PredefOp(ops.OpSum)
		h := uint64(fnvOffset)

		vals := make([]int64, count)
		s := seed ^ uint64(me)<<24
		for i := range vals {
			vals[i] = int64(lcg(&s) % 100000)
		}
		rb := make([]byte, count*8)
		if code := p.Allreduce(abi.Int64Bytes(vals), rb, count, it, sum, c); code != testCodes.Success {
			return modalResult{h, code}
		}
		h = foldBytes(h, rb)

		root := int(seed) % n
		if code := p.Reduce(abi.Int64Bytes(vals), rb, count, it, sum, root, c); code != testCodes.Success {
			return modalResult{h, code}
		}
		if me == root {
			h = foldBytes(h, rb)
		}
		if code := p.Bcast(rb, count, it, root, c); code != testCodes.Success {
			return modalResult{h, code}
		}
		h = foldBytes(h, rb)

		if code := p.Barrier(c); code != testCodes.Success {
			return modalResult{h, code}
		}

		blk := count/4 + 1
		own := make([]int64, blk)
		for i := range own {
			own[i] = int64(me*blk + i)
		}
		var gbuf []byte
		if me == root {
			gbuf = make([]byte, n*blk*8)
		}
		if code := p.Gather(abi.Int64Bytes(own), blk, it, gbuf, blk, it, root, c); code != testCodes.Success {
			return modalResult{h, code}
		}
		back := make([]byte, blk*8)
		if code := p.Scatter(gbuf, blk, it, back, blk, it, root, c); code != testCodes.Success {
			return modalResult{h, code}
		}
		h = foldBytes(h, back)

		ag := make([]byte, n*blk*8)
		if code := p.Allgather(abi.Int64Bytes(own), blk, it, ag, blk, it, c); code != testCodes.Success {
			return modalResult{h, code}
		}
		h = foldBytes(h, ag)

		a2aOut := make([]int64, n*blk)
		s = seed ^ uint64(me)<<8
		for i := range a2aOut {
			a2aOut[i] = int64(lcg(&s) % 7919)
		}
		a2aIn := make([]byte, n*blk*8)
		if code := p.Alltoall(abi.Int64Bytes(a2aOut), blk, it, a2aIn, blk, it, c); code != testCodes.Success {
			return modalResult{h, code}
		}
		h = foldBytes(h, a2aIn)
		return modalResult{h, testCodes.Success}
	}
}

// derivedComms splits the world into parity halves, reduces within each
// half, then allgathers over a dup of the world — communicator creation
// (CID agreement) and collectives on derived comms under both engines.
func derivedComms(seed uint64) func(p *Proc) modalResult {
	return func(p *Proc) modalResult {
		me, n := p.Rank(), p.Size()
		it := p.Predef(types.KindInt64)
		sum := p.PredefOp(ops.OpSum)
		h := uint64(fnvOffset)

		half, code := p.CommSplit(p.CommWorld, me%2, me)
		if code != testCodes.Success {
			return modalResult{h, code}
		}
		vals := []int64{int64(seed) + int64(me)*7, int64(me) - 3}
		rb := make([]byte, 16)
		if code := p.Allreduce(abi.Int64Bytes(vals), rb, 2, it, sum, half); code != testCodes.Success {
			return modalResult{h, code}
		}
		h = foldBytes(h, rb)

		dup, code := p.CommDup(p.CommWorld)
		if code != testCodes.Success {
			return modalResult{h, code}
		}
		ag := make([]byte, n*16)
		if code := p.Allgather(rb, 2, it, ag, 2, it, dup); code != testCodes.Success {
			return modalResult{h, code}
		}
		h = foldBytes(h, ag)
		h = foldU64(foldU64(h, uint64(half.CID)), uint64(dup.CID))
		return modalResult{h, testCodes.Success}
	}
}

// ulfmRecoveryCycle is the fault scenario: after a clean allreduce the
// victim kills itself mid-world; the detector (rank 0) observes
// ErrProcFailed on a directed recv and revokes the world; every other
// survivor observes ErrRevoked; then all survivors shrink, agree, and
// complete a collective on the shrunken communicator. The error class
// each rank records is forced by construction, so it must be identical
// across engines — the suite's strongest claim, since fault timing is
// where schedules differ most.
func ulfmRecoveryCycle(seed uint64) func(p *Proc) modalResult {
	return func(p *Proc) modalResult {
		me, n := p.Rank(), p.Size()
		victim := n - 1
		c := p.CommWorld
		it := p.Predef(types.KindInt64)
		bt := p.Predef(types.KindByte)
		sum := p.PredefOp(ops.OpSum)
		h := uint64(fnvOffset)

		vals := []int64{int64(seed) * int64(me+1)}
		rb := make([]byte, 8)
		if code := p.Allreduce(abi.Int64Bytes(vals), rb, 1, it, sum, c); code != testCodes.Success {
			return modalResult{h, code}
		}
		h = foldBytes(h, rb)

		if me == victim {
			p.World().Kill(victim)
			p.World().NotifyFailure(victim)
			return modalResult{h, testCodes.Success}
		}

		var observed int
		buf := make([]byte, 8)
		if me == 0 {
			// Tag 99 is never sent: only the failure sweep can complete
			// this, so the detector's class is ErrProcFailed by
			// construction.
			observed = p.Recv(buf, 8, bt, victim, 99, c, nil)
			p.CommRevoke(c)
		} else {
			// Tag 98 is never sent either, and rank 0 stays alive: only
			// the revocation can complete this — ErrRevoked by
			// construction.
			observed = p.Recv(buf, 8, bt, 0, 98, c, nil)
		}
		h = foldU64(h, uint64(observed))

		nc, code := p.CommShrink(c)
		if code != testCodes.Success {
			return modalResult{h, code}
		}
		h = foldU64(h, uint64(len(nc.Ranks)))

		flag := ^uint64(0) &^ (1 << uint(me))
		agreed, code := p.CommAgree(nc, flag)
		if code != testCodes.Success {
			return modalResult{h, code}
		}
		h = foldU64(h, agreed)

		if code := p.Allreduce(abi.Int64Bytes(vals), rb, 1, it, sum, nc); code != testCodes.Success {
			return modalResult{h, code}
		}
		h = foldBytes(h, rb)
		return modalResult{h, observed}
	}
}

// TestModeEquivalence is the differential matrix: seeds × policies ×
// workloads, goroutine vs event (×2) per cell.
func TestModeEquivalence(t *testing.T) {
	type workload struct {
		name string
		n    int
		fn   func(seed uint64) func(p *Proc) modalResult
	}
	workloads := []workload{
		{"p2p-soak", 8, p2pSoak},
		{"wildcard-funnel", 6, wildcardFunnel},
		{"collectives-small", 5, func(s uint64) func(p *Proc) modalResult { return collectiveSweep(s, 9) }},
		{"collectives-large", 8, func(s uint64) func(p *Proc) modalResult { return collectiveSweep(s, 3000) }},
		{"derived-comms", 6, derivedComms},
		{"ulfm-recovery", 5, ulfmRecoveryCycle},
	}
	for polName, pol := range testPolicies() {
		for _, wl := range workloads {
			for _, seed := range []uint64{1, 0xC0FFEE} {
				t.Run(fmt.Sprintf("%s/%s/seed=%d", polName, wl.name, seed), func(t *testing.T) {
					pol := pol
					assertModesAgree(t, wl.n, pol, wl.fn(seed))
				})
			}
		}
	}
}

// TestEventModeWorksAtScale is a correctness (not bench) smoke at a rank
// count the goroutine engine only reaches painfully: a 512-rank
// allreduce + barrier in event mode with verified math.
func TestEventModeWorksAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("512-rank world in -short mode")
	}
	const n = 512
	pol := testPolicies()["treeish"]
	res := runModal(t, n, pol, fabric.ProgressEvent, func(p *Proc) modalResult {
		c := p.CommWorld
		it := p.Predef(types.KindInt64)
		sum := p.PredefOp(ops.OpSum)
		vals := []int64{int64(p.Rank() + 1)}
		rb := make([]byte, 8)
		if code := p.Allreduce(abi.Int64Bytes(vals), rb, 1, it, sum, c); code != testCodes.Success {
			return modalResult{0, code}
		}
		if got := abi.Int64sOf(rb)[0]; got != int64(n)*(n+1)/2 {
			return modalResult{uint64(got), testCodes.ErrOther}
		}
		if code := p.Barrier(c); code != testCodes.Success {
			return modalResult{0, code}
		}
		return modalResult{1, testCodes.Success}
	})
	for r, m := range res {
		if m.code != testCodes.Success || m.digest != 1 {
			t.Fatalf("rank %d: %+v", r, m)
		}
	}
}
